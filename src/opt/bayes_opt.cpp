#include "opt/bayes_opt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gcnrl::opt {

double norm_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double norm_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

BayesOpt::BayesOpt(int dim, Rng rng, BayesOptOptions opt)
    : dim_(dim), rng_(rng), opt_(opt) {}

double BayesOpt::expected_improvement(const std::vector<double>& x) const {
  const GpPrediction p = gp_.predict(x);
  const double sd = std::sqrt(p.variance);
  if (sd < 1e-12) return 0.0;
  const double z = (p.mean - best_y_ - opt_.xi) / sd;
  return (p.mean - best_y_ - opt_.xi) * norm_cdf(z) + sd * norm_pdf(z);
}

std::vector<std::vector<double>> BayesOpt::ask() {
  if (static_cast<int>(xs_.size()) < opt_.initial_random) {
    std::vector<double> x(dim_);
    for (auto& v : x) v = rng_.uniform(-1.0, 1.0);
    return {x};
  }

  // Random multi-start acquisition maximization.
  std::vector<std::vector<double>> cands(opt_.acq_samples,
                                         std::vector<double>(dim_));
  for (auto& x : cands) {
    if (rng_.uniform() < 0.5) {
      // Global: uniform.
      for (auto& v : x) v = rng_.uniform(-1.0, 1.0);
    } else {
      // Local: Gaussian ball around the incumbent best.
      const auto& best = xs_[std::distance(
          ys_.begin(), std::max_element(ys_.begin(), ys_.end()))];
      for (int i = 0; i < dim_; ++i) {
        x[i] = std::clamp(best[i] + 0.2 * rng_.normal(), -1.0, 1.0);
      }
    }
  }
  std::vector<double> acq(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    acq[i] = expected_improvement(cands[i]);
  }
  std::vector<int> order(cands.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return acq[a] > acq[b]; });

  // Local coordinate refinement on the top candidates.
  std::vector<double> best_x = cands[order[0]];
  double best_acq = acq[order[0]];
  for (int k = 0; k < std::min<int>(opt_.refine_top,
                                    static_cast<int>(order.size()));
       ++k) {
    std::vector<double> x = cands[order[k]];
    double fx = acq[order[k]];
    double step = 0.1;
    for (int it = 0; it < opt_.refine_iters; ++it) {
      std::vector<double> y = x;
      const int d = static_cast<int>(rng_.uniform_index(dim_));
      y[d] = std::clamp(y[d] + step * rng_.normal(), -1.0, 1.0);
      const double fy = expected_improvement(y);
      if (fy > fx) {
        x = std::move(y);
        fx = fy;
      } else {
        step *= 0.85;
      }
    }
    if (fx > best_acq) {
      best_acq = fx;
      best_x = std::move(x);
    }
  }
  return {best_x};
}

std::vector<int> gp_training_subset(const std::vector<double>& ys,
                                    int max_points) {
  const int n = static_cast<int>(ys.size());
  std::vector<int> order(ys.size());
  std::iota(order.begin(), order.end(), 0);
  if (n <= max_points) return order;
  // stable_sort keeps tied objectives in insertion order, so the subset is
  // independent of how earlier batches were grouped.
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return ys[a] > ys[b]; });
  const int newest = n - 1;
  std::vector<int> keep;
  keep.reserve(static_cast<std::size_t>(max_points));
  for (int idx : order) {
    if (static_cast<int>(keep.size()) >= max_points - 1) break;
    if (idx == newest) continue;
    keep.push_back(idx);
  }
  keep.push_back(newest);
  return keep;
}

void BayesOpt::tell(const std::vector<std::vector<double>>& xs,
                    const std::vector<double>& ys) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs_.push_back(xs[i]);
    ys_.push_back(ys[i]);
    best_y_ = std::max(best_y_, ys[i]);
  }
  if (static_cast<int>(xs_.size()) < opt_.initial_random) return;

  // Cap the GP training set: the best (max_gp_points - 1) by objective
  // plus the newest point, which always enters (see gp_training_subset).
  const std::vector<int> keep = gp_training_subset(ys_, opt_.max_gp_points);
  std::vector<std::vector<double>> x_fit;
  std::vector<double> y_fit;
  x_fit.reserve(keep.size());
  y_fit.reserve(keep.size());
  for (const int idx : keep) {
    x_fit.push_back(xs_[static_cast<std::size_t>(idx)]);
    y_fit.push_back(ys_[static_cast<std::size_t>(idx)]);
  }
  gp_.fit(x_fit, y_fit);
}

}  // namespace gcnrl::opt
