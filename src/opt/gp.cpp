#include "opt/gp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gcnrl::opt {
namespace {

double sq_dist(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double matern52(double r, double ls) {
  const double s = std::sqrt(5.0) * r / ls;
  return (1.0 + s + s * s / 3.0) * std::exp(-s);
}

}  // namespace

double GaussianProcess::kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  return signal_var_ * matern52(std::sqrt(sq_dist(a, b)), lengthscale_);
}

void GaussianProcess::build(double ls, double noise) {
  lengthscale_ = ls;
  noise_ = noise;
  const int n = static_cast<int>(x_.size());
  la::Mat k(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double v = kernel(x_[i], x_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += noise_ + 1e-8;
  }
  chol_ = std::make_unique<la::Cholesky>(k);
  alpha_ = chol_->solve(y_);
}

double GaussianProcess::log_marginal(double ls, double noise) const {
  const int n = static_cast<int>(x_.size());
  la::Mat k(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double r = std::sqrt(sq_dist(x_[i], x_[j]));
      const double v = signal_var_ * matern52(r, ls);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += noise + 1e-8;
  }
  try {
    la::Cholesky chol(k);
    const auto a = chol.solve(y_);
    double fit = 0.0;
    for (int i = 0; i < n; ++i) fit += y_[i] * a[i];
    return -0.5 * fit - 0.5 * chol.log_det() -
           0.5 * n * std::log(2.0 * M_PI);
  } catch (const la::NotPositiveDefiniteError&) {
    return -std::numeric_limits<double>::infinity();
  }
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty()) {
    throw std::invalid_argument("GaussianProcess::fit: bad data");
  }
  x_ = x;
  // Standardize targets.
  const int n = static_cast<int>(y.size());
  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= n;
  double var = 0.0;
  for (double v : y) var += (v - y_mean_) * (v - y_mean_);
  y_std_ = n > 1 ? std::sqrt(var / (n - 1)) : 1.0;
  if (y_std_ < 1e-12) y_std_ = 1.0;
  y_.resize(n);
  for (int i = 0; i < n; ++i) y_[i] = (y[i] - y_mean_) / y_std_;
  signal_var_ = 1.0;

  // Median-heuristic lengthscale, refined over a small ML grid.
  std::vector<double> dists;
  const int cap = std::min(n, 64);
  for (int i = 0; i < cap; ++i) {
    for (int j = i + 1; j < cap; ++j) {
      dists.push_back(std::sqrt(sq_dist(x_[i], x_[j])));
    }
  }
  double ls0 = 1.0;
  if (!dists.empty()) {
    std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                     dists.end());
    ls0 = std::max(dists[dists.size() / 2], 1e-3);
  }
  double best_ll = -std::numeric_limits<double>::infinity();
  double best_ls = ls0, best_noise = 1e-4;
  for (double ls_mul : {0.33, 0.66, 1.0, 2.0, 4.0}) {
    for (double noise : {1e-6, 1e-4, 1e-2}) {
      const double ll = log_marginal(ls0 * ls_mul, noise);
      if (ll > best_ll) {
        best_ll = ll;
        best_ls = ls0 * ls_mul;
        best_noise = noise;
      }
    }
  }
  build(best_ls, best_noise);
  fitted_ = true;
}

GpPrediction GaussianProcess::predict(const std::vector<double>& x) const {
  if (!fitted_) throw std::runtime_error("GaussianProcess: not fitted");
  const int n = static_cast<int>(x_.size());
  std::vector<double> kx(n);
  for (int i = 0; i < n; ++i) kx[i] = kernel(x_[i], x);
  double mu = 0.0;
  for (int i = 0; i < n; ++i) mu += kx[i] * alpha_[i];
  // var = k(x,x) - kx^T K^-1 kx via the Cholesky solve.
  const auto v = chol_->solve_lower(kx);
  double reduction = 0.0;
  for (double vi : v) reduction += vi * vi;
  const double var = std::max(kernel(x, x) - reduction, 1e-12);
  return {y_mean_ + y_std_ * mu, y_std_ * y_std_ * var};
}

}  // namespace gcnrl::opt
