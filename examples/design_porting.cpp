// Design porting across technology nodes (paper Sec. IV-B / Table IV):
// train a GCN-RL agent on a circuit at 180 nm, then reuse its actor-critic
// weights to size the SAME topology at another node with a small step
// budget, against a from-scratch agent with the same budget.
//
// Usage: design_porting [target_node] [pretrain_steps] [transfer_steps]
//        (defaults: 65nm, 400, 150)
#include <cstdio>

#include "circuits/benchmark_circuits.hpp"
#include "rl/run_loop.hpp"

using namespace gcnrl;

int main(int argc, char** argv) {
  const std::string target_node = argc > 1 ? argv[1] : "65nm";
  const int pretrain_steps = argc > 2 ? std::atoi(argv[2]) : 400;
  const int transfer_steps = argc > 3 ? std::atoi(argv[3]) : 150;
  Rng rng(7);

  // --- pretrain on 180 nm ------------------------------------------------
  const auto tech_src = circuit::make_technology("180nm");
  env::SizingEnv env_src(circuits::make_two_tia(tech_src));
  env_src.calibrate(200, rng);
  rl::DdpgConfig cfg;
  cfg.warmup = 100;
  rl::DdpgAgent pretrained(env_src.state(), env_src.adjacency(),
                           env_src.kinds(), cfg, rng.split());
  std::printf("Pretraining on 180nm for %d steps...\n", pretrain_steps);
  const auto src_result = rl::run_ddpg(env_src, pretrained, pretrain_steps);
  std::printf("  180nm best FoM: %.3f\n", src_result.best_fom);

  // --- target node environment -------------------------------------------
  const auto tech_dst = circuit::make_technology(target_node);
  env::SizingEnv env_dst(circuits::make_two_tia(tech_dst));
  env_dst.calibrate(200, rng);

  // Short budget for both agents: W/3 warm-up + exploration.
  rl::DdpgConfig short_cfg;
  short_cfg.warmup = transfer_steps / 3;

  // Fresh agent (no transfer).
  env::SizingEnv env_fresh(circuits::make_two_tia(tech_dst));
  env_fresh.bench().fom = env_dst.bench().fom;  // share calibration
  rl::DdpgAgent fresh(env_fresh.state(), env_fresh.adjacency(),
                      env_fresh.kinds(), short_cfg, Rng(1001));
  const auto no_transfer = rl::run_ddpg(env_fresh, fresh, transfer_steps);

  // Transferred agent: same shapes (same circuit), weights copied.
  rl::DdpgAgent ported(env_dst.state(), env_dst.adjacency(), env_dst.kinds(),
                       short_cfg, Rng(1001));
  const int copied = ported.copy_weights_from(pretrained);
  std::printf("Transferred %d parameter tensors to %s agent.\n", copied,
              target_node.c_str());
  const auto transfer = rl::run_ddpg(env_dst, ported, transfer_steps);

  std::printf("\n%s after %d steps:\n", target_node.c_str(), transfer_steps);
  std::printf("  no transfer        : best FoM %.3f\n", no_transfer.best_fom);
  std::printf("  transfer from 180nm: best FoM %.3f\n", transfer.best_fom);
  return 0;
}
