// Table II reproduction: Two-TIA per-metric breakdown for every method
// (top block) and the weighted-FoM flexibility study GCN-RL-1..5 (bottom
// block: 10x weight on BW / Gain / Power / Noise / Peaking respectively,
// spec disabled, as in the paper).
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

namespace {

std::vector<std::string> metric_row(const std::string& label,
                                    const env::MetricMap& m, double fom) {
  auto get = [&](const char* k) {
    auto it = m.find(k);
    return it == m.end() ? 0.0 : it->second;
  };
  return {label,
          TextTable::num(get("bw") / 1e9, 3),          // GHz
          TextTable::num(get("gain") / 1e2, 3),        // x100 ohm
          TextTable::num(get("power") * 1e3, 3),       // mW
          TextTable::num(get("noise") * 1e12, 3),      // pA/sqrt(Hz)
          TextTable::num(get("peaking"), 3),           // dB
          TextTable::num(get("gbw") / 1e12, 3),        // THz*ohm
          fom > -100 ? TextTable::num(fom, 3) : "-"};
}

}  // namespace

int main() {
  const BenchConfig cfg = bench_config();
  const auto tech = circuit::make_technology("180nm");
  Rng rng(2024);

  std::printf(
      "Table II: Two-TIA metric breakdown (steps=%d, seeds=%d)\n"
      "Units: BW GHz | Gain x100 ohm | Power mW | Noise pA/rtHz | Peaking dB "
      "| GBW THz*ohm\n%s\n\n",
      cfg.steps, cfg.seeds, bench::eval_banner().c_str());

  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());
  bench::EnvFactory factory("Two-TIA", tech, env::IndexMode::OneHot,
                            cfg.calib_samples, rng, svc);
  TextTable table({"Design", "BW", "Gain", "Power", "Noise", "Peaking",
                   "GBW", "FoM"});

  {
    auto env = factory.make();
    const auto h = env->evaluate_params(env->bench().human_expert);
    table.add_row(metric_row("Human", h.metrics, h.fom));
  }
  long es_sims = 0;  // BO/MACE stop at the ES run's simulated cost
  for (const auto& method : bench::kMethods) {
    // Single representative run per method for the metric breakdown (the
    // FoM statistics live in Table I); use the first sweep seed.
    const auto run = bench::run_method(method, factory, cfg.steps,
                                       cfg.warmup, 1000, es_sims);
    if (method == "ES") es_sims = run.sims;
    table.add_row(metric_row(method, run.best_metrics, run.best_fom));
    std::printf("  %s done (best FoM %.3f, %ld sims)\n", method.c_str(),
                run.best_fom, run.sims);
    std::fflush(stdout);
  }

  // GCN-RL-1..5: 10x weight on one metric each, spec disabled. The five
  // runs share the circuit but not the FoM spec — exactly the per-job FoM
  // split eval_batch_multi supports — so they advance in lockstep as one
  // group: five simulations per step on the shared service, raw metrics
  // shared across the variants whenever designs coincide.
  const std::vector<std::string> focus = {"bw", "gain", "power", "noise",
                                          "peaking"};
  std::vector<bench::LockstepSpec> specs;
  for (std::size_t k = 0; k < focus.size(); ++k) {
    rl::DdpgConfig rl_cfg;
    rl_cfg.warmup = cfg.warmup;
    bench::LockstepSpec spec{rl_cfg, Rng(77 + k), nullptr, {}};
    spec.setup = [&focus, k](env::SizingEnv& env) {
      env.bench().fom.enforce_spec = false;
      env.bench().fom.set_weight(
          focus[k], (focus[k] == "bw" || focus[k] == "gain") ? 10.0 : -10.0);
    };
    specs.push_back(std::move(spec));
  }
  bench::LockstepGroup group(factory, std::move(specs));
  const auto runs = group.run(cfg.steps);
  for (std::size_t k = 0; k < focus.size(); ++k) {
    table.add_row(metric_row("GCN-RL-" + std::to_string(k + 1),
                             runs[k].best_metrics, -1e9));
    std::printf("  GCN-RL-%zu (10x %s) done\n", k + 1, focus[k].c_str());
    std::fflush(stdout);
  }

  std::printf("\n");
  table.print();
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper reference (GCN-RL row): BW 1.03 GHz, Gain 167 x100ohm, Power "
      "3.44 mW,\nNoise 3.72 pA/rtHz, Peaking 0.0003 dB, GBW 17.2 THz*ohm, "
      "FoM 2.72.\nExpected shape: each GCN-RL-k row maximizes (or minimizes) "
      "its focused metric.\n");
  return 0;
}
