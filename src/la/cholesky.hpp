// Cholesky factorization of symmetric positive-definite matrices.
//
// Used by the Gaussian-process surrogate in the Bayesian-optimization
// baselines (kernel matrices are SPD after jitter).
#pragma once

#include <stdexcept>
#include <vector>

#include "la/matrix.hpp"

namespace gcnrl::la {

struct NotPositiveDefiniteError : std::runtime_error {
  NotPositiveDefiniteError()
      : std::runtime_error("Cholesky: matrix is not positive definite") {}
};

class Cholesky {
 public:
  // Factors A = L L^T. Throws NotPositiveDefiniteError if A is not SPD.
  explicit Cholesky(const Mat& a);

  // Solve A x = b.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;
  // Solve L y = b (forward substitution only).
  [[nodiscard]] std::vector<double> solve_lower(
      const std::vector<double>& b) const;
  // log |A| = 2 * sum(log diag(L)); needed for GP marginal likelihood.
  [[nodiscard]] double log_det() const;
  [[nodiscard]] const Mat& lower() const { return l_; }

 private:
  Mat l_;
};

}  // namespace gcnrl::la
