#include "meas/ac_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gcnrl::meas {
namespace {

void check(const AcCurve& c) {
  if (c.freq.size() != c.h.size() || c.freq.empty()) {
    throw std::invalid_argument("AcCurve: inconsistent or empty");
  }
}

// Log-frequency interpolation of the crossing |H| = target between
// adjacent samples i-1, i.
double interp_crossing(const AcCurve& c, std::size_t i, double target) {
  const double m0 = std::abs(c.h[i - 1]);
  const double m1 = std::abs(c.h[i]);
  if (m0 == m1) return c.freq[i];
  const double t = (target - m0) / (m1 - m0);
  const double lf =
      std::log(c.freq[i - 1]) +
      t * (std::log(c.freq[i]) - std::log(c.freq[i - 1]));
  return std::exp(lf);
}

}  // namespace

double dc_gain(const AcCurve& c) {
  check(c);
  return std::abs(c.h.front());
}

double bandwidth_3db(const AcCurve& c) {
  check(c);
  const double target = dc_gain(c) / std::sqrt(2.0);
  for (std::size_t i = 1; i < c.h.size(); ++i) {
    if (std::abs(c.h[i]) < target && std::abs(c.h[i - 1]) >= target) {
      return interp_crossing(c, i, target);
    }
  }
  return c.freq.back();
}

double peaking_db(const AcCurve& c) {
  check(c);
  const double g0 = dc_gain(c);
  double peak = g0;
  for (const auto& h : c.h) peak = std::max(peak, std::abs(h));
  if (g0 <= 0.0) return 0.0;
  return 20.0 * std::log10(peak / g0);
}

double gbw(const AcCurve& c) { return dc_gain(c) * bandwidth_3db(c); }

double unity_crossing(const AcCurve& c) {
  check(c);
  if (std::abs(c.h.front()) < 1.0) return 0.0;
  for (std::size_t i = 1; i < c.h.size(); ++i) {
    if (std::abs(c.h[i]) < 1.0 && std::abs(c.h[i - 1]) >= 1.0) {
      return interp_crossing(c, i, 1.0);
    }
  }
  return c.freq.back();
}

double phase_margin_deg(const AcCurve& c) {
  check(c);
  if (std::abs(c.h.front()) < 1.0) return 180.0;
  // Unwrapped phase along the sweep.
  std::vector<double> phase(c.h.size());
  phase[0] = std::arg(c.h[0]);
  for (std::size_t i = 1; i < c.h.size(); ++i) {
    double p = std::arg(c.h[i]);
    while (p - phase[i - 1] > M_PI) p -= 2.0 * M_PI;
    while (p - phase[i - 1] < -M_PI) p += 2.0 * M_PI;
    phase[i] = p;
  }
  for (std::size_t i = 1; i < c.h.size(); ++i) {
    if (std::abs(c.h[i]) < 1.0 && std::abs(c.h[i - 1]) >= 1.0) {
      const double m0 = std::abs(c.h[i - 1]);
      const double m1 = std::abs(c.h[i]);
      const double t = m0 == m1 ? 1.0 : (1.0 - m0) / (m1 - m0);
      const double ph = phase[i - 1] + t * (phase[i] - phase[i - 1]);
      double pm = 180.0 + ph * 180.0 / M_PI;
      while (pm > 360.0) pm -= 360.0;
      while (pm < -360.0) pm += 360.0;
      // Clamp to the conventional reporting range: phase lead beyond 180
      // is "unconditionally stable here", deeper lag than -180 is "very
      // unstable" — finer distinction carries no design information.
      return std::clamp(pm, -180.0, 180.0);
    }
  }
  return 180.0;
}

double magnitude_at(const AcCurve& c, double f) {
  check(c);
  if (f <= c.freq.front()) return std::abs(c.h.front());
  if (f >= c.freq.back()) return std::abs(c.h.back());
  for (std::size_t i = 1; i < c.freq.size(); ++i) {
    if (c.freq[i] >= f) {
      const double t = (std::log(f) - std::log(c.freq[i - 1])) /
                       (std::log(c.freq[i]) - std::log(c.freq[i - 1]));
      const double m0 = std::abs(c.h[i - 1]);
      const double m1 = std::abs(c.h[i]);
      return m0 + t * (m1 - m0);
    }
  }
  return std::abs(c.h.back());
}

}  // namespace gcnrl::meas
