// Unit tests for the dense linear-algebra substrate.
#include <gtest/gtest.h>

#include <complex>

#include "common/rng.hpp"
#include "la/cholesky.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/stats.hpp"

namespace la = gcnrl::la;
using gcnrl::Rng;

namespace {

la::Mat random_mat(int r, int c, Rng& rng, double scale = 1.0) {
  la::Mat m(r, c);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) m(i, j) = rng.uniform(-scale, scale);
  }
  return m;
}

}  // namespace

TEST(Matrix, ConstructionAndAccess) {
  la::Mat m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(Matrix, InitializerList) {
  la::Mat m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, IdentityAndArithmetic) {
  la::Mat i = la::Mat::identity(3);
  la::Mat m = i * 2.0;
  m += i;
  EXPECT_DOUBLE_EQ(m(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  la::Mat d = m - i;
  EXPECT_DOUBLE_EQ(d(2, 2), 2.0);
}

TEST(Matrix, MatmulAgainstManual) {
  la::Mat a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  la::Mat b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  la::Mat c = la::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MatmulTransposedVariantsAgree) {
  Rng rng(7);
  la::Mat a = random_mat(5, 4, rng);
  la::Mat b = random_mat(5, 3, rng);
  la::Mat c1 = la::matmul_tn(a, b);            // A^T B
  la::Mat c2 = la::matmul(a.transpose(), b);
  ASSERT_TRUE(c1.same_shape(c2));
  for (int i = 0; i < c1.rows(); ++i) {
    for (int j = 0; j < c1.cols(); ++j) {
      EXPECT_NEAR(c1(i, j), c2(i, j), 1e-12);
    }
  }
  la::Mat d = random_mat(4, 5, rng);
  la::Mat e1 = la::matmul_nt(a, d.transpose());  // A * D (since (D^T)^T = D)
  la::Mat e2 = la::matmul(a, d);
  for (int i = 0; i < e1.rows(); ++i) {
    for (int j = 0; j < e1.cols(); ++j) {
      EXPECT_NEAR(e1(i, j), e2(i, j), 1e-12);
    }
  }
}

TEST(Matrix, Hadamard) {
  la::Mat a{{1.0, 2.0}, {3.0, 4.0}};
  la::Mat b{{2.0, 0.5}, {1.0, 0.25}};
  la::Mat c = la::hadamard(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 1.0);
}

TEST(Lu, SolvesRandomSystem) {
  Rng rng(42);
  const int n = 12;
  la::Mat a = random_mat(n, n, rng);
  for (int i = 0; i < n; ++i) a(i, i) += 5.0;  // diagonally dominant-ish
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  std::vector<double> b(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
  }
  const auto x = la::solve(a, b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  la::Mat a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = la::solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  la::Mat a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(la::Lu<double>{a}, la::SingularMatrixError);
}

TEST(Lu, SolveTransposed) {
  Rng rng(3);
  const int n = 8;
  la::Mat a = random_mat(n, n, rng);
  for (int i = 0; i < n; ++i) a(i, i) += 4.0;
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::Lu<double> lu(a);
  const auto x = lu.solve_transposed(b);
  // Check A^T x = b.
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += a(j, i) * x[j];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
}

TEST(Lu, ComplexSystem) {
  using cd = std::complex<double>;
  la::CMat a(2, 2);
  a(0, 0) = cd(1.0, 1.0);
  a(0, 1) = cd(0.0, -1.0);
  a(1, 0) = cd(2.0, 0.0);
  a(1, 1) = cd(0.0, 2.0);
  std::vector<cd> x_true{cd(1.0, -1.0), cd(0.5, 2.0)};
  std::vector<cd> b(2, cd(0.0));
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) b[i] += a(i, j) * x_true[j];
  }
  const auto x = la::solve(a, b);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-12);
  }
}

TEST(Lu, ComplexConjugateTransposeSolve) {
  using cd = std::complex<double>;
  Rng rng(11);
  const int n = 6;
  la::CMat a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a(i, j) = cd(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
    a(i, i) += cd(4.0, 0.0);
  }
  std::vector<cd> b(n);
  for (auto& v : b) v = cd(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  la::Lu<cd> lu(a);
  const auto x = lu.solve_transposed(b, /*conjugate=*/true);
  for (int i = 0; i < n; ++i) {
    cd acc(0.0);
    for (int j = 0; j < n; ++j) acc += std::conj(a(j, i)) * x[j];
    EXPECT_NEAR(std::abs(acc - b[i]), 0.0, 1e-9);
  }
}

TEST(Cholesky, SolveSpd) {
  Rng rng(5);
  const int n = 10;
  la::Mat g = random_mat(n, n, rng);
  // A = G G^T + n I is SPD.
  la::Mat a = la::matmul_nt(g, g);
  for (int i = 0; i < n; ++i) a(i, i) += n;
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
  }
  la::Cholesky chol(a);
  const auto x = chol.solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, LogDetMatchesKnown) {
  la::Mat a{{4.0, 0.0}, {0.0, 9.0}};
  la::Cholesky chol(a);
  EXPECT_NEAR(chol.log_det(), std::log(36.0), 1e-12);
}

TEST(Cholesky, ThrowsOnIndefinite) {
  la::Mat a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(la::Cholesky{a}, la::NotPositiveDefiniteError);
}

TEST(Stats, MeanStd) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(la::mean(v), 2.5);
  EXPECT_NEAR(la::stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(la::min_of(v), 1.0);
  EXPECT_DOUBLE_EQ(la::max_of(v), 4.0);
}

TEST(Stats, NormalizeColumns) {
  la::Mat m{{1.0, 5.0}, {3.0, 5.0}, {5.0, 5.0}};
  const auto st = la::normalize_columns(m);
  EXPECT_DOUBLE_EQ(st.mean[0], 3.0);
  // Column 0 has zero mean / unit-ish scaling after normalization.
  EXPECT_NEAR(m(0, 0) + m(2, 0), 0.0, 1e-12);
  EXPECT_NEAR(m(1, 0), 0.0, 1e-12);
  // Constant column: centered, not scaled (std fallback = 1).
  EXPECT_NEAR(m(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(m(2, 1), 0.0, 1e-12);
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto k = r.uniform_index(7);
    EXPECT_LT(k, 7u);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(77);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng r(31);
  for (int i = 0; i < 2000; ++i) {
    const double x = r.truncated_normal(0.0, 2.0, -0.5, 0.5);
    EXPECT_GE(x, -0.5);
    EXPECT_LE(x, 0.5);
  }
}

TEST(MatrixHelpers, NormsAndFinite) {
  la::Mat m{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(la::frobenius_norm(m), 5.0);
  EXPECT_DOUBLE_EQ(la::max_abs(m), 4.0);
  EXPECT_TRUE(la::all_finite(m));
  m(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(la::all_finite(m));
}
