#include "la/lu.hpp"

namespace gcnrl::la {

std::vector<double> solve(const Mat& a, const std::vector<double>& b) {
  return Lu<double>(a).solve(b);
}

std::vector<std::complex<double>> solve(
    const CMat& a, const std::vector<std::complex<double>>& b) {
  return Lu<std::complex<double>>(a).solve(b);
}

}  // namespace gcnrl::la
