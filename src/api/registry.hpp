// The two extension points of the public task API (api.hpp):
//
//   CircuitRegistry — name -> BenchmarkCircuit builder. The four paper
//   benchmarks (Fig. 6) are pre-registered in the paper's table order;
//   user code adds its own circuits with register_circuit() (or a static
//   CircuitRegistrar) and they become addressable from TaskSpec::circuit,
//   bench harnesses, and gcnrl_cli spec files without touching the
//   library. circuits::make_benchmark()/benchmark_names() are thin shims
//   over this registry (defined in registry.cpp — the registry TU is the
//   one home of cross-circuit dispatch).
//
//   MethodRegistry — name -> MethodInfo descriptor unifying the paper's
//   methods behind one dispatch surface. A method is one of four kinds:
//     Anchor   evaluate the circuit's human-expert sizing once ("Human");
//     Random   uniform random search (rl::run_random);
//     AskTell  a black-box optimizer driven through the lockstep ask/tell
//              engine (ES / BO / MACE, or any user opt::Optimizer);
//     Ddpg     the RL methods, driven through the DDPG lockstep engine
//              (NG-RL / GCN-RL, differing only in their configure hook).
//   `budget_from` names the method whose per-seed simulated cost bounds
//   this one (the paper's Table I rule: BO/MACE stop at the matching ES
//   seed's cost); api::run_tasks resolves the chain automatically.
//
// Registration order is deterministic: built-ins first, in the order
// below, then user registrations in call order — so circuit_names() /
// method_names() are stable across runs and never depend on hashing.
// Duplicate names throw std::invalid_argument; unknown lookups throw
// with the full list of registered names in the message.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuits/benchmark_circuits.hpp"
#include "opt/optimizer.hpp"
#include "rl/ddpg.hpp"

namespace gcnrl::api {

// --- circuits -------------------------------------------------------------

using CircuitBuilder =
    std::function<env::BenchmarkCircuit(const circuit::Technology&)>;

// Registers a builder under `name`. Throws std::invalid_argument when the
// name is empty or already taken (built-ins included).
void register_circuit(const std::string& name, CircuitBuilder builder);
[[nodiscard]] bool circuit_registered(const std::string& name);
// Loads a .gcir circuit description (circuit::load_gcir) and registers it
// under its declared name; the registered builder compiles the parsed
// description per technology node (env::compile_circuit). Parse and
// compile diagnostics surface here, eagerly, via a compile probe at the
// 180nm node. Returns the declared name. Re-registering byte-identical
// file content under the same name is an idempotent no-op (so specs and
// --circuit flags may both name the same file); a name collision with
// *different* content — or with a C++-registered builder — throws
// std::invalid_argument. File-registered circuits carry a content
// fingerprint ("gcir:<fnv1a64>") retrievable via circuit_source_tag(),
// which checkpoint stamps embed to catch cross-source transfer mixups.
std::string register_circuit_file(const std::string& path);
// Source fingerprint of a registered circuit: "gcir:<hash>" for
// file-registered circuits, "" for C++ builders. Unknown names throw the
// build_circuit diagnostic.
std::string circuit_source_tag(const std::string& name);
// Builds the named circuit at the given node. Unknown names throw
// std::invalid_argument listing every registered name.
env::BenchmarkCircuit build_circuit(const std::string& name,
                                    const circuit::Technology& tech);
// Validation without the build cost: throws the same unknown-circuit
// diagnostic as build_circuit when `name` is not registered.
void require_circuit(const std::string& name);
// Registered names: the four paper benchmarks first (Two-TIA, Two-Volt,
// Three-TIA, LDO), then user circuits in registration order.
std::vector<std::string> circuit_names();

// Static-initialization helper: `static api::CircuitRegistrar reg{"X", f};`
// in a user TU registers X before main() runs.
struct CircuitRegistrar {
  CircuitRegistrar(const std::string& name, CircuitBuilder builder);
};

// --- methods --------------------------------------------------------------

enum class MethodKind { Anchor, Random, AskTell, Ddpg };

struct MethodInfo {
  std::string name;
  MethodKind kind = MethodKind::AskTell;
  // AskTell only: build the optimizer for one seed (flattened dimension,
  // per-seed RNG). Must be set for AskTell methods.
  std::function<std::unique_ptr<opt::Optimizer>(int dim, Rng rng)>
      make_optimizer;
  // Ddpg only: apply the method's defaults on top of a task's base config
  // (e.g. GCN-RL sets use_gcn = true). May be empty.
  std::function<void(rl::DdpgConfig&)> configure;
  // Simulated-cost budget chain: the method whose per-seed RunResult::sims
  // caps this method's runs ("ES" for BO/MACE); empty = unbudgeted.
  std::string budget_from;
};

// Registers a method descriptor. Throws std::invalid_argument when the
// name is empty or taken, or when an AskTell descriptor lacks
// make_optimizer.
void register_method(MethodInfo info);
[[nodiscard]] bool method_registered(const std::string& name);
// Unknown names throw std::invalid_argument listing every registered name.
// The returned reference stays valid for the process lifetime.
const MethodInfo& method_info(const std::string& name);
// Registered names: Human, Random, ES, BO, MACE, NG-RL, GCN-RL, then user
// methods in registration order.
std::vector<std::string> method_names();

// Convenience: construct the ask/tell optimizer behind an AskTell method
// (throws for unknown names and non-AskTell kinds).
std::unique_ptr<opt::Optimizer> make_ask_tell(const std::string& method,
                                              int dim, Rng rng);

}  // namespace gcnrl::api
