// Shared machinery for the table/figure benchmark harnesses.
//
// Provides the method registry of Table I (Random / ES / BO / MACE /
// NG-RL / GCN-RL + the human anchor), seed sweeps with mean +/- std
// aggregation, and the paper's runtime-matching rule for the O(N^3) BO
// methods ("for BO and MACE it is impossible to run 10000 steps ... we
// ran them for the same runtime"): BO/MACE runs stop at the wall-clock
// budget of the corresponding RL run if they have not exhausted their
// step budget first.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuits/benchmark_circuits.hpp"
#include "common/envcfg.hpp"
#include "common/table.hpp"
#include "env/eval_service.hpp"
#include "la/stats.hpp"
#include "opt/bayes_opt.hpp"
#include "opt/cma_es.hpp"
#include "opt/mace.hpp"
#include "opt/random_search.hpp"
#include "rl/run_loop.hpp"

namespace gcnrl::bench {

inline const std::vector<std::string> kMethods = {
    "Random", "ES", "BO", "MACE", "NG-RL", "GCN-RL"};

// A calibrated environment factory: builds fresh envs for a circuit while
// sharing one FoM calibration (normalizers must be identical across
// methods for the comparison to be meaningful).
//
// When constructed with a shared EvalService, every env the factory makes
// — including the calibration probe — evaluates through that service, so a
// whole harness shares one thread pool and one result cache. Without one,
// each env gets a private service from the GCNRL_EVAL_* knobs, as before.
class EnvFactory {
 public:
  EnvFactory(std::string circuit_name, const circuit::Technology& tech,
             env::IndexMode mode, int calib_samples, Rng& rng,
             std::shared_ptr<env::EvalService> svc = nullptr)
      : name_(std::move(circuit_name)),
        tech_(tech),
        mode_(mode),
        svc_(std::move(svc)) {
    env::SizingEnv probe(circuits::make_benchmark(name_, tech_), mode_,
                         svc_);
    probe.calibrate(calib_samples, rng);
    fom_ = probe.bench().fom;
  }

  // Env on the factory's own service (private per-env when none was set).
  [[nodiscard]] std::unique_ptr<env::SizingEnv> make() const {
    return make(svc_);
  }

  // Env on an explicit shared service (sweep() uses this to put all S
  // seed-envs of a lockstep group on one service).
  [[nodiscard]] std::unique_ptr<env::SizingEnv> make(
      std::shared_ptr<env::EvalService> svc) const {
    auto bc = circuits::make_benchmark(name_, tech_);
    bc.fom = fom_;
    return std::make_unique<env::SizingEnv>(std::move(bc), mode_,
                                            std::move(svc));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const env::FomSpec& fom() const { return fom_; }
  [[nodiscard]] const std::shared_ptr<env::EvalService>& service() const {
    return svc_;
  }

 private:
  std::string name_;
  circuit::Technology tech_;
  env::IndexMode mode_;
  env::FomSpec fom_;
  std::shared_ptr<env::EvalService> svc_;
};

// One (agent config, RNG, optional weight source) spec of a lockstep
// group. `setup`, when set, runs on the freshly built env before the agent
// is constructed (e.g. to tweak the FoM spec per pair); `copy_from`, when
// non-null, seeds the agent's weights from a pretrained agent.
struct LockstepSpec {
  rl::DdpgConfig cfg;
  Rng rng;
  rl::DdpgAgent* copy_from = nullptr;
  std::function<void(env::SizingEnv&)> setup;
};

// S (env, agent) pairs built from one factory onto one shared EvalService
// (the factory's, or a group-local one when the factory has none), stepped
// together through rl::run_ddpg_lockstep. The group owns its envs and
// agents — pretraining harnesses keep it alive and hand its agents to
// later groups as `copy_from` sources.
class LockstepGroup {
 public:
  LockstepGroup(const EnvFactory& factory, std::vector<LockstepSpec> specs);

  std::vector<rl::RunResult> run(int steps);

  [[nodiscard]] std::size_t size() const { return agents_.size(); }
  [[nodiscard]] rl::DdpgAgent& agent(std::size_t i) { return *agents_[i]; }
  [[nodiscard]] env::SizingEnv& env(std::size_t i) { return *envs_[i]; }

 private:
  std::vector<std::unique_ptr<env::SizingEnv>> envs_;
  std::vector<std::unique_ptr<rl::DdpgAgent>> agents_;
};

// Thin forwarder to rl::run_optimizer's deadline overload: stops early
// once `seconds` elapse (checked between batches). Kept as a named entry
// point because "the timed BO/MACE budget" is a concept of the paper's
// protocol, not of the RL layer.
rl::RunResult run_optimizer_timed(env::SizingEnv& env, opt::Optimizer& opt,
                                  int steps, double seconds);

// One-line description of the evaluation engine configuration (thread
// count + cache capacity from GCNRL_EVAL_THREADS / GCNRL_EVAL_CACHE),
// printed by every harness so logged tables are self-describing.
std::string eval_banner();

struct MethodRun {
  rl::RunResult result;
  double seconds = 0.0;
};

// One (method, seed) run. `rl_seconds` is the wall-clock of the matching
// RL run used as the BO/MACE runtime budget (<=0: no cap). A non-null
// `svc` overrides the factory's service for this run's env.
MethodRun run_method(const std::string& method, const EnvFactory& factory,
                     int steps, int warmup, std::uint64_t seed,
                     double rl_seconds, const rl::DdpgConfig& base_cfg = {},
                     std::shared_ptr<env::EvalService> svc = nullptr);

// Seed sweep: returns best-FoM per seed plus the traces.
//
// All S seeds share one EvalService (the factory's, or a sweep-local one
// when the factory has none). The RL methods run through
// rl::run_ddpg_lockstep — S (env, agent) pairs stepped side by side, one
// S-wide simulation batch per step — so GCNRL_EVAL_THREADS parallelizes
// across seeds; per-seed traces are bit-identical to the serial per-seed
// loop. The black-box methods keep their per-seed loop (ask/tell is
// sequential within a seed) but batch each population on the shared
// service and share its result cache across seeds.
struct SweepResult {
  std::vector<double> best;             // per seed
  std::vector<std::vector<double>> traces;
  double mean = 0.0;
  double stddev = 0.0;
  double rl_seconds = 0.0;  // mean per-seed runtime
};
SweepResult sweep(const std::string& method, const EnvFactory& factory,
                  int steps, int warmup, int seeds, double rl_seconds,
                  const rl::DdpgConfig& base_cfg = {});

// "mean +/- std" cell formatting used by all tables.
std::string pm(double mean, double stddev, int precision = 3);

}  // namespace gcnrl::bench
