// Console table + CSV emission used by the benchmark harnesses to print
// paper-style tables (paper reference value next to measured value) and to
// dump figure series for plotting.
#pragma once

#include <string>
#include <vector>

namespace gcnrl {

// A simple fixed-column text table. Column widths auto-size to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3);

  // Render with aligned columns and a header separator.
  [[nodiscard]] std::string str() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Minimal CSV writer (no quoting needs beyond commas in our data).
class CsvWriter {
 public:
  explicit CsvWriter(std::string path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<std::string>& cells);
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  void* file_;  // FILE*, kept opaque to avoid <cstdio> in the header
};

}  // namespace gcnrl
