// Dense row-major matrix over double or std::complex<double>.
//
// This is the numerical workhorse shared by the neural-network stack
// (real matrices) and the circuit simulator's MNA systems (complex
// matrices for AC analysis). It deliberately stays small: dynamic 2-D
// storage, elementwise arithmetic, and a cache-friendly matmul. Anything
// fancier (LU, Cholesky) lives in sibling headers.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace gcnrl::la {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, T fill = T{})
      : rows_(rows), cols_(cols), d_(static_cast<std::size_t>(rows) * cols, fill) {
    assert(rows >= 0 && cols >= 0);
  }
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = static_cast<int>(rows.size());
    cols_ = rows_ > 0 ? static_cast<int>(rows.begin()->size()) : 0;
    d_.reserve(static_cast<std::size_t>(rows_) * cols_);
    for (const auto& r : rows) {
      assert(static_cast<int>(r.size()) == cols_);
      d_.insert(d_.end(), r.begin(), r.end());
    }
  }

  static Matrix zeros(int r, int c) { return Matrix(r, c); }
  static Matrix identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }
  static Matrix filled(int r, int c, T v) { return Matrix(r, c, v); }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return d_.size(); }
  [[nodiscard]] bool empty() const { return d_.empty(); }

  T& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return d_[static_cast<std::size_t>(r) * cols_ + c];
  }
  const T& operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return d_[static_cast<std::size_t>(r) * cols_ + c];
  }
  T* data() { return d_.data(); }
  const T* data() const { return d_.data(); }
  T* row_ptr(int r) { return d_.data() + static_cast<std::size_t>(r) * cols_; }
  const T* row_ptr(int r) const {
    return d_.data() + static_cast<std::size_t>(r) * cols_;
  }

  Matrix& operator+=(const Matrix& o) {
    assert(same_shape(o));
    for (std::size_t i = 0; i < d_.size(); ++i) d_[i] += o.d_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    assert(same_shape(o));
    for (std::size_t i = 0; i < d_.size(); ++i) d_[i] -= o.d_[i];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& v : d_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

  [[nodiscard]] Matrix transpose() const {
    Matrix t(cols_, rows_);
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    }
    return t;
  }

  [[nodiscard]] bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  void fill(T v) {
    for (auto& x : d_) x = v;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> d_;
};

using Mat = Matrix<double>;
using CMat = Matrix<std::complex<double>>;

// C = A * B with an i-k-j loop order (streams B's rows; vectorizes well).
template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  assert(a.cols() == b.rows());
  Matrix<T> c(a.rows(), b.cols());
  const int n = a.rows(), k_dim = a.cols(), m = b.cols();
  for (int i = 0; i < n; ++i) {
    T* __restrict ci = c.row_ptr(i);
    for (int k = 0; k < k_dim; ++k) {
      const T aik = a(i, k);
      if (aik == T{}) continue;
      const T* __restrict bk = b.row_ptr(k);
      for (int j = 0; j < m; ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

// C = A^T * B without materializing the transpose (hot in backprop).
template <typename T>
Matrix<T> matmul_tn(const Matrix<T>& a, const Matrix<T>& b) {
  assert(a.rows() == b.rows());
  Matrix<T> c(a.cols(), b.cols());
  const int n = a.rows(), p = a.cols(), m = b.cols();
  for (int k = 0; k < n; ++k) {
    const T* __restrict ak = a.row_ptr(k);
    const T* __restrict bk = b.row_ptr(k);
    for (int i = 0; i < p; ++i) {
      const T aki = ak[i];
      if (aki == T{}) continue;
      T* __restrict ci = c.row_ptr(i);
      for (int j = 0; j < m; ++j) ci[j] += aki * bk[j];
    }
  }
  return c;
}

// C = A * B^T without materializing the transpose (hot in backprop).
template <typename T>
Matrix<T> matmul_nt(const Matrix<T>& a, const Matrix<T>& b) {
  assert(a.cols() == b.cols());
  Matrix<T> c(a.rows(), b.rows());
  const int n = a.rows(), k_dim = a.cols(), m = b.rows();
  for (int i = 0; i < n; ++i) {
    const T* __restrict ai = a.row_ptr(i);
    T* __restrict ci = c.row_ptr(i);
    for (int j = 0; j < m; ++j) {
      const T* __restrict bj = b.row_ptr(j);
      T acc{};
      for (int k = 0; k < k_dim; ++k) acc += ai[k] * bj[k];
      ci[j] = acc;
    }
  }
  return c;
}

template <typename T>
Matrix<T> hadamard(const Matrix<T>& a, const Matrix<T>& b) {
  assert(a.same_shape(b));
  Matrix<T> c = a;
  for (int r = 0; r < a.rows(); ++r) {
    for (int col = 0; col < a.cols(); ++col) c(r, col) *= b(r, col);
  }
  return c;
}

// Frobenius-norm helpers (real matrices).
double frobenius_norm(const Mat& m);
double max_abs(const Mat& m);
bool all_finite(const Mat& m);

}  // namespace gcnrl::la
