// End-to-end smoke + determinism gate for the budgeted bench::sweep path.
//
// Runs a tiny table1-style budgeted sweep (ES -> sim-cost budgets ->
// BO/MACE, plus GCN-RL through the DDPG lockstep engine) TWICE on one
// shared EvalService, with the method order permuted between the passes.
// The second pass starts with a cache fully warmed by the first, and ES
// no longer runs first — under the retired wall-clock budgets exactly this
// warmth deflated the measured ES budget and changed the BO/MACE rows.
// With simulated-cost budgets both passes must render byte-identical
// method tables, at any GCNRL_EVAL_THREADS (the ctest jobs run this at 1
// and at 4 threads, and CI additionally diffs two whole invocations at
// 4). Exits non-zero on any shape mismatch or pass divergence.
//
// Usage: sweep_smoke [steps] [seeds]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"

using namespace gcnrl;

namespace {

// FNV-1a over the printable form of a trace: a stable fingerprint that
// keeps the emitted table small but still pins every committed FoM.
std::string trace_fingerprint(const std::vector<double>& trace) {
  std::uint64_t h = 1469598103934665603ULL;
  char buf[32];
  for (const double v : trace) {
    const int len = std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int i = 0; i < len; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ULL;
    }
  }
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

struct PassResult {
  std::vector<std::string> rows;  // one rendered row per (method, seed)
  int shape_failures = 0;

  // Execution order deliberately differs between the passes, so compare
  // the rows as a set: byte-identical per-(method, seed) content.
  [[nodiscard]] std::string canonical() const {
    std::vector<std::string> sorted = rows;
    std::sort(sorted.begin(), sorted.end());
    std::string out;
    for (const auto& r : sorted) out += r;
    return out;
  }

  [[nodiscard]] std::string table() const {
    std::string out;
    for (const auto& r : rows) out += r;
    return out;
  }
};

// One budgeted sweep pass in the given method order. ES must precede
// BO/MACE within a pass (it is their budget source); everything else may
// come in any order.
PassResult run_pass(const bench::EnvFactory& factory,
                    const std::vector<std::string>& methods, int steps,
                    int warmup, int seeds) {
  PassResult out;
  std::vector<long> es_sims;
  for (const std::string& method : methods) {
    const bool budgeted = method == "BO" || method == "MACE";
    const auto sw = bench::sweep_chained(method, factory, steps, warmup,
                                         seeds, es_sims);
    // Step-budgeted methods commit exactly `steps` evaluations; the
    // sim-budgeted ones may stop earlier but never come back empty.
    const std::size_t n = static_cast<std::size_t>(seeds);
    bool shape_ok = sw.traces.size() == n && sw.best.size() == n &&
                    sw.sims.size() == n;
    for (const auto& t : sw.traces) {
      if (budgeted ? t.empty() : t.size() != static_cast<std::size_t>(steps)) {
        shape_ok = false;
      }
    }
    if (!shape_ok) {
      // Don't index into vectors whose sizes just failed the check — a
      // shape regression must exit 1 cleanly, not crash the gate.
      ++out.shape_failures;
      out.rows.emplace_back("  " + method + " SHAPE MISMATCH\n");
      continue;
    }
    for (int s = 0; s < seeds; ++s) {
      char row[160];
      std::snprintf(row, sizeof(row),
                    "  %-7s seed=%d best=%.17g sims=%ld trace[%zu]=%s\n",
                    method.c_str(), s, sw.best[static_cast<std::size_t>(s)],
                    sw.sims[static_cast<std::size_t>(s)],
                    sw.traces[static_cast<std::size_t>(s)].size(),
                    trace_fingerprint(sw.traces[static_cast<std::size_t>(s)])
                        .c_str());
      out.rows.emplace_back(row);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 12;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 2;
  const int warmup = steps / 2;
  const int calib = 32;
  const auto tech = circuit::make_technology("180nm");
  Rng rng(2024);
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());

  std::printf("sweep smoke: Two-TIA, steps=%d, seeds=%d\n%s\n", steps, seeds,
              bench::eval_banner().c_str());

  bench::EnvFactory factory("Two-TIA", tech, env::IndexMode::OneHot, calib,
                            rng, svc);
  // Pass 1 cold, ES first; pass 2 on the now-warm cache with the RL method
  // (and the whole first pass) ahead of ES.
  const PassResult pass1 = run_pass(
      factory, {"ES", "BO", "MACE", "GCN-RL"}, steps, warmup, seeds);
  const PassResult pass2 = run_pass(
      factory, {"GCN-RL", "ES", "MACE", "BO"}, steps, warmup, seeds);

  const bool identical = pass1.canonical() == pass2.canonical();
  const int failures = pass1.shape_failures + pass2.shape_failures +
                       (identical ? 0 : 1);
  std::printf("pass 1 (cold cache, ES first):\n%s", pass1.table().c_str());
  std::printf("pass 2 (warm cache, permuted order): %s\n",
              identical ? "byte-identical" : "DIVERGED");
  if (!identical) std::printf("%s", pass2.table().c_str());
  if (pass1.shape_failures + pass2.shape_failures > 0) {
    std::printf("SHAPE MISMATCH in %d sweep(s)\n",
                pass1.shape_failures + pass2.shape_failures);
  }
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  return failures == 0 ? 0 : 1;
}
