#include "la/cholesky.hpp"

#include <cmath>

namespace gcnrl::la {

Cholesky::Cholesky(const Mat& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky: matrix must be square");
  }
  const int n = a.rows();
  l_ = Mat(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (int k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          throw NotPositiveDefiniteError{};
        }
        l_(i, i) = std::sqrt(sum);
      } else {
        l_(i, j) = sum / l_(j, j);
      }
    }
  }
}

std::vector<double> Cholesky::solve_lower(const std::vector<double>& b) const {
  const int n = l_.rows();
  std::vector<double> y(b);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j) y[i] -= l_(i, j) * y[j];
    y[i] /= l_(i, i);
  }
  return y;
}

std::vector<double> Cholesky::solve(const std::vector<double>& b) const {
  const int n = l_.rows();
  std::vector<double> y = solve_lower(b);
  for (int i = n - 1; i >= 0; --i) {
    for (int j = i + 1; j < n; ++j) y[i] -= l_(j, i) * y[j];
    y[i] /= l_(i, i);
  }
  return y;
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (int i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

}  // namespace gcnrl::la
