// Figure 8 reproduction: topology-transfer learning curves for both
// directions (Two-TIA <-> Three-TIA): GCN-RL transfer vs NG-RL transfer
// vs no transfer, shared warm-up seeds. Emits fig8_<src>_to_<dst>.csv.
//
// One api::run_tasks list mirroring table5: per direction, GCN and NG
// pretrains on the source topology (historical Rng(600)) and three
// single-seed fine-tune modes on the destination (historical Rng(902)),
// Scalar index mode throughout, one calib_group per direction —
// byte-identical CSVs at any GCNRL_EVAL_THREADS.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

int main() {
  const BenchConfig cfg = bench_config();
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());
  const std::vector<std::pair<std::string, std::string>> directions = {
      {"Two-TIA", "Three-TIA"}, {"Three-TIA", "Two-TIA"}};

  std::printf("Fig 8: topology-transfer curves (pretrain=%d, budget=%d)\n%s\n\n",
              cfg.steps, cfg.transfer_steps, bench::eval_banner().c_str());

  std::vector<api::TaskSpec> tasks;
  for (const auto& [src, dst] : directions) {
    const std::string tag = src + ">" + dst;
    for (const std::string method : {"GCN-RL", "NG-RL"}) {
      api::TaskSpec pre;
      pre.circuit = src;
      pre.method = method;
      pre.steps = cfg.steps;
      pre.warmup = cfg.warmup;
      pre.label = tag + " pre " + method;
      pre.index_mode = env::IndexMode::Scalar;
      pre.calib_group = tag;
      pre.seed_base = 600;
      tasks.push_back(pre);
    }
    // Mode order: no transfer, NG transfer, GCN transfer — all on the
    // identical Rng(902) warm-up stream.
    for (int mode = 0; mode < 3; ++mode) {
      api::TaskSpec t;
      t.circuit = dst;
      t.method = mode == 1 ? "NG-RL" : "GCN-RL";
      t.steps = cfg.transfer_steps;
      t.warmup = cfg.transfer_warmup;
      t.index_mode = env::IndexMode::Scalar;
      t.calib_group = tag;
      t.seed_base = 902;
      t.label = tag + (mode == 0   ? " no_transfer"
                       : mode == 1 ? " ng_transfer"
                                   : " gcn_transfer");
      if (mode > 0) t.pretrain_from = tag + " pre " + t.method;
      tasks.push_back(t);
    }
  }

  api::RunOptions opts;
  opts.service = svc;
  opts.calib_samples = cfg.calib_samples;
  const auto results = api::run_tasks(tasks, opts);

  for (std::size_t d = 0; d < directions.size(); ++d) {
    const auto& [src, dst] = directions[d];
    // Per direction: [pre GCN, pre NG, no_transfer, ng_transfer,
    // gcn_transfer].
    const std::size_t base = d * 5;
    const rl::RunResult& none = results[base + 2].runs[0];
    const rl::RunResult& ng = results[base + 3].runs[0];
    const rl::RunResult& gcn = results[base + 4].runs[0];

    const std::string path = "fig8_" + src + "_to_" + dst + ".csv";
    CsvWriter csv(path);
    csv.row({"step", "no_transfer", "ng_transfer", "gcn_transfer"});
    for (std::size_t i = 0; i < none.best_trace.size(); ++i) {
      csv.row({std::to_string(i + 1),
               TextTable::num(none.best_trace[i], 6),
               TextTable::num(ng.best_trace[i], 6),
               TextTable::num(gcn.best_trace[i], 6)});
    }
    std::printf("  %s -> %s: none %.3f | NG %.3f | GCN %.3f -> %s\n",
                src.c_str(), dst.c_str(), none.best_fom, ng.best_fom,
                gcn.best_fom, path.c_str());
    std::fflush(stdout);
  }
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper shape: GCN-RL transfer converges higher; NG-RL transfer is\n"
      "barely distinguishable from no transfer.\n");
  return 0;
}
