#include "meas/tran_metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace gcnrl::meas {
namespace {

void check(const TranCurve& c) {
  if (c.t.size() != c.v.size() || c.t.empty()) {
    throw std::invalid_argument("TranCurve: inconsistent or empty");
  }
}

}  // namespace

double settling_time(const TranCurve& c, double t_edge, double tol_abs) {
  check(c);
  const double v_final = c.v.back();
  // Walk backwards: find the last sample OUTSIDE the tolerance band.
  std::size_t last_outside = 0;
  bool any_outside = false;
  for (std::size_t i = c.t.size(); i-- > 0;) {
    if (c.t[i] < t_edge) break;
    if (std::fabs(c.v[i] - v_final) > tol_abs) {
      last_outside = i;
      any_outside = true;
      break;
    }
  }
  if (!any_outside) return 0.0;
  if (last_outside + 1 >= c.t.size()) return c.t.back() - t_edge;
  return c.t[last_outside + 1] - t_edge;
}

double peak_deviation(const TranCurve& c, double t_edge) {
  check(c);
  const double v_final = c.v.back();
  double peak = 0.0;
  for (std::size_t i = 0; i < c.t.size(); ++i) {
    if (c.t[i] < t_edge) continue;
    peak = std::max(peak, std::fabs(c.v[i] - v_final));
  }
  return peak;
}

double value_at(const TranCurve& c, double t) {
  check(c);
  if (t <= c.t.front()) return c.v.front();
  if (t >= c.t.back()) return c.v.back();
  for (std::size_t i = 1; i < c.t.size(); ++i) {
    if (c.t[i] >= t) {
      const double span = c.t[i] - c.t[i - 1];
      const double w = span > 0.0 ? (t - c.t[i - 1]) / span : 1.0;
      return c.v[i - 1] + w * (c.v[i] - c.v[i - 1]);
    }
  }
  return c.v.back();
}

}  // namespace gcnrl::meas
