#include "common/envcfg.hpp"

#include <cstdlib>
#include <string>

namespace gcnrl {

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  try {
    return std::stoi(raw);
  } catch (...) {
    return fallback;
  }
}

bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && std::string(raw) != "0" && std::string(raw) != "";
}

BenchConfig bench_config() {
  BenchConfig cfg;
  if (env_flag("GCNRL_FULL")) {
    cfg.full = true;
    cfg.steps = 10000;
    cfg.warmup = 500;
    cfg.transfer_steps = 300;
    cfg.transfer_warmup = 100;
    cfg.seeds = 3;
    cfg.calib_samples = 5000;
  }
  cfg.steps = env_int("GCNRL_STEPS", cfg.steps);
  cfg.seeds = env_int("GCNRL_SEEDS", cfg.seeds);
  cfg.calib_samples = env_int("GCNRL_CALIB", cfg.calib_samples);
  cfg.warmup = env_int("GCNRL_WARMUP", cfg.warmup);
  cfg.transfer_steps = env_int("GCNRL_TRANSFER_STEPS", cfg.transfer_steps);
  cfg.transfer_warmup = env_int("GCNRL_TRANSFER_WARMUP", cfg.transfer_warmup);
  if (cfg.warmup >= cfg.steps) cfg.warmup = cfg.steps / 3;
  if (cfg.transfer_warmup >= cfg.transfer_steps) {
    cfg.transfer_warmup = cfg.transfer_steps / 3;
  }
  return cfg;
}

}  // namespace gcnrl
