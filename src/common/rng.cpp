#include "common/rng.hpp"

#include <cmath>

namespace gcnrl {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used to expand a single seed into the xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire's multiply-shift rejection method for unbiased bounded ints.
  if (n == 0) return 0;
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::truncated_normal(double mean, double stddev, double lo,
                             double hi) {
  if (lo > hi) std::swap(lo, hi);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  // Bounds are many sigma away from the mean; clamping is the sensible
  // limit behaviour and keeps sampling O(1).
  const double x = normal(mean, stddev);
  return x < lo ? lo : (x > hi ? hi : x);
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace gcnrl
