// Tests for the NN stack: Linear, GCN layer, Adam, init, serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/gcn.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/serialize.hpp"

namespace ag = gcnrl::ag;
namespace la = gcnrl::la;
namespace nn = gcnrl::nn;
using gcnrl::Rng;

TEST(Init, XavierBounds) {
  Rng rng(1);
  const la::Mat m = nn::xavier_uniform(30, 50, rng);
  const double a = std::sqrt(6.0 / 80.0);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      EXPECT_LE(std::fabs(m(r, c)), a);
    }
  }
}

TEST(Linear, ForwardMatchesManual) {
  Rng rng(2);
  nn::Linear lin("l", 3, 2, rng);
  la::Mat x{{1.0, 2.0, 3.0}, {-1.0, 0.5, 0.0}};
  ag::Tape tape;
  ag::Var y = lin.forward(tape, tape.input(x));
  ASSERT_EQ(y.rows(), 2);
  ASSERT_EQ(y.cols(), 2);
  const la::Mat& w = lin.parameters()[0]->value;
  const la::Mat& b = lin.parameters()[1]->value;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      double expect = b(0, c);
      for (int k = 0; k < 3; ++k) expect += x(r, k) * w(k, c);
      EXPECT_NEAR(y.value()(r, c), expect, 1e-12);
    }
  }
}

TEST(Linear, GradientsFlowToParameters) {
  Rng rng(3);
  nn::Linear lin("l", 2, 2, rng);
  la::Mat x{{1.0, -1.0}};
  ag::Tape tape;
  lin.zero_grad();
  ag::Var loss = ag::sum_all(lin.forward(tape, tape.input(x)));
  tape.backward(loss);
  // d loss / d b = 1 per output; d loss / d w = x^T broadcast.
  const la::Mat& gb = lin.parameters()[1]->grad;
  EXPECT_DOUBLE_EQ(gb(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(gb(0, 1), 1.0);
  const la::Mat& gw = lin.parameters()[0]->grad;
  EXPECT_DOUBLE_EQ(gw(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(gw(1, 1), -1.0);
}

TEST(Gcn, NormalizedAdjacencyTwoNodeChain) {
  // A = [[0,1],[1,0]]; A+I has all degrees 2 -> A-hat = 0.5 everywhere.
  la::Mat a{{0.0, 1.0}, {1.0, 0.0}};
  const la::Mat ahat = nn::normalized_adjacency(a);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) EXPECT_NEAR(ahat(i, j), 0.5, 1e-12);
  }
}

TEST(Gcn, NormalizedAdjacencyIsSymmetric) {
  Rng rng(4);
  const int n = 7;
  la::Mat a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v = rng.uniform() < 0.4 ? 1.0 : 0.0;
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const la::Mat ahat = nn::normalized_adjacency(a);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) EXPECT_NEAR(ahat(i, j), ahat(j, i), 1e-12);
  }
  // Identity graph: A-hat = I.
  const la::Mat id_hat = nn::normalized_adjacency(la::Mat(n, n));
  for (int i = 0; i < n; ++i) EXPECT_NEAR(id_hat(i, i), 1.0, 1e-12);
}

TEST(Gcn, IdentityAdjacencyEqualsSharedFc) {
  // With A-hat = I the GCN layer must behave exactly like a Linear with
  // the same weights (the NG-RL ablation).
  Rng rng(5);
  nn::GcnLayer gcn("g", 3, 2, rng);
  la::Mat x{{0.3, -0.2, 1.0}, {0.1, 0.8, -0.5}};
  const la::Mat eye = la::Mat::identity(2);
  ag::Tape tape;
  ag::Var y = gcn.forward(tape, tape.input(x), eye);
  const la::Mat& w = gcn.parameters()[0]->value;
  const la::Mat& b = gcn.parameters()[1]->value;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      double expect = b(0, c);
      for (int k = 0; k < 3; ++k) expect += x(r, k) * w(k, c);
      EXPECT_NEAR(y.value()(r, c), expect, 1e-12);
    }
  }
}

TEST(Gcn, AggregationMixesNeighbors) {
  Rng rng(6);
  nn::GcnLayer gcn("g", 1, 1, rng);
  la::Mat a{{0.0, 1.0}, {1.0, 0.0}};
  const la::Mat ahat = nn::normalized_adjacency(a);
  la::Mat x{{1.0}, {3.0}};
  ag::Tape tape;
  ag::Var y = gcn.forward(tape, tape.input(x), ahat);
  // Both rows aggregate to 0.5*(1+3) = 2 before the affine map -> equal.
  EXPECT_NEAR(y.value()(0, 0), y.value()(1, 0), 1e-12);
}

TEST(Adam, MinimizesQuadratic) {
  // Minimize ||x - target||^2 over a parameter vector via the Module path.
  struct Quad : nn::Module {
    nn::Parameter p{"p", la::Mat(1, 4)};
    std::vector<nn::Parameter*> parameters() override { return {&p}; }
  } quad;
  la::Mat target{{1.0, -2.0, 0.5, 3.0}};
  nn::Adam opt(quad.parameters(), 0.05);
  for (int it = 0; it < 500; ++it) {
    quad.zero_grad();
    ag::Tape tape;
    ag::Var x = tape.make(quad.p.value, true, nullptr);
    ag::Node* node = x.node();
    nn::Parameter* pp = &quad.p;
    node->pullback = [pp, node] { pp->grad += node->grad; };
    ag::Var loss = ag::mse_const(x, target);
    tape.backward(loss);
    opt.step();
  }
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(quad.p.value(0, c), target(0, c), 1e-3);
  }
}

TEST(Serialize, RoundTrip) {
  Rng rng(7);
  nn::Linear a("net.layer0", 4, 3, rng);
  nn::Linear b("net.layer1", 3, 2, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "gcnrl_weights_test.bin")
          .string();
  std::vector<nn::Parameter*> params;
  for (auto* p : a.parameters()) params.push_back(p);
  for (auto* p : b.parameters()) params.push_back(p);
  nn::save_parameters(path, params);

  Rng rng2(99);
  nn::Linear a2("net.layer0", 4, 3, rng2);
  nn::Linear b2("net.layer1", 3, 2, rng2);
  std::vector<nn::Parameter*> params2;
  for (auto* p : a2.parameters()) params2.push_back(p);
  for (auto* p : b2.parameters()) params2.push_back(p);
  const int copied = nn::load_parameters(path, params2);
  EXPECT_EQ(copied, 4);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const la::Mat& src = params[i]->value;
    const la::Mat& dst = params2[i]->value;
    for (int r = 0; r < src.rows(); ++r) {
      for (int c = 0; c < src.cols(); ++c) {
        EXPECT_DOUBLE_EQ(src(r, c), dst(r, c));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, StrictRejectsMissing) {
  Rng rng(8);
  nn::Linear a("only.a", 2, 2, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "gcnrl_weights_test2.bin")
          .string();
  nn::save_parameters(path, a.parameters());
  nn::Linear b("other.name", 2, 2, rng);
  EXPECT_THROW(nn::load_parameters(path, b.parameters(), /*strict=*/true),
               std::runtime_error);
  EXPECT_EQ(nn::load_parameters(path, b.parameters(), /*strict=*/false), 0);
  std::remove(path.c_str());
}

TEST(Serialize, CopyParametersByName) {
  Rng rng(9);
  nn::Linear a("shared", 3, 3, rng);
  nn::Linear b("shared", 3, 3, rng);
  const int copied = nn::copy_parameters(a.parameters(), b.parameters());
  EXPECT_EQ(copied, 2);
  EXPECT_DOUBLE_EQ(a.parameters()[0]->value(1, 2),
                   b.parameters()[0]->value(1, 2));
}
