// Common ask/tell interface for the black-box baselines of Table I
// (random search, CMA-ES, Bayesian optimization, MACE).
//
// All optimizers work on the flattened action space x in [-1, 1]^dim and
// MAXIMIZE the objective (the FoM). The environment applies the identical
// refinement pipeline to these vectors as to the RL agent's actions, so
// every method searches the same legal design space.
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace gcnrl::opt {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Propose one batch of candidate points (at least one).
  virtual std::vector<std::vector<double>> ask() = 0;
  // Report the objective value for each point of the last ask() batch.
  virtual void tell(const std::vector<std::vector<double>>& xs,
                    const std::vector<double>& ys) = 0;

  [[nodiscard]] virtual int dim() const = 0;
};

}  // namespace gcnrl::opt
