#include "sim/noise.hpp"

#include <chrono>
#include <cmath>

#include "sim/ac.hpp"
#include "sim/perf.hpp"
#include "sim/structure.hpp"

namespace gcnrl::sim {
namespace {

using cd = std::complex<double>;
using clock_type = std::chrono::steady_clock;

double seconds_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Unit output-probe excitation for the adjoint solves; shared across the
// whole sweep.
std::vector<cd> probe_vector(const MnaMap& m, int outp, int outn) {
  std::vector<cd> e(m.dim(), cd(0.0));
  if (m.v(outp) >= 0) e[m.v(outp)] += 1.0;
  if (m.v(outn) >= 0) e[m.v(outn)] -= 1.0;
  return e;
}

// Output PSD at one frequency given the adjoint solution ytr for that
// frequency: |transfer|^2-weighted sum of every noise generator.
double accumulate_psd(const SimContext& ctx, const OpPoint& op, double f,
                      const cd* ytr) {
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  auto transfer_sq = [&](int a, int b) {
    const cd ta = m.v(a) >= 0 ? ytr[m.v(a)] : cd(0.0);
    const cd tb = m.v(b) >= 0 ? ytr[m.v(b)] : cd(0.0);
    return std::norm(ta - tb);
  };
  double psd = 0.0;
  for (const auto& res : nl.resistors()) {
    psd += transfer_sq(res.a, res.b) * resistor_thermal_psd(res.r);
  }
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& mos = nl.mosfets()[k];
    const double gm = std::max(op.mos[k].gm, 0.0);
    const double s_th = mos_thermal_psd(gm);
    const double s_fl = mos_flicker_psd(ctx.models[k], mos, gm, f);
    psd += transfer_sq(mos.d, mos.s) * (s_th + s_fl);
  }
  return psd;
}

// Legacy dense sweep (and the fallback when the sparse engine rejects a
// block): one complex factorization + adjoint solve per frequency.
NoiseResult solve_noise_dense(const SimContext& ctx, const OpPoint& op,
                              const std::vector<double>& freqs, int outp,
                              int outn) {
  const auto t0 = clock_type::now();
  const MnaMap& m = ctx.map;
  PhaseSeconds phase;

  NoiseResult out;
  out.freq = freqs;
  out.out_psd.resize(freqs.size(), 0.0);

  const std::vector<cd> e = probe_vector(m, outp, outn);

  // One netlist walk for the whole sweep; each frequency assembles
  // Y = G + j*omega*C by scaled addition.
  const auto s0 = clock_type::now();
  const AcStamps stamps = build_ac_stamps(ctx, op);
  phase.assembly += seconds_between(s0, clock_type::now());

  la::Lu<cd> lu;
  std::vector<cd> ytr;
  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const double f = freqs[fi];
    const double omega = 2.0 * M_PI * f;
    const auto a0 = clock_type::now();
    la::CMat y = assemble_ac_matrix(stamps, omega);
    const auto a1 = clock_type::now();
    lu.factor_swap(y);
    const auto a2 = clock_type::now();
    // Adjoint: Y^T ytr = e  =>  v_out(unit injection a->b) = ytr_a - ytr_b.
    lu.solve_transposed_into(e, ytr, /*conjugate=*/false);
    const auto a3 = clock_type::now();
    phase.assembly += seconds_between(a0, a1);
    phase.factor += seconds_between(a1, a2);
    phase.solve += seconds_between(a2, a3);
    out.out_psd[fi] = accumulate_psd(ctx, op, f, ytr.data());
  }
  sim_perf_record(Analysis::Noise, static_cast<long>(freqs.size()),
                  seconds_between(t0, clock_type::now()), 0, 0, &phase);
  return out;
}

// Sparse SoA sweep: assemble G/C once into pattern slots, factor blocks
// of frequency points over one symbolic factorization, adjoint-solve all
// lanes at once.
NoiseResult solve_noise_sparse(const SimContext& ctx, const OpPoint& op,
                               const std::vector<double>& freqs, int outp,
                               int outn) {
  constexpr int kLanes = la::SparseSweepLu::kMaxLanes;
  const auto t0 = clock_type::now();
  const MnaMap& m = ctx.map;
  const MnaStructure& st = *ctx.structure;
  PhaseSeconds phase;

  NoiseResult out;
  out.freq = freqs;
  out.out_psd.resize(freqs.size(), 0.0);

  const std::vector<cd> e = probe_vector(m, outp, outn);

  const auto s0 = clock_type::now();
  std::vector<double> g, c;
  assemble_ac_gc(ctx, st, op, g, c);
  phase.assembly += seconds_between(s0, clock_type::now());

  if (!ctx.sweep_cache) {
    ctx.sweep_cache = std::make_unique<la::SparseSweepLu>(st.pattern);
  }
  la::SparseSweepLu& sweep = *ctx.sweep_cache;
  std::vector<cd> ys(static_cast<std::size_t>(kLanes) * m.dim());
  double omega[kLanes];
  const int nf = static_cast<int>(freqs.size());
  for (int fi = 0; fi < nf; fi += kLanes) {
    const int count = std::min(kLanes, nf - fi);
    for (int f = 0; f < count; ++f) {
      omega[f] = 2.0 * M_PI * freqs[fi + f];
    }
    const auto a1 = clock_type::now();
    if (!sweep.factor_block(g.data(), c.data(), omega, count)) {
      throw SparseEngineFallback{};
    }
    const auto a2 = clock_type::now();
    sweep.solve_transposed_block(e.data(), ys.data(), m.dim());
    const auto a3 = clock_type::now();
    phase.factor += seconds_between(a1, a2);
    phase.solve += seconds_between(a2, a3);
    for (int f = 0; f < count; ++f) {
      const cd* ytr = ys.data() + static_cast<std::size_t>(f) * m.dim();
      out.out_psd[fi + f] = accumulate_psd(ctx, op, freqs[fi + f], ytr);
    }
  }
  sim_perf_record(Analysis::Noise, static_cast<long>(freqs.size()),
                  seconds_between(t0, clock_type::now()), 0, 0, &phase);
  return out;
}

}  // namespace

NoiseResult solve_noise(const SimContext& ctx, const OpPoint& op,
                        const std::vector<double>& freqs, int outp,
                        int outn) {
  if (sparse_engine_enabled() && ctx.structure) {
    try {
      return solve_noise_sparse(ctx, op, freqs, outp, outn);
    } catch (const SparseEngineFallback&) {
      sim_perf_sparse_fallback(Analysis::Noise);
    }
  }
  return solve_noise_dense(ctx, op, freqs, outp, outn);
}

}  // namespace gcnrl::sim
