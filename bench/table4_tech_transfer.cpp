// Table IV reproduction: knowledge transfer from 180 nm to 250/130/65/45
// nm on Two-TIA and Three-TIA. A GCN-RL agent pretrained at 180 nm is
// copied into agents for the target nodes and fine-tuned with a small
// step budget; the baseline trains from scratch with the same budget and
// the same seeds (paper: 300 steps = 100 warm-up + 200 exploration).
//
// The whole protocol is one api::run_tasks list: per circuit a 1-seed
// 180 nm pretrain task (historical Rng(500)) and, per target node, a
// from-scratch and a pretrain_from fine-tune sharing the historical
// 900 + 31*s seed ladder. The planner orders pretrains before their
// consumers and merges everything else into lockstep groups; per-task
// results are bit-identical to the previous hand-wired LockstepGroup
// harness at any GCNRL_EVAL_THREADS.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

int main() {
  const BenchConfig cfg = bench_config();
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());
  const std::vector<std::string> targets = {"250nm", "130nm", "65nm",
                                            "45nm"};

  std::printf(
      "Table IV: technology transfer 180nm -> {250,130,65,45}nm\n"
      "(pretrain=%d steps, budget=%d steps with %d warm-up, seeds=%d)\n"
      "%s\n\n",
      cfg.steps, cfg.transfer_steps, cfg.transfer_warmup, cfg.seeds,
      bench::eval_banner().c_str());

  std::vector<api::TaskSpec> tasks;
  for (const std::string circuit_name : {"Two-TIA", "Three-TIA"}) {
    api::TaskSpec pre;
    pre.circuit = circuit_name;
    pre.method = "GCN-RL";
    pre.node = "180nm";
    pre.steps = cfg.steps;
    pre.warmup = cfg.warmup;
    pre.label = circuit_name + "-pre180";
    pre.seed_base = 500;
    tasks.push_back(pre);
    for (const auto& node : targets) {
      // Same seed ladder for both modes: identical warm-up samples
      // (paper: "We use the same random seeds for two methods").
      for (const bool transfer : {false, true}) {
        api::TaskSpec t;
        t.circuit = circuit_name;
        t.method = "GCN-RL";
        t.node = node;
        t.steps = cfg.transfer_steps;
        t.warmup = cfg.transfer_warmup;
        t.seeds = cfg.seeds;
        t.seed_base = 900;
        t.seed_stride = 31;
        t.label = circuit_name + "@" + node +
                  (transfer ? " transfer" : " no transfer");
        if (transfer) t.pretrain_from = circuit_name + "-pre180";
        tasks.push_back(t);
      }
    }
  }

  api::RunOptions opts;
  opts.service = svc;
  opts.calib_samples = cfg.calib_samples;
  const auto results = api::run_tasks(tasks, opts);

  TextTable table({"Circuit / mode", "250nm", "130nm", "65nm", "45nm"});
  std::size_t i = 0;
  for (const std::string circuit_name : {"Two-TIA", "Three-TIA"}) {
    ++i;  // the pretrain task's own result feeds no table cell
    std::printf("  %s pretrained at 180nm\n", circuit_name.c_str());
    std::fflush(stdout);
    std::vector<std::string> row_none = {circuit_name + " no transfer"};
    std::vector<std::string> row_xfer = {circuit_name + " transfer"};
    for (const auto& node : targets) {
      const api::TaskResult& none = results[i++];
      const api::TaskResult& xfer = results[i++];
      row_none.push_back(bench::pm(none.mean, none.stddev));
      row_xfer.push_back(bench::pm(xfer.mean, xfer.stddev));
      std::printf("  %s @ %s: none=%s  transfer=%s\n", circuit_name.c_str(),
                  node.c_str(), row_none.back().c_str(),
                  row_xfer.back().c_str());
      std::fflush(stdout);
    }
    table.add_row(row_none);
    table.add_row(row_xfer);
  }

  std::printf("\n");
  table.print();
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper reference: transfer beats no-transfer on every node, e.g.\n"
      "Two-TIA 65nm: 2.36 -> 2.52; Three-TIA 65nm: 0.55 -> 1.20.\n");
  return 0;
}
