// DC Newton warm-start plumbing.
//
// Two cooperating mechanisms, both feeding solve_dc an initial guess that
// lets Newton skip the full gmin/source-stepping ladder when the guess
// converges (and fall back to the unchanged ladder when it does not):
//
//  1. Explicit, intra-evaluation: a measurement closure that builds several
//     Simulators for one sized design (closed loop, open loop, injection
//     testbench, perturbed-load copies, ...) hands the already-solved
//     operating point of one testbench to the next via
//     Simulator::warm_start_from. The guess is derived exclusively from
//     the design being evaluated, so evaluation stays a *pure function of
//     the design* — the invariant the EvalService cache, the isolation-
//     parity tests and the budget chain all rest on.
//
//  2. Scoped, cross-design: a WarmStartBank carries the converged operating
//     points of the previous design evaluated by the same submitter (one
//     slot per Simulator construction inside the closure — testbench k of
//     design n warm-starts from testbench k of design n-1, which has the
//     identical netlist structure). The bank is installed around a closure
//     invocation with WarmStartScope (thread-local, so concurrent
//     EvalService workers never share one); EvalService snapshots each
//     env's bank at submission and commits it back in submission order,
//     which keeps results bit-identical across thread counts and repeated
//     invocations. Because this makes a result depend on the submitter's
//     evaluation *history* (and hence on the cache hit/miss pattern), it
//     is OFF by default and opted into per service — see
//     EvalServiceConfig::dc_warm_start.
#pragma once

#include <vector>

#include "sim/mna.hpp"

namespace gcnrl::sim {

// Projects an operating point solved on one netlist onto the unknown
// vector of a (possibly structurally different) netlist: node voltages
// are copied by node id, voltage-source branch currents by source index,
// anything the source op does not cover starts at zero. Testbench
// derivations in the circuit builders only ever *append* nodes and
// sources to the sized netlist, so the shared prefix lines up exactly.
std::vector<double> project_op(const OpPoint& op, const MnaMap& map);

// Per-submitter bank of converged operating points: one slot per
// Simulator constructed while a scope is active (construction order is
// the slot index), plus the most recent converged op for cross-testbench
// projection when a slot is still empty.
class WarmStartBank {
 public:
  struct Slot {
    bool valid = false;
    int num_nodes = 0;
    int num_branches = 0;
    OpPoint op;
  };

  // Slot contents from the previous design, nullptr when empty or when
  // the netlist structure changed (dimension mismatch).
  [[nodiscard]] const OpPoint* slot_op(int slot, const MnaMap& map) const;
  // Most recent converged op stored this session (any slot).
  [[nodiscard]] const OpPoint* last_op() const {
    return has_last_ ? &last_ : nullptr;
  }

  void store(int slot, const MnaMap& map, const OpPoint& op);

  [[nodiscard]] std::size_t num_slots() const { return slots_.size(); }

 private:
  std::vector<Slot> slots_;
  OpPoint last_;
  bool has_last_ = false;
};

// RAII thread-local installation of a bank around a measurement-closure
// call. Simulators constructed while a scope is active claim consecutive
// slot indices and read/write the bank through it; without an active
// scope Simulator behaves exactly as before (cold start unless
// warm_start_from was called).
class WarmStartScope {
 public:
  explicit WarmStartScope(WarmStartBank* bank);
  ~WarmStartScope();
  WarmStartScope(const WarmStartScope&) = delete;
  WarmStartScope& operator=(const WarmStartScope&) = delete;

  // The scope active on this thread, nullptr outside any scope.
  static WarmStartScope* current();

  // Next Simulator slot index (claimed at Simulator construction).
  int claim_slot() { return next_slot_++; }
  WarmStartBank& bank() { return *bank_; }

 private:
  WarmStartBank* bank_;
  WarmStartScope* prev_;
  int next_slot_ = 0;
};

}  // namespace gcnrl::sim
