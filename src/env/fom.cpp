#include "env/fom.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gcnrl::env {

double MetricDef::normalized(double m) const {
  const double capped = weight >= 0.0 ? (bound ? std::min(m, *bound) : m)
                                      : (bound ? std::max(m, *bound) : m);
  double t = 0.0;
  if (log_norm && mmin > 0.0 && mmax > mmin) {
    const double lspan = std::log(mmax / mmin);
    t = std::log(std::clamp(capped, mmin, mmax) / mmin) / lspan;
  } else {
    const double span = mmax - mmin;
    if (span <= 0.0) return 0.0;
    t = (capped - mmin) / span;
  }
  if (weight < 0.0) t = 1.0 - t;
  // Saturate outside the calibrated range: a finite random sample cannot
  // cover the extreme tails, and without saturation a single blown-out
  // metric (e.g. gain far beyond anything calibration saw) would dominate
  // the whole FoM and break its [0, sum|w|] interpretation.
  return std::clamp(t, 0.0, 1.0);
}

bool MetricDef::spec_ok(double m) const {
  if (spec_min && m < *spec_min) return false;
  if (spec_max && m > *spec_max) return false;
  return true;
}

MetricDef* FomSpec::find(const std::string& name) {
  for (auto& md : metrics) {
    if (md.name == name) return &md;
  }
  return nullptr;
}

const MetricDef* FomSpec::find(const std::string& name) const {
  for (const auto& md : metrics) {
    if (md.name == name) return &md;
  }
  return nullptr;
}

void FomSpec::set_weight(const std::string& name, double w) {
  MetricDef* md = find(name);
  if (md == nullptr) {
    throw std::invalid_argument("FomSpec::set_weight: unknown metric " + name);
  }
  md->weight = w;
}

bool FomSpec::spec_ok(const MetricMap& m) const {
  for (const auto& md : metrics) {
    auto it = m.find(md.name);
    if (it == m.end() || !std::isfinite(it->second)) return false;
    if (!md.spec_ok(it->second)) return false;
  }
  return true;
}

double FomSpec::fom(const MetricMap& m) const {
  if (enforce_spec && !spec_ok(m)) return spec_fail_fom;
  double acc = 0.0;
  for (const auto& md : metrics) {
    auto it = m.find(md.name);
    if (it == m.end() || !std::isfinite(it->second)) return sim_fail_fom;
    acc += std::fabs(md.weight) * md.normalized(it->second);
  }
  return acc;
}

void FomSpec::calibrate(const std::vector<MetricMap>& samples) {
  for (auto& md : metrics) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto& s : samples) {
      auto it = s.find(md.name);
      if (it == s.end() || !std::isfinite(it->second)) continue;
      // Log-normalized metrics ignore non-positive samples for the lower
      // normalizer (a settling time of exactly zero has no log image).
      if (!(md.log_norm && it->second <= 0.0)) lo = std::min(lo, it->second);
      hi = std::max(hi, it->second);
    }
    if (!std::isfinite(hi)) {
      throw std::runtime_error("FomSpec::calibrate: no samples for metric " +
                               md.name);
    }
    if (md.log_norm) {
      if (!std::isfinite(lo) || lo <= 0.0) lo = std::max(hi * 1e-6, 1e-15);
      if (hi <= lo) hi = lo * 10.0;
    } else {
      if (!std::isfinite(lo)) lo = hi;
      if (hi - lo < 1e-30) {
        // Degenerate: all samples identical; widen symmetrically.
        const double pad = std::max(std::fabs(hi), 1.0);
        lo -= 0.5 * pad;
        hi += 0.5 * pad;
      }
    }
    md.mmin = lo;
    md.mmax = hi;
  }
}

double FomSpec::max_fom() const {
  double acc = 0.0;
  for (const auto& md : metrics) acc += std::fabs(md.weight);
  return acc;
}

}  // namespace gcnrl::env
