// Design space + action refinement (paper Sec. III-B step 4).
//
// Actions arrive normalized in [-1, 1] per component per parameter (MOS:
// W, L, M; R: r; C: c). Refinement turns them into legal parameters:
//   1. matching   — components in a match group receive identical actions
//                   (full match) or identical L (l_only: current-mirror
//                   legs keep independent W/M to realize mirror ratios);
//   2. denormalize — log- or linear-scale mapping onto [lo, hi];
//   3. quantize   — round W/L to the technology grid, M to an integer;
//   4. truncate   — clamp to the bounds.
// The same refinement is applied to the RL agent's actions and to every
// black-box baseline, so all methods search the identical legal space.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/tech.hpp"
#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace gcnrl::circuit {

struct ParamRange {
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;
  double grid = 0.0;    // 0 = continuous
  bool integer = false; // round to nearest integer (M)

  // [-1,1] -> value (before quantization).
  [[nodiscard]] double denormalize(double a) const;
  // value -> [-1,1] (inverse map, clamped).
  [[nodiscard]] double normalize(double v) const;
  // quantize+clamp a raw value into the legal set.
  [[nodiscard]] double refine_value(double v) const;
};

struct CompSpace {
  Kind kind;
  std::string name;
  std::array<ParamRange, kMaxActionDim> p{};
  [[nodiscard]] int nparams() const { return action_dim(kind); }
};

struct MatchGroup {
  std::vector<int> comps;  // design-component indices
  bool l_only = false;     // match only L (mirror legs); else full match
};

// Refined parameter assignment for every design component.
struct DesignParams {
  std::vector<std::array<double, kMaxActionDim>> v;
};

class DesignSpace {
 public:
  DesignSpace() = default;

  // Default ranges from the technology: W/L log-scaled over the node's
  // geometry limits, M in [1, mmax], R/C log-scaled over the node ranges.
  static DesignSpace from_netlist(const Netlist& nl, const Technology& tech);

  [[nodiscard]] int num_components() const {
    return static_cast<int>(comps_.size());
  }
  [[nodiscard]] int flat_dim() const;
  CompSpace& comp(int i) { return comps_.at(i); }
  [[nodiscard]] const CompSpace& comp(int i) const { return comps_.at(i); }
  [[nodiscard]] int find(const std::string& name) const;

  // Match groups are specified by component names (must exist).
  void add_match_group(const Netlist& nl, std::vector<std::string> names,
                       bool l_only = false);
  [[nodiscard]] const std::vector<MatchGroup>& match_groups() const {
    return groups_;
  }

  // --- refinement ------------------------------------------------------
  // actions: n x kMaxActionDim in [-1, 1] (unused entries ignored).
  [[nodiscard]] DesignParams refine(const la::Mat& actions) const;
  // Flattened [-1,1] vector view for black-box optimizers.
  [[nodiscard]] la::Mat unflatten(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> flatten(const la::Mat& actions) const;
  [[nodiscard]] la::Mat random_actions(Rng& rng) const;
  // Inverse: express concrete parameter values as [-1,1] actions (used to
  // seed/evaluate the human-expert design through the same pipeline).
  [[nodiscard]] la::Mat actions_from_params(const DesignParams& p) const;

  // Apply refined parameters onto a netlist (same component ordering).
  void apply(Netlist& nl, const DesignParams& p) const;

 private:
  std::vector<CompSpace> comps_;
  std::vector<MatchGroup> groups_;
};

}  // namespace gcnrl::circuit
