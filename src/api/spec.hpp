// Declarative task-spec files for gcnrl_cli and programmatic batch runs.
//
// ---------------------------------------------------------------------------
// SPEC FILE SCHEMA (minimal strict JSON — no comments, no trailing commas)
// ---------------------------------------------------------------------------
// {
//   "options": {                  // optional; cross-task RunOptions
//     "calib":      300,          // FoM calibration samples per circuit
//     "calib_seed": 2024,         // shared calibration RNG seed
//     "mode":       "one_hot"     // component indexing: "one_hot"|"scalar"
//   },
//   "tasks": [                    // required; one object per task
//     {
//       "circuit":  "Two-TIA",    // required; a CircuitRegistry name
//       "method":   "GCN-RL",     // required; a MethodRegistry name
//       "node":     "180nm",      // technology node (default "180nm")
//       "steps":    300,          // search steps per seed (default 300)
//       "warmup":   100,          // RL warm-up steps (default 100)
//       "seeds":    1,            // independent seeds (default 1)
//       "sim_budget": 0,          // simulated-cost cap per seed:
//                                 //   0 = auto (budget_from chain),
//                                 //  >0 = explicit cap (ask/tell methods
//                                 //       only; rejected elsewhere),
//                                 //  <0 = force uncapped
//       "label":    "my-run"      // display label (default method/circuit)
//     }
//   ]
// }
// ---------------------------------------------------------------------------
// Unknown keys anywhere are an error (fail loudly rather than silently
// ignore a typo); so are wrong value types. Budget chains (BO/MACE
// stopping at the matching ES seed's simulated cost) need no annotation:
// api::run_tasks matches source tasks by (method, circuit, node, steps,
// seeds) wherever they appear in the list.
#pragma once

#include <string>
#include <vector>

#include "api/task.hpp"

namespace gcnrl::api {

// A parsed spec file: cross-task options (RunOptions::service is always
// null — the runner supplies it) plus the task list.
struct TaskFile {
  RunOptions options;
  std::vector<TaskSpec> tasks;
};

// Parses spec-file text. Throws std::runtime_error with a line:column
// position on malformed JSON and with the offending key on schema errors.
TaskFile parse_task_spec(const std::string& text);

// Reads and parses a spec file from disk; throws std::runtime_error when
// the file cannot be read.
TaskFile load_task_spec(const std::string& path);

}  // namespace gcnrl::api
