#include "nn/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>

namespace gcnrl::nn {
namespace {

constexpr std::uint32_t kMagic = 0x47435231;  // "GCR1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_u32(std::FILE* f, std::uint32_t v) {
  if (std::fwrite(&v, sizeof(v), 1, f) != 1) {
    throw std::runtime_error("serialize: write failed");
  }
}

std::uint32_t read_u32(std::FILE* f) {
  std::uint32_t v = 0;
  if (std::fread(&v, sizeof(v), 1, f) != 1) {
    throw std::runtime_error("serialize: truncated file");
  }
  return v;
}

}  // namespace

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("save_parameters: cannot open " + path);
  write_u32(f.get(), kMagic);
  write_u32(f.get(), static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    write_u32(f.get(), static_cast<std::uint32_t>(p->name.size()));
    if (std::fwrite(p->name.data(), 1, p->name.size(), f.get()) !=
        p->name.size()) {
      throw std::runtime_error("serialize: write failed");
    }
    write_u32(f.get(), static_cast<std::uint32_t>(p->value.rows()));
    write_u32(f.get(), static_cast<std::uint32_t>(p->value.cols()));
    const std::size_t n = p->value.size();
    if (n > 0 &&
        std::fwrite(p->value.data(), sizeof(double), n, f.get()) != n) {
      throw std::runtime_error("serialize: write failed");
    }
  }
}

int load_parameters(const std::string& path,
                    const std::vector<Parameter*>& params, bool strict) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("load_parameters: cannot open " + path);
  if (read_u32(f.get()) != kMagic) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const std::uint32_t count = read_u32(f.get());

  std::map<std::string, la::Mat> stored;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = read_u32(f.get());
    std::string name(name_len, '\0');
    if (name_len > 0 &&
        std::fread(name.data(), 1, name_len, f.get()) != name_len) {
      throw std::runtime_error("serialize: truncated file");
    }
    const int rows = static_cast<int>(read_u32(f.get()));
    const int cols = static_cast<int>(read_u32(f.get()));
    la::Mat m(rows, cols);
    const std::size_t n = m.size();
    if (n > 0 && std::fread(m.data(), sizeof(double), n, f.get()) != n) {
      throw std::runtime_error("serialize: truncated file");
    }
    stored.emplace(std::move(name), std::move(m));
  }

  int copied = 0;
  for (Parameter* p : params) {
    auto it = stored.find(p->name);
    if (it == stored.end() || !it->second.same_shape(p->value)) {
      if (strict) {
        throw std::runtime_error("load_parameters: no match for " + p->name);
      }
      continue;
    }
    p->value = it->second;
    ++copied;
  }
  return copied;
}

int copy_parameters(const std::vector<Parameter*>& src,
                    const std::vector<Parameter*>& dst) {
  std::map<std::string, const Parameter*> by_name;
  for (const Parameter* p : src) by_name.emplace(p->name, p);
  int copied = 0;
  for (Parameter* d : dst) {
    auto it = by_name.find(d->name);
    if (it != by_name.end() && it->second->value.same_shape(d->value)) {
      d->value = it->second->value;
      ++copied;
    }
  }
  return copied;
}

}  // namespace gcnrl::nn
