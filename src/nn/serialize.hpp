// Named-tensor (de)serialization.
//
// This is the knowledge-transfer mechanism of the paper: an agent trained
// on one technology node (or, in scalar-index state mode, one topology) is
// saved and its actor/critic weights are loaded into a fresh agent for the
// target node/topology. The checkpoint store (api/checkpoints.hpp) builds
// its disk tier on the same format.
//
// Format (version 2, self-describing binary):
//   u32 magic "GCR1"
//   u32 format version (kFormatVersion)
//   u32 meta count,   then per entry: key_len/key, value_len/value
//   u32 tensor count, then per record: name_len/name, rows, cols, doubles
// Every count and length is sanity-checked against the bytes actually
// remaining in the file before anything is allocated, so a truncated or
// bit-flipped checkpoint fails with a diagnostic instead of driving
// multi-GB allocations from attacker-chosen sizes. Files written before
// the version field existed are rejected with an explicit message.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nn/module.hpp"

namespace gcnrl::nn {

// The on-disk format version written by save_tensors. Readers reject any
// other value (there is exactly one live version at a time; bump this when
// the layout changes).
inline constexpr std::uint32_t kFormatVersion = 2;

// One named weight matrix, detached from any Module (the unit of the
// checkpoint store's in-memory tier).
struct NamedTensor {
  std::string name;
  la::Mat value;
};

// Free-form string metadata stamped into a file (insertion order is
// preserved on disk and on load).
using MetaList = std::vector<std::pair<std::string, std::string>>;

// A fully parsed weight file.
struct TensorFile {
  MetaList meta;
  std::vector<NamedTensor> tensors;
};

// Detach a parameter list into named tensors (deep copies).
std::vector<NamedTensor> snapshot_parameters(
    const std::vector<Parameter*>& params);

// Writes tensors (+ metadata) in the versioned format above. Throws
// std::runtime_error on I/O failure.
void save_tensors(const std::string& path,
                  const std::vector<NamedTensor>& tensors,
                  const MetaList& meta = {});

// Reads a whole file back, validating magic, version, and every size
// field against the remaining file length. Throws std::runtime_error with
// the offending field on corrupt/truncated/foreign files.
TensorFile load_tensors(const std::string& path);

// Copies every tensor whose name matches a destination parameter AND has
// the same shape; returns the number copied. `strict` additionally
// requires that every destination parameter is matched — the failure
// message lists the unmatched destination (with its shape) next to the
// names and shapes the source actually contains, so a mismatched transfer
// is diagnosable from the exception alone. `origin` names the source in
// diagnostics (a path, or "<memory>" for in-process transfers).
int assign_tensors(const std::vector<NamedTensor>& src,
                   const std::vector<Parameter*>& dst, bool strict,
                   const std::string& origin);

// --- parameter-list convenience wrappers -----------------------------------

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params);

// Loads by name. Every stored parameter whose name matches a destination
// parameter AND has the same shape is copied; returns the number copied.
// `strict` additionally requires that every destination parameter is
// matched (throws, listing the file's contents, otherwise).
int load_parameters(const std::string& path,
                    const std::vector<Parameter*>& params,
                    bool strict = true);

// In-memory copy by name (used for transfer without touching disk).
int copy_parameters(const std::vector<Parameter*>& src,
                    const std::vector<Parameter*>& dst);

}  // namespace gcnrl::nn
