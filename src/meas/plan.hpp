// Resolved measurement plans: the runnable form of a .gcir description's
// testbenches and extractions.
//
// A Plan is fully resolved — node ids instead of net names, doubles
// instead of Exprs, bench indices instead of bench names — and is built
// once per (description, technology) by env::compile_circuit(). run_plan()
// is the interpreter: it plays the plan against a *sized* netlist exactly
// the way the hand-written builders in src/circuits/ run their analyses,
// and is the body of a compiled circuit's `evaluate` closure.
//
// Concurrency contract (env::BenchmarkCircuit::evaluate): run_plan is a
// pure function of (plan, sized netlist, technology). It constructs its
// Simulators locally — one per bench, in bench order, which also keeps
// WarmStartScope slot claiming identical to a builder running the same
// analyses — and touches no shared mutable state, so a closure capturing
// an immutable Plan by shared_ptr satisfies the contract.
#pragma once

#include <cmath>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/description.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tech.hpp"
#include "meas/ac_metrics.hpp"
#include "meas/tran_metrics.hpp"
#include "sim/simulator.hpp"

namespace gcnrl::meas {

using MetricMap = std::map<std::string, double>;

// --- curve extraction helpers ----------------------------------------------
// (Shared with the hand-written builders; circuits/helpers.hpp re-exports
// them under gcnrl::circuits::detail.)

// Single-ended transfer curve at `node`.
inline AcCurve curve_at(const sim::AcResult& ac, int node) {
  AcCurve c;
  c.freq = ac.freq;
  c.h.reserve(ac.freq.size());
  for (std::size_t i = 0; i < ac.freq.size(); ++i) {
    c.h.push_back(ac.phasor(static_cast<int>(i), node));
  }
  return c;
}

// Differential transfer curve between nodes p and n.
inline AcCurve curve_diff(const sim::AcResult& ac, int p, int n) {
  AcCurve c;
  c.freq = ac.freq;
  c.h.reserve(ac.freq.size());
  for (std::size_t i = 0; i < ac.freq.size(); ++i) {
    c.h.push_back(ac.diff(static_cast<int>(i), p, n));
  }
  return c;
}

// Transient node waveform extraction.
inline TranCurve tran_curve(const sim::TranResult& tr, int node) {
  TranCurve c;
  c.t = tr.t;
  c.v.reserve(tr.t.size());
  for (std::size_t i = 0; i < tr.t.size(); ++i) {
    c.v.push_back(tr.at(static_cast<int>(i), node));
  }
  return c;
}

// Sub-curve restricted to [t0, t1].
inline TranCurve window(const TranCurve& c, double t0, double t1) {
  TranCurve w;
  for (std::size_t i = 0; i < c.t.size(); ++i) {
    if (c.t[i] >= t0 && c.t[i] <= t1) {
      w.t.push_back(c.t[i]);
      w.v.push_back(c.v[i]);
    }
  }
  return w;
}

// Input-referred spot noise density at frequency f: sqrt(Sout / |H(f)|^2).
inline double input_referred_noise(const sim::NoiseResult& nr,
                                   const AcCurve& h, double f) {
  // Locate the PSD sample nearest to f (noise grids are small).
  std::size_t best = 0;
  for (std::size_t i = 1; i < nr.freq.size(); ++i) {
    if (std::fabs(std::log(nr.freq[i] / f)) <
        std::fabs(std::log(nr.freq[best] / f))) {
      best = i;
    }
  }
  const double gain = magnitude_at(h, nr.freq[best]);
  if (gain <= 0.0) return 1.0;  // degenerate design: huge noise
  return std::sqrt(nr.out_psd[best]) / gain;
}

// --- the resolved plan -------------------------------------------------------

// Per-bench source edit, applied to a copy of the sized netlist (the .gcir
// twin of `nl.find_vsource("VDD")->ac = 1.0` in a builder).
struct SourceOverride {
  bool is_vsource = true;
  std::string name;
  std::optional<double> dc;
  std::optional<double> ac;
  std::optional<circuit::Pwl> pwl;
};

// One testbench: one Simulator over the (possibly edited) sized netlist.
// Analyses run in the fixed order ac -> noise -> tran; all derive from the
// bench's single cached DC operating point, so this order is numerically
// interchangeable with any builder's.
struct BenchPlan {
  std::string name;
  std::vector<SourceOverride> sets;
  std::optional<std::vector<double>> ac_freqs;
  std::optional<std::vector<double>> noise_freqs;
  int noise_p = 0, noise_n = 0;
  std::optional<sim::TranOptions> tran;
  int warm_from = -1;  // earlier bench whose op() seeds this DC solve
};

struct ExtractPlan {
  std::string metric;  // MetricMap key produced
  circuit::ExtractFn fn = circuit::ExtractFn::DcGain;
  int bench = 0;
  int probe_p = -1;  // node id; -1 = no probe (SupplyPower)
  int probe_n = -1;  // node id; -1 = single-ended probe
  double at_freq = 0.0;                              // InputNoise
  double win_t0 = 0.0, win_t1 = 0.0;                 // SettlingTime
  double edge = 0.0, tol = 0.0;                      // SettlingTime
};

struct Plan {
  std::vector<BenchPlan> benches;
  std::vector<ExtractPlan> extracts;
};

// Runs every bench (simulations) then every extraction (pure math) and
// returns the metric map. Throws sim::SimError when an analysis fails.
MetricMap run_plan(const Plan& plan, const circuit::Netlist& sized,
                   const circuit::Technology& tech);

}  // namespace gcnrl::meas
