// Table IV reproduction: knowledge transfer from 180 nm to 250/130/65/45
// nm on Two-TIA and Three-TIA. A GCN-RL agent pretrained at 180 nm is
// copied into agents for the target nodes and fine-tuned with a small
// step budget; the baseline trains from scratch with the same budget and
// the same seeds (paper: 300 steps = 100 warm-up + 200 exploration).
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

int main() {
  const BenchConfig cfg = bench_config();
  Rng rng(2024);
  const auto tech180 = circuit::make_technology("180nm");
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());
  const std::vector<std::string> targets = {"250nm", "130nm", "65nm",
                                            "45nm"};

  std::printf(
      "Table IV: technology transfer 180nm -> {250,130,65,45}nm\n"
      "(pretrain=%d steps, budget=%d steps with %d warm-up, seeds=%d)\n"
      "%s\n\n",
      cfg.steps, cfg.transfer_steps, cfg.transfer_warmup, cfg.seeds,
      bench::eval_banner().c_str());

  TextTable table({"Circuit / mode", "250nm", "130nm", "65nm", "45nm"});

  for (const std::string circuit_name : {"Two-TIA", "Three-TIA"}) {
    // Pretrain once at 180 nm.
    bench::EnvFactory factory180(circuit_name, tech180,
                                 env::IndexMode::OneHot, cfg.calib_samples,
                                 rng, svc);
    auto env180 = factory180.make();
    rl::DdpgConfig pre_cfg;
    pre_cfg.warmup = cfg.warmup;
    rl::DdpgAgent pretrained(env180->state(), env180->adjacency(),
                             env180->kinds(), pre_cfg, Rng(500));
    rl::run_ddpg(*env180, pretrained, cfg.steps);
    std::printf("  %s pretrained at 180nm\n", circuit_name.c_str());
    std::fflush(stdout);

    std::vector<std::string> row_none = {circuit_name + " no transfer"};
    std::vector<std::string> row_xfer = {circuit_name + " transfer"};
    for (const auto& node : targets) {
      bench::EnvFactory factory(circuit_name, circuit::make_technology(node),
                                env::IndexMode::OneHot, cfg.calib_samples,
                                rng, svc);
      // All 2 x seeds fine-tuning runs advance in lockstep: one batch of
      // 2*seeds simulations per step on the shared service. Same seed for
      // both modes: identical warm-up samples (paper: "We use the same
      // random seeds for two methods").
      std::vector<bench::LockstepSpec> specs;
      rl::DdpgConfig t_cfg;
      t_cfg.warmup = cfg.transfer_warmup;
      for (int s = 0; s < cfg.seeds; ++s) {
        const std::uint64_t seed = 900 + 31 * s;
        for (const bool transfer : {false, true}) {
          specs.push_back(bench::LockstepSpec{
              t_cfg, Rng(seed), transfer ? &pretrained : nullptr, {}});
        }
      }
      bench::LockstepGroup group(factory, std::move(specs));
      const auto runs = group.run(cfg.transfer_steps);
      std::vector<double> none_best, xfer_best;
      for (int s = 0; s < cfg.seeds; ++s) {
        none_best.push_back(runs[static_cast<std::size_t>(2 * s)].best_fom);
        xfer_best.push_back(
            runs[static_cast<std::size_t>(2 * s + 1)].best_fom);
      }
      row_none.push_back(
          bench::pm(la::mean(none_best), la::stddev(none_best)));
      row_xfer.push_back(
          bench::pm(la::mean(xfer_best), la::stddev(xfer_best)));
      std::printf("  %s @ %s: none=%s  transfer=%s\n", circuit_name.c_str(),
                  node.c_str(), row_none.back().c_str(),
                  row_xfer.back().c_str());
      std::fflush(stdout);
    }
    table.add_row(row_none);
    table.add_row(row_xfer);
  }

  std::printf("\n");
  table.print();
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper reference: transfer beats no-transfer on every node, e.g.\n"
      "Two-TIA 65nm: 2.36 -> 2.52; Three-TIA 65nm: 0.55 -> 1.20.\n");
  return 0;
}
