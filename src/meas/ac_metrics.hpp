// Frequency-domain measurements extracted from AC sweeps.
//
// All functions operate on a sampled transfer function H(f) (magnitude of
// arbitrary units — transimpedance ohms, voltage gain, loop gain...).
// Crossings are located by log-linear interpolation between sweep points,
// so a modest number of points per decade gives accurate -3 dB / unity
// frequencies.
#pragma once

#include <complex>
#include <vector>

namespace gcnrl::meas {

struct AcCurve {
  std::vector<double> freq;                 // ascending [Hz]
  std::vector<std::complex<double>> h;      // transfer function samples
};

// |H| at the lowest frequency sample (the "DC" gain of the sweep).
double dc_gain(const AcCurve& c);
// First frequency where |H| falls 3 dB below dc_gain (log-interpolated).
// Returns the last frequency if no crossing is inside the sweep.
double bandwidth_3db(const AcCurve& c);
// Peaking above the DC gain, in dB (0 if the response is monotone).
double peaking_db(const AcCurve& c);
// Gain-bandwidth product: dc_gain * bandwidth_3db.
double gbw(const AcCurve& c);
// First unity-magnitude crossing of |H| (Hz); 0 if |H| starts below 1,
// last frequency if it never crosses.
double unity_crossing(const AcCurve& c);
// Phase margin of a loop-gain curve: 180 deg + phase(H) at |H| = 1, with
// phase unwrapped along the sweep. By convention returns 180 when the loop
// gain never reaches unity (loop unconditionally stable at this level).
double phase_margin_deg(const AcCurve& c);
// Linear interpolation of |H| at frequency f.
double magnitude_at(const AcCurve& c, double f);

}  // namespace gcnrl::meas
