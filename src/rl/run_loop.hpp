// Shared optimization-loop drivers used by the examples and the benchmark
// harnesses: run a DDPG agent or a black-box optimizer against a
// SizingEnv for a step budget and record the best-so-far FoM trace (the
// quantity plotted in the paper's Figs. 5/7/8).
//
// The black-box drivers submit whole candidate batches to the env's
// EvalService (run_optimizer forwards each ask() population, run_random
// pre-generates fixed-size chunks), so evaluation parallelism and result
// caching come for free. Results are committed to the trace in submission
// order regardless of completion order, and all batching decisions are
// independent of the thread count — best_trace is bit-identical under
// GCNRL_EVAL_THREADS=1 and =N.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "env/sizing_env.hpp"
#include "opt/optimizer.hpp"
#include "rl/ddpg.hpp"

namespace gcnrl::rl {

struct RunResult {
  std::vector<double> best_trace;  // best FoM after each evaluation
  double best_fom = -1e300;
  la::Mat best_actions;            // n x kMaxActionDim
  env::MetricMap best_metrics;
  long evals = 0;       // evaluations committed to the trace
  long cache_hits = 0;  // subset served by the EvalService result cache

  void record(double fom);
  // Commit one evaluation: counters, best-so-far bookkeeping, and the
  // trace. Cached and freshly simulated results are handled identically —
  // a cache hit carries the same metrics/actions a fresh simulation would.
  void commit(const la::Mat& actions, const env::EvalResult& r);
  // Flat-vector variant: unflattens into best_actions only when the
  // result improves on the best, keeping the cache-hit fast path cheap.
  void commit_flat(const circuit::DesignSpace& space,
                   std::span<const double> x, const env::EvalResult& r);
};

// Run `agent` for `steps` episodes of Algorithm 1 against `env`.
RunResult run_ddpg(env::SizingEnv& env, DdpgAgent& agent, int steps);

// Lockstep multi-seed DDPG: step S independent (env, agent) pairs side by
// side for `steps` episodes. Per step, the S exploration actions are
// collected in pair order, submitted to the pairs' SHARED EvalService as
// one multi-circuit batch (this is where the thread pool earns its keep —
// DDPG is sequential within a seed but the seeds are independent), and the
// observe()/commit() updates then run sequentially in pair order. Each
// agent's RNG stream, replay history, and reward sequence are exactly what
// serial run_ddpg would produce, so per-pair results are bit-identical to
// S serial runs at any GCNRL_EVAL_THREADS.
//
// Requirements: envs.size() == agents.size(), and every env must hold the
// same EvalService (see SizingEnv's shared-service constructor); throws
// std::invalid_argument otherwise. Pairs may mix circuits, technologies,
// and FoM specs freely.
std::vector<RunResult> run_ddpg_lockstep(std::span<env::SizingEnv* const> envs,
                                         std::span<DdpgAgent* const> agents,
                                         int steps);

// Run a black-box optimizer (ask/tell on the flattened space). Each ask()
// population is evaluated as one batch, truncated to the remaining budget.
// seconds > 0 adds a wall-clock cap checked between batches (the paper's
// runtime-matching rule for the O(N^3) BO methods); <= 0 means no cap.
// An empty ask() population ends the run early (the optimizer has nothing
// left to propose); without this the loop could never advance its budget.
RunResult run_optimizer(env::SizingEnv& env, opt::Optimizer& optimizer,
                        int steps, double seconds = 0.0);

// Evaluate `steps` uniform random designs (the paper's Random baseline),
// pre-generated and submitted in fixed-size batches.
RunResult run_random(env::SizingEnv& env, int steps, Rng rng);

}  // namespace gcnrl::rl
