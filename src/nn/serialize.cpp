#include "nn/serialize.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>

namespace gcnrl::nn {
namespace {

constexpr std::uint32_t kMagic = 0x47435231;  // "GCR1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_u32(std::FILE* f, std::uint32_t v) {
  if (std::fwrite(&v, sizeof(v), 1, f) != 1) {
    throw std::runtime_error("serialize: write failed");
  }
}

void write_string(std::FILE* f, const std::string& s) {
  write_u32(f, static_cast<std::uint32_t>(s.size()));
  if (!s.empty() && std::fwrite(s.data(), 1, s.size(), f) != s.size()) {
    throw std::runtime_error("serialize: write failed");
  }
}

// Bounded reader: every read is checked against the bytes actually left in
// the file, so no length field can request an allocation the file could
// not possibly back.
class BoundedReader {
 public:
  BoundedReader(std::FILE* f, const std::string& path) : f_(f), path_(path) {
    if (std::fseek(f_, 0, SEEK_END) != 0) fail("cannot seek");
    const long size = std::ftell(f_);
    if (size < 0) fail("cannot determine file size");
    remaining_ = static_cast<std::uint64_t>(size);
    if (std::fseek(f_, 0, SEEK_SET) != 0) fail("cannot seek");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("load_tensors: " + what + " in " + path_);
  }

  [[nodiscard]] std::uint64_t remaining() const { return remaining_; }

  std::uint32_t u32(const char* field) {
    std::uint32_t v = 0;
    raw(&v, sizeof(v), field);
    return v;
  }

  std::string str(const char* field) {
    const std::uint32_t len = u32(field);
    if (len > remaining_) {
      fail(std::string(field) + " length " + std::to_string(len) +
           " exceeds the " + std::to_string(remaining_) +
           " bytes remaining (corrupt or truncated file)");
    }
    std::string out(len, '\0');
    if (len > 0) raw(out.data(), len, field);
    return out;
  }

  void raw(void* dst, std::size_t n, const char* field) {
    if (n > remaining_ || std::fread(dst, 1, n, f_) != n) {
      fail(std::string("truncated file reading ") + field);
    }
    remaining_ -= n;
  }

 private:
  std::FILE* f_;
  const std::string& path_;
  std::uint64_t remaining_ = 0;
};

std::string shape_of(const la::Mat& m) {
  return std::to_string(m.rows()) + "x" + std::to_string(m.cols());
}

// "name 3x4, name2 1x8, ..." — the diagnostic inventory strict failures
// print (mirrors the unknown-name diagnostics of the registries).
std::string inventory(const std::vector<NamedTensor>& tensors) {
  if (tensors.empty()) return "nothing";
  std::string out;
  for (const NamedTensor& t : tensors) {
    if (!out.empty()) out += ", ";
    out += t.name + " " + shape_of(t.value);
  }
  return out;
}

}  // namespace

std::vector<NamedTensor> snapshot_parameters(
    const std::vector<Parameter*>& params) {
  std::vector<NamedTensor> out;
  out.reserve(params.size());
  for (const Parameter* p : params) out.push_back({p->name, p->value});
  return out;
}

void save_tensors(const std::string& path,
                  const std::vector<NamedTensor>& tensors,
                  const MetaList& meta) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    throw std::runtime_error("save_tensors: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  write_u32(f.get(), kMagic);
  write_u32(f.get(), kFormatVersion);
  write_u32(f.get(), static_cast<std::uint32_t>(meta.size()));
  for (const auto& [key, value] : meta) {
    write_string(f.get(), key);
    write_string(f.get(), value);
  }
  write_u32(f.get(), static_cast<std::uint32_t>(tensors.size()));
  for (const NamedTensor& t : tensors) {
    write_string(f.get(), t.name);
    write_u32(f.get(), static_cast<std::uint32_t>(t.value.rows()));
    write_u32(f.get(), static_cast<std::uint32_t>(t.value.cols()));
    const std::size_t n = t.value.size();
    if (n > 0 &&
        std::fwrite(t.value.data(), sizeof(double), n, f.get()) != n) {
      throw std::runtime_error("serialize: write failed");
    }
  }
}

TensorFile load_tensors(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    throw std::runtime_error("load_tensors: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  BoundedReader r(f.get(), path);
  if (r.u32("magic") != kMagic) r.fail("bad magic");
  const std::uint32_t version = r.u32("format version");
  if (version != kFormatVersion) {
    r.fail("unsupported format version " + std::to_string(version) +
           " (expected " + std::to_string(kFormatVersion) +
           "; files written before the version field are not readable)");
  }

  TensorFile out;
  const std::uint32_t meta_count = r.u32("meta count");
  // A meta entry costs at least its two length fields.
  if (meta_count > r.remaining() / (2 * sizeof(std::uint32_t))) {
    r.fail("meta count " + std::to_string(meta_count) +
           " exceeds what the file size allows");
  }
  for (std::uint32_t i = 0; i < meta_count; ++i) {
    std::string key = r.str("meta key");
    std::string value = r.str("meta value");
    out.meta.emplace_back(std::move(key), std::move(value));
  }

  const std::uint32_t count = r.u32("tensor count");
  // A tensor record costs at least name_len + rows + cols.
  if (count > r.remaining() / (3 * sizeof(std::uint32_t))) {
    r.fail("tensor count " + std::to_string(count) +
           " exceeds what the file size allows");
  }
  out.tensors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = r.str("tensor name");
    const std::uint32_t rows = r.u32("rows");
    const std::uint32_t cols = r.u32("cols");
    const std::uint64_t n =
        static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
    // The element payload must fit in the remaining bytes BEFORE the
    // matrix is allocated — this is the check that defuses a flipped size
    // byte turning into a multi-GB allocation.
    if (n > r.remaining() / sizeof(double)) {
      r.fail("tensor \"" + name + "\" claims " + std::to_string(rows) + "x" +
             std::to_string(cols) + " = " + std::to_string(n) +
             " doubles but only " + std::to_string(r.remaining()) +
             " bytes remain (corrupt or truncated file)");
    }
    la::Mat m(static_cast<int>(rows), static_cast<int>(cols));
    if (n > 0) r.raw(m.data(), n * sizeof(double), "tensor data");
    out.tensors.push_back({std::move(name), std::move(m)});
  }
  return out;
}

int assign_tensors(const std::vector<NamedTensor>& src,
                   const std::vector<Parameter*>& dst, bool strict,
                   const std::string& origin) {
  std::map<std::string, const la::Mat*> by_name;
  for (const NamedTensor& t : src) by_name.emplace(t.name, &t.value);
  int copied = 0;
  for (Parameter* p : dst) {
    const auto it = by_name.find(p->name);
    if (it == by_name.end() || !it->second->same_shape(p->value)) {
      if (strict) {
        throw std::runtime_error(
            "load_parameters: no match for " + p->name + " (" +
            shape_of(p->value) + ") in " + origin +
            "; source contains: " + inventory(src));
      }
      continue;
    }
    p->value = *it->second;
    ++copied;
  }
  return copied;
}

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params) {
  save_tensors(path, snapshot_parameters(params));
}

int load_parameters(const std::string& path,
                    const std::vector<Parameter*>& params, bool strict) {
  return assign_tensors(load_tensors(path).tensors, params, strict, path);
}

int copy_parameters(const std::vector<Parameter*>& src,
                    const std::vector<Parameter*>& dst) {
  std::map<std::string, const Parameter*> by_name;
  for (const Parameter* p : src) by_name.emplace(p->name, p);
  int copied = 0;
  for (Parameter* d : dst) {
    auto it = by_name.find(d->name);
    if (it != by_name.end() && it->second->value.same_shape(d->value)) {
      d->value = it->second->value;
      ++copied;
    }
  }
  return copied;
}

}  // namespace gcnrl::nn
