// .gcir: the textual circuit-description format.
//
// A .gcir file is everything a hand-written builder in src/circuits/
// provides, as data: nets and supply rails, devices and sources, sizing
// bounds and match groups, the FoM metric table, a declarative
// measurement plan (testbenches + analyses + extractions), and a
// human-expert sizing. env::compile_circuit() turns the parsed
// description into a runnable env::BenchmarkCircuit;
// api::register_circuit_file() registers it by its declared name.
//
// ---------------------------------------------------------------------------
// FORMAT (line-oriented; '#' starts a comment; tokens are whitespace-
// separated; EXPR is a circuit::Expr — no spaces, SI suffixes and the
// technology symbols of expr_symbols() allowed, e.g. "50u*(vdd/1.8)")
// ---------------------------------------------------------------------------
// circuit NAME                      # required, once, first directive
// supply NET...                     # declare supply nets (VDD, bias rails)
// net NET...                        # declare signal nets
//   # Net declaration order defines node-id (and MNA unknown) order;
//   # "0"/"gnd"/"vss" are predeclared ground aliases.
// vsource NAME P N dc=EXPR [ac=EXPR] [pwl=(t,v)(t,v)...]
// isource NAME P N dc=EXPR [ac=EXPR] [pwl=(t,v)(t,v)...]
// nmos NAME D G S B w=EXPR l=EXPR m=EXPR [fixed]
// pmos NAME D G S B w=EXPR l=EXPR m=EXPR [fixed]
// resistor NAME A B r=EXPR [fixed]
// capacitor NAME A B c=EXPR [fixed]
//   # Elements keep file order: sources/devices may interleave; the
//   # designable (non-"fixed") devices become the graph vertices in
//   # declaration order.
// bound COMP PARAM.SIDE=EXPR        # e.g. "bound T6 w.hi=wmax" — override
//                                   # one side of a default search range
//                                   # (PARAM: w|l|m|r|c, SIDE: lo|hi)
// match COMP COMP... [l_only]       # match group (l_only: share L only)
// metric NAME unit=STR weight=NUM [bound=EXPR] [spec_min=EXPR]
//        [spec_max=EXPR] [log]      # one FoM table row (env::MetricDef)
// expert COMP VAL [VAL VAL]         # human-expert sizing (MOS: w l m;
//                                   # R/C: one value); if any expert line
//                                   # is present, every designable
//                                   # component needs exactly one
//
// bench NAME                        # declare a testbench
// set BENCH SOURCE [dc=EXPR] [ac=EXPR] [pwl=(t,v)...]
//                                   # per-bench source override
// ac BENCH FMIN FMAX NPOINTS        # log-spaced AC sweep
// noise BENCH out=NODE[,NODE] FREQ...
// tran BENCH tstop=EXPR dt=EXPR
// warm BENCH from=BENCH             # seed DC from an earlier bench's op
// extract METRIC FN bench=BENCH [probe=NODE[,NODE]] [at=EXPR]
//         [window=EXPR,EXPR] [edge=EXPR] [tol=EXPR]
//   # FN: supply_power | dc_gain | bandwidth_3db | peaking_db | gbw |
//   #     input_noise (needs at= + the bench's noise analysis) |
//   #     settling_time (needs window=/edge=/tol= + the bench's tran)
// ---------------------------------------------------------------------------
// The parser is strict in the api/spec.cpp tradition: unknown directives
// or keys, undeclared nets/benches/components, duplicate names, missing
// required fields and malformed expressions all throw std::runtime_error
// with a "<origin>:line:column" position. A parsed description is fully
// name-resolved — compiling it can only fail on I/O-free invariants.
#pragma once

#include <string>

#include "circuit/description.hpp"

namespace gcnrl::circuit {

// Parses .gcir text. `origin` names the source in diagnostics (a path, or
// "<string>" for inline text).
CircuitDescription parse_gcir(const std::string& text,
                              const std::string& origin = "<string>");

// Reads and parses a .gcir file; throws std::runtime_error when the file
// cannot be read.
CircuitDescription load_gcir(const std::string& path);

}  // namespace gcnrl::circuit
