#include "common/envcfg.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace gcnrl {

namespace {

void warn_malformed(const char* name, const char* raw, const char* expected,
                    const std::string& used) {
  std::fprintf(stderr,
               "gcnrl: ignoring malformed %s=\"%s\" (expected %s); using %s\n",
               name, raw, expected, used.c_str());
}

}  // namespace

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  // Strict parse: the whole value (modulo surrounding whitespace) must be
  // one in-range base-10 integer. Anything else — "abc", "12abc", "1.5",
  // out-of-range — is a configuration mistake that must not be silently
  // absorbed: warn on stderr and fall back to the default.
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw, &end, 10);
  // No-conversion must be detected BEFORE skipping trailing whitespace: a
  // whitespace-only value leaves end == raw, and advancing end first would
  // let it masquerade as a clean parse of 0.
  const bool converted = end != raw;
  while (end != nullptr && std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  if (!converted || (end != nullptr && *end != '\0') || errno == ERANGE ||
      v < INT_MIN || v > INT_MAX) {
    warn_malformed(name, raw, "an integer", std::to_string(fallback));
    return fallback;
  }
  return static_cast<int>(v);
}

bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return false;
  std::string v(raw);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v.empty() || v == "0" || v == "false" || v == "no" || v == "off") {
    return false;
  }
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  // Historical behaviour treated any other non-empty value as true; keep
  // that so existing scripts don't silently flip, but warn — "GCNRL_FULL=o"
  // is far more likely a typo than an intentional truthy value.
  warn_malformed(name, raw, "one of 0/1/true/false/yes/no/on/off", "true");
  return true;
}

BenchConfig bench_config() {
  BenchConfig cfg;
  if (env_flag("GCNRL_FULL")) {
    cfg.full = true;
    cfg.steps = 10000;
    cfg.warmup = 500;
    cfg.transfer_steps = 300;
    cfg.transfer_warmup = 100;
    cfg.seeds = 3;
    cfg.calib_samples = 5000;
  }
  cfg.steps = env_int("GCNRL_STEPS", cfg.steps);
  cfg.seeds = env_int("GCNRL_SEEDS", cfg.seeds);
  cfg.calib_samples = env_int("GCNRL_CALIB", cfg.calib_samples);
  cfg.warmup = env_int("GCNRL_WARMUP", cfg.warmup);
  cfg.transfer_steps = env_int("GCNRL_TRANSFER_STEPS", cfg.transfer_steps);
  cfg.transfer_warmup = env_int("GCNRL_TRANSFER_WARMUP", cfg.transfer_warmup);
  if (cfg.warmup >= cfg.steps) cfg.warmup = cfg.steps / 3;
  if (cfg.transfer_warmup >= cfg.transfer_steps) {
    cfg.transfer_warmup = cfg.transfer_steps / 3;
  }
  return cfg;
}

}  // namespace gcnrl
