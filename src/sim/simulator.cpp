#include "sim/simulator.hpp"

#include <cmath>

namespace gcnrl::sim {

Simulator::Simulator(const circuit::Netlist& nl,
                     const circuit::Technology& tech)
    : ctx_(nl, tech) {
  // Claim a bank slot while a cross-design warm-start scope is active.
  // Circuit closures construct their Simulators in a fixed order, so slot
  // k always holds the structurally identical testbench of the previous
  // design evaluated by the same submitter.
  if (WarmStartScope* scope = WarmStartScope::current()) {
    scope_slot_ = scope->claim_slot();
  }
}

void Simulator::warm_start_from(const OpPoint& guess) {
  if (op_.has_value()) return;
  warm_guess_ = project_op(guess, ctx_.map);
}

const OpPoint& Simulator::op() {
  if (op_.has_value()) return *op_;

  // Guess priority: explicit sibling-testbench op > scope slot (same
  // testbench, previous design) > scope last-op projection > cold.
  std::optional<std::vector<double>> guess = warm_guess_;
  WarmStartScope* scope = WarmStartScope::current();
  if (!guess && scope && scope_slot_ >= 0) {
    if (const OpPoint* slot = scope->bank().slot_op(scope_slot_, ctx_.map)) {
      guess = project_op(*slot, ctx_.map);
    } else if (const OpPoint* last = scope->bank().last_op()) {
      guess = project_op(*last, ctx_.map);
    }
  }
  op_ = solve_dc(ctx_, DcOptions{}, guess ? &*guess : nullptr, &dc_stats_);
  if (scope && scope_slot_ >= 0) {
    scope->bank().store(scope_slot_, ctx_.map, *op_);
  }
  return *op_;
}

const OpPoint& Simulator::op_at_time_zero() {
  if (op_t0_.has_value()) return *op_t0_;
  DcOptions opt;
  opt.source_time = 0.0;
  std::optional<std::vector<double>> guess;
  if (op_.has_value()) {
    guess = project_op(*op_, ctx_.map);
  } else if (warm_guess_) {
    guess = warm_guess_;
  }
  op_t0_ = solve_dc(ctx_, opt, guess ? &*guess : nullptr, &dc_stats_);
  return *op_t0_;
}

AcResult Simulator::ac(const std::vector<double>& freqs) {
  return solve_ac(ctx_, op(), freqs);
}

NoiseResult Simulator::noise(const std::vector<double>& freqs, int outp,
                             int outn) {
  return solve_noise(ctx_, op(), freqs, outp, outn);
}

TranResult Simulator::tran(const TranOptions& opt) {
  const OpPoint& ic = op_at_time_zero();
  return solve_tran(ctx_, ic, opt);
}

double Simulator::supply_power() {
  const OpPoint& o = op();
  double p = 0.0;
  for (std::size_t k = 0; k < ctx_.nl.vsources().size(); ++k) {
    const auto& src = ctx_.nl.vsources()[k];
    const double delivered = src.dc * o.source_current(static_cast<int>(k));
    if (delivered > 0.0) p += delivered;
  }
  return p;
}

double Simulator::source_current(const std::string& vsrc_name) {
  const OpPoint& o = op();
  for (std::size_t k = 0; k < ctx_.nl.vsources().size(); ++k) {
    if (ctx_.nl.vsources()[k].name == vsrc_name) {
      return o.source_current(static_cast<int>(k));
    }
  }
  throw SimError("unknown voltage source: " + vsrc_name);
}

}  // namespace gcnrl::sim
