// Adam optimizer (Kingma & Ba 2015) over nn::Parameter.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/module.hpp"

namespace gcnrl::nn {

class Adam {
 public:
  explicit Adam(std::vector<Parameter*> params, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  // Applies one update from the gradients currently stored in the
  // parameters; does NOT zero gradients (callers own that).
  void step();
  void set_lr(double lr) { lr_ = lr; }
  [[nodiscard]] double lr() const { return lr_; }

 private:
  struct State {
    la::Mat m;
    la::Mat v;
  };
  std::vector<Parameter*> params_;
  std::vector<State> state_;
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
};

}  // namespace gcnrl::nn
