#include "rl/networks.hpp"

namespace gcnrl::rl {
namespace {

std::string kind_tag(int k) {
  return circuit::kind_name(static_cast<circuit::Kind>(k));
}

}  // namespace

TypeMasks make_type_masks(const std::vector<circuit::Kind>& kinds,
                          int hidden) {
  const int n = static_cast<int>(kinds.size());
  TypeMasks m;
  for (int k = 0; k < circuit::kNumKinds; ++k) {
    m.action[k] = la::Mat(n, circuit::kMaxActionDim);
    m.hidden[k] = la::Mat(n, hidden);
    for (int i = 0; i < n; ++i) {
      if (static_cast<int>(kinds[i]) != k) continue;
      for (int c = 0; c < circuit::kMaxActionDim; ++c) m.action[k](i, c) = 1.0;
      for (int c = 0; c < hidden; ++c) m.hidden[k](i, c) = 1.0;
    }
  }
  return m;
}

GcnActor::GcnActor(const NetworkConfig& cfg, Rng& rng)
    : cfg_(cfg), fc_in_("actor.fc_in", cfg.state_dim, cfg.hidden, rng) {
  gcn_.reserve(cfg.gcn_layers);
  for (int l = 0; l < cfg.gcn_layers; ++l) {
    gcn_.push_back(std::make_unique<nn::GcnLayer>(
        "actor.gcn" + std::to_string(l), cfg.hidden, cfg.hidden, rng));
  }
  for (int k = 0; k < circuit::kNumKinds; ++k) {
    // Near-zero output init so initial actions start unbiased mid-range
    // (standard DDPG practice).
    decoders_[k] = std::make_unique<nn::Linear>(
        "actor.dec." + kind_tag(k), cfg.hidden, circuit::kMaxActionDim, rng,
        /*out_scale=*/3e-3);
  }
}

ag::Var GcnActor::forward(ag::Tape& tape, ag::Var state, const la::Mat& a_hat,
                          const TypeMasks& masks) {
  ag::Var h = ag::relu(fc_in_.forward(tape, state));
  // Residual connections keep the paper's 7-layer stack trainable: a
  // plain deep ReLU/GCN chain attenuates gradients badly enough that the
  // agent cannot learn within realistic step budgets.
  for (auto& layer : gcn_) {
    h = ag::add(ag::relu(layer->forward(tape, h, a_hat)), h);
  }
  // Per-type decoders, masked and summed (masks partition the rows).
  ag::Var out;
  for (int k = 0; k < circuit::kNumKinds; ++k) {
    ag::Var a_k = ag::hadamard_const(
        ag::tanh_(decoders_[k]->forward(tape, h)), masks.action[k]);
    out = k == 0 ? a_k : ag::add(out, a_k);
  }
  return out;
}

la::Mat GcnActor::act(const la::Mat& state, const la::Mat& a_hat,
                      const TypeMasks& masks) {
  ag::Tape tape;
  return forward(tape, tape.constant(state), a_hat, masks).value();
}

std::vector<nn::Parameter*> GcnActor::parameters() {
  std::vector<nn::Parameter*> ps;
  for (auto* p : fc_in_.parameters()) ps.push_back(p);
  for (auto& layer : gcn_) {
    for (auto* p : layer->parameters()) ps.push_back(p);
  }
  for (auto& dec : decoders_) {
    for (auto* p : dec->parameters()) ps.push_back(p);
  }
  return ps;
}

GcnCritic::GcnCritic(const NetworkConfig& cfg, Rng& rng)
    : cfg_(cfg),
      fc_state_("critic.fc_state", cfg.state_dim, cfg.hidden, rng),
      head_("critic.head", cfg.hidden, 1, rng, /*out_scale=*/3e-3) {
  for (int k = 0; k < circuit::kNumKinds; ++k) {
    encoders_[k] = std::make_unique<nn::Linear>(
        "critic.enc." + kind_tag(k), circuit::kMaxActionDim, cfg.hidden, rng);
  }
  gcn_.reserve(cfg.gcn_layers);
  for (int l = 0; l < cfg.gcn_layers; ++l) {
    gcn_.push_back(std::make_unique<nn::GcnLayer>(
        "critic.gcn" + std::to_string(l), cfg.hidden, cfg.hidden, rng));
  }
}

ag::Var GcnCritic::forward(ag::Tape& tape, ag::Var state, ag::Var actions,
                           const la::Mat& a_hat, const TypeMasks& masks) {
  // Shared state FC + per-type action encoders (Fig. 3 critic first layer).
  ag::Var h = fc_state_.forward(tape, state);
  for (int k = 0; k < circuit::kNumKinds; ++k) {
    ag::Var enc = ag::hadamard_const(encoders_[k]->forward(tape, actions),
                                     masks.hidden[k]);
    h = ag::add(h, enc);
  }
  h = ag::relu(h);
  for (auto& layer : gcn_) {
    h = ag::add(ag::relu(layer->forward(tape, h, a_hat)), h);
  }
  // Shared value head; predicted reward = mean over component nodes.
  return ag::mean_all(head_.forward(tape, h));
}

double GcnCritic::value(const la::Mat& state, const la::Mat& actions,
                        const la::Mat& a_hat, const TypeMasks& masks) {
  ag::Tape tape;
  return forward(tape, tape.constant(state), tape.constant(actions), a_hat,
                 masks)
      .value()(0, 0);
}

std::vector<nn::Parameter*> GcnCritic::parameters() {
  std::vector<nn::Parameter*> ps;
  for (auto* p : fc_state_.parameters()) ps.push_back(p);
  for (auto& enc : encoders_) {
    for (auto* p : enc->parameters()) ps.push_back(p);
  }
  for (auto& layer : gcn_) {
    for (auto* p : layer->parameters()) ps.push_back(p);
  }
  for (auto* p : head_.parameters()) ps.push_back(p);
  return ps;
}

}  // namespace gcnrl::rl
