// Table I reproduction: FoM comparison of Human / Random / ES / BO / MACE
// / NG-RL / GCN-RL on the four benchmark circuits at 180 nm.
//
// Paper protocol: 10 000 steps for Random/ES/NG-RL/GCN-RL, budget-matched
// BO/MACE (the paper matched runtime; we match the underlying cost — each
// BO/MACE seed stops at the simulated cost of the matching ES seed), 3
// runs each, FoM normalizers from 5000 random samples. Every budget is a
// simulation count, so the emitted table is bit-reproducible run-to-run.
// Scale with GCNRL_FULL=1 / GCNRL_STEPS / GCNRL_SEEDS / GCNRL_CALIB (see
// DESIGN.md); defaults reproduce the ordering in minutes.
//
// The whole experiment is one declarative task list handed to
// api::run_tasks: the planner calibrates each circuit once, chains the
// BO/MACE budgets off the matching ES tasks automatically, and advances
// every (task, seed) pair in lockstep on one shared EvalService.
#include <cstdio>
#include <map>

#include "common.hpp"

using namespace gcnrl;

namespace {

// Paper Table I reference values (mean) for side-by-side comparison.
const std::map<std::string, std::map<std::string, double>> kPaperFoM = {
    {"Two-TIA",
     {{"Human", 2.32}, {"Random", 2.46}, {"ES", 2.66}, {"BO", 2.48},
      {"MACE", 2.54}, {"NG-RL", 2.59}, {"GCN-RL", 2.69}}},
    {"Two-Volt",
     {{"Human", 2.02}, {"Random", 1.74}, {"ES", 1.91}, {"BO", 1.85},
      {"MACE", 1.70}, {"NG-RL", 1.98}, {"GCN-RL", 2.23}}},
    {"Three-TIA",
     {{"Human", 1.15}, {"Random", 0.74}, {"ES", 1.30}, {"BO", 1.24},
      {"MACE", 1.27}, {"NG-RL", 1.39}, {"GCN-RL", 1.40}}},
    {"LDO",
     {{"Human", 0.61}, {"Random", 0.27}, {"ES", 0.40}, {"BO", 0.45},
      {"MACE", 0.58}, {"NG-RL", 0.71}, {"GCN-RL", 0.79}}},
};

}  // namespace

int main() {
  const BenchConfig cfg = bench_config();
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());

  std::printf(
      "Table I: FoM comparison (steps=%d, warmup=%d, seeds=%d, calib=%d)\n"
      "Paper values in [brackets]. FoM scale: ours saturates each metric\n"
      "in [0,1] over the calibrated range; shapes, not absolutes, compare.\n"
      "%s\n\n",
      cfg.steps, cfg.warmup, cfg.seeds, cfg.calib_samples,
      bench::eval_banner().c_str());

  // The experiment as data: per circuit, the human anchor plus one sweep
  // task per method. BO/MACE need no explicit budgets — run_tasks chains
  // them off the ES task of the same circuit.
  std::vector<api::TaskSpec> tasks;
  for (const auto& circuit_name : circuits::benchmark_names()) {
    api::TaskSpec base;
    base.circuit = circuit_name;
    base.steps = cfg.steps;
    base.warmup = cfg.warmup;
    base.seeds = cfg.seeds;
    {
      api::TaskSpec human = base;
      human.method = "Human";
      human.seeds = 1;
      tasks.push_back(human);
    }
    for (const auto& method : bench::kMethods) {
      api::TaskSpec t = base;
      t.method = method;
      tasks.push_back(t);
    }
  }
  api::RunOptions opts;
  opts.service = svc;
  opts.calib_samples = cfg.calib_samples;
  // Progress note on stderr: the merged lockstep plan finishes all tasks
  // together, so per-cell rows only appear (on stdout, which stays
  // byte-reproducible) once everything is done.
  std::fprintf(stderr, "running %zu tasks through api::run_tasks; rows "
               "print on completion...\n", tasks.size());
  const auto results = api::run_tasks(tasks, opts);

  TextTable table({"Method", "Two-TIA", "Two-Volt", "Three-TIA", "LDO"});
  std::map<std::string, std::map<std::string, std::string>> cells;
  for (const auto& r : results) {
    const std::string& method = r.spec.method;
    const std::string& circuit_name = r.spec.circuit;
    const double paper = kPaperFoM.at(circuit_name).at(method);
    if (method == "Human") {
      cells[method][circuit_name] = TextTable::num(r.best.front(), 3) +
                                    " [" + TextTable::num(paper, 3) + "]";
      continue;
    }
    cells[method][circuit_name] =
        bench::pm(r.mean, r.stddev) + " [" + TextTable::num(paper, 3) + "]";
    std::printf("  %-10s %-9s %s\n", circuit_name.c_str(), method.c_str(),
                cells[method][circuit_name].c_str());
  }

  std::printf("\n");
  for (const auto& method :
       std::vector<std::string>{"Human", "Random", "ES", "BO", "MACE",
                                "NG-RL", "GCN-RL"}) {
    table.add_row({method, cells[method]["Two-TIA"],
                   cells[method]["Two-Volt"], cells[method]["Three-TIA"],
                   cells[method]["LDO"]});
  }
  table.print();
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  return 0;
}
