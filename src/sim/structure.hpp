// Per-topology MNA structure: the sparse engine's one-time setup.
//
// Sizing changes element *values* but never the netlist topology, so the
// CSR sparsity pattern of the MNA system and the value-array slot of
// every element stamp can be computed once per SimContext and reused by
// every analysis (DC, AC, noise, transient) of that design: assembly
// becomes a flat walk writing into a value array — no dense zero-fill, no
// coordinate lookup — and la::SparseLu factors over the fixed pattern
// with symbolic reuse across Newton iterations, frequency points and
// timesteps.
//
// The pattern is the union of every stamp any analysis writes (resistor /
// capacitor quads, MOS small-signal and capacitance stamps, vsource
// branch couplings, the per-node gmin/regularization diagonal), then
// symmetrized. MNA stamps already produce a structurally symmetric
// pattern; forcing symmetry keeps that invariant explicit, which is what
// lets SparseLu's diagonal-preference pivoting stand in for a separate
// fill-reducing ordering at these dimensions.
#pragma once

#include <vector>

#include "la/sparse.hpp"
#include "sim/mna.hpp"

namespace gcnrl::sim {

// Process-wide engine toggle. Defaults to the GCNRL_SPARSE environment
// variable (unset or any value but "0" = enabled); tests and benches
// override it programmatically. Engines fall back to the dense path per
// analysis when a sparse factorization is rejected regardless of this
// flag, so disabling it only forces the legacy path unconditionally.
bool sparse_engine_enabled();
void set_sparse_engine_enabled(bool on);

// Internal control-flow signal: a sparse factorization was rejected
// (structural/numeric singularity, pivot-check failure, or element
// growth). The throwing engine reruns the ENTIRE analysis on the dense
// path, whose results, perf recording, and failure diagnostics are
// bitwise the legacy behaviour.
struct SparseEngineFallback {};

// Value-array slots of a symmetric conductance-style stamp between nodes
// a and b ((aa, bb) diagonals, (ab, ba) couplings); -1 where a terminal is
// ground.
struct QuadSlots {
  int aa = -1, bb = -1, ab = -1, ba = -1;
};

// Slots of a VCCS stamp: rows (out_p, out_n) x cols (c_p, c_n).
struct VccsSlots {
  int pp = -1, pn = -1, np = -1, nn = -1;
};

// Per-MOSFET stamp slots: gm VCCS (out d->s, control g-s), gds quad
// (d, s), and the four capacitance quads.
struct MosSlots {
  VccsSlots gm;
  QuadSlots gds, cgs, cgd, cdb, csb;
};

// Voltage-source branch couplings: (v(p), b), (b, v(p)), (v(n), b),
// (b, v(n)); -1 where the terminal is ground.
struct VsrcSlots {
  int pb = -1, bp = -1, nb = -1, bn = -1;
};

struct MnaStructure {
  la::SparsePattern pattern;
  std::vector<QuadSlots> resistors;   // aligned with nl.resistors()
  std::vector<QuadSlots> capacitors;  // aligned with nl.capacitors()
  std::vector<MosSlots> mosfets;      // aligned with nl.mosfets()
  std::vector<VsrcSlots> vsources;    // aligned with nl.vsources()
  std::vector<int> node_diag;         // (v(node), v(node)), node 1..N-1

  MnaStructure(const circuit::Netlist& nl, const MnaMap& m);
};

// --- pattern-aligned stamp helpers (sparse analogs of the dense helpers
// in mna.hpp; ground guards are encoded as -1 slots) -----------------

inline void add_quad(double* vals, const QuadSlots& q, double g) {
  if (q.aa >= 0) vals[q.aa] += g;
  if (q.bb >= 0) vals[q.bb] += g;
  if (q.ab >= 0) {
    vals[q.ab] -= g;
    vals[q.ba] -= g;
  }
}

inline void add_vccs(double* vals, const VccsSlots& s, double g) {
  if (s.pp >= 0) vals[s.pp] += g;
  if (s.pn >= 0) vals[s.pn] -= g;
  if (s.np >= 0) vals[s.np] -= g;
  if (s.nn >= 0) vals[s.nn] += g;
}

// MOS small-signal stamp in the DC/transient Jacobian's fused form
// (d(id)/dvs = -(gm + gds) added as one term, exactly like the dense
// Newton assembly — not as separate VCCS + conductance adds).
inline void add_mos_g(double* vals, const MosSlots& ms, double gm,
                      double gds) {
  if (ms.gm.pp >= 0) vals[ms.gm.pp] += gm;          // (d, g)
  if (ms.gds.aa >= 0) vals[ms.gds.aa] += gds;       // (d, d)
  if (ms.gds.ab >= 0) vals[ms.gds.ab] -= gm + gds;  // (d, s)
  if (ms.gm.np >= 0) vals[ms.gm.np] -= gm;          // (s, g)
  if (ms.gds.ba >= 0) vals[ms.gds.ba] -= gds;       // (s, d)
  if (ms.gds.bb >= 0) vals[ms.gds.bb] += gm + gds;  // (s, s)
}

// Sparse analog of build_ac_stamps: one netlist walk filling
// pattern-aligned G and C value arrays (Y(w) = G + j*w*C), including the
// 1e-12 regularization shunt on every node diagonal of G.
void assemble_ac_gc(const SimContext& ctx, const MnaStructure& st,
                    const OpPoint& op, std::vector<double>& g,
                    std::vector<double>& c);

}  // namespace gcnrl::sim
