// Minimal strict JSON parser + schema binding for task-spec files. The
// parser covers exactly the JSON subset the schema in spec.hpp needs
// (objects, arrays, strings, integer/double numbers, booleans, null) and
// reports line:column positions; the binding layer rejects unknown keys
// and wrong types loudly, so a typo in a spec file can never be silently
// ignored.
#include "api/spec.hpp"

#include <climits>
#include <cstdio>
#include <stdexcept>
#include <variant>

namespace gcnrl::api {

namespace {

// --- JSON value + parser ---------------------------------------------------

struct JsonValue;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  // monostate = null. Numbers keep both renderings so integer fields can
  // reject fractional values.
  std::variant<std::monostate, bool, double, std::string, JsonArray,
               JsonObject>
      v;
  bool is_integer = false;  // set for numbers without '.'/exponent
  int line = 0, col = 0;    // position of the value's first character
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("spec parse error at " + std::to_string(line_) +
                             ":" + std::to_string(col_) + ": " + what);
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char get() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      get();
    }
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    get();
  }

  JsonValue value() {
    skip_ws();
    JsonValue out;
    out.line = line_;
    out.col = col_;
    const char c = peek();
    if (c == '{') {
      out.v = object();
    } else if (c == '[') {
      out.v = array();
    } else if (c == '"') {
      out.v = string();
    } else if (c == 't' || c == 'f') {
      out.v = boolean();
    } else if (c == 'n') {
      literal("null");
      out.v = std::monostate{};
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      number(out);
    } else {
      fail(std::string("unexpected character '") + c + "'");
    }
    return out;
  }

  JsonObject object() {
    expect('{');
    JsonObject out;
    skip_ws();
    if (peek() == '}') {
      get();
      return out;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected a quoted object key");
      std::string key = string();
      for (const auto& [k, unused] : out) {
        if (k == key) fail("duplicate key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      out.emplace_back(std::move(key), value());
      skip_ws();
      const char c = get();
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonArray array() {
    expect('[');
    JsonArray out;
    skip_ws();
    if (peek() == ']') {
      get();
      return out;
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      const char c = get();
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = get();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = get();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default:
            fail(std::string("unsupported escape '\\") + e + "'");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  bool boolean() {
    if (peek() == 't') {
      literal("true");
      return true;
    }
    literal("false");
    return false;
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (get() != *p) fail(std::string("expected '") + word + "'");
    }
  }

  void number(JsonValue& out) {
    std::string tok;
    bool integer = true;
    if (peek() == '-') tok += get();
    while (peek() >= '0' && peek() <= '9') tok += get();
    if (peek() == '.') {
      integer = false;
      tok += get();
      while (peek() >= '0' && peek() <= '9') tok += get();
    }
    if (peek() == 'e' || peek() == 'E') {
      integer = false;
      tok += get();
      if (peek() == '+' || peek() == '-') tok += get();
      while (peek() >= '0' && peek() <= '9') tok += get();
    }
    try {
      out.v = std::stod(tok);
    } catch (const std::exception&) {
      fail("malformed number \"" + tok + "\"");
    }
    out.is_integer = integer;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1, col_ = 1;
};

// --- schema binding --------------------------------------------------------

[[noreturn]] void schema_fail(const JsonValue& v, const std::string& what) {
  throw std::runtime_error("spec schema error at " + std::to_string(v.line) +
                           ":" + std::to_string(v.col) + ": " + what);
}

const JsonObject& as_object(const JsonValue& v, const std::string& what) {
  if (const auto* o = std::get_if<JsonObject>(&v.v)) return *o;
  schema_fail(v, what + " must be an object");
}

std::string as_string(const JsonValue& v, const std::string& key) {
  if (const auto* s = std::get_if<std::string>(&v.v)) return *s;
  schema_fail(v, "\"" + key + "\" must be a string");
}

long as_integer(const JsonValue& v, const std::string& key) {
  const auto* d = std::get_if<double>(&v.v);
  if (d == nullptr || !v.is_integer) {
    schema_fail(v, "\"" + key + "\" must be an integer");
  }
  // Stay within the doubles that represent integers exactly (2^53), so the
  // cast below can neither lose precision nor hit UB.
  if (*d < -9007199254740992.0 || *d > 9007199254740992.0) {
    schema_fail(v, "\"" + key + "\" is out of range");
  }
  return static_cast<long>(*d);
}

int as_int(const JsonValue& v, const std::string& key) {
  const long l = as_integer(v, key);
  if (l < INT_MIN || l > INT_MAX) {
    schema_fail(v, "\"" + key + "\" is out of int range");
  }
  return static_cast<int>(l);
}

env::IndexMode as_mode(const JsonValue& v, const std::string& key) {
  const std::string mode = as_string(v, key);
  if (mode == "one_hot") return env::IndexMode::OneHot;
  if (mode == "scalar") return env::IndexMode::Scalar;
  schema_fail(v, "\"" + key + "\" must be \"one_hot\" or \"scalar\"");
}

TaskSpec bind_task(const JsonValue& v, std::size_t index) {
  const JsonObject& obj =
      as_object(v, "tasks[" + std::to_string(index) + "]");
  TaskSpec t;
  bool have_circuit = false, have_method = false;
  for (const auto& [key, val] : obj) {
    if (key == "circuit") {
      t.circuit = as_string(val, key);
      have_circuit = true;
    } else if (key == "circuit_file") {
      t.circuit_file = as_string(val, key);
      have_circuit = true;
    } else if (key == "method") {
      t.method = as_string(val, key);
      have_method = true;
    } else if (key == "node") {
      t.node = as_string(val, key);
    } else if (key == "steps") {
      t.steps = as_int(val, key);
    } else if (key == "warmup") {
      t.warmup = as_int(val, key);
    } else if (key == "seeds") {
      t.seeds = as_int(val, key);
    } else if (key == "sim_budget") {
      t.sim_budget = as_integer(val, key);
    } else if (key == "label") {
      t.label = as_string(val, key);
    } else if (key == "pretrain_from") {
      t.pretrain_from = as_string(val, key);
    } else if (key == "load_checkpoint") {
      t.load_checkpoint = as_string(val, key);
    } else if (key == "save_checkpoint") {
      t.save_checkpoint = as_string(val, key);
    } else if (key == "mode") {
      t.index_mode = as_mode(val, key);
    } else if (key == "calib_group") {
      t.calib_group = as_string(val, key);
    } else if (key == "seed_base") {
      const long base = as_integer(val, key);
      if (base < 0) schema_fail(val, "\"seed_base\" must be non-negative");
      t.seed_base = static_cast<std::uint64_t>(base);
    } else if (key == "seed_stride") {
      const long stride = as_integer(val, key);
      if (stride < 0) schema_fail(val, "\"seed_stride\" must be non-negative");
      t.seed_stride = static_cast<std::uint64_t>(stride);
    } else {
      schema_fail(val, "unknown task key \"" + key +
                           "\" (known: circuit, circuit_file, method, node, "
                           "steps, warmup, seeds, sim_budget, label, "
                           "pretrain_from, load_checkpoint, "
                           "save_checkpoint, mode, calib_group, seed_base, "
                           "seed_stride)");
    }
  }
  if (!have_circuit) {
    schema_fail(v,
                "task is missing required key \"circuit\" (or "
                "\"circuit_file\")");
  }
  if (!have_method) schema_fail(v, "task is missing required key \"method\"");
  return t;
}

RunOptions bind_options(const JsonValue& v) {
  const JsonObject& obj = as_object(v, "\"options\"");
  RunOptions opts;
  for (const auto& [key, val] : obj) {
    if (key == "calib") {
      opts.calib_samples = as_int(val, key);
    } else if (key == "calib_seed") {
      const long seed = as_integer(val, key);
      if (seed < 0) schema_fail(val, "\"calib_seed\" must be non-negative");
      opts.calib_seed = static_cast<std::uint64_t>(seed);
    } else if (key == "mode") {
      opts.mode = as_mode(val, key);
    } else {
      schema_fail(val, "unknown options key \"" + key +
                           "\" (known: calib, calib_seed, mode)");
    }
  }
  return opts;
}

}  // namespace

TaskFile parse_task_spec(const std::string& text) {
  const JsonValue root = Parser(text).parse();
  const JsonObject& obj = as_object(root, "spec file");
  TaskFile out;
  bool have_tasks = false;
  for (const auto& [key, val] : obj) {
    if (key == "options") {
      out.options = bind_options(val);
    } else if (key == "tasks") {
      const auto* arr = std::get_if<JsonArray>(&val.v);
      if (arr == nullptr) schema_fail(val, "\"tasks\" must be an array");
      for (std::size_t i = 0; i < arr->size(); ++i) {
        out.tasks.push_back(bind_task((*arr)[i], i));
      }
      have_tasks = true;
    } else {
      schema_fail(val, "unknown top-level key \"" + key +
                           "\" (known: options, tasks)");
    }
  }
  if (!have_tasks || out.tasks.empty()) {
    throw std::runtime_error(
        "spec schema error: spec file needs a non-empty \"tasks\" array");
  }
  return out;
}

TaskFile load_task_spec(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("load_task_spec: cannot read \"" + path + "\"");
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  TaskFile out = parse_task_spec(text);
  // Relative circuit_file paths are spec-relative, so a spec and its .gcir
  // files travel together regardless of the CLI's working directory.
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    const std::string dir = path.substr(0, slash + 1);
    for (TaskSpec& t : out.tasks) {
      if (!t.circuit_file.empty() && t.circuit_file.front() != '/') {
        t.circuit_file = dir + t.circuit_file;
      }
    }
  }
  return out;
}

}  // namespace gcnrl::api
