// Uniform random search over [-1, 1]^dim — the paper's "Random" baseline
// (best of N uniform samples).
#pragma once

#include "opt/optimizer.hpp"

namespace gcnrl::opt {

class RandomSearch : public Optimizer {
 public:
  RandomSearch(int dim, Rng rng, int batch = 1)
      : dim_(dim), rng_(rng), batch_(batch) {}

  std::vector<std::vector<double>> ask() override;
  void tell(const std::vector<std::vector<double>>&,
            const std::vector<double>&) override {}
  [[nodiscard]] int dim() const override { return dim_; }

 private:
  int dim_;
  Rng rng_;
  int batch_;
};

}  // namespace gcnrl::opt
