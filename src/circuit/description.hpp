// Textual circuit descriptions: the parsed, unresolved form of a .gcir
// file (see gcir.hpp for the format and parser).
//
// A CircuitDescription is pure data — names, expressions, declaration
// order — with no dependency on the simulator or a concrete technology
// node. Numeric fields are circuit::Expr so one description ports across
// nodes ("l=2*lmin") exactly like the hand-written C++ builders; nothing
// is evaluated until env::compile_circuit() binds the description to a
// Technology and produces a runnable env::BenchmarkCircuit.
//
// Declaration order is load-bearing and preserved everywhere:
//   * nets in declaration order define the node-id assignment (and so the
//     MNA unknown ordering — the .gcir ports of the paper circuits declare
//     nets in the builders' node() call order to stay bit-identical);
//   * elements (sources and devices interleaved, in file order) define
//     both element insertion order and the design-component/graph-vertex
//     order;
//   * metrics, match groups and plan entries keep file order.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/expr.hpp"
#include "circuit/netlist.hpp"

namespace gcnrl::circuit {

// A designable (or fixed) device: NMOS/PMOS (nodes d g s b; params w l m)
// or R/C (nodes a b; params[0] = r or c).
struct DeviceDesc {
  Kind kind = Kind::Nmos;
  std::string name;
  std::vector<std::string> nodes;      // 4 for MOS, 2 for R/C
  std::array<Expr, kMaxActionDim> params;
  bool designable = true;
  int line = 0;
  int col = 1;
};

// Independent V/I source with optional AC magnitude and PWL waveform.
struct SourceDesc {
  bool is_vsource = true;
  std::string name;
  std::string p, n;
  Expr dc;
  Expr ac;                                   // empty = 0
  std::vector<std::pair<Expr, Expr>> pwl;    // (time, value) pairs
  int line = 0;
  int col = 1;
};

// File-order element sequence: index into `devices` or `sources`.
struct ElementRef {
  bool is_source = false;
  int index = 0;
};

struct NetDesc {
  std::string name;
  bool supply = false;
  int line = 0;
  int col = 1;
};

// Search-range override: `bound T6 w.hi=wmax` tightens/widens one side of
// one parameter's default range from DesignSpace::from_netlist.
struct BoundDesc {
  std::string comp;
  int param = 0;      // 0 = w/r/c, 1 = l, 2 = m
  bool hi = true;     // which side of the range
  Expr value;
  int line = 0;
  int col = 1;
};

struct MatchDesc {
  std::vector<std::string> comps;
  bool l_only = false;
  int line = 0;
  int col = 1;
};

// One row of the FoM metric table (env::MetricDef with Expr bounds).
struct MetricDesc {
  std::string name;
  std::string unit;
  double weight = 1.0;
  std::optional<Expr> bound;
  std::optional<Expr> spec_min;
  std::optional<Expr> spec_max;
  bool log_norm = false;
  int line = 0;
  int col = 1;
};

// Human-expert sizing for one component (3 values for MOS, 1 for R/C).
struct ExpertDesc {
  std::string comp;
  std::vector<Expr> values;
  int line = 0;
  int col = 1;
};

// --- declarative measurement plan (unresolved) -----------------------------

// Per-bench source override: the .gcir twin of the builders'
// `nl.find_vsource("VDD")->ac = 1.0` testbench edits.
struct SourceSetDesc {
  std::string source;
  std::optional<Expr> dc;
  std::optional<Expr> ac;
  std::optional<std::vector<std::pair<Expr, Expr>>> pwl;
  int line = 0;
  int col = 1;
};

struct AcSweepDesc {
  Expr fmin, fmax;
  int npoints = 0;
  int line = 0;
  int col = 1;
};

struct NoiseDesc {
  std::vector<Expr> freqs;
  std::string out_p;
  std::string out_n;  // empty = ground
  int line = 0;
  int col = 1;
};

struct TranDesc {
  Expr tstop, dt;
  int line = 0;
  int col = 1;
};

// One testbench: a (possibly source-overridden) copy of the sized netlist
// driven through one Simulator. Analyses run in the fixed order power ->
// ac -> noise -> tran (each at most once per bench).
struct BenchDesc {
  std::string name;
  std::vector<SourceSetDesc> sets;
  std::optional<AcSweepDesc> ac;
  std::optional<NoiseDesc> noise;
  std::optional<TranDesc> tran;
  std::string warm_from;  // earlier bench whose DC op seeds this one
  int line = 0;
  int col = 1;
};

// Measurement vocabulary (meas::run_plan implements each of these).
enum class ExtractFn {
  SupplyPower,   // sim supply power (no probe)
  DcGain,        // meas::dc_gain of the probe's AC curve
  Bandwidth3db,  // meas::bandwidth_3db
  PeakingDb,     // meas::peaking_db
  Gbw,           // meas::gbw (= dc_gain * bandwidth_3db)
  InputNoise,    // input-referred spot noise at `at_freq`
  SettlingTime,  // settling after `edge` within [win_t0, win_t1], tol `tol`
};

struct ExtractDesc {
  std::string metric;  // MetricMap key this extraction produces
  ExtractFn fn = ExtractFn::DcGain;
  std::string bench;
  std::string probe_p;  // AC/tran probe node ("" = none)
  std::string probe_n;  // non-empty = differential probe
  std::optional<Expr> at_freq;                  // InputNoise
  std::optional<Expr> win_t0, win_t1, edge, tol;  // SettlingTime
  int line = 0;
  int col = 1;
};

// --- the description -------------------------------------------------------

// Warning suppression, from a "#lint: allow CHECK-ID" pragma line. Only
// warnings are suppressible; circuit::analyze_circuit ignores allows that
// name error-severity checks (see analyze.hpp).
struct LintAllowDesc {
  std::string check;
  int line = 0;
  int col = 1;
};

struct CircuitDescription {
  std::string name;
  std::string origin;               // diagnostic source label ("<string>",
                                    // or the .gcir path it was loaded from)
  int name_line = 1;                // position of the "circuit" directive
  int name_col = 1;
  std::vector<NetDesc> nets;        // declaration order = node-id order
  std::vector<DeviceDesc> devices;
  std::vector<SourceDesc> sources;
  std::vector<ElementRef> element_order;
  std::vector<BoundDesc> bounds;
  std::vector<MatchDesc> matches;
  std::vector<MetricDesc> metrics;
  std::vector<ExpertDesc> expert;
  std::vector<BenchDesc> benches;
  std::vector<ExtractDesc> extracts;
  std::vector<LintAllowDesc> lint_allows;
};

}  // namespace gcnrl::circuit
