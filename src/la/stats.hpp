// Small statistics helpers shared by FoM calibration, state normalization
// and the benchmark reporting (mean ± std across seeds).
#pragma once

#include <span>
#include <vector>

#include "la/matrix.hpp"

namespace gcnrl::la {

double mean(std::span<const double> v);
// Population standard deviation (what the paper's +/- columns report is a
// spread over 3 runs; sample vs population is immaterial at that n, we use
// the sample estimator with (n-1) and return 0 for n < 2).
double stddev(std::span<const double> v);
double min_of(std::span<const double> v);
double max_of(std::span<const double> v);

// Column-wise mean / std of a matrix (rows = observations).
std::vector<double> col_mean(const Mat& m);
std::vector<double> col_stddev(const Mat& m);

// Normalize columns in place to zero mean / unit std; columns with zero
// spread are left centered only. Returns {mean, std} actually used.
struct ColStats {
  std::vector<double> mean;
  std::vector<double> stddev;
};
ColStats normalize_columns(Mat& m);

}  // namespace gcnrl::la
