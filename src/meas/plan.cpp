#include "meas/plan.hpp"

#include <memory>

namespace gcnrl::meas {

namespace {

// AC probe curve for an extraction: differential when probe_n is a real
// node, single-ended otherwise (never diff against ground — a builder's
// curve_at(ac, vout) and curve_diff(ac, vout, 0) agree numerically, but we
// replay the builders' exact calls).
AcCurve probe_curve(const sim::AcResult& ac, const ExtractPlan& e) {
  if (e.probe_n >= 0) return curve_diff(ac, e.probe_p, e.probe_n);
  return curve_at(ac, e.probe_p);
}

TranCurve probe_tran(const sim::TranResult& tr, const ExtractPlan& e) {
  TranCurve c = tran_curve(tr, e.probe_p);
  if (e.probe_n >= 0) {
    const TranCurve n = tran_curve(tr, e.probe_n);
    for (std::size_t i = 0; i < c.v.size(); ++i) c.v[i] -= n.v[i];
  }
  return c;
}

}  // namespace

MetricMap run_plan(const Plan& plan, const circuit::Netlist& sized,
                   const circuit::Technology& tech) {
  // Benches whose source overrides require a netlist copy keep the copy
  // alive here for the lifetime of their Simulator.
  std::vector<std::unique_ptr<circuit::Netlist>> edited;
  std::vector<std::unique_ptr<sim::Simulator>> sims;
  std::vector<sim::AcResult> acs(plan.benches.size());
  std::vector<sim::NoiseResult> noises(plan.benches.size());
  std::vector<sim::TranResult> trans(plan.benches.size());
  sims.reserve(plan.benches.size());

  for (std::size_t i = 0; i < plan.benches.size(); ++i) {
    const BenchPlan& b = plan.benches[i];
    const circuit::Netlist* bench_nl = &sized;
    if (!b.sets.empty()) {
      edited.push_back(std::make_unique<circuit::Netlist>(sized));
      circuit::Netlist& nl = *edited.back();
      for (const SourceOverride& o : b.sets) {
        if (o.is_vsource) {
          circuit::VSource* v = nl.find_vsource(o.name);
          if (o.dc) v->dc = *o.dc;
          if (o.ac) v->ac = *o.ac;
          if (o.pwl) v->pwl = *o.pwl;
        } else {
          circuit::ISource* s = nl.find_isource(o.name);
          if (o.dc) s->dc = *o.dc;
          if (o.ac) s->ac = *o.ac;
          if (o.pwl) s->pwl = *o.pwl;
        }
      }
      bench_nl = &nl;
    }
    // Exactly one Simulator per bench, constructed in bench order: under a
    // WarmStartScope this claims the same bank slots a builder running the
    // same sequence of testbenches would.
    sims.push_back(std::make_unique<sim::Simulator>(*bench_nl, tech));
    sim::Simulator& s = *sims.back();
    if (b.warm_from >= 0) {
      s.warm_start_from(sims[static_cast<std::size_t>(b.warm_from)]->op());
    }
    if (b.ac_freqs) acs[i] = s.ac(*b.ac_freqs);
    if (b.noise_freqs) noises[i] = s.noise(*b.noise_freqs, b.noise_p,
                                           b.noise_n);
    if (b.tran) trans[i] = s.tran(*b.tran);
  }

  MetricMap m;
  for (const ExtractPlan& e : plan.extracts) {
    const std::size_t bi = static_cast<std::size_t>(e.bench);
    switch (e.fn) {
      case circuit::ExtractFn::SupplyPower:
        // op() is already cached by the bench's analyses, so extraction
        // order cannot perturb the DC solve.
        m[e.metric] = sims[bi]->supply_power();
        break;
      case circuit::ExtractFn::DcGain:
        m[e.metric] = dc_gain(probe_curve(acs[bi], e));
        break;
      case circuit::ExtractFn::Bandwidth3db:
        m[e.metric] = bandwidth_3db(probe_curve(acs[bi], e));
        break;
      case circuit::ExtractFn::PeakingDb:
        m[e.metric] = peaking_db(probe_curve(acs[bi], e));
        break;
      case circuit::ExtractFn::Gbw:
        m[e.metric] = gbw(probe_curve(acs[bi], e));
        break;
      case circuit::ExtractFn::InputNoise:
        m[e.metric] = input_referred_noise(noises[bi],
                                           probe_curve(acs[bi], e),
                                           e.at_freq);
        break;
      case circuit::ExtractFn::SettlingTime: {
        const TranCurve w =
            window(probe_tran(trans[bi], e), e.win_t0, e.win_t1);
        m[e.metric] = settling_time(w, e.edge, e.tol);
        break;
      }
    }
  }
  return m;
}

}  // namespace gcnrl::meas
