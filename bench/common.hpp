// Shared machinery for the table/figure benchmark harnesses.
//
// Provides the method registry of Table I (Random / ES / BO / MACE /
// NG-RL / GCN-RL + the human anchor), seed sweeps with mean +/- std
// aggregation, and a deterministic rendering of the paper's
// budget-matching rule for the O(N^3) BO methods ("for BO and MACE it is
// impossible to run 10000 steps ... we ran them for the same runtime"):
// the paper's true cost unit is the simulation, so BO/MACE runs stop at
// the SIMULATED-COST budget of the corresponding ES run (its
// RunResult::sims — the simulations an isolated ES run would execute)
// instead of at a nondeterministic wall-clock deadline. Budgets in
// simulation counts are pure functions of the proposal streams, so every
// harness table is bit-reproducible run-to-run, at any GCNRL_EVAL_THREADS
// or GCNRL_EVAL_CACHE, and regardless of which methods warmed a shared
// result cache first.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "circuits/benchmark_circuits.hpp"
#include "common/envcfg.hpp"
#include "common/table.hpp"
#include "env/eval_service.hpp"
#include "la/stats.hpp"
#include "opt/bayes_opt.hpp"
#include "opt/cma_es.hpp"
#include "opt/mace.hpp"
#include "opt/random_search.hpp"
#include "rl/run_loop.hpp"

namespace gcnrl::bench {

inline const std::vector<std::string> kMethods = {
    "Random", "ES", "BO", "MACE", "NG-RL", "GCN-RL"};

// A calibrated environment factory: builds fresh envs for a circuit while
// sharing one FoM calibration (normalizers must be identical across
// methods for the comparison to be meaningful).
//
// When constructed with a shared EvalService, every env the factory makes
// — including the calibration probe — evaluates through that service, so a
// whole harness shares one thread pool and one result cache. Without one,
// each env gets a private service from the GCNRL_EVAL_* knobs, as before.
class EnvFactory {
 public:
  EnvFactory(std::string circuit_name, const circuit::Technology& tech,
             env::IndexMode mode, int calib_samples, Rng& rng,
             std::shared_ptr<env::EvalService> svc = nullptr)
      : name_(std::move(circuit_name)),
        tech_(tech),
        mode_(mode),
        svc_(std::move(svc)) {
    env::SizingEnv probe(circuits::make_benchmark(name_, tech_), mode_,
                         svc_);
    probe.calibrate(calib_samples, rng);
    fom_ = probe.bench().fom;
  }

  // Env on the factory's own service (private per-env when none was set).
  [[nodiscard]] std::unique_ptr<env::SizingEnv> make() const {
    return make(svc_);
  }

  // Env on an explicit shared service (sweep() uses this to put all S
  // seed-envs of a lockstep group on one service).
  [[nodiscard]] std::unique_ptr<env::SizingEnv> make(
      std::shared_ptr<env::EvalService> svc) const {
    auto bc = circuits::make_benchmark(name_, tech_);
    bc.fom = fom_;
    return std::make_unique<env::SizingEnv>(std::move(bc), mode_,
                                            std::move(svc));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const env::FomSpec& fom() const { return fom_; }
  [[nodiscard]] const std::shared_ptr<env::EvalService>& service() const {
    return svc_;
  }

 private:
  std::string name_;
  circuit::Technology tech_;
  env::IndexMode mode_;
  env::FomSpec fom_;
  std::shared_ptr<env::EvalService> svc_;
};

// One (agent config, RNG, optional weight source) spec of a lockstep
// group. `setup`, when set, runs on the freshly built env before the agent
// is constructed (e.g. to tweak the FoM spec per pair); `copy_from`, when
// non-null, seeds the agent's weights from a pretrained agent.
struct LockstepSpec {
  rl::DdpgConfig cfg;
  Rng rng;
  rl::DdpgAgent* copy_from = nullptr;
  std::function<void(env::SizingEnv&)> setup;
};

// S (env, agent) pairs built from one factory onto one shared EvalService
// (the factory's, or a group-local one when the factory has none), stepped
// together through rl::run_ddpg_lockstep. The group owns its envs and
// agents — pretraining harnesses keep it alive and hand its agents to
// later groups as `copy_from` sources.
class LockstepGroup {
 public:
  LockstepGroup(const EnvFactory& factory, std::vector<LockstepSpec> specs);

  std::vector<rl::RunResult> run(int steps);

  [[nodiscard]] std::size_t size() const { return agents_.size(); }
  [[nodiscard]] rl::DdpgAgent& agent(std::size_t i) { return *agents_[i]; }
  [[nodiscard]] env::SizingEnv& env(std::size_t i) { return *envs_[i]; }

 private:
  std::vector<std::unique_ptr<env::SizingEnv>> envs_;
  std::vector<std::unique_ptr<rl::DdpgAgent>> agents_;
};

// Thin forwarder to rl::run_optimizer's simulated-cost overload: stops
// once `sim_budget` simulations have been charged (<= 0: step budget
// only). Kept as a named entry point because "the budgeted BO/MACE run"
// is a concept of the paper's protocol, not of the RL layer. Replaces the
// retired run_optimizer_timed wall-clock deadline.
rl::RunResult run_optimizer_budgeted(env::SizingEnv& env, opt::Optimizer& opt,
                                     int steps, long sim_budget);

// The black-box baseline behind a method name ("ES" / "BO" / "MACE").
std::unique_ptr<opt::Optimizer> make_optimizer(const std::string& method,
                                               int dim, Rng rng);

// One-line description of the evaluation engine configuration (thread
// count + cache capacity from GCNRL_EVAL_THREADS / GCNRL_EVAL_CACHE),
// printed by every harness so logged tables are self-describing.
std::string eval_banner();

// One-line service-usage summary (service-wide totals — per-seed numbers
// come from the per-env counters / RunResult, never from these totals).
std::string service_usage(const env::EvalService& svc);

// One (method, seed) run. `sim_budget` is the simulated cost of the
// matching ES run (RunResult::sims), used as the BO/MACE stopping budget
// (<= 0: step budget only; other methods ignore it). A non-null `svc`
// overrides the factory's service for this run's env.
rl::RunResult run_method(const std::string& method, const EnvFactory& factory,
                         int steps, int warmup, std::uint64_t seed,
                         long sim_budget, const rl::DdpgConfig& base_cfg = {},
                         std::shared_ptr<env::EvalService> svc = nullptr);

// Seed sweep: returns best-FoM per seed plus the traces and the per-seed
// simulated cost (RunResult::sims — the budget currency).
//
// All S seeds share one EvalService (the factory's, or a sweep-local one
// when the factory has none) and advance in lockstep: the RL methods
// through rl::run_ddpg_lockstep, the ask/tell black-box methods
// (ES/BO/MACE) through rl::run_optimizer_lockstep — S proposers merging
// each round's populations into one S-wide simulation batch — so
// GCNRL_EVAL_THREADS parallelizes across seeds for every method. Random
// keeps its per-seed loop (its 64-design chunks already saturate the
// pool). Per-seed traces are bit-identical to serial per-seed runs.
//
// `sim_budgets`, when non-empty, must hold one simulated-cost budget per
// seed (BO/MACE: seed s stops at sim_budgets[s], the sims of the matching
// ES seed); empty means step budgets only.
struct SweepResult {
  std::vector<double> best;             // per seed
  std::vector<std::vector<double>> traces;
  std::vector<long> sims;               // per-seed simulated cost
  double mean = 0.0;
  double stddev = 0.0;
};
SweepResult sweep(const std::string& method, const EnvFactory& factory,
                  int steps, int warmup, int seeds,
                  std::span<const long> sim_budgets = {},
                  const rl::DdpgConfig& base_cfg = {});

// sweep() plus the budget-chain rule in one place: an ES sweep records its
// per-seed sims into `es_sims`, BO/MACE sweeps consume them as stopping
// budgets, every other method ignores the chain. Call per method, in an
// order that puts ES before BO/MACE.
SweepResult sweep_chained(const std::string& method, const EnvFactory& factory,
                          int steps, int warmup, int seeds,
                          std::vector<long>& es_sims,
                          const rl::DdpgConfig& base_cfg = {});

// "mean +/- std" cell formatting used by all tables.
std::string pm(double mean, double stddev, int precision = 3);

}  // namespace gcnrl::bench
