// Figure of Merit (paper Eq. 2).
//
//   FoM = sum_i w_i * (min(m_i, m_i^bound) - m_i^min) / (m_i^max - m_i^min)
//
// with w_i = +1 for larger-is-better metrics and w_i = -1 for smaller-is-
// better ones. As in the paper, the normalizers m^min / m^max come from
// random-sampling calibration. Metrics with negative weight contribute
// |w| * (m^max - m) / (m^max - m^min), i.e. the direction-flipped
// normalization — this is the only reading under which the paper's
// reported FoM magnitudes (e.g. 2.72 over five +/-1-weighted metrics) are
// reachable, since a signed sum of [0,1] terms could never exceed the
// number of positive metrics.
//
// If a performance spec exists and is violated, the FoM is a fixed
// negative value (paper Sec. III-A); simulator failures map to an even
// lower value so "didn't converge" is always worse than "converged but
// missed spec".
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gcnrl::env {

using MetricMap = std::map<std::string, double>;

struct MetricDef {
  std::string name;
  std::string unit;
  double weight = 1.0;  // sign encodes direction, magnitude the emphasis
  // Optional diminishing-returns bound (paper's m^bound): beyond it the
  // metric stops improving the FoM. For larger-is-better metrics this caps
  // from above; for smaller-is-better it floors from below.
  std::optional<double> bound;
  // Optional hard spec window.
  std::optional<double> spec_min;
  std::optional<double> spec_max;
  // Normalize in log space. Essential for metrics whose calibrated range
  // spans decades (bandwidth, gain, noise, settling time): a linear map
  // would collapse all but the extreme tail onto ~0 or ~1 and destroy the
  // FoM's ability to discriminate between designs.
  bool log_norm = false;
  // Calibrated normalizers.
  double mmin = 0.0;
  double mmax = 1.0;

  [[nodiscard]] double normalized(double m) const;
  [[nodiscard]] bool spec_ok(double m) const;
};

struct FomSpec {
  std::vector<MetricDef> metrics;
  bool enforce_spec = true;
  double spec_fail_fom = -1.0;
  double sim_fail_fom = -2.0;

  [[nodiscard]] MetricDef* find(const std::string& name);
  [[nodiscard]] const MetricDef* find(const std::string& name) const;
  void set_weight(const std::string& name, double w);

  // FoM of a metric map (metrics absent from the map are treated as spec
  // failures — a measurement that could not be taken is a failed design).
  [[nodiscard]] double fom(const MetricMap& m) const;
  [[nodiscard]] bool spec_ok(const MetricMap& m) const;

  // Update mmin/mmax from a set of sampled metric maps (paper: min/max of
  // 5000 random designs). Degenerate ranges get a unit span around the
  // value so the FoM stays finite.
  void calibrate(const std::vector<MetricMap>& samples);

  // Maximum achievable FoM = sum of |w_i| (each term normalizes to <= 1
  // inside the calibrated range).
  [[nodiscard]] double max_fom() const;
};

}  // namespace gcnrl::env
