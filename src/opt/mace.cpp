#include "opt/mace.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gcnrl::opt {

Mace::Mace(int dim, Rng rng, MaceOptions opt)
    : dim_(dim), rng_(rng), opt_(opt) {}

std::vector<std::vector<double>> Mace::ask() {
  if (static_cast<int>(xs_.size()) < opt_.initial_random) {
    std::vector<std::vector<double>> out(
        std::min(opt_.batch, opt_.initial_random),
        std::vector<double>(dim_));
    for (auto& x : out) {
      for (auto& v : x) v = rng_.uniform(-1.0, 1.0);
    }
    return out;
  }

  // Candidate pool: half global, half local around the incumbent.
  std::vector<std::vector<double>> pool(opt_.pool,
                                        std::vector<double>(dim_));
  const auto& best = xs_[std::distance(
      ys_.begin(), std::max_element(ys_.begin(), ys_.end()))];
  for (std::size_t k = 0; k < pool.size(); ++k) {
    if (k % 2 == 0) {
      for (auto& v : pool[k]) v = rng_.uniform(-1.0, 1.0);
    } else {
      for (int i = 0; i < dim_; ++i) {
        pool[k][i] = std::clamp(best[i] + 0.2 * rng_.normal(), -1.0, 1.0);
      }
    }
  }

  // Acquisition triple per candidate (all to MAXIMIZE): EI, PI, UCB
  // (for a maximization problem LCB's role is played by mu + kappa*sd).
  struct Acq {
    double ei, pi, ucb;
  };
  std::vector<Acq> acq(pool.size());
  for (std::size_t k = 0; k < pool.size(); ++k) {
    const GpPrediction p = gp_.predict(pool[k]);
    const double sd = std::sqrt(p.variance);
    if (sd < 1e-12) {
      acq[k] = {0.0, 0.0, p.mean};
      continue;
    }
    const double z = (p.mean - best_y_ - opt_.xi) / sd;
    acq[k] = {(p.mean - best_y_ - opt_.xi) * norm_cdf(z) + sd * norm_pdf(z),
              norm_cdf(z), p.mean + opt_.lcb_kappa * sd};
  }

  // Pareto front over (ei, pi, ucb).
  auto dominates = [](const Acq& a, const Acq& b) {
    return a.ei >= b.ei && a.pi >= b.pi && a.ucb >= b.ucb &&
           (a.ei > b.ei || a.pi > b.pi || a.ucb > b.ucb);
  };
  std::vector<int> front;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < pool.size(); ++j) {
      if (i != j && dominates(acq[j], acq[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(static_cast<int>(i));
  }
  if (front.empty()) {
    front.resize(pool.size());
    std::iota(front.begin(), front.end(), 0);
  }

  // Draw the batch from the front without replacement (anchored by the
  // best-EI member so pure exploitation is always represented).
  std::vector<std::vector<double>> out;
  std::sort(front.begin(), front.end(),
            [&](int a, int b) { return acq[a].ei > acq[b].ei; });
  out.push_back(pool[front.front()]);
  std::vector<int> rest(front.begin() + 1, front.end());
  rng_.shuffle(rest);
  for (int idx : rest) {
    if (static_cast<int>(out.size()) >= opt_.batch) break;
    out.push_back(pool[idx]);
  }
  while (static_cast<int>(out.size()) < opt_.batch) {
    std::vector<double> x(dim_);
    for (auto& v : x) v = rng_.uniform(-1.0, 1.0);
    out.push_back(std::move(x));
  }
  return out;
}

void Mace::tell(const std::vector<std::vector<double>>& xs,
                const std::vector<double>& ys) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs_.push_back(xs[i]);
    ys_.push_back(ys[i]);
    best_y_ = std::max(best_y_, ys[i]);
  }
  if (static_cast<int>(xs_.size()) < opt_.initial_random) return;
  std::vector<std::vector<double>> x_fit = xs_;
  std::vector<double> y_fit = ys_;
  if (static_cast<int>(x_fit.size()) > opt_.max_gp_points) {
    std::vector<int> order(x_fit.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return y_fit[a] > y_fit[b]; });
    order.resize(opt_.max_gp_points);
    std::vector<std::vector<double>> xk;
    std::vector<double> yk;
    for (int idx : order) {
      xk.push_back(x_fit[idx]);
      yk.push_back(y_fit[idx]);
    }
    x_fit = std::move(xk);
    y_fit = std::move(yk);
  }
  gp_.fit(x_fit, y_fit);
}

}  // namespace gcnrl::opt
