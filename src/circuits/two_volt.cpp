// Two-stage fully-differential voltage amplifier (Fig. 6b analogue).
//
// Gain path: PMOS input pair (mp_in1/2 under tail mp_tail) with split
// first-stage loads — CMFB-controlled current sinks (mn_ld1/2) in
// parallel with diode-connected devices (mn_dd1/2). The diodes are
// essential, not optional: the capacitor feedback network couples the
// output COMMON mode back to the input gates, and the two-stage CM path
// through the pair is positive; with high-impedance-only loads its loop
// gain exceeds unity and the amplifier CM latches. The diodes set the
// stage-1 impedance to ~1/gm_dd, crushing the CM gain (~Z1/2ro_tail)
// below unity while defining a clean DM gain gm_p/gm_dd.
// Second stage: NMOS common source (mn_cs1/2, cross-coupled inputs so
// the per-side path ga -> voa is inverting) with PMOS current-source
// loads. Miller caps cm_a/b compensate across the second stage. The
// closed loop is set by capacitor ratio CS/CF (plus 1 GOhm DC-bias
// resistors).
// CMFB: resistive sense to vsense, PMOS error pair with NMOS *diode*
// loads. The diode loads center the control voltage one VGS above ground
// — exactly the level the NMOS stage-1 load gates need (a PMOS-diode-
// loaded error amp could never swing low enough to turn them off and the
// amplifier would latch with railed outputs). Control is taken at the
// vsense-driven leg: vsense up -> less PMOS current -> vcmfb down ->
// loads sink less -> stage-1 outputs up -> outputs down: negative loop.
// Bias: IBIAS through a PMOS diode makes the PMOS rail.
//
// Searched: 17 MOS (W, L, M) + CS/CF/Miller cap pairs -> 57 parameters.
// Metrics (paper Table III): closed-loop BW, common-mode phase margin
// (CPM), differential phase margin (DPM), power, input-referred noise,
// open-loop gain; GBW = gain x BW alongside.
#include "circuits/benchmark_circuits.hpp"

#include "circuits/helpers.hpp"

namespace gcnrl::circuits {

using circuit::Netlist;
using circuit::Technology;

env::BenchmarkCircuit make_two_volt(const Technology& tech) {
  env::BenchmarkCircuit bc;
  bc.name = "Two-Volt";
  bc.tech = tech;

  Netlist& nl = bc.netlist;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int vbp = nl.node("vbp");
  const int tailp = nl.node("tailp");
  const int o1a = nl.node("o1a");
  const int o1b = nl.node("o1b");
  const int voa = nl.node("voa");
  const int vob = nl.node("vob");
  const int vsense = nl.node("vsense");
  const int x2 = nl.node("x2");
  const int vcmfb = nl.node("vcmfb");
  const int tcm = nl.node("tcm");
  const int ga = nl.node("ga");
  const int gb = nl.node("gb");
  const int ina = nl.node("ina");
  const int inb = nl.node("inb");
  const int vcmref = nl.node("vcmref");

  const double ib = 50e-6 * (tech.vdd / 1.8);
  nl.add_vsource("VDD", vdd, 0, tech.vdd);
  nl.add_vsource("VCMREF", vcmref, 0, tech.vdd / 2.0);
  nl.add_isource("IBIAS", vbp, 0, ib);  // pulls ib out of the PMOS diode
  nl.add_vsource("VSA", ina, 0, 0.0, /*ac=*/+0.5);
  nl.add_vsource("VSB", inb, 0, 0.0, /*ac=*/-0.5);

  const double l = tech.lmin;
  // Gain path.
  nl.add_pmos("mp_tail", tailp, vbp, vdd, vdd, 40e-6, 2 * l, 2);
  nl.add_pmos("mp_in1", o1a, ga, tailp, vdd, 40e-6, 2 * l, 2);
  nl.add_pmos("mp_in2", o1b, gb, tailp, vdd, 40e-6, 2 * l, 2);
  nl.add_nmos("mn_ld1", o1a, vcmfb, 0, 0, 10e-6, 2 * l, 2);
  nl.add_nmos("mn_ld2", o1b, vcmfb, 0, 0, 10e-6, 2 * l, 2);
  nl.add_nmos("mn_dd1", o1a, o1a, 0, 0, 8e-6, 2 * l, 1);
  nl.add_nmos("mn_dd2", o1b, o1b, 0, 0, 8e-6, 2 * l, 1);
  // Second stage: inputs crossed so ga -> voa has odd inversion count.
  nl.add_nmos("mn_cs1", voa, o1b, 0, 0, 30e-6, l, 2);
  nl.add_nmos("mn_cs2", vob, o1a, 0, 0, 30e-6, l, 2);
  nl.add_pmos("mp_ld1", voa, vbp, vdd, vdd, 30e-6, 2 * l, 2);
  nl.add_pmos("mp_ld2", vob, vbp, vdd, vdd, 30e-6, 2 * l, 2);
  // CMFB error amplifier: PMOS pair, NMOS diode loads, control at the
  // vsense leg (see header comment for the level/polarity argument).
  nl.add_pmos("mcm1", vcmfb, vsense, tcm, vdd, 10e-6, 2 * l, 1);
  nl.add_pmos("mcm2", x2, vcmref, tcm, vdd, 10e-6, 2 * l, 1);
  nl.add_nmos("mcm_ld1", vcmfb, vcmfb, 0, 0, 5e-6, 2 * l, 1);
  nl.add_nmos("mcm_ld2", x2, x2, 0, 0, 5e-6, 2 * l, 1);
  nl.add_pmos("mcm_tail", tcm, vbp, vdd, vdd, 20e-6, 2 * l, 1);
  // Bias rail.
  nl.add_pmos("mb_p", vbp, vbp, vdd, vdd, 20e-6, 2 * l, 1);
  // Capacitors: closed-loop network + Miller compensation.
  nl.add_capacitor("cs_a", ina, ga, 2e-12);
  nl.add_capacitor("cs_b", inb, gb, 2e-12);
  nl.add_capacitor("cf_a", ga, voa, 1e-12);
  nl.add_capacitor("cf_b", gb, vob, 1e-12);
  nl.add_capacitor("cm_a", o1b, voa, 1e-12);
  nl.add_capacitor("cm_b", o1a, vob, 1e-12);
  // Fixed elements: CMFB sense (with phase-lead caps), DC bias, loads,
  // and a dominant-pole cap on the CM control node — standard CMFB
  // compensation so the common-mode loop crosses over with margin.
  nl.add_resistor("rs_a", voa, vsense, 1e6, false);
  nl.add_resistor("rs_b", vob, vsense, 1e6, false);
  nl.add_capacitor("cls_a", voa, nl.node("vsense"), 600e-15, false);
  nl.add_capacitor("cls_b", vob, nl.node("vsense"), 600e-15, false);
  nl.add_capacitor("ccm", nl.node("vcmfb"), 0, 1e-12, false);
  nl.add_resistor("rb_a", voa, ga, 1e9, false);
  nl.add_resistor("rb_b", vob, gb, 1e9, false);
  nl.add_capacitor("cl_a", voa, 0, 1e-12, false);
  nl.add_capacitor("cl_b", vob, 0, 1e-12, false);
  // Gate-grounding caps: lower the feedback factor of BOTH the wanted DM
  // loop and the parasitic positive CM loop (beta = CF/(CF+CS+Cg)),
  // buying common-mode stability at a small DM loop-gain cost.
  nl.add_capacitor("cg_a", ga, 0, 2e-12, false);
  nl.add_capacitor("cg_b", gb, 0, 2e-12, false);

  bc.space = circuit::DesignSpace::from_netlist(nl, tech);
  bc.space.add_match_group(nl, {"mp_in1", "mp_in2"});
  bc.space.add_match_group(nl, {"mn_ld1", "mn_ld2"});
  bc.space.add_match_group(nl, {"mn_dd1", "mn_dd2"});
  bc.space.add_match_group(nl, {"mn_cs1", "mn_cs2"});
  bc.space.add_match_group(nl, {"mp_ld1", "mp_ld2"});
  bc.space.add_match_group(nl, {"mcm1", "mcm2"});
  bc.space.add_match_group(nl, {"mcm_ld1", "mcm_ld2"});
  bc.space.add_match_group(nl, {"cs_a", "cs_b"});
  bc.space.add_match_group(nl, {"cf_a", "cf_b"});
  bc.space.add_match_group(nl, {"cm_a", "cm_b"});
  bc.space.add_match_group(
      nl, {"mb_p", "mp_tail", "mp_ld1", "mp_ld2", "mcm_tail"},
      /*l_only=*/true);

  env::FomSpec fom;
  fom.metrics = {
      // name, unit, weight, bound, spec_min, spec_max, log_norm
      {"bw", "Hz", +1.0, {}, 1e6, {}, true},
      {"cpm", "deg", +1.0, {}, {}, {}, false},
      {"dpm", "deg", +1.0, {}, {}, {}, false},
      {"power", "W", -1.0, {}, {}, {}, true},
      {"noise", "V/sqrt(Hz)", -1.0, {}, {}, {}, true},
      {"gain", "V/V", +1.0, {}, 100.0, {}, true},
  };
  // Functionality spec: without a gain/BW floor the FoM's phase-margin
  // and bandwidth terms reward DEAD amplifiers (no unity crossing reports
  // PM = 180, a flat response reports BW = the last swept frequency).
  bc.fom = fom;

  // Concurrency audit (EvalService contract on BenchmarkCircuit::evaluate):
  // every capture is an immutable value — node indices and a Technology
  // copy, never a reference into the builder — and all Simulators and
  // derived netlists are function-local, so concurrent invocations share
  // no mutable state. Keep the capture list explicit and by-value.
  const Technology tech_copy = tech;
  bc.evaluate = [ga, gb, voa, vob, vcmfb, tech_copy](const Netlist& sized) {
    env::MetricMap m;
    const auto freqs = sim::logspace(1e2, 1e10, 81);

    // --- closed loop: BW, noise, power, and the gate operating point ----
    // Its converged operating point seeds the open-loop and CMFB
    // testbenches below (warm_start_from): the derived netlists only
    // append sources/nodes, so the closed-loop solution is a near-exact
    // guess and Newton skips the gmin/source-stepping ladder. Derived
    // purely from `sized`, so evaluation stays a pure function of it.
    double vg_op = 0.0;
    sim::OpPoint cl_op;
    {
      sim::Simulator s(sized, tech_copy);
      cl_op = s.op();
      vg_op = cl_op.node(ga);
      m["power"] = s.supply_power();
      const auto ac = s.ac(freqs);
      const auto h_cl = detail::curve_diff(ac, voa, vob);
      m["bw"] = meas::bandwidth_3db(h_cl);
      const auto nr = s.noise({1e5}, voa, vob);
      m["noise"] = detail::input_referred_noise(nr, h_cl, 1e5);
    }

    // --- open loop: gain, GBW, differential phase margin -----------------
    {
      Netlist ol = sized;
      ol.find_vsource("VSA")->ac = 0.0;
      ol.find_vsource("VSB")->ac = 0.0;
      ol.add_vsource("VGA", ga, 0, vg_op, /*ac=*/+0.5);
      ol.add_vsource("VGB", gb, 0, vg_op, /*ac=*/-0.5);
      sim::Simulator s(ol, tech_copy);
      s.warm_start_from(cl_op);
      const auto ac = s.ac(freqs);
      auto a_curve = detail::curve_diff(ac, voa, vob);
      m["gain"] = meas::dc_gain(a_curve);
      m["gbw"] = m["gain"] * m["bw"];
      // Loop gain T = -A * beta with beta = CF / (CF + CS); the minus sign
      // converts the inverting path into return-ratio convention.
      const double cs_val = sized.capacitors()[0].c;
      const double cf_val = sized.capacitors()[2].c;
      const double beta = cf_val / (cf_val + cs_val + 2e-12);
      meas::AcCurve t_curve = a_curve;
      for (auto& hh : t_curve.h) hh *= -beta;
      m["dpm"] = meas::phase_margin_deg(t_curve);
    }

    // --- CMFB loop gain: common-mode phase margin ------------------------
    // Series (Middlebrook-style) voltage injection between the error-amp
    // output and the load gates: the DC loop stays closed (a hard break
    // leaves the high-impedance stage-1 nodes with two fighting current
    // sources and no solvable operating point), while the AC source
    // separates forward and return waves. T = -V(return)/V(forward).
    {
      Netlist cm = sized;
      cm.find_vsource("VSA")->ac = 0.0;
      cm.find_vsource("VSB")->ac = 0.0;
      const int drv = cm.node("vcmfb_drv");
      cm.set_mos_gate("mn_ld1", drv);
      cm.set_mos_gate("mn_ld2", drv);
      cm.add_vsource("VCMINJ", drv, vcmfb, 0.0, /*ac=*/1.0);
      sim::Simulator s(cm, tech_copy);
      s.warm_start_from(cl_op);
      const auto ac = s.ac(freqs);
      const auto v_ret = detail::curve_at(ac, vcmfb);
      const auto v_fwd = detail::curve_at(ac, drv);
      meas::AcCurve t_curve = v_ret;
      for (std::size_t i = 0; i < t_curve.h.size(); ++i) {
        t_curve.h[i] = -v_ret.h[i] / v_fwd.h[i];
      }
      m["cpm"] = meas::phase_margin_deg(t_curve);
    }
    return m;
  };

  // Human-expert reference (first-order): ~230 uA tail / ~190 uA output
  // stages, long (4L) PMOS mirrors for tail/load output resistance,
  // CS/CF = 2 for a gain-of-2 closed loop, 1 pF Miller caps, stage-1
  // diodes at ~1/4 of the load current.
  {
    circuit::DesignParams p;
    p.v = {
        {48e-6, 3 * l, 2},  // mp_tail
        {40e-6, 2 * l, 2},  // mp_in1
        {40e-6, 2 * l, 2},  // mp_in2
        {10e-6, 2 * l, 2},  // mn_ld1
        {10e-6, 2 * l, 2},  // mn_ld2
        {16e-6, 2 * l, 1},  // mn_dd1
        {16e-6, 2 * l, 1},  // mn_dd2
        {30e-6, l, 2},      // mn_cs1
        {30e-6, l, 2},      // mn_cs2
        {36e-6, 3 * l, 2},  // mp_ld1
        {36e-6, 3 * l, 2},  // mp_ld2
        {16e-6, 2 * l, 1},  // mcm1
        {16e-6, 2 * l, 1},  // mcm2
        {5e-6, 2 * l, 1},   // mcm_ld1
        {5e-6, 2 * l, 1},   // mcm_ld2
        {20e-6, 3 * l, 1},  // mcm_tail
        {20e-6, 3 * l, 1},  // mb_p
        {2e-12, 0, 0},      // cs_a
        {2e-12, 0, 0},      // cs_b
        {1e-12, 0, 0},      // cf_a
        {1e-12, 0, 0},      // cf_b
        {1e-12, 0, 0},      // cm_a
        {1e-12, 0, 0},      // cm_b
    };
    bc.human_expert = p;
  }
  return bc;
}

// make_benchmark()/benchmark_names() moved to src/api/registry.cpp: the
// cross-circuit dispatcher now lives with the CircuitRegistry, not inside
// one circuit's builder TU.

}  // namespace gcnrl::circuits
