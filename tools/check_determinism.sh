#!/usr/bin/env bash
# Determinism lint: mechanically enforces the invariant PRs 3-4
# established — results never depend on wall-clock time or on hash-table
# iteration order.
#
#   tools/check_determinism.sh            (scans src/, exits 1 on findings)
#
# Two checks over src/**.{cpp,hpp}:
#   1. Wall-clock sources (std::chrono::steady_clock / system_clock,
#      time()-family calls) are banned outside WALLCLOCK_ALLOW. The
#      allowlisted simulator files use steady_clock exclusively for the
#      perf-attribution counters (PerfStats) that never feed results.
#   2. std::unordered_map / std::unordered_set are banned outside
#      UNORDERED_ALLOW. Each allowlisted file has been reviewed: the
#      containers are used for keyed lookup only; anything ordered that
#      leaves the file (names, caches, report lines) is produced from
#      vectors/sorted copies, never from hash iteration order.
#
# Adding a file to an allowlist is a reviewable act: append it here WITH a
# justification comment in the same commit.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT" || exit 2

# steady_clock here is perf attribution only (sim::PerfStats timers).
WALLCLOCK_ALLOW="
src/sim/ac.cpp
src/sim/dc.cpp
src/sim/noise.cpp
src/sim/tran.cpp
"

# Keyed lookup only; iteration never ordered into results.
UNORDERED_ALLOW="
src/circuit/netlist.hpp
src/env/eval_service.hpp
src/env/eval_service.cpp
src/nn/adam.hpp
src/rl/run_loop.cpp
"

allowed() {
  # $1 = file, $2 = allowlist
  echo "$2" | grep -qx "$1"
}

STATUS=0

scan() {
  # $1 = egrep pattern, $2 = allowlist, $3 = human label
  local pattern="$1" allowlist="$2" label="$3"
  local hits file
  hits="$(grep -rnE "$pattern" src/ --include='*.cpp' --include='*.hpp' || true)"
  [ -z "$hits" ] && return
  while IFS= read -r line; do
    file="${line%%:*}"
    if ! allowed "$file" "$allowlist"; then
      echo "determinism: $label outside allowlist:"
      echo "  $line"
      STATUS=1
    fi
  done <<EOF
$hits
EOF
}

scan 'steady_clock|system_clock|[^A-Za-z0-9_:.>]time\(' \
     "$WALLCLOCK_ALLOW" "wall-clock source"
scan 'unordered_(map|set)' \
     "$UNORDERED_ALLOW" "unordered container"

if [ $STATUS -eq 0 ]; then
  echo "check_determinism: OK (no wall-clock or unordered-container use outside the allowlists)"
else
  echo "check_determinism: FAILED — see findings above." >&2
  echo "If the use is genuinely lookup-only / perf-only, extend the" >&2
  echo "allowlist in tools/check_determinism.sh with a justification." >&2
fi
exit $STATUS
