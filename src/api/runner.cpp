// Implementation of the task planner (run_tasks) and the per-factory
// building blocks it is made of (EnvFactory, LockstepGroup, run_method,
// sweep). One internal engine — run_group() — executes a set of planned
// tasks on a shared EvalService; sweep() feeds it a single task and
// run_tasks() a whole heterogeneous stage, so the two paths are
// structurally identical and per-task results cannot diverge between
// them.
#include "api/task.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "api/checkpoints.hpp"
#include "circuit/tech.hpp"
#include "common/table.hpp"
#include "la/stats.hpp"

namespace gcnrl::api {

EnvFactory::EnvFactory(std::string circuit_name,
                       const circuit::Technology& tech, env::IndexMode mode,
                       int calib_samples, Rng& rng,
                       std::shared_ptr<env::EvalService> svc)
    : name_(std::move(circuit_name)),
      tech_(tech),
      mode_(mode),
      svc_(std::move(svc)) {
  env::SizingEnv probe(build_circuit(name_, tech_), mode_, svc_);
  probe.calibrate(calib_samples, rng);
  fom_ = probe.bench().fom;
}

std::unique_ptr<env::SizingEnv> EnvFactory::make() const { return make(svc_); }

std::unique_ptr<env::SizingEnv> EnvFactory::make(
    std::shared_ptr<env::EvalService> svc) const {
  auto bc = build_circuit(name_, tech_);
  bc.fom = fom_;
  return std::make_unique<env::SizingEnv>(std::move(bc), mode_,
                                          std::move(svc));
}

LockstepGroup::LockstepGroup(const EnvFactory& factory,
                             std::vector<LockstepSpec> specs) {
  // All pairs share one service so run_ddpg_lockstep batches them as one
  // group (it would transparently split them otherwise).
  std::shared_ptr<env::EvalService> svc = factory.service();
  if (!svc) {
    svc = std::make_shared<env::EvalService>(env::eval_config_from_env());
  }
  for (LockstepSpec& spec : specs) {
    envs_.push_back(factory.make(svc));
    if (spec.setup) spec.setup(*envs_.back());
    agents_.push_back(std::make_unique<rl::DdpgAgent>(
        envs_.back()->state(), envs_.back()->adjacency(),
        envs_.back()->kinds(), spec.cfg, spec.rng));
    if (spec.copy_from != nullptr) {
      agents_.back()->copy_weights_from(*spec.copy_from);
    }
  }
}

std::vector<rl::RunResult> LockstepGroup::run(int steps) {
  std::vector<env::SizingEnv*> env_ptrs;
  std::vector<rl::DdpgAgent*> agent_ptrs;
  env_ptrs.reserve(envs_.size());
  agent_ptrs.reserve(agents_.size());
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    env_ptrs.push_back(envs_[i].get());
    agent_ptrs.push_back(agents_[i].get());
  }
  return rl::run_ddpg_lockstep(env_ptrs, agent_ptrs, steps);
}

std::uint64_t seed_of(int s) {
  return 1000 + 7919 * static_cast<std::uint64_t>(s);
}

namespace {

// An Anchor run: the human-expert sizing through the identical refine ->
// simulate -> FoM pipeline, wrapped as a one-evaluation RunResult. sims is
// charged as 1 unconditionally (the run's isolated simulated cost), never
// from the live cache state, so anchor rows are warmth-independent like
// every other budget number.
rl::RunResult run_anchor(env::SizingEnv& env) {
  const env::EvalResult r = env.evaluate_params(env.bench().human_expert);
  rl::RunResult out;
  out.best_fom = r.fom;
  out.best_trace = {r.fom};
  out.best_metrics = r.metrics;
  out.evals = 1;
  out.sims = 1;
  return out;
}

// The per-seed RNG seed of a task: the custom ladder when the spec sets
// one (the migrated transfer harnesses' historical seeds), else the
// canonical seed_of(s).
std::uint64_t task_seed(const TaskSpec& t, int s) {
  if (t.seed_base) {
    return *t.seed_base + t.seed_stride * static_cast<std::uint64_t>(s);
  }
  return seed_of(s);
}

// One planned task: spec + resolved method/factory/budgets + where its
// per-seed results go.
struct TaskPlan {
  const TaskSpec* spec = nullptr;
  const MethodInfo* mi = nullptr;
  const EnvFactory* factory = nullptr;
  std::vector<long> budgets;  // per-seed sim caps; empty = uncapped
  // Warm-start hook (DDPG kind): runs on each freshly built agent before
  // the group starts — copies a pretrain source's weights or loads a
  // checkpoint. Null for from-scratch tasks.
  std::function<void(int, rl::DdpgAgent&)> warm;
  // When non-null, the task's trained agents are moved here after the run
  // (pretrain sources for later levels, checkpoint saves).
  std::vector<std::unique_ptr<rl::DdpgAgent>>* keep = nullptr;
  std::vector<rl::RunResult>* out = nullptr;
};

// Executes a stage of planned tasks on one shared service. All DDPG-kind
// (task, seed) pairs join one rl::run_ddpg_lockstep group and all ask/tell
// pairs one rl::run_optimizer_lockstep group (both drivers guarantee
// per-pair results independent of the grouping); Random and Anchor tasks
// run their own loops on the same service. Per-task result vectors are
// bit-identical to running each task alone at any GCNRL_EVAL_THREADS.
void run_group(std::vector<TaskPlan>& plans,
               const std::shared_ptr<env::EvalService>& svc) {
  // Owned envs/agents/optimizers for the merged lockstep groups. Slot
  // bookkeeping maps merged-result indices back to (plan, seed).
  std::vector<std::unique_ptr<env::SizingEnv>> rl_envs;
  std::vector<std::unique_ptr<rl::DdpgAgent>> rl_agents;
  std::vector<int> rl_steps;
  std::vector<std::pair<std::size_t, int>> rl_slots;

  std::vector<std::unique_ptr<env::SizingEnv>> bb_envs;
  std::vector<std::unique_ptr<opt::Optimizer>> bb_opts;
  std::vector<rl::OptimizerPair> bb_pairs;
  std::vector<std::pair<std::size_t, int>> bb_slots;

  for (std::size_t p = 0; p < plans.size(); ++p) {
    TaskPlan& plan = plans[p];
    const TaskSpec& t = *plan.spec;
    plan.out->resize(static_cast<std::size_t>(t.seeds));
    if (plan.keep != nullptr) {
      plan.keep->resize(static_cast<std::size_t>(t.seeds));
    }
    switch (plan.mi->kind) {
      case MethodKind::Ddpg:
        for (int s = 0; s < t.seeds; ++s) {
          rl_envs.push_back(plan.factory->make(svc));
          rl::DdpgConfig cfg = t.ddpg;
          if (plan.mi->configure) plan.mi->configure(cfg);
          cfg.warmup = t.warmup;
          rl_agents.push_back(std::make_unique<rl::DdpgAgent>(
              rl_envs.back()->state(), rl_envs.back()->adjacency(),
              rl_envs.back()->kinds(), cfg, Rng(task_seed(t, s))));
          if (plan.warm) plan.warm(s, *rl_agents.back());
          rl_steps.push_back(t.steps);
          rl_slots.emplace_back(p, s);
        }
        break;
      case MethodKind::AskTell:
        for (int s = 0; s < t.seeds; ++s) {
          bb_envs.push_back(plan.factory->make(svc));
          bb_opts.push_back(plan.mi->make_optimizer(
              bb_envs.back()->flat_dim(), Rng(task_seed(t, s))));
          const long max_sims =
              plan.budgets.empty() ? -1
                                   : plan.budgets[static_cast<std::size_t>(s)];
          bb_pairs.push_back(rl::OptimizerPair{bb_envs.back().get(),
                                               bb_opts.back().get(), t.steps,
                                               max_sims > 0 ? max_sims : -1});
          bb_slots.emplace_back(p, s);
        }
        break;
      case MethodKind::Random:
        for (int s = 0; s < t.seeds; ++s) {
          auto env = plan.factory->make(svc);
          (*plan.out)[static_cast<std::size_t>(s)] =
              rl::run_random(*env, t.steps, Rng(task_seed(t, s)));
        }
        break;
      case MethodKind::Anchor:
        for (int s = 0; s < t.seeds; ++s) {
          auto env = plan.factory->make(svc);
          (*plan.out)[static_cast<std::size_t>(s)] = run_anchor(*env);
        }
        break;
    }
  }

  if (!rl_envs.empty()) {
    std::vector<env::SizingEnv*> env_ptrs;
    std::vector<rl::DdpgAgent*> agent_ptrs;
    env_ptrs.reserve(rl_envs.size());
    agent_ptrs.reserve(rl_agents.size());
    for (std::size_t i = 0; i < rl_envs.size(); ++i) {
      env_ptrs.push_back(rl_envs[i].get());
      agent_ptrs.push_back(rl_agents[i].get());
    }
    std::vector<rl::RunResult> merged =
        rl::run_ddpg_lockstep(env_ptrs, agent_ptrs, rl_steps);
    for (std::size_t i = 0; i < merged.size(); ++i) {
      const auto [p, s] = rl_slots[i];
      (*plans[p].out)[static_cast<std::size_t>(s)] = std::move(merged[i]);
      if (plans[p].keep != nullptr) {
        // Agents are self-contained (the ctor copies state/adjacency), so
        // retaining them outlives the group's envs safely.
        (*plans[p].keep)[static_cast<std::size_t>(s)] =
            std::move(rl_agents[i]);
      }
    }
  }
  if (!bb_pairs.empty()) {
    std::vector<rl::RunResult> merged = rl::run_optimizer_lockstep(bb_pairs);
    for (std::size_t i = 0; i < merged.size(); ++i) {
      const auto [p, s] = bb_slots[i];
      (*plans[p].out)[static_cast<std::size_t>(s)] = std::move(merged[i]);
    }
  }
}

}  // namespace

std::vector<TaskResult> run_tasks(const std::vector<TaskSpec>& tasks,
                                  const RunOptions& opts) {
  // --- validate + normalize ----------------------------------------------
  std::vector<TaskSpec> specs = tasks;
  std::vector<const MethodInfo*> infos;
  infos.reserve(specs.size());
  for (TaskSpec& t : specs) {
    const MethodInfo& mi = method_info(t.method);  // throws for unknown
    infos.push_back(&mi);
    if (!t.circuit_file.empty()) {
      // Idempotent for identical file content, so many tasks (or repeat
      // runs in one process) may name the same file.
      const std::string declared = register_circuit_file(t.circuit_file);
      if (!t.circuit.empty() && t.circuit != declared) {
        throw std::invalid_argument(
            "run_tasks: task circuit \"" + t.circuit + "\" does not match "
            "the name \"" + declared + "\" declared by \"" +
            t.circuit_file + "\"");
      }
      t.circuit = declared;
    }
    require_circuit(t.circuit);  // throws listing registered names
    if (t.steps <= 0) {
      throw std::invalid_argument("run_tasks: task \"" + t.method + "/" +
                                  t.circuit + "\" needs steps > 0");
    }
    if (t.seeds <= 0) {
      throw std::invalid_argument("run_tasks: task \"" + t.method + "/" +
                                  t.circuit + "\" needs seeds > 0");
    }
    // Fail loudly rather than silently running uncapped: only ask/tell
    // methods consume a simulated-cost cap.
    if (t.sim_budget > 0 && mi.kind != MethodKind::AskTell) {
      throw std::invalid_argument(
          "run_tasks: task \"" + t.method + "/" + t.circuit +
          "\": sim_budget applies only to ask/tell methods");
    }
    if (t.warmup < 0) t.warmup = 0;
    if (t.warmup >= t.steps) t.warmup = t.steps / 3;
    if (!t.pretrain_from.empty() && !t.load_checkpoint.empty()) {
      throw std::invalid_argument(
          "run_tasks: task \"" + t.method + "/" + t.circuit +
          "\": pretrain_from and load_checkpoint are mutually exclusive "
          "warm-start sources; choose one");
    }
    if ((!t.pretrain_from.empty() || !t.load_checkpoint.empty() ||
         !t.save_checkpoint.empty()) &&
        mi.kind != MethodKind::Ddpg) {
      throw std::invalid_argument(
          "run_tasks: task \"" + t.method + "/" + t.circuit +
          "\": pretrain_from/load_checkpoint/save_checkpoint apply only to "
          "DDPG-kind methods (they move actor/critic weights)");
    }
    if (t.seed_stride != 0 && !t.seed_base) {
      throw std::invalid_argument("run_tasks: task \"" + t.method + "/" +
                                  t.circuit +
                                  "\": seed_stride needs seed_base");
    }
    if (t.label.empty()) {
      t.label = t.method + "/" + t.circuit + "@" + t.node;
      if (!t.pretrain_from.empty()) {
        t.label += "<-" + t.pretrain_from;
      } else if (!t.load_checkpoint.empty()) {
        t.label += "<-ckpt:" + t.load_checkpoint;
      }
    }
  }
  // Duplicate save names would make load_checkpoint resolution (and the
  // final store content) order-dependent; reject them outright.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      if (!specs[i].save_checkpoint.empty() &&
          specs[i].save_checkpoint == specs[j].save_checkpoint) {
        throw std::invalid_argument(
            "run_tasks: tasks \"" + specs[i].label + "\" and \"" +
            specs[j].label + "\" both save checkpoint \"" +
            specs[i].save_checkpoint + "\"");
      }
    }
  }

  std::shared_ptr<env::EvalService> svc = opts.service;
  if (!svc) {
    svc = std::make_shared<env::EvalService>(env::eval_config_from_env());
  }
  CheckpointStore& store = opts.checkpoints != nullptr
                               ? *opts.checkpoints
                               : default_checkpoint_store();
  const auto mode_of = [&](const TaskSpec& t) {
    return t.index_mode.value_or(opts.mode);
  };

  // --- resolve cross-task dependencies ------------------------------------
  // pre_src: pretrain_from label -> source task index.
  std::vector<int> pre_src(specs.size(), -1);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TaskSpec& t = specs[i];
    if (t.pretrain_from.empty()) continue;
    int found = -1;
    for (std::size_t j = 0; j < specs.size(); ++j) {
      if (j == i || specs[j].label != t.pretrain_from) continue;
      if (found >= 0) {
        throw std::invalid_argument(
            "run_tasks: task \"" + t.label + "\": pretrain_from \"" +
            t.pretrain_from + "\" matches more than one task label");
      }
      found = static_cast<int>(j);
    }
    if (found < 0) {
      std::string labels;
      for (const TaskSpec& s : specs) {
        labels += labels.empty() ? s.label : ", " + s.label;
      }
      throw std::invalid_argument(
          "run_tasks: task \"" + t.label + "\": pretrain_from \"" +
          t.pretrain_from + "\" names no task in this list; labels: " +
          labels);
    }
    if (infos[static_cast<std::size_t>(found)]->kind != MethodKind::Ddpg) {
      throw std::invalid_argument(
          "run_tasks: task \"" + t.label + "\": pretrain source \"" +
          specs[static_cast<std::size_t>(found)].label +
          "\" is not a DDPG-kind task");
    }
    const int src_seeds = specs[static_cast<std::size_t>(found)].seeds;
    if (src_seeds != 1 && src_seeds != t.seeds) {
      throw std::invalid_argument(
          "run_tasks: task \"" + t.label + "\" has " +
          std::to_string(t.seeds) + " seeds but pretrain source \"" +
          specs[static_cast<std::size_t>(found)].label + "\" has " +
          std::to_string(src_seeds) +
          " (a source needs 1 seed or a matching count)");
    }
    pre_src[i] = found;
  }
  // ckpt_src: load_checkpoint name -> in-list saver index (at most one per
  // the duplicate check above); -1 = the artifact must already exist in
  // the store when the task starts.
  std::vector<int> ckpt_src(specs.size(), -1);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].load_checkpoint.empty()) continue;
    for (std::size_t j = 0; j < specs.size(); ++j) {
      if (j != i && specs[j].save_checkpoint == specs[i].load_checkpoint) {
        ckpt_src[i] = static_cast<int>(j);
        break;
      }
    }
  }
  // budget_src: the budget-chain rule (BO/MACE -> ES). Absent source =
  // uncapped (mirrors sweep_chained with an empty budget vector).
  const auto chained = [&](std::size_t i) {
    return !infos[i]->budget_from.empty() && specs[i].sim_budget == 0;
  };
  std::vector<int> budget_src(specs.size(), -1);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!chained(i)) continue;
    const TaskSpec& t = specs[i];
    for (std::size_t j = 0; j < specs.size(); ++j) {
      if (j == i || specs[j].method != infos[i]->budget_from) continue;
      if (specs[j].circuit != t.circuit || specs[j].node != t.node ||
          specs[j].steps != t.steps || specs[j].seeds != t.seeds) {
        continue;
      }
      if (chained(j)) {
        throw std::invalid_argument(
            "run_tasks: budget source \"" + specs[j].label +
            "\" is itself budget-chained; only one chain level is "
            "supported");
      }
      budget_src[i] = static_cast<int>(j);
      break;
    }
  }

  // --- dependency levels: sources run in earlier levels than consumers;
  // everything within a level merges into one lockstep group ---------------
  std::vector<int> level(specs.size(), -1);
  std::vector<char> visiting(specs.size(), 0);
  const std::function<int(std::size_t)> level_of = [&](std::size_t i) -> int {
    if (level[i] >= 0) return level[i];
    if (visiting[i] != 0) {
      throw std::invalid_argument(
          "run_tasks: dependency cycle involving task \"" + specs[i].label +
          "\"");
    }
    visiting[i] = 1;
    int l = 0;
    for (const int d : {pre_src[i], ckpt_src[i], budget_src[i]}) {
      if (d >= 0) {
        l = std::max(l, level_of(static_cast<std::size_t>(d)) + 1);
      }
    }
    visiting[i] = 0;
    return level[i] = l;
  };
  int max_level = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    max_level = std::max(max_level, level_of(i));
  }

  // --- calibrate: one factory per distinct (circuit, node, mode,
  // calib_group), in first-appearance order, from one shared RNG -----------
  Rng calib_rng(opts.calib_seed);
  std::vector<std::pair<std::string, std::unique_ptr<EnvFactory>>> factories;
  const auto factory_key = [&](const TaskSpec& t) {
    return t.circuit + "\n" + t.node + "\n" +
           (mode_of(t) == env::IndexMode::OneHot ? "one_hot" : "scalar") +
           "\n" + t.calib_group;
  };
  const auto factory_of = [&](const TaskSpec& t) -> const EnvFactory* {
    const std::string key = factory_key(t);
    for (const auto& [k, f] : factories) {
      if (k == key) return f.get();
    }
    return nullptr;
  };
  for (const TaskSpec& t : specs) {
    if (factory_of(t) != nullptr) continue;
    factories.emplace_back(
        factory_key(t),
        std::make_unique<EnvFactory>(t.circuit,
                                     circuit::make_technology(t.node),
                                     mode_of(t), opts.calib_samples,
                                     calib_rng, svc));
  }

  // --- execute level by level ---------------------------------------------
  std::vector<std::vector<rl::RunResult>> runs(specs.size());
  // Trained agents retained across levels (pretrain sources + checkpoint
  // saves); agents are self-contained, so no env outlives its group.
  std::vector<std::vector<std::unique_ptr<rl::DdpgAgent>>> kept(specs.size());
  std::vector<char> keep_needed(specs.size(), 0);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (pre_src[i] >= 0) keep_needed[static_cast<std::size_t>(pre_src[i])] = 1;
    if (!specs[i].save_checkpoint.empty()) keep_needed[i] = 1;
  }
  for (int lev = 0; lev <= max_level; ++lev) {
    std::vector<TaskPlan> plans;
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (level[i] != lev) continue;
      members.push_back(i);
      const TaskSpec& t = specs[i];
      TaskPlan plan;
      plan.spec = &t;
      plan.mi = infos[i];
      plan.factory = factory_of(t);
      plan.out = &runs[i];
      if (keep_needed[i] != 0) plan.keep = &kept[i];
      if (t.sim_budget > 0) {
        plan.budgets.assign(static_cast<std::size_t>(t.seeds), t.sim_budget);
      } else if (budget_src[i] >= 0) {
        const auto& src = runs[static_cast<std::size_t>(budget_src[i])];
        plan.budgets.reserve(src.size());
        for (const rl::RunResult& r : src) plan.budgets.push_back(r.sims);
      }
      if (pre_src[i] >= 0) {
        const auto& src_agents = kept[static_cast<std::size_t>(pre_src[i])];
        const int src_seeds =
            specs[static_cast<std::size_t>(pre_src[i])].seeds;
        plan.warm = [&src_agents, src_seeds](int s, rl::DdpgAgent& agent) {
          agent.copy_weights_from(
              *src_agents[static_cast<std::size_t>(src_seeds == 1 ? 0 : s)]);
        };
      } else if (!t.load_checkpoint.empty()) {
        const CheckpointStamp expect{t.circuit, t.node, mode_of(t),
                                     circuit_source_tag(t.circuit)};
        const std::string name = t.load_checkpoint;
        plan.warm = [&store, expect, name](int s, rl::DdpgAgent& agent) {
          const std::string per_seed = name + "#" + std::to_string(s);
          store.load(store.contains(per_seed) ? per_seed : name,
                     agent.parameters(), expect);
        };
      }
      plans.push_back(std::move(plan));
    }
    run_group(plans, svc);
    for (const std::size_t i : members) {
      const TaskSpec& t = specs[i];
      if (t.save_checkpoint.empty()) continue;
      const CheckpointStamp stamp{t.circuit, t.node, mode_of(t),
                                  circuit_source_tag(t.circuit)};
      for (int s = 0; s < t.seeds; ++s) {
        const std::string name =
            t.seeds == 1 ? t.save_checkpoint
                         : t.save_checkpoint + "#" + std::to_string(s);
        store.put(name,
                  kept[i][static_cast<std::size_t>(s)]->parameters(), stamp);
      }
    }
  }

  // --- assemble -----------------------------------------------------------
  std::vector<TaskResult> out;
  out.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    TaskResult tr;
    tr.spec = specs[i];
    tr.runs = std::move(runs[i]);
    for (const rl::RunResult& r : tr.runs) {
      tr.best.push_back(r.best_fom);
      tr.sims.push_back(r.sims);
    }
    tr.mean = la::mean(tr.best);
    tr.stddev = la::stddev(tr.best);
    out.push_back(std::move(tr));
  }
  return out;
}

rl::RunResult run_method(const std::string& method, const EnvFactory& factory,
                         int steps, int warmup, std::uint64_t seed,
                         long sim_budget, const rl::DdpgConfig& base_cfg,
                         std::shared_ptr<env::EvalService> svc) {
  const MethodInfo& mi = method_info(method);
  auto env = svc ? factory.make(std::move(svc)) : factory.make();
  Rng rng(seed);
  switch (mi.kind) {
    case MethodKind::Anchor:
      return run_anchor(*env);
    case MethodKind::Random:
      return rl::run_random(*env, steps, rng);
    case MethodKind::AskTell: {
      const auto opt = mi.make_optimizer(env->flat_dim(), std::move(rng));
      return rl::run_optimizer(*env, *opt, steps,
                               sim_budget > 0 ? sim_budget : -1);
    }
    case MethodKind::Ddpg: {
      rl::DdpgConfig cfg = base_cfg;
      if (mi.configure) mi.configure(cfg);
      cfg.warmup = warmup;
      rl::DdpgAgent agent(env->state(), env->adjacency(), env->kinds(), cfg,
                          rng);
      return rl::run_ddpg(*env, agent, steps);
    }
  }
  throw std::logic_error("run_method: unhandled method kind");
}

SweepResult sweep(const std::string& method, const EnvFactory& factory,
                  int steps, int warmup, int seeds,
                  std::span<const long> sim_budgets,
                  const rl::DdpgConfig& base_cfg) {
  if (!sim_budgets.empty() &&
      sim_budgets.size() != static_cast<std::size_t>(seeds)) {
    throw std::invalid_argument("sweep: need one sim budget per seed");
  }
  // All S seeds share one service — its thread pool and its result cache.
  // FoM values never depend on cache state (raw metrics are cached, the
  // FoM is recomputed per env) and budgets count run-local simulated cost
  // (RunResult::sims, warmth-independent by construction), so every
  // per-seed trace is bit-identical to a fully isolated run of the same
  // seed, whatever ran on the service before.
  std::shared_ptr<env::EvalService> svc = factory.service();
  if (!svc) {
    svc = std::make_shared<env::EvalService>(env::eval_config_from_env());
  }
  TaskSpec spec;
  spec.circuit = factory.name();
  spec.method = method;
  spec.steps = steps;
  spec.warmup = warmup;
  spec.seeds = seeds;
  spec.ddpg = base_cfg;
  std::vector<rl::RunResult> results;
  std::vector<TaskPlan> plans;
  TaskPlan plan;
  plan.spec = &spec;
  plan.mi = &method_info(method);
  plan.factory = &factory;
  plan.budgets.assign(sim_budgets.begin(), sim_budgets.end());
  plan.out = &results;
  plans.push_back(std::move(plan));
  run_group(plans, svc);

  SweepResult out;
  for (rl::RunResult& r : results) {
    out.best.push_back(r.best_fom);
    out.sims.push_back(r.sims);
    out.traces.push_back(std::move(r.best_trace));
  }
  out.mean = la::mean(out.best);
  out.stddev = la::stddev(out.best);
  return out;
}

SweepResult sweep_chained(const std::string& method, const EnvFactory& factory,
                          int steps, int warmup, int seeds,
                          std::vector<long>& es_sims,
                          const rl::DdpgConfig& base_cfg) {
  const MethodInfo& mi = method_info(method);
  const bool budgeted = !mi.budget_from.empty();
  SweepResult sw = sweep(
      method, factory, steps, warmup, seeds,
      budgeted ? std::span<const long>(es_sims) : std::span<const long>{},
      base_cfg);
  if (method == "ES") es_sims = sw.sims;
  return sw;
}

std::string eval_banner() {
  const env::EvalServiceConfig cfg = env::eval_config_from_env();
  return "eval engine: threads=" + std::to_string(cfg.threads) +
         (cfg.threads > 1 ? " (thread pool)" : " (serial)") +
         ", cache=" + std::to_string(cfg.cache_capacity);
}

std::string service_usage(const env::EvalService& svc) {
  return "service totals: " + std::to_string(svc.requested()) + " evals, " +
         std::to_string(svc.sims()) + " sims, " +
         std::to_string(svc.cache_hits()) + " cache hits, " +
         std::to_string(svc.threads()) + " threads";
}

std::string pm(double mean, double stddev, int precision) {
  return TextTable::num(mean, precision) + " +/- " +
         TextTable::num(stddev, 2);
}

std::string trace_fingerprint(std::span<const double> trace) {
  std::uint64_t h = 1469598103934665603ULL;
  char buf[32];
  for (const double v : trace) {
    const int len = std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int i = 0; i < len; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ULL;
    }
  }
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace gcnrl::api
