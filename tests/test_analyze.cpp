// Tests for the .gcir semantic analyzer (circuit/analyze.hpp): the
// seeded-fault corpus under tests/lint_corpus/ (golden check id +
// line:column per file), unit tests for the graph walks on hand-built
// minimal descriptions, the registration gate, and the shipped-circuit
// lint-clean guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "circuit/analyze.hpp"
#include "circuit/gcir.hpp"
#include "circuit/tech.hpp"

namespace circuit = gcnrl::circuit;
namespace api = gcnrl::api;

#ifndef GCNRL_SOURCE_DIR
#define GCNRL_SOURCE_DIR "."
#endif

namespace {

circuit::Technology tech180() { return circuit::make_technology("180nm"); }

bool has_check(const std::vector<circuit::Diagnostic>& diags,
               const std::string& id) {
  for (const circuit::Diagnostic& d : diags) {
    if (d.check == id) return true;
  }
  return false;
}

std::vector<circuit::Diagnostic> analyze_text(const std::string& text) {
  return circuit::analyze_circuit(circuit::parse_gcir(text), tech180());
}

// --- corpus golden ---------------------------------------------------------

// One "#expect ..." line from a corpus file. severity "parse" means the
// file must be rejected by the parser itself at line:col.
struct Expectation {
  std::string severity;  // "error", "warning", "parse"
  std::string check;     // empty for "parse"
  int line = 0;
  int col = 0;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot read " + path);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) {
      ++i;
    }
    const std::size_t start = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t' && s[i] != '\r') {
      ++i;
    }
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<Expectation> parse_expectations(const std::string& text) {
  std::vector<Expectation> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (line.rfind("#expect ", 0) == 0) {
      const std::vector<std::string> toks = split_ws(line.substr(8));
      Expectation e;
      e.severity = toks.at(0);
      const std::string& span = e.severity == "parse" ? toks.at(1)
                                                      : toks.at(2);
      if (e.severity != "parse") e.check = toks.at(1);
      const std::size_t colon = span.find(':');
      e.line = std::stoi(span.substr(0, colon));
      e.col = std::stoi(span.substr(colon + 1));
      out.push_back(std::move(e));
    }
    if (eol == text.size()) break;
    pos = eol + 1;
  }
  return out;
}

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const std::string dir =
      std::string(GCNRL_SOURCE_DIR) + "/tests/lint_corpus";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".gcir") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string span_key(const std::string& severity, const std::string& check,
                     int line, int col) {
  return severity + " " + (check.empty() ? "-" : check) + " " +
         std::to_string(line) + ":" + std::to_string(col);
}

}  // namespace

// Every corpus file pins its diagnostics exactly: same check ids at the
// same line:column, nothing extra, nothing missing. Files without
// "#expect" lines must analyze clean.
TEST(LintCorpus, GoldenDiagnostics) {
  const std::vector<std::string> files = corpus_files();
  ASSERT_GE(files.size(), 20u);
  for (const std::string& file : files) {
    SCOPED_TRACE(file);
    const std::string text = read_file(file);
    const std::vector<Expectation> expects = parse_expectations(text);

    const bool parse_fault =
        !expects.empty() && expects.front().severity == "parse";
    if (parse_fault) {
      try {
        (void)circuit::parse_gcir(text, file);
        FAIL() << "expected a parse error";
      } catch (const std::runtime_error& e) {
        const std::string pos = std::to_string(expects.front().line) + ":" +
                                std::to_string(expects.front().col) + ":";
        EXPECT_NE(std::string(e.what()).find(pos), std::string::npos)
            << e.what();
      }
      continue;
    }

    const std::vector<circuit::Diagnostic> diags =
        circuit::analyze_circuit(circuit::parse_gcir(text, file), tech180());
    std::vector<std::string> got, want;
    for (const circuit::Diagnostic& d : diags) {
      got.push_back(span_key(
          d.severity == circuit::Severity::Error ? "error" : "warning",
          d.check, d.line, d.col));
    }
    for (const Expectation& e : expects) {
      want.push_back(span_key(e.severity, e.check, e.line, e.col));
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << circuit::format_diagnostics(diags);
  }
}

// Every check in the catalog has a witness: either a corpus #expect line
// or (for faults the parser already rejects / only hand-built
// descriptions can express) a unit test below. This test guards the
// corpus half so a new check cannot land without one.
TEST(LintCorpus, EveryExpressibleCheckHasAWitness) {
  std::vector<std::string> witnessed;
  for (const std::string& file : corpus_files()) {
    for (const Expectation& e : parse_expectations(read_file(file))) {
      if (!e.check.empty()) witnessed.push_back(e.check);
    }
  }
  // Checks only reachable from hand-built descriptions (the parser
  // resolves these names at parse time) — covered by AnalyzeUnit below.
  const std::vector<std::string> unit_only = {
      "connectivity.unknown-net", "connectivity.bad-terminals",
      "sizing.unknown-comp",      "plan.unknown-ref",
      "plan.extract-requires",
  };
  for (const circuit::CheckInfo& c : circuit::analyzer_checks()) {
    const bool in_corpus =
        std::find(witnessed.begin(), witnessed.end(), c.id) !=
        witnessed.end();
    const bool in_unit = std::find(unit_only.begin(), unit_only.end(),
                                   c.id) != unit_only.end();
    EXPECT_TRUE(in_corpus || in_unit) << "check without witness: " << c.id;
  }
}

// All shipped circuits hold the same bar user submissions do: zero
// diagnostics (errors or warnings) after pragmas.
TEST(LintCorpus, ShippedCircuitsLintClean) {
  std::vector<std::string> files;
  const std::string root = GCNRL_SOURCE_DIR;
  for (const auto& entry :
       std::filesystem::directory_iterator(root + "/specs/circuits")) {
    if (entry.path().extension() == ".gcir") {
      files.push_back(entry.path().string());
    }
  }
  files.push_back(root + "/examples/five_t_ota.gcir");
  ASSERT_GE(files.size(), 3u);
  for (const std::string& file : files) {
    SCOPED_TRACE(file);
    const std::vector<circuit::Diagnostic> diags = circuit::analyze_circuit(
        circuit::load_gcir(file), tech180());
    EXPECT_TRUE(diags.empty()) << circuit::format_diagnostics(diags);
  }
}

// register_circuit_file must reject every corpus error file with the
// analyzer's diagnostic (check id visible in the exception), never an MNA
// failure — and must let warning-only files through.
TEST(LintCorpus, RegistrationRejectsErrorFiles) {
  for (const std::string& file : corpus_files()) {
    SCOPED_TRACE(file);
    const std::vector<Expectation> expects =
        parse_expectations(read_file(file));
    const bool parse_fault =
        !expects.empty() && expects.front().severity == "parse";
    std::string first_error;
    for (const Expectation& e : expects) {
      if (e.severity == "error" && first_error.empty()) {
        first_error = e.check;
      }
    }
    if (parse_fault) {
      EXPECT_THROW((void)api::register_circuit_file(file),
                   std::runtime_error);
    } else if (!first_error.empty()) {
      try {
        (void)api::register_circuit_file(file);
        FAIL() << "expected rejection";
      } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("[" + first_error + "]"),
                  std::string::npos)
            << e.what();
      }
    } else {
      // Warning-only (or clean): registers fine, warnings on stderr.
      EXPECT_NO_THROW((void)api::register_circuit_file(file));
    }
  }
}

// --- hand-built descriptions: graph-walk unit tests ------------------------

namespace {

// Smallest analyzable core: one net "a" tied to ground through a vsource
// and an NMOS diode, one produced+consumed metric over an ac bench.
std::string base_gcir() {
  return "circuit hand\n"
         "net a\n"
         "vsource VIN a 0 dc=1 ac=1\n"
         "nmos M1 a a 0 0 w=1u l=lmin m=1\n"
         "metric g unit=x weight=1\n"
         "bench b\n"
         "ac b 1k 1M 3\n"
         "extract g dc_gain bench=b probe=a\n";
}

circuit::CircuitDescription base_desc() {
  return circuit::parse_gcir(base_gcir(), "<hand>");
}

}  // namespace

TEST(AnalyzeUnit, CleanBaseHasNoDiagnostics) {
  const std::vector<circuit::Diagnostic> diags =
      circuit::analyze_circuit(base_desc(), tech180());
  EXPECT_TRUE(diags.empty()) << circuit::format_diagnostics(diags);
  EXPECT_FALSE(circuit::has_errors(diags));
}

TEST(AnalyzeUnit, MosChannelConductsGateDoesNot) {
  // d/s tie a net to ground at DC; a gate-only net does not.
  auto diags = analyze_text(
      "circuit hand\n"
      "net a gate\n"
      "vsource VIN a 0 dc=1 ac=1\n"
      "nmos M1 a gate 0 0 w=1u l=lmin m=1\n"
      "capacitor C1 gate 0 c=1p\n"
      "metric g unit=x weight=1\n"
      "bench b\n"
      "ac b 1k 1M 3\n"
      "extract g dc_gain bench=b probe=a\n");
  EXPECT_TRUE(has_check(diags, "connectivity.no-dc-path"));
  // Grounding the gate through a resistor clears it.
  diags = analyze_text(
      "circuit hand\n"
      "net a gate\n"
      "vsource VIN a 0 dc=1 ac=1\n"
      "nmos M1 a gate 0 0 w=1u l=lmin m=1\n"
      "resistor RB gate 0 r=1M\n"
      "metric g unit=x weight=1\n"
      "bench b\n"
      "ac b 1k 1M 3\n"
      "extract g dc_gain bench=b probe=a\n");
  EXPECT_TRUE(diags.empty()) << circuit::format_diagnostics(diags);
}

TEST(AnalyzeUnit, ShortedVsourceIsALoop) {
  const auto diags = analyze_text(
      "circuit hand\n"
      "net a\n"
      "vsource VIN a 0 dc=1 ac=1\n"
      "vsource VX a a dc=0\n"
      "nmos M1 a a 0 0 w=1u l=lmin m=1\n"
      "metric g unit=x weight=1\n"
      "bench b\n"
      "ac b 1k 1M 3\n"
      "extract g dc_gain bench=b probe=a\n");
  EXPECT_TRUE(has_check(diags, "singular.vsource-loop"));
  EXPECT_TRUE(circuit::has_errors(diags));
}

TEST(AnalyzeUnit, VsourceChainThroughResistorIsFine) {
  // V-R-V between two grounded nets is solvable, not a V-loop.
  const auto diags = analyze_text(
      "circuit hand\n"
      "net a c\n"
      "vsource VIN a 0 dc=1 ac=1\n"
      "vsource V2 c 0 dc=2\n"
      "resistor R1 a c r=1k\n"
      "nmos M1 a a 0 0 w=1u l=lmin m=1\n"
      "metric g unit=x weight=1\n"
      "bench b\n"
      "ac b 1k 1M 3\n"
      "extract g dc_gain bench=b probe=a\n");
  EXPECT_FALSE(has_check(diags, "singular.vsource-loop"));
}

TEST(AnalyzeUnit, IsourceWithResistiveReturnIsFine) {
  const auto diags = analyze_text(
      "circuit hand\n"
      "net a x\n"
      "vsource VIN a 0 dc=1 ac=1\n"
      "isource I1 x 0 dc=1u\n"
      "resistor R1 x 0 r=1k\n"
      "nmos M1 a a 0 0 w=1u l=lmin m=1\n"
      "metric g unit=x weight=1\n"
      "bench b\n"
      "ac b 1k 1M 3\n"
      "extract g dc_gain bench=b probe=a\n");
  EXPECT_FALSE(has_check(diags, "singular.isource-cutset"));
  EXPECT_FALSE(has_check(diags, "connectivity.no-dc-path"));
}

TEST(AnalyzeUnit, UnknownNetOnHandBuiltDevice) {
  circuit::CircuitDescription d = base_desc();
  d.devices[0].nodes[1] = "ghost";  // gate onto an undeclared net
  const auto diags = circuit::analyze_circuit(d, tech180());
  EXPECT_TRUE(has_check(diags, "connectivity.unknown-net"));
  EXPECT_TRUE(circuit::has_errors(diags));
}

TEST(AnalyzeUnit, BadTerminalCount) {
  circuit::CircuitDescription d = base_desc();
  d.devices[0].nodes.pop_back();  // MOS with 3 terminals
  const auto diags = circuit::analyze_circuit(d, tech180());
  EXPECT_TRUE(has_check(diags, "connectivity.bad-terminals"));
}

TEST(AnalyzeUnit, SizingUnknownComp) {
  circuit::CircuitDescription d = base_desc();
  circuit::BoundDesc b;
  b.comp = "QX";  // no such component
  b.param = 0;
  b.value = circuit::Expr::parse("1u");
  b.line = 99;
  d.bounds.push_back(b);
  auto diags = circuit::analyze_circuit(d, tech180());
  EXPECT_TRUE(has_check(diags, "sizing.unknown-comp"));

  d = base_desc();
  b.comp = "M1";
  b.param = 7;  // no such parameter
  d.bounds.push_back(b);
  diags = circuit::analyze_circuit(d, tech180());
  EXPECT_TRUE(has_check(diags, "sizing.unknown-comp"));
}

TEST(AnalyzeUnit, PlanUnknownRefs) {
  // Unknown bench on a hand-edited extract.
  circuit::CircuitDescription d = base_desc();
  d.extracts[0].bench = "nope";
  EXPECT_TRUE(has_check(circuit::analyze_circuit(d, tech180()),
                        "plan.unknown-ref"));
  // Unknown source in a bench set.
  d = base_desc();
  circuit::SourceSetDesc set;
  set.source = "nosrc";
  d.benches[0].sets.push_back(set);
  EXPECT_TRUE(has_check(circuit::analyze_circuit(d, tech180()),
                        "plan.unknown-ref"));
  // Self-referential warm start.
  d = base_desc();
  d.benches[0].warm_from = "b";
  EXPECT_TRUE(has_check(circuit::analyze_circuit(d, tech180()),
                        "plan.unknown-ref"));
}

TEST(AnalyzeUnit, ExtractRequiresAnalysis) {
  // dc_gain against a bench whose ac sweep was removed.
  circuit::CircuitDescription d = base_desc();
  d.benches[0].ac.reset();
  EXPECT_TRUE(has_check(circuit::analyze_circuit(d, tech180()),
                        "plan.extract-requires"));
}

TEST(AnalyzeUnit, AllowSuppressesWarningsButNeverErrors) {
  // Warning suppressed by pragma.
  auto diags = analyze_text(base_gcir() +
                            "net spare\n"
                            "#lint: allow connectivity.unused-net\n");
  EXPECT_TRUE(diags.empty()) << circuit::format_diagnostics(diags);
  // Errors are not suppressible; the allow itself is flagged unused.
  diags = analyze_text(base_gcir() +
                       "vsource V2 a 0 dc=1\n"
                       "#lint: allow singular.vsource-loop\n");
  EXPECT_TRUE(has_check(diags, "singular.vsource-loop"));
  EXPECT_TRUE(has_check(diags, "lint.unused-allow"));
}

TEST(AnalyzeUnit, DiagnosticFormatIsCompilerStyle) {
  circuit::Diagnostic d;
  d.severity = circuit::Severity::Warning;
  d.check = "plan.bench-unused";
  d.message = "bench \"x\" is simulated but nothing extracts from it";
  d.origin = "foo.gcir";
  d.line = 12;
  d.col = 3;
  EXPECT_EQ(d.format(),
            "foo.gcir:12:3: warning: bench \"x\" is simulated but nothing "
            "extracts from it [plan.bench-unused]");
}
