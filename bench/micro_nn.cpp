// google-benchmark microbenchmarks for the NN/RL substrate: GCN
// forward/backward and one full DDPG update at the agent's real sizes.
#include <benchmark/benchmark.h>

#include "circuits/benchmark_circuits.hpp"
#include "env/sizing_env.hpp"
#include "rl/ddpg.hpp"

using namespace gcnrl;

namespace {

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  la::Mat a(n, n), b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1, 1);
      b(i, j) = rng.uniform(-1, 1);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * 2l * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_ActorForward(benchmark::State& state) {
  const auto tech = circuit::make_technology("180nm");
  env::SizingEnv env(circuits::make_three_tia(tech));
  rl::DdpgConfig cfg;
  Rng rng(2);
  rl::DdpgAgent agent(env.state(), env.adjacency(), env.kinds(), cfg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.act().data());
  }
}
BENCHMARK(BM_ActorForward);

void BM_DdpgEpisodeWithUpdates(benchmark::State& state) {
  const auto tech = circuit::make_technology("180nm");
  env::SizingEnv env(circuits::make_three_tia(tech));
  rl::DdpgConfig cfg;
  cfg.warmup = 4;  // go straight to the update path
  Rng rng(3);
  rl::DdpgAgent agent(env.state(), env.adjacency(), env.kinds(), cfg, rng);
  Rng reward_rng(4);
  for (int i = 0; i < 8; ++i) {
    agent.observe(agent.act_explore(), reward_rng.uniform(-1.0, 1.0));
  }
  for (auto _ : state) {
    agent.observe(agent.act_explore(), reward_rng.uniform(-1.0, 1.0));
  }
}
BENCHMARK(BM_DdpgEpisodeWithUpdates);

}  // namespace
