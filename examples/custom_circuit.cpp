// Bring your own circuit: build a custom netlist (a simple five-transistor
// OTA), define its design space, metrics and FoM, and size it with the
// library — no changes to the library required.
//
// This demonstrates the full extension surface a downstream user touches:
//   Netlist construction  -> circuit/netlist.hpp
//   Search-space choices  -> circuit/design_space.hpp (+ match groups)
//   Testbench + metrics   -> sim/simulator.hpp + meas/*
//   FoM definition        -> env/fom.hpp
//   Optimization          -> rl::DdpgAgent or any opt::Optimizer
#include <cstdio>

#include "circuits/helpers.hpp"
#include "env/sizing_env.hpp"
#include "rl/run_loop.hpp"

using namespace gcnrl;

namespace {

env::BenchmarkCircuit make_five_transistor_ota(
    const circuit::Technology& tech) {
  env::BenchmarkCircuit bc;
  bc.name = "MyOTA";
  bc.tech = tech;

  auto& nl = bc.netlist;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int inp = nl.node("inp");
  const int inn = nl.node("inn");
  const int d1 = nl.node("d1");
  const int out = nl.node("out");
  const int tail = nl.node("tail");
  const int vbn = nl.node("vbn");

  nl.add_vsource("VDD", vdd, 0, tech.vdd);
  // Input common mode and differential AC drive.
  nl.add_vsource("VIP", inp, 0, tech.vdd * 0.55, +0.5);
  nl.add_vsource("VIN", inn, 0, tech.vdd * 0.55, -0.5);
  nl.add_isource("IB", vdd, vbn, 25e-6);

  const double l = tech.lmin;
  nl.add_nmos("M1", d1, inp, tail, 0, 20e-6, 2 * l, 1);   // pair
  nl.add_nmos("M2", out, inn, tail, 0, 20e-6, 2 * l, 1);  // pair
  nl.add_pmos("M3", d1, d1, vdd, vdd, 10e-6, 2 * l, 1);   // mirror diode
  nl.add_pmos("M4", out, d1, vdd, vdd, 10e-6, 2 * l, 1);  // mirror out
  nl.add_nmos("M5", tail, vbn, 0, 0, 10e-6, 2 * l, 2);    // tail
  nl.add_nmos("MB", vbn, vbn, 0, 0, 10e-6, 2 * l, 1,
              /*designable=*/false);  // bias diode kept fixed
  nl.add_capacitor("CL", out, 0, 1e-12, /*designable=*/false);

  bc.space = circuit::DesignSpace::from_netlist(nl, tech);
  bc.space.add_match_group(nl, {"M1", "M2"});
  bc.space.add_match_group(nl, {"M3", "M4"});

  env::FomSpec fom;
  fom.metrics = {
      {"gain", "V/V", +1.0, {}, 10.0, {}, true},
      {"gbw", "Hz", +1.0, {}, {}, {}, true},
      {"power", "W", -1.0, {}, {}, {}, true},
  };
  bc.fom = fom;

  const auto tech_copy = tech;
  const int out_node = out;
  bc.evaluate = [out_node, tech_copy](const circuit::Netlist& sized) {
    sim::Simulator s(sized, tech_copy);
    env::MetricMap m;
    m["power"] = s.supply_power();
    const auto ac = s.ac(sim::logspace(1e2, 1e10, 81));
    const auto h = circuits::detail::curve_at(ac, out_node);
    m["gain"] = meas::dc_gain(h);
    m["gbw"] = meas::gbw(h);
    return m;
  };

  bc.human_expert.v = {{20e-6, 2 * l, 1}, {20e-6, 2 * l, 1},
                       {10e-6, 2 * l, 1}, {10e-6, 2 * l, 1},
                       {10e-6, 2 * l, 2}};
  return bc;
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 250;
  const auto tech = circuit::make_technology("130nm");
  env::SizingEnv env(make_five_transistor_ota(tech));
  Rng rng(9);
  std::printf("Custom 5T OTA @ 130nm: %d components, %d parameters\n",
              env.n(), env.flat_dim());
  env.calibrate(150, rng);

  const auto start = env.evaluate_params(env.bench().human_expert);
  std::printf("starting point FoM: %.3f (gain %.1f, GBW %.3g Hz)\n",
              start.fom, start.metrics.at("gain"), start.metrics.at("gbw"));

  rl::DdpgConfig cfg;
  cfg.warmup = steps / 3;
  rl::DdpgAgent agent(env.state(), env.adjacency(), env.kinds(), cfg,
                      rng.split());
  const auto r = rl::run_ddpg(env, agent, steps);
  std::printf("after %d GCN-RL steps: FoM %.3f (gain %.1f, GBW %.3g Hz, "
              "power %.3g W)\n",
              steps, r.best_fom, r.best_metrics.at("gain"),
              r.best_metrics.at("gbw"), r.best_metrics.at("power"));
  return 0;
}
