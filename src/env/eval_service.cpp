#include "env/eval_service.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "common/envcfg.hpp"
#include "sim/mna.hpp"

namespace gcnrl::env {

EvalServiceConfig eval_config_from_env() {
  EvalServiceConfig cfg;
  cfg.threads = std::clamp(env_int("GCNRL_EVAL_THREADS", cfg.threads), 1, 256);
  cfg.cache_capacity = static_cast<std::size_t>(std::max(
      0, env_int("GCNRL_EVAL_CACHE",
                 static_cast<int>(cfg.cache_capacity))));
  cfg.dc_warm_start = env_flag("GCNRL_DC_WARM_START");
  return cfg;
}

// --- EvalCache -----------------------------------------------------------

std::size_t EvalCache::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the byte representation. Keys hold quantized parameter
  // values, so equal designs are bit-identical doubles and hash equal.
  std::uint64_t h = 1469598103934665603ULL;
  for (const double d : k) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

bool EvalCache::KeyEqual::operator()(const Key& a, const Key& b) const {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

const CachedEval* EvalCache::find(const Key& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
  return &it->second->second;
}

void EvalCache::insert(const Key& key, CachedEval value) {
  if (capacity_ == 0) return;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  map_.emplace(key, lru_.begin());
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void EvalCache::clear() {
  map_.clear();
  lru_.clear();
}

// --- backends ------------------------------------------------------------

namespace {

class SerialBackend final : public EvalBackend {
 public:
  void run(std::span<const std::function<void()>> jobs) override {
    for (const auto& job : jobs) job();
  }
  [[nodiscard]] int threads() const override { return 1; }
};

// N persistent workers draining a per-batch job index. run() blocks until
// every job of the batch has completed.
class ThreadPoolBackend final : public EvalBackend {
 public:
  explicit ThreadPoolBackend(int threads) {
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPoolBackend() override {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void run(std::span<const std::function<void()>> jobs) override {
    if (jobs.empty()) return;
    std::unique_lock<std::mutex> lock(mu_);
    jobs_ = jobs;
    next_ = 0;
    remaining_ = jobs.size();
    cv_work_.notify_all();
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
    jobs_ = {};
  }

  [[nodiscard]] int threads() const override {
    return static_cast<int>(workers_.size());
  }

 private:
  void worker_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_work_.wait(lock, [this] { return stop_ || next_ < jobs_.size(); });
      if (stop_) return;
      const std::size_t idx = next_++;
      lock.unlock();
      jobs_[idx]();  // jobs trap their own exceptions (see eval_batch)
      lock.lock();
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::span<const std::function<void()>> jobs_;
  std::size_t next_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;
};

// The design part of a cache key: matched components and unused action
// dims are already folded away by refine(), so any two raw action
// matrices landing on the same legal design append the same values. One
// definition shared by key_of and design_key keeps the run loops'
// run-local ledgers keyed exactly like the cache.
void append_design(EvalCache::Key& key, const circuit::DesignSpace& space,
                   const circuit::DesignParams& p) {
  for (int i = 0; i < space.num_components(); ++i) {
    for (int d = 0; d < space.comp(i).nparams(); ++d) {
      key.push_back(p.v[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)]);
    }
  }
}

// Cache key: the interned circuit tag followed by the quantized flattened
// design vector.
EvalCache::Key key_of(double tag, const circuit::DesignSpace& space,
                      const circuit::DesignParams& p) {
  EvalCache::Key key;
  key.reserve(1 + static_cast<std::size_t>(space.flat_dim()));
  key.push_back(tag);
  append_design(key, space, p);
  return key;
}

// FoM layer applied on top of a (possibly cached) simulation outcome, so
// recalibrating the spec never serves stale FoMs from the cache.
void apply_fom(const FomSpec& fom, const CachedEval& sim, EvalResult& out) {
  out.sim_ok = sim.sim_ok;
  out.metrics = sim.metrics;
  if (!sim.sim_ok) {
    out.fom = fom.sim_fail_fom;
    out.spec_ok = false;
    return;
  }
  out.spec_ok = fom.spec_ok(sim.metrics);
  out.fom = fom.fom(sim.metrics);
}

}  // namespace

EvalCache::Key design_key(const circuit::DesignSpace& space,
                          const circuit::DesignParams& p) {
  EvalCache::Key key;
  key.reserve(static_cast<std::size_t>(space.flat_dim()));
  append_design(key, space, p);
  return key;
}

// --- EvalService ---------------------------------------------------------

EvalService::EvalService(EvalServiceConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity) {
  if (cfg_.threads > 1) {
    backend_ = std::make_unique<ThreadPoolBackend>(cfg_.threads);
  } else {
    backend_ = std::make_unique<SerialBackend>();
  }
}

EvalService::~EvalService() = default;

int EvalService::threads() const { return backend_->threads(); }

int EvalService::new_attribution() {
  attr_counters_.emplace_back();
  warm_banks_.emplace_back();
  return static_cast<int>(attr_counters_.size()) - 1;
}

double EvalService::circuit_tag(const BenchmarkCircuit& bc) {
  // Fast path: this exact circuit object was tagged before. Runs once per
  // job on the sequential submission path, so it must not allocate; the
  // name re-checks guard against a recycled address.
  const auto hit = ptr_tags_.find(&bc);
  if (hit != ptr_tags_.end() && hit->second.name == bc.name &&
      hit->second.tech == bc.tech.name) {
    return hit->second.tag;
  }
  // '\n' cannot occur in either name, so the concatenation is injective.
  const std::string id = bc.name + "\n" + bc.tech.name;
  auto it = tags_.find(id);
  if (it == tags_.end()) {
    it = tags_.emplace(id, static_cast<double>(tags_.size())).first;
  }
  ptr_tags_[&bc] = TagEntry{bc.name, bc.tech.name, it->second};
  return it->second;
}

std::vector<EvalResult> EvalService::eval_batch_multi(
    std::span<const EvalJob> jobs_in) {
  const std::size_t n = jobs_in.size();
  std::vector<EvalResult> results(n);
  // Counter bumps go to the service-wide totals and, when the job carries
  // an attribution slot, to that slot as well.
  const auto count = [this](int attr, long EvalCounters::* field) {
    ++(total_.*field);
    if (attr >= 0) {
      ++(attr_counters_.at(static_cast<std::size_t>(attr)).*field);
    }
  };

  // Submission pass (sequential, submission order): refine, look up the
  // cache, dedupe repeats within the batch, and schedule fresh designs.
  struct Slot {
    CachedEval sim;                 // filled by the job
    std::exception_ptr unexpected;  // non-SimError escape hatch
    // Pre-batch snapshot of the submitter's warm-start bank (engaged only
    // under cfg_.dc_warm_start with a valid attribution slot). Every
    // same-attr fresh job in a batch starts from the same snapshot; the
    // commit pass writes banks back in submission order, so the final
    // bank state never depends on job scheduling.
    std::optional<sim::WarmStartBank> warm;
  };
  std::vector<EvalCache::Key> keys(n);
  std::vector<long> job_of(n, -1);  // job index evaluating item i
  std::vector<bool> first_of_job(n, false);
  std::unordered_map<EvalCache::Key, long, EvalCache::KeyHash,
                     EvalCache::KeyEqual>
      scheduled;
  std::vector<std::function<void()>> jobs;
  std::vector<Slot> slots;
  slots.reserve(n);
  std::size_t num_jobs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const BenchmarkCircuit& bc = *jobs_in[i].bc;
    count(jobs_in[i].attr, &EvalCounters::requested);
    results[i].params = bc.space.refine(*jobs_in[i].actions);
    keys[i] = key_of(circuit_tag(bc), bc.space, results[i].params);
    if (const CachedEval* hit = cache_.find(keys[i])) {
      count(jobs_in[i].attr, &EvalCounters::cache_hits);
      results[i].cached = true;
      apply_fom(bc.fom, *hit, results[i]);
      continue;
    }
    // In-batch dedupe only runs when caching is on: at capacity 0 every
    // requested evaluation must simulate ("0 disables caching"), matching
    // what the serial engine would do with no cache to hit.
    if (cache_.capacity() > 0) {
      if (const auto dup = scheduled.find(keys[i]); dup != scheduled.end()) {
        // Same legal design earlier in this batch: share its simulation
        // (the serial engine would have hit the entry the first occurrence
        // inserts at commit time).
        count(jobs_in[i].attr, &EvalCounters::cache_hits);
        results[i].cached = true;
        job_of[i] = dup->second;
        continue;
      }
    }
    job_of[i] = static_cast<long>(num_jobs);
    first_of_job[i] = true;
    if (cache_.capacity() > 0) scheduled.emplace(keys[i], job_of[i]);
    slots.emplace_back();
    if (cfg_.dc_warm_start && jobs_in[i].attr >= 0) {
      slots.back().warm =
          warm_banks_.at(static_cast<std::size_t>(jobs_in[i].attr));
    }
    ++num_jobs;
    count(jobs_in[i].attr, &EvalCounters::sims);
  }
  // Jobs are pure functions of (netlist, params): each copies the netlist,
  // applies its parameters, and runs the measurement closure. SimError is
  // part of the result; anything else is rethrown after the batch.
  for (std::size_t i = 0; i < n; ++i) {
    if (!first_of_job[i]) continue;
    Slot& slot = slots[static_cast<std::size_t>(job_of[i])];
    const BenchmarkCircuit* bc = jobs_in[i].bc;
    const circuit::DesignParams& params = results[i].params;
    jobs.emplace_back([bc, &params, &slot] {
      try {
        circuit::Netlist sized = bc->netlist;
        bc->space.apply(sized, params);
        if (slot.warm) {
          // Thread-local scope: Simulators built inside the closure claim
          // consecutive bank slots and warm-start from the previous
          // design's converged operating points.
          sim::WarmStartScope scope(&*slot.warm);
          slot.sim.metrics = bc->evaluate(sized);
        } else {
          slot.sim.metrics = bc->evaluate(sized);
        }
        slot.sim.sim_ok = true;
      } catch (const sim::SimError&) {
        slot.sim.sim_ok = false;
        slot.sim.metrics.clear();
      } catch (...) {
        slot.unexpected = std::current_exception();
      }
    });
  }

  backend_->run(jobs);

  // Commit pass (sequential, submission order): surface unexpected errors,
  // fill fresh/deduped results, and insert cache entries deterministically.
  for (const Slot& slot : slots) {
    if (slot.unexpected) std::rethrow_exception(slot.unexpected);
  }
  // Warm-bank writeback in submission order: the last fresh job of each
  // attribution slot defines its bank for the next batch.
  if (cfg_.dc_warm_start) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!first_of_job[i] || jobs_in[i].attr < 0) continue;
      Slot& slot = slots[static_cast<std::size_t>(job_of[i])];
      if (slot.warm) {
        warm_banks_.at(static_cast<std::size_t>(jobs_in[i].attr)) =
            std::move(*slot.warm);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (job_of[i] < 0) continue;  // cache hit, already filled
    const Slot& slot = slots[static_cast<std::size_t>(job_of[i])];
    apply_fom(jobs_in[i].bc->fom, slot.sim, results[i]);
    if (first_of_job[i]) {
      cache_.insert(keys[i], slot.sim);
    } else {
      cache_.find(keys[i]);  // LRU touch, mirroring the as-if-serial order
    }
  }
  return results;
}

std::vector<EvalResult> EvalService::eval_batch(
    const BenchmarkCircuit& bc, std::span<const la::Mat> actions, int attr) {
  std::vector<EvalJob> jobs(actions.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    jobs[i] = EvalJob{&bc, &actions[i], attr};
  }
  return eval_batch_multi(jobs);
}

EvalResult EvalService::eval_one(const BenchmarkCircuit& bc,
                                 const la::Mat& actions, int attr) {
  return eval_batch(bc, std::span<const la::Mat>(&actions, 1), attr).front();
}

}  // namespace gcnrl::env
