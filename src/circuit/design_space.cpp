#include "circuit/design_space.hpp"
#include <functional>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gcnrl::circuit {

double ParamRange::denormalize(double a) const {
  const double t = std::clamp((a + 1.0) * 0.5, 0.0, 1.0);
  if (log_scale) {
    return lo * std::pow(hi / lo, t);
  }
  return lo + t * (hi - lo);
}

double ParamRange::normalize(double v) const {
  double t = 0.0;
  if (log_scale) {
    t = std::log(std::max(v, 1e-300) / lo) / std::log(hi / lo);
  } else {
    t = (v - lo) / (hi - lo);
  }
  return std::clamp(2.0 * t - 1.0, -1.0, 1.0);
}

double ParamRange::refine_value(double v) const {
  if (integer) {
    v = std::round(v);
  } else if (grid > 0.0) {
    v = std::round(v / grid) * grid;
  }
  return std::clamp(v, lo, hi);
}

DesignSpace DesignSpace::from_netlist(const Netlist& nl,
                                      const Technology& tech) {
  DesignSpace ds;
  for (const DesignRef& ref : nl.design_components()) {
    CompSpace cs;
    cs.kind = ref.kind;
    cs.name = ref.name;
    switch (ref.kind) {
      case Kind::Nmos:
      case Kind::Pmos:
        cs.p[0] = {tech.wmin, tech.wmax, /*log=*/true, tech.grid, false};
        cs.p[1] = {tech.lmin, tech.lmax, /*log=*/true, tech.grid, false};
        cs.p[2] = {1.0, static_cast<double>(tech.mmax), /*log=*/true, 0.0,
                   /*integer=*/true};
        break;
      case Kind::Resistor:
        cs.p[0] = {tech.rmin, tech.rmax, true, 0.0, false};
        break;
      case Kind::Capacitor:
        cs.p[0] = {tech.cmin, tech.cmax, true, 0.0, false};
        break;
    }
    ds.comps_.push_back(std::move(cs));
  }
  return ds;
}

int DesignSpace::flat_dim() const {
  int n = 0;
  for (const auto& c : comps_) n += c.nparams();
  return n;
}

int DesignSpace::find(const std::string& name) const {
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    if (comps_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void DesignSpace::add_match_group(const Netlist& nl,
                                  std::vector<std::string> names,
                                  bool l_only) {
  MatchGroup g;
  g.l_only = l_only;
  for (const auto& n : names) {
    const int i = nl.find_design(n);
    if (i < 0) {
      throw std::invalid_argument("add_match_group: unknown component " + n);
    }
    if (comps_.at(i).kind != comps_.at(nl.find_design(names.front())).kind) {
      throw std::invalid_argument("add_match_group: mixed kinds in group");
    }
    g.comps.push_back(i);
  }
  groups_.push_back(std::move(g));
}

DesignParams DesignSpace::refine(const la::Mat& actions) const {
  if (actions.rows() != num_components() ||
      actions.cols() != kMaxActionDim) {
    throw std::invalid_argument("DesignSpace::refine: bad action shape");
  }
  // 1. Matching: components tied (possibly transitively, through chained
  // or overlapping groups) receive the average of their raw actions, so
  // matched devices land on identical parameters and the map is symmetric
  // in the group members. Per action dimension we build equivalence
  // classes with union-find: an l_only group ties only dimension 1 (L).
  la::Mat a = actions;
  const int n = num_components();
  for (int d = 0; d < kMaxActionDim; ++d) {
    std::vector<int> parent(n);
    for (int i = 0; i < n; ++i) parent[i] = i;
    std::function<int(int)> find = [&](int i) {
      while (parent[i] != i) {
        parent[i] = parent[parent[i]];
        i = parent[i];
      }
      return i;
    };
    bool any = false;
    for (const MatchGroup& g : groups_) {
      if (g.l_only && d != 1) continue;
      for (std::size_t k = 1; k < g.comps.size(); ++k) {
        parent[find(g.comps[k])] = find(g.comps[0]);
        any = true;
      }
    }
    if (!any) continue;
    std::vector<double> sum(n, 0.0);
    std::vector<int> count(n, 0);
    for (int i = 0; i < n; ++i) {
      const int r = find(i);
      sum[r] += a(i, d);
      ++count[r];
    }
    for (int i = 0; i < n; ++i) {
      const int r = find(i);
      if (count[r] > 1) a(i, d) = sum[r] / count[r];
    }
  }
  // 2-4. Denormalize, quantize, truncate.
  DesignParams out;
  out.v.resize(comps_.size());
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    const CompSpace& cs = comps_[i];
    for (int d = 0; d < cs.nparams(); ++d) {
      const double raw = cs.p[d].denormalize(a(static_cast<int>(i), d));
      out.v[i][d] = cs.p[d].refine_value(raw);
    }
  }
  return out;
}

la::Mat DesignSpace::unflatten(std::span<const double> x) const {
  if (static_cast<int>(x.size()) != flat_dim()) {
    throw std::invalid_argument("DesignSpace::unflatten: bad size");
  }
  la::Mat a(num_components(), kMaxActionDim);
  int k = 0;
  for (int i = 0; i < num_components(); ++i) {
    for (int d = 0; d < comps_[i].nparams(); ++d) a(i, d) = x[k++];
  }
  return a;
}

std::vector<double> DesignSpace::flatten(const la::Mat& actions) const {
  std::vector<double> x;
  x.reserve(flat_dim());
  for (int i = 0; i < num_components(); ++i) {
    for (int d = 0; d < comps_[i].nparams(); ++d) x.push_back(actions(i, d));
  }
  return x;
}

la::Mat DesignSpace::random_actions(Rng& rng) const {
  la::Mat a(num_components(), kMaxActionDim);
  for (int i = 0; i < num_components(); ++i) {
    for (int d = 0; d < comps_[i].nparams(); ++d) {
      a(i, d) = rng.uniform(-1.0, 1.0);
    }
  }
  return a;
}

la::Mat DesignSpace::actions_from_params(const DesignParams& p) const {
  if (static_cast<int>(p.v.size()) != num_components()) {
    throw std::invalid_argument("actions_from_params: bad size");
  }
  la::Mat a(num_components(), kMaxActionDim);
  for (int i = 0; i < num_components(); ++i) {
    for (int d = 0; d < comps_[i].nparams(); ++d) {
      a(i, d) = comps_[i].p[d].normalize(p.v[i][d]);
    }
  }
  return a;
}

void DesignSpace::apply(Netlist& nl, const DesignParams& p) const {
  if (static_cast<int>(p.v.size()) != nl.num_design_components() ||
      nl.num_design_components() != num_components()) {
    throw std::invalid_argument("DesignSpace::apply: size mismatch");
  }
  for (int i = 0; i < num_components(); ++i) nl.set_design_params(i, p.v[i]);
}

}  // namespace gcnrl::circuit
