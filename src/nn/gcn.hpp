// Graph convolution layer (Kipf & Welling 2016), Eq. 4 of the paper:
//
//   H^(l+1) = sigma( D~^(-1/2) (A + I) D~^(-1/2)  H^(l)  W^(l) )
//
// The normalized adjacency A-hat is a constant per circuit topology and is
// passed into forward(); the layer owns only its weight matrix (the
// "shared weight" of Fig. 3 — one W per layer, shared across components).
// With A-hat = I the layer degrades to a plain shared FC layer, which is
// exactly the paper's NG-RL ablation.
#pragma once

#include "common/rng.hpp"
#include "nn/init.hpp"
#include "nn/module.hpp"

namespace gcnrl::nn {

// A-hat = D~^{-1/2} (A + I) D~^{-1/2} for a symmetric 0/1 adjacency A.
la::Mat normalized_adjacency(const la::Mat& adjacency);

class GcnLayer : public Module {
 public:
  GcnLayer(std::string name, int in_features, int out_features, Rng& rng);

  // h: n x in_features; a_hat: n x n (constant).
  ag::Var forward(ag::Tape& tape, ag::Var h, const la::Mat& a_hat);

  std::vector<Parameter*> parameters() override { return {&w_, &b_}; }

 private:
  Parameter w_;
  Parameter b_;
};

}  // namespace gcnrl::nn
