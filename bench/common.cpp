#include "common.hpp"

namespace gcnrl::bench {

rl::RunResult run_optimizer_budgeted(env::SizingEnv& env, opt::Optimizer& opt,
                                     int steps, long sim_budget) {
  return rl::run_optimizer(env, opt, steps, sim_budget > 0 ? sim_budget : -1);
}

std::unique_ptr<opt::Optimizer> make_optimizer(const std::string& method,
                                               int dim, Rng rng) {
  return api::make_ask_tell(method, dim, std::move(rng));
}

}  // namespace gcnrl::bench
