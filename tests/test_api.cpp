// Tests for the public task facade (src/api): circuit & method
// registries (duplicates, unknown-name diagnostics, deterministic
// ordering, user extension), the run_tasks planner (sweep parity, budget
// chaining, order/grouping independence, thread-count determinism, custom
// circuits end to end), and the task-spec file parser.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "circuit/tech.hpp"
#include "nn/linear.hpp"
#include "sim/simulator.hpp"

namespace api = gcnrl::api;
namespace env = gcnrl::env;
namespace circuit = gcnrl::circuit;
namespace nn = gcnrl::nn;
namespace rl = gcnrl::rl;
using gcnrl::Rng;

namespace {

// Simulator-free benchmark (mirror of test_eval's synthetic): metrics are
// closed forms of the parameters, so whole task runs cost microseconds.
env::BenchmarkCircuit make_synthetic(const circuit::Technology& tech) {
  env::BenchmarkCircuit bc;
  bc.name = "Synthetic-API";
  bc.tech = tech;
  auto& nl = bc.netlist;
  const int a = nl.node("a");
  const int b = nl.node("b");
  nl.add_nmos("M1", a, b, 0, 0, 1e-6, 1e-6);
  nl.add_resistor("R1", a, b, 1e3);
  nl.add_capacitor("C1", b, 0, 1e-12);
  bc.space = circuit::DesignSpace::from_netlist(nl, bc.tech);
  env::FomSpec fom;
  fom.metrics = {
      {"speed", "Hz", +1.0, {}, {}, {}, true},
      {"cost", "W", -1.0, {}, {}, {}, true},
  };
  bc.fom = fom;
  bc.evaluate = [](const circuit::Netlist& sized) {
    const auto& mos = sized.mosfets()[0];
    const auto& res = sized.resistors()[0];
    if (mos.w < 0.4e-6) throw gcnrl::sim::SimError("did not converge");
    env::MetricMap m;
    m["speed"] = mos.w / mos.l;
    m["cost"] = mos.w * mos.m / res.r * 1e9;
    return m;
  };
  bc.human_expert.v = {{10e-6, 0.5e-6, 2}, {10e3, 0, 0}, {1e-12, 0, 0}};
  return bc;
}

// Registered once for the whole suite; registries are process-global.
const api::CircuitRegistrar synthetic_registrar{"Synthetic-API",
                                               make_synthetic};

// A trivial ask/tell optimizer for custom-method tests: proposes a
// deterministic lattice walk, one point per ask().
class GridWalk : public gcnrl::opt::Optimizer {
 public:
  GridWalk(int dim, Rng rng) : dim_(dim), rng_(std::move(rng)) {}
  std::vector<std::vector<double>> ask() override {
    std::vector<double> x(static_cast<std::size_t>(dim_));
    for (double& v : x) v = rng_.uniform(-1.0, 1.0);
    return {x};
  }
  void tell(const std::vector<std::vector<double>>&,
            const std::vector<double>&) override {}
  [[nodiscard]] int dim() const override { return dim_; }

 private:
  int dim_;
  Rng rng_;
};

api::TaskSpec synthetic_task(const std::string& method, int steps,
                             int seeds) {
  api::TaskSpec t;
  t.circuit = "Synthetic-API";
  t.method = method;
  t.steps = steps;
  t.warmup = steps / 3;
  t.seeds = seeds;
  return t;
}

api::RunOptions tiny_options(int threads = 1) {
  api::RunOptions opts;
  opts.calib_samples = 16;
  env::EvalServiceConfig cfg;
  cfg.threads = threads;
  opts.service = std::make_shared<env::EvalService>(cfg);
  return opts;
}

// ---------------------------------------------------------------------------
// CircuitRegistry
// ---------------------------------------------------------------------------

TEST(CircuitRegistry, BuiltinsKeepPaperOrder) {
  const auto names = api::circuit_names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "Two-TIA");
  EXPECT_EQ(names[1], "Two-Volt");
  EXPECT_EQ(names[2], "Three-TIA");
  EXPECT_EQ(names[3], "LDO");
  // The legacy shim sees the identical list.
  EXPECT_EQ(gcnrl::circuits::benchmark_names(), names);
}

TEST(CircuitRegistry, UserCircuitIsRegisteredAndBuildable) {
  EXPECT_TRUE(api::circuit_registered("Synthetic-API"));
  const auto bc = api::build_circuit("Synthetic-API",
                                     circuit::make_technology("180nm"));
  EXPECT_EQ(bc.name, "Synthetic-API");
  EXPECT_EQ(bc.space.num_components(), 3);
}

TEST(CircuitRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(api::register_circuit("Two-TIA", make_synthetic),
               std::invalid_argument);
  EXPECT_THROW(api::register_circuit("Synthetic-API", make_synthetic),
               std::invalid_argument);
  EXPECT_THROW(api::register_circuit("", make_synthetic),
               std::invalid_argument);
}

// Regression test for the old make_benchmark error ("unknown circuit X"
// with no hint): the message must list the valid registered names.
TEST(CircuitRegistry, UnknownCircuitErrorListsRegisteredNames) {
  const auto tech = circuit::make_technology("180nm");
  try {
    gcnrl::circuits::make_benchmark("No-Such-Circuit", tech);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("No-Such-Circuit"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Two-TIA"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Two-Volt"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Three-TIA"), std::string::npos) << msg;
    EXPECT_NE(msg.find("LDO"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// MethodRegistry
// ---------------------------------------------------------------------------

TEST(MethodRegistry, BuiltinsKeepTableOrder) {
  const auto names = api::method_names();
  ASSERT_GE(names.size(), 7u);
  const std::vector<std::string> expect = {"Human", "Random", "ES", "BO",
                                           "MACE",  "NG-RL",  "GCN-RL"};
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(names[i], expect[i]);
  }
}

TEST(MethodRegistry, DescriptorsEncodeTheBudgetChain) {
  EXPECT_EQ(api::method_info("BO").budget_from, "ES");
  EXPECT_EQ(api::method_info("MACE").budget_from, "ES");
  EXPECT_EQ(api::method_info("ES").budget_from, "");
  EXPECT_EQ(api::method_info("GCN-RL").kind, api::MethodKind::Ddpg);
  EXPECT_EQ(api::method_info("Human").kind, api::MethodKind::Anchor);
}

TEST(MethodRegistry, UnknownMethodErrorListsRegisteredNames) {
  try {
    api::method_info("No-Such-Method");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("No-Such-Method"), std::string::npos) << msg;
    EXPECT_NE(msg.find("GCN-RL"), std::string::npos) << msg;
    EXPECT_NE(msg.find("MACE"), std::string::npos) << msg;
  }
}

TEST(MethodRegistry, DuplicateAndInvalidRegistrationsThrow) {
  api::MethodInfo dup;
  dup.name = "ES";
  dup.kind = api::MethodKind::Random;
  EXPECT_THROW(api::register_method(dup), std::invalid_argument);

  api::MethodInfo no_factory;
  no_factory.name = "Broken-AskTell";
  no_factory.kind = api::MethodKind::AskTell;  // make_optimizer missing
  EXPECT_THROW(api::register_method(no_factory), std::invalid_argument);
}

TEST(MethodRegistry, MakeAskTellRejectsNonAskTellKinds) {
  EXPECT_THROW(api::make_ask_tell("GCN-RL", 4, Rng(1)),
               std::invalid_argument);
  const auto es = api::make_ask_tell("ES", 4, Rng(1));
  EXPECT_EQ(es->dim(), 4);
}

// ---------------------------------------------------------------------------
// run_tasks
// ---------------------------------------------------------------------------

TEST(RunTasks, ValidatesSpecs) {
  EXPECT_THROW(api::run_tasks({synthetic_task("No-Such-Method", 4, 1)}),
               std::invalid_argument);
  api::TaskSpec bad_circuit = synthetic_task("ES", 4, 1);
  bad_circuit.circuit = "No-Such-Circuit";
  EXPECT_THROW(api::run_tasks({bad_circuit}), std::invalid_argument);
  api::TaskSpec bad_steps = synthetic_task("ES", 0, 1);
  EXPECT_THROW(api::run_tasks({bad_steps}), std::invalid_argument);
  api::TaskSpec bad_seeds = synthetic_task("ES", 4, 0);
  EXPECT_THROW(api::run_tasks({bad_seeds}), std::invalid_argument);
  // An explicit cap on a method that cannot consume it fails loudly
  // instead of silently running uncapped.
  api::TaskSpec bad_budget = synthetic_task("GCN-RL", 4, 1);
  bad_budget.sim_budget = 100;
  EXPECT_THROW(api::run_tasks({bad_budget}), std::invalid_argument);
}

// run_method and run_tasks agree on explicit simulated-cost caps for any
// ask/tell method, budget source or not.
TEST(RunMethod, ExplicitSimBudgetCapsAskTell) {
  const auto opts = tiny_options();
  Rng calib_rng(opts.calib_seed);
  const api::EnvFactory factory("Synthetic-API",
                                circuit::make_technology("180nm"),
                                env::IndexMode::OneHot, opts.calib_samples,
                                calib_rng, opts.service);
  const auto capped =
      api::run_method("ES", factory, 10, 0, api::seed_of(0), 4);
  EXPECT_LE(capped.sims, 4);
  const auto via_tasks = [&] {
    api::TaskSpec t = synthetic_task("ES", 10, 1);
    t.sim_budget = 4;
    return api::run_tasks({t}, tiny_options());
  }();
  EXPECT_EQ(via_tasks[0].runs[0].best_trace, capped.best_trace);
  EXPECT_EQ(via_tasks[0].runs[0].sims, capped.sims);
}

// A custom circuit registered by user code runs end to end through the
// planner — every method kind, tiny budgets.
TEST(RunTasks, CustomCircuitEndToEndAllMethodKinds) {
  const std::vector<api::TaskSpec> tasks = {
      synthetic_task("Human", 1, 1), synthetic_task("Random", 6, 2),
      synthetic_task("ES", 6, 2), synthetic_task("GCN-RL", 6, 2)};
  const auto results = api::run_tasks(tasks, tiny_options());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].runs.size(), 1u);
  EXPECT_EQ(results[0].runs[0].evals, 1);
  EXPECT_EQ(results[0].runs[0].sims, 1);  // warmth-independent anchor cost
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].runs.size(), 2u) << tasks[i].method;
    for (const auto& run : results[i].runs) {
      EXPECT_EQ(run.best_trace.size(), 6u) << tasks[i].method;
      EXPECT_GT(run.best_fom, -1e300) << tasks[i].method;
    }
  }
  // Executed spec normalization is reported back.
  EXPECT_EQ(results[3].spec.warmup, 2);
  EXPECT_EQ(results[3].spec.label, "GCN-RL/Synthetic-API@180nm");
}

// Per-task results must be bit-identical whatever else shares the batch:
// a task alone, the same task inside a heterogeneous list, and the same
// list permuted all agree — as long as the permutation preserves the
// first-appearance order of distinct (circuit, node) groups, because
// calibration draws from one shared RNG in group order (the documented
// protocol of the table harnesses).
TEST(RunTasks, GroupingAndOrderIndependence) {
  const api::TaskSpec a = synthetic_task("GCN-RL", 5, 2);
  const api::TaskSpec b = synthetic_task("ES", 5, 2);
  api::TaskSpec c = synthetic_task("NG-RL", 5, 1);
  c.node = "65nm";  // second factory on the same service

  const auto solo = api::run_tasks({a}, tiny_options());
  const auto mixed = api::run_tasks({b, a, c}, tiny_options());
  // a/b swap within the 180nm group; the 180nm -> 65nm group order stays.
  const auto permuted = api::run_tasks({a, b, c}, tiny_options());

  ASSERT_EQ(mixed[1].spec.label, solo[0].spec.label);
  EXPECT_EQ(mixed[1].best, solo[0].best);
  EXPECT_EQ(mixed[1].sims, solo[0].sims);
  for (std::size_t s = 0; s < solo[0].runs.size(); ++s) {
    EXPECT_EQ(mixed[1].runs[s].best_trace, solo[0].runs[s].best_trace);
  }
  EXPECT_EQ(mixed[1].best, permuted[0].best);
  EXPECT_EQ(mixed[0].best, permuted[1].best);
  EXPECT_EQ(mixed[2].best, permuted[2].best);
  for (std::size_t s = 0; s < mixed[0].runs.size(); ++s) {
    EXPECT_EQ(mixed[0].runs[s].best_trace, permuted[1].runs[s].best_trace);
  }
}

TEST(RunTasks, ThreadCountDoesNotChangeResults) {
  const std::vector<api::TaskSpec> tasks = {synthetic_task("ES", 6, 2),
                                            synthetic_task("BO", 6, 2),
                                            synthetic_task("GCN-RL", 6, 2)};
  const auto serial = api::run_tasks(tasks, tiny_options(1));
  const auto pooled = api::run_tasks(tasks, tiny_options(4));
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].best, pooled[i].best) << tasks[i].method;
    EXPECT_EQ(serial[i].sims, pooled[i].sims) << tasks[i].method;
    for (std::size_t s = 0; s < serial[i].runs.size(); ++s) {
      EXPECT_EQ(serial[i].runs[s].best_trace, pooled[i].runs[s].best_trace);
    }
  }
}

// The planner's automatic ES -> BO chain equals handing the budgets over
// explicitly — and holds even when BO is listed before its source.
TEST(RunTasks, BudgetChainMatchesExplicitBudgets) {
  const api::TaskSpec es = synthetic_task("ES", 8, 2);
  const api::TaskSpec bo = synthetic_task("BO", 8, 2);

  const auto chained = api::run_tasks({bo, es}, tiny_options());
  const auto& bo_chained = chained[0];
  const auto& es_run = chained[1];

  // Replay with the recorded ES sims as explicit per-task caps (uniform
  // caps need per-seed equality to stay a faithful replay).
  ASSERT_EQ(es_run.sims.size(), 2u);
  ASSERT_EQ(es_run.sims[0], es_run.sims[1]);
  api::TaskSpec bo_explicit = bo;
  bo_explicit.sim_budget = es_run.sims[0];
  const auto replay = api::run_tasks({bo_explicit}, tiny_options());
  EXPECT_EQ(replay[0].best, bo_chained.best);
  EXPECT_EQ(replay[0].sims, bo_chained.sims);
  for (int s = 0; s < 2; ++s) {
    EXPECT_LE(bo_chained.sims[static_cast<std::size_t>(s)], es_run.sims[0]);
  }

  // sim_budget < 0 opts out of the chain entirely.
  api::TaskSpec bo_uncapped = bo;
  bo_uncapped.sim_budget = -1;
  const auto uncapped = api::run_tasks({es, bo_uncapped}, tiny_options());
  EXPECT_EQ(uncapped[1].runs[0].best_trace.size(), 8u);
}

// run_tasks on one task == sweep() against an identically calibrated
// factory: the two public paths share one execution engine.
TEST(RunTasks, MatchesSweepOnEquivalentFactory) {
  const api::TaskSpec t = synthetic_task("GCN-RL", 6, 2);
  const auto opts = tiny_options();
  const auto via_tasks = api::run_tasks({t}, opts);

  Rng calib_rng(opts.calib_seed);
  const api::EnvFactory factory("Synthetic-API",
                                circuit::make_technology("180nm"),
                                env::IndexMode::OneHot, opts.calib_samples,
                                calib_rng, tiny_options().service);
  const auto via_sweep =
      api::sweep("GCN-RL", factory, t.steps, t.warmup, t.seeds);

  EXPECT_EQ(via_tasks[0].best, via_sweep.best);
  EXPECT_EQ(via_tasks[0].sims, via_sweep.sims);
  for (std::size_t s = 0; s < via_sweep.traces.size(); ++s) {
    EXPECT_EQ(via_tasks[0].runs[s].best_trace, via_sweep.traces[s]);
  }
}

// A user-registered ask/tell method drives the planner like a built-in.
TEST(RunTasks, CustomAskTellMethodRunsThroughPlanner) {
  if (!api::method_registered("Grid-Walk")) {
    api::MethodInfo mi;
    mi.name = "Grid-Walk";
    mi.kind = api::MethodKind::AskTell;
    mi.make_optimizer = [](int dim, Rng rng) {
      return std::make_unique<GridWalk>(dim, std::move(rng));
    };
    api::register_method(std::move(mi));
  }
  const auto results =
      api::run_tasks({synthetic_task("Grid-Walk", 7, 2)}, tiny_options());
  ASSERT_EQ(results[0].runs.size(), 2u);
  for (const auto& run : results[0].runs) {
    EXPECT_EQ(run.best_trace.size(), 7u);
    EXPECT_EQ(run.evals, 7);
  }
}

// ---------------------------------------------------------------------------
// Transfer: pretrain chains + checkpoints
// ---------------------------------------------------------------------------

// A planner-resolved pretrain chain is bit-identical to the hand-wired
// protocol the transfer harnesses used before run_tasks: pretrain via one
// LockstepGroup, then copy_from into fine-tune agents on the historical
// seed ladder.
TEST(RunTasks, PretrainChainMatchesHandWiredTransfer) {
  api::TaskSpec pre = synthetic_task("GCN-RL", 8, 1);
  pre.warmup = 2;
  pre.label = "pre";
  pre.seed_base = 500;
  api::TaskSpec xfer = synthetic_task("GCN-RL", 6, 2);
  xfer.warmup = 2;
  xfer.pretrain_from = "pre";
  xfer.seed_base = 900;
  xfer.seed_stride = 31;
  const auto planned = api::run_tasks({pre, xfer}, tiny_options());

  const auto opts = tiny_options();
  Rng calib_rng(opts.calib_seed);
  const api::EnvFactory factory("Synthetic-API",
                                circuit::make_technology("180nm"),
                                env::IndexMode::OneHot, opts.calib_samples,
                                calib_rng, opts.service);
  rl::DdpgConfig pre_cfg;
  pre_cfg.warmup = 2;
  std::vector<api::LockstepSpec> pre_specs;
  pre_specs.push_back({pre_cfg, Rng(500), nullptr, {}});
  api::LockstepGroup pre_group(factory, std::move(pre_specs));
  const auto pre_runs = pre_group.run(8);

  rl::DdpgConfig ft_cfg;
  ft_cfg.warmup = 2;
  std::vector<api::LockstepSpec> ft_specs;
  for (int s = 0; s < 2; ++s) {
    ft_specs.push_back(
        {ft_cfg, Rng(900 + 31 * static_cast<std::uint64_t>(s)),
         &pre_group.agent(0), {}});
  }
  api::LockstepGroup ft_group(factory, std::move(ft_specs));
  const auto ft_runs = ft_group.run(6);

  EXPECT_EQ(planned[0].runs[0].best_trace, pre_runs[0].best_trace);
  ASSERT_EQ(planned[1].runs.size(), 2u);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(planned[1].runs[s].best_fom, ft_runs[s].best_fom);
    EXPECT_EQ(planned[1].runs[s].best_trace, ft_runs[s].best_trace);
    EXPECT_EQ(planned[1].runs[s].sims, ft_runs[s].sims);
  }
}

// save() -> load() into a freshly initialized agent is a bitwise round
// trip: every parameter matches and a subsequent identically seeded
// fine-tune produces the identical best_trace.
TEST(RunTasks, AgentSaveLoadRoundTripIsBitwise) {
  const auto opts = tiny_options();
  Rng calib_rng(opts.calib_seed);
  const api::EnvFactory factory("Synthetic-API",
                                circuit::make_technology("180nm"),
                                env::IndexMode::OneHot, opts.calib_samples,
                                calib_rng, opts.service);
  rl::DdpgConfig cfg;
  cfg.warmup = 2;
  std::vector<api::LockstepSpec> specs;
  specs.push_back({cfg, Rng(42), nullptr, {}});
  api::LockstepGroup trained_group(factory, std::move(specs));
  trained_group.run(8);
  rl::DdpgAgent& trained = trained_group.agent(0);

  const std::string path =
      (std::filesystem::temp_directory_path() / "gcnrl_agent_roundtrip.gcr")
          .string();
  trained.save(path);
  const auto env2 = factory.make();
  rl::DdpgAgent loaded(env2->state(), env2->adjacency(), env2->kinds(), cfg,
                       Rng(777));
  loaded.load(path);
  std::remove(path.c_str());

  const auto tp = trained.parameters();
  const auto lp = loaded.parameters();
  ASSERT_EQ(tp.size(), lp.size());
  for (std::size_t i = 0; i < tp.size(); ++i) {
    EXPECT_EQ(tp[i]->name, lp[i]->name);
    const auto& want = tp[i]->value;
    const auto& got = lp[i]->value;
    ASSERT_TRUE(want.same_shape(got)) << tp[i]->name;
    for (int r = 0; r < want.rows(); ++r) {
      for (int c = 0; c < want.cols(); ++c) {
        EXPECT_EQ(want(r, c), got(r, c)) << tp[i]->name;
      }
    }
  }

  // The loaded agent warm-starts a run exactly like the original.
  std::vector<api::LockstepSpec> s1, s2;
  s1.push_back({cfg, Rng(5), &trained, {}});
  s2.push_back({cfg, Rng(5), &loaded, {}});
  api::LockstepGroup g1(factory, std::move(s1));
  api::LockstepGroup g2(factory, std::move(s2));
  const auto r1 = g1.run(6);
  const auto r2 = g2.run(6);
  EXPECT_EQ(r1[0].best_trace, r2[0].best_trace);
  EXPECT_EQ(r1[0].sims, r2[0].sims);
}

// A warm start from the checkpoint store's disk tier (fresh store, fresh
// run_tasks call, weights resolved from the file alone) is bit-identical
// to the in-memory pretrain_from chain.
TEST(RunTasks, DiskCheckpointWarmStartMatchesInMemoryPretrain) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gcnrl_ckpt_store_test")
          .string();
  std::filesystem::remove_all(dir);

  api::TaskSpec pre = synthetic_task("GCN-RL", 8, 1);
  pre.warmup = 2;
  pre.label = "pre";
  pre.save_checkpoint = "synthetic-pre";
  api::TaskSpec xfer = synthetic_task("GCN-RL", 6, 1);
  xfer.warmup = 2;
  xfer.pretrain_from = "pre";

  api::CheckpointStore store_a(dir);
  auto opts_a = tiny_options();
  opts_a.checkpoints = &store_a;
  const auto in_memory = api::run_tasks({pre, xfer}, opts_a);
  EXPECT_TRUE(store_a.contains("synthetic-pre"));
  EXPECT_EQ(store_a.names(), std::vector<std::string>{"synthetic-pre"});
  ASSERT_FALSE(store_a.path_of("synthetic-pre").empty());
  EXPECT_TRUE(std::filesystem::exists(store_a.path_of("synthetic-pre")));

  // Fresh store on the same directory: the memory tier is empty, so the
  // artifact must come off disk. Both task lists calibrate the same
  // (circuit, node, mode) group first, so the factories are identical.
  api::CheckpointStore store_b(dir);
  EXPECT_TRUE(store_b.names().empty());
  api::TaskSpec warm = synthetic_task("GCN-RL", 6, 1);
  warm.warmup = 2;
  warm.load_checkpoint = "synthetic-pre";
  auto opts_b = tiny_options();
  opts_b.checkpoints = &store_b;
  const auto from_disk = api::run_tasks({warm}, opts_b);

  EXPECT_EQ(from_disk[0].runs[0].best_fom, in_memory[1].runs[0].best_fom);
  EXPECT_EQ(from_disk[0].runs[0].best_trace,
            in_memory[1].runs[0].best_trace);
  EXPECT_EQ(from_disk[0].runs[0].sims, in_memory[1].runs[0].sims);
  EXPECT_EQ(from_disk[0].spec.label,
            "GCN-RL/Synthetic-API@180nm<-ckpt:synthetic-pre");
  std::filesystem::remove_all(dir);
}

// Stamp checks on load: index mode must match exactly; under OneHot the
// circuit must match too (the one-hot block ties the state layout to one
// topology); Scalar accepts any circuit; the node is never checked.
TEST(CheckpointStore, StampMismatchFailsLoudly) {
  Rng rng(3);
  nn::Linear w("ckpt.w", 2, 2, rng);
  api::CheckpointStore store;
  store.put("art", w.parameters(),
            {"Two-TIA", "180nm", env::IndexMode::OneHot, ""});
  store.put("art-scalar", w.parameters(),
            {"Two-TIA", "180nm", env::IndexMode::Scalar, ""});

  nn::Linear dst("ckpt.w", 2, 2, rng);
  EXPECT_THROW(store.load("art", dst.parameters(),
                          {"Two-TIA", "180nm", env::IndexMode::Scalar, ""}),
               std::runtime_error);
  EXPECT_THROW(store.load("art", dst.parameters(),
                          {"Three-TIA", "180nm", env::IndexMode::OneHot, ""}),
               std::runtime_error);
  // Cross-node transfer is the headline protocol — allowed.
  EXPECT_EQ(store.load("art", dst.parameters(),
                       {"Two-TIA", "65nm", env::IndexMode::OneHot, ""}),
            2);
  // Cross-topology transfer is the point of scalar mode — allowed.
  EXPECT_EQ(store.load("art-scalar", dst.parameters(),
                       {"Three-TIA", "65nm", env::IndexMode::Scalar, ""}),
            2);
  // A missing artifact lists what the store holds.
  try {
    store.load("no-such-artifact", dst.parameters(),
               {"Two-TIA", "180nm", env::IndexMode::OneHot, ""});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-artifact"), std::string::npos) << msg;
    EXPECT_NE(msg.find("art"), std::string::npos) << msg;
  }
}

TEST(RunTasks, ChainValidationErrors) {
  // pretrain_from must name a task in the list.
  api::TaskSpec orphan = synthetic_task("GCN-RL", 4, 1);
  orphan.pretrain_from = "no-such-label";
  EXPECT_THROW(api::run_tasks({orphan}, tiny_options()),
               std::invalid_argument);

  // pretrain_from and load_checkpoint are mutually exclusive.
  api::TaskSpec both = synthetic_task("GCN-RL", 4, 1);
  both.pretrain_from = "pre";
  both.load_checkpoint = "ckpt";
  EXPECT_THROW(api::run_tasks({both}, tiny_options()),
               std::invalid_argument);

  // Warm-start fields apply only to DDPG-kind methods.
  api::TaskSpec es = synthetic_task("ES", 4, 1);
  es.save_checkpoint = "es-ckpt";
  EXPECT_THROW(api::run_tasks({es}, tiny_options()), std::invalid_argument);

  // seed_stride without seed_base is a silent-ladder hazard; rejected.
  api::TaskSpec stride = synthetic_task("GCN-RL", 4, 1);
  stride.seed_stride = 31;
  EXPECT_THROW(api::run_tasks({stride}, tiny_options()),
               std::invalid_argument);

  // Duplicate save names would make checkpoint resolution order-dependent.
  api::TaskSpec s1 = synthetic_task("GCN-RL", 4, 1);
  s1.label = "a";
  s1.save_checkpoint = "dup";
  api::TaskSpec s2 = synthetic_task("GCN-RL", 4, 1);
  s2.label = "b";
  s2.save_checkpoint = "dup";
  EXPECT_THROW(api::run_tasks({s1, s2}, tiny_options()),
               std::invalid_argument);

  // A source whose seed count is neither 1 nor the consumer's is rejected.
  api::TaskSpec wide = synthetic_task("GCN-RL", 4, 2);
  wide.label = "wide";
  api::TaskSpec narrow = synthetic_task("GCN-RL", 4, 3);
  narrow.pretrain_from = "wide";
  EXPECT_THROW(api::run_tasks({wide, narrow}, tiny_options()),
               std::invalid_argument);

  // Cycles are detected: a pretrains from b, b loads what a saves.
  api::TaskSpec cyc_a = synthetic_task("GCN-RL", 4, 1);
  cyc_a.label = "cyc-a";
  cyc_a.pretrain_from = "cyc-b";
  cyc_a.save_checkpoint = "cyc-ckpt";
  api::TaskSpec cyc_b = synthetic_task("GCN-RL", 4, 1);
  cyc_b.label = "cyc-b";
  cyc_b.load_checkpoint = "cyc-ckpt";
  EXPECT_THROW(api::run_tasks({cyc_a, cyc_b}, tiny_options()),
               std::invalid_argument);
}

// seed_base/seed_stride reproduce the canonical ladder when set to its
// values, and a per-task index_mode override equals the global option.
TEST(RunTasks, SeedAndIndexModeOverrides) {
  const api::TaskSpec plain = synthetic_task("GCN-RL", 5, 2);
  api::TaskSpec laddered = synthetic_task("GCN-RL", 5, 2);
  laddered.seed_base = api::seed_of(0);
  laddered.seed_stride = api::seed_of(1) - api::seed_of(0);
  const auto a = api::run_tasks({plain}, tiny_options());
  const auto b = api::run_tasks({laddered}, tiny_options());
  EXPECT_EQ(a[0].best, b[0].best);
  for (std::size_t s = 0; s < a[0].runs.size(); ++s) {
    EXPECT_EQ(a[0].runs[s].best_trace, b[0].runs[s].best_trace);
  }
  // A different base diverges (the ladder is real, not decorative).
  api::TaskSpec shifted = synthetic_task("GCN-RL", 5, 2);
  shifted.seed_base = api::seed_of(0) + 1;
  const auto c = api::run_tasks({shifted}, tiny_options());
  EXPECT_NE(a[0].runs[0].best_trace, c[0].runs[0].best_trace);

  api::TaskSpec scalar_task = synthetic_task("GCN-RL", 5, 1);
  scalar_task.index_mode = env::IndexMode::Scalar;
  const auto via_override = api::run_tasks({scalar_task}, tiny_options());
  auto scalar_opts = tiny_options();
  scalar_opts.mode = env::IndexMode::Scalar;
  const auto via_option =
      api::run_tasks({synthetic_task("GCN-RL", 5, 1)}, scalar_opts);
  EXPECT_EQ(via_override[0].runs[0].best_trace,
            via_option[0].runs[0].best_trace);
}

// ---------------------------------------------------------------------------
// Spec-file parser
// ---------------------------------------------------------------------------

TEST(SpecParser, BindsAllFields) {
  const std::string text = R"({
    "options": {"calib": 64, "calib_seed": 7, "mode": "scalar"},
    "tasks": [
      {"circuit": "Two-TIA", "method": "ES", "steps": 12, "warmup": 6,
       "seeds": 3, "node": "65nm", "sim_budget": 40, "label": "es-65"},
      {"circuit": "LDO", "method": "GCN-RL"}
    ]
  })";
  const api::TaskFile f = api::parse_task_spec(text);
  EXPECT_EQ(f.options.calib_samples, 64);
  EXPECT_EQ(f.options.calib_seed, 7u);
  EXPECT_EQ(f.options.mode, env::IndexMode::Scalar);
  ASSERT_EQ(f.tasks.size(), 2u);
  EXPECT_EQ(f.tasks[0].circuit, "Two-TIA");
  EXPECT_EQ(f.tasks[0].method, "ES");
  EXPECT_EQ(f.tasks[0].steps, 12);
  EXPECT_EQ(f.tasks[0].warmup, 6);
  EXPECT_EQ(f.tasks[0].seeds, 3);
  EXPECT_EQ(f.tasks[0].node, "65nm");
  EXPECT_EQ(f.tasks[0].sim_budget, 40);
  EXPECT_EQ(f.tasks[0].label, "es-65");
  // Defaults on the second task.
  EXPECT_EQ(f.tasks[1].node, "180nm");
  EXPECT_EQ(f.tasks[1].steps, 300);
  EXPECT_EQ(f.tasks[1].seeds, 1);
}

TEST(SpecParser, BindsTransferFields) {
  const api::TaskFile f = api::parse_task_spec(R"({
    "tasks": [
      {"circuit": "Two-TIA", "method": "GCN-RL", "label": "pre",
       "save_checkpoint": "two-tia-pre", "mode": "scalar",
       "calib_group": "dir1", "seed_base": 500, "seed_stride": 31},
      {"circuit": "Three-TIA", "method": "GCN-RL", "pretrain_from": "pre"},
      {"circuit": "Two-TIA", "method": "GCN-RL",
       "load_checkpoint": "two-tia-pre"}
    ]
  })");
  ASSERT_EQ(f.tasks.size(), 3u);
  EXPECT_EQ(f.tasks[0].save_checkpoint, "two-tia-pre");
  ASSERT_TRUE(f.tasks[0].index_mode.has_value());
  EXPECT_EQ(*f.tasks[0].index_mode, env::IndexMode::Scalar);
  EXPECT_EQ(f.tasks[0].calib_group, "dir1");
  ASSERT_TRUE(f.tasks[0].seed_base.has_value());
  EXPECT_EQ(*f.tasks[0].seed_base, 500u);
  EXPECT_EQ(f.tasks[0].seed_stride, 31u);
  EXPECT_EQ(f.tasks[1].pretrain_from, "pre");
  EXPECT_FALSE(f.tasks[1].index_mode.has_value());
  EXPECT_FALSE(f.tasks[1].seed_base.has_value());
  EXPECT_EQ(f.tasks[2].load_checkpoint, "two-tia-pre");

  EXPECT_THROW(api::parse_task_spec(
                   R"({"tasks": [{"circuit": "LDO", "method": "GCN-RL",
                       "seed_base": -1}]})"),
               std::runtime_error);  // negative seed
  EXPECT_THROW(api::parse_task_spec(
                   R"({"tasks": [{"circuit": "LDO", "method": "GCN-RL",
                       "mode": "bogus"}]})"),
               std::runtime_error);  // unknown index mode
}

TEST(SpecParser, RejectsUnknownAndMalformedInput) {
  // Unknown keys fail loudly rather than being ignored.
  EXPECT_THROW(api::parse_task_spec(
                   R"({"tasks": [{"circuit": "LDO", "method": "ES",
                       "stepz": 3}]})"),
               std::runtime_error);
  EXPECT_THROW(
      api::parse_task_spec(R"({"tasks": [{"circuit": "LDO"}]})"),
      std::runtime_error);  // missing method
  EXPECT_THROW(api::parse_task_spec(R"({"tasks": []})"),
               std::runtime_error);  // empty task list
  EXPECT_THROW(api::parse_task_spec(R"({"taskz": []})"),
               std::runtime_error);  // unknown top-level key
  EXPECT_THROW(api::parse_task_spec(
                   R"({"tasks": [{"circuit": "LDO", "method": "ES",
                       "steps": "many"}]})"),
               std::runtime_error);  // wrong type
  EXPECT_THROW(api::parse_task_spec(
                   R"({"tasks": [{"circuit": "LDO", "method": "ES",
                       "steps": 1.5}]})"),
               std::runtime_error);  // fractional integer
  EXPECT_THROW(api::parse_task_spec(
                   R"({"tasks": [{"circuit": "LDO", "method": "ES",
                       "steps": 4294967297}]})"),
               std::runtime_error);  // beyond int range, must not wrap
  EXPECT_THROW(api::parse_task_spec(
                   R"({"options": {"calib_seed": -1},
                       "tasks": [{"circuit": "LDO", "method": "ES"}]})"),
               std::runtime_error);  // negative seed
  EXPECT_THROW(api::parse_task_spec("{\"tasks\": ["),
               std::runtime_error);  // truncated JSON
  EXPECT_THROW(api::parse_task_spec(
                   R"({"tasks": [{"circuit": "A", "circuit": "B",
                       "method": "ES"}]})"),
               std::runtime_error);  // duplicate key
}

TEST(SpecParser, ReportsPositions) {
  try {
    api::parse_task_spec("{\n  \"tasks\": oops\n}");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos)
        << e.what();
  }
}

// The shipped example specs stay parseable (they are CI's smoke input).
TEST(SpecParser, ShippedSpecsParse) {
  for (const char* path : {"/specs/smoke.json", "/specs/custom.json",
                           "/specs/transfer.json",
                           "/specs/file_transfer.json"}) {
    const api::TaskFile f =
        api::load_task_spec(std::string(GCNRL_SOURCE_DIR) + path);
    EXPECT_FALSE(f.tasks.empty()) << path;
    for (const api::TaskSpec& t : f.tasks) {
      EXPECT_TRUE(api::method_registered(t.method)) << t.method;
    }
  }
}

TEST(SpecParser, MissingFileThrows) {
  EXPECT_THROW(api::load_task_spec("/no/such/spec.json"),
               std::runtime_error);
}


// ---------------------------------------------------------------------------
// File-circuit registration (.gcir)
// ---------------------------------------------------------------------------

std::string shipped(const char* rel) {
  return std::string(GCNRL_SOURCE_DIR) + rel;
}

std::string write_temp_gcir(const char* filename, const std::string& body) {
  const std::string path =
      (std::filesystem::temp_directory_path() / filename).string();
  std::ofstream f(path);
  f << body;
  return path;
}

TEST(CircuitRegistry, FileCircuitRegistersIdempotently) {
  const std::string path = shipped("/specs/circuits/two_tia.gcir");
  const std::string name = api::register_circuit_file(path);
  EXPECT_EQ(name, "Two-TIA-gcir");
  EXPECT_TRUE(api::circuit_registered(name));
  // Re-registering identical content is a no-op, not a collision — spec
  // files, --circuit flags and repeat passes may all name the same file.
  EXPECT_EQ(api::register_circuit_file(path), name);
  // File circuits carry a content fingerprint; C++ builders carry none.
  EXPECT_EQ(api::circuit_source_tag(name).rfind("gcir:", 0), 0u);
  EXPECT_EQ(api::circuit_source_tag("Two-TIA"), "");
  EXPECT_THROW(api::circuit_source_tag("no-such-circuit"),
               std::invalid_argument);
  // Builds like a built-in, on any node.
  const auto bc =
      api::build_circuit(name, circuit::make_technology("65nm"));
  EXPECT_EQ(bc.name, name);
  EXPECT_GT(bc.netlist.num_design_components(), 5);
}

TEST(CircuitRegistry, FileCircuitCollisionsFailLoudly) {
  const char* tiny_body_fmt =
      "supply vdd\nnet a\n"
      "vsource V a 0 dc=%s\n"
      "nmos M1 a a 0 0 w=1u l=lmin m=1\n"
      "metric g unit=x weight=1\nbench b\nac b 1k 1M 3\n"
      "extract g dc_gain bench=b probe=a\n";
  char body[512];
  std::snprintf(body, sizeof(body), tiny_body_fmt, "1");

  // A declared name owned by a C++ builder.
  const std::string clash = write_temp_gcir(
      "gcnrl_clash.gcir", std::string("circuit Two-TIA\n") + body);
  EXPECT_THROW(api::register_circuit_file(clash), std::invalid_argument);

  // Same declared name, different content: also a collision.
  const std::string first = write_temp_gcir(
      "gcnrl_dup_a.gcir", std::string("circuit Dup-Check\n") + body);
  EXPECT_EQ(api::register_circuit_file(first), "Dup-Check");
  std::snprintf(body, sizeof(body), tiny_body_fmt, "2");
  const std::string second = write_temp_gcir(
      "gcnrl_dup_b.gcir", std::string("circuit Dup-Check\n") + body);
  EXPECT_THROW(api::register_circuit_file(second), std::invalid_argument);

  // Unreadable path and malformed content fail with context.
  EXPECT_THROW(api::register_circuit_file("/no/such/file.gcir"),
               std::invalid_argument);
  const std::string broken =
      write_temp_gcir("gcnrl_broken.gcir", "circuit X\nfrobnicate\n");
  EXPECT_THROW(api::register_circuit_file(broken), std::runtime_error);
}

TEST(SpecParser, BindsCircuitFileAndResolvesRelativePaths) {
  const api::TaskFile f = api::parse_task_spec(R"({"tasks": [
    {"circuit_file": "circuits/two_tia.gcir", "method": "GCN-RL"}]})");
  ASSERT_EQ(f.tasks.size(), 1u);
  EXPECT_EQ(f.tasks[0].circuit_file, "circuits/two_tia.gcir");
  EXPECT_TRUE(f.tasks[0].circuit.empty());
  // A task needs "circuit" or "circuit_file".
  EXPECT_THROW(api::parse_task_spec(R"({"tasks": [{"method": "ES"}]})"),
               std::runtime_error);
  // load_task_spec resolves relative circuit_file paths against the spec
  // file's directory, so shipped specs work from any cwd.
  const api::TaskFile shipped_spec =
      api::load_task_spec(shipped("/specs/file_transfer.json"));
  ASSERT_FALSE(shipped_spec.tasks.empty());
  EXPECT_EQ(shipped_spec.tasks[0].circuit_file,
            shipped("/specs/circuits/two_tia.gcir"));
}

// The ISSUE's transfer chain in miniature: pretrain on a file-loaded
// circuit, transfer to a (cheap, built-in-style) registered circuit under
// scalar indexing, and require thread-count invariance of every byte.
TEST(RunTasks, FileCircuitTopologyTransferIsThreadInvariant) {
  api::TaskSpec pre;
  pre.circuit_file = shipped("/specs/circuits/two_tia.gcir");
  pre.method = "GCN-RL";
  pre.steps = 5;
  pre.warmup = 2;
  pre.seeds = 1;
  pre.label = "pre-file";
  pre.index_mode = env::IndexMode::Scalar;
  api::TaskSpec post = synthetic_task("GCN-RL", 5, 1);
  post.warmup = 2;
  post.index_mode = env::IndexMode::Scalar;
  post.pretrain_from = "pre-file";

  const auto serial = api::run_tasks({pre, post}, tiny_options(1));
  const auto pooled = api::run_tasks({pre, post}, tiny_options(4));
  ASSERT_EQ(serial.size(), 2u);
  // The declared name replaced the empty circuit tag during validation.
  EXPECT_EQ(serial[0].spec.circuit, "Two-TIA-gcir");
  ASSERT_EQ(pooled.size(), 2u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].best, pooled[i].best);
    EXPECT_EQ(serial[i].sims, pooled[i].sims);
    for (std::size_t s = 0; s < serial[i].runs.size(); ++s) {
      EXPECT_EQ(serial[i].runs[s].best_trace, pooled[i].runs[s].best_trace);
    }
  }
}

TEST(RunTasks, CircuitFileNameMismatchFailsLoudly) {
  api::TaskSpec t;
  t.circuit = "Two-TIA";  // declared name is Two-TIA-gcir
  t.circuit_file = shipped("/specs/circuits/two_tia.gcir");
  t.method = "Human";
  t.steps = 1;
  EXPECT_THROW(api::run_tasks({t}, tiny_options()), std::invalid_argument);
}

}  // namespace
