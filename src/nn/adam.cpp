#include "nn/adam.hpp"

#include <cmath>

namespace gcnrl::nn {

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  state_.reserve(params_.size());
  for (Parameter* p : params_) {
    state_.push_back(State{la::Mat(p->value.rows(), p->value.cols()),
                           la::Mat(p->value.rows(), p->value.cols())});
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    State& s = state_[i];
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double g = p->grad(r, c);
        s.m(r, c) = beta1_ * s.m(r, c) + (1.0 - beta1_) * g;
        s.v(r, c) = beta2_ * s.v(r, c) + (1.0 - beta2_) * g * g;
        const double m_hat = s.m(r, c) / bc1;
        const double v_hat = s.v(r, c) / bc2;
        p->value(r, c) -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
      }
    }
  }
}

}  // namespace gcnrl::nn
