// Tests for netlist construction, topology-graph extraction, the
// technology library and design-space refinement.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "circuit/analyze.hpp"
#include "circuit/design_space.hpp"
#include "circuit/expr.hpp"
#include "circuit/gcir.hpp"
#include "circuit/graph.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tech.hpp"
#include "common/rng.hpp"

namespace circuit = gcnrl::circuit;
namespace la = gcnrl::la;
using circuit::Kind;
using gcnrl::Rng;

namespace {

// A little 2-transistor + R + C test circuit:
//   vdd supply; M1 NMOS (drain n1, gate nin), M2 PMOS load (drain n1),
//   R1 from n1 to nout, C1 from nout to ground.
circuit::Netlist tiny_netlist() {
  circuit::Netlist nl;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int nin = nl.node("nin");
  const int n1 = nl.node("n1");
  const int nout = nl.node("nout");
  nl.add_vsource("vsup", vdd, 0, 1.8);
  nl.add_nmos("M1", n1, nin, 0, 0, 2e-6, 0.2e-6);
  nl.add_pmos("M2", n1, nin, vdd, vdd, 4e-6, 0.2e-6);
  nl.add_resistor("R1", n1, nout, 1e4);
  nl.add_capacitor("C1", nout, 0, 1e-12);
  return nl;
}

}  // namespace

TEST(Netlist, GroundAliases) {
  circuit::Netlist nl;
  EXPECT_EQ(nl.node("0"), 0);
  EXPECT_EQ(nl.node("gnd"), 0);
  EXPECT_EQ(nl.node("vss"), 0);
  EXPECT_TRUE(nl.is_supply(0));
}

TEST(Netlist, NodeDeduplication) {
  circuit::Netlist nl;
  const int a = nl.node("x");
  const int b = nl.node("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(nl.num_nodes(), 2);  // ground + x
  EXPECT_FALSE(nl.find_node("missing").has_value());
  EXPECT_TRUE(nl.find_node("x").has_value());
}

TEST(Netlist, DesignComponentOrderAndKinds) {
  circuit::Netlist nl = tiny_netlist();
  ASSERT_EQ(nl.num_design_components(), 4);
  EXPECT_EQ(nl.design_kind(0), Kind::Nmos);
  EXPECT_EQ(nl.design_kind(1), Kind::Pmos);
  EXPECT_EQ(nl.design_kind(2), Kind::Resistor);
  EXPECT_EQ(nl.design_kind(3), Kind::Capacitor);
  EXPECT_EQ(nl.find_design("R1"), 2);
  EXPECT_EQ(nl.find_design("nope"), -1);
}

TEST(Netlist, NonDesignableExcluded) {
  circuit::Netlist nl;
  nl.add_resistor("Rfixed", nl.node("a"), 0, 1e3, /*designable=*/false);
  EXPECT_EQ(nl.num_design_components(), 0);
  EXPECT_EQ(nl.resistors().size(), 1u);
}

TEST(Netlist, SetDesignParams) {
  circuit::Netlist nl = tiny_netlist();
  nl.set_design_params(0, {5e-6, 0.5e-6, 3.0});
  EXPECT_DOUBLE_EQ(nl.mosfets()[0].w, 5e-6);
  EXPECT_DOUBLE_EQ(nl.mosfets()[0].l, 0.5e-6);
  EXPECT_EQ(nl.mosfets()[0].m, 3);
  nl.set_design_params(2, {4.7e3, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(nl.resistors()[0].r, 4.7e3);
  const auto back = nl.design_params(0);
  EXPECT_DOUBLE_EQ(back[0], 5e-6);
}

TEST(Pwl, InterpolationAndEdges) {
  circuit::Pwl pwl{{{1.0, 0.0}, {2.0, 10.0}}};
  EXPECT_DOUBLE_EQ(pwl.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pwl.at(1.5), 5.0);
  EXPECT_DOUBLE_EQ(pwl.at(3.0), 10.0);
}

TEST(Graph, AdjacencyExcludesSupply) {
  circuit::Netlist nl = tiny_netlist();
  const la::Mat a = circuit::build_adjacency(nl);
  ASSERT_EQ(a.rows(), 4);
  // M1-M2 share n1 and nin; M1/M2-R1 share n1; R1-C1 share nout.
  EXPECT_EQ(a(0, 1), 1.0);
  EXPECT_EQ(a(0, 2), 1.0);
  EXPECT_EQ(a(1, 2), 1.0);
  EXPECT_EQ(a(2, 3), 1.0);
  // M1/M2 do not touch C1 except through R1.
  EXPECT_EQ(a(0, 3), 0.0);
  EXPECT_EQ(a(1, 3), 0.0);
  // No self loops; symmetric.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a(i, i), 0.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ(a(i, j), a(j, i));
  }
}

TEST(Graph, SupplyInclusionFlag) {
  circuit::Netlist nl = tiny_netlist();
  const la::Mat with_supply =
      circuit::build_adjacency(nl, /*exclude_supply_nets=*/false);
  // Including ground connects C1 to M1 (both touch ground).
  EXPECT_EQ(with_supply(0, 3), 1.0);
}

TEST(Graph, ConnectivityAndDiameter) {
  circuit::Netlist nl = tiny_netlist();
  const la::Mat a = circuit::build_adjacency(nl);
  EXPECT_EQ(circuit::connected_components(a), 1);
  EXPECT_EQ(circuit::graph_diameter(a), 2);  // M1 .. C1 via R1
  // Empty graph: every vertex its own component.
  la::Mat empty(3, 3);
  EXPECT_EQ(circuit::connected_components(empty), 3);
}

TEST(Tech, AllNodesConstruct) {
  for (const auto& name : circuit::available_nodes()) {
    const circuit::Technology t = circuit::make_technology(name);
    EXPECT_EQ(t.name, name);
    EXPECT_GT(t.vdd, 0.0);
    EXPECT_GT(t.cox, 0.0);
    EXPECT_LT(t.lmin, t.lmax);
    EXPECT_LT(t.wmin, t.wmax);
  }
  EXPECT_THROW(circuit::make_technology("7nm"), std::invalid_argument);
}

TEST(Tech, ScalingTrendsAcrossNodes) {
  const auto t250 = circuit::make_technology("250nm");
  const auto t45 = circuit::make_technology("45nm");
  EXPECT_GT(t250.vdd, t45.vdd);
  EXPECT_GT(t250.vth0_n, t45.vth0_n);
  EXPECT_LT(t250.cox, t45.cox);  // thinner oxide -> higher Cox
  EXPECT_GT(t250.lmin, t45.lmin);
}

TEST(Tech, ModelFeaturesPerKind) {
  const auto t = circuit::make_technology("180nm");
  const auto fn = t.model_features(Kind::Nmos);
  const auto fp = t.model_features(Kind::Pmos);
  const auto fr = t.model_features(Kind::Resistor);
  EXPECT_GT(fn[1], 0.0);  // NMOS vth positive
  EXPECT_LT(fp[1], 0.0);  // PMOS feature sign-flipped
  for (double v : fr) EXPECT_EQ(v, 0.0);
}

TEST(ParamRange, DenormalizeEndpointsAndMid) {
  circuit::ParamRange lin{0.0, 10.0, false, 0.0, false};
  EXPECT_DOUBLE_EQ(lin.denormalize(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(lin.denormalize(1.0), 10.0);
  EXPECT_DOUBLE_EQ(lin.denormalize(0.0), 5.0);
  circuit::ParamRange log{1.0, 100.0, true, 0.0, false};
  EXPECT_DOUBLE_EQ(log.denormalize(-1.0), 1.0);
  EXPECT_NEAR(log.denormalize(0.0), 10.0, 1e-12);
  EXPECT_NEAR(log.denormalize(1.0), 100.0, 1e-9);
}

TEST(ParamRange, NormalizeIsInverse) {
  circuit::ParamRange log{2.0, 2000.0, true, 0.0, false};
  for (double a : {-1.0, -0.3, 0.0, 0.7, 1.0}) {
    EXPECT_NEAR(log.normalize(log.denormalize(a)), a, 1e-9);
  }
}

TEST(ParamRange, RefineQuantizes) {
  circuit::ParamRange grid{0.0, 1.0, false, 0.25, false};
  EXPECT_DOUBLE_EQ(grid.refine_value(0.30), 0.25);
  EXPECT_DOUBLE_EQ(grid.refine_value(0.40), 0.50);
  EXPECT_DOUBLE_EQ(grid.refine_value(2.0), 1.0);  // clamped
  circuit::ParamRange integer{1.0, 8.0, false, 0.0, true};
  EXPECT_DOUBLE_EQ(integer.refine_value(3.4), 3.0);
  EXPECT_DOUBLE_EQ(integer.refine_value(0.2), 1.0);
}

TEST(DesignSpace, FromNetlistShapes) {
  circuit::Netlist nl = tiny_netlist();
  const auto tech = circuit::make_technology("180nm");
  const auto ds = circuit::DesignSpace::from_netlist(nl, tech);
  EXPECT_EQ(ds.num_components(), 4);
  EXPECT_EQ(ds.flat_dim(), 3 + 3 + 1 + 1);
}

TEST(DesignSpace, RefineRespectsBoundsAndGrid) {
  circuit::Netlist nl = tiny_netlist();
  const auto tech = circuit::make_technology("180nm");
  const auto ds = circuit::DesignSpace::from_netlist(nl, tech);
  Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const la::Mat a = ds.random_actions(rng);
    const auto p = ds.refine(a);
    for (int i = 0; i < ds.num_components(); ++i) {
      for (int d = 0; d < ds.comp(i).nparams(); ++d) {
        const auto& pr = ds.comp(i).p[d];
        EXPECT_GE(p.v[i][d], pr.lo - 1e-15);
        EXPECT_LE(p.v[i][d], pr.hi + 1e-15);
        if (pr.grid > 0.0) {
          const double steps = p.v[i][d] / pr.grid;
          EXPECT_NEAR(steps, std::round(steps), 1e-6);
        }
        if (pr.integer) {
          EXPECT_NEAR(p.v[i][d], std::round(p.v[i][d]), 1e-12);
        }
      }
    }
  }
}

TEST(DesignSpace, MatchGroupsForceEquality) {
  circuit::Netlist nl;
  const int n1 = nl.node("n1");
  const int n2 = nl.node("n2");
  nl.add_nmos("Ma", n1, n2, 0, 0, 1e-6, 1e-6);
  nl.add_nmos("Mb", n2, n1, 0, 0, 1e-6, 1e-6);
  nl.add_nmos("Mc", n1, n1, 0, 0, 1e-6, 1e-6);
  const auto tech = circuit::make_technology("180nm");
  auto ds = circuit::DesignSpace::from_netlist(nl, tech);
  ds.add_match_group(nl, {"Ma", "Mb"});           // full match
  ds.add_match_group(nl, {"Mb", "Mc"}, true);     // L-only
  Rng rng(11);
  const la::Mat a = ds.random_actions(rng);
  const auto p = ds.refine(a);
  EXPECT_DOUBLE_EQ(p.v[0][0], p.v[1][0]);  // W matched
  EXPECT_DOUBLE_EQ(p.v[0][1], p.v[1][1]);  // L matched
  EXPECT_DOUBLE_EQ(p.v[0][2], p.v[1][2]);  // M matched
  EXPECT_DOUBLE_EQ(p.v[1][1], p.v[2][1]);  // L chained via group 2
  EXPECT_THROW(ds.add_match_group(nl, {"Ma", "nothere"}),
               std::invalid_argument);
}

TEST(DesignSpace, FlattenUnflattenRoundTrip) {
  circuit::Netlist nl = tiny_netlist();
  const auto tech = circuit::make_technology("180nm");
  const auto ds = circuit::DesignSpace::from_netlist(nl, tech);
  Rng rng(12);
  const la::Mat a = ds.random_actions(rng);
  const auto flat = ds.flatten(a);
  EXPECT_EQ(static_cast<int>(flat.size()), ds.flat_dim());
  const la::Mat back = ds.unflatten(flat);
  for (int i = 0; i < a.rows(); ++i) {
    for (int d = 0; d < ds.comp(i).nparams(); ++d) {
      EXPECT_DOUBLE_EQ(a(i, d), back(i, d));
    }
  }
}

TEST(DesignSpace, ActionsFromParamsInverse) {
  circuit::Netlist nl = tiny_netlist();
  const auto tech = circuit::make_technology("180nm");
  const auto ds = circuit::DesignSpace::from_netlist(nl, tech);
  Rng rng(13);
  const la::Mat a = ds.random_actions(rng);
  const auto p = ds.refine(a);
  const la::Mat a2 = ds.actions_from_params(p);
  const auto p2 = ds.refine(a2);
  for (std::size_t i = 0; i < p.v.size(); ++i) {
    for (int d = 0; d < ds.comp(static_cast<int>(i)).nparams(); ++d) {
      // Round-trip through normalized space must be grid-stable.
      EXPECT_NEAR(p.v[i][d], p2.v[i][d],
                  1e-6 * std::max(1.0, std::fabs(p.v[i][d])));
    }
  }
}

TEST(DesignSpace, ApplyWritesNetlist) {
  circuit::Netlist nl = tiny_netlist();
  const auto tech = circuit::make_technology("180nm");
  const auto ds = circuit::DesignSpace::from_netlist(nl, tech);
  Rng rng(14);
  const auto p = ds.refine(ds.random_actions(rng));
  ds.apply(nl, p);
  EXPECT_DOUBLE_EQ(nl.mosfets()[0].w, p.v[0][0]);
  EXPECT_DOUBLE_EQ(nl.resistors()[0].r, p.v[2][0]);
  EXPECT_DOUBLE_EQ(nl.capacitors()[0].c, p.v[3][0]);
}

// --- source lookup / Pwl edge cases ---------------------------------------

TEST(Netlist, FindSourcesHitAndMiss) {
  circuit::Netlist nl = tiny_netlist();
  nl.add_isource("ib", nl.node("vdd"), nl.node("n1"), 10e-6);
  ASSERT_NE(nl.find_vsource("vsup"), nullptr);
  EXPECT_DOUBLE_EQ(nl.find_vsource("vsup")->dc, 1.8);
  ASSERT_NE(nl.find_isource("ib"), nullptr);
  EXPECT_DOUBLE_EQ(nl.find_isource("ib")->dc, 10e-6);
  // Misses return null rather than throwing — and never cross kinds.
  EXPECT_EQ(nl.find_vsource("nope"), nullptr);
  EXPECT_EQ(nl.find_isource("nope"), nullptr);
  EXPECT_EQ(nl.find_vsource("ib"), nullptr);
  EXPECT_EQ(nl.find_isource("vsup"), nullptr);
}

TEST(Pwl, SinglePointHoldsEverywhere) {
  circuit::Pwl pwl{{{1.0, 5.0}}};
  EXPECT_DOUBLE_EQ(pwl.at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(pwl.at(1.0), 5.0);
  EXPECT_DOUBLE_EQ(pwl.at(42.0), 5.0);
}

// --- sizing expressions ----------------------------------------------------

TEST(Expr, SiSuffixesAreBitExact) {
  const auto tech = circuit::make_technology("180nm");
  // Suffix expansion is textual ("50u" -> strtod("50e-6")), so literals
  // must equal the same C++ source literal bit for bit.
  EXPECT_EQ(circuit::Expr::parse("50u").eval(tech), 50e-6);
  EXPECT_EQ(circuit::Expr::parse("100G").eval(tech), 1e11);
  EXPECT_EQ(circuit::Expr::parse("18m").eval(tech), 18e-3);
  EXPECT_EQ(circuit::Expr::parse("200p").eval(tech), 200e-12);
  EXPECT_EQ(circuit::Expr::parse("100f").eval(tech), 100e-15);
  EXPECT_EQ(circuit::Expr::parse("-0.5").eval(tech), -0.5);
}

TEST(Expr, SymbolsAndPrecedenceMatchBuilders) {
  const auto tech = circuit::make_technology("65nm");
  EXPECT_EQ(circuit::Expr::parse("vdd").eval(tech), tech.vdd);
  EXPECT_EQ(circuit::Expr::parse("2*lmin").eval(tech), 2 * tech.lmin);
  // The exact multiply/divide sequence of `50e-6 * (tech.vdd / 1.8)`.
  EXPECT_EQ(circuit::Expr::parse("50u*(vdd/1.8)").eval(tech),
            50e-6 * (tech.vdd / 1.8));
  // Left-associativity: a-b+c, not a-(b+c).
  EXPECT_EQ(circuit::Expr::parse("4-2+1").eval(tech), 3.0);
}

TEST(Expr, MalformedInputsThrowWithOffset) {
  EXPECT_THROW(circuit::Expr::parse(""), std::invalid_argument);
  EXPECT_THROW(circuit::Expr::parse("2*"), std::invalid_argument);
  EXPECT_THROW(circuit::Expr::parse("(1+2"), std::invalid_argument);
  EXPECT_THROW(circuit::Expr::parse("bogus"), std::invalid_argument);
  try {
    circuit::Expr::parse("1+@");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("offset 2"), std::string::npos)
        << e.what();
  }
}

// --- .gcir parser ----------------------------------------------------------

namespace {

// A minimal valid description used as the mutation base below.
const char* kTinyGcir =
    "circuit Tiny\n"
    "supply vdd\n"
    "net a out\n"
    "vsource VDD vdd 0 dc=vdd\n"
    "vsource VIN a 0 dc=0.5 ac=1\n"
    "nmos M1 out a 0 0 w=10u l=lmin m=1\n"
    "resistor RL out vdd r=10k\n"
    "metric gain unit=V/V weight=1 log\n"
    "bench main\n"
    "ac main 1k 1G 11\n"
    "extract gain dc_gain bench=main probe=out\n";

// Parses `text` expecting failure; asserts the diagnostic carries the
// given "line:column" position and message fragment.
void expect_gcir_error(const std::string& text, const std::string& pos,
                       const std::string& fragment) {
  try {
    circuit::parse_gcir(text);
    FAIL() << "expected parse error (" << fragment << ")";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("<string>:" + pos), std::string::npos) << what;
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
  }
}

}  // namespace

TEST(Gcir, ParsesMinimalDescription) {
  const circuit::CircuitDescription d = circuit::parse_gcir(kTinyGcir);
  EXPECT_EQ(d.name, "Tiny");
  ASSERT_EQ(d.nets.size(), 3u);  // vdd, a, out (ground is implicit)
  EXPECT_EQ(d.sources.size(), 2u);
  EXPECT_EQ(d.devices.size(), 2u);
  ASSERT_EQ(d.metrics.size(), 1u);
  EXPECT_EQ(d.metrics[0].unit, "V/V");
  EXPECT_TRUE(d.metrics[0].log_norm);
  ASSERT_EQ(d.benches.size(), 1u);
  ASSERT_TRUE(d.benches[0].ac.has_value());
  EXPECT_EQ(d.benches[0].ac->npoints, 11);
  ASSERT_EQ(d.extracts.size(), 1u);
  EXPECT_EQ(d.extracts[0].fn, circuit::ExtractFn::DcGain);
}

TEST(Gcir, DiagnosticsCarryLineAndColumn) {
  // Line 1 must open with the circuit directive.
  expect_gcir_error("net a\ncircuit X\n", "1:1", "first directive");
  // Unknown directive, with position at the directive token.
  expect_gcir_error("circuit X\nfrobnicate a b\n", "2:1",
                    "unknown directive \"frobnicate\"");
  // Undeclared net in a device line: position of the net token.
  expect_gcir_error(
      "circuit X\nsupply vdd\nnmos M1 out g 0 0 w=1u l=lmin m=1\n", "3:9",
      "undeclared net \"out\"");
  // Malformed expression inside a key=value: the column lands on the
  // offending character inside the value, not the token start.
  expect_gcir_error(
      "circuit X\nsupply vdd\nnet a\nvsource V a 0 dc=1++2\n", "4:20",
      "unexpected character '+'");
  // Unknown key lists the known set.
  expect_gcir_error(std::string(kTinyGcir) + "tran main tstep=1u dt=1n\n",
                    "12:11", "known: tstop, dt");
}

TEST(Gcir, WholeFileInvariantsFailLoudly) {
  // Duplicate metric.
  expect_gcir_error(std::string(kTinyGcir) +
                        "metric gain unit=V/V weight=1\n",
                    "12:8", "duplicate metric");
  // warm= must reference an earlier bench.
  expect_gcir_error(std::string(kTinyGcir) + "warm main from=main\n",
                    "12:11", "earlier bench");
}

// The whole-file semantic invariants (unproduced metrics, partial expert
// sizing) moved from the parser to circuit::analyze_circuit; they now
// parse fine and come back as positioned analyzer errors instead
// (test_analyze.cpp pins the full catalog — this guards the handoff).
TEST(Gcir, MovedInvariantsSurfaceAsAnalyzerErrors) {
  const circuit::Technology tech = circuit::make_technology("180nm");
  {
    const circuit::CircuitDescription d = circuit::parse_gcir(
        "circuit X\nsupply vdd\nnet a\n"
        "vsource V a 0 dc=1\n"
        "nmos M1 a a 0 0 w=1u l=lmin m=1\n"
        "metric gain unit=V/V weight=1\n");
    bool found = false;
    for (const circuit::Diagnostic& diag :
         circuit::analyze_circuit(d, tech)) {
      found = found || (diag.check == "plan.metric-unproduced" &&
                        diag.line == 6 && diag.col == 1);
    }
    EXPECT_TRUE(found);
  }
  {
    const circuit::CircuitDescription d = circuit::parse_gcir(
        std::string(kTinyGcir) + "expert M1 10u lmin 1\n");
    bool found = false;
    for (const circuit::Diagnostic& diag :
         circuit::analyze_circuit(d, tech)) {
      found = found || (diag.check == "sizing.expert-incomplete" &&
                        diag.line == 7 && diag.col == 1);
    }
    EXPECT_TRUE(found);
  }
}
