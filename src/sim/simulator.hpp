// Simulator facade: the drop-in for Spectre/Hspice in the sizing loop.
//
// One Simulator instance wraps a *sized* netlist plus a technology node;
// analyses are lazily driven off the (cached) DC operating point. Circuit
// builders construct one Simulator per analysis configuration (closed
// loop, open loop, loop-gain injection, ...) because the configurations
// differ structurally, exactly as separate testbenches would in a real
// flow.
#pragma once

#include <optional>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/noise.hpp"
#include "sim/tran.hpp"

namespace gcnrl::sim {

class Simulator {
 public:
  Simulator(const circuit::Netlist& nl, const circuit::Technology& tech)
      : ctx_(nl, tech) {}

  // DC operating point (computed once, cached). Throws SimError.
  const OpPoint& op();
  // Re-solve with transient sources evaluated at t=0 (for tran ICs).
  OpPoint op_at_time_zero();

  AcResult ac(const std::vector<double>& freqs);
  NoiseResult noise(const std::vector<double>& freqs, int outp, int outn = 0);
  TranResult tran(const TranOptions& opt);

  // Power drawn from all supply-like voltage sources: sum of V * I_source
  // for sources delivering power (I out of + terminal, same sign as V).
  double supply_power();
  // Current delivered by a named voltage source (positive out of +).
  double source_current(const std::string& vsrc_name);

  [[nodiscard]] const SimContext& context() const { return ctx_; }

 private:
  SimContext ctx_;
  std::optional<OpPoint> op_;
};

}  // namespace gcnrl::sim
