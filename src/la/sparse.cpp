#include "la/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gcnrl::la {

namespace {

// conj(v) when requested and T is complex; identity otherwise. Kept a free
// function (not a lambda) so the real instantiation has no unused capture.
template <typename T>
inline T conj_if(const T& v, bool conjugate) {
  if constexpr (std::is_same_v<T, std::complex<double>>) {
    return conjugate ? std::conj(v) : v;
  } else {
    (void)conjugate;
    return v;
  }
}

// Lane-wide kernels for the blocked sweep, one call per factor/solve
// entry. Kept as standalone functions over restrict-qualified pointers:
// written inline inside the loop nests, GCC complete-unrolls the
// 8-iteration lane loops before the loop vectorizer runs and the
// straight-line remainder never gets SLP-vectorized; isolated like this
// each kernel compiles to packed vector code.
constexpr int kLanesK = 8;

// y -= a * b, complex, all lanes.
inline void lanes_cmulsub(double* __restrict yr, double* __restrict yi,
                          const double* __restrict ar,
                          const double* __restrict ai,
                          const double* __restrict br,
                          const double* __restrict bi) {
  for (int f = 0; f < kLanesK; ++f) {
    yr[f] -= ar[f] * br[f] - ai[f] * bi[f];
    yi[f] -= ar[f] * bi[f] + ai[f] * br[f];
  }
}

inline void lanes_zero(double* __restrict xr, double* __restrict xi) {
  for (int f = 0; f < kLanesK; ++f) {
    xr[f] = 0.0;
    xi[f] = 0.0;
  }
}

// x = g + j*w*c, all lanes.
inline void lanes_scatter(double* __restrict xr, double* __restrict xi,
                          double gr, const double* __restrict w, double cc) {
  for (int f = 0; f < kLanesK; ++f) {
    xr[f] = gr;
    xi[f] = w[f] * cc;
  }
}

// u = x and umax2 = max(umax2, |x|^2), all lanes.
inline void lanes_copy_max(double* __restrict ur, double* __restrict ui,
                           const double* __restrict xr,
                           const double* __restrict xi,
                           double* __restrict umax2) {
  for (int f = 0; f < kLanesK; ++f) {
    ur[f] = xr[f];
    ui[f] = xi[f];
    umax2[f] = std::max(umax2[f], ur[f] * ur[f] + ui[f] * ui[f]);
  }
}

// l = y * conj(d) * inv, all lanes (the L-column normalization).
inline void lanes_norm(double* __restrict lr, double* __restrict li,
                       const double* __restrict yr,
                       const double* __restrict yi,
                       const double* __restrict dr,
                       const double* __restrict di,
                       const double* __restrict inv) {
  for (int f = 0; f < kLanesK; ++f) {
    lr[f] = (yr[f] * dr[f] + yi[f] * di[f]) * inv[f];
    li[f] = (yi[f] * dr[f] - yr[f] * di[f]) * inv[f];
  }
}

// w = w / d (complex divide by the pivot), all lanes.
inline void lanes_pivdiv(double* __restrict wr, double* __restrict wi,
                         const double* __restrict dr,
                         const double* __restrict di) {
  for (int f = 0; f < kLanesK; ++f) {
    const double inv = 1.0 / (dr[f] * dr[f] + di[f] * di[f]);
    const double xr = (wr[f] * dr[f] + wi[f] * di[f]) * inv;
    const double xi = (wi[f] * dr[f] - wr[f] * di[f]) * inv;
    wr[f] = xr;
    wi[f] = xi;
  }
}

}  // namespace

int SparsePattern::slot(int r, int c) const {
  for (int e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
    if (col_idx[e] == c) return e;
  }
  return -1;
}

SparsePattern SparsePattern::from_coords(
    int n, std::vector<std::pair<int, int>> coords) {
  std::sort(coords.begin(), coords.end());
  coords.erase(std::unique(coords.begin(), coords.end()), coords.end());
  SparsePattern p;
  p.n = n;
  p.row_ptr.assign(static_cast<size_t>(n) + 1, 0);
  p.col_idx.reserve(coords.size());
  for (const auto& [r, c] : coords) {
    assert(r >= 0 && r < n && c >= 0 && c < n);
    ++p.row_ptr[static_cast<size_t>(r) + 1];
    p.col_idx.push_back(c);
  }
  for (int i = 0; i < n; ++i) p.row_ptr[i + 1] += p.row_ptr[i];
  return p;
}

template <typename T>
SparseLu<T>::SparseLu(const SparsePattern& pattern)
    : pat_(&pattern), n_(pattern.n) {
  // Column-compressed view of the CSR pattern: Gilbert-Peierls is a
  // column algorithm, but assembly fills the CSR value array, so each CSC
  // entry remembers its CSR slot.
  cptr_.assign(static_cast<size_t>(n_) + 1, 0);
  const int nnz = pattern.nnz();
  crow_.resize(nnz);
  cslot_.resize(nnz);
  for (int e = 0; e < nnz; ++e) ++cptr_[pattern.col_idx[e] + 1];
  for (int c = 0; c < n_; ++c) cptr_[c + 1] += cptr_[c];
  std::vector<int> next(cptr_.begin(), cptr_.end() - 1);
  for (int r = 0; r < n_; ++r) {
    for (int e = pattern.row_ptr[r]; e < pattern.row_ptr[r + 1]; ++e) {
      const int c = pattern.col_idx[e];
      crow_[next[c]] = r;
      cslot_[next[c]] = e;
      ++next[c];
    }
  }
  perm_r_.resize(n_);
  pinv_.assign(n_, -1);
  x_.assign(n_, T{});
  wk_.resize(n_);
  flag_.assign(n_, -1);
  stack_.resize(n_);
  istack_.resize(n_);
  reach_.reserve(n_);
}

// Nonrecursive DFS from the nonzero rows of A(:, j) through the columns of
// the partially-built L. Produces reach_ in postorder; traversing it in
// reverse gives a topological order of the column-j fill pattern, which is
// exactly the order the numeric elimination needs.
template <typename T>
void SparseLu<T>::reach(int j) {
  reach_.clear();
  for (int e = cptr_[j]; e < cptr_[j + 1]; ++e) {
    const int root = crow_[e];
    if (flag_[root] == j) continue;
    int head = 0;
    stack_[0] = root;
    while (head >= 0) {
      const int node = stack_[head];
      if (flag_[node] != j) {
        flag_[node] = j;
        istack_[head] = (pinv_[node] >= 0) ? lptr_[pinv_[node]] : 0;
      }
      bool descended = false;
      if (pinv_[node] >= 0) {
        const int end = lptr_[pinv_[node] + 1];
        int it = istack_[head];
        while (it < end) {
          const int child = lrow_[it];
          ++it;
          if (flag_[child] != j) {
            istack_[head] = it;
            ++head;
            stack_[head] = child;
            descended = true;
            break;
          }
        }
        if (!descended) istack_[head] = it;
      }
      if (!descended) {
        --head;
        reach_.push_back(node);
      }
    }
  }
}

template <typename T>
typename SparseLu<T>::Status SparseLu<T>::factor(const T* vals) {
  symbolic_ok_ = false;
  numeric_ok_ = false;
  std::fill(pinv_.begin(), pinv_.end(), -1);
  std::fill(flag_.begin(), flag_.end(), -1);
  std::fill(x_.begin(), x_.end(), T{});
  lptr_.assign(1, 0);
  lrow_.clear();
  lval_.clear();
  uptr_.assign(1, 0);
  upos_.clear();
  uval_.clear();
  udiag_.assign(n_, T{});
  double amax = 0.0;
  for (int e = 0; e < pat_->nnz(); ++e) amax = std::max(amax, mag(vals[e]));
  double umax = 0.0;

  for (int j = 0; j < n_; ++j) {
    reach(j);
    for (int e = cptr_[j]; e < cptr_[j + 1]; ++e) {
      x_[crow_[e]] = vals[cslot_[e]];
    }
    // Apply the updates of every already-pivoted column reached, in
    // topological order (reverse postorder of the DFS).
    for (int t = static_cast<int>(reach_.size()) - 1; t >= 0; --t) {
      const int i = reach_[t];
      const int k = pinv_[i];
      if (k < 0) continue;
      const T xi = x_[i];
      for (int e = lptr_[k]; e < lptr_[k + 1]; ++e) {
        x_[lrow_[e]] -= lval_[e] * xi;
      }
    }
    // Threshold partial pivoting with a diagonal preference: take the
    // natural (j, j) pivot whenever it is within kSparsePivotRel of the
    // column max. MNA patterns are structurally symmetric, so keeping
    // diagonal pivots preserves that symmetry and keeps fill low — the
    // role a Markowitz/AMD ordering would play at larger dimensions.
    int piv_row = -1;
    double piv_mag = -1.0;
    for (const int i : reach_) {
      if (pinv_[i] >= 0) continue;
      const double m = mag(x_[i]);
      if (m > piv_mag) {
        piv_mag = m;
        piv_row = i;
      }
    }
    if (piv_row < 0 || piv_mag < kSparsePivotAbs) {
      last_status_ = Status::Singular;
      return Status::Singular;
    }
    if (flag_[j] == j && pinv_[j] < 0) {
      const double dm = mag(x_[j]);
      if (dm >= kSparsePivotRel * piv_mag && dm >= kSparsePivotAbs) {
        piv_row = j;
      }
    }
    const T pv = x_[piv_row];
    perm_r_[j] = piv_row;
    pinv_[piv_row] = j;
    udiag_[j] = pv;
    umax = std::max(umax, mag(pv));
    // Reciprocal-multiply, matching refactor()'s rounding exactly so a
    // fixed-pivot refactorization reproduces a fresh one bitwise.
    const T ipv = T(1.0) / pv;
    // Record the column's fill pattern: rows pivoted in earlier columns
    // become U entries, the rest become the L column (zeros included — the
    // pattern must serve refactor() with different values).
    for (const int i : reach_) {
      if (i == piv_row) continue;
      const int k = pinv_[i];
      if (k >= 0) {
        upos_.push_back(k);
        uval_.push_back(x_[i]);
        umax = std::max(umax, mag(x_[i]));
      } else {
        lrow_.push_back(i);
        lval_.push_back(x_[i] * ipv);
      }
    }
    lptr_.push_back(static_cast<int>(lrow_.size()));
    uptr_.push_back(static_cast<int>(upos_.size()));
    for (const int i : reach_) x_[i] = T{};
  }

  if (umax > kSparseGrowthLimit * amax) {
    last_status_ = Status::Growth;
    return Status::Growth;
  }
  freeze_positions();
  symbolic_ok_ = true;
  numeric_ok_ = true;
  last_status_ = Status::Ok;
  return Status::Ok;
}

template <typename T>
void SparseLu<T>::freeze_positions() {
  lpos_.resize(lrow_.size());
  for (size_t e = 0; e < lrow_.size(); ++e) lpos_[e] = pinv_[lrow_[e]];
  // Sort each U column by ascending pivot position (insertion sort — MNA
  // columns are short). Ascending position is a valid topological order,
  // so refactor() can replay the elimination by walking the stored
  // entries front to back.
  for (int j = 0; j < n_; ++j) {
    const int b = uptr_[j];
    const int e = uptr_[j + 1];
    for (int p = b + 1; p < e; ++p) {
      const int pos = upos_[p];
      const T val = uval_[p];
      int q = p - 1;
      while (q >= b && upos_[q] > pos) {
        upos_[q + 1] = upos_[q];
        uval_[q + 1] = uval_[q];
        --q;
      }
      upos_[q + 1] = pos;
      uval_[q + 1] = val;
    }
  }
}

template <typename T>
typename SparseLu<T>::Status SparseLu<T>::refactor(const T* vals) {
  assert(symbolic_ok_);
  numeric_ok_ = false;
  double amax = 0.0;
  for (int e = 0; e < pat_->nnz(); ++e) amax = std::max(amax, mag(vals[e]));
  double umax = 0.0;

  for (int j = 0; j < n_; ++j) {
    // The column's recorded factor pattern (U rows, L rows, pivot row) is
    // a superset of A(:, j), so zeroing it then scattering A leaves the
    // work array exact regardless of what earlier columns left behind.
    for (int e = uptr_[j]; e < uptr_[j + 1]; ++e) {
      x_[perm_r_[upos_[e]]] = T{};
    }
    for (int e = lptr_[j]; e < lptr_[j + 1]; ++e) x_[lrow_[e]] = T{};
    x_[perm_r_[j]] = T{};
    for (int e = cptr_[j]; e < cptr_[j + 1]; ++e) {
      x_[crow_[e]] = vals[cslot_[e]];
    }
    // Replay the recorded elimination — fixed pivots, ascending order.
    for (int e = uptr_[j]; e < uptr_[j + 1]; ++e) {
      const int k = upos_[e];
      const T xv = x_[perm_r_[k]];
      uval_[e] = xv;
      umax = std::max(umax, mag(xv));
      for (int f = lptr_[k]; f < lptr_[k + 1]; ++f) {
        x_[lrow_[f]] -= lval_[f] * xv;
      }
    }
    // Pivot check: the recorded pivot must still pass the same threshold
    // test a fresh factorization would apply.
    const T pv = x_[perm_r_[j]];
    const double pm = mag(pv);
    double col_max = pm;
    for (int e = lptr_[j]; e < lptr_[j + 1]; ++e) {
      col_max = std::max(col_max, mag(x_[lrow_[e]]));
    }
    if (pm < kSparsePivotRel * col_max || pm < kSparsePivotAbs) {
      last_status_ = Status::PivotCheck;
      return Status::PivotCheck;
    }
    udiag_[j] = pv;
    umax = std::max(umax, pm);
    // One reciprocal per column instead of one division per L entry; the
    // pivot check above guarantees pv is comfortably finite.
    const T ipv = T(1.0) / pv;
    for (int e = lptr_[j]; e < lptr_[j + 1]; ++e) {
      lval_[e] = x_[lrow_[e]] * ipv;
    }
  }

  if (umax > kSparseGrowthLimit * amax) {
    last_status_ = Status::Growth;
    return Status::Growth;
  }
  numeric_ok_ = true;
  last_status_ = Status::Ok;
  return Status::Ok;
}

template <typename T>
bool SparseLu<T>::factor_values(const T* vals) {
  if (symbolic_ok_) {
    if (refactor(vals) == Status::Ok) return true;
    // The recorded pivot order no longer fits these values (or grew too
    // much) — re-pivot from scratch before giving up.
    ++repivots_;
  }
  return factor(vals) == Status::Ok;
}

template <typename T>
void SparseLu<T>::solve_into(const T* b, T* x) const {
  assert(numeric_ok_);
  // PA = LU with natural column order: forward- then back-substitute in
  // pivot space, writing the result straight into natural unknown order.
  for (int k = 0; k < n_; ++k) wk_[k] = b[perm_r_[k]];
  for (int k = 0; k < n_; ++k) {
    const T yk = wk_[k];
    for (int e = lptr_[k]; e < lptr_[k + 1]; ++e) {
      wk_[lpos_[e]] -= lval_[e] * yk;
    }
  }
  for (int j = n_ - 1; j >= 0; --j) {
    const T xj = wk_[j] / udiag_[j];
    x[j] = xj;
    for (int e = uptr_[j]; e < uptr_[j + 1]; ++e) {
      wk_[upos_[e]] -= uval_[e] * xj;
    }
  }
}

template <typename T>
void SparseLu<T>::solve_transposed_into(const T* b, T* x,
                                        bool conjugate) const {
  assert(numeric_ok_);
  // A^T = U^T L^T P: solve U^T z = b (forward — U columns are lower rows
  // of U^T), then L^T w = z (backward), then x = P^T w.
  for (int j = 0; j < n_; ++j) {
    T acc = b[j];
    for (int e = uptr_[j]; e < uptr_[j + 1]; ++e) {
      acc -= conj_if(uval_[e], conjugate) * wk_[upos_[e]];
    }
    wk_[j] = acc / conj_if(udiag_[j], conjugate);
  }
  for (int k = n_ - 1; k >= 0; --k) {
    T acc = wk_[k];
    for (int e = lptr_[k]; e < lptr_[k + 1]; ++e) {
      acc -= conj_if(lval_[e], conjugate) * wk_[lpos_[e]];
    }
    wk_[k] = acc;
  }
  for (int k = 0; k < n_; ++k) x[perm_r_[k]] = wk_[k];
}

template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

static_assert(kLanesK == SparseSweepLu::kMaxLanes,
              "lane kernels must match the blocked sweep width");

SparseSweepLu::SparseSweepLu(const SparsePattern& pattern)
    : scalar_(pattern) {
  const size_t n = static_cast<size_t>(pattern.n);
  xre_.resize(n * kMaxLanes);
  xim_.resize(n * kMaxLanes);
  wre_.resize(n * kMaxLanes);
  wim_.resize(n * kMaxLanes);
  dre_.resize(n * kMaxLanes);
  dim_.resize(n * kMaxLanes);
  vals0_.resize(pattern.nnz());
}

bool SparseSweepLu::factor_block(const double* gvals, const double* cvals,
                                 const double* omega, int count) {
  assert(count >= 1 && count <= kMaxLanes);
  lanes_ = count;

  // Fast path: a previous block (or sweep) already chose a pivot order
  // and fill pattern. The blocked refactor reads only scalar_'s symbolic
  // arrays — never its numeric values — so the scalar factorization can
  // be skipped entirely while the recorded pivots keep passing the
  // per-lane acceptance tests.
  if (scalar_.symbolic_ok_) {
    if (refactor_lanes(gvals, cvals, omega, count)) return true;
    ++scalar_.repivots_;  // a lane rejected the recorded pivot order
  }

  // Cold start, or some lane rejected the recorded pivots: choose fresh
  // pivots from a scalar complex factorization at the block's first
  // frequency, then retry the blocked refactor exactly once. The
  // invalidate() forces a genuine re-pivot — plain factor_values() would
  // replay the pivot order that just failed and loop forever.
  const int nnz = scalar_.pat_->nnz();
  for (int s = 0; s < nnz; ++s) {
    vals0_[s] = cd(gvals[s], omega[0] * cvals[s]);
  }
  scalar_.invalidate();
  if (!scalar_.factor_values(vals0_.data())) return false;
  return refactor_lanes(gvals, cvals, omega, count);
}

bool SparseSweepLu::refactor_lanes(const double* gvals, const double* cvals,
                                   const double* omega, int count) {
  constexpr int K = kMaxLanes;
  const int n = scalar_.n_;
  const int nnz = scalar_.pat_->nnz();

  // Pad the lane frequencies to full width by repeating the last point:
  // every inner loop runs all K lanes branch-free, and the padded lanes
  // duplicate a real one so the pivot checks behave identically.
  double w[K];
  for (int f = 0; f < K; ++f) w[f] = omega[std::min(f, count - 1)];

  const std::vector<int>& lptr = scalar_.lptr_;
  const std::vector<int>& lrow = scalar_.lrow_;
  const std::vector<int>& uptr = scalar_.uptr_;
  const std::vector<int>& upos = scalar_.upos_;
  const std::vector<int>& perm = scalar_.perm_r_;
  lre_.resize(lrow.size() * K);
  lim_.resize(lrow.size() * K);
  ure_.resize(upos.size() * K);
  uim_.resize(upos.size() * K);

  // Function-scope restrict-qualified bases: the six lane arrays never
  // alias one another, and telling the compiler so at this scope (rather
  // than per-entry) is what lets the K-wide lane loops vectorize.
  double* __restrict xre = xre_.data();
  double* __restrict xim = xim_.data();
  double* __restrict lre = lre_.data();
  double* __restrict lim = lim_.data();
  double* __restrict ure = ure_.data();
  double* __restrict uim = uim_.data();
  double* __restrict dre = dre_.data();
  double* __restrict dim = dim_.data();

  // Per-lane |A|^2 max for the growth check, accumulated during one pass
  // over the assembled values.
  double amax2[K] = {0.0};
  double umax2[K] = {0.0};
  for (int s = 0; s < nnz; ++s) {
    const double gr = gvals[s];
    const double cc = cvals[s];
    for (int f = 0; f < K; ++f) {
      const double im = w[f] * cc;
      const double m2 = gr * gr + im * im;
      amax2[f] = std::max(amax2[f], m2);
    }
  }

  for (int j = 0; j < n; ++j) {
    // Zero this column's factor pattern, then scatter G + j*w*C.
    for (int e = uptr[j]; e < uptr[j + 1]; ++e) {
      const size_t r = static_cast<size_t>(perm[upos[e]]) * K;
      lanes_zero(xre + r, xim + r);
    }
    for (int e = lptr[j]; e < lptr[j + 1]; ++e) {
      const size_t r = static_cast<size_t>(lrow[e]) * K;
      lanes_zero(xre + r, xim + r);
    }
    {
      const size_t r = static_cast<size_t>(perm[j]) * K;
      lanes_zero(xre + r, xim + r);
    }
    for (int e = scalar_.cptr_[j]; e < scalar_.cptr_[j + 1]; ++e) {
      const size_t r = static_cast<size_t>(scalar_.crow_[e]) * K;
      lanes_scatter(xre + r, xim + r, gvals[scalar_.cslot_[e]], w,
                    cvals[scalar_.cslot_[e]]);
    }
    // Replay the recorded elimination with the lane index innermost; the
    // lanes_* kernels are the vectorized hot loops.
    for (int e = uptr[j]; e < uptr[j + 1]; ++e) {
      const int k = upos[e];
      const size_t rk = static_cast<size_t>(perm[k]) * K;
      double* ur = ure + (static_cast<size_t>(e) * K);
      double* ui = uim + (static_cast<size_t>(e) * K);
      lanes_copy_max(ur, ui, xre + rk, xim + rk, umax2);
      for (int q = lptr[k]; q < lptr[k + 1]; ++q) {
        const size_t rq = static_cast<size_t>(lrow[q]) * K;
        lanes_cmulsub(xre + rq, xim + rq, lre + (static_cast<size_t>(q) * K),
                      lim + (static_cast<size_t>(q) * K), ur, ui);
      }
    }
    // Per-lane pivot check (squared-magnitude form of SparseLu's test;
    // pm2 == 0 additionally rejects pivots below the |.|^2 underflow
    // floor, which the dense fallback then handles).
    const double* pr = xre + (static_cast<size_t>(perm[j]) * K);
    const double* pi = xim + (static_cast<size_t>(perm[j]) * K);
    double* dr = dre + (static_cast<size_t>(j) * K);
    double* di = dim + (static_cast<size_t>(j) * K);
    double pm2[K];
    double cm2[K];
    for (int f = 0; f < K; ++f) {
      dr[f] = pr[f];
      di[f] = pi[f];
      pm2[f] = pr[f] * pr[f] + pi[f] * pi[f];
      cm2[f] = pm2[f];
    }
    for (int e = lptr[j]; e < lptr[j + 1]; ++e) {
      const double* yr = xre + (static_cast<size_t>(lrow[e]) * K);
      const double* yi = xim + (static_cast<size_t>(lrow[e]) * K);
      for (int f = 0; f < K; ++f) {
        cm2[f] = std::max(cm2[f], yr[f] * yr[f] + yi[f] * yi[f]);
      }
    }
    double inv[K];
    for (int f = 0; f < K; ++f) {
      if (pm2[f] < kSparsePivotRel * kSparsePivotRel * cm2[f] ||
          pm2[f] <= 0.0) {
        return false;
      }
      umax2[f] = std::max(umax2[f], pm2[f]);
      inv[f] = 1.0 / pm2[f];
    }
    for (int e = lptr[j]; e < lptr[j + 1]; ++e) {
      const size_t r = static_cast<size_t>(lrow[e]) * K;
      lanes_norm(lre + (static_cast<size_t>(e) * K),
                 lim + (static_cast<size_t>(e) * K), xre + r, xim + r, dr, di,
                 inv);
    }
  }

  for (int f = 0; f < K; ++f) {
    if (umax2[f] > kSparseGrowthLimit * kSparseGrowthLimit * amax2[f]) {
      return false;
    }
  }
  return true;
}

void SparseSweepLu::solve_block(const cd* b, cd* out, int stride) const {
  constexpr int K = kMaxLanes;
  const int n = scalar_.n_;
  const std::vector<int>& lptr = scalar_.lptr_;
  const std::vector<int>& lpos = scalar_.lpos_;
  const std::vector<int>& uptr = scalar_.uptr_;
  const std::vector<int>& upos = scalar_.upos_;
  const std::vector<int>& perm = scalar_.perm_r_;
  for (int k = 0; k < n; ++k) {
    const double br = b[perm[k]].real();
    const double bi = b[perm[k]].imag();
    double* __restrict wr = &wre_[static_cast<size_t>(k) * K];
    double* __restrict wi = &wim_[static_cast<size_t>(k) * K];
    for (int f = 0; f < K; ++f) {
      wr[f] = br;
      wi[f] = bi;
    }
  }
  const double* __restrict lre = lre_.data();
  const double* __restrict lim = lim_.data();
  const double* __restrict ure = ure_.data();
  const double* __restrict uim = uim_.data();
  const double* __restrict dre = dre_.data();
  const double* __restrict dim = dim_.data();
  double* __restrict wre = wre_.data();
  double* __restrict wim = wim_.data();
  for (int k = 0; k < n; ++k) {
    const size_t rk = static_cast<size_t>(k) * K;
    for (int e = lptr[k]; e < lptr[k + 1]; ++e) {
      const size_t rt = static_cast<size_t>(lpos[e]) * K;
      lanes_cmulsub(wre + rt, wim + rt, lre + (static_cast<size_t>(e) * K),
                    lim + (static_cast<size_t>(e) * K), wre + rk, wim + rk);
    }
  }
  for (int j = n - 1; j >= 0; --j) {
    const size_t rj = static_cast<size_t>(j) * K;
    lanes_pivdiv(wre + rj, wim + rj, dre + rj, dim + rj);
    for (int e = uptr[j]; e < uptr[j + 1]; ++e) {
      const size_t rt = static_cast<size_t>(upos[e]) * K;
      lanes_cmulsub(wre + rt, wim + rt, ure + (static_cast<size_t>(e) * K),
                    uim + (static_cast<size_t>(e) * K), wre + rj, wim + rj);
    }
  }
  for (int f = 0; f < lanes_; ++f) {
    cd* o = out + static_cast<size_t>(f) * static_cast<size_t>(stride);
    for (int j = 0; j < n; ++j) {
      o[j] = cd(wre[static_cast<size_t>(j) * K + f],
                wim[static_cast<size_t>(j) * K + f]);
    }
  }
}

void SparseSweepLu::solve_transposed_block(const cd* b, cd* out,
                                           int stride) const {
  constexpr int K = kMaxLanes;
  const int n = scalar_.n_;
  const std::vector<int>& lptr = scalar_.lptr_;
  const std::vector<int>& lpos = scalar_.lpos_;
  const std::vector<int>& uptr = scalar_.uptr_;
  const std::vector<int>& upos = scalar_.upos_;
  const std::vector<int>& perm = scalar_.perm_r_;
  const double* __restrict lre = lre_.data();
  const double* __restrict lim = lim_.data();
  const double* __restrict ure = ure_.data();
  const double* __restrict uim = uim_.data();
  const double* __restrict dre = dre_.data();
  const double* __restrict dim = dim_.data();
  double* __restrict wre = wre_.data();
  double* __restrict wim = wim_.data();
  // U^T z = b (forward over U columns).
  for (int j = 0; j < n; ++j) {
    const double br = b[j].real();
    const double bi = b[j].imag();
    const size_t rj = static_cast<size_t>(j) * K;
    double* wr = wre + rj;
    double* wi = wim + rj;
    for (int f = 0; f < K; ++f) {
      wr[f] = br;
      wi[f] = bi;
    }
    for (int e = uptr[j]; e < uptr[j + 1]; ++e) {
      const size_t rz = static_cast<size_t>(upos[e]) * K;
      lanes_cmulsub(wre + rj, wim + rj, ure + (static_cast<size_t>(e) * K),
                    uim + (static_cast<size_t>(e) * K), wre + rz, wim + rz);
    }
    lanes_pivdiv(wre + rj, wim + rj, dre + rj, dim + rj);
  }
  // L^T w = z (backward over L columns).
  for (int k = n - 1; k >= 0; --k) {
    const size_t rk = static_cast<size_t>(k) * K;
    for (int e = lptr[k]; e < lptr[k + 1]; ++e) {
      const size_t rz = static_cast<size_t>(lpos[e]) * K;
      lanes_cmulsub(wre + rk, wim + rk, lre + (static_cast<size_t>(e) * K),
                    lim + (static_cast<size_t>(e) * K), wre + rz, wim + rz);
    }
  }
  for (int f = 0; f < lanes_; ++f) {
    cd* o = out + static_cast<size_t>(f) * static_cast<size_t>(stride);
    for (int k = 0; k < n; ++k) {
      o[perm[k]] = cd(wre[static_cast<size_t>(k) * K + f],
                      wim[static_cast<size_t>(k) * K + f]);
    }
  }
}

}  // namespace gcnrl::la
