#include "rl/ddpg.hpp"

namespace gcnrl::rl {
namespace {

NetworkConfig net_config(const DdpgConfig& cfg, int state_dim) {
  NetworkConfig nc;
  nc.state_dim = state_dim;
  nc.hidden = cfg.hidden;
  nc.gcn_layers = cfg.gcn_layers;
  nc.use_gcn = cfg.use_gcn;
  return nc;
}

}  // namespace

DdpgAgent::DdpgAgent(const la::Mat& state, const la::Mat& adjacency,
                     const std::vector<circuit::Kind>& kinds, DdpgConfig cfg,
                     Rng rng)
    : cfg_(cfg),
      rng_(rng),
      state_(state),
      a_hat_(cfg.use_gcn ? nn::normalized_adjacency(adjacency)
                         : la::Mat::identity(state.rows())),
      kinds_(kinds),
      masks_(make_type_masks(kinds, cfg.hidden)),
      actor_(net_config(cfg, state.cols()), rng_),
      critic_(net_config(cfg, state.cols()), rng_),
      opt_actor_(actor_.parameters(), cfg.lr_actor),
      opt_critic_(critic_.parameters(), cfg.lr_critic),
      noise_(cfg.sigma0, cfg.sigma_decay, cfg.sigma_min) {}

la::Mat DdpgAgent::act() { return actor_.act(state_, a_hat_, masks_); }

la::Mat DdpgAgent::act_explore() {
  if (episode_ < cfg_.warmup) {
    la::Mat a(state_.rows(), circuit::kMaxActionDim);
    for (int r = 0; r < a.rows(); ++r) {
      for (int c = 0; c < a.cols(); ++c) a(r, c) = rng_.uniform(-1.0, 1.0);
    }
    return a;
  }
  return noise_.apply(act(), episode_ - cfg_.warmup, rng_);
}

double DdpgAgent::q_value(const la::Mat& actions) {
  return critic_.value(state_, actions, a_hat_, masks_);
}

void DdpgAgent::observe(const la::Mat& actions, double reward) {
  replay_.push(actions, reward);
  // Baseline B: EMA of all previous rewards (Algorithm 1).
  if (!baseline_.has_value()) {
    baseline_ = reward;
  } else {
    baseline_ = (1.0 - cfg_.baseline_tau) * *baseline_ +
                cfg_.baseline_tau * reward;
  }
  ++episode_;
  if (episode_ > cfg_.warmup) {
    for (int u = 0; u < cfg_.updates_per_step; ++u) update();
  }
}

void DdpgAgent::update() {
  const auto batch = replay_.sample(cfg_.batch, rng_);
  if (batch.empty()) return;
  const double b = baseline_.value_or(0.0);

  // --- critic: minimize mean (R - B - Q(S,A))^2 ------------------------
  critic_.zero_grad();
  {
    ag::Tape tape;
    ag::Var loss;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ag::Var q = critic_.forward(tape, tape.constant(state_),
                                  tape.constant(batch[i]->actions), a_hat_,
                                  masks_);
      la::Mat target(1, 1);
      target(0, 0) = batch[i]->reward - b;
      ag::Var l = ag::mse_const(q, target);
      loss = i == 0 ? l : ag::add(loss, l);
    }
    loss = ag::scale(loss, 1.0 / static_cast<double>(batch.size()));
    tape.backward(loss);
  }
  opt_critic_.step();

  // --- actor: ascend Q(S, mu(S)) ---------------------------------------
  actor_.zero_grad();
  critic_.zero_grad();  // critic params receive grads here; discard them
  {
    ag::Tape tape;
    ag::Var a = actor_.forward(tape, tape.constant(state_), a_hat_, masks_);
    ag::Var q = critic_.forward(tape, tape.constant(state_), a, a_hat_,
                                masks_);
    ag::Var loss = ag::scale(q, -1.0);
    tape.backward(loss);
  }
  opt_actor_.step();
  critic_.zero_grad();
}

void DdpgAgent::save(const std::string& path) {
  nn::save_parameters(path, parameters());
}

void DdpgAgent::load(const std::string& path) {
  nn::load_parameters(path, parameters(), /*strict=*/true);
}

int DdpgAgent::copy_weights_from(DdpgAgent& src) {
  return nn::copy_parameters(src.parameters(), parameters());
}

std::vector<nn::Parameter*> DdpgAgent::parameters() {
  std::vector<nn::Parameter*> ps = actor_.parameters();
  for (auto* p : critic_.parameters()) ps.push_back(p);
  return ps;
}

}  // namespace gcnrl::rl
