// Quickstart: size the two-stage transimpedance amplifier with GCN-RL.
//
//   1. Build the benchmark circuit at a technology node.
//   2. Wrap it in a SizingEnv and calibrate the FoM normalizers.
//   3. Train a GCN-RL (DDPG) agent for a few hundred episodes.
//   4. Print the best design found and its measured performance.
//
// Usage: quickstart [steps] [node]   (default: 300 steps @ 180nm)
#include <cstdio>

#include "circuits/benchmark_circuits.hpp"
#include "rl/run_loop.hpp"

using namespace gcnrl;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 300;
  const std::string node = argc > 2 ? argv[2] : "180nm";

  // 1-2. Circuit -> environment -> calibration. The env's EvalService
  // picks up GCNRL_EVAL_THREADS (default: serial) and batches the
  // calibration sweep across its workers.
  const auto tech = circuit::make_technology(node);
  env::SizingEnv env(circuits::make_two_tia(tech));
  Rng rng(42);
  std::printf("Calibrating FoM normalizers (random sampling, %d threads)...\n",
              env.eval_threads());
  env.calibrate(200, rng);

  // Reference points.
  const auto human = env.evaluate_params(env.bench().human_expert);
  std::printf("Human-expert FoM: %.3f (max attainable %.1f)\n", human.fom,
              env.bench().fom.max_fom());

  // 3. GCN-RL agent (Algorithm 1 of the paper).
  rl::DdpgConfig cfg;
  cfg.warmup = std::min(100, steps / 3);
  rl::DdpgAgent agent(env.state(), env.adjacency(), env.kinds(), cfg,
                      rng.split());
  std::printf("Training GCN-RL for %d episodes...\n", steps);
  // Counter snapshot: num_evals/num_sims/cache_hits are env-lifetime
  // totals (calibration included), so report training-run deltas.
  const long evals0 = env.num_evals();
  const long sims0 = env.num_sims();
  const long hits0 = env.cache_hits();
  const auto result = rl::run_ddpg(env, agent, steps);

  // 4. Report.
  std::printf("\nBest FoM after %d episodes: %.3f\n", steps,
              result.best_fom);
  std::printf("Evaluations: %ld requested, %ld simulated, %ld cache hits\n",
              env.num_evals() - evals0, env.num_sims() - sims0,
              env.cache_hits() - hits0);
  std::printf("Best design metrics:\n");
  for (const auto& [k, v] : result.best_metrics) {
    std::printf("  %-8s = %.6g\n", k.c_str(), v);
  }
  std::printf("\nBest sizing:\n");
  const auto params = env.bench().space.refine(result.best_actions);
  for (int i = 0; i < env.n(); ++i) {
    const auto& cs = env.bench().space.comp(i);
    if (cs.nparams() == 3) {
      std::printf("  %-6s W=%6.2f um  L=%5.3f um  M=%2d\n", cs.name.c_str(),
                  params.v[i][0] * 1e6, params.v[i][1] * 1e6,
                  static_cast<int>(params.v[i][2]));
    } else {
      std::printf("  %-6s value=%.4g\n", cs.name.c_str(), params.v[i][0]);
    }
  }
  return 0;
}
