// google-benchmark for the EvalService: evaluations/sec on the two_tia
// benchmark circuit at 1/2/4/8 worker threads, plus the cache-hit fast
// path. This is the scaling number behind GCNRL_EVAL_THREADS — on an
// N-core machine the thread-pool rows should approach N x the serial row
// (the sims are independent and share no mutable state).
//
// Counters: items_per_second is evaluations/sec; use
// --benchmark_counters_tabular=true for a compact table.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "circuits/benchmark_circuits.hpp"
#include "common/rng.hpp"
#include "env/eval_service.hpp"
#include "env/sizing_env.hpp"
#include "opt/bayes_opt.hpp"
#include "rl/ddpg.hpp"
#include "rl/run_loop.hpp"
#include "sim/perf.hpp"

using namespace gcnrl;

namespace {

const auto kTech = circuit::make_technology("180nm");

// Distinct random designs through the full refine -> simulate -> FoM
// pipeline, cache disabled: pure simulation throughput vs thread count.
void BM_EvalBatch_TwoTia(benchmark::State& state) {
  env::EvalServiceConfig cfg;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.cache_capacity = 0;
  env::SizingEnv env(circuits::make_two_tia(kTech), env::IndexMode::OneHot,
                     cfg);
  constexpr int kBatch = 32;
  Rng rng(7);
  std::vector<la::Mat> batch;
  batch.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) batch.push_back(env.random_actions(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step_batch(batch).front().fom);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EvalBatch_TwoTia)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The same batch revisited: after the first iteration every design is a
// cache hit, so this bounds the per-evaluation engine overhead (refine +
// key + LRU + FoM recompute, no simulation).
void BM_EvalBatch_TwoTia_CacheHit(benchmark::State& state) {
  env::EvalServiceConfig cfg;
  cfg.threads = 1;
  cfg.cache_capacity = 1024;
  env::SizingEnv env(circuits::make_two_tia(kTech), env::IndexMode::OneHot,
                     cfg);
  constexpr int kBatch = 32;
  Rng rng(7);
  std::vector<la::Mat> batch;
  batch.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) batch.push_back(env.random_actions(rng));
  benchmark::DoNotOptimize(env.step_batch(batch).front().fom);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step_batch(batch).front().fom);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EvalBatch_TwoTia_CacheHit)->Unit(benchmark::kMillisecond);

// Cache-disabled single-eval path with per-analysis attribution: every
// counter row below lands in the --benchmark_out JSON, so CI publishes a
// machine-readable breakdown of where an evaluation spends its time
// (DC solve, AC sweep, noise, transient) and how the DC warm start pays
// off. Arg(0) = GCNRL_DC_WARM_START equivalent: 0 cold, 1 cross-design
// warm banks. The workload is an optimizer-like trajectory — small
// perturbations around one base design — because that neighborhood
// locality is exactly what the warm start exploits (and what lockstep
// sweeps exhibit once optimizers converge); fully random consecutive
// designs would make every warm guess a stranger's.
void BM_SingleEval_PerAnalysis(benchmark::State& state, const char* name) {
  env::EvalServiceConfig cfg;
  cfg.threads = 1;
  cfg.cache_capacity = 0;  // cache disabled: every step simulates
  cfg.dc_warm_start = state.range(0) != 0;
  env::SizingEnv env(circuits::make_benchmark(name, kTech),
                     env::IndexMode::OneHot, cfg);
  Rng rng(11);
  const la::Mat base = env.random_actions(rng);
  constexpr int kTraj = 8;
  std::vector<la::Mat> traj(kTraj, base);
  for (auto& a : traj) {
    for (int i = 0; i < a.rows(); ++i) {
      for (int j = 0; j < a.cols(); ++j) a(i, j) += 0.05 * rng.normal();
    }
  }
  // Prime the warm bank so the first timed design is not charged the one
  // unavoidable cold solve of the run.
  benchmark::DoNotOptimize(env.step(traj.back()).fom);

  sim::sim_perf_reset();
  long evals = 0;
  for (auto _ : state) {
    for (const auto& a : traj) benchmark::DoNotOptimize(env.step(a).fom);
    evals += kTraj;
  }
  const sim::SimPerf p = sim::sim_perf_snapshot();
  const double inv = evals > 0 ? 1.0 / static_cast<double>(evals) : 0.0;
  auto& c = state.counters;
  c["dc_ms_per_eval"] = 1e3 * p.dc.seconds * inv;
  c["ac_ms_per_eval"] = 1e3 * p.ac.seconds * inv;
  c["noise_ms_per_eval"] = 1e3 * p.noise.seconds * inv;
  c["tran_ms_per_eval"] = 1e3 * p.tran.seconds * inv;
  // Phase split within each analysis (see sim::PhaseSeconds): the phases
  // deliberately do not sum to the analysis total — device-model
  // evaluation and convergence bookkeeping live between them.
  const auto phase_rows = [&](const char* tag, const sim::AnalysisPerf& a) {
    c[std::string(tag) + "_assembly_ms_per_eval"] =
        1e3 * a.phase.assembly * inv;
    c[std::string(tag) + "_factor_ms_per_eval"] = 1e3 * a.phase.factor * inv;
    c[std::string(tag) + "_solve_ms_per_eval"] = 1e3 * a.phase.solve * inv;
  };
  phase_rows("dc", p.dc);
  phase_rows("ac", p.ac);
  phase_rows("noise", p.noise);
  phase_rows("tran", p.tran);
  c["sparse_fallbacks"] =
      static_cast<double>(p.dc.sparse_fallbacks + p.ac.sparse_fallbacks +
                          p.noise.sparse_fallbacks + p.tran.sparse_fallbacks);
  c["dc_solves_per_eval"] = static_cast<double>(p.dc.calls) * inv;
  c["dc_iters_per_eval"] = static_cast<double>(p.dc.items) * inv;
  c["ac_points_per_eval"] = static_cast<double>(p.ac.items) * inv;
  c["tran_steps_per_eval"] = static_cast<double>(p.tran.items) * inv;
  c["warm_hit_rate"] =
      p.dc.calls > 0
          ? static_cast<double>(p.dc.warm_hits) /
                static_cast<double>(p.dc.calls)
          : 0.0;
  c["warm_fallback_rate"] =
      p.dc.calls > 0
          ? static_cast<double>(p.dc.warm_fallbacks) /
                static_cast<double>(p.dc.calls)
          : 0.0;
  state.SetItemsProcessed(evals);
}
BENCHMARK_CAPTURE(BM_SingleEval_PerAnalysis, two_tia, "Two-TIA")
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SingleEval_PerAnalysis, two_volt, "Two-Volt")
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SingleEval_PerAnalysis, three_tia, "Three-TIA")
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SingleEval_PerAnalysis, ldo, "LDO")
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Lockstep multi-seed DDPG throughput: 4 (env, agent) pairs sharing one
// EvalService, stepped via rl::run_ddpg_lockstep. items_per_second counts
// seed-steps (one simulation each, cache disabled); agents stay in their
// warm-up phase so the number measures the sweep engine + simulator, not
// network updates. On an N-core machine the multi-thread rows should pull
// ahead of serial — this is the "seeds/sec" scaling number behind the
// parallel bench::sweep path.
void BM_DdpgLockstep_TwoTia(benchmark::State& state) {
  env::EvalServiceConfig cfg;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.cache_capacity = 0;
  const auto svc = std::make_shared<env::EvalService>(cfg);
  constexpr int kSeeds = 4;
  constexpr int kSteps = 8;
  std::vector<std::unique_ptr<env::SizingEnv>> envs;
  std::vector<std::unique_ptr<rl::DdpgAgent>> agents;
  std::vector<env::SizingEnv*> env_ptrs;
  std::vector<rl::DdpgAgent*> agent_ptrs;
  rl::DdpgConfig rl_cfg;
  rl_cfg.warmup = 1 << 30;  // never leave warm-up: no NN updates measured
  for (int s = 0; s < kSeeds; ++s) {
    envs.push_back(std::make_unique<env::SizingEnv>(
        circuits::make_two_tia(kTech), env::IndexMode::OneHot, svc));
    agents.push_back(std::make_unique<rl::DdpgAgent>(
        envs.back()->state(), envs.back()->adjacency(), envs.back()->kinds(),
        rl_cfg, Rng(100 + s)));
    env_ptrs.push_back(envs.back().get());
    agent_ptrs.push_back(agents.back().get());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rl::run_ddpg_lockstep(env_ptrs, agent_ptrs, kSteps)
            .front()
            .best_fom);
  }
  state.SetItemsProcessed(state.iterations() * kSeeds * kSteps);
}
BENCHMARK(BM_DdpgLockstep_TwoTia)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Lockstep multi-seed black-box throughput: 4 (env, BayesOpt) pairs
// sharing one EvalService, stepped via rl::run_optimizer_lockstep — the
// driver behind the budgeted BO/MACE seed sweeps. items_per_second counts
// seed-evaluations (cache disabled). Ask/tell is sequential within a
// seed, so just like the DDPG row this is the cross-seed scaling number:
// multi-thread rows should pull ahead of serial on an N-core machine.
void BM_BayesOptLockstep_TwoTia(benchmark::State& state) {
  env::EvalServiceConfig cfg;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.cache_capacity = 0;
  constexpr int kSeeds = 4;
  constexpr int kSteps = 8;
  for (auto _ : state) {
    state.PauseTiming();  // fresh optimizers/envs: identical work per iter
    const auto svc = std::make_shared<env::EvalService>(cfg);
    std::vector<std::unique_ptr<env::SizingEnv>> envs;
    std::vector<std::unique_ptr<opt::BayesOpt>> opts;
    std::vector<rl::OptimizerPair> pairs;
    for (int s = 0; s < kSeeds; ++s) {
      envs.push_back(std::make_unique<env::SizingEnv>(
          circuits::make_two_tia(kTech), env::IndexMode::OneHot, svc));
      opts.push_back(std::make_unique<opt::BayesOpt>(envs.back()->flat_dim(),
                                                     Rng(200 + s)));
      pairs.push_back(rl::OptimizerPair{envs.back().get(), opts.back().get(),
                                        kSteps, -1});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        rl::run_optimizer_lockstep(pairs).front().best_fom);
  }
  state.SetItemsProcessed(state.iterations() * kSeeds * kSteps);
}
BENCHMARK(BM_BayesOptLockstep_TwoTia)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
