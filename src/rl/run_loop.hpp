// Shared optimization-loop drivers used by the examples and the benchmark
// harnesses: run a DDPG agent or a black-box optimizer against a
// SizingEnv for a budget and record the best-so-far FoM trace (the
// quantity plotted in the paper's Figs. 5/7/8).
//
// The black-box drivers submit whole candidate batches to the env's
// EvalService (run_optimizer forwards each ask() population, run_random
// pre-generates fixed-size chunks), so evaluation parallelism and result
// caching come for free. Results are committed to the trace in submission
// order regardless of completion order, and all batching decisions are
// independent of the thread count — best_trace is bit-identical under
// GCNRL_EVAL_THREADS=1 and =N.
//
// Budgets are deterministic. An evaluation budget caps trace commits; a
// simulated-cost budget caps RunResult::sims, the number of simulations
// the run would execute in isolation: the first evaluation of each
// distinct refined design costs one simulation, repeats of a design the
// run already evaluated are free. This charge is a pure function of the
// run's own proposal stream — independent of thread count, cache capacity,
// and whatever other runs warmed a shared cache — which is what makes
// sim-budgeted tables bit-reproducible (the paper's Table I protocol
// matched BO/MACE to the RL methods by nondeterministic wall-clock
// instead; see bench::run_optimizer_budgeted).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "env/sizing_env.hpp"
#include "opt/optimizer.hpp"
#include "rl/ddpg.hpp"

namespace gcnrl::rl {

struct RunResult {
  std::vector<double> best_trace;  // best FoM after each evaluation
  double best_fom = -1e300;
  la::Mat best_actions;            // n x kMaxActionDim
  env::MetricMap best_metrics;
  long evals = 0;       // evaluations committed to the trace
  long sims = 0;        // simulated cost: first-in-run distinct designs
  long cache_hits = 0;  // subset served by the EvalService result cache

  void record(double fom);
  // Commit one evaluation: counters, best-so-far bookkeeping, and the
  // trace. Cached and freshly simulated results are handled identically —
  // a cache hit carries the same metrics/actions a fresh simulation would.
  void commit(const la::Mat& actions, const env::EvalResult& r);
  // Flat-vector variant: unflattens into best_actions only when the
  // result improves on the best, keeping the cache-hit fast path cheap.
  void commit_flat(const circuit::DesignSpace& space,
                   std::span<const double> x, const env::EvalResult& r);
};

// Run `agent` for `steps` episodes of Algorithm 1 against `env`.
RunResult run_ddpg(env::SizingEnv& env, DdpgAgent& agent, int steps);

// Lockstep multi-seed DDPG: step S independent (env, agent) pairs side by
// side. Per step, the exploration actions of every still-active pair are
// collected in pair order, submitted to the pairs' shared EvalService as
// one multi-circuit batch (this is where the thread pool earns its keep —
// DDPG is sequential within a seed but the seeds are independent), and the
// observe()/commit() updates then run sequentially in pair order. Each
// agent's RNG stream, replay history, and reward sequence are exactly what
// serial run_ddpg would produce, so per-pair results are bit-identical to
// S serial runs at any GCNRL_EVAL_THREADS.
//
// Pairs may mix circuits, technologies, and FoM specs freely. Pairs on
// different EvalServices cannot share a batch, so they are transparently
// grouped by service and the groups run back-to-back (results are
// independent of the grouping). The span overload gives each pair its own
// step budget: a pair whose budget is exhausted drops out of subsequent
// batches instead of padding them with wasted simulations.
//
// Requirements: envs, agents (and steps, for the span overload) must have
// equal sizes; throws std::invalid_argument otherwise.
std::vector<RunResult> run_ddpg_lockstep(std::span<env::SizingEnv* const> envs,
                                         std::span<DdpgAgent* const> agents,
                                         std::span<const int> steps);
std::vector<RunResult> run_ddpg_lockstep(std::span<env::SizingEnv* const> envs,
                                         std::span<DdpgAgent* const> agents,
                                         int steps);

// Run a black-box optimizer (ask/tell on the flattened space). Each ask()
// population is evaluated as one batch, truncated to the remaining budget
// (an evaluation costs at most one simulation, so neither budget can be
// overshot). `steps` caps trace commits; `max_sims` >= 0 additionally caps
// the simulated cost (RunResult::sims — within-run repeats are free, see
// the header comment), < 0 means no simulated-cost cap. An empty ask()
// population ends the run early (the optimizer has nothing left to
// propose); without this the loop could never advance its budget.
RunResult run_optimizer(env::SizingEnv& env, opt::Optimizer& optimizer,
                        int steps, long max_sims = -1);

// One (env, optimizer) pair of a lockstep black-box sweep, with its own
// budgets (same semantics as run_optimizer; steps <= 0 means the pair
// never runs).
struct OptimizerPair {
  env::SizingEnv* env = nullptr;
  opt::Optimizer* opt = nullptr;
  int steps = 0;
  long max_sims = -1;
};

// Lockstep multi-seed black-box driver, mirroring run_ddpg_lockstep: per
// round, every still-active optimizer's ask() population (truncated to its
// remaining budget) is merged into one multi-circuit batch on the pairs'
// shared EvalService, then results are committed and tell() runs
// sequentially in pair order. Ask/tell is sequential within a pair, but
// the pairs are independent, so the thread pool finally parallelizes
// black-box seed sweeps ACROSS seeds, not just within one population.
// A pair drops out once its evaluation or simulated-cost budget is
// exhausted or its ask() comes back empty. Pairs on different services
// are grouped and the groups run back-to-back. Per-pair best_trace/sims
// are bit-identical to serial run_optimizer at any GCNRL_EVAL_THREADS
// (FoM values never depend on cache state, and each optimizer sees the
// identical ask/tell sequence).
std::vector<RunResult> run_optimizer_lockstep(
    std::span<const OptimizerPair> pairs);

// Evaluate `steps` uniform random designs (the paper's Random baseline),
// pre-generated and submitted in fixed-size batches.
RunResult run_random(env::SizingEnv& env, int steps, Rng rng);

}  // namespace gcnrl::rl
