#include "autograd/ops.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gcnrl::ag {
namespace {

Tape* common_tape(const Var& a, const Var& b) {
  if (a.tape() != b.tape()) {
    throw std::invalid_argument("autograd op: vars from different tapes");
  }
  return a.tape();
}

}  // namespace

Var matmul(Var a, Var b) {
  Tape* t = common_tape(a, b);
  la::Mat out = la::matmul(a.value(), b.value());
  Node* an = a.node();
  Node* bn = b.node();
  const bool rg = an->requires_grad || bn->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, bn, cn] {
      if (an->requires_grad) an->grad += la::matmul_nt(cn->grad, bn->val);
      if (bn->requires_grad) bn->grad += la::matmul_tn(an->val, cn->grad);
    };
  }
  return c;
}

Var matmul_const_left(const la::Mat& k, Var a) {
  Tape* t = a.tape();
  la::Mat out = la::matmul(k, a.value());
  Node* an = a.node();
  const bool rg = an->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    // d/dA (K A) pull-back: K^T @ grad.
    la::Mat kt = k;  // copy captured by value
    cn->pullback = [an, cn, kt] { an->grad += la::matmul_tn(kt, cn->grad); };
  }
  return c;
}

Var add(Var a, Var b) {
  Tape* t = common_tape(a, b);
  assert(a.value().same_shape(b.value()));
  la::Mat out = a.value();
  out += b.value();
  Node* an = a.node();
  Node* bn = b.node();
  const bool rg = an->requires_grad || bn->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, bn, cn] {
      if (an->requires_grad) an->grad += cn->grad;
      if (bn->requires_grad) bn->grad += cn->grad;
    };
  }
  return c;
}

Var sub(Var a, Var b) {
  Tape* t = common_tape(a, b);
  assert(a.value().same_shape(b.value()));
  la::Mat out = a.value();
  out -= b.value();
  Node* an = a.node();
  Node* bn = b.node();
  const bool rg = an->requires_grad || bn->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, bn, cn] {
      if (an->requires_grad) an->grad += cn->grad;
      if (bn->requires_grad) bn->grad -= cn->grad;
    };
  }
  return c;
}

Var hadamard(Var a, Var b) {
  Tape* t = common_tape(a, b);
  assert(a.value().same_shape(b.value()));
  la::Mat out = la::hadamard(a.value(), b.value());
  Node* an = a.node();
  Node* bn = b.node();
  const bool rg = an->requires_grad || bn->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, bn, cn] {
      if (an->requires_grad) an->grad += la::hadamard(cn->grad, bn->val);
      if (bn->requires_grad) bn->grad += la::hadamard(cn->grad, an->val);
    };
  }
  return c;
}

Var hadamard_const(Var a, const la::Mat& mask) {
  Tape* t = a.tape();
  assert(a.value().same_shape(mask));
  la::Mat out = la::hadamard(a.value(), mask);
  Node* an = a.node();
  const bool rg = an->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    la::Mat m = mask;
    cn->pullback = [an, cn, m] { an->grad += la::hadamard(cn->grad, m); };
  }
  return c;
}

Var scale(Var a, double s) {
  Tape* t = a.tape();
  la::Mat out = a.value();
  out *= s;
  Node* an = a.node();
  const bool rg = an->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, cn, s] {
      la::Mat g = cn->grad;
      g *= s;
      an->grad += g;
    };
  }
  return c;
}

Var add_scalar(Var a, double s) {
  Tape* t = a.tape();
  la::Mat out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) += s;
  }
  Node* an = a.node();
  const bool rg = an->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, cn] { an->grad += cn->grad; };
  }
  return c;
}

Var add_row_broadcast(Var m, Var row) {
  Tape* t = common_tape(m, row);
  assert(row.rows() == 1 && row.cols() == m.cols());
  la::Mat out = m.value();
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) += row.value()(0, c);
  }
  Node* mn = m.node();
  Node* rn = row.node();
  const bool rg = mn->requires_grad || rn->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [mn, rn, cn] {
      if (mn->requires_grad) mn->grad += cn->grad;
      if (rn->requires_grad) {
        for (int r = 0; r < cn->grad.rows(); ++r) {
          for (int col = 0; col < cn->grad.cols(); ++col) {
            rn->grad(0, col) += cn->grad(r, col);
          }
        }
      }
    };
  }
  return c;
}

Var relu(Var a) {
  Tape* t = a.tape();
  la::Mat out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      if (out(r, c) < 0.0) out(r, c) = 0.0;
    }
  }
  Node* an = a.node();
  const bool rg = an->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, cn] {
      for (int r = 0; r < cn->grad.rows(); ++r) {
        for (int col = 0; col < cn->grad.cols(); ++col) {
          if (an->val(r, col) > 0.0) an->grad(r, col) += cn->grad(r, col);
        }
      }
    };
  }
  return c;
}

Var tanh_(Var a) {
  Tape* t = a.tape();
  la::Mat out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) = std::tanh(out(r, c));
  }
  Node* an = a.node();
  const bool rg = an->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, cn] {
      for (int r = 0; r < cn->grad.rows(); ++r) {
        for (int col = 0; col < cn->grad.cols(); ++col) {
          const double y = cn->val(r, col);
          an->grad(r, col) += cn->grad(r, col) * (1.0 - y * y);
        }
      }
    };
  }
  return c;
}

Var sigmoid(Var a) {
  Tape* t = a.tape();
  la::Mat out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      out(r, c) = 1.0 / (1.0 + std::exp(-out(r, c)));
    }
  }
  Node* an = a.node();
  const bool rg = an->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, cn] {
      for (int r = 0; r < cn->grad.rows(); ++r) {
        for (int col = 0; col < cn->grad.cols(); ++col) {
          const double y = cn->val(r, col);
          an->grad(r, col) += cn->grad(r, col) * y * (1.0 - y);
        }
      }
    };
  }
  return c;
}

Var mean_all(Var a) {
  Tape* t = a.tape();
  const double n = static_cast<double>(a.value().size());
  double acc = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) acc += a.value()(r, c);
  }
  la::Mat out(1, 1);
  out(0, 0) = n > 0 ? acc / n : 0.0;
  Node* an = a.node();
  const bool rg = an->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, cn, n] {
      const double g = cn->grad(0, 0) / n;
      for (int r = 0; r < an->grad.rows(); ++r) {
        for (int col = 0; col < an->grad.cols(); ++col) an->grad(r, col) += g;
      }
    };
  }
  return c;
}

Var sum_all(Var a) {
  Tape* t = a.tape();
  double acc = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) acc += a.value()(r, c);
  }
  la::Mat out(1, 1);
  out(0, 0) = acc;
  Node* an = a.node();
  const bool rg = an->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    cn->pullback = [an, cn] {
      const double g = cn->grad(0, 0);
      for (int r = 0; r < an->grad.rows(); ++r) {
        for (int col = 0; col < an->grad.cols(); ++col) an->grad(r, col) += g;
      }
    };
  }
  return c;
}

Var mse_const(Var a, const la::Mat& target) {
  Tape* t = a.tape();
  assert(a.value().same_shape(target));
  const double n = static_cast<double>(a.value().size());
  double acc = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      const double d = a.value()(r, c) - target(r, c);
      acc += d * d;
    }
  }
  la::Mat out(1, 1);
  out(0, 0) = n > 0 ? acc / n : 0.0;
  Node* an = a.node();
  const bool rg = an->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    la::Mat tgt = target;
    cn->pullback = [an, cn, tgt, n] {
      const double g = 2.0 * cn->grad(0, 0) / n;
      for (int r = 0; r < an->grad.rows(); ++r) {
        for (int col = 0; col < an->grad.cols(); ++col) {
          an->grad(r, col) += g * (an->val(r, col) - tgt(r, col));
        }
      }
    };
  }
  return c;
}

Var concat_cols(Var a, Var b) {
  Tape* t = common_tape(a, b);
  assert(a.rows() == b.rows());
  la::Mat out(a.rows(), a.cols() + b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out(r, c) = a.value()(r, c);
    for (int c = 0; c < b.cols(); ++c) out(r, a.cols() + c) = b.value()(r, c);
  }
  Node* an = a.node();
  Node* bn = b.node();
  const bool rg = an->requires_grad || bn->requires_grad;
  Var c = t->make(std::move(out), rg, nullptr);
  if (rg) {
    Node* cn = c.node();
    const int ac = a.cols();
    cn->pullback = [an, bn, cn, ac] {
      if (an->requires_grad) {
        for (int r = 0; r < an->grad.rows(); ++r) {
          for (int col = 0; col < ac; ++col) {
            an->grad(r, col) += cn->grad(r, col);
          }
        }
      }
      if (bn->requires_grad) {
        for (int r = 0; r < bn->grad.rows(); ++r) {
          for (int col = 0; col < bn->grad.cols(); ++col) {
            bn->grad(r, col) += cn->grad(r, ac + col);
          }
        }
      }
    };
  }
  return c;
}

}  // namespace gcnrl::ag
