#include "circuit/graph.hpp"

#include <queue>

namespace gcnrl::circuit {

la::Mat build_adjacency(const Netlist& nl, bool exclude_supply_nets) {
  const int n = nl.num_design_components();
  // Group design components by the nets they touch.
  std::vector<std::vector<int>> comps_on_net(nl.num_nodes());
  for (int i = 0; i < n; ++i) {
    for (int t : nl.design_terminals(i)) {
      if (exclude_supply_nets && nl.is_supply(t)) continue;
      comps_on_net[t].push_back(i);
    }
  }
  la::Mat a(n, n);
  for (const auto& comps : comps_on_net) {
    for (std::size_t x = 0; x < comps.size(); ++x) {
      for (std::size_t y = x + 1; y < comps.size(); ++y) {
        if (comps[x] != comps[y]) {
          a(comps[x], comps[y]) = 1.0;
          a(comps[y], comps[x]) = 1.0;
        }
      }
    }
  }
  return a;
}

namespace {

// BFS from `start`, returning distances (-1 = unreachable).
std::vector<int> bfs(const la::Mat& a, int start) {
  std::vector<int> dist(a.rows(), -1);
  std::queue<int> q;
  dist[start] = 0;
  q.push(start);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int v = 0; v < a.cols(); ++v) {
      if (a(u, v) > 0.0 && dist[v] < 0) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

}  // namespace

int connected_components(const la::Mat& adjacency) {
  const int n = adjacency.rows();
  std::vector<bool> seen(n, false);
  int count = 0;
  for (int i = 0; i < n; ++i) {
    if (seen[i]) continue;
    ++count;
    const auto dist = bfs(adjacency, i);
    for (int j = 0; j < n; ++j) {
      if (dist[j] >= 0) seen[j] = true;
    }
  }
  return count;
}

int graph_diameter(const la::Mat& adjacency) {
  const int n = adjacency.rows();
  int diameter = 0;
  for (int i = 0; i < n; ++i) {
    const auto dist = bfs(adjacency, i);
    for (int j = 0; j < n; ++j) diameter = std::max(diameter, dist[j]);
  }
  return diameter;
}

}  // namespace gcnrl::circuit
