// Large-signal transient analysis (backward Euler).
//
// Backward Euler is L-stable, which matters more than second-order
// accuracy here: the LDO settling benchmarks drive the loop with abrupt
// load/line steps and we must never ring numerically. Capacitors use the
// standard companion model (G = C/h plus a history current); MOSFETs are
// re-linearized by Newton at every timestep starting from the previous
// solution, which converges in a couple of iterations along a smooth
// waveform.
#pragma once

#include "sim/dc.hpp"
#include "sim/mna.hpp"

namespace gcnrl::sim {

struct TranOptions {
  double tstop = 1e-6;   // [s]
  double dt = 1e-9;      // fixed timestep [s]
  int max_newton = 60;
  double gmin = 1e-12;
  double step_limit = 1.0;  // Newton voltage damping [V]
  double tol_residual = 1e-8;
  double tol_step = 2e-5;
};

struct TranResult {
  std::vector<double> t;  // timestamps (t[0] = 0 = DC initial condition)
  la::Mat v;              // t.size() x num_nodes node voltages

  [[nodiscard]] double at(int step, int node) const { return v(step, node); }
};

// `ic` must be the operating point with sources evaluated at t=0 (use
// DcOptions::source_time = 0 when transient sources are present).
TranResult solve_tran(const SimContext& ctx, const OpPoint& ic,
                      const TranOptions& opt);

}  // namespace gcnrl::sim
