#include "sim/ac.hpp"

#include <chrono>
#include <cstdio>

#include "sim/perf.hpp"

namespace gcnrl::sim {
namespace {

// Frequencies span mHz to tens of GHz; fixed-notation std::to_string
// renders both "0.000001" and huge digit strings. Scientific notation
// keeps diagnostics readable at either extreme.
std::string format_freq(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6e", f);
  return buf;
}

}  // namespace

AcStamps build_ac_stamps(const SimContext& ctx, const OpPoint& op) {
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  AcStamps s{la::Mat(m.dim(), m.dim()), la::Mat(m.dim(), m.dim())};

  for (const auto& res : nl.resistors()) {
    stamp_conductance(s.g, m, res.a, res.b, 1.0 / std::max(res.r,
                                                           kMinResistance));
  }
  for (const auto& cap : nl.capacitors()) {
    stamp_conductance(s.c, m, cap.a, cap.b, cap.c);
  }
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& mos = nl.mosfets()[k];
    const MosOp& mop = op.mos[k];
    const MosCaps& c = op.caps[k];
    stamp_vccs(s.g, m, mos.d, mos.s, mos.g, mos.s, mop.gm);
    stamp_conductance(s.g, m, mos.d, mos.s, mop.gds);
    stamp_conductance(s.c, m, mos.g, mos.s, c.cgs);
    stamp_conductance(s.c, m, mos.g, mos.d, c.cgd);
    stamp_conductance(s.c, m, mos.d, mos.b, c.cdb);
    stamp_conductance(s.c, m, mos.s, mos.b, c.csb);
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    if (m.v(src.p) >= 0) {
      s.g(m.v(src.p), b) += 1.0;
      s.g(b, m.v(src.p)) += 1.0;
    }
    if (m.v(src.n) >= 0) {
      s.g(m.v(src.n), b) -= 1.0;
      s.g(b, m.v(src.n)) -= 1.0;
    }
  }
  // Regularization shunt mirroring the DC gmin keeps floating AC nodes
  // (e.g. gates only driven through capacitors) solvable.
  for (int node = 1; node < m.num_nodes(); ++node) {
    s.g(m.v(node), m.v(node)) += 1e-12;
  }
  return s;
}

la::CMat assemble_ac_matrix(const AcStamps& stamps, double omega) {
  using cd = std::complex<double>;
  const int n = stamps.g.rows();
  la::CMat y(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      y(i, j) = cd(stamps.g(i, j), omega * stamps.c(i, j));
    }
  }
  return y;
}

la::CMat build_ac_matrix(const SimContext& ctx, const OpPoint& op,
                         double omega) {
  using cd = std::complex<double>;
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  la::CMat y(m.dim(), m.dim());

  for (const auto& res : nl.resistors()) {
    stamp_conductance(y, m, res.a, res.b,
                      cd(1.0 / std::max(res.r, kMinResistance)));
  }
  for (const auto& cap : nl.capacitors()) {
    stamp_conductance(y, m, cap.a, cap.b, cd(0.0, omega * cap.c));
  }
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& mos = nl.mosfets()[k];
    const MosOp& mop = op.mos[k];
    const MosCaps& c = op.caps[k];
    stamp_vccs(y, m, mos.d, mos.s, mos.g, mos.s, cd(mop.gm));
    stamp_conductance(y, m, mos.d, mos.s, cd(mop.gds));
    stamp_conductance(y, m, mos.g, mos.s, cd(0.0, omega * c.cgs));
    stamp_conductance(y, m, mos.g, mos.d, cd(0.0, omega * c.cgd));
    stamp_conductance(y, m, mos.d, mos.b, cd(0.0, omega * c.cdb));
    stamp_conductance(y, m, mos.s, mos.b, cd(0.0, omega * c.csb));
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    if (m.v(src.p) >= 0) {
      y(m.v(src.p), b) += 1.0;
      y(b, m.v(src.p)) += 1.0;
    }
    if (m.v(src.n) >= 0) {
      y(m.v(src.n), b) -= 1.0;
      y(b, m.v(src.n)) -= 1.0;
    }
  }
  for (int node = 1; node < m.num_nodes(); ++node) {
    y(m.v(node), m.v(node)) += cd(1e-12);
  }
  return y;
}

AcResult solve_ac(const SimContext& ctx, const OpPoint& op,
                  const std::vector<double>& freqs) {
  using cd = std::complex<double>;
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;

  std::vector<cd> rhs(m.dim(), cd(0.0));
  for (const auto& src : nl.isources()) {
    if (src.ac == 0.0) continue;
    // Current p -> n through the source injects into n.
    if (m.v(src.p) >= 0) rhs[m.v(src.p)] -= src.ac;
    if (m.v(src.n) >= 0) rhs[m.v(src.n)] += src.ac;
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    if (src.ac != 0.0) rhs[m.branch(static_cast<int>(k))] += src.ac;
  }

  const AcStamps stamps = build_ac_stamps(ctx, op);

  AcResult out;
  out.freq = freqs;
  out.v = la::CMat(static_cast<int>(freqs.size()), m.num_nodes());
  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const double omega = 2.0 * M_PI * freqs[fi];
    la::CMat y = assemble_ac_matrix(stamps, omega);
    std::vector<cd> x;
    try {
      x = la::Lu<cd>(std::move(y)).solve(rhs);
    } catch (const la::SingularMatrixError&) {
      sim_perf_record(Analysis::Ac, static_cast<long>(fi),
                      std::chrono::duration<double>(clock::now() - t0)
                          .count());
      throw SimError("AC matrix singular at f=" + format_freq(freqs[fi]) +
                     " Hz");
    }
    for (int node = 1; node < m.num_nodes(); ++node) {
      out.v(static_cast<int>(fi), node) = x[m.v(node)];
    }
  }
  sim_perf_record(Analysis::Ac, static_cast<long>(freqs.size()),
                  std::chrono::duration<double>(clock::now() - t0).count());
  return out;
}

}  // namespace gcnrl::sim
