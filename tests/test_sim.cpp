// Simulator validation against closed-form circuit theory: DC, AC,
// transient and noise on circuits with known analytical answers.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/netlist.hpp"
#include "circuit/tech.hpp"
#include "circuits/benchmark_circuits.hpp"
#include "meas/ac_metrics.hpp"
#include "meas/tran_metrics.hpp"
#include "sim/perf.hpp"
#include "sim/simulator.hpp"
#include "sim/structure.hpp"

namespace circuit = gcnrl::circuit;
namespace la = gcnrl::la;
namespace sim = gcnrl::sim;
namespace meas = gcnrl::meas;

namespace {

const circuit::Technology kTech = circuit::make_technology("180nm");

meas::AcCurve curve_of(const sim::AcResult& ac, int node) {
  meas::AcCurve c;
  c.freq = ac.freq;
  for (std::size_t i = 0; i < ac.freq.size(); ++i) {
    c.h.push_back(ac.phasor(static_cast<int>(i), node));
  }
  return c;
}

// Scoped override of the process-wide sparse-engine toggle.
class SparseEngineGuard {
 public:
  explicit SparseEngineGuard(bool on) : prev_(sim::sparse_engine_enabled()) {
    sim::set_sparse_engine_enabled(on);
  }
  ~SparseEngineGuard() { sim::set_sparse_engine_enabled(prev_); }

 private:
  bool prev_;
};

}  // namespace

TEST(Dc, ResistorDivider) {
  circuit::Netlist nl;
  const int vin = nl.node("vin");
  const int mid = nl.node("mid");
  nl.add_vsource("V1", vin, 0, 3.0);
  nl.add_resistor("R1", vin, mid, 1e3, false);
  nl.add_resistor("R2", mid, 0, 2e3, false);
  sim::Simulator s(nl, kTech);
  EXPECT_NEAR(s.op().node(mid), 2.0, 1e-6);
  // Power drawn from the source: V^2 / (R1+R2) = 3 mW.
  EXPECT_NEAR(s.supply_power(), 3.0e-3, 1e-8);
  EXPECT_NEAR(s.source_current("V1"), 1e-3, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
  circuit::Netlist nl;
  const int n1 = nl.node("n1");
  // 1 mA injected INTO n1 (p=ground, n=n1), 2k to ground -> +2 V.
  nl.add_isource("I1", 0, n1, 1e-3);
  nl.add_resistor("R1", n1, 0, 2e3, false);
  sim::Simulator s(nl, kTech);
  EXPECT_NEAR(s.op().node(n1), 2.0, 1e-6);
}

TEST(Mosfet, SquareLawTrends) {
  const sim::MosModel m = sim::mos_model(kTech, false);
  circuit::Mosfet geom;
  geom.w = 10e-6;
  geom.l = 1e-6;
  geom.m = 1;
  const auto op1 = sim::eval_mos(m, geom, 0.9, 1.8, 0.0);
  const auto op2 = sim::eval_mos(m, geom, 1.2, 1.8, 0.0);
  EXPECT_GT(op2.id, op1.id);        // more gate drive, more current
  EXPECT_GT(op1.id, 0.0);
  EXPECT_GT(op1.gm, 0.0);
  EXPECT_GT(op1.gds, 0.0);
  // Saturation: gds much smaller than gm.
  EXPECT_LT(op1.gds, op1.gm);
  // Off device: negligible current.
  const auto off = sim::eval_mos(m, geom, 0.0, 1.8, 0.0);
  EXPECT_LT(off.id, 1e-9);
  // Zero vds: zero current (symmetric model).
  const auto sym = sim::eval_mos(m, geom, 1.2, 0.0, 0.0);
  EXPECT_NEAR(sym.id, 0.0, 1e-15);
}

TEST(Mosfet, WidthAndMultiplierScaleCurrent) {
  const sim::MosModel m = sim::mos_model(kTech, false);
  circuit::Mosfet g1;
  g1.w = 5e-6;
  g1.l = 0.5e-6;
  g1.m = 1;
  circuit::Mosfet g2 = g1;
  g2.m = 4;
  circuit::Mosfet g3 = g1;
  g3.w = 20e-6;
  const auto i1 = sim::eval_mos(m, g1, 1.0, 1.5, 0.0).id;
  const auto i2 = sim::eval_mos(m, g2, 1.0, 1.5, 0.0).id;
  const auto i3 = sim::eval_mos(m, g3, 1.0, 1.5, 0.0).id;
  EXPECT_NEAR(i2 / i1, 4.0, 1e-9);
  EXPECT_NEAR(i3 / i1, 4.0, 1e-9);
}

TEST(Mosfet, PmosMirrorsNmos) {
  const sim::MosModel mn = sim::mos_model(kTech, false);
  sim::MosModel mp = mn;
  mp.pmos = true;
  circuit::Mosfet geom;
  geom.w = 10e-6;
  geom.l = 0.5e-6;
  // PMOS with all voltages mirrored: current flips sign exactly.
  const auto n = sim::eval_mos(mn, geom, 1.0, 1.5, 0.0);
  const auto p = sim::eval_mos(mp, geom, -1.0, -1.5, 0.0);
  EXPECT_NEAR(n.id, -p.id, 1e-15);
  EXPECT_NEAR(n.gm, p.gm, 1e-9);
  EXPECT_NEAR(n.gds, p.gds, 1e-9);
}

TEST(Mosfet, ReversedDeviceIsSymmetric) {
  const sim::MosModel m = sim::mos_model(kTech, false);
  circuit::Mosfet geom;
  geom.w = 4e-6;
  geom.l = 0.3e-6;
  const auto fwd = sim::eval_mos(m, geom, 1.2, 0.9, 0.3);
  // Swap drain/source: same magnitude, opposite sign.
  const auto rev = sim::eval_mos(m, geom, 1.2, 0.3, 0.9);
  EXPECT_NEAR(fwd.id, -rev.id, 1e-12);
}

TEST(Dc, DiodeConnectedNmosCarriesBiasCurrent) {
  circuit::Netlist nl;
  const int n1 = nl.node("n1");
  nl.add_isource("IB", 0, n1, 50e-6);  // 50 uA into the diode
  nl.add_nmos("M1", n1, n1, 0, 0, 10e-6, 0.5e-6);
  sim::Simulator s(nl, kTech);
  const double v = s.op().node(n1);
  EXPECT_GT(v, kTech.vth0_n * 0.8);  // needs real gate drive
  EXPECT_LT(v, kTech.vdd);
  EXPECT_NEAR(s.op().mos[0].id, 50e-6, 1e-7);
}

TEST(Dc, NmosCommonSourceOperatingPoint) {
  // CS stage with resistor load; check KCL: I(R) == Id.
  circuit::Netlist nl;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int out = nl.node("out");
  const int in = nl.node("in");
  nl.add_vsource("VDD", vdd, 0, 1.8);
  nl.add_vsource("VIN", in, 0, 0.75);
  nl.add_resistor("RL", vdd, out, 10e3, false);
  nl.add_nmos("M1", out, in, 0, 0, 5e-6, 0.36e-6);
  sim::Simulator s(nl, kTech);
  const double vout = s.op().node(out);
  const double i_r = (1.8 - vout) / 10e3;
  EXPECT_NEAR(i_r, s.op().mos[0].id, 1e-9);
  EXPECT_GT(vout, 0.05);
  EXPECT_LT(vout, 1.75);
}

TEST(Ac, RcLowPassPole) {
  circuit::Netlist nl;
  const int in = nl.node("in");
  const int out = nl.node("out");
  nl.add_vsource("VIN", in, 0, 0.0, /*ac=*/1.0);
  nl.add_resistor("R1", in, out, 1e3, false);
  nl.add_capacitor("C1", out, 0, 1e-9, false);
  sim::Simulator s(nl, kTech);
  const double f_pole = 1.0 / (2.0 * M_PI * 1e3 * 1e-9);  // ~159 kHz
  const auto ac = s.ac(sim::logspace(1e2, 1e8, 121));
  const auto curve = curve_of(ac, out);
  EXPECT_NEAR(meas::dc_gain(curve), 1.0, 1e-6);
  EXPECT_NEAR(meas::bandwidth_3db(curve), f_pole, 0.02 * f_pole);
  EXPECT_NEAR(meas::peaking_db(curve), 0.0, 1e-6);
  // Phase at the pole is -45 degrees.
  const double mag_at_pole = meas::magnitude_at(curve, f_pole);
  EXPECT_NEAR(mag_at_pole, 1.0 / std::sqrt(2.0), 0.01);
}

TEST(Ac, CommonSourceGainMatchesSmallSignal) {
  circuit::Netlist nl;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int out = nl.node("out");
  const int in = nl.node("in");
  nl.add_vsource("VDD", vdd, 0, 1.8);
  nl.add_vsource("VIN", in, 0, 0.8, /*ac=*/1.0);
  nl.add_resistor("RL", vdd, out, 10e3, false);
  nl.add_nmos("M1", out, in, 0, 0, 20e-6, 0.36e-6);
  sim::Simulator s(nl, kTech);
  const auto& op = s.op();
  const double gm = op.mos[0].gm;
  const double gds = op.mos[0].gds;
  const double expected = gm / (gds + 1e-4);  // gm * (ro || RL)
  const auto ac = s.ac({10.0});
  const double gain = std::abs(ac.phasor(0, out));
  EXPECT_NEAR(gain, expected, 0.02 * expected);
}

TEST(Ac, SourceFollowerGainBelowUnity) {
  circuit::Netlist nl;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int in = nl.node("in");
  const int out = nl.node("out");
  nl.add_vsource("VDD", vdd, 0, 1.8);
  nl.add_vsource("VIN", in, 0, 1.3, 1.0);
  nl.add_nmos("M1", vdd, in, out, 0, 40e-6, 0.36e-6);
  nl.add_resistor("RS", out, 0, 20e3, false);
  sim::Simulator s(nl, kTech);
  const auto ac = s.ac({10.0});
  const double gain = std::abs(ac.phasor(0, out));
  EXPECT_GT(gain, 0.6);
  EXPECT_LT(gain, 1.0);
}

TEST(Tran, RcStepResponseTimeConstant) {
  circuit::Netlist nl;
  const int in = nl.node("in");
  const int out = nl.node("out");
  circuit::Pwl step{{{0.0, 0.0}, {1e-9, 0.0}, {1.1e-9, 1.0}}};
  nl.add_vsource("VIN", in, 0, 0.0, 0.0, step);
  nl.add_resistor("R1", in, out, 1e3, false);
  nl.add_capacitor("C1", out, 0, 1e-9, false);
  sim::Simulator s(nl, kTech);
  sim::TranOptions opt;
  opt.tstop = 10e-6;
  opt.dt = 5e-9;
  const auto tr = s.tran(opt);
  meas::TranCurve c;
  c.t = tr.t;
  for (std::size_t i = 0; i < tr.t.size(); ++i) {
    c.v.push_back(tr.v(static_cast<int>(i), out));
  }
  // After one tau (1 us) from the step, v = 1 - e^-1.
  EXPECT_NEAR(meas::value_at(c, 1.1e-9 + 1e-6), 1.0 - std::exp(-1.0), 0.02);
  EXPECT_NEAR(c.v.back(), 1.0, 1e-3);
  // Settling to 1%: about 4.6 tau.
  const double ts = meas::settling_time(c, 1.1e-9, 0.01);
  EXPECT_NEAR(ts, 4.6e-6, 0.5e-6);
}

TEST(Tran, CapacitorHoldsInitialCondition) {
  // No stimulus change: output stays at DC level.
  circuit::Netlist nl;
  const int in = nl.node("in");
  const int out = nl.node("out");
  nl.add_vsource("VIN", in, 0, 1.0);
  nl.add_resistor("R1", in, out, 1e3, false);
  nl.add_capacitor("C1", out, 0, 1e-12, false);
  sim::Simulator s(nl, kTech);
  sim::TranOptions opt;
  opt.tstop = 1e-7;
  opt.dt = 1e-9;
  const auto tr = s.tran(opt);
  for (std::size_t i = 0; i < tr.t.size(); ++i) {
    EXPECT_NEAR(tr.v(static_cast<int>(i), out), 1.0, 1e-6);
  }
}

TEST(Noise, ResistorDividerThermalNoise) {
  // Output noise of a divider = 4kT * (R1 || R2).
  circuit::Netlist nl;
  const int vin = nl.node("vin");
  const int mid = nl.node("mid");
  nl.add_vsource("V1", vin, 0, 1.0);
  nl.add_resistor("R1", vin, mid, 1e4, false);
  nl.add_resistor("R2", mid, 0, 1e4, false);
  sim::Simulator s(nl, kTech);
  const auto nr = s.noise({1e3, 1e6}, mid, 0);
  const double kT = 1.380649e-23 * 300.0;
  const double expected = 4.0 * kT * 5e3;  // R1 || R2 = 5k
  EXPECT_NEAR(nr.out_psd[0], expected, 0.01 * expected);
  EXPECT_NEAR(nr.out_psd[1], expected, 0.01 * expected);
}

TEST(Noise, MosfetAddsFlickerAtLowFreq) {
  circuit::Netlist nl;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int out = nl.node("out");
  const int in = nl.node("in");
  nl.add_vsource("VDD", vdd, 0, 1.8);
  nl.add_vsource("VIN", in, 0, 0.8);
  nl.add_resistor("RL", vdd, out, 10e3, false);
  nl.add_nmos("M1", out, in, 0, 0, 20e-6, 0.36e-6);
  sim::Simulator s(nl, kTech);
  const auto nr = s.noise({10.0, 1e6}, out, 0);
  // 1/f noise dominates at 10 Hz: PSD there must exceed the 1 MHz PSD.
  EXPECT_GT(nr.out_psd[0], nr.out_psd[1] * 2.0);
}

TEST(Dc, FailsCleanlyOnIllConditionedCircuit) {
  // A voltage source loop (V1 parallel V2 with different values) is
  // genuinely singular; expect SimError, not UB.
  circuit::Netlist nl;
  const int a = nl.node("a");
  nl.add_vsource("V1", a, 0, 1.0);
  nl.add_vsource("V2", a, 0, 2.0);
  sim::Simulator s(nl, kTech);
  EXPECT_THROW(s.op(), sim::SimError);
}

TEST(Meas, PhaseMarginOfSinglePole) {
  // H(s) = A / (1 + s/p): PM at unity crossing ~ 90 deg for A >> 1.
  meas::AcCurve c;
  const double a0 = 1000.0, p = 1e3;
  for (double f = 1.0; f < 1e8; f *= 1.2) {
    c.freq.push_back(f);
    c.h.push_back(a0 / std::complex<double>(1.0, f / p));
  }
  EXPECT_NEAR(meas::phase_margin_deg(c), 90.0, 2.0);
  EXPECT_NEAR(meas::unity_crossing(c), a0 * p, 0.05 * a0 * p);
}

TEST(Meas, PhaseMarginTwoPoleLowMargin) {
  meas::AcCurve c;
  const double a0 = 1000.0, p1 = 1e3, p2 = 3e4;
  for (double f = 1.0; f < 1e9; f *= 1.15) {
    c.freq.push_back(f);
    c.h.push_back(a0 / (std::complex<double>(1.0, f / p1) *
                        std::complex<double>(1.0, f / p2)));
  }
  const double pm = meas::phase_margin_deg(c);
  EXPECT_LT(pm, 35.0);
  EXPECT_GT(pm, 0.0);
}

TEST(Meas, StableLoopReports180) {
  meas::AcCurve c;
  for (double f = 1.0; f < 1e6; f *= 2.0) {
    c.freq.push_back(f);
    c.h.push_back(0.5 / std::complex<double>(1.0, f / 1e3));
  }
  EXPECT_DOUBLE_EQ(meas::phase_margin_deg(c), 180.0);
}

TEST(Meas, Logspace) {
  const auto f = sim::logspace(1.0, 1000.0, 4);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_NEAR(f[0], 1.0, 1e-12);
  EXPECT_NEAR(f[1], 10.0, 1e-9);
  EXPECT_NEAR(f[3], 1000.0, 1e-9);
}

// --- G/C split and DC warm start ------------------------------------------

// The split assembly Y = G + j*omega*C must reproduce the legacy
// walk-per-frequency matrix on every benchmark circuit: real parts are
// accumulated in the identical order (bitwise equal); imaginary parts
// regroup omega*(c1+c2) vs omega*c1 + omega*c2 and may differ in the last
// ulp, hence the relative tolerance.
TEST(Ac, SplitStampsMatchLegacyAssembly) {
  for (const char* name : {"Two-TIA", "Two-Volt", "Three-TIA", "LDO"}) {
    auto bc = gcnrl::circuits::make_benchmark(name, kTech);
    circuit::Netlist nl = bc.netlist;
    bc.space.apply(nl, bc.human_expert);
    sim::Simulator s(nl, kTech);
    const sim::OpPoint& op = s.op();
    const sim::AcStamps stamps = sim::build_ac_stamps(s.context(), op);
    for (const double f : {1e2, 1e5, 1e8, 1e10}) {
      const double omega = 2.0 * M_PI * f;
      const la::CMat legacy = sim::build_ac_matrix(s.context(), op, omega);
      const la::CMat split = sim::assemble_ac_matrix(stamps, omega);
      ASSERT_EQ(legacy.rows(), split.rows());
      for (int i = 0; i < legacy.rows(); ++i) {
        for (int j = 0; j < legacy.cols(); ++j) {
          EXPECT_EQ(legacy(i, j).real(), split(i, j).real())
              << name << " (" << i << "," << j << ") at f=" << f;
          const double tol =
              1e-12 * std::max(1.0, std::fabs(legacy(i, j).imag()));
          EXPECT_NEAR(legacy(i, j).imag(), split(i, j).imag(), tol)
              << name << " (" << i << "," << j << ") at f=" << f;
        }
      }
    }
  }
}

// A converged operating point handed back as the warm start must converge
// directly (strategy 0) in a handful of iterations and land on the same
// solution as the cold ladder within solver tolerance.
TEST(Dc, WarmStartFromConvergedOpSkipsTheLadder) {
  for (const char* name : {"Two-TIA", "Two-Volt", "Three-TIA", "LDO"}) {
    auto bc = gcnrl::circuits::make_benchmark(name, kTech);
    circuit::Netlist nl = bc.netlist;
    bc.space.apply(nl, bc.human_expert);
    const sim::SimContext ctx(nl, kTech);
    sim::DcStats cold_stats;
    const sim::OpPoint cold =
        sim::solve_dc(ctx, {}, nullptr, &cold_stats);
    EXPECT_FALSE(cold_stats.warm_attempted) << name;

    const std::vector<double> guess = sim::project_op(cold, ctx.map);
    sim::DcStats warm_stats;
    const sim::OpPoint warm =
        sim::solve_dc(ctx, {}, &guess, &warm_stats);
    EXPECT_TRUE(warm_stats.warm_attempted) << name;
    EXPECT_TRUE(warm_stats.warm_converged) << name;
    EXPECT_EQ(warm_stats.strategy, 0) << name;
    EXPECT_LT(warm_stats.newton_iters, cold_stats.newton_iters) << name;
    ASSERT_EQ(cold.v.size(), warm.v.size());
    for (std::size_t i = 0; i < cold.v.size(); ++i) {
      EXPECT_NEAR(cold.v[i], warm.v[i], 1e-5) << name << " node " << i;
    }
  }
}

// A hopeless warm guess must fall back to the untouched ladder, and the
// fallback has to reproduce the cold solution BITWISE: the ladder starts
// from zeros either way, so the guess can cost iterations but never
// change the result.
TEST(Dc, WarmStartFallbackIsBitwiseIdenticalToCold) {
  auto bc = gcnrl::circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  const sim::SimContext ctx(nl, kTech);
  const sim::OpPoint cold = sim::solve_dc(ctx);

  // +-1 MV alternating: Newton under the 0.5 V/iteration damping cannot
  // reach any physical solution within warm_max_iter from here.
  std::vector<double> garbage(static_cast<std::size_t>(ctx.map.dim()));
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = (i % 2 == 0) ? 1e6 : -1e6;
  }
  sim::DcStats stats;
  const sim::OpPoint warm = sim::solve_dc(ctx, {}, &garbage, &stats);
  EXPECT_TRUE(stats.warm_attempted);
  EXPECT_FALSE(stats.warm_converged);
  EXPECT_GE(stats.strategy, 1);
  ASSERT_EQ(cold.v.size(), warm.v.size());
  for (std::size_t i = 0; i < cold.v.size(); ++i) {
    EXPECT_EQ(cold.v[i], warm.v[i]) << "node " << i;
  }
  ASSERT_EQ(cold.branch_i.size(), warm.branch_i.size());
  for (std::size_t i = 0; i < cold.branch_i.size(); ++i) {
    EXPECT_EQ(cold.branch_i[i], warm.branch_i[i]) << "branch " << i;
  }
}

// op_at_time_zero() is memoized like op(): the second call must return
// the same object without another DC solve.
TEST(Dc, OpAtTimeZeroIsMemoized) {
  auto bc = gcnrl::circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::Simulator s(nl, kTech);
  const sim::OpPoint& first = s.op_at_time_zero();
  const long calls_after_first = sim::sim_perf_snapshot().dc.calls;
  const sim::OpPoint& second = s.op_at_time_zero();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(sim::sim_perf_snapshot().dc.calls, calls_after_first);
}

// The per-analysis perf registry attributes calls/items to the right
// analysis and never charges wall time to analyses that did not run.
TEST(Perf, RegistryAttributesPerAnalysis) {
  auto bc = gcnrl::circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::sim_perf_reset();
  sim::Simulator s(nl, kTech);
  s.op();
  s.ac(sim::logspace(1e3, 1e9, 13));
  const sim::SimPerf p = sim::sim_perf_snapshot();
  EXPECT_EQ(p.dc.calls, 1);
  EXPECT_GT(p.dc.items, 0);  // Newton iterations
  EXPECT_EQ(p.ac.calls, 1);
  EXPECT_EQ(p.ac.items, 13);
  EXPECT_EQ(p.noise.calls, 0);
  EXPECT_EQ(p.tran.calls, 0);
  EXPECT_GE(p.dc.seconds, 0.0);
  sim::sim_perf_reset();
  EXPECT_EQ(sim::sim_perf_snapshot().dc.calls, 0);
}

// ---------------------------------------------------------------------
// Sparse structure-reuse engine vs the legacy dense path.
// ---------------------------------------------------------------------

// All four analyses on a realistic MOS circuit must agree between the
// two engines: both converge to the same root, so the results differ
// only at the level of floating-point solve ordering.
TEST(Sparse, AllAnalysesAgreeWithDense) {
  auto bc = gcnrl::circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  const auto freqs = sim::logspace(1e3, 1e10, 21);
  sim::TranOptions topt;
  topt.tstop = 20e-9;
  topt.dt = 0.5e-9;

  sim::OpPoint op[2];
  sim::AcResult ac[2];
  sim::NoiseResult noise[2];
  sim::TranResult tran[2];
  for (const bool sparse : {false, true}) {
    SparseEngineGuard guard(sparse);
    sim::Simulator s(nl, kTech);
    const int k = sparse ? 1 : 0;
    op[k] = s.op();
    ac[k] = s.ac(freqs);
    noise[k] = s.noise(freqs, 1);
    tran[k] = s.tran(topt);
  }
  for (std::size_t i = 0; i < op[0].v.size(); ++i) {
    EXPECT_NEAR(op[1].v[i], op[0].v[i],
                1e-12 * std::max(1.0, std::fabs(op[0].v[i])))
        << "node " << i;
  }
  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const int f = static_cast<int>(fi);
    for (int n = 1; n < static_cast<int>(op[0].v.size()); ++n) {
      const auto d = ac[1].phasor(f, n) - ac[0].phasor(f, n);
      EXPECT_NEAR(std::abs(d), 0.0,
                  1e-10 * std::max(1.0, std::abs(ac[0].phasor(f, n))))
          << "f=" << freqs[fi] << " node=" << n;
    }
    // Floor guards supply-pinned probes whose PSD is rounding dust
    // (~1e-48): real PSDs on these circuits sit many decades above it.
    EXPECT_NEAR(noise[1].out_psd[fi], noise[0].out_psd[fi],
                1e-10 * std::max(noise[0].out_psd[fi], 1e-30))
        << "f=" << freqs[fi];
  }
  ASSERT_EQ(tran[0].t.size(), tran[1].t.size());
  for (std::size_t st = 0; st < tran[0].t.size(); ++st) {
    for (int n = 1; n < static_cast<int>(op[0].v.size()); ++n) {
      EXPECT_NEAR(tran[1].at(static_cast<int>(st), n),
                  tran[0].at(static_cast<int>(st), n),
                  1e-10 * std::max(1.0, std::fabs(tran[0].at(
                                       static_cast<int>(st), n))))
          << "step=" << st << " node=" << n;
    }
  }
}

// A structurally singular system must not crash the sparse engine: it
// counts a fallback, reruns densely, and the dense path reports the same
// SimError the legacy engine always threw.
TEST(Sparse, SingularCircuitFallsBackThenFailsCleanly) {
  circuit::Netlist nl;
  const int a = nl.node("a");
  nl.add_vsource("V1", a, 0, 1.0);
  nl.add_vsource("V2", a, 0, 2.0);
  SparseEngineGuard guard(true);
  sim::sim_perf_reset();
  sim::Simulator s(nl, kTech);
  EXPECT_THROW(s.op(), sim::SimError);
  EXPECT_GE(sim::sim_perf_snapshot().dc.sparse_fallbacks, 1);
  sim::sim_perf_reset();
}

// The transient LU-failure diagnostic must name both the timestep (in
// scientific notation — ns-scale times collapse to 0.000000 otherwise)
// and the Newton iteration, on either engine (the sparse path falls back
// and reruns densely, so the dense diagnostic is the one that surfaces).
TEST(Tran, SingularJacobianDiagnosticNamesStepAndIteration) {
  circuit::Netlist nl;
  const int a = nl.node("a");
  nl.add_vsource("V1", a, 0, 1.0);
  nl.add_vsource("V2", a, 0, 2.0);
  for (const bool sparse : {false, true}) {
    SparseEngineGuard guard(sparse);
    sim::Simulator s(nl, kTech);
    // Hand the solver a zero initial condition directly: the DC solve on
    // this netlist (correctly) fails, but the transient Jacobian path is
    // what this test pins down.
    sim::OpPoint ic;
    ic.v.assign(2, 0.0);
    ic.branch_i.assign(2, 0.0);
    sim::TranOptions opt;
    opt.tstop = 4e-9;
    opt.dt = 1e-9;
    try {
      sim::solve_tran(s.context(), ic, opt);
      FAIL() << "expected SimError (sparse=" << sparse << ")";
    } catch (const sim::SimError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("(Newton iteration "), std::string::npos) << msg;
      EXPECT_NE(msg.find("at t="), std::string::npos) << msg;
      EXPECT_NE(msg.find("e-"), std::string::npos)
          << "timestep not in scientific notation: " << msg;
    }
  }
  sim::sim_perf_reset();
}

// Toggling the engine off forces the legacy dense path unconditionally:
// no sparse fallbacks can be recorded while it is disabled.
TEST(Sparse, DisabledEngineNeverRecordsFallbacks) {
  auto bc = gcnrl::circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  SparseEngineGuard guard(false);
  sim::sim_perf_reset();
  sim::Simulator s(nl, kTech);
  s.op();
  s.ac(sim::logspace(1e3, 1e9, 13));
  const sim::SimPerf p = sim::sim_perf_snapshot();
  EXPECT_EQ(p.dc.sparse_fallbacks, 0);
  EXPECT_EQ(p.ac.sparse_fallbacks, 0);
  sim::sim_perf_reset();
}
