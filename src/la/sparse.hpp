// Structure-reuse sparse LU for the circuit simulator's MNA systems.
//
// The sizing workload factors the *same sparsity pattern* thousands of
// times with different values (Newton iterations, frequency points,
// timesteps, designs): sizing changes element values, never topology.
// This module splits the work accordingly:
//
//  * SparsePattern — an immutable CSR pattern computed once per topology.
//    All assembly happens into a flat value array aligned with it, so the
//    per-solve cost has no dense zero-fill and no coordinate lookups.
//  * SparseLu<T> — left-looking (Gilbert-Peierls) LU over the pattern.
//    The first factor() chooses a pivot order (threshold partial pivoting
//    with a diagonal preference, which keeps fill low on the structurally
//    symmetric MNA pattern without a separate ordering pass) and records
//    the symbolic result: pivot permutation plus the exact nonzero
//    pattern of L and U. Every later refactor() replays that recorded
//    elimination with *fixed pivots* — straight-line numeric code, no
//    searching — and guards it with a per-column pivot check so values
//    that have drifted away from the recorded pivot choice re-pivot
//    instead of amplifying roundoff.
//  * SparseSweepLu — the AC/noise sweep engine: factors
//    Y(w) = G + j*w*C for a block of frequency points over one symbolic
//    factorization, with split re/im (SoA) value arrays whose inner loops
//    run across the frequency lanes and auto-vectorize.
//
// Numerical safety contract: factor_values() returns false when neither
// the recorded pivots nor a fresh pivot search produce an acceptable
// factorization (singular matrix, or element growth past
// kSparseGrowthLimit). Callers fall back to the dense la::Lu path, which
// is bitwise the legacy behaviour.
#pragma once

#include <cmath>
#include <complex>
#include <type_traits>
#include <utility>
#include <vector>

namespace gcnrl::la {

// Pivot acceptance thresholds (see SparseLu). kSparsePivotRel mirrors the
// classic SPICE threshold-pivoting default: a pivot is acceptable when it
// is within 1e-3 of the largest candidate in its column.
inline constexpr double kSparsePivotRel = 1e-3;
inline constexpr double kSparsePivotAbs = 1e-300;
// Element-growth ceiling: max|U| may not exceed this multiple of max|A|.
inline constexpr double kSparseGrowthLimit = 1e10;

// Immutable CSR sparsity pattern (column indices ascending per row).
struct SparsePattern {
  int n = 0;
  std::vector<int> row_ptr;  // size n + 1
  std::vector<int> col_idx;  // size nnz

  [[nodiscard]] int nnz() const { return static_cast<int>(col_idx.size()); }
  // Value-array slot of entry (r, c); -1 when (r, c) is not in the pattern.
  [[nodiscard]] int slot(int r, int c) const;

  // Builds a pattern from a coordinate list (duplicates collapse).
  static SparsePattern from_coords(int n,
                                   std::vector<std::pair<int, int>> coords);
};

template <typename T>
class SparseLu {
 public:
  enum class Status {
    Ok,
    PivotCheck,  // refactor only: recorded pivot failed the threshold test
    Growth,      // factorization exceeded kSparseGrowthLimit
    Singular,    // no acceptable pivot at some column
  };

  // The pattern must outlive the SparseLu.
  explicit SparseLu(const SparsePattern& pattern);

  // Fresh factorization of `vals` (pattern-aligned value array): chooses a
  // pivot order and records the symbolic structure for refactor().
  Status factor(const T* vals);
  // Replays the recorded elimination with fixed pivots (numeric only).
  // Requires a prior successful factor().
  Status refactor(const T* vals);
  // refactor() when a symbolic factorization exists, transparently
  // re-pivoting via factor() when the pivot check rejects the recorded
  // order. Returns false when the matrix cannot be factored acceptably —
  // the caller's cue to fall back to dense la::Lu.
  bool factor_values(const T* vals);
  // Drops the recorded symbolic factorization: the next factor_values()
  // chooses pivots from scratch. Used to keep warm-start fallback paths
  // bitwise-identical to cold solves (no pivot history from the abandoned
  // warm attempt may leak into the cold ladder).
  void invalidate() {
    symbolic_ok_ = false;
    numeric_ok_ = false;
  }

  // Solve A x = b / A^T x = b (A^H with conjugate=true, complex only).
  // b and x must not alias; both have size n. No heap allocation.
  void solve_into(const T* b, T* x) const;
  void solve_transposed_into(const T* b, T* x, bool conjugate = false) const;

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] bool factored() const { return numeric_ok_; }
  // L/U fill (below/above-diagonal entries + n pivots) once factored.
  [[nodiscard]] int factor_nnz() const {
    return static_cast<int>(lrow_.size() + upos_.size()) + n_;
  }
  [[nodiscard]] Status last_status() const { return last_status_; }
  // Times a refactor pivot check forced a fresh pivot search.
  [[nodiscard]] long repivots() const { return repivots_; }

 private:
  friend class SparseSweepLu;

  static double mag(const T& v) {
    if constexpr (std::is_same_v<T, std::complex<double>>) {
      return std::abs(v);
    } else {
      return std::fabs(v);
    }
  }

  // Depth-first reach of column j through the already-built L columns.
  void reach(int j);
  void freeze_positions();

  const SparsePattern* pat_ = nullptr;
  int n_ = 0;

  // Column-compressed view of the pattern with slots into the CSR array.
  std::vector<int> cptr_;   // n + 1
  std::vector<int> crow_;   // row index per CSC entry
  std::vector<int> cslot_;  // CSR value slot per CSC entry

  // Recorded factorization, column-major. L is unit-diagonal; lrow_ holds
  // original row ids (for the original-row-space numeric work array),
  // lpos_ the same entries as pivot positions (for the solves).
  std::vector<int> lptr_, lrow_, lpos_;
  std::vector<T> lval_;
  std::vector<int> uptr_, upos_;  // U entries as pivot positions, ascending
  std::vector<T> uval_;
  std::vector<T> udiag_;          // pivot values by position
  std::vector<int> perm_r_;       // pivot position -> original row
  std::vector<int> pinv_;         // original row -> pivot position (-1)
  bool symbolic_ok_ = false;
  bool numeric_ok_ = false;
  Status last_status_ = Status::Singular;
  long repivots_ = 0;

  // Scratch (sized n once; solves use wk_, factor uses x_/flag_/...).
  std::vector<T> x_;          // dense accumulator, original-row space
  mutable std::vector<T> wk_; // solve work, pivot space
  std::vector<int> flag_;     // DFS visited marks
  std::vector<int> stack_, istack_;  // DFS stacks
  std::vector<int> reach_;    // rows visited for the current column
};

using SparseLuD = SparseLu<double>;
using SparseLuC = SparseLu<std::complex<double>>;

// SoA frequency-sweep factorization: Y(w_f) = G + j*w_f*C for a block of
// up to kMaxLanes frequency points sharing one symbolic factorization.
// The symbolic (pivot order + fill pattern) is recomputed per block from
// a scalar complex factorization at the block's first frequency — on a
// log-spaced grid adjacent points have nearly identical magnitudes, so
// the fixed pivots hold across the block (guarded per lane by the same
// threshold pivot check as SparseLu::refactor). The numeric refactor and
// the triangular solves store values as split re/im arrays with the
// frequency lane as the fastest-varying index, so the inner loops are
// straight-line lane sweeps the compiler auto-vectorizes.
class SparseSweepLu {
 public:
  static constexpr int kMaxLanes = 8;
  using cd = std::complex<double>;

  explicit SparseSweepLu(const SparsePattern& pattern);

  // Factors Y_f = G + j*omega[f]*C for lanes f = 0..count-1. gvals/cvals
  // are pattern-aligned real value arrays. Returns false when any lane
  // fails the pivot acceptance test (or the block's scalar factorization
  // fails outright) — the caller's cue to run the sweep densely.
  bool factor_block(const double* gvals, const double* cvals,
                    const double* omega, int count);

  // Solve Y_f x_f = b for every lane of the last factor_block; x_f is
  // written to out + f*stride (stride >= n). The RHS is shared across
  // lanes, matching the AC/noise sweeps whose excitation is
  // frequency-independent.
  void solve_block(const cd* b, cd* out, int stride) const;
  // Adjoint solves: Y_f^T x_f = b (conjugate=false), as used by the
  // noise sweep.
  void solve_transposed_block(const cd* b, cd* out, int stride) const;

  [[nodiscard]] int size() const { return scalar_.size(); }
  [[nodiscard]] int factor_nnz() const { return scalar_.factor_nnz(); }
  // Scalar re-pivots triggered by blocked-lane rejections; diagnostic
  // only.
  [[nodiscard]] long repivots() const { return scalar_.repivots(); }

 private:
  // Blocked refactor over scalar_'s current pivot order. Returns false
  // when any lane fails the pivot-acceptance or growth test.
  bool refactor_lanes(const double* gvals, const double* cvals,
                      const double* omega, int count);

  SparseLu<cd> scalar_;  // symbolic owner; factored only to (re)pivot
  int lanes_ = 0;

  // Blocked numeric storage mirroring scalar_'s symbolic arrays:
  // entry-major, lane-fastest (index e*kMaxLanes + f).
  std::vector<double> lre_, lim_, ure_, uim_, dre_, dim_;
  std::vector<double> xre_, xim_;            // n x kMaxLanes work
  std::vector<cd> vals0_;                    // lane-0 complex assembly
  mutable std::vector<double> wre_, wim_;    // solve work
};

}  // namespace gcnrl::la
