// Compare all optimization methods on one circuit with a small budget —
// a minimal version of the Table I experiment for interactive use.
//
// Usage: compare_optimizers [circuit] [steps]
//        circuit in {Two-TIA, Two-Volt, Three-TIA, LDO}; default Two-TIA.
#include <cstdio>

#include "circuits/benchmark_circuits.hpp"
#include "common/table.hpp"
#include "opt/bayes_opt.hpp"
#include "opt/cma_es.hpp"
#include "opt/mace.hpp"
#include "rl/run_loop.hpp"

using namespace gcnrl;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "Two-TIA";
  const int steps = argc > 2 ? std::atoi(argv[2]) : 300;
  const auto tech = circuit::make_technology("180nm");

  // One calibration shared by all methods.
  env::SizingEnv probe(circuits::make_benchmark(name, tech));
  Rng rng(1);
  probe.calibrate(200, rng);
  const env::FomSpec fom = probe.bench().fom;
  auto fresh_env = [&] {
    auto bc = circuits::make_benchmark(name, tech);
    bc.fom = fom;
    return env::SizingEnv(std::move(bc));
  };

  // Evals counts requested evaluations; Sims the simulator runs actually
  // executed — the difference was served by the EvalService result cache.
  TextTable table({"Method", "Best FoM", "Evals", "Sims"});
  {
    auto e = fresh_env();
    const auto h = e.evaluate_params(e.bench().human_expert);
    table.add_row({"Human", TextTable::num(h.fom, 3), "-", "-"});
  }
  {
    auto e = fresh_env();
    const auto r = rl::run_random(e, steps, Rng(2));
    table.add_row({"Random", TextTable::num(r.best_fom, 3),
                   std::to_string(e.num_evals()),
                   std::to_string(e.num_sims())});
  }
  {
    auto e = fresh_env();
    opt::CmaEs es(e.flat_dim(), Rng(3));
    const auto r = rl::run_optimizer(e, es, steps);
    table.add_row({"ES (CMA-ES)", TextTable::num(r.best_fom, 3),
                   std::to_string(e.num_evals()),
                   std::to_string(e.num_sims())});
  }
  {
    auto e = fresh_env();
    opt::BayesOpt bo(e.flat_dim(), Rng(4));
    const auto r = rl::run_optimizer(e, bo, std::min(steps, 150));
    table.add_row({"BO", TextTable::num(r.best_fom, 3),
                   std::to_string(e.num_evals()),
                   std::to_string(e.num_sims())});
  }
  {
    auto e = fresh_env();
    opt::Mace mace(e.flat_dim(), Rng(5));
    const auto r = rl::run_optimizer(e, mace, std::min(steps, 150));
    table.add_row({"MACE", TextTable::num(r.best_fom, 3),
                   std::to_string(e.num_evals()),
                   std::to_string(e.num_sims())});
  }
  for (const bool use_gcn : {false, true}) {
    auto e = fresh_env();
    rl::DdpgConfig cfg;
    cfg.warmup = steps / 3;
    cfg.use_gcn = use_gcn;
    rl::DdpgAgent agent(e.state(), e.adjacency(), e.kinds(), cfg, Rng(6));
    const auto r = rl::run_ddpg(e, agent, steps);
    table.add_row({use_gcn ? "GCN-RL" : "NG-RL",
                   TextTable::num(r.best_fom, 3),
                   std::to_string(e.num_evals()),
                   std::to_string(e.num_sims())});
  }

  const auto ecfg = env::eval_config_from_env();
  std::printf("%s @ 180nm, %d evaluations, eval threads=%d (FoM max %.1f)\n\n",
              name.c_str(), steps, ecfg.threads, fom.max_fom());
  table.print();
  return 0;
}
