// Internal helpers shared by the circuit builders (not installed API).
#pragma once

#include <cmath>

#include "meas/ac_metrics.hpp"
#include "meas/tran_metrics.hpp"
#include "sim/simulator.hpp"

namespace gcnrl::circuits::detail {

// Single-ended transfer curve at `node`.
inline meas::AcCurve curve_at(const sim::AcResult& ac, int node) {
  meas::AcCurve c;
  c.freq = ac.freq;
  c.h.reserve(ac.freq.size());
  for (std::size_t i = 0; i < ac.freq.size(); ++i) {
    c.h.push_back(ac.phasor(static_cast<int>(i), node));
  }
  return c;
}

// Differential transfer curve between nodes p and n.
inline meas::AcCurve curve_diff(const sim::AcResult& ac, int p, int n) {
  meas::AcCurve c;
  c.freq = ac.freq;
  c.h.reserve(ac.freq.size());
  for (std::size_t i = 0; i < ac.freq.size(); ++i) {
    c.h.push_back(ac.diff(static_cast<int>(i), p, n));
  }
  return c;
}

// Transient node waveform extraction.
inline meas::TranCurve tran_curve(const sim::TranResult& tr, int node) {
  meas::TranCurve c;
  c.t = tr.t;
  c.v.reserve(tr.t.size());
  for (std::size_t i = 0; i < tr.t.size(); ++i) {
    c.v.push_back(tr.at(static_cast<int>(i), node));
  }
  return c;
}

// Sub-curve restricted to [t0, t1].
inline meas::TranCurve window(const meas::TranCurve& c, double t0, double t1) {
  meas::TranCurve w;
  for (std::size_t i = 0; i < c.t.size(); ++i) {
    if (c.t[i] >= t0 && c.t[i] <= t1) {
      w.t.push_back(c.t[i]);
      w.v.push_back(c.v[i]);
    }
  }
  return w;
}

// Input-referred spot noise density at frequency f: sqrt(Sout / |H(f)|^2).
inline double input_referred_noise(const sim::NoiseResult& nr,
                                   const meas::AcCurve& h, double f) {
  // Locate the PSD sample nearest to f (noise grids are small).
  std::size_t best = 0;
  for (std::size_t i = 1; i < nr.freq.size(); ++i) {
    if (std::fabs(std::log(nr.freq[i] / f)) <
        std::fabs(std::log(nr.freq[best] / f))) {
      best = i;
    }
  }
  const double gain = meas::magnitude_at(h, nr.freq[best]);
  if (gain <= 0.0) return 1.0;  // degenerate design: huge noise
  return std::sqrt(nr.out_psd[best]) / gain;
}

}  // namespace gcnrl::circuits::detail
