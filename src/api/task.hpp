// The unified task surface of the library: the paper's experiment protocol
// — "run method M on circuit C at tech node T for budget B over S seeds" —
// expressed as data (TaskSpec) and executed by one planner (run_tasks).
//
// run_tasks() groups an arbitrary mix of tasks (different circuits,
// methods, technology nodes, seed counts, budgets) onto ONE shared
// EvalService and drives them through the existing lockstep engines:
// every DDPG-kind (task, seed) pair joins one rl::run_ddpg_lockstep group
// and every ask/tell pair one rl::run_optimizer_lockstep group, so
// GCNRL_EVAL_THREADS parallelizes across everything at once. Per-task
// results are bit-identical to running each task alone, at any thread
// count — the lockstep drivers guarantee per-pair results independent of
// grouping, FoM values never depend on cache state, and all budgets are
// simulated-cost counts (warmth-independent by construction).
//
// Cross-task dependencies are resolved by the planner, which orders tasks
// into dependency levels (sources before consumers, independent tasks
// merged into one lockstep level):
//   budget chains    a task whose method declares `budget_from` (BO/MACE
//                    -> ES) runs after its source task — same circuit,
//                    node, steps, and seeds, anywhere in the list — and
//                    uses that task's per-seed RunResult::sims as its
//                    stopping budgets. A missing source means no cap
//                    (matching sweep_chained with an empty budget vector);
//                    an explicit TaskSpec::sim_budget > 0 short-circuits
//                    the chain.
//   pretrain chains  a task with `pretrain_from` (the paper's transfer
//                    protocol, Tables IV/V) runs after the in-list task
//                    with that label; the planner retains the source's
//                    trained agents and seeds this task's fresh agents
//                    from them via nn::copy_parameters.
//   checkpoints      `load_checkpoint` warm-starts from a named
//                    CheckpointStore artifact; an in-list task with the
//                    matching `save_checkpoint` name is ordered first.
// Dependency cycles are rejected.
//
// Calibration: FoM normalizers are calibrated once per distinct
// (circuit, node, index mode, calib_group) tuple appearing in the task
// list, in first-appearance order, drawing from a single
// Rng(RunOptions::calib_seed) — exactly the protocol of the pre-existing
// table harnesses, so migrated harnesses reproduce their numbers
// byte-for-byte. Corollary: task results are invariant under any
// permutation of the task list that keeps the first-appearance order of
// distinct calibration tuples; reordering the groups changes which
// calibration draws each circuit receives (deterministically so — the
// same list always reproduces itself).
//
// The lower-level pieces (EnvFactory, LockstepGroup, sweep, run_method)
// stay public as the harness-composition layer; since the transfer
// harnesses moved onto run_tasks they are exercised through the planner
// itself.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "env/eval_service.hpp"
#include "rl/run_loop.hpp"

namespace gcnrl::api {

class CheckpointStore;

// A calibrated environment factory: builds fresh envs for a circuit while
// sharing one FoM calibration (normalizers must be identical across
// methods for a comparison to be meaningful).
//
// When constructed with a shared EvalService, every env the factory makes
// — including the calibration probe — evaluates through that service, so a
// whole harness shares one thread pool and one result cache. Without one,
// each env gets a private service from the GCNRL_EVAL_* knobs.
class EnvFactory {
 public:
  EnvFactory(std::string circuit_name, const circuit::Technology& tech,
             env::IndexMode mode, int calib_samples, Rng& rng,
             std::shared_ptr<env::EvalService> svc = nullptr);

  // Env on the factory's own service (private per-env when none was set).
  [[nodiscard]] std::unique_ptr<env::SizingEnv> make() const;
  // Env on an explicit shared service (the lockstep sweeps use this to put
  // all S seed-envs of a group on one service).
  [[nodiscard]] std::unique_ptr<env::SizingEnv> make(
      std::shared_ptr<env::EvalService> svc) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const env::FomSpec& fom() const { return fom_; }
  [[nodiscard]] const std::shared_ptr<env::EvalService>& service() const {
    return svc_;
  }

 private:
  std::string name_;
  circuit::Technology tech_;
  env::IndexMode mode_;
  env::FomSpec fom_;
  std::shared_ptr<env::EvalService> svc_;
};

// One (agent config, RNG, optional weight source) spec of a lockstep
// group. `setup`, when set, runs on the freshly built env before the agent
// is constructed (e.g. to tweak the FoM spec per pair); `copy_from`, when
// non-null, seeds the agent's weights from a pretrained agent.
struct LockstepSpec {
  rl::DdpgConfig cfg;
  Rng rng;
  rl::DdpgAgent* copy_from = nullptr;
  std::function<void(env::SizingEnv&)> setup;
};

// S (env, agent) pairs built from one factory onto one shared EvalService
// (the factory's, or a group-local one when the factory has none), stepped
// together through rl::run_ddpg_lockstep. The group owns its envs and
// agents — pretraining harnesses keep it alive and hand its agents to
// later groups as `copy_from` sources.
class LockstepGroup {
 public:
  LockstepGroup(const EnvFactory& factory, std::vector<LockstepSpec> specs);

  std::vector<rl::RunResult> run(int steps);

  [[nodiscard]] std::size_t size() const { return agents_.size(); }
  [[nodiscard]] rl::DdpgAgent& agent(std::size_t i) { return *agents_[i]; }
  [[nodiscard]] env::SizingEnv& env(std::size_t i) { return *envs_[i]; }

 private:
  std::vector<std::unique_ptr<env::SizingEnv>> envs_;
  std::vector<std::unique_ptr<rl::DdpgAgent>> agents_;
};

// --- the task protocol ----------------------------------------------------

// One experiment cell: method x circuit x node x budget x seeds. All
// fields have usable defaults except `circuit` and `method`, which must
// name registered entries (see registry.hpp).
struct TaskSpec {
  std::string circuit;         // CircuitRegistry name, e.g. "Two-TIA"
  // Path to a .gcir circuit-description file. run_tasks registers it
  // (register_circuit_file — idempotent for identical content) before
  // validation and targets the declared circuit. When `circuit` is also
  // set it must equal the file's declared name; when only `circuit_file`
  // is set the declared name is filled in. Spec files resolve relative
  // paths against the spec file's directory (api/spec.cpp).
  std::string circuit_file;
  std::string method;          // MethodRegistry name, e.g. "GCN-RL"
  std::string node = "180nm";  // technology node (circuit::make_technology)
  int steps = 300;             // search steps (evaluation budget) per seed
  int warmup = 100;            // RL warm-up steps (clamped below steps)
  int seeds = 1;               // independent seeds (seed s uses seed_of(s))
  // Simulated-cost cap per seed: 0 = automatic (follow the method's
  // budget_from chain when a source task exists), > 0 = explicit cap for
  // every seed (ask/tell methods only — run_tasks rejects it elsewhere),
  // < 0 = force uncapped even for chained methods.
  long sim_budget = 0;
  rl::DdpgConfig ddpg;  // RL base config (method defaults + warmup applied)
  // Display label; empty -> "<method>/<circuit>@<node>", plus a
  // "<-<source>" suffix for warm-started tasks (so pretrain and transfer
  // rows never collide by default).
  std::string label;

  // --- transfer protocol (DDPG-kind methods only) -------------------------
  // Warm-start source: the label of another task in this list. The planner
  // runs that task first, retains its trained agents, and copies their
  // weights into this task's fresh agents (a 1-seed source warms every
  // seed; otherwise seed counts must match). Mutually exclusive with
  // load_checkpoint.
  std::string pretrain_from;
  // Warm-start from a named CheckpointStore artifact: per seed s the store
  // is probed for "<name>#<s>" first, then "<name>". An in-list task whose
  // save_checkpoint matches is automatically ordered before this task.
  std::string load_checkpoint;
  // After training, store this task's agent weights under this name
  // (per-seed "<name>#<s>" when seeds > 1), stamped with circuit, node,
  // and index mode. Duplicate save names within one list are rejected.
  std::string save_checkpoint;
  // Per-task state-index override (topology transfer needs Scalar so the
  // state dimension is topology-independent); unset -> RunOptions::mode.
  std::optional<env::IndexMode> index_mode;
  // Calibration-sharing tag: tasks share a calibrated factory per distinct
  // (circuit, node, mode, calib_group). A distinct tag forces a fresh
  // calibration with its own draws from the shared calibration RNG (the
  // topology-transfer harnesses recalibrate per direction this way).
  std::string calib_group;
  // Per-seed RNG override: seed s uses seed_base + seed_stride * s when
  // seed_base is set (the migrated harnesses' historical seed ladders);
  // unset -> canonical seed_of(s). seed_stride without seed_base is
  // rejected.
  std::optional<std::uint64_t> seed_base;
  std::uint64_t seed_stride = 0;
};

// Per-task outcome: the full per-seed RunResults plus the aggregate the
// paper's tables print.
struct TaskResult {
  TaskSpec spec;                    // as executed (warmup clamped, label set)
  std::vector<rl::RunResult> runs;  // one per seed
  std::vector<double> best;         // per-seed best FoM
  std::vector<long> sims;           // per-seed simulated cost
  double mean = 0.0;
  double stddev = 0.0;
};

// Cross-task execution options.
struct RunOptions {
  // Shared service for every env (thread pool + result cache). Null: one
  // service is created from GCNRL_EVAL_THREADS / GCNRL_EVAL_CACHE.
  std::shared_ptr<env::EvalService> service;
  int calib_samples = 300;          // FoM calibration samples per circuit
  std::uint64_t calib_seed = 2024;  // shared calibration RNG seed
  env::IndexMode mode = env::IndexMode::OneHot;
  // Store backing TaskSpec::load/save_checkpoint; null -> the process-wide
  // default_checkpoint_store() (disk tier from GCNRL_CHECKPOINT_DIR).
  CheckpointStore* checkpoints = nullptr;
};

// Validates, calibrates, plans, and runs `tasks`; results come back in
// task order. Throws std::invalid_argument on unknown circuit/method
// names or non-positive steps/seeds.
std::vector<TaskResult> run_tasks(const std::vector<TaskSpec>& tasks,
                                  const RunOptions& opts = {});

// The canonical per-seed RNG seed of the sweep protocol (seed index s).
[[nodiscard]] std::uint64_t seed_of(int s);

// --- per-factory building blocks (the bench harness layer) ----------------

// One (method, seed) run against a calibrated factory. `sim_budget` > 0
// caps the simulated cost of ask/tell methods (<= 0: step budget only;
// other method kinds ignore it). A non-null `svc` overrides the factory's
// service.
rl::RunResult run_method(const std::string& method, const EnvFactory& factory,
                         int steps, int warmup, std::uint64_t seed,
                         long sim_budget, const rl::DdpgConfig& base_cfg = {},
                         std::shared_ptr<env::EvalService> svc = nullptr);

// Seed sweep of one method against a calibrated factory: best-FoM per seed
// plus traces and per-seed simulated cost (the budget currency). All S
// seeds share one EvalService and advance in lockstep (Ddpg and AskTell
// kinds; Random keeps its per-seed batched loop). `sim_budgets`, when
// non-empty, holds one simulated-cost budget per seed.
struct SweepResult {
  std::vector<double> best;  // per seed
  std::vector<std::vector<double>> traces;
  std::vector<long> sims;  // per-seed simulated cost
  double mean = 0.0;
  double stddev = 0.0;
};
SweepResult sweep(const std::string& method, const EnvFactory& factory,
                  int steps, int warmup, int seeds,
                  std::span<const long> sim_budgets = {},
                  const rl::DdpgConfig& base_cfg = {});

// sweep() plus the budget-chain rule in one call sequence: an ES sweep
// records its per-seed sims into `es_sims`, BO/MACE sweeps consume them as
// stopping budgets, every other method ignores the chain. Call per method,
// in an order that puts the budget source before its consumers (run_tasks
// orders automatically; this entry point is for incremental harness
// loops).
SweepResult sweep_chained(const std::string& method, const EnvFactory& factory,
                          int steps, int warmup, int seeds,
                          std::vector<long>& es_sims,
                          const rl::DdpgConfig& base_cfg = {});

// --- reporting helpers ----------------------------------------------------

// One-line description of the evaluation engine configuration (thread
// count + cache capacity from GCNRL_EVAL_THREADS / GCNRL_EVAL_CACHE),
// printed by harnesses so logged tables are self-describing.
std::string eval_banner();

// One-line service-usage summary (service-wide totals — per-seed numbers
// come from the per-env counters / RunResult, never from these totals).
std::string service_usage(const env::EvalService& svc);

// "mean +/- std" cell formatting used by all tables.
std::string pm(double mean, double stddev, int precision = 3);

// FNV-1a over the printable (%.17g) form of a trace: a stable short
// fingerprint that pins every committed FoM without printing them all
// (used by the determinism gates: sweep_smoke, gcnrl_cli --repeat).
std::string trace_fingerprint(std::span<const double> trace);

}  // namespace gcnrl::api
