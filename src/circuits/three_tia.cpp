// Three-stage differential transimpedance amplifier (Fig. 6c analogue).
//
// Differential input currents are converted to voltages by diode-connected
// NMOS devices (T0 / T16), then amplified by three differential stages:
// two NMOS diff pairs with PMOS diode loads (tail-biased from an RB +
// diode reference), and a pseudo-differential common-source output stage
// with PMOS diode loads that performs the final I-V boost. 17 transistors
// + RB, matching the paper's component count.
//
// Searched: T0..T16 (W, L, M) + RB -> 52 parameters.
// Metrics (paper Sec. IV-A): BW, Gain (differential transimpedance),
// Power.
#include "circuits/benchmark_circuits.hpp"

#include "circuits/helpers.hpp"

namespace gcnrl::circuits {

using circuit::Netlist;
using circuit::Technology;

env::BenchmarkCircuit make_three_tia(const Technology& tech) {
  env::BenchmarkCircuit bc;
  bc.name = "Three-TIA";
  bc.tech = tech;

  Netlist& nl = bc.netlist;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int in1 = nl.node("in1");
  const int in2 = nl.node("in2");
  const int s1a = nl.node("s1a");
  const int s1b = nl.node("s1b");
  const int s2a = nl.node("s2a");
  const int s2b = nl.node("s2b");
  const int vo1 = nl.node("vout1");
  const int vo2 = nl.node("vout2");
  const int t1 = nl.node("tail1");
  const int t2 = nl.node("tail2");
  const int vbn = nl.node("vbn");

  nl.add_vsource("VDD", vdd, 0, tech.vdd);
  // Differential input currents with a DC bias that keeps the input
  // diodes conducting (the "source current" the paper's text mentions).
  const double i_in_bias = 20e-6 * (tech.vdd / 1.8);
  nl.add_isource("IIN1", 0, in1, i_in_bias, /*ac=*/+0.5);
  nl.add_isource("IIN2", 0, in2, i_in_bias, /*ac=*/-0.5);

  const double l = tech.lmin;
  // Input current-to-voltage diodes.
  nl.add_nmos("T0", in1, in1, 0, 0, 10e-6, l, 1);
  // Stage 1: diff pair + PMOS diode loads.
  nl.add_nmos("T1", s1a, in1, t1, 0, 20e-6, l, 2);
  nl.add_nmos("T2", s1b, in2, t1, 0, 20e-6, l, 2);
  nl.add_pmos("T7", s1a, s1a, vdd, vdd, 10e-6, l, 1);
  nl.add_pmos("T8", s1b, s1b, vdd, vdd, 10e-6, l, 1);
  // Stage 2.
  nl.add_nmos("T3", s2a, s1a, t2, 0, 20e-6, l, 2);
  nl.add_nmos("T4", s2b, s1b, t2, 0, 20e-6, l, 2);
  nl.add_pmos("T9", s2a, s2a, vdd, vdd, 10e-6, l, 1);
  nl.add_pmos("T10", s2b, s2b, vdd, vdd, 10e-6, l, 1);
  // Stage 3: pseudo-differential CS output.
  nl.add_nmos("T5", vo1, s2a, 0, 0, 20e-6, l, 2);
  nl.add_nmos("T6", vo2, s2b, 0, 0, 20e-6, l, 2);
  nl.add_pmos("T11", vo1, vo1, vdd, vdd, 10e-6, l, 1);
  nl.add_pmos("T12", vo2, vo2, vdd, vdd, 10e-6, l, 1);
  // Bias chain: RB into NMOS diode T15, mirrored to the two tails.
  nl.add_nmos("T13", t1, vbn, 0, 0, 10e-6, l, 2);
  nl.add_nmos("T14", t2, vbn, 0, 0, 10e-6, l, 2);
  nl.add_nmos("T15", vbn, vbn, 0, 0, 10e-6, l, 1);
  nl.add_nmos("T16", in2, in2, 0, 0, 10e-6, l, 1);
  nl.add_resistor("RB", vdd, vbn, 20e3);
  // Fixed load caps at the outputs.
  nl.add_capacitor("CL1", vo1, 0, 100e-15, /*designable=*/false);
  nl.add_capacitor("CL2", vo2, 0, 100e-15, /*designable=*/false);

  bc.space = circuit::DesignSpace::from_netlist(nl, tech);
  bc.space.add_match_group(nl, {"T0", "T16"});
  bc.space.add_match_group(nl, {"T1", "T2"});
  bc.space.add_match_group(nl, {"T3", "T4"});
  bc.space.add_match_group(nl, {"T5", "T6"});
  bc.space.add_match_group(nl, {"T7", "T8"});
  bc.space.add_match_group(nl, {"T9", "T10"});
  bc.space.add_match_group(nl, {"T11", "T12"});
  bc.space.add_match_group(nl, {"T13", "T14", "T15"}, /*l_only=*/true);

  env::FomSpec fom;
  fom.metrics = {
      // name, unit, weight, bound, spec_min, spec_max, log_norm
      {"bw", "Hz", +1.0, {}, 1e6, {}, true},
      {"gain", "ohm", +1.0, {}, 100.0, {}, true},
      {"power", "W", -1.0, {}, {}, {}, true},
  };
  // Minimal functionality spec (a working amplifier): keeps degenerate
  // dead designs from free-riding on the power metric.
  bc.fom = fom;

  // Concurrency audit (EvalService contract on BenchmarkCircuit::evaluate):
  // every capture is an immutable value — node indices and a Technology
  // copy, never a reference into the builder — and the Simulator is
  // function-local, so concurrent invocations share no mutable state.
  const Technology tech_copy = tech;
  bc.evaluate = [vo1, vo2, tech_copy](const Netlist& sized) {
    sim::Simulator s(sized, tech_copy);
    env::MetricMap m;
    m["power"] = s.supply_power();
    const auto freqs = sim::logspace(1e3, 1e11, 97);
    const auto ac = s.ac(freqs);
    const auto h = detail::curve_diff(ac, vo1, vo2);
    m["gain"] = meas::dc_gain(h);
    m["bw"] = meas::bandwidth_3db(h);
    m["gbw"] = m["gain"] * m["bw"];
    return m;
  };

  // Human-expert reference: moderate 100 uA/stage bias (RB ~ (vdd-vgs)/I),
  // 2:1 pair-to-load width ratio for gain, minimum-length pairs for speed.
  {
    circuit::DesignParams p;
    p.v = {
        {10e-6, l, 1},   // T0
        {24e-6, l, 2},   // T1
        {24e-6, l, 2},   // T2
        {8e-6, l, 1},    // T7
        {8e-6, l, 1},    // T8
        {24e-6, l, 2},   // T3
        {24e-6, l, 2},   // T4
        {8e-6, l, 1},    // T9
        {8e-6, l, 1},    // T10
        {30e-6, l, 2},   // T5
        {30e-6, l, 2},   // T6
        {8e-6, l, 1},    // T11
        {8e-6, l, 1},    // T12
        {12e-6, l, 2},   // T13
        {12e-6, l, 2},   // T14
        {12e-6, l, 1},   // T15
        {10e-6, l, 1},   // T16
        {12e3, 0, 0},    // RB
    };
    bc.human_expert = p;
  }
  return bc;
}

}  // namespace gcnrl::circuits
