// Table I reproduction: FoM comparison of Human / Random / ES / BO / MACE
// / NG-RL / GCN-RL on the four benchmark circuits at 180 nm.
//
// Paper protocol: 10 000 steps for Random/ES/NG-RL/GCN-RL, budget-matched
// BO/MACE (the paper matched runtime; we match the underlying cost — each
// BO/MACE seed stops at the simulated cost of the matching ES seed), 3
// runs each, FoM normalizers from 5000 random samples. Every budget is a
// simulation count, so the emitted table is bit-reproducible run-to-run.
// Scale with GCNRL_FULL=1 / GCNRL_STEPS / GCNRL_SEEDS / GCNRL_CALIB (see
// DESIGN.md); defaults reproduce the ordering in minutes.
#include <cstdio>
#include <map>

#include "common.hpp"

using namespace gcnrl;

namespace {

// Paper Table I reference values (mean) for side-by-side comparison.
const std::map<std::string, std::map<std::string, double>> kPaperFoM = {
    {"Two-TIA",
     {{"Human", 2.32}, {"Random", 2.46}, {"ES", 2.66}, {"BO", 2.48},
      {"MACE", 2.54}, {"NG-RL", 2.59}, {"GCN-RL", 2.69}}},
    {"Two-Volt",
     {{"Human", 2.02}, {"Random", 1.74}, {"ES", 1.91}, {"BO", 1.85},
      {"MACE", 1.70}, {"NG-RL", 1.98}, {"GCN-RL", 2.23}}},
    {"Three-TIA",
     {{"Human", 1.15}, {"Random", 0.74}, {"ES", 1.30}, {"BO", 1.24},
      {"MACE", 1.27}, {"NG-RL", 1.39}, {"GCN-RL", 1.40}}},
    {"LDO",
     {{"Human", 0.61}, {"Random", 0.27}, {"ES", 0.40}, {"BO", 0.45},
      {"MACE", 0.58}, {"NG-RL", 0.71}, {"GCN-RL", 0.79}}},
};

}  // namespace

int main() {
  const BenchConfig cfg = bench_config();
  const auto tech = circuit::make_technology("180nm");
  Rng rng(2024);
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());

  std::printf(
      "Table I: FoM comparison (steps=%d, warmup=%d, seeds=%d, calib=%d)\n"
      "Paper values in [brackets]. FoM scale: ours saturates each metric\n"
      "in [0,1] over the calibrated range; shapes, not absolutes, compare.\n"
      "%s\n\n",
      cfg.steps, cfg.warmup, cfg.seeds, cfg.calib_samples,
      bench::eval_banner().c_str());

  TextTable table({"Method", "Two-TIA", "Two-Volt", "Three-TIA", "LDO"});
  std::map<std::string, std::map<std::string, std::string>> cells;

  for (const auto& circuit_name : circuits::benchmark_names()) {
    bench::EnvFactory factory(circuit_name, tech, env::IndexMode::OneHot,
                              cfg.calib_samples, rng, svc);
    // Human anchor.
    {
      auto env = factory.make();
      const auto h = env->evaluate_params(env->bench().human_expert);
      cells["Human"][circuit_name] =
          TextTable::num(h.fom, 3) + " [" +
          TextTable::num(kPaperFoM.at(circuit_name).at("Human"), 3) + "]";
    }
    std::vector<long> es_sims;  // per-seed BO/MACE simulated-cost budgets
    for (const auto& method : bench::kMethods) {
      const auto sw = bench::sweep_chained(method, factory, cfg.steps,
                                           cfg.warmup, cfg.seeds, es_sims);
      cells[method][circuit_name] =
          bench::pm(sw.mean, sw.stddev) + " [" +
          TextTable::num(kPaperFoM.at(circuit_name).at(method), 3) + "]";
      std::printf("  %-10s %-9s %s\n", circuit_name.c_str(), method.c_str(),
                  cells[method][circuit_name].c_str());
      std::fflush(stdout);
    }
  }

  std::printf("\n");
  for (const auto& method :
       std::vector<std::string>{"Human", "Random", "ES", "BO", "MACE",
                                "NG-RL", "GCN-RL"}) {
    table.add_row({method, cells[method]["Two-TIA"],
                   cells[method]["Two-Volt"], cells[method]["Three-TIA"],
                   cells[method]["LDO"]});
  }
  table.print();
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  return 0;
}
