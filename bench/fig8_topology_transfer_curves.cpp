// Figure 8 reproduction: topology-transfer learning curves for both
// directions (Two-TIA <-> Three-TIA): GCN-RL transfer vs NG-RL transfer
// vs no transfer, shared warm-up seeds. Emits fig8_<src>_to_<dst>.csv.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

int main() {
  const BenchConfig cfg = bench_config();
  Rng rng(2024);
  const auto tech = circuit::make_technology("180nm");
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());

  std::printf("Fig 8: topology-transfer curves (pretrain=%d, budget=%d)\n%s\n\n",
              cfg.steps, cfg.transfer_steps, bench::eval_banner().c_str());

  for (const auto& [src, dst] :
       std::vector<std::pair<std::string, std::string>>{
           {"Two-TIA", "Three-TIA"}, {"Three-TIA", "Two-TIA"}}) {
    bench::EnvFactory src_factory(src, tech, env::IndexMode::Scalar,
                                  cfg.calib_samples, rng, svc);
    bench::EnvFactory dst_factory(dst, tech, env::IndexMode::Scalar,
                                  cfg.calib_samples, rng, svc);
    std::map<std::string, rl::RunResult> curves;
    // Pretrain both variants in lockstep on the shared service; the group
    // owns the pretrained agents used as weight sources below.
    std::vector<bench::LockstepSpec> pre_specs;
    for (bool use_gcn : {true, false}) {
      rl::DdpgConfig pre_cfg;
      pre_cfg.warmup = cfg.warmup;
      pre_cfg.use_gcn = use_gcn;
      pre_specs.push_back(bench::LockstepSpec{pre_cfg, Rng(600), nullptr, {}});
    }
    bench::LockstepGroup pre(src_factory, std::move(pre_specs));
    pre.run(cfg.steps);
    const std::map<bool, rl::DdpgAgent*> pretrained = {{true, &pre.agent(0)},
                                                       {false, &pre.agent(1)}};

    // All three fine-tuning modes in lockstep (identical Rng(902) warm-up
    // streams, three simulations per step).
    rl::DdpgConfig t_cfg;
    t_cfg.warmup = cfg.transfer_warmup;
    const std::vector<std::string> modes = {"no_transfer", "ng_transfer",
                                            "gcn_transfer"};
    std::vector<bench::LockstepSpec> specs;
    for (std::size_t mode = 0; mode < modes.size(); ++mode) {
      rl::DdpgConfig m_cfg = t_cfg;
      const bool use_gcn = mode == 2;
      if (mode > 0) m_cfg.use_gcn = use_gcn;
      specs.push_back(bench::LockstepSpec{
          m_cfg, Rng(902), mode > 0 ? pretrained.at(use_gcn) : nullptr, {}});
    }
    bench::LockstepGroup group(dst_factory, std::move(specs));
    auto runs = group.run(cfg.transfer_steps);
    for (std::size_t mode = 0; mode < modes.size(); ++mode) {
      curves[modes[mode]] = std::move(runs[mode]);
    }

    const std::string path = "fig8_" + src + "_to_" + dst + ".csv";
    CsvWriter csv(path);
    csv.row({"step", "no_transfer", "ng_transfer", "gcn_transfer"});
    for (std::size_t i = 0; i < curves["no_transfer"].best_trace.size();
         ++i) {
      csv.row({std::to_string(i + 1),
               TextTable::num(curves["no_transfer"].best_trace[i], 6),
               TextTable::num(curves["ng_transfer"].best_trace[i], 6),
               TextTable::num(curves["gcn_transfer"].best_trace[i], 6)});
    }
    std::printf("  %s -> %s: none %.3f | NG %.3f | GCN %.3f -> %s\n",
                src.c_str(), dst.c_str(), curves["no_transfer"].best_fom,
                curves["ng_transfer"].best_fom,
                curves["gcn_transfer"].best_fom, path.c_str());
    std::fflush(stdout);
  }
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper shape: GCN-RL transfer converges higher; NG-RL transfer is\n"
      "barely distinguishable from no transfer.\n");
  return 0;
}
