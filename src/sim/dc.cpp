#include "sim/dc.hpp"

#include <chrono>
#include <cmath>

#include "sim/perf.hpp"

namespace gcnrl::sim {
namespace {

struct Residual {
  la::Mat j;               // Jacobian
  std::vector<double> f;   // residual
};

double source_value(double dc, const circuit::Pwl& pwl, double time) {
  if (time >= 0.0 && !pwl.empty()) return pwl.at(time);
  return dc;
}

// Build residual + Jacobian at unknown vector x. `alpha` scales all
// independent sources (source stepping); `gmin` shunts every node.
Residual build(const SimContext& ctx, const std::vector<double>& x,
               double alpha, double gmin, double source_time) {
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  Residual r{la::Mat(m.dim(), m.dim()), std::vector<double>(m.dim(), 0.0)};

  auto volt = [&](int node) { return node == 0 ? 0.0 : x[m.v(node)]; };

  for (const auto& res : nl.resistors()) {
    const double g = 1.0 / std::max(res.r, kMinResistance);
    stamp_conductance(r.j, m, res.a, res.b, g);
    const double i = g * (volt(res.a) - volt(res.b));
    if (m.v(res.a) >= 0) r.f[m.v(res.a)] += i;
    if (m.v(res.b) >= 0) r.f[m.v(res.b)] -= i;
  }

  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& mos = nl.mosfets()[k];
    const MosOp op = eval_mos(ctx.models[k], mos, volt(mos.g), volt(mos.d),
                              volt(mos.s));
    const int id_row = m.v(mos.d);
    const int is_row = m.v(mos.s);
    if (id_row >= 0) r.f[id_row] += op.id;
    if (is_row >= 0) r.f[is_row] -= op.id;
    // d(id)/dvg = gm, d(id)/dvd = gds, d(id)/dvs = -(gm + gds).
    const int cg = m.v(mos.g);
    const int cd = m.v(mos.d);
    const int cs = m.v(mos.s);
    auto add = [&](int row, double sign) {
      if (row < 0) return;
      if (cg >= 0) r.j(row, cg) += sign * op.gm;
      if (cd >= 0) r.j(row, cd) += sign * op.gds;
      if (cs >= 0) r.j(row, cs) -= sign * (op.gm + op.gds);
    };
    add(id_row, 1.0);
    add(is_row, -1.0);
  }

  for (const auto& src : nl.isources()) {
    const double i = alpha * source_value(src.dc, src.pwl, source_time);
    // Current flows p -> n through the source: leaves p, enters n.
    if (m.v(src.p) >= 0) r.f[m.v(src.p)] += i;
    if (m.v(src.n) >= 0) r.f[m.v(src.n)] -= i;
  }

  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    const double i = x[b];
    if (m.v(src.p) >= 0) {
      r.f[m.v(src.p)] += i;
      r.j(m.v(src.p), b) += 1.0;
      r.j(b, m.v(src.p)) += 1.0;
    }
    if (m.v(src.n) >= 0) {
      r.f[m.v(src.n)] -= i;
      r.j(m.v(src.n), b) -= 1.0;
      r.j(b, m.v(src.n)) -= 1.0;
    }
    r.f[b] = volt(src.p) - volt(src.n) -
             alpha * source_value(src.dc, src.pwl, source_time);
  }

  // gmin shunts on every non-ground node.
  for (int node = 1; node < m.num_nodes(); ++node) {
    const int row = m.v(node);
    r.j(row, row) += gmin;
    r.f[row] += gmin * x[row];
  }
  return r;
}

struct NewtonResult {
  bool converged = false;
  std::vector<double> x;
  int iters = 0;  // iterations actually spent
};

NewtonResult newton(const SimContext& ctx, std::vector<double> x, double alpha,
                    double gmin, const DcOptions& opt,
                    int max_iter_override = -1) {
  const int nv = ctx.map.num_nodes() - 1;
  const int max_iter = max_iter_override > 0 ? max_iter_override
                                             : opt.max_iter;
  int iters = 0;
  for (int iter = 0; iter < max_iter; ++iter) {
    ++iters;
    Residual r = build(ctx, x, alpha, gmin, opt.source_time);
    std::vector<double> rhs(r.f.size());
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = -r.f[i];
    std::vector<double> dx;
    try {
      dx = la::Lu<double>(std::move(r.j)).solve(rhs);
    } catch (const la::SingularMatrixError&) {
      return {false, std::move(x), iters};
    }
    // Damping: limit the largest voltage step.
    double max_dv = 0.0;
    for (int i = 0; i < nv; ++i) max_dv = std::max(max_dv, std::fabs(dx[i]));
    const double scale = max_dv > opt.step_limit ? opt.step_limit / max_dv
                                                 : 1.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += scale * dx[i];
      if (!std::isfinite(x[i])) return {false, std::move(x), iters};
    }
    double max_res = 0.0;
    for (int i = 0; i < nv; ++i) max_res = std::max(max_res, std::fabs(r.f[i]));
    // Converged when undamped and both criteria hold — or when the
    // residual alone is at numerical noise level (dx can limit-cycle on
    // Jacobian granularity while KCL is already exactly satisfied).
    if (scale == 1.0 &&
        ((max_dv < opt.tol_step && max_res < opt.tol_residual) ||
         max_res < 1e-3 * opt.tol_residual)) {
      return {true, std::move(x), iters};
    }
  }
  return {false, std::move(x), iters};
}

OpPoint finalize(const SimContext& ctx, const std::vector<double>& x) {
  const MnaMap& m = ctx.map;
  OpPoint op;
  op.v.resize(m.num_nodes(), 0.0);
  for (int node = 1; node < m.num_nodes(); ++node) op.v[node] = x[m.v(node)];
  op.branch_i.resize(ctx.nl.vsources().size());
  for (std::size_t k = 0; k < op.branch_i.size(); ++k) {
    op.branch_i[k] = x[m.branch(static_cast<int>(k))];
  }
  op.mos.reserve(ctx.nl.mosfets().size());
  op.caps.reserve(ctx.nl.mosfets().size());
  for (std::size_t k = 0; k < ctx.nl.mosfets().size(); ++k) {
    const auto& mos = ctx.nl.mosfets()[k];
    op.mos.push_back(eval_mos(ctx.models[k], mos, op.v[mos.g], op.v[mos.d],
                              op.v[mos.s]));
    op.caps.push_back(mos_caps(ctx.models[k], mos));
  }
  return op;
}

}  // namespace

OpPoint solve_dc(const SimContext& ctx, const DcOptions& opt,
                 const std::vector<double>* warm_start, DcStats* stats) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  DcStats local;
  DcStats& st = stats ? *stats : local;
  st = DcStats{};

  // Record once per solve no matter which return/throw path is taken.
  auto record = [&](bool ok) {
    const double secs =
        std::chrono::duration<double>(clock::now() - t0).count();
    const long warm_hit = (ok && st.warm_converged) ? 1 : 0;
    const long warm_fallback =
        (st.warm_attempted && !st.warm_converged) ? 1 : 0;
    sim_perf_record(Analysis::Dc, st.newton_iters, secs, warm_hit,
                    warm_fallback);
  };

  // Strategy 0: direct Newton from the supplied warm-start guess at the
  // target gmin. A good guess (previous operating point of the same or a
  // structurally identical netlist) converges in a handful of iterations;
  // a bad one is cut off at warm_max_iter and we fall through to the
  // untouched ladder below, which starts from zeros exactly as a cold
  // solve would — fallback results are bitwise-identical to cold.
  if (warm_start && static_cast<int>(warm_start->size()) == ctx.map.dim()) {
    st.warm_attempted = true;
    NewtonResult nr =
        newton(ctx, *warm_start, 1.0, opt.gmin, opt, opt.warm_max_iter);
    st.newton_iters += nr.iters;
    if (nr.converged) {
      st.warm_converged = true;
      st.strategy = 0;
      record(true);
      return finalize(ctx, nr.x);
    }
  }

  // Best converged unknown vector seen so far across strategies; later
  // strategies start from it instead of discarding the progress.
  std::vector<double> best(ctx.map.dim(), 0.0);

  // Strategy 1: gmin stepping from a strong shunt down to the target.
  // A partial failure mid-ladder keeps the best solution found so far as
  // the starting point for the next strategy instead of discarding it:
  // circuits with bistable subloops often converge on retry.
  {
    std::vector<double> xg = best;
    bool ok = true;
    for (double gmin = 1e-2; gmin >= opt.gmin * 0.99; gmin *= 1e-1) {
      NewtonResult nr = newton(ctx, xg, 1.0, gmin, opt);
      st.newton_iters += nr.iters;
      if (!nr.converged) {
        ok = false;
        break;
      }
      xg = std::move(nr.x);
      best = xg;  // last converged rung — carried into Strategy 2
    }
    if (ok) {
      NewtonResult nr = newton(ctx, xg, 1.0, opt.gmin, opt);
      st.newton_iters += nr.iters;
      if (nr.converged) {
        st.strategy = 1;
        record(true);
        return finalize(ctx, nr.x);
      }
    }
  }

  // Strategy 2: source stepping at a relaxed gmin, then final tightening.
  // Starts from the best solution Strategy 1 converged to (zeros if its
  // very first rung already failed), as documented above.
  {
    std::vector<double> xs = best;
    bool ok = true;
    for (int step = 1; step <= 20; ++step) {
      const double alpha = step / 20.0;
      NewtonResult nr = newton(ctx, xs, alpha, std::max(opt.gmin, 1e-9), opt);
      st.newton_iters += nr.iters;
      if (!nr.converged) {
        ok = false;
        break;
      }
      xs = std::move(nr.x);
    }
    if (ok) {
      for (double gmin = 1e-9; gmin >= opt.gmin * 0.99; gmin *= 1e-1) {
        NewtonResult nr = newton(ctx, xs, 1.0, gmin, opt);
        st.newton_iters += nr.iters;
        if (!nr.converged) {
          ok = false;
          break;
        }
        xs = std::move(nr.x);
      }
      if (ok) {
        st.strategy = 2;
        record(true);
        return finalize(ctx, xs);
      }
    }
  }

  // Strategy 3: heavily damped Newton from a mid-rail start — a last
  // resort that trades iterations for basin robustness. Deliberately
  // *not* seeded from `best`: when both ladders fail, the accumulated
  // iterate usually sits in the wrong basin, and mid-rail is an
  // independent restart.
  {
    std::vector<double> xm(ctx.map.dim(), 0.0);
    for (int node = 1; node < ctx.map.num_nodes(); ++node) {
      xm[ctx.map.v(node)] = 0.5;
    }
    DcOptions heavy = opt;
    heavy.step_limit = 0.1;
    heavy.max_iter = 400;
    NewtonResult nr = newton(ctx, xm, 1.0, std::max(opt.gmin, 1e-10), heavy);
    st.newton_iters += nr.iters;
    if (nr.converged) {
      nr = newton(ctx, nr.x, 1.0, opt.gmin, opt);
      st.newton_iters += nr.iters;
      if (nr.converged) {
        st.strategy = 3;
        record(true);
        return finalize(ctx, nr.x);
      }
    }
  }

  record(false);
  throw SimError("DC operating point did not converge");
}

}  // namespace gcnrl::sim
