#include "common.hpp"

#include <stdexcept>

namespace gcnrl::bench {

LockstepGroup::LockstepGroup(const EnvFactory& factory,
                             std::vector<LockstepSpec> specs) {
  // All pairs must share one service for run_ddpg_lockstep to batch them.
  std::shared_ptr<env::EvalService> svc = factory.service();
  if (!svc) {
    svc = std::make_shared<env::EvalService>(env::eval_config_from_env());
  }
  for (LockstepSpec& spec : specs) {
    envs_.push_back(factory.make(svc));
    if (spec.setup) spec.setup(*envs_.back());
    agents_.push_back(std::make_unique<rl::DdpgAgent>(
        envs_.back()->state(), envs_.back()->adjacency(),
        envs_.back()->kinds(), spec.cfg, spec.rng));
    if (spec.copy_from != nullptr) {
      agents_.back()->copy_weights_from(*spec.copy_from);
    }
  }
}

std::vector<rl::RunResult> LockstepGroup::run(int steps) {
  std::vector<env::SizingEnv*> env_ptrs;
  std::vector<rl::DdpgAgent*> agent_ptrs;
  env_ptrs.reserve(envs_.size());
  agent_ptrs.reserve(agents_.size());
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    env_ptrs.push_back(envs_[i].get());
    agent_ptrs.push_back(agents_[i].get());
  }
  return rl::run_ddpg_lockstep(env_ptrs, agent_ptrs, steps);
}

rl::RunResult run_optimizer_timed(env::SizingEnv& env, opt::Optimizer& opt,
                                  int steps, double seconds) {
  return rl::run_optimizer(env, opt, steps, seconds);
}

std::string eval_banner() {
  const env::EvalServiceConfig cfg = env::eval_config_from_env();
  return "eval engine: threads=" + std::to_string(cfg.threads) +
         (cfg.threads > 1 ? " (thread pool)" : " (serial)") +
         ", cache=" + std::to_string(cfg.cache_capacity);
}

MethodRun run_method(const std::string& method, const EnvFactory& factory,
                     int steps, int warmup, std::uint64_t seed,
                     double rl_seconds, const rl::DdpgConfig& base_cfg,
                     std::shared_ptr<env::EvalService> svc) {
  auto env = svc ? factory.make(std::move(svc)) : factory.make();
  Rng rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  MethodRun out;

  if (method == "Random") {
    out.result = rl::run_random(*env, steps, rng);
  } else if (method == "ES") {
    opt::CmaEs es(env->flat_dim(), rng);
    out.result = rl::run_optimizer(*env, es, steps);
  } else if (method == "BO") {
    opt::BayesOpt bo(env->flat_dim(), rng);
    out.result = run_optimizer_timed(*env, bo, steps, rl_seconds);
  } else if (method == "MACE") {
    opt::Mace mace(env->flat_dim(), rng);
    out.result = run_optimizer_timed(*env, mace, steps, rl_seconds);
  } else if (method == "NG-RL" || method == "GCN-RL") {
    rl::DdpgConfig cfg = base_cfg;
    cfg.use_gcn = method == "GCN-RL";
    cfg.warmup = warmup;
    rl::DdpgAgent agent(env->state(), env->adjacency(), env->kinds(), cfg,
                        rng);
    out.result = rl::run_ddpg(*env, agent, steps);
  } else {
    throw std::invalid_argument("run_method: unknown method " + method);
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

SweepResult sweep(const std::string& method, const EnvFactory& factory,
                  int steps, int warmup, int seeds, double rl_seconds,
                  const rl::DdpgConfig& base_cfg) {
  SweepResult out;
  // Either way, all S seeds share one service — its thread pool and its
  // result cache. FoM values never depend on cache state (raw metrics are
  // cached, the FoM is recomputed per env), so for the step-budgeted
  // methods cross-seed sharing leaves every trace bit-identical to fully
  // isolated per-seed runs. The exception is anything derived from wall
  // clock: a warm shared cache makes runs finish sooner, so the measured
  // `seconds` of a budget-source sweep (e.g. ES in table1/fig5) — and
  // hence the iteration counts of the wall-clock-budgeted BO/MACE runs —
  // depend on cache state. Those budgets were nondeterministic before the
  // sharing too (see ROADMAP: simulation-count budgets).
  const bool is_rl = method == "NG-RL" || method == "GCN-RL";
  if (is_rl) {
    // Lockstep mode: S (env, agent) pairs advance together, one S-wide
    // simulation batch per step.
    std::vector<LockstepSpec> specs;
    specs.reserve(static_cast<std::size_t>(seeds));
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 1000 + 7919 * static_cast<std::uint64_t>(s);
      rl::DdpgConfig cfg = base_cfg;
      cfg.use_gcn = method == "GCN-RL";
      cfg.warmup = warmup;
      specs.push_back(LockstepSpec{cfg, Rng(seed), nullptr, {}});
    }
    LockstepGroup group(factory, std::move(specs));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<rl::RunResult> results = group.run(steps);
    const double total =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    out.rl_seconds = seeds > 0 ? total / seeds : 0.0;
    for (rl::RunResult& r : results) {
      out.best.push_back(r.best_fom);
      out.traces.push_back(std::move(r.best_trace));
    }
  } else {
    std::shared_ptr<env::EvalService> svc = factory.service();
    if (!svc) {
      svc = std::make_shared<env::EvalService>(env::eval_config_from_env());
    }
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 1000 + 7919 * static_cast<std::uint64_t>(s);
      MethodRun run = run_method(method, factory, steps, warmup, seed,
                                 rl_seconds, base_cfg, svc);
      out.best.push_back(run.result.best_fom);
      out.traces.push_back(std::move(run.result.best_trace));
      out.rl_seconds += run.seconds / seeds;
    }
  }
  out.mean = la::mean(out.best);
  out.stddev = la::stddev(out.best);
  return out;
}

std::string pm(double mean, double stddev, int precision) {
  return TextTable::num(mean, precision) + " +/- " +
         TextTable::num(stddev, 2);
}

}  // namespace gcnrl::bench
