// Semantic analysis over CircuitDescription (see analyze.hpp for the
// check catalog). Pure graph/table walks — no Simulator, no Netlist
// construction — so a rejected circuit costs microseconds, not a
// simulation budget. Diagnostics come out in deterministic order:
// connectivity/singularity first (element walk in declaration order),
// then sizing, then plan, then lint.* pragma feedback.
#include "circuit/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gcnrl::circuit {

namespace {

bool is_ground_alias(const std::string& n) {
  return n == "0" || n == "gnd" || n == "vss";
}

// Union-find with path halving; no ranks (net counts are tiny).
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int i) {
    while (parent_[static_cast<std::size_t>(i)] != i) {
      parent_[static_cast<std::size_t>(i)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(i)])];
      i = parent_[static_cast<std::size_t>(i)];
    }
    return i;
  }
  // False when a and b were already connected.
  bool unite(int a, int b) {
    const int ra = find(a), rb = find(b);
    if (ra == rb) return false;
    parent_[static_cast<std::size_t>(ra)] = rb;
    return true;
  }
  bool same(int a, int b) { return find(a) == find(b); }

 private:
  std::vector<int> parent_;
};

const std::vector<CheckInfo>& check_catalog() {
  static const std::vector<CheckInfo> kChecks = {
      {"connectivity.unknown-net", Severity::Error,
       "element terminal names an undeclared net"},
      {"connectivity.bad-terminals", Severity::Error,
       "device carries the wrong number of terminal nets"},
      {"connectivity.unused-net", Severity::Warning,
       "declared net is never connected to anything"},
      {"connectivity.dangling-net", Severity::Warning,
       "net touched by exactly one terminal and never probed"},
      {"connectivity.island", Severity::Error,
       "element group with no connection to ground at all"},
      {"connectivity.no-dc-path", Severity::Error,
       "net group reachable only through capacitors/MOS gates: no DC path "
       "to ground"},
      {"singular.vsource-loop", Severity::Error,
       "loop of voltage sources: MNA matrix singular by construction"},
      {"singular.isource-cutset", Severity::Error,
       "current source drives a net group with no DC return path"},
      {"sizing.no-designable", Severity::Error,
       "circuit has no designable components"},
      {"sizing.unknown-comp", Severity::Error,
       "bound/match/expert references an unknown or fixed component"},
      {"sizing.bound-order", Severity::Error,
       "sizing range is empty (lo >= hi)"},
      {"sizing.bound-nonpositive", Severity::Error,
       "log-scaled sizing bound must be positive (multiplier >= 1)"},
      {"sizing.match-mixed-kind", Severity::Error,
       "match group mixes component kinds"},
      {"sizing.match-l-only-passive", Severity::Warning,
       "l_only match group of passives has no effect"},
      {"sizing.expert-incomplete", Severity::Error,
       "expert sizing misses a designable component or has wrong arity"},
      {"sizing.expert-out-of-bounds", Severity::Warning,
       "expert value lies outside the component's sizing bounds"},
      {"plan.no-metrics", Severity::Error, "FoM metric table is empty"},
      {"plan.metric-unproduced", Severity::Error,
       "FoM metric that no extraction produces"},
      {"plan.metric-unconsumed", Severity::Warning,
       "extraction produces a metric no FoM row consumes"},
      {"plan.unknown-ref", Severity::Error,
       "plan step references an unknown net, source, or bench"},
      {"plan.extract-requires", Severity::Error,
       "extraction misses a required analysis or argument"},
      {"plan.ac-sweep", Severity::Error,
       "degenerate AC sweep (needs 0 < fmin < fmax and npoints >= 2)"},
      {"plan.noise-freqs", Severity::Error,
       "noise analysis needs positive, finite frequencies"},
      {"plan.tran-range", Severity::Error,
       "degenerate transient config (needs 0 < dt <= tstop)"},
      {"plan.bench-unused", Severity::Warning,
       "bench is simulated but nothing extracts from it"},
      {"plan.noise-at-off-grid", Severity::Warning,
       "input_noise at= frequency is not among the bench's noise samples"},
      {"lint.unknown-check", Severity::Warning,
       "#lint: allow names an unknown check id"},
      {"lint.unused-allow", Severity::Warning,
       "#lint: allow pragma suppressed nothing"},
  };
  return kChecks;
}

const CheckInfo* find_check(const std::string& id) {
  for (const CheckInfo& c : check_catalog()) {
    if (id == c.id) return &c;
  }
  return nullptr;
}

std::string fmt_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Parameter key names per kind, for sizing messages ("T6 w.hi").
const char* param_key(Kind kind, int param) {
  if (kind == Kind::Resistor) return "r";
  if (kind == Kind::Capacitor) return "c";
  switch (param) {
    case 0: return "w";
    case 1: return "l";
    default: return "m";
  }
}

class Analyzer {
 public:
  Analyzer(const CircuitDescription& d, const Technology& tech)
      : d_(d), tech_(tech) {}

  std::vector<Diagnostic> run() {
    check_connectivity();
    check_sizing();
    check_plan();
    apply_allows();
    return std::move(diags_);
  }

 private:
  void add(const char* check, std::string msg, int line, int col) {
    const CheckInfo* info = find_check(check);
    Diagnostic diag;
    diag.severity = info != nullptr ? info->severity : Severity::Error;
    diag.check = check;
    diag.message = std::move(msg);
    diag.origin = d_.origin;
    diag.line = line;
    diag.col = col;
    diags_.push_back(std::move(diag));
  }

  // --- net table ---------------------------------------------------------

  // Net id: 0 = ground, 1.. = declaration order; -1 = undeclared.
  int net_id(const std::string& name) const {
    if (is_ground_alias(name)) return 0;
    for (std::size_t i = 0; i < d_.nets.size(); ++i) {
      if (d_.nets[i].name == name) return static_cast<int>(i) + 1;
    }
    return -1;
  }

  const NetDesc& net_desc(int id) const {
    return d_.nets[static_cast<std::size_t>(id - 1)];
  }

  std::string net_list(const std::vector<int>& ids) const {
    std::string out;
    for (const int id : ids) {
      if (!out.empty()) out += ", ";
      out += id == 0 ? "0" : net_desc(id).name;
    }
    return out;
  }

  // Resolves one element terminal; reports unknown nets once per element.
  int terminal(const std::string& net, const std::string& elem, int line,
               int col) {
    const int id = net_id(net);
    if (id < 0) {
      add("connectivity.unknown-net",
          "\"" + elem + "\": terminal on undeclared net \"" + net + "\"",
          line, col);
    }
    return id;
  }

  // --- connectivity + singularity ----------------------------------------

  void check_connectivity() {
    const int n = static_cast<int>(d_.nets.size()) + 1;  // + ground
    UnionFind uf_any(n);   // every element joins all its terminals
    UnionFind uf_cond(n);  // DC-conductive edges: R, vsource, MOS channel
    UnionFind uf_vloop(n);  // vsource edges only, for pure-V loop detection
    std::vector<int> usage(static_cast<std::size_t>(n), 0);
    // Name of one element touching the net (dangling-net message).
    std::vector<std::string> touched_by(static_cast<std::size_t>(n));
    // First current source incident on each net (cutset message).
    std::vector<std::string> isrc_on(static_cast<std::size_t>(n));

    auto touch = [&](int id, const std::string& elem) {
      if (id < 0) return;
      ++usage[static_cast<std::size_t>(id)];
      touched_by[static_cast<std::size_t>(id)] = elem;
    };

    for (const DeviceDesc& dev : d_.devices) {
      const bool mos = dev.kind == Kind::Nmos || dev.kind == Kind::Pmos;
      const std::size_t want = mos ? 4 : 2;
      if (dev.nodes.size() != want) {
        add("connectivity.bad-terminals",
            "\"" + dev.name + "\": " + kind_name(dev.kind) + " needs " +
                std::to_string(want) + " terminals, has " +
                std::to_string(dev.nodes.size()),
            dev.line, dev.col);
        continue;
      }
      std::vector<int> ids;
      ids.reserve(want);
      for (const std::string& node : dev.nodes) {
        const int id = terminal(node, dev.name, dev.line, dev.col);
        touch(id, dev.name);
        ids.push_back(id);
      }
      for (std::size_t i = 1; i < ids.size(); ++i) {
        if (ids[0] >= 0 && ids[i] >= 0) uf_any.unite(ids[0], ids[i]);
      }
      if (mos) {
        // Channel conducts at DC; gate and body stamp no conductance.
        if (ids[0] >= 0 && ids[2] >= 0) uf_cond.unite(ids[0], ids[2]);
      } else if (dev.kind == Kind::Resistor) {
        if (ids[0] >= 0 && ids[1] >= 0) uf_cond.unite(ids[0], ids[1]);
      }
    }

    for (const SourceDesc& s : d_.sources) {
      const int p = terminal(s.p, s.name, s.line, s.col);
      const int q = terminal(s.n, s.name, s.line, s.col);
      touch(p, s.name);
      touch(q, s.name);
      if (p < 0 || q < 0) continue;
      uf_any.unite(p, q);
      if (s.is_vsource) {
        uf_cond.unite(p, q);
        if (p == q || !uf_vloop.unite(p, q)) {
          add("singular.vsource-loop",
              "voltage source \"" + s.name +
                  "\" closes a loop of voltage sources (" +
                  (p == q ? "both terminals on net \"" + s.p + "\""
                          : "\"" + s.p + "\" and \"" + s.n +
                                "\" are already connected by voltage "
                                "sources") +
                  "): the MNA matrix is singular by construction",
              s.line, s.col);
        }
      } else {
        isrc_on[static_cast<std::size_t>(p)] = s.name;
        isrc_on[static_cast<std::size_t>(q)] = s.name;
      }
    }

    // Nets the measurement plan observes are intentional outputs: a
    // single-terminal net that is probed is not dangling.
    std::vector<bool> probed(static_cast<std::size_t>(n), false);
    auto mark_probe = [&](const std::string& name) {
      if (name.empty()) return;
      const int id = net_id(name);
      if (id >= 0) probed[static_cast<std::size_t>(id)] = true;
    };
    for (const ExtractDesc& e : d_.extracts) {
      mark_probe(e.probe_p);
      mark_probe(e.probe_n);
    }
    for (const BenchDesc& b : d_.benches) {
      if (b.noise) {
        mark_probe(b.noise->out_p);
        mark_probe(b.noise->out_n);
      }
    }

    for (int id = 1; id < n; ++id) {
      const NetDesc& nd = net_desc(id);
      if (usage[static_cast<std::size_t>(id)] == 0) {
        add("connectivity.unused-net",
            "net \"" + nd.name + "\" is declared but never connected",
            nd.line, nd.col);
      } else if (usage[static_cast<std::size_t>(id)] == 1 &&
                 !probed[static_cast<std::size_t>(id)]) {
        add("connectivity.dangling-net",
            "net \"" + nd.name + "\" is touched only by \"" +
                touched_by[static_cast<std::size_t>(id)] +
                "\" and never probed",
            nd.line, nd.col);
      }
    }

    // Islands: element groups with no connection to ground at all,
    // reported once per uf_any component (declaration order of the first
    // member net). Island nets are excluded from the DC-path checks below
    // — the island diagnostic subsumes them.
    std::vector<bool> in_island(static_cast<std::size_t>(n), false);
    {
      std::vector<int> roots;  // first-seen order
      std::vector<std::vector<int>> members;
      for (int id = 1; id < n; ++id) {
        if (usage[static_cast<std::size_t>(id)] == 0) continue;
        if (uf_any.same(id, 0)) continue;
        in_island[static_cast<std::size_t>(id)] = true;
        const int r = uf_any.find(id);
        const auto it = std::find(roots.begin(), roots.end(), r);
        if (it == roots.end()) {
          roots.push_back(r);
          members.push_back({id});
        } else {
          members[static_cast<std::size_t>(it - roots.begin())].push_back(
              id);
        }
      }
      for (const std::vector<int>& group : members) {
        const NetDesc& nd = net_desc(group.front());
        add("connectivity.island",
            "nets {" + net_list(group) +
                "} form an island with no connection to ground",
            nd.line, nd.col);
      }
    }

    // DC-conductive groups not containing ground: driven by a current
    // source -> singular cutset; otherwise capacitor/gate-coupled only.
    {
      std::vector<int> roots;
      std::vector<std::vector<int>> members;
      for (int id = 1; id < n; ++id) {
        if (usage[static_cast<std::size_t>(id)] == 0) continue;
        if (in_island[static_cast<std::size_t>(id)]) continue;
        if (uf_cond.same(id, 0)) continue;
        const int r = uf_cond.find(id);
        const auto it = std::find(roots.begin(), roots.end(), r);
        if (it == roots.end()) {
          roots.push_back(r);
          members.push_back({id});
        } else {
          members[static_cast<std::size_t>(it - roots.begin())].push_back(
              id);
        }
      }
      for (const std::vector<int>& group : members) {
        const NetDesc& nd = net_desc(group.front());
        std::string isrc;
        for (const int id : group) {
          if (!isrc_on[static_cast<std::size_t>(id)].empty()) {
            isrc = isrc_on[static_cast<std::size_t>(id)];
            break;
          }
        }
        if (!isrc.empty()) {
          add("singular.isource-cutset",
              "current source \"" + isrc + "\" drives nets {" +
                  net_list(group) +
                  "} which have no DC return path to ground: the MNA "
                  "matrix is singular by construction",
              nd.line, nd.col);
        } else {
          add("connectivity.no-dc-path",
              "nets {" + net_list(group) +
                  "} have no DC path to ground (reached only through "
                  "capacitors or MOS gates)",
              nd.line, nd.col);
        }
      }
    }
  }

  // --- sizing / design space ---------------------------------------------

  // Default range for (kind, param), mirroring DesignSpace::from_netlist.
  void default_range(Kind kind, int param, double& lo, double& hi) const {
    switch (kind) {
      case Kind::Nmos:
      case Kind::Pmos:
        if (param == 0) {
          lo = tech_.wmin;
          hi = tech_.wmax;
        } else if (param == 1) {
          lo = tech_.lmin;
          hi = tech_.lmax;
        } else {
          lo = 1.0;
          hi = static_cast<double>(tech_.mmax);
        }
        break;
      case Kind::Resistor:
        lo = tech_.rmin;
        hi = tech_.rmax;
        break;
      case Kind::Capacitor:
        lo = tech_.cmin;
        hi = tech_.cmax;
        break;
    }
  }

  const DeviceDesc* designable(const std::string& name) const {
    for (const DeviceDesc& dev : d_.devices) {
      if (dev.name == name) return dev.designable ? &dev : nullptr;
    }
    return nullptr;
  }

  void check_sizing() {
    bool any_designable = false;
    for (const DeviceDesc& dev : d_.devices) {
      any_designable = any_designable || dev.designable;
    }
    if (!any_designable) {
      add("sizing.no-designable",
          "circuit \"" + d_.name + "\" has no designable components",
          d_.name_line, d_.name_col);
    }

    // Effective ranges: defaults overridden in bound-declaration order,
    // then validated once per (component, parameter) at the last override
    // that touched the side (or silently for untouched defaults — the
    // technology's own ranges are trusted).
    for (const DeviceDesc& dev : d_.devices) {
      if (!dev.designable) continue;
      const int dims = action_dim(dev.kind);
      for (int param = 0; param < dims; ++param) {
        double lo = 0.0, hi = 0.0;
        default_range(dev.kind, param, lo, hi);
        const BoundDesc* last = nullptr;
        for (const BoundDesc& b : d_.bounds) {
          if (b.comp != dev.name || b.param != param) continue;
          const double v = b.value.eval(tech_);
          (b.hi ? hi : lo) = v;
          last = &b;
        }
        if (last == nullptr) continue;
        const std::string key = std::string(dev.name) + " " +
                                param_key(dev.kind, param);
        const bool is_m =
            (dev.kind == Kind::Nmos || dev.kind == Kind::Pmos) && param == 2;
        const double floor = is_m ? 1.0 : 0.0;
        if (!std::isfinite(lo) || !std::isfinite(hi) || lo <= floor - 1e-12 ||
            hi <= floor - 1e-12 || lo <= 0.0 || hi <= 0.0) {
          add("sizing.bound-nonpositive",
              "bound " + key + ": range [" + fmt_num(lo) + ", " +
                  fmt_num(hi) + "] " +
                  (is_m ? "needs multiplier bounds >= 1"
                        : "needs positive finite bounds (log-scaled "
                          "parameter)"),
              last->line, last->col);
        } else if (lo >= hi) {
          add("sizing.bound-order",
              "bound " + key + ": empty range [" + fmt_num(lo) + ", " +
                  fmt_num(hi) + "] (lo >= hi)",
              last->line, last->col);
        }
      }
    }

    // Bounds naming unknown/fixed components (hand-built descriptions;
    // the parser resolves these for .gcir files).
    for (const BoundDesc& b : d_.bounds) {
      const DeviceDesc* dev = designable(b.comp);
      if (dev == nullptr) {
        add("sizing.unknown-comp",
            "bound references unknown or fixed component \"" + b.comp +
                "\"",
            b.line, b.col);
      } else if (b.param < 0 || b.param >= action_dim(dev->kind)) {
        add("sizing.unknown-comp",
            "bound " + b.comp + ": " + kind_name(dev->kind) +
                " has no parameter #" + std::to_string(b.param),
            b.line, b.col);
      }
    }

    for (const MatchDesc& m : d_.matches) {
      const DeviceDesc* first = nullptr;
      bool mixed = false;
      for (const std::string& comp : m.comps) {
        const DeviceDesc* dev = designable(comp);
        if (dev == nullptr) {
          add("sizing.unknown-comp",
              "match references unknown or fixed component \"" + comp +
                  "\"",
              m.line, m.col);
          continue;
        }
        if (first == nullptr) {
          first = dev;
        } else if (dev->kind != first->kind) {
          mixed = true;
          add("sizing.match-mixed-kind",
              "match group mixes " + std::string(kind_name(first->kind)) +
                  " \"" + first->name + "\" with " + kind_name(dev->kind) +
                  " \"" + dev->name + "\"",
              m.line, m.col);
          break;
        }
      }
      if (!mixed && m.l_only && first != nullptr &&
          (first->kind == Kind::Resistor ||
           first->kind == Kind::Capacitor)) {
        add("sizing.match-l-only-passive",
            "l_only has no effect on a " +
                std::string(kind_name(first->kind)) +
                " match group (passives have no length)",
            m.line, m.col);
      }
    }

    check_expert();
  }

  void check_expert() {
    if (d_.expert.empty()) return;
    for (const DeviceDesc& dev : d_.devices) {
      if (!dev.designable) continue;
      bool covered = false;
      for (const ExpertDesc& e : d_.expert) {
        covered = covered || e.comp == dev.name;
      }
      if (!covered) {
        add("sizing.expert-incomplete",
            "expert sizing is incomplete: missing \"" + dev.name + "\"",
            dev.line, dev.col);
      }
    }
    for (const ExpertDesc& e : d_.expert) {
      const DeviceDesc* dev = designable(e.comp);
      if (dev == nullptr) {
        add("sizing.unknown-comp",
            "expert sizing references unknown or fixed component \"" +
                e.comp + "\"",
            e.line, e.col);
        continue;
      }
      const int dims = action_dim(dev->kind);
      if (static_cast<int>(e.values.size()) != dims) {
        add("sizing.expert-incomplete",
            "expert \"" + e.comp + "\": " + kind_name(dev->kind) +
                " takes " + std::to_string(dims) + " value(s), got " +
                std::to_string(e.values.size()),
            e.line, e.col);
        continue;
      }
      for (int param = 0; param < dims; ++param) {
        double lo = 0.0, hi = 0.0;
        default_range(dev->kind, param, lo, hi);
        for (const BoundDesc& b : d_.bounds) {
          if (b.comp == dev->name && b.param == param) {
            (b.hi ? hi : lo) = b.value.eval(tech_);
          }
        }
        if (lo >= hi) continue;  // already a sizing.bound-* error
        const double v =
            e.values[static_cast<std::size_t>(param)].eval(tech_);
        // Tolerate the quantization grid: the refinement step snaps W/L
        // to the technology grid anyway.
        const double slack =
            (dev->kind == Kind::Nmos || dev->kind == Kind::Pmos) &&
                    param < 2
                ? tech_.grid * 0.5
                : 0.0;
        if (!(v >= lo - slack && v <= hi + slack)) {
          add("sizing.expert-out-of-bounds",
              "expert " + e.comp + " " + param_key(dev->kind, param) +
                  "=" + fmt_num(v) + " lies outside bounds [" +
                  fmt_num(lo) + ", " + fmt_num(hi) + "]",
              e.line, e.col);
        }
      }
    }
  }

  // --- measurement plan ---------------------------------------------------

  int bench_index(const std::string& name) const {
    for (std::size_t i = 0; i < d_.benches.size(); ++i) {
      if (d_.benches[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  void check_plan() {
    if (d_.metrics.empty()) {
      add("plan.no-metrics",
          "circuit \"" + d_.name + "\" declares no FoM metrics",
          d_.name_line, d_.name_col);
    }
    // Every FoM metric must be measurable, or evaluation could never pass
    // the spec check (a missing metric is a failed design).
    for (const MetricDesc& m : d_.metrics) {
      bool produced = false;
      for (const ExtractDesc& e : d_.extracts) {
        produced = produced || e.metric == m.name;
      }
      if (!produced) {
        add("plan.metric-unproduced",
            "metric \"" + m.name + "\" has no extract producing it",
            m.line, m.col);
      }
    }
    for (const ExtractDesc& e : d_.extracts) {
      bool consumed = false;
      for (const MetricDesc& m : d_.metrics) {
        consumed = consumed || m.name == e.metric;
      }
      if (!consumed) {
        add("plan.metric-unconsumed",
            "extract produces \"" + e.metric +
                "\" which no FoM metric consumes",
            e.line, e.col);
      }
    }

    for (const BenchDesc& b : d_.benches) {
      check_bench(b);
    }
    for (const ExtractDesc& e : d_.extracts) {
      check_extract(e);
    }

    // A bench nobody extracts from burns simulations for nothing — unless
    // a later bench warm-starts its DC solve from it.
    for (const BenchDesc& b : d_.benches) {
      bool used = false;
      for (const ExtractDesc& e : d_.extracts) {
        used = used || e.bench == b.name;
      }
      for (const BenchDesc& other : d_.benches) {
        used = used || (&other != &b && other.warm_from == b.name);
      }
      if (!used) {
        add("plan.bench-unused",
            "bench \"" + b.name +
                "\" is simulated but nothing extracts from it",
            b.line, b.col);
      }
    }
  }

  void check_bench(const BenchDesc& b) {
    for (const SourceSetDesc& set : b.sets) {
      bool known = false;
      for (const SourceDesc& s : d_.sources) {
        known = known || s.name == set.source;
      }
      if (!known) {
        add("plan.unknown-ref",
            "set in bench \"" + b.name + "\" references unknown source \"" +
                set.source + "\"",
            set.line, set.col);
      }
    }
    if (b.ac) {
      const double fmin = b.ac->fmin.eval(tech_);
      const double fmax = b.ac->fmax.eval(tech_);
      if (!std::isfinite(fmin) || !std::isfinite(fmax) || fmin <= 0.0 ||
          fmax <= fmin || b.ac->npoints < 2) {
        add("plan.ac-sweep",
            "bench \"" + b.name + "\": degenerate ac sweep [" +
                fmt_num(fmin) + ", " + fmt_num(fmax) + "] x " +
                std::to_string(b.ac->npoints) +
                " (needs 0 < fmin < fmax and npoints >= 2)",
            b.ac->line, b.ac->col);
      }
    }
    if (b.noise) {
      if (b.noise->freqs.empty()) {
        add("plan.noise-freqs",
            "bench \"" + b.name + "\": noise analysis has no frequencies",
            b.noise->line, b.noise->col);
      }
      for (const Expr& f : b.noise->freqs) {
        const double v = f.eval(tech_);
        if (!std::isfinite(v) || v <= 0.0) {
          add("plan.noise-freqs",
              "bench \"" + b.name + "\": noise frequency " + fmt_num(v) +
                  " must be positive and finite",
              b.noise->line, b.noise->col);
        }
      }
      check_plan_net(b.noise->out_p, "noise out=", b.noise->line,
                     b.noise->col);
      check_plan_net(b.noise->out_n, "noise out=", b.noise->line,
                     b.noise->col);
    }
    if (b.tran) {
      const double tstop = b.tran->tstop.eval(tech_);
      const double dt = b.tran->dt.eval(tech_);
      if (!std::isfinite(tstop) || !std::isfinite(dt) || tstop <= 0.0 ||
          dt <= 0.0 || dt > tstop) {
        add("plan.tran-range",
            "bench \"" + b.name + "\": degenerate transient tstop=" +
                fmt_num(tstop) + " dt=" + fmt_num(dt) +
                " (needs 0 < dt <= tstop)",
            b.tran->line, b.tran->col);
      }
    }
    if (!b.warm_from.empty()) {
      const int src = bench_index(b.warm_from);
      const int self = bench_index(b.name);
      if (src < 0 || src >= self) {
        add("plan.unknown-ref",
            "bench \"" + b.name + "\": warm from=\"" + b.warm_from +
                "\" must name an earlier bench",
            b.line, b.col);
      }
    }
  }

  void check_plan_net(const std::string& name, const char* what, int line,
                      int col) {
    if (name.empty()) return;
    if (net_id(name) < 0) {
      add("plan.unknown-ref",
          std::string(what) + " references undeclared net \"" + name + "\"",
          line, col);
    }
  }

  void check_extract(const ExtractDesc& e) {
    const int bi = bench_index(e.bench);
    if (bi < 0) {
      add("plan.unknown-ref",
          "extract \"" + e.metric + "\" references unknown bench \"" +
              e.bench + "\"",
          e.line, e.col);
      return;
    }
    const BenchDesc& bench = d_.benches[static_cast<std::size_t>(bi)];
    check_plan_net(e.probe_p, "extract probe=", e.line, e.col);
    check_plan_net(e.probe_n, "extract probe=", e.line, e.col);

    const bool needs_ac =
        e.fn == ExtractFn::DcGain || e.fn == ExtractFn::Bandwidth3db ||
        e.fn == ExtractFn::PeakingDb || e.fn == ExtractFn::Gbw ||
        e.fn == ExtractFn::InputNoise;
    if (needs_ac && (e.probe_p.empty() || !bench.ac)) {
      add("plan.extract-requires",
          "extract \"" + e.metric + "\" needs probe= and an ac sweep on "
          "bench \"" + bench.name + "\"",
          e.line, e.col);
    }
    if (e.fn == ExtractFn::InputNoise) {
      if (!e.at_freq || !bench.noise) {
        add("plan.extract-requires",
            "extract \"" + e.metric + "\" needs at=FREQ and a noise "
            "analysis on bench \"" + bench.name + "\"",
            e.line, e.col);
      } else {
        // The extraction picks the nearest PSD sample; an at= frequency
        // between samples silently measures somewhere else.
        const double at = e.at_freq->eval(tech_);
        bool on_grid = false;
        for (const Expr& f : bench.noise->freqs) {
          const double v = f.eval(tech_);
          on_grid = on_grid ||
                    (v > 0.0 && at > 0.0 &&
                     std::fabs(std::log(v / at)) < 1e-3);
        }
        if (!on_grid) {
          add("plan.noise-at-off-grid",
              "extract \"" + e.metric + "\": at=" + fmt_num(at) +
                  " is not among bench \"" + bench.name +
                  "\"'s noise frequencies (the nearest sample is used)",
              e.line, e.col);
        }
      }
    }
    if (e.fn == ExtractFn::SettlingTime &&
        (e.probe_p.empty() || !e.win_t0 || !e.win_t1 || !e.edge || !e.tol ||
         !bench.tran)) {
      add("plan.extract-requires",
          "extract \"" + e.metric + "\" needs probe=, window=, edge=, "
          "tol= and a tran analysis on bench \"" + bench.name + "\"",
          e.line, e.col);
    }
  }

  // --- #lint: allow pragmas ----------------------------------------------

  void apply_allows() {
    for (const LintAllowDesc& allow : d_.lint_allows) {
      const CheckInfo* info = find_check(allow.check);
      if (info == nullptr) {
        add("lint.unknown-check",
            "allow names unknown check \"" + allow.check + "\"",
            allow.line, allow.col);
        continue;
      }
      if (info->severity == Severity::Error) {
        add("lint.unused-allow",
            "allow \"" + allow.check +
                "\" has no effect: errors are not suppressible",
            allow.line, allow.col);
        continue;
      }
      bool hit = false;
      for (auto it = diags_.begin(); it != diags_.end();) {
        if (it->severity == Severity::Warning && it->check == allow.check) {
          it = diags_.erase(it);
          hit = true;
        } else {
          ++it;
        }
      }
      if (!hit) {
        add("lint.unused-allow",
            "allow \"" + allow.check + "\" suppressed nothing",
            allow.line, allow.col);
      }
    }
  }

  const CircuitDescription& d_;
  const Technology& tech_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::string Diagnostic::format() const {
  std::string out = origin.empty() ? "<unknown>" : origin;
  out += ":" + std::to_string(line) + ":" + std::to_string(col) + ": ";
  out += severity == Severity::Error ? "error: " : "warning: ";
  out += message;
  out += " [" + check + "]";
  return out;
}

const std::vector<CheckInfo>& analyzer_checks() { return check_catalog(); }

std::vector<Diagnostic> analyze_circuit(const CircuitDescription& d,
                                        const Technology& tech) {
  return Analyzer(d, tech).run();
}

bool has_errors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& diag : diags) {
    if (diag.severity == Severity::Error) return true;
  }
  return false;
}

std::string format_diagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& diag : diags) {
    out += diag.format();
    out += '\n';
  }
  return out;
}

}  // namespace gcnrl::circuit
