#include "common/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace gcnrl {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

CsvWriter::CsvWriter(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("CsvWriter: cannot open " + path_);
  }
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  auto* f = static_cast<std::FILE*>(file_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::fputs(cells[i].c_str(), f);
    std::fputc(i + 1 == cells.size() ? '\n' : ',', f);
  }
}

}  // namespace gcnrl
