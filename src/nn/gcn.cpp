#include "nn/gcn.hpp"

#include <cmath>
#include <stdexcept>

namespace gcnrl::nn {

la::Mat normalized_adjacency(const la::Mat& adjacency) {
  if (adjacency.rows() != adjacency.cols()) {
    throw std::invalid_argument("normalized_adjacency: A must be square");
  }
  const int n = adjacency.rows();
  la::Mat a_tilde = adjacency;
  for (int i = 0; i < n; ++i) a_tilde(i, i) += 1.0;  // A + I
  std::vector<double> d_inv_sqrt(n);
  for (int i = 0; i < n; ++i) {
    double deg = 0.0;
    for (int j = 0; j < n; ++j) deg += a_tilde(i, j);
    d_inv_sqrt[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  la::Mat a_hat(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a_hat(i, j) = d_inv_sqrt[i] * a_tilde(i, j) * d_inv_sqrt[j];
    }
  }
  return a_hat;
}

GcnLayer::GcnLayer(std::string name, int in_features, int out_features,
                   Rng& rng)
    : w_(name + ".w", xavier_uniform(in_features, out_features, rng)),
      b_(name + ".b", la::Mat(1, out_features)) {}

ag::Var GcnLayer::forward(ag::Tape& tape, ag::Var h, const la::Mat& a_hat) {
  ag::Var w = leaf(tape, w_);
  ag::Var b = leaf(tape, b_);
  ag::Var agg = ag::matmul_const_left(a_hat, h);
  return ag::add_row_broadcast(ag::matmul(agg, w), b);
}

}  // namespace gcnrl::nn
