// LU decomposition with partial pivoting, templated over double /
// std::complex<double>.
//
// The circuit simulator factors one MNA matrix per Newton iteration (DC,
// transient) or per frequency point (AC, noise) and then back-substitutes
// one or more right-hand sides; the factor-once / solve-many split below
// is what makes per-noise-source adjoint solves cheap.
#pragma once

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "la/matrix.hpp"

namespace gcnrl::la {

struct SingularMatrixError : std::runtime_error {
  SingularMatrixError() : std::runtime_error("LU: matrix is singular") {}
};

template <typename T>
class Lu {
 public:
  // Empty Lu for deferred factorization via factor_copy(); solving before
  // a successful factor_copy() is undefined.
  Lu() = default;

  explicit Lu(Matrix<T> a) : lu_(std::move(a)), piv_(lu_.rows()) {
    if (lu_.rows() != lu_.cols()) {
      throw std::invalid_argument("Lu: matrix must be square");
    }
    factor();
  }

  // Re-factor from a fresh matrix, reusing this object's storage — the
  // Newton-loop variant of the constructor: after the first call no heap
  // allocation happens when the dimension is unchanged.
  void factor_copy(const Matrix<T>& a) {
    if (a.rows() != a.cols()) {
      throw std::invalid_argument("Lu: matrix must be square");
    }
    lu_ = a;
    piv_.resize(lu_.rows());
    factor();
  }

  // Copy-free variant: swaps `a` into this Lu and factors it. On return,
  // `a` holds the previous factor storage (garbage values, but the right
  // shape after the first round trip) for the caller to re-zero and
  // re-assemble — the Newton loop ping-pongs the two buffers with no
  // allocation and no O(n^2) copy, exactly matching the arithmetic of
  // constructing a fresh Lu from a moved-in matrix.
  void factor_swap(Matrix<T>& a) {
    if (a.rows() != a.cols()) {
      throw std::invalid_argument("Lu: matrix must be square");
    }
    std::swap(lu_, a);
    piv_.resize(lu_.rows());
    factor();
  }

  // Solve A x = b for a single RHS vector (b.size() == n).
  std::vector<T> solve(const std::vector<T>& b) const {
    std::vector<T> x;
    solve_into(b, x);
    return x;
  }

  // Allocation-free solve: x is resized to n and overwritten. x must not
  // alias b.
  void solve_into(const std::vector<T>& b, std::vector<T>& x) const {
    const int n = lu_.rows();
    if (static_cast<int>(b.size()) != n) {
      throw std::invalid_argument("Lu::solve: RHS size mismatch");
    }
    x.resize(n);
    for (int i = 0; i < n; ++i) x[i] = b[piv_[i]];
    // Forward substitution (L has unit diagonal).
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
    }
    // Back substitution.
    for (int i = n - 1; i >= 0; --i) {
      for (int j = i + 1; j < n; ++j) x[i] -= lu_(i, j) * x[j];
      x[i] /= lu_(i, i);
    }
  }

  // Solve A^T x = b (real) / A^H x = b when conjugate=true (complex); used
  // by the adjoint method in noise analysis.
  std::vector<T> solve_transposed(const std::vector<T>& b,
                                  bool conjugate = false) const {
    std::vector<T> x;
    solve_transposed_into(b, x, conjugate);
    return x;
  }

  // Allocation-free transposed solve (after the first call on this Lu).
  // x is resized to n and overwritten; x must not alias b.
  void solve_transposed_into(const std::vector<T>& b, std::vector<T>& x,
                             bool conjugate = false) const {
    const int n = lu_.rows();
    if (static_cast<int>(b.size()) != n) {
      throw std::invalid_argument("Lu::solve_transposed: RHS size mismatch");
    }
    auto elem = [&](int i, int j) {
      if constexpr (std::is_same_v<T, std::complex<double>>) {
        return conjugate ? std::conj(lu_(i, j)) : lu_(i, j);
      } else {
        (void)conjugate;
        return lu_(i, j);
      }
    };
    // A = P^T L U  =>  A^T = U^T L^T P. Solve U^T y = b, L^T z = y,
    // then x = P^T z (i.e. x[piv[i]] = z[i]).
    std::vector<T>& y = scratch_;
    y.assign(b.begin(), b.end());
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < i; ++j) y[i] -= elem(j, i) * y[j];
      y[i] /= elem(i, i);
    }
    for (int i = n - 1; i >= 0; --i) {
      for (int j = i + 1; j < n; ++j) y[i] -= elem(j, i) * y[j];
    }
    x.resize(n);
    for (int i = 0; i < n; ++i) x[piv_[i]] = y[i];
  }

  [[nodiscard]] int size() const { return lu_.rows(); }

 private:
  static double mag(const T& v) {
    if constexpr (std::is_same_v<T, std::complex<double>>) {
      return std::abs(v);
    } else {
      return std::fabs(v);
    }
  }

  void factor() {
    const int n = lu_.rows();
    for (int i = 0; i < n; ++i) piv_[i] = i;
    for (int k = 0; k < n; ++k) {
      // Partial pivot: largest magnitude in column k at/below the diagonal.
      int p = k;
      double best = mag(lu_(k, k));
      for (int i = k + 1; i < n; ++i) {
        const double m = mag(lu_(i, k));
        if (m > best) {
          best = m;
          p = i;
        }
      }
      if (best < 1e-300) throw SingularMatrixError{};
      if (p != k) {
        for (int j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
        std::swap(piv_[k], piv_[p]);
      }
      const T pivot = lu_(k, k);
      for (int i = k + 1; i < n; ++i) {
        const T factor = lu_(i, k) / pivot;
        lu_(i, k) = factor;
        if (factor == T{}) continue;
        for (int j = k + 1; j < n; ++j) lu_(i, j) -= factor * lu_(k, j);
      }
    }
  }

  Matrix<T> lu_;
  std::vector<int> piv_;
  // Reusable work vector for solve_transposed_into; mutable because the
  // solves are logically const. Lu objects are not shared across threads
  // (each SimContext/eval worker owns its own), matching the rest of the
  // simulator's threading contract.
  mutable std::vector<T> scratch_;
};

// Convenience one-shot solvers.
std::vector<double> solve(const Mat& a, const std::vector<double>& b);
std::vector<std::complex<double>> solve(
    const CMat& a, const std::vector<std::complex<double>>& b);

}  // namespace gcnrl::la
