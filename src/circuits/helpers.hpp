// Internal helpers shared by the circuit builders (not installed API).
//
// The curve-extraction helpers themselves live in meas/plan.hpp now, so
// the .gcir plan interpreter and the hand-written builders run the exact
// same code; this header keeps the builders' historical
// circuits::detail:: spelling.
#pragma once

#include "meas/plan.hpp"
#include "sim/simulator.hpp"

namespace gcnrl::circuits::detail {

using meas::curve_at;
using meas::curve_diff;
using meas::input_referred_noise;
using meas::tran_curve;
using meas::window;

}  // namespace gcnrl::circuits::detail
