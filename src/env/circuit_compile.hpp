// Compiles a parsed .gcir circuit description (circuit::parse_gcir /
// load_gcir) against a concrete technology node into a runnable
// env::BenchmarkCircuit — the bridge between the unresolved, Expr-valued
// description and the resolved meas::Plan its `evaluate` closure
// interprets.
#pragma once

#include "circuit/description.hpp"
#include "env/sizing_env.hpp"

namespace gcnrl::env {

// Builds netlist, design space (+ bound overrides and match groups), FoM
// table, measurement plan and human-expert sizing from `d`. The returned
// circuit's `evaluate` closure captures an immutable shared Plan plus a
// Technology copy and satisfies the EvalService concurrency contract.
// All name references were resolved by the parser; this only evaluates
// expressions and translates names to indices.
BenchmarkCircuit compile_circuit(const circuit::CircuitDescription& d,
                                 const circuit::Technology& tech);

}  // namespace gcnrl::env
