// Shared helpers for the test suites (not part of the installed API).
#pragma once

#include <cstdlib>
#include <string>

namespace gcnrl::testing {

// RAII helper: sets an environment variable for one test and restores the
// previous value (or unsets) on destruction, so suites stay order-independent.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

}  // namespace gcnrl::testing
