// Simulator facade: the drop-in for Spectre/Hspice in the sizing loop.
//
// One Simulator instance wraps a *sized* netlist plus a technology node;
// analyses are lazily driven off the (cached) DC operating point. Circuit
// builders construct one Simulator per analysis configuration (closed
// loop, open loop, loop-gain injection, ...) because the configurations
// differ structurally, exactly as separate testbenches would in a real
// flow.
//
// DC warm starts come from two places (see sim/warm.hpp):
//   * warm_start_from(op) — an explicit guess handed over by the caller,
//     typically the solved operating point of a sibling testbench for the
//     same design. Pure: derived only from the design under evaluation.
//   * an active WarmStartScope — each Simulator constructed inside the
//     scope claims the next bank slot and, lacking an explicit guess,
//     warm-starts from the converged op the *previous design* stored in
//     that slot. Opt-in at the EvalService level.
// In both cases Newton tries the guess directly at the target gmin and
// falls back to the unchanged cold ladder on non-convergence, so a bad
// guess can cost iterations but never a different failure behavior.
#pragma once

#include <optional>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/noise.hpp"
#include "sim/tran.hpp"
#include "sim/warm.hpp"

namespace gcnrl::sim {

class Simulator {
 public:
  Simulator(const circuit::Netlist& nl, const circuit::Technology& tech);

  // Supplies an explicit DC initial guess (projected onto this netlist's
  // unknowns). Call before the first analysis; takes precedence over any
  // WarmStartScope slot. No effect once op() has been solved.
  void warm_start_from(const OpPoint& guess);

  // DC operating point (computed once, cached). Throws SimError.
  const OpPoint& op();
  // Re-solve with transient sources evaluated at t=0 (for tran ICs);
  // computed once and cached like op(). Warm-started from op() when that
  // is already solved — the t=0 point differs only through PWL sources.
  const OpPoint& op_at_time_zero();

  // Diagnostics of the most recent op()/op_at_time_zero() DC solve.
  [[nodiscard]] const DcStats& dc_stats() const { return dc_stats_; }

  AcResult ac(const std::vector<double>& freqs);
  NoiseResult noise(const std::vector<double>& freqs, int outp, int outn = 0);
  TranResult tran(const TranOptions& opt);

  // Power drawn from all supply-like voltage sources: sum of V * I_source
  // for sources delivering power (I out of + terminal, same sign as V).
  double supply_power();
  // Current delivered by a named voltage source (positive out of +).
  double source_current(const std::string& vsrc_name);

  [[nodiscard]] const SimContext& context() const { return ctx_; }

 private:
  SimContext ctx_;
  std::optional<OpPoint> op_;
  std::optional<OpPoint> op_t0_;
  std::optional<std::vector<double>> warm_guess_;
  int scope_slot_ = -1;  // bank slot claimed at construction, -1 = none
  DcStats dc_stats_;
};

}  // namespace gcnrl::sim
