// Figure 5 reproduction: learning curves (best-FoM-so-far vs evaluation)
// for all methods on all four circuits. Emits one CSV per circuit
// (fig5_<circuit>.csv: column per method, row per evaluation step) and an
// ASCII summary of the FoM at several checkpoints.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

int main() {
  const BenchConfig cfg = bench_config();
  const auto tech = circuit::make_technology("180nm");
  Rng rng(2024);
  const int seeds = std::max(1, cfg.seeds - 1);  // curves: 1 fewer seed
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());

  std::printf("Fig 5: learning curves (steps=%d, seeds=%d)\n%s\n\n",
              cfg.steps, seeds, bench::eval_banner().c_str());

  for (const auto& circuit_name : circuits::benchmark_names()) {
    bench::EnvFactory factory(circuit_name, tech, env::IndexMode::OneHot,
                              cfg.calib_samples, rng, svc);
    std::map<std::string, std::vector<double>> mean_trace;
    std::vector<long> es_sims;  // per-seed BO/MACE simulated-cost budgets
    for (const auto& method : bench::kMethods) {
      const auto sw = bench::sweep_chained(method, factory, cfg.steps,
                                           cfg.warmup, seeds, es_sims);
      // Mean best-so-far trace across seeds (traces may differ in length
      // for the sim-budgeted BO methods; use the shortest).
      std::size_t len = sw.traces.front().size();
      for (const auto& t : sw.traces) len = std::min(len, t.size());
      std::vector<double> mean(len, 0.0);
      const auto n_traces = static_cast<double>(sw.traces.size());
      for (const auto& t : sw.traces) {
        for (std::size_t i = 0; i < len; ++i) mean[i] += t[i] / n_traces;
      }
      mean_trace[method] = std::move(mean);
      std::printf("  %-10s %-7s final %.3f\n", circuit_name.c_str(),
                  method.c_str(), mean_trace[method].back());
      std::fflush(stdout);
    }

    const std::string path = "fig5_" + circuit_name + ".csv";
    CsvWriter csv(path);
    std::vector<std::string> header = {"step"};
    for (const auto& m : bench::kMethods) header.push_back(m);
    csv.row(header);
    std::size_t max_len = 0;
    for (const auto& [m, t] : mean_trace) max_len = std::max(max_len, t.size());
    for (std::size_t i = 0; i < max_len; ++i) {
      std::vector<std::string> row = {std::to_string(i + 1)};
      for (const auto& m : bench::kMethods) {
        const auto& t = mean_trace[m];
        row.push_back(TextTable::num(t[std::min(i, t.size() - 1)], 6));
      }
      csv.row(row);
    }
    std::printf("  wrote %s\n", path.c_str());
  }
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper shape: GCN-RL's curve rises fastest and ends highest; NG-RL\n"
      "close behind; black-box methods below; random lowest.\n");
  return 0;
}
