#include "sim/noise.hpp"

#include <chrono>
#include <cmath>

#include "sim/ac.hpp"
#include "sim/perf.hpp"

namespace gcnrl::sim {

NoiseResult solve_noise(const SimContext& ctx, const OpPoint& op,
                        const std::vector<double>& freqs, int outp,
                        int outn) {
  using cd = std::complex<double>;
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;

  NoiseResult out;
  out.freq = freqs;
  out.out_psd.resize(freqs.size(), 0.0);

  std::vector<cd> e(m.dim(), cd(0.0));
  if (m.v(outp) >= 0) e[m.v(outp)] += 1.0;
  if (m.v(outn) >= 0) e[m.v(outn)] -= 1.0;

  // One netlist walk for the whole sweep; each frequency assembles
  // Y = G + j*omega*C by scaled addition.
  const AcStamps stamps = build_ac_stamps(ctx, op);

  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const double f = freqs[fi];
    const double omega = 2.0 * M_PI * f;
    la::CMat y = assemble_ac_matrix(stamps, omega);
    la::Lu<cd> lu(std::move(y));
    // Adjoint: Y^T ytr = e  =>  v_out(unit injection a->b) = ytr_a - ytr_b.
    const std::vector<cd> ytr = lu.solve_transposed(e, /*conjugate=*/false);

    auto transfer_sq = [&](int a, int b) {
      const cd ta = m.v(a) >= 0 ? ytr[m.v(a)] : cd(0.0);
      const cd tb = m.v(b) >= 0 ? ytr[m.v(b)] : cd(0.0);
      return std::norm(ta - tb);
    };

    double psd = 0.0;
    for (const auto& res : nl.resistors()) {
      psd += transfer_sq(res.a, res.b) * resistor_thermal_psd(res.r);
    }
    for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
      const auto& mos = nl.mosfets()[k];
      const double gm = std::max(op.mos[k].gm, 0.0);
      const double s_th = mos_thermal_psd(gm);
      const double s_fl = mos_flicker_psd(ctx.models[k], mos, gm, f);
      psd += transfer_sq(mos.d, mos.s) * (s_th + s_fl);
    }
    out.out_psd[fi] = psd;
  }
  sim_perf_record(Analysis::Noise, static_cast<long>(freqs.size()),
                  std::chrono::duration<double>(clock::now() - t0).count());
  return out;
}

}  // namespace gcnrl::sim
