// Table V reproduction: knowledge transfer between topologies
// (Two-TIA <-> Three-TIA) with scalar-index states (paper Sec. III-E).
// Three modes per direction: no transfer / NG-RL transfer / GCN-RL
// transfer. The paper's headline: without the GCN, transferred knowledge
// is no better than starting fresh.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

namespace {

struct Direction {
  std::string src, dst;
};

}  // namespace

int main() {
  const BenchConfig cfg = bench_config();
  Rng rng(2024);
  const auto tech = circuit::make_technology("180nm");

  std::printf(
      "Table V: topology transfer (pretrain=%d, budget=%d steps, seeds=%d)\n"
      "%s\n\n",
      cfg.steps, cfg.transfer_steps, cfg.seeds, bench::eval_banner().c_str());

  TextTable table({"Mode", "Two-TIA -> Three-TIA", "Three-TIA -> Two-TIA"});
  std::map<std::string, std::vector<std::string>> rows = {
      {"No Transfer", {"No Transfer"}},
      {"NG-RL Transfer", {"NG-RL Transfer"}},
      {"GCN-RL Transfer", {"GCN-RL Transfer"}},
  };

  for (const Direction& dir : {Direction{"Two-TIA", "Three-TIA"},
                               Direction{"Three-TIA", "Two-TIA"}}) {
    bench::EnvFactory src_factory(dir.src, tech, env::IndexMode::Scalar,
                                  cfg.calib_samples, rng);
    bench::EnvFactory dst_factory(dir.dst, tech, env::IndexMode::Scalar,
                                  cfg.calib_samples, rng);

    // Pretrain GCN and NG agents on the source topology.
    std::map<bool, std::unique_ptr<rl::DdpgAgent>> pretrained;
    for (bool use_gcn : {true, false}) {
      auto env = src_factory.make();
      rl::DdpgConfig pre_cfg;
      pre_cfg.warmup = cfg.warmup;
      pre_cfg.use_gcn = use_gcn;
      auto agent = std::make_unique<rl::DdpgAgent>(
          env->state(), env->adjacency(), env->kinds(), pre_cfg, Rng(600));
      rl::run_ddpg(*env, *agent, cfg.steps);
      pretrained[use_gcn] = std::move(agent);
    }
    std::printf("  %s agents pretrained\n", dir.src.c_str());
    std::fflush(stdout);

    std::vector<double> none, ng, gcn;
    for (int s = 0; s < cfg.seeds; ++s) {
      const std::uint64_t seed = 700 + 17 * s;
      rl::DdpgConfig t_cfg;
      t_cfg.warmup = cfg.transfer_warmup;
      {
        auto env = dst_factory.make();
        rl::DdpgAgent agent(env->state(), env->adjacency(), env->kinds(),
                            t_cfg, Rng(seed));
        none.push_back(
            rl::run_ddpg(*env, agent, cfg.transfer_steps).best_fom);
      }
      for (bool use_gcn : {false, true}) {
        auto env = dst_factory.make();
        rl::DdpgConfig m_cfg = t_cfg;
        m_cfg.use_gcn = use_gcn;
        rl::DdpgAgent agent(env->state(), env->adjacency(), env->kinds(),
                            m_cfg, Rng(seed));
        agent.copy_weights_from(*pretrained[use_gcn]);
        (use_gcn ? gcn : ng)
            .push_back(
                rl::run_ddpg(*env, agent, cfg.transfer_steps).best_fom);
      }
    }
    rows["No Transfer"].push_back(bench::pm(la::mean(none), la::stddev(none)));
    rows["NG-RL Transfer"].push_back(bench::pm(la::mean(ng), la::stddev(ng)));
    rows["GCN-RL Transfer"].push_back(
        bench::pm(la::mean(gcn), la::stddev(gcn)));
    std::printf("  %s -> %s done\n", dir.src.c_str(), dir.dst.c_str());
    std::fflush(stdout);
  }

  table.add_row(rows["No Transfer"]);
  table.add_row(rows["NG-RL Transfer"]);
  table.add_row(rows["GCN-RL Transfer"]);
  std::printf("\n");
  table.print();
  std::printf(
      "\nPaper reference: GCN-RL transfer 0.78 / 2.45 beats NG-RL transfer\n"
      "0.62 / 2.40 which is on par with no transfer 0.63 / 2.37.\n");
  return 0;
}
