// Small-signal AC analysis.
//
// Linearizes every MOSFET at the DC operating point (gm VCCS, gds, and the
// four capacitances) and solves the complex MNA system Y(w) x = rhs at
// each frequency, where rhs carries the `ac` magnitudes of the independent
// sources. Results are node-voltage phasors per frequency.
#pragma once

#include <complex>

#include "sim/mna.hpp"

namespace gcnrl::sim {

struct AcResult {
  std::vector<double> freq;  // [Hz]
  la::CMat v;                // freq.size() x num_nodes node phasors

  [[nodiscard]] std::complex<double> phasor(int f_index, int node) const {
    return v(f_index, node);
  }
  // Differential phasor between two nodes.
  [[nodiscard]] std::complex<double> diff(int f_index, int p, int n) const {
    return v(f_index, p) - v(f_index, n);
  }
};

// Builds Y(omega) at the operating point (shared with noise analysis).
la::CMat build_ac_matrix(const SimContext& ctx, const OpPoint& op,
                         double omega);

AcResult solve_ac(const SimContext& ctx, const OpPoint& op,
                  const std::vector<double>& freqs);

}  // namespace gcnrl::sim
