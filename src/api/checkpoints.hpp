// Named checkpoint artifacts: the zoo the transfer protocol draws from.
//
// A checkpoint is the full actor/critic parameter set of a trained agent,
// stored under a user-chosen name and stamped with what it was trained on
// (circuit tag, technology node, index mode). TaskSpec::save_checkpoint /
// load_checkpoint address this store by name, so a spec file can pretrain
// once and warm-start any number of later tasks — including tasks in a
// different process, via the disk tier.
//
// Two tiers:
//   memory  always on; artifacts live for the store's lifetime.
//   disk    opt-in; when the store has a directory (explicitly, or via
//           GCNRL_CHECKPOINT_DIR for the default store), every put() also
//           writes `<dir>/<sanitized-name>.gcr` in the versioned
//           nn/serialize format with the stamp in the metadata section,
//           and load() falls back to disk on a memory miss. A warm start
//           from the disk tier is bit-identical to one from memory (both
//           end in the same by-name tensor assignment).
//
// Stamp checking on load — mismatches fail loudly instead of silently
// producing a garbage warm start:
//   index mode   must match exactly (state layouts differ).
//   circuit      must match under OneHot (the one-hot index block ties the
//                state encoding to one topology); any circuit is accepted
//                under Scalar — cross-topology transfer is the point of
//                that mode (paper Sec. III-E).
//   source       under OneHot, when both sides carry a source fingerprint,
//                they must match: two same-named circuits from *different*
//                .gcir content are different topologies even though the
//                circuit tag agrees. Either side empty skips the check
//                (old artifacts carry no fingerprint).
//   node         never checked — cross-node transfer is the headline
//                protocol (Table IV).
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "env/sizing_env.hpp"
#include "nn/serialize.hpp"

namespace gcnrl::api {

// What an artifact was trained on. `circuit` and `node` are the registry /
// technology names; `mode` is the state-index mode of the training env;
// `source` is the circuit's content fingerprint (api::circuit_source_tag —
// "gcir:<hash>" for file-registered circuits, "" for C++ builders).
struct CheckpointStamp {
  std::string circuit;
  std::string node;
  env::IndexMode mode = env::IndexMode::OneHot;
  std::string source;
};

class CheckpointStore {
 public:
  // Memory tier only.
  CheckpointStore() = default;
  // Memory tier plus a disk tier rooted at `dir` (created on first put;
  // empty string = memory only).
  explicit CheckpointStore(std::string dir);

  // Stores a deep copy of `params` under `name` (overwriting any previous
  // artifact of that name in both tiers). Throws std::runtime_error when
  // the disk tier is on and the file cannot be written.
  void put(const std::string& name, const std::vector<nn::Parameter*>& params,
           const CheckpointStamp& stamp);

  // True when `name` is resolvable from either tier.
  [[nodiscard]] bool contains(const std::string& name) const;

  // Loads `name` into `dst` (strict by-name assignment: every destination
  // parameter must be matched in name and shape). Checks the stored stamp
  // against `expect` per the rules above. Throws std::runtime_error on a
  // missing artifact, a stamp mismatch, or an unmatched parameter; returns
  // the number of tensors copied.
  int load(const std::string& name, const std::vector<nn::Parameter*>& dst,
           const CheckpointStamp& expect) const;

  // Memory-tier artifact names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  // Drops every memory-tier artifact (disk files are left alone).
  void clear();

  [[nodiscard]] const std::string& dir() const { return dir_; }

  // The on-disk file a name maps to (empty when the disk tier is off).
  [[nodiscard]] std::string path_of(const std::string& name) const;

 private:
  struct Entry {
    CheckpointStamp stamp;
    std::vector<nn::NamedTensor> tensors;
  };

  std::string dir_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> mem_;
};

// The process-wide store run_tasks uses when RunOptions::checkpoints is
// null. Its disk tier comes from GCNRL_CHECKPOINT_DIR (read once, at first
// use); unset means memory only.
CheckpointStore& default_checkpoint_store();

}  // namespace gcnrl::api
