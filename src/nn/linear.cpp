#include "nn/linear.hpp"

namespace gcnrl::nn {

Linear::Linear(std::string name, int in_features, int out_features, Rng& rng,
               double out_scale)
    : w_(name + ".w", out_scale < 0.0
                          ? xavier_uniform(in_features, out_features, rng)
                          : uniform_init(in_features, out_features, out_scale,
                                         rng)),
      b_(name + ".b", la::Mat(1, out_features)) {}

ag::Var Linear::forward(ag::Tape& tape, ag::Var x) {
  ag::Var w = leaf(tape, w_);
  ag::Var b = leaf(tape, b_);
  return ag::add_row_broadcast(ag::matmul(x, w), b);
}

}  // namespace gcnrl::nn
