// Bring your own circuit: load a textual .gcir circuit description (a
// simple five-transistor OTA), register it at runtime, and size it with
// the library — no C++ circuit code and no changes to the library.
//
// This demonstrates the data-driven extension surface:
//   Circuit description   -> examples/five_t_ota.gcir (format:
//                            src/circuit/gcir.hpp)
//   Runtime registration  -> api::register_circuit_file
//   Benchmark compilation -> api::build_circuit (env::compile_circuit)
//   Optimization          -> rl::DdpgAgent or any opt::Optimizer
//
// The same file also works declaratively: point a spec file's
// "circuit_file" key (or gcnrl_cli --circuit) at it and address the
// circuit by its declared name, "MyOTA".
#include <cstdio>
#include <cstdlib>

#include "api/api.hpp"
#include "env/sizing_env.hpp"
#include "rl/run_loop.hpp"

#ifndef GCNRL_SOURCE_DIR
#define GCNRL_SOURCE_DIR "."
#endif

using namespace gcnrl;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 250;
  const char* path = argc > 2 ? argv[2] : GCNRL_SOURCE_DIR
      "/examples/five_t_ota.gcir";
  try {
    // Parse + validate the description, probe-compile it, and make its
    // declared name addressable exactly like a built-in benchmark.
    const std::string name = api::register_circuit_file(path);
    std::printf("registered circuit \"%s\" from %s\n", name.c_str(), path);

    const auto tech = circuit::make_technology("130nm");
    env::SizingEnv env(api::build_circuit(name, tech));
    Rng rng(9);
    std::printf("Custom 5T OTA @ 130nm: %d components, %d parameters\n",
                env.n(), env.flat_dim());
    env.calibrate(150, rng);

    const auto start = env.evaluate_params(env.bench().human_expert);
    std::printf("starting point FoM: %.3f (gain %.1f, GBW %.3g Hz)\n",
                start.fom, start.metrics.at("gain"),
                start.metrics.at("gbw"));

    rl::DdpgConfig cfg;
    cfg.warmup = steps / 3;
    rl::DdpgAgent agent(env.state(), env.adjacency(), env.kinds(), cfg,
                        rng.split());
    const auto r = rl::run_ddpg(env, agent, steps);
    std::printf("after %d GCN-RL steps: FoM %.3f (gain %.1f, GBW %.3g Hz, "
                "power %.3g W)\n",
                steps, r.best_fom, r.best_metrics.at("gain"),
                r.best_metrics.at("gbw"), r.best_metrics.at("power"));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "custom_circuit: %s\n", e.what());
    return 2;
  }
}
