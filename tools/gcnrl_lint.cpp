// gcnrl_lint: standalone front end for the .gcir semantic analyzer
// (circuit/analyze.hpp) — the same checks api::register_circuit_file runs
// at registration, usable on files before submitting them and in CI.
//
//   gcnrl_lint [--Werror] [--format=text|json] [--node=NODE] FILE...
//   gcnrl_lint --checks
//
// Exit codes: 0 = all files clean (warnings allowed unless --Werror),
// 1 = at least one diagnostic rejected a file, 2 = usage or I/O/parse
// failure. --format=json emits one array of {file, line, col, severity,
// check, message} objects on stdout for machine consumption; text mode
// prints compiler-style "<file>:<line>:<col>: <severity>: ..." lines.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "circuit/analyze.hpp"
#include "circuit/gcir.hpp"
#include "circuit/tech.hpp"

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void print_json(const std::vector<gcnrl::circuit::Diagnostic>& diags) {
  std::printf("[");
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const gcnrl::circuit::Diagnostic& d = diags[i];
    std::printf(
        "%s\n  {\"file\": \"%s\", \"line\": %d, \"col\": %d, "
        "\"severity\": \"%s\", \"check\": \"%s\", \"message\": \"%s\"}",
        i == 0 ? "" : ",", json_escape(d.origin).c_str(), d.line, d.col,
        d.severity == gcnrl::circuit::Severity::Error ? "error" : "warning",
        json_escape(d.check).c_str(), json_escape(d.message).c_str());
  }
  std::printf("%s]\n", diags.empty() ? "" : "\n");
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--Werror] [--format=text|json] [--node=NODE] FILE...\n"
      "       %s --checks        (print the check catalog)\n",
      argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  bool json = false;
  std::string node = "180nm";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--Werror") {
      werror = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg.rfind("--node=", 0) == 0) {
      node = arg.substr(7);
    } else if (arg == "--checks") {
      for (const gcnrl::circuit::CheckInfo& c :
           gcnrl::circuit::analyzer_checks()) {
        std::printf("%-28s %-8s %s\n", c.id,
                    c.severity == gcnrl::circuit::Severity::Error
                        ? "error"
                        : "warning",
                    c.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: unknown option \"%s\"\n", argv[0],
                   arg.c_str());
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  gcnrl::circuit::Technology tech;
  try {
    tech = gcnrl::circuit::make_technology(node);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  std::vector<gcnrl::circuit::Diagnostic> all;
  bool rejected = false;
  for (const std::string& file : files) {
    try {
      const gcnrl::circuit::CircuitDescription desc =
          gcnrl::circuit::load_gcir(file);
      const std::vector<gcnrl::circuit::Diagnostic> diags =
          gcnrl::circuit::analyze_circuit(desc, tech);
      for (const gcnrl::circuit::Diagnostic& d : diags) {
        rejected = rejected ||
                   d.severity == gcnrl::circuit::Severity::Error || werror;
        all.push_back(d);
      }
    } catch (const std::exception& e) {
      // Unreadable or syntactically invalid: the parser's own positioned
      // message, not an analyzer diagnostic.
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  if (json) {
    print_json(all);
  } else {
    for (const gcnrl::circuit::Diagnostic& d : all) {
      std::fprintf(stderr, "%s\n", d.format().c_str());
    }
    if (!all.empty()) {
      int errors = 0, warnings = 0;
      for (const gcnrl::circuit::Diagnostic& d : all) {
        (d.severity == gcnrl::circuit::Severity::Error ? errors
                                                       : warnings)++;
      }
      std::fprintf(stderr, "%d error(s), %d warning(s)%s\n", errors,
                   warnings,
                   werror && errors == 0 && warnings > 0
                       ? " (warnings rejected by --Werror)"
                       : "");
    }
  }
  return rejected ? 1 : 0;
}
