// Synthetic scalable technology library.
//
// The paper ports designs across commercial 250/180/130/65/45 nm nodes; we
// substitute a first-order-physics node family (see DESIGN.md). Each node
// carries exactly the model parameters the paper exposes to the RL state
// vector (Vsat, Vth0, Vfb, mu0, Uc) plus the quantities the simulator
// needs (Cox, lambda, caps, noise coefficients, supply, geometry limits).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace gcnrl::circuit {

struct Technology {
  std::string name;   // "180nm" etc.
  double lnode;       // feature size [m]
  double vdd;         // nominal supply [V]

  // Geometry limits and quantization for W/L/M.
  double lmin, lmax;  // [m]
  double wmin, wmax;  // [m]
  double grid;        // W/L rounding grid [m]
  int mmax;           // max multiplier

  // Device physics (NMOS / PMOS where split).
  double cox;         // gate capacitance per area [F/m^2]
  double vth0_n, vth0_p;  // threshold magnitude [V]
  double mu0_n, mu0_p;    // low-field mobility [m^2/Vs]
  double vsat;        // saturation velocity [m/s]
  double uc;          // mobility degradation [1/V]
  double vfb;         // flat-band voltage [V] (state feature only)
  double lambda_um;   // CLM: lambda = lambda_um / (L in um)  [1/V]
  double cov;         // gate overlap cap per width [F/m]
  double cj;          // junction cap per width [F/m]
  double kf;          // flicker-noise coefficient [C^2/m^2] (per device)

  // Passive component design ranges.
  double rmin, rmax;  // [ohm]
  double cmin, cmax;  // [F]

  // The 5-dimensional model-feature vector h of the paper's state
  // (Vsat, Vth0, Vfb, mu0, Uc), scaled to O(1); zeros for R and C.
  [[nodiscard]] std::array<double, 5> model_features(Kind kind) const;
};

// Supported node names: "250nm", "180nm", "130nm", "65nm", "45nm".
Technology make_technology(const std::string& node);
std::vector<std::string> available_nodes();

}  // namespace gcnrl::circuit
