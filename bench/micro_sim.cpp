// google-benchmark microbenchmarks for the simulator substrate: these
// bound the evaluation cost that every optimization step pays.
#include <benchmark/benchmark.h>

#include "circuits/benchmark_circuits.hpp"
#include "common/rng.hpp"
#include "env/sizing_env.hpp"
#include "sim/perf.hpp"
#include "sim/simulator.hpp"
#include "sim/structure.hpp"
#include "sim/warm.hpp"

using namespace gcnrl;

namespace {

const auto kTech = circuit::make_technology("180nm");

void BM_DcSolve_TwoTia(benchmark::State& state) {
  auto bc = circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  for (auto _ : state) {
    sim::Simulator s(nl, kTech);
    benchmark::DoNotOptimize(s.op().v[0]);
  }
}
BENCHMARK(BM_DcSolve_TwoTia);

// The same solve warm-started from its own converged operating point —
// the best case of the warm path (an optimizer revisiting a neighborhood)
// and the direct comparison row for BM_DcSolve_TwoTia above.
void BM_DcSolveWarm_TwoTia(benchmark::State& state) {
  auto bc = circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::Simulator cold(nl, kTech);
  const sim::OpPoint guess = cold.op();
  for (auto _ : state) {
    sim::Simulator s(nl, kTech);
    s.warm_start_from(guess);
    benchmark::DoNotOptimize(s.op().v[0]);
  }
}
BENCHMARK(BM_DcSolveWarm_TwoTia);

void BM_AcSweep_TwoTia_97pts(benchmark::State& state) {
  auto bc = circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::Simulator s(nl, kTech);
  s.op();
  const auto freqs = sim::logspace(1e3, 1e11, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.ac(freqs).v(0, 1));
  }
}
BENCHMARK(BM_AcSweep_TwoTia_97pts);

// AC matrix assembly alone, legacy (full netlist walk per frequency)
// vs split (G/C stamps built once, Y = G + j*omega*C per frequency) —
// the per-sweep-point cost the G/C refactor removes.
void BM_AcAssemblyLegacy_TwoTia_97pts(benchmark::State& state) {
  auto bc = circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::Simulator s(nl, kTech);
  const sim::OpPoint op = s.op();
  const auto freqs = sim::logspace(1e3, 1e11, 97);
  for (auto _ : state) {
    for (const double f : freqs) {
      benchmark::DoNotOptimize(
          sim::build_ac_matrix(s.context(), op, 2.0 * M_PI * f)(0, 0));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(freqs.size()));
}
BENCHMARK(BM_AcAssemblyLegacy_TwoTia_97pts);

void BM_AcAssemblySplit_TwoTia_97pts(benchmark::State& state) {
  auto bc = circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::Simulator s(nl, kTech);
  const sim::OpPoint op = s.op();
  const auto freqs = sim::logspace(1e3, 1e11, 97);
  for (auto _ : state) {
    const sim::AcStamps stamps = sim::build_ac_stamps(s.context(), op);
    for (const double f : freqs) {
      benchmark::DoNotOptimize(
          sim::assemble_ac_matrix(stamps, 2.0 * M_PI * f)(0, 0));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(freqs.size()));
}
BENCHMARK(BM_AcAssemblySplit_TwoTia_97pts);

// --- sparse vs dense engine rows -------------------------------------
//
// One DC row and one AC row per registered circuit and engine. Each row
// reports the system size (dim, nnz) and the measured per-solve phase
// split (assembly / factor / solve, in ns) from the sim-perf registry,
// so a regression in any single phase is visible directly in CI's
// BENCH_micro_sim.json instead of hiding inside a total.
class SparseEngineGuard {
 public:
  explicit SparseEngineGuard(bool on) : prev_(sim::sparse_engine_enabled()) {
    sim::set_sparse_engine_enabled(on);
  }
  ~SparseEngineGuard() { sim::set_sparse_engine_enabled(prev_); }

 private:
  bool prev_;
};

void report_phase_counters(benchmark::State& state, const sim::MnaStructure& st,
                           const sim::AnalysisPerf& perf) {
  state.counters["dim"] = static_cast<double>(st.pattern.n);
  state.counters["nnz"] = static_cast<double>(st.pattern.nnz());
  if (perf.calls == 0) return;
  const double per_call = 1e9 / static_cast<double>(perf.calls);
  state.counters["assembly_ns"] = perf.phase.assembly * per_call;
  state.counters["factor_ns"] = perf.phase.factor * per_call;
  state.counters["solve_ns"] = perf.phase.solve * per_call;
  state.counters["sparse_fallbacks"] =
      static_cast<double>(perf.sparse_fallbacks);
}

void BM_DcEngine(benchmark::State& state, const char* name, bool sparse) {
  auto bc = circuits::make_benchmark(name, kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  SparseEngineGuard guard(sparse);
  sim::sim_perf_reset();
  for (auto _ : state) {
    sim::Simulator s(nl, kTech);
    benchmark::DoNotOptimize(s.op().v[0]);
  }
  const sim::SimPerf snap = sim::sim_perf_snapshot();
  sim::Simulator s(nl, kTech);
  report_phase_counters(state, *s.context().structure, snap.dc);
}
BENCHMARK_CAPTURE(BM_DcEngine, two_tia_sparse, "Two-TIA", true);
BENCHMARK_CAPTURE(BM_DcEngine, two_tia_dense, "Two-TIA", false);
BENCHMARK_CAPTURE(BM_DcEngine, two_volt_sparse, "Two-Volt", true);
BENCHMARK_CAPTURE(BM_DcEngine, two_volt_dense, "Two-Volt", false);
BENCHMARK_CAPTURE(BM_DcEngine, three_tia_sparse, "Three-TIA", true);
BENCHMARK_CAPTURE(BM_DcEngine, three_tia_dense, "Three-TIA", false);
BENCHMARK_CAPTURE(BM_DcEngine, ldo_sparse, "LDO", true);
BENCHMARK_CAPTURE(BM_DcEngine, ldo_dense, "LDO", false);

void BM_AcEngine(benchmark::State& state, const char* name, bool sparse) {
  auto bc = circuits::make_benchmark(name, kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  SparseEngineGuard guard(sparse);
  sim::Simulator s(nl, kTech);
  s.op();
  const auto freqs = sim::logspace(1e3, 1e11, 97);
  sim::sim_perf_reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.ac(freqs).v(0, 1));
  }
  const sim::SimPerf snap = sim::sim_perf_snapshot();
  report_phase_counters(state, *s.context().structure, snap.ac);
}
BENCHMARK_CAPTURE(BM_AcEngine, two_tia_sparse, "Two-TIA", true);
BENCHMARK_CAPTURE(BM_AcEngine, two_tia_dense, "Two-TIA", false);
BENCHMARK_CAPTURE(BM_AcEngine, two_volt_sparse, "Two-Volt", true);
BENCHMARK_CAPTURE(BM_AcEngine, two_volt_dense, "Two-Volt", false);
BENCHMARK_CAPTURE(BM_AcEngine, three_tia_sparse, "Three-TIA", true);
BENCHMARK_CAPTURE(BM_AcEngine, three_tia_dense, "Three-TIA", false);
BENCHMARK_CAPTURE(BM_AcEngine, ldo_sparse, "LDO", true);
BENCHMARK_CAPTURE(BM_AcEngine, ldo_dense, "LDO", false);

void BM_FullEval(benchmark::State& state, const char* name) {
  auto bc = circuits::make_benchmark(name, kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc.evaluate(nl).size());
  }
}
BENCHMARK_CAPTURE(BM_FullEval, two_tia, "Two-TIA");
BENCHMARK_CAPTURE(BM_FullEval, two_volt, "Two-Volt");
BENCHMARK_CAPTURE(BM_FullEval, three_tia, "Three-TIA");
BENCHMARK_CAPTURE(BM_FullEval, ldo, "LDO");

void BM_EnvStepRandom_TwoTia(benchmark::State& state) {
  env::SizingEnv env(circuits::make_two_tia(kTech));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step(env.random_actions(rng)).fom);
  }
}
BENCHMARK(BM_EnvStepRandom_TwoTia);

}  // namespace
