// Diagnostic walk-through of the four benchmark circuits: prints the
// topology-graph statistics, evaluates the human-expert reference design,
// and estimates the random-sampling success rate and evaluation speed.
//
// Useful both as a health check after changing the simulator/device model
// and as a worked example of the BenchmarkCircuit / SizingEnv API.
//
// Usage: inspect_benchmarks [node] [samples]   (default: 180nm, 30)
#include <chrono>
#include <cstdio>

#include "circuit/graph.hpp"
#include "circuits/benchmark_circuits.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

using namespace gcnrl;

int main(int argc, char** argv) {
  const std::string node = argc > 1 ? argv[1] : "180nm";
  const int samples = argc > 2 ? std::atoi(argv[2]) : 30;
  const auto tech = circuit::make_technology(node);

  for (const auto& name : circuits::benchmark_names()) {
    auto bc = circuits::make_benchmark(name, tech);
    env::SizingEnv env(std::move(bc));

    std::printf("=== %s @ %s ===\n", name.c_str(), node.c_str());
    std::printf("components=%d  flat_dim=%d  graph: components=%d diameter=%d\n",
                env.n(), env.flat_dim(),
                circuit::connected_components(env.adjacency()),
                circuit::graph_diameter(env.adjacency()));

    auto human = env.evaluate_params(env.bench().human_expert);
    std::printf("human expert: sim_ok=%d spec_ok=%d\n", human.sim_ok,
                human.spec_ok);
    for (const auto& [k, v] : human.metrics) {
      std::printf("  %-8s = %.6g\n", k.c_str(), v);
    }

    Rng rng(1234);
    int ok = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < samples; ++s) {
      const auto r = env.step(env.random_actions(rng));
      ok += r.sim_ok ? 1 : 0;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / samples;
    std::printf("random sampling: %d/%d converged, %.1f ms/eval\n\n", ok,
                samples, ms);
  }
  return 0;
}
