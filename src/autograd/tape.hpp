// Tape-based reverse-mode automatic differentiation over dense matrices.
//
// The RL agent's actor/critic networks (FC + GCN stacks) are built on this:
// a Tape records every op in creation order; backward() walks the tape in
// reverse, applying each node's stored pull-back. Leaves created from
// nn::Parameter accumulate their gradient directly into the parameter's
// grad buffer, so an optimizer step is just "zero grads, forward, backward,
// Adam.step()".
//
// Design notes
//  * Nodes are owned by the tape (vector of unique_ptr), so raw Node*
//    captured inside pull-back closures stay valid for the tape's lifetime.
//  * A fresh forward pass should call Tape::clear() first (graphs here are
//    rebuilt every step; there is no retained-graph mode).
//  * Gradients flow only through nodes with requires_grad; constants are
//    free.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "la/matrix.hpp"

namespace gcnrl::ag {

class Tape;

struct Node {
  la::Mat val;
  la::Mat grad;  // allocated with val's shape, zero-initialized
  std::function<void()> pullback;  // empty for leaves/constants
  bool requires_grad = false;
};

// Lightweight handle to a node on a tape. Copyable; valid until
// Tape::clear() or tape destruction.
class Var {
 public:
  Var() = default;
  Var(Tape* tape, Node* node) : tape_(tape), node_(node) {}

  [[nodiscard]] const la::Mat& value() const { return node_->val; }
  [[nodiscard]] const la::Mat& grad() const { return node_->grad; }
  [[nodiscard]] int rows() const { return node_->val.rows(); }
  [[nodiscard]] int cols() const { return node_->val.cols(); }
  [[nodiscard]] bool valid() const { return node_ != nullptr; }

  [[nodiscard]] Node* node() const { return node_; }
  [[nodiscard]] Tape* tape() const { return tape_; }

 private:
  Tape* tape_ = nullptr;
  Node* node_ = nullptr;
};

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // A differentiable leaf (gradient is collected on the node itself).
  Var input(la::Mat value);
  // A non-differentiable constant.
  Var constant(la::Mat value);
  // Generic node creation used by the op library.
  Var make(la::Mat value, bool requires_grad, std::function<void()> pullback);

  // Run reverse-mode accumulation from `root` (must be 1x1). Seeds the root
  // gradient with 1 and walks recorded nodes newest-to-oldest.
  void backward(const Var& root);

  // Drop all nodes. Handles into this tape become dangling.
  void clear();

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace gcnrl::ag
