#include "sim/structure.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace gcnrl::sim {

namespace {

// -1 = uninitialized (read GCNRL_SPARSE on first query), 0/1 = forced.
std::atomic<int> g_sparse_enabled{-1};

void quad_coords(std::vector<std::pair<int, int>>& out, const MnaMap& m,
                 int a, int b) {
  const int ia = m.v(a);
  const int ib = m.v(b);
  if (ia >= 0) out.emplace_back(ia, ia);
  if (ib >= 0) out.emplace_back(ib, ib);
  if (ia >= 0 && ib >= 0) {
    out.emplace_back(ia, ib);
    out.emplace_back(ib, ia);
  }
}

void vccs_coords(std::vector<std::pair<int, int>>& out, const MnaMap& m,
                 int out_p, int out_n, int c_p, int c_n) {
  const int ip = m.v(out_p);
  const int in = m.v(out_n);
  const int icp = m.v(c_p);
  const int icn = m.v(c_n);
  if (ip >= 0 && icp >= 0) out.emplace_back(ip, icp);
  if (ip >= 0 && icn >= 0) out.emplace_back(ip, icn);
  if (in >= 0 && icp >= 0) out.emplace_back(in, icp);
  if (in >= 0 && icn >= 0) out.emplace_back(in, icn);
}

QuadSlots quad_slots(const la::SparsePattern& p, const MnaMap& m, int a,
                     int b) {
  QuadSlots q;
  const int ia = m.v(a);
  const int ib = m.v(b);
  if (ia >= 0) q.aa = p.slot(ia, ia);
  if (ib >= 0) q.bb = p.slot(ib, ib);
  if (ia >= 0 && ib >= 0) {
    q.ab = p.slot(ia, ib);
    q.ba = p.slot(ib, ia);
  }
  return q;
}

VccsSlots vccs_slots(const la::SparsePattern& p, const MnaMap& m, int out_p,
                     int out_n, int c_p, int c_n) {
  VccsSlots s;
  const int ip = m.v(out_p);
  const int in = m.v(out_n);
  const int icp = m.v(c_p);
  const int icn = m.v(c_n);
  if (ip >= 0 && icp >= 0) s.pp = p.slot(ip, icp);
  if (ip >= 0 && icn >= 0) s.pn = p.slot(ip, icn);
  if (in >= 0 && icp >= 0) s.np = p.slot(in, icp);
  if (in >= 0 && icn >= 0) s.nn = p.slot(in, icn);
  return s;
}

}  // namespace

bool sparse_engine_enabled() {
  int v = g_sparse_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("GCNRL_SPARSE");
    v = (env != nullptr && env[0] == '0' && env[1] == '\0') ? 0 : 1;
    g_sparse_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_sparse_engine_enabled(bool on) {
  g_sparse_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

MnaStructure::MnaStructure(const circuit::Netlist& nl, const MnaMap& m) {
  // 1. Union of every coordinate any analysis stamps.
  std::vector<std::pair<int, int>> coords;
  for (const auto& res : nl.resistors()) quad_coords(coords, m, res.a, res.b);
  for (const auto& cap : nl.capacitors()) {
    quad_coords(coords, m, cap.a, cap.b);
  }
  for (const auto& mos : nl.mosfets()) {
    vccs_coords(coords, m, mos.d, mos.s, mos.g, mos.s);
    quad_coords(coords, m, mos.d, mos.s);
    quad_coords(coords, m, mos.g, mos.s);
    quad_coords(coords, m, mos.g, mos.d);
    quad_coords(coords, m, mos.d, mos.b);
    quad_coords(coords, m, mos.s, mos.b);
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    if (m.v(src.p) >= 0) {
      coords.emplace_back(m.v(src.p), b);
      coords.emplace_back(b, m.v(src.p));
    }
    if (m.v(src.n) >= 0) {
      coords.emplace_back(m.v(src.n), b);
      coords.emplace_back(b, m.v(src.n));
    }
  }
  for (int node = 1; node < m.num_nodes(); ++node) {
    coords.emplace_back(m.v(node), m.v(node));
  }
  // 2. Symmetrize (MNA stamps are already structurally symmetric; this
  // makes the invariant unconditional).
  const std::size_t base = coords.size();
  coords.reserve(2 * base);
  for (std::size_t i = 0; i < base; ++i) {
    coords.emplace_back(coords[i].second, coords[i].first);
  }
  pattern = la::SparsePattern::from_coords(m.dim(), std::move(coords));

  // 3. Per-element slot lists.
  resistors.reserve(nl.resistors().size());
  for (const auto& res : nl.resistors()) {
    resistors.push_back(quad_slots(pattern, m, res.a, res.b));
  }
  capacitors.reserve(nl.capacitors().size());
  for (const auto& cap : nl.capacitors()) {
    capacitors.push_back(quad_slots(pattern, m, cap.a, cap.b));
  }
  mosfets.reserve(nl.mosfets().size());
  for (const auto& mos : nl.mosfets()) {
    MosSlots ms;
    ms.gm = vccs_slots(pattern, m, mos.d, mos.s, mos.g, mos.s);
    ms.gds = quad_slots(pattern, m, mos.d, mos.s);
    ms.cgs = quad_slots(pattern, m, mos.g, mos.s);
    ms.cgd = quad_slots(pattern, m, mos.g, mos.d);
    ms.cdb = quad_slots(pattern, m, mos.d, mos.b);
    ms.csb = quad_slots(pattern, m, mos.s, mos.b);
    mosfets.push_back(ms);
  }
  vsources.reserve(nl.vsources().size());
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    VsrcSlots vs;
    if (m.v(src.p) >= 0) {
      vs.pb = pattern.slot(m.v(src.p), b);
      vs.bp = pattern.slot(b, m.v(src.p));
    }
    if (m.v(src.n) >= 0) {
      vs.nb = pattern.slot(m.v(src.n), b);
      vs.bn = pattern.slot(b, m.v(src.n));
    }
    vsources.push_back(vs);
  }
  node_diag.reserve(m.num_nodes() - 1);
  for (int node = 1; node < m.num_nodes(); ++node) {
    node_diag.push_back(pattern.slot(m.v(node), m.v(node)));
  }
}

void assemble_ac_gc(const SimContext& ctx, const MnaStructure& st,
                    const OpPoint& op, std::vector<double>& g,
                    std::vector<double>& c) {
  const circuit::Netlist& nl = ctx.nl;
  g.assign(st.pattern.nnz(), 0.0);
  c.assign(st.pattern.nnz(), 0.0);
  for (std::size_t k = 0; k < nl.resistors().size(); ++k) {
    add_quad(g.data(), st.resistors[k],
             1.0 / std::max(nl.resistors()[k].r, kMinResistance));
  }
  for (std::size_t k = 0; k < nl.capacitors().size(); ++k) {
    add_quad(c.data(), st.capacitors[k], nl.capacitors()[k].c);
  }
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const MosSlots& ms = st.mosfets[k];
    add_vccs(g.data(), ms.gm, op.mos[k].gm);
    add_quad(g.data(), ms.gds, op.mos[k].gds);
    add_quad(c.data(), ms.cgs, op.caps[k].cgs);
    add_quad(c.data(), ms.cgd, op.caps[k].cgd);
    add_quad(c.data(), ms.cdb, op.caps[k].cdb);
    add_quad(c.data(), ms.csb, op.caps[k].csb);
  }
  for (const VsrcSlots& vs : st.vsources) {
    if (vs.pb >= 0) {
      g[vs.pb] += 1.0;
      g[vs.bp] += 1.0;
    }
    if (vs.nb >= 0) {
      g[vs.nb] -= 1.0;
      g[vs.bn] -= 1.0;
    }
  }
  for (const int d : st.node_diag) g[d] += 1e-12;
}

}  // namespace gcnrl::sim
