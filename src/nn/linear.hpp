// Fully-connected layer: y = x W + b, applied row-wise.
//
// In this codebase rows are circuit components (graph nodes), so a Linear
// is exactly the paper's "shared FC layer": the same weights process every
// component's feature vector.
#pragma once

#include "common/rng.hpp"
#include "nn/init.hpp"
#include "nn/module.hpp"

namespace gcnrl::nn {

class Linear : public Module {
 public:
  // `out_scale` < 0 selects Xavier init; otherwise U(-out_scale, out_scale)
  // (used for near-zero output layers).
  Linear(std::string name, int in_features, int out_features, Rng& rng,
         double out_scale = -1.0);

  ag::Var forward(ag::Tape& tape, ag::Var x);

  std::vector<Parameter*> parameters() override { return {&w_, &b_}; }
  [[nodiscard]] int in_features() const { return w_.value.rows(); }
  [[nodiscard]] int out_features() const { return w_.value.cols(); }

 private:
  Parameter w_;
  Parameter b_;
};

}  // namespace gcnrl::nn
