#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every .cpp
# under src/ using the compile database exported by CMake.
#
#   tools/run_clang_tidy.sh [BUILD_DIR]     (default: build)
#
# Exits 0 when clang-tidy is not installed (prints a notice): the check is
# advisory on dev machines without LLVM and enforced by the clang-tidy CI
# job, which installs it. WarningsAsErrors in .clang-tidy makes any
# finding a hard failure where the binary exists.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  for v in 20 19 18 17 16 15 14; do
    TIDY="$(command -v "clang-tidy-$v" || true)"
    [ -n "$TIDY" ] && break
  done
fi
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (CI enforces this)."
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found." >&2
  echo "Configure first: cmake -B \"$BUILD_DIR\" -S \"$ROOT\"" >&2
  exit 2
fi

# Sorted file list for deterministic output; quiet to keep CI logs usable.
FILES="$(find "$ROOT/src" -name '*.cpp' | sort)"
echo "run_clang_tidy: $TIDY over $(echo "$FILES" | wc -l) files"
# shellcheck disable=SC2086
"$TIDY" -p "$BUILD_DIR" --quiet $FILES
STATUS=$?
if [ $STATUS -ne 0 ]; then
  echo "run_clang_tidy: findings above are errors (WarningsAsErrors: '*')." >&2
fi
exit $STATUS
