// Differentiable matrix operations on Tape/Var.
//
// Shapes follow the "rows = graph nodes / batch entries, cols = features"
// convention used throughout the NN stack. Every op asserts its shape
// contract; the pull-backs are verified against numerical gradients in
// tests/test_autograd.cpp.
#pragma once

#include "autograd/tape.hpp"

namespace gcnrl::ag {

// c = a @ b
Var matmul(Var a, Var b);
// c = K @ a with a constant left matrix (GCN aggregation by A-hat).
Var matmul_const_left(const la::Mat& k, Var a);
// Elementwise.
Var add(Var a, Var b);
Var sub(Var a, Var b);
Var hadamard(Var a, Var b);
// Elementwise product with a constant mask (e.g. per-type row masks).
Var hadamard_const(Var a, const la::Mat& mask);
Var scale(Var a, double s);
Var add_scalar(Var a, double s);
// m (n x d) + row (1 x d), broadcast over rows (bias add).
Var add_row_broadcast(Var m, Var row);
// Activations.
Var relu(Var a);
Var tanh_(Var a);
Var sigmoid(Var a);
// Reductions (return 1x1).
Var mean_all(Var a);
Var sum_all(Var a);
// Mean of squared difference against a constant target (loss helper).
Var mse_const(Var a, const la::Mat& target);
// Row-wise concatenation of features: [a | b] with equal row counts.
Var concat_cols(Var a, Var b);

}  // namespace gcnrl::ag
