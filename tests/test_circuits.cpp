// Integration tests over the four benchmark circuits: construction,
// topology-graph sanity, human-expert evaluation, determinism, cross-node
// builds, and randomized robustness of the full evaluate pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "circuit/graph.hpp"
#include "circuit/gcir.hpp"
#include "circuits/benchmark_circuits.hpp"
#include "env/circuit_compile.hpp"
#include "meas/plan.hpp"
#include "env/sizing_env.hpp"
#include "sim/simulator.hpp"

using namespace gcnrl;
namespace sim = gcnrl::sim;

namespace {

const auto kTech = circuit::make_technology("180nm");

}  // namespace

class BenchmarkCircuitTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkCircuitTest, BuildsWithConnectedGraph) {
  const auto bc = circuits::make_benchmark(GetParam(), kTech);
  EXPECT_GT(bc.netlist.num_design_components(), 5);
  const auto adj = circuit::build_adjacency(bc.netlist);
  EXPECT_EQ(circuit::connected_components(adj), 1)
      << "topology graph must be connected";
  // The paper's 7-layer GCN receptive-field claim needs diameter <= 7.
  EXPECT_LE(circuit::graph_diameter(adj), 7);
}

TEST_P(BenchmarkCircuitTest, HumanExpertSimulatesAndMeetsSpec) {
  const auto bc = circuits::make_benchmark(GetParam(), kTech);
  env::SizingEnv env(bc);
  const auto r = env.evaluate_params(bc.human_expert);
  EXPECT_TRUE(r.sim_ok);
  EXPECT_TRUE(r.spec_ok);
  for (const auto& md : bc.fom.metrics) {
    ASSERT_EQ(r.metrics.count(md.name), 1u) << md.name;
    EXPECT_TRUE(std::isfinite(r.metrics.at(md.name))) << md.name;
  }
}

TEST_P(BenchmarkCircuitTest, EvaluationIsDeterministic) {
  const auto bc = circuits::make_benchmark(GetParam(), kTech);
  env::SizingEnv e1(bc);
  env::SizingEnv e2(bc);
  Rng r1(42), r2(42);
  const auto a1 = e1.random_actions(r1);
  const auto a2 = e2.random_actions(r2);
  const auto v1 = e1.step(a1);
  const auto v2 = e2.step(a2);
  EXPECT_EQ(v1.sim_ok, v2.sim_ok);
  if (v1.sim_ok) {
    for (const auto& [k, v] : v1.metrics) {
      EXPECT_DOUBLE_EQ(v, v2.metrics.at(k)) << k;
    }
  }
}

TEST_P(BenchmarkCircuitTest, BuildsOnEveryTechnologyNode) {
  for (const auto& node : circuit::available_nodes()) {
    const auto tech = circuit::make_technology(node);
    const auto bc = circuits::make_benchmark(GetParam(), tech);
    env::SizingEnv env(bc);
    const auto r = env.evaluate_params(bc.human_expert);
    // The 180nm-tuned human sizing need not be optimal elsewhere, but the
    // netlist must build and the simulator must run on every node.
    EXPECT_TRUE(r.sim_ok || !r.sim_ok);  // no throw is the contract
    EXPECT_EQ(env.n(), env::SizingEnv(bc).n());
  }
}

TEST_P(BenchmarkCircuitTest, RandomDesignsNeverCrash) {
  const auto bc = circuits::make_benchmark(GetParam(), kTech);
  env::SizingEnv env(bc);
  Rng rng(7);
  int ok = 0;
  for (int i = 0; i < 15; ++i) {
    const auto r = env.step(env.random_actions(rng));
    if (r.sim_ok) {
      ++ok;
      for (const auto& md : bc.fom.metrics) {
        EXPECT_TRUE(std::isfinite(r.metrics.at(md.name)));
      }
    } else {
      EXPECT_DOUBLE_EQ(r.fom, bc.fom.sim_fail_fom);
    }
    EXPECT_GE(r.fom, bc.fom.sim_fail_fom);
    EXPECT_LE(r.fom, bc.fom.max_fom());
  }
  EXPECT_GT(ok, 0) << "at least some random designs must simulate";
}

TEST_P(BenchmarkCircuitTest, CalibrationPopulatesNormalizers) {
  auto bc = circuits::make_benchmark(GetParam(), kTech);
  env::SizingEnv env(std::move(bc));
  Rng rng(11);
  const int ok = env.calibrate(30, rng);
  EXPECT_GT(ok, 0);
  for (const auto& md : env.bench().fom.metrics) {
    EXPECT_LT(md.mmin, md.mmax) << md.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, BenchmarkCircuitTest,
                         ::testing::Values("Two-TIA", "Two-Volt",
                                           "Three-TIA", "LDO"));

TEST(BenchmarkRegistry, NamesAndUnknown) {
  // The four paper benchmarks lead the registry; runtime registrations
  // (api::register_circuit / register_circuit_file) may follow.
  ASSERT_GE(circuits::benchmark_names().size(), 4u);
  EXPECT_THROW(circuits::make_benchmark("nope", kTech),
               std::invalid_argument);
}

TEST(TwoTia, SpecCreatesGainBandwidthTension) {
  // The BW floor must reject the "huge RF" corner: set RF to its maximum
  // and check the spec fails on bandwidth.
  auto bc = circuits::make_two_tia(kTech);
  env::SizingEnv env(bc);
  Rng rng(13);
  env.calibrate(40, rng);
  auto p = bc.human_expert;
  p.v[7][0] = 1e6;  // RF -> 1 MOhm
  const auto r = env.evaluate_params(p);
  ASSERT_TRUE(r.sim_ok);
  EXPECT_LT(r.metrics.at("bw"), 5e7);
  EXPECT_FALSE(r.spec_ok);
  EXPECT_DOUBLE_EQ(r.fom, env.bench().fom.spec_fail_fom);
}

TEST(ThreeTia, MatchedPairsStayMatched) {
  const auto bc = circuits::make_benchmark("Three-TIA", kTech);
  Rng rng(17);
  const auto p = bc.space.refine(bc.space.random_actions(rng));
  const int t1 = bc.netlist.find_design("T1");
  const int t2 = bc.netlist.find_design("T2");
  for (int d = 0; d < 3; ++d) EXPECT_DOUBLE_EQ(p.v[t1][d], p.v[t2][d]);
  // Mirror legs share L only.
  const int t13 = bc.netlist.find_design("T13");
  const int t15 = bc.netlist.find_design("T15");
  EXPECT_DOUBLE_EQ(p.v[t13][1], p.v[t15][1]);
}

TEST(Ldo, RegulatesAtNominalLoad) {
  const auto bc = circuits::make_benchmark("LDO", kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::Simulator s(nl, kTech);
  const double vout = s.op().node(nl.find_node("vout").value());
  // Target = vref * (1 + R1/R2) = 0.9 * 1.5 = 1.35 V.
  EXPECT_NEAR(vout, 1.35, 0.08);
}

TEST(TwoVolt, OutputCommonModeFollowsReference) {
  const auto bc = circuits::make_benchmark("Two-Volt", kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::Simulator s(nl, kTech);
  const double voa = s.op().node(nl.find_node("voa").value());
  const double vob = s.op().node(nl.find_node("vob").value());
  EXPECT_NEAR((voa + vob) / 2.0, kTech.vdd / 2.0, 0.12);
  EXPECT_NEAR(voa, vob, 1e-6);  // symmetric circuit
}

// Concurrency audit companion (see BenchmarkCircuit::evaluate's contract):
// the measurement closures must be pure functions of the sized netlist, so
// 8 threads evaluating the same circuit concurrently — each on its own
// netlist copy, sharing one closure — must agree bit-for-bit with a serial
// reference evaluation. Run under -DGCNRL_SANITIZE=address or =thread to
// turn latent data races into hard failures.
TEST_P(BenchmarkCircuitTest, EvaluateClosureIsThreadSafe) {
  const auto bc = circuits::make_benchmark(GetParam(), kTech);
  circuit::Netlist sized = bc.netlist;
  bc.space.apply(sized, bc.human_expert);
  const env::MetricMap reference = bc.evaluate(sized);

  constexpr int kThreads = 8;
  std::vector<env::MetricMap> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bc, &sized, &got, t] {
      circuit::Netlist own = sized;  // per-thread copy, as EvalService does
      got[static_cast<std::size_t>(t)] = bc.evaluate(own);
    });
  }
  for (auto& th : threads) th.join();

  for (const auto& m : got) {
    ASSERT_EQ(m.size(), reference.size());
    for (const auto& [k, v] : reference) {
      ASSERT_EQ(m.count(k), 1u) << k;
      EXPECT_DOUBLE_EQ(m.at(k), v) << k;
    }
  }
}

// --- .gcir parity -----------------------------------------------------------
// The shipped .gcir ports must be *bit-identical* twins of their C++
// builders: same search space, same expert sizing, and the same metric
// values for any design (the file front end is a refactor of the builders
// into data, not an approximation of them).

#ifndef GCNRL_SOURCE_DIR
#define GCNRL_SOURCE_DIR "."
#endif

namespace {

struct GcirPort {
  const char* builtin;  // C++ builder registry name
  const char* file;     // repo-relative .gcir path
};

class GcirParityTest : public ::testing::TestWithParam<GcirPort> {};

void expect_bitwise_metrics(const env::MetricMap& a, const env::MetricMap& b,
                            const char* where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (const auto& [k, v] : a) {
    ASSERT_EQ(b.count(k), 1u) << where << ": " << k;
    EXPECT_EQ(v, b.at(k)) << where << ": " << k;  // bitwise, not NEAR
  }
}

}  // namespace

TEST_P(GcirParityTest, SpaceFomAndExpertMatchBuilder) {
  const auto ref = circuits::make_benchmark(GetParam().builtin, kTech);
  const auto desc = circuit::load_gcir(std::string(GCNRL_SOURCE_DIR "/") +
                                       GetParam().file);
  const auto got = env::compile_circuit(desc, kTech);

  // Netlist structure.
  EXPECT_EQ(got.netlist.num_nodes(), ref.netlist.num_nodes());
  ASSERT_EQ(got.netlist.num_design_components(),
            ref.netlist.num_design_components());
  for (int i = 0; i < ref.netlist.num_design_components(); ++i) {
    EXPECT_EQ(got.netlist.design_kind(i), ref.netlist.design_kind(i)) << i;
  }

  // Search space: every range endpoint and scaling flag, bit for bit.
  ASSERT_EQ(got.space.num_components(), ref.space.num_components());
  for (int i = 0; i < ref.space.num_components(); ++i) {
    const auto& rc = ref.space.comp(i);
    const auto& gc = got.space.comp(i);
    EXPECT_EQ(gc.name, rc.name);
    for (int d = 0; d < rc.nparams(); ++d) {
      EXPECT_EQ(gc.p[d].lo, rc.p[d].lo) << rc.name << " p" << d;
      EXPECT_EQ(gc.p[d].hi, rc.p[d].hi) << rc.name << " p" << d;
      EXPECT_EQ(gc.p[d].log_scale, rc.p[d].log_scale) << rc.name;
      EXPECT_EQ(gc.p[d].integer, rc.p[d].integer) << rc.name;
    }
  }
  // Match groups: same refinement of the same random actions.
  Rng ra(23), rb(23);
  const auto pa = ref.space.refine(ref.space.random_actions(ra));
  const auto pb = got.space.refine(got.space.random_actions(rb));
  ASSERT_EQ(pa.v.size(), pb.v.size());
  for (std::size_t i = 0; i < pa.v.size(); ++i) {
    for (int d = 0; d < 3; ++d) EXPECT_EQ(pa.v[i][d], pb.v[i][d]) << i;
  }

  // FoM table.
  ASSERT_EQ(got.fom.metrics.size(), ref.fom.metrics.size());
  for (std::size_t i = 0; i < ref.fom.metrics.size(); ++i) {
    const auto& rm = ref.fom.metrics[i];
    const auto& gm = got.fom.metrics[i];
    EXPECT_EQ(gm.name, rm.name);
    EXPECT_EQ(gm.unit, rm.unit);
    EXPECT_EQ(gm.weight, rm.weight);
    EXPECT_EQ(gm.bound, rm.bound);
    EXPECT_EQ(gm.spec_min, rm.spec_min);
    EXPECT_EQ(gm.spec_max, rm.spec_max);
    EXPECT_EQ(gm.log_norm, rm.log_norm);
  }

  // Human-expert sizing.
  ASSERT_EQ(got.human_expert.v.size(), ref.human_expert.v.size());
  for (std::size_t i = 0; i < ref.human_expert.v.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(got.human_expert.v[i][d], ref.human_expert.v[i][d]) << i;
    }
  }
}

TEST_P(GcirParityTest, MetricsAreBitIdenticalToBuilder) {
  // 180nm and a second node, so the technology symbols in the file (vdd,
  // lmin, ...) are proven to re-evaluate, not to have been baked in.
  for (const char* node : {"180nm", "65nm"}) {
    const auto tech = circuit::make_technology(node);
    const auto ref = circuits::make_benchmark(GetParam().builtin, tech);
    const auto got = env::compile_circuit(
        circuit::load_gcir(std::string(GCNRL_SOURCE_DIR "/") +
                           GetParam().file),
        tech);

    // Human-expert design.
    circuit::Netlist sized_ref = ref.netlist;
    ref.space.apply(sized_ref, ref.human_expert);
    circuit::Netlist sized_got = got.netlist;
    got.space.apply(sized_got, got.human_expert);
    expect_bitwise_metrics(ref.evaluate(sized_ref), got.evaluate(sized_got),
                           node);

    // Random designs through the builder's space (proven equal above).
    Rng rng(31);
    for (int i = 0; i < 3; ++i) {
      const auto p = ref.space.refine(ref.space.random_actions(rng));
      circuit::Netlist a = ref.netlist;
      ref.space.apply(a, p);
      circuit::Netlist b = got.netlist;
      got.space.apply(b, p);
      expect_bitwise_metrics(ref.evaluate(a), got.evaluate(b), node);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ports, GcirParityTest,
    ::testing::Values(GcirPort{"Two-TIA", "specs/circuits/two_tia.gcir"},
                      GcirPort{"Three-TIA",
                               "specs/circuits/three_tia.gcir"}));

// The plan-interpreter paths no shipped port exercises: PWL sources,
// transient analysis + windowed settling extraction, per-bench source
// overrides (`set`) and DC warm starts (`warm`) — checked bitwise against
// a hand-driven Simulator running the identical sequence.
TEST(GcirPlan, TranPwlSetAndWarmMatchHandDrivenSimulator) {
  const char* text =
      "circuit Tran-Check\n"
      "supply vdd\n"
      "net a out\n"
      "vsource VDD vdd 0 dc=vdd\n"
      "vsource VIN a 0 dc=0 pwl=(0,0)(1u,0)(1.01u,1)(10u,1)\n"
      "resistor R1 a out r=10k\n"
      "capacitor C1 out 0 c=10p fixed\n"
      "metric tsettle unit=s weight=-1 log\n"
      "metric gain unit=V/V weight=1\n"
      "bench tb\n"
      "tran tb tstop=10u dt=10n\n"
      "bench acb\n"
      "set acb VIN dc=0.5 ac=1\n"
      "ac acb 1k 1G 21\n"
      "warm acb from=tb\n"
      "extract tsettle settling_time bench=tb probe=out window=1u,10u "
      "edge=1u tol=0.02\n"
      "extract gain dc_gain bench=acb probe=out\n";
  const auto bc =
      env::compile_circuit(circuit::parse_gcir(text, "<test>"), kTech);
  const auto metrics = bc.evaluate(bc.netlist);
  ASSERT_EQ(metrics.count("tsettle"), 1u);
  ASSERT_EQ(metrics.count("gain"), 1u);

  // Hand-driven reference: same netlist, same bench order and analyses.
  circuit::Netlist nl = bc.netlist;
  sim::Simulator s_tb(nl, kTech);
  const auto tr = s_tb.tran({10e-6, 10e-9});
  auto curve = gcnrl::meas::tran_curve(tr, nl.find_node("out").value());
  curve = gcnrl::meas::window(curve, 1e-6, 10e-6);
  EXPECT_EQ(metrics.at("tsettle"),
            gcnrl::meas::settling_time(curve, 1e-6, 0.02));
  // The RC settles well before the window closes.
  EXPECT_LT(metrics.at("tsettle"), 2e-6);

  circuit::Netlist nl2 = bc.netlist;
  auto* vin = nl2.find_vsource("VIN");
  ASSERT_NE(vin, nullptr);
  vin->dc = 0.5;
  vin->ac = 1.0;
  sim::Simulator s_ac(nl2, kTech);
  s_ac.warm_start_from(s_tb.op());
  const auto ac = s_ac.ac(sim::logspace(1e3, 1e9, 21));
  const auto h =
      gcnrl::meas::curve_at(ac, bc.netlist.find_node("out").value());
  EXPECT_EQ(metrics.at("gain"), gcnrl::meas::dc_gain(h));
  EXPECT_NEAR(metrics.at("gain"), 1.0, 1e-3);  // RC lowpass at DC
}
