// Table V reproduction: knowledge transfer between topologies
// (Two-TIA <-> Three-TIA) with scalar-index states (paper Sec. III-E).
// Three modes per direction: no transfer / NG-RL transfer / GCN-RL
// transfer. The paper's headline: without the GCN, transferred knowledge
// is no better than starting fresh.
//
// One api::run_tasks list: per direction, GCN and NG pretrain tasks on
// the source topology (historical Rng(600)) and the three fine-tune modes
// on the destination (700 + 17*s seed ladder), all in Scalar index mode
// via the per-task override. Each direction carries its own calib_group
// tag so the destination factory is recalibrated per direction, exactly
// as the previous hand-wired harness constructed its factories —
// byte-identical tables at any GCNRL_EVAL_THREADS.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

namespace {

struct Direction {
  std::string src, dst;
};

}  // namespace

int main() {
  const BenchConfig cfg = bench_config();
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());
  const std::vector<Direction> directions = {{"Two-TIA", "Three-TIA"},
                                             {"Three-TIA", "Two-TIA"}};

  std::printf(
      "Table V: topology transfer (pretrain=%d, budget=%d steps, seeds=%d)\n"
      "%s\n\n",
      cfg.steps, cfg.transfer_steps, cfg.seeds, bench::eval_banner().c_str());

  std::vector<api::TaskSpec> tasks;
  for (const Direction& dir : directions) {
    const std::string tag = dir.src + ">" + dir.dst;
    // Pretrain GCN and NG agents on the source topology.
    for (const std::string method : {"GCN-RL", "NG-RL"}) {
      api::TaskSpec pre;
      pre.circuit = dir.src;
      pre.method = method;
      pre.steps = cfg.steps;
      pre.warmup = cfg.warmup;
      pre.label = tag + " pre " + method;
      pre.index_mode = env::IndexMode::Scalar;
      pre.calib_group = tag;
      pre.seed_base = 600;
      tasks.push_back(pre);
    }
    // Fine-tune the three modes on the destination. Mode order: none, NG
    // transfer, GCN transfer ("no transfer" trains a GCN agent from
    // scratch).
    for (int mode = 0; mode < 3; ++mode) {
      api::TaskSpec t;
      t.circuit = dir.dst;
      t.method = mode == 1 ? "NG-RL" : "GCN-RL";
      t.steps = cfg.transfer_steps;
      t.warmup = cfg.transfer_warmup;
      t.seeds = cfg.seeds;
      t.index_mode = env::IndexMode::Scalar;
      t.calib_group = tag;
      t.seed_base = 700;
      t.seed_stride = 17;
      t.label = tag + (mode == 0   ? " none"
                       : mode == 1 ? " ng-xfer"
                                   : " gcn-xfer");
      if (mode > 0) t.pretrain_from = tag + " pre " + t.method;
      tasks.push_back(t);
    }
  }

  api::RunOptions opts;
  opts.service = svc;
  opts.calib_samples = cfg.calib_samples;
  const auto results = api::run_tasks(tasks, opts);

  TextTable table({"Mode", "Two-TIA -> Three-TIA", "Three-TIA -> Two-TIA"});
  std::vector<std::string> row_none = {"No Transfer"};
  std::vector<std::string> row_ng = {"NG-RL Transfer"};
  std::vector<std::string> row_gcn = {"GCN-RL Transfer"};
  for (std::size_t d = 0; d < directions.size(); ++d) {
    const Direction& dir = directions[d];
    // Per direction: [pre GCN, pre NG, none, ng-xfer, gcn-xfer].
    const std::size_t base = d * 5;
    std::printf("  %s agents pretrained\n", dir.src.c_str());
    std::fflush(stdout);
    const api::TaskResult& none = results[base + 2];
    const api::TaskResult& ng = results[base + 3];
    const api::TaskResult& gcn = results[base + 4];
    row_none.push_back(bench::pm(none.mean, none.stddev));
    row_ng.push_back(bench::pm(ng.mean, ng.stddev));
    row_gcn.push_back(bench::pm(gcn.mean, gcn.stddev));
    std::printf("  %s -> %s done\n", dir.src.c_str(), dir.dst.c_str());
    std::fflush(stdout);
  }

  table.add_row(row_none);
  table.add_row(row_ng);
  table.add_row(row_gcn);
  std::printf("\n");
  table.print();
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper reference: GCN-RL transfer 0.78 / 2.45 beats NG-RL transfer\n"
      "0.62 / 2.40 which is on par with no transfer 0.63 / 2.37.\n");
  return 0;
}
