// gcnrl public facade: one include for the task-level API.
//
//   registry.hpp     CircuitRegistry / MethodRegistry extension points
//   checkpoints.hpp  CheckpointStore — named, stamped weight artifacts
//                    (the zoo TaskSpec::save/load_checkpoint addresses)
//   task.hpp      TaskSpec / TaskResult / run_tasks planner + the
//                 per-factory building blocks (EnvFactory, LockstepGroup,
//                 sweep, run_method) and reporting helpers
//   spec.hpp      declarative task-spec files (schema + parser), the
//                 format gcnrl_cli consumes
//
// Typical use:
//
//   api::register_circuit("My-OTA", make_my_ota);      // optional
//   std::vector<api::TaskSpec> tasks = {
//       {.circuit = "My-OTA", .method = "ES", .steps = 200, .seeds = 3},
//       {.circuit = "My-OTA", .method = "BO", .steps = 200, .seeds = 3},
//       {.circuit = "My-OTA", .method = "GCN-RL", .steps = 200,
//        .warmup = 60, .seeds = 3},
//   };
//   const auto results = api::run_tasks(tasks);
//
// The BO task automatically stops at the matching ES seeds' simulated
// cost (the paper's budget rule), all tasks share one EvalService sized
// from GCNRL_EVAL_THREADS / GCNRL_EVAL_CACHE, and per-task results are
// bit-identical at any thread count.
#pragma once

#include "api/checkpoints.hpp"  // IWYU pragma: export
#include "api/registry.hpp"     // IWYU pragma: export
#include "api/spec.hpp"         // IWYU pragma: export
#include "api/task.hpp"         // IWYU pragma: export
