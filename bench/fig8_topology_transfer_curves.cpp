// Figure 8 reproduction: topology-transfer learning curves for both
// directions (Two-TIA <-> Three-TIA): GCN-RL transfer vs NG-RL transfer
// vs no transfer, shared warm-up seeds. Emits fig8_<src>_to_<dst>.csv.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

int main() {
  const BenchConfig cfg = bench_config();
  Rng rng(2024);
  const auto tech = circuit::make_technology("180nm");

  std::printf("Fig 8: topology-transfer curves (pretrain=%d, budget=%d)\n%s\n\n",
              cfg.steps, cfg.transfer_steps, bench::eval_banner().c_str());

  for (const auto& [src, dst] :
       std::vector<std::pair<std::string, std::string>>{
           {"Two-TIA", "Three-TIA"}, {"Three-TIA", "Two-TIA"}}) {
    bench::EnvFactory src_factory(src, tech, env::IndexMode::Scalar,
                                  cfg.calib_samples, rng);
    bench::EnvFactory dst_factory(dst, tech, env::IndexMode::Scalar,
                                  cfg.calib_samples, rng);
    std::map<std::string, rl::RunResult> curves;
    std::map<bool, std::unique_ptr<rl::DdpgAgent>> pretrained;
    for (bool use_gcn : {true, false}) {
      auto env = src_factory.make();
      rl::DdpgConfig pre_cfg;
      pre_cfg.warmup = cfg.warmup;
      pre_cfg.use_gcn = use_gcn;
      auto agent = std::make_unique<rl::DdpgAgent>(
          env->state(), env->adjacency(), env->kinds(), pre_cfg, Rng(600));
      rl::run_ddpg(*env, *agent, cfg.steps);
      pretrained[use_gcn] = std::move(agent);
    }

    rl::DdpgConfig t_cfg;
    t_cfg.warmup = cfg.transfer_warmup;
    {
      auto env = dst_factory.make();
      rl::DdpgAgent agent(env->state(), env->adjacency(), env->kinds(),
                          t_cfg, Rng(902));
      curves["no_transfer"] = rl::run_ddpg(*env, agent, cfg.transfer_steps);
    }
    for (bool use_gcn : {false, true}) {
      auto env = dst_factory.make();
      rl::DdpgConfig m_cfg = t_cfg;
      m_cfg.use_gcn = use_gcn;
      rl::DdpgAgent agent(env->state(), env->adjacency(), env->kinds(),
                          m_cfg, Rng(902));
      agent.copy_weights_from(*pretrained[use_gcn]);
      curves[use_gcn ? "gcn_transfer" : "ng_transfer"] =
          rl::run_ddpg(*env, agent, cfg.transfer_steps);
    }

    const std::string path = "fig8_" + src + "_to_" + dst + ".csv";
    CsvWriter csv(path);
    csv.row({"step", "no_transfer", "ng_transfer", "gcn_transfer"});
    for (std::size_t i = 0; i < curves["no_transfer"].best_trace.size();
         ++i) {
      csv.row({std::to_string(i + 1),
               TextTable::num(curves["no_transfer"].best_trace[i], 6),
               TextTable::num(curves["ng_transfer"].best_trace[i], 6),
               TextTable::num(curves["gcn_transfer"].best_trace[i], 6)});
    }
    std::printf("  %s -> %s: none %.3f | NG %.3f | GCN %.3f -> %s\n",
                src.c_str(), dst.c_str(), curves["no_transfer"].best_fom,
                curves["ng_transfer"].best_fom,
                curves["gcn_transfer"].best_fom, path.c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape: GCN-RL transfer converges higher; NG-RL transfer is\n"
      "barely distinguishable from no transfer.\n");
  return 0;
}
