// Circuit semantic analyzer: static admission control for circuit
// descriptions, run before a single simulation is spent.
//
// analyze_circuit() walks a parsed (or hand-built) CircuitDescription and
// reports everything the parser's purely syntactic/name-resolution pass
// cannot see — structural problems that would otherwise surface deep in
// the MNA engine as a cryptic singular-matrix failure, or silently as a
// wasted simulation budget:
//
//   connectivity.*  — graph problems: element terminals on undeclared
//                     nets, declared-but-unused nets, single-terminal
//                     (dangling) nets, element islands with no connection
//                     to ground, and net groups with no DC-conductive
//                     path to ground (DC conduction: resistors, voltage
//                     sources, MOS channels; capacitors and MOS gates
//                     block DC — matching the simulator's stamps);
//   singular.*      — topologies that guarantee a singular (or gmin-
//                     regularized garbage) MNA system by construction:
//                     voltage-source loops and current sources driving
//                     net groups with no DC return path (cutsets);
//   sizing.*        — design-space problems: no designable components,
//                     bound overrides that invert (lo >= hi) or leave a
//                     non-positive log-scaled range, match groups mixing
//                     component kinds, l_only groups of passives, expert
//                     sizings that are incomplete or outside bounds;
//   plan.*          — measurement-plan problems: empty FoM tables, FoM
//                     metrics nothing extracts, produced metrics nothing
//                     consumes, degenerate AC/noise/tran configs, benches
//                     that are never measured, off-grid noise spots.
//
// Every Diagnostic carries a severity, a stable check id (the strings
// above; see analyzer_checks() for the catalog), a human message, and the
// origin:line:column of the offending construct. Errors reject a circuit
// at registration (api::register_circuit_file) and in gcnrl_lint;
// warnings are advisory and can be suppressed per-file with a
//   #lint: allow CHECK-ID
// pragma line (errors are never suppressible). Numeric checks (bounds,
// sweeps) evaluate Exprs against the given technology node.
#pragma once

#include <string>
#include <vector>

#include "circuit/description.hpp"
#include "circuit/tech.hpp"

namespace gcnrl::circuit {

enum class Severity { Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string check;    // stable id, e.g. "singular.vsource-loop"
  std::string message;
  std::string origin;   // source label ("" when the description has none)
  int line = 0;
  int col = 0;
  // "<origin>:<line>:<col>: error: <message> [<check>]"
  [[nodiscard]] std::string format() const;
};

// One row of the check catalog (stable id, default severity, summary) —
// the README table and gcnrl_lint --checks are rendered from this.
struct CheckInfo {
  const char* id;
  Severity severity;
  const char* summary;
};
const std::vector<CheckInfo>& analyzer_checks();

// Runs every check against `d`, evaluating sizing/plan expressions at
// `tech`. Returns diagnostics in deterministic order (check-category
// major, declaration order minor), with warnings already filtered by the
// description's lint_allows pragmas. Never throws on a malformed
// description — unresolvable names become connectivity/plan diagnostics.
std::vector<Diagnostic> analyze_circuit(const CircuitDescription& d,
                                        const Technology& tech);

[[nodiscard]] bool has_errors(const std::vector<Diagnostic>& diags);

// All diagnostics rendered one per line (trailing newline included;
// "" for an empty list).
std::string format_diagnostics(const std::vector<Diagnostic>& diags);

}  // namespace gcnrl::circuit
