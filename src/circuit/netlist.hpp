// Circuit netlist: nodes (nets), elements, and the "design component" view.
//
// A netlist serves two masters:
//  * the simulator (sim::Simulator), which needs every element with its
//    terminal node ids and current parameter values;
//  * the optimization environment (env::SizingEnv), which sees only the
//    ordered list of *designable* components — the graph vertices of the
//    paper (NMOS / PMOS / R / C) whose parameters are being sized.
//
// Nets carry an `is_supply` flag (VDD, VSS/ground, bias rails): supply
// nets are excluded when extracting the topology graph, otherwise every
// component would be adjacent to every other through the rails.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gcnrl::circuit {

// Designable component kinds (the paper's four vertex types).
enum class Kind { Nmos = 0, Pmos = 1, Resistor = 2, Capacitor = 3 };
inline constexpr int kNumKinds = 4;
inline constexpr int kMaxActionDim = 3;  // MOS: (W, L, M); R: (r); C: (c)

// Number of searched parameters for a component kind.
constexpr int action_dim(Kind k) {
  return (k == Kind::Nmos || k == Kind::Pmos) ? 3 : 1;
}
const char* kind_name(Kind k);

// Piecewise-linear time waveform for transient sources. Empty = constant.
struct Pwl {
  std::vector<std::pair<double, double>> points;  // (time, value), sorted
  [[nodiscard]] bool empty() const { return points.empty(); }
  // Value at time t (holds first/last value outside the span).
  [[nodiscard]] double at(double t) const;
};

struct Mosfet {
  std::string name;
  bool is_pmos = false;
  int d = 0, g = 0, s = 0, b = 0;  // drain, gate, source, body node ids
  double w = 1e-6;                 // gate width  [m]
  double l = 1e-6;                 // gate length [m]
  int m = 1;                       // multiplier (paper's "multiplexer" M)
};

struct Resistor {
  std::string name;
  int a = 0, b = 0;
  double r = 1e3;  // [ohm]
};

struct Capacitor {
  std::string name;
  int a = 0, b = 0;
  double c = 1e-12;  // [F]
};

struct VSource {
  std::string name;
  int p = 0, n = 0;
  double dc = 0.0;
  double ac = 0.0;  // AC magnitude (phase 0)
  Pwl pwl;          // optional transient waveform (overrides dc in tran)
};

struct ISource {
  std::string name;
  int p = 0, n = 0;  // positive current flows p -> n through the source
  double dc = 0.0;
  double ac = 0.0;
  Pwl pwl;
};

// Reference from design-component index to the backing element.
struct DesignRef {
  Kind kind;
  int elem_index;  // index into the per-kind element vector
  std::string name;
};

class Netlist {
 public:
  Netlist();

  // --- nodes ---------------------------------------------------------
  // Returns the node id for `name`, creating it if needed. "0", "gnd" and
  // "vss" map to the ground node (id 0), which is always a supply.
  int node(const std::string& name);
  void mark_supply(const std::string& name);
  [[nodiscard]] bool is_supply(int node_id) const;
  [[nodiscard]] int num_nodes() const { return static_cast<int>(node_names_.size()); }
  [[nodiscard]] const std::string& node_name(int id) const { return node_names_[id]; }
  [[nodiscard]] std::optional<int> find_node(const std::string& name) const;

  // --- elements ------------------------------------------------------
  // `designable` components join the design-component list in call order.
  int add_nmos(const std::string& name, int d, int g, int s, int b,
               double w, double l, int m = 1, bool designable = true);
  int add_pmos(const std::string& name, int d, int g, int s, int b,
               double w, double l, int m = 1, bool designable = true);
  int add_resistor(const std::string& name, int a, int b, double r,
                   bool designable = true);
  int add_capacitor(const std::string& name, int a, int b, double c,
                    bool designable = true);
  int add_vsource(const std::string& name, int p, int n, double dc,
                  double ac = 0.0, Pwl pwl = {});
  int add_isource(const std::string& name, int p, int n, double dc,
                  double ac = 0.0, Pwl pwl = {});

  [[nodiscard]] const std::vector<Mosfet>& mosfets() const { return mos_; }
  [[nodiscard]] const std::vector<Resistor>& resistors() const { return res_; }
  [[nodiscard]] const std::vector<Capacitor>& capacitors() const { return cap_; }
  [[nodiscard]] const std::vector<VSource>& vsources() const { return vsrc_; }
  [[nodiscard]] const std::vector<ISource>& isources() const { return isrc_; }
  std::vector<VSource>& vsources() { return vsrc_; }
  std::vector<ISource>& isources() { return isrc_; }

  [[nodiscard]] VSource* find_vsource(const std::string& name);
  [[nodiscard]] ISource* find_isource(const std::string& name);

  // Rewire the gate of a named MOSFET (used by measurement testbenches to
  // break feedback loops, e.g. CMFB loop-gain injection).
  void set_mos_gate(const std::string& name, int node);

  // --- design components ----------------------------------------------
  [[nodiscard]] const std::vector<DesignRef>& design_components() const {
    return design_;
  }
  [[nodiscard]] int num_design_components() const {
    return static_cast<int>(design_.size());
  }
  // Terminal node ids of design component i (2 or 3 used entries).
  [[nodiscard]] std::vector<int> design_terminals(int i) const;
  [[nodiscard]] Kind design_kind(int i) const { return design_[i].kind; }
  [[nodiscard]] const std::string& design_name(int i) const {
    return design_[i].name;
  }
  // Index of the named design component (-1 if absent).
  [[nodiscard]] int find_design(const std::string& name) const;

  // Set parameter values of design component i: MOS -> (w, l, m),
  // R -> (r), C -> (c). Values beyond the component's arity are ignored.
  void set_design_params(int i, const std::array<double, kMaxActionDim>& v);
  [[nodiscard]] std::array<double, kMaxActionDim> design_params(int i) const;

 private:
  int add_mos(const std::string& name, bool pmos, int d, int g, int s, int b,
              double w, double l, int m, bool designable);

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, int> node_ids_;
  std::vector<bool> supply_;

  std::vector<Mosfet> mos_;
  std::vector<Resistor> res_;
  std::vector<Capacitor> cap_;
  std::vector<VSource> vsrc_;
  std::vector<ISource> isrc_;
  std::vector<DesignRef> design_;
};

}  // namespace gcnrl::circuit
