#include "la/matrix.hpp"

#include <cmath>

namespace gcnrl::la {

double frobenius_norm(const Mat& m) {
  double acc = 0.0;
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) acc += m(r, c) * m(r, c);
  }
  return std::sqrt(acc);
}

double max_abs(const Mat& m) {
  double acc = 0.0;
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) acc = std::max(acc, std::abs(m(r, c)));
  }
  return acc;
}

bool all_finite(const Mat& m) {
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      if (!std::isfinite(m(r, c))) return false;
    }
  }
  return true;
}

}  // namespace gcnrl::la
