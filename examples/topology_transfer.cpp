// Knowledge transfer across topologies (paper Sec. IV-C / Table V):
// train on the two-stage TIA, transfer to the three-stage TIA (both at
// 180 nm). This requires IndexMode::Scalar so the per-component state
// dimension is topology-independent (paper Sec. III-E), and it is where
// the GCN matters: with NG-RL (no aggregation) transferred knowledge does
// not help, as the paper's Table V shows.
//
// Usage: topology_transfer [pretrain_steps] [transfer_steps]
//        (defaults: 400, 150)
#include <cstdio>

#include "circuits/benchmark_circuits.hpp"
#include "rl/run_loop.hpp"

using namespace gcnrl;

namespace {

double transfer_run(bool use_gcn, env::SizingEnv& src_env,
                    env::SizingEnv& dst_env, int pretrain_steps,
                    int transfer_steps) {
  rl::DdpgConfig cfg;
  cfg.warmup = 100;
  cfg.use_gcn = use_gcn;
  rl::DdpgAgent src_agent(src_env.state(), src_env.adjacency(),
                          src_env.kinds(), cfg, Rng(11));
  rl::run_ddpg(src_env, src_agent, pretrain_steps);

  rl::DdpgConfig short_cfg = cfg;
  short_cfg.warmup = transfer_steps / 3;
  rl::DdpgAgent dst_agent(dst_env.state(), dst_env.adjacency(),
                          dst_env.kinds(), short_cfg, Rng(12));
  dst_agent.copy_weights_from(src_agent);
  return rl::run_ddpg(dst_env, dst_agent, transfer_steps).best_fom;
}

}  // namespace

int main(int argc, char** argv) {
  const int pretrain_steps = argc > 1 ? std::atoi(argv[1]) : 400;
  const int transfer_steps = argc > 2 ? std::atoi(argv[2]) : 150;
  const auto tech = circuit::make_technology("180nm");
  Rng rng(3);

  // Scalar component index keeps state_dim identical across topologies.
  env::SizingEnv two(circuits::make_two_tia(tech), env::IndexMode::Scalar);
  env::SizingEnv three(circuits::make_three_tia(tech),
                       env::IndexMode::Scalar);
  two.calibrate(200, rng);
  three.calibrate(200, rng);

  // Baseline: fresh GCN-RL on Three-TIA with the short budget.
  rl::DdpgConfig cfg;
  cfg.warmup = transfer_steps / 3;
  rl::DdpgAgent fresh(three.state(), three.adjacency(), three.kinds(), cfg,
                      Rng(12));
  env::SizingEnv three_b(circuits::make_three_tia(tech),
                         env::IndexMode::Scalar);
  three_b.bench().fom = three.bench().fom;
  const double no_transfer =
      rl::run_ddpg(three_b, fresh, transfer_steps).best_fom;

  std::printf("Two-TIA -> Three-TIA, %d pretrain / %d transfer steps\n",
              pretrain_steps, transfer_steps);
  const double gcn = transfer_run(true, two, three, pretrain_steps,
                                  transfer_steps);
  // Rebuild source env for the NG run so both see fresh replay histories.
  env::SizingEnv two_b(circuits::make_two_tia(tech), env::IndexMode::Scalar);
  two_b.bench().fom = two.bench().fom;
  env::SizingEnv three_c(circuits::make_three_tia(tech),
                         env::IndexMode::Scalar);
  three_c.bench().fom = three.bench().fom;
  const double ng = transfer_run(false, two_b, three_c, pretrain_steps,
                                 transfer_steps);

  std::printf("  no transfer      : %.3f\n", no_transfer);
  std::printf("  NG-RL transfer   : %.3f\n", ng);
  std::printf("  GCN-RL transfer  : %.3f\n", gcn);
  return 0;
}
