#include "rl/run_loop.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "env/eval_service.hpp"

namespace gcnrl::rl {

namespace {

// Simulated-cost ledger of one run: charges a simulation the first time
// the run evaluates a refined design, nothing on within-run repeats. The
// charge is computed from the run's own history only, so it equals the
// simulator runs an isolated run (private service, unbounded cache) would
// execute — independent of shared-cache warmth, cache capacity, and
// thread count. This is the quantity sim-cost budgets count.
class SimLedger {
 public:
  // Returns 1 when the design is new to this run (one simulation charged).
  long charge(const circuit::DesignSpace& space,
              const circuit::DesignParams& params) {
    return seen_.insert(env::design_key(space, params)).second ? 1 : 0;
  }

 private:
  std::unordered_set<env::EvalCache::Key, env::EvalCache::KeyHash,
                     env::EvalCache::KeyEqual>
      seen_;
};

// Partition pair indices by EvalService in first-appearance order: pairs
// on different services cannot share a batch, so each group runs its own
// lockstep loop back-to-back. Per-pair results are independent of the
// grouping (every agent/optimizer stream is strictly per-pair).
std::vector<std::vector<std::size_t>> group_by_service(
    std::span<env::SizingEnv* const> envs) {
  std::vector<env::EvalService*> services;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < envs.size(); ++i) {
    env::EvalService* svc = &envs[i]->eval_service();
    const auto it = std::find(services.begin(), services.end(), svc);
    if (it == services.end()) {
      services.push_back(svc);
      groups.emplace_back();
      groups.back().push_back(i);
    } else {
      groups[static_cast<std::size_t>(it - services.begin())].push_back(i);
    }
  }
  return groups;
}

void run_ddpg_lockstep_group(std::span<env::SizingEnv* const> envs,
                             std::span<DdpgAgent* const> agents,
                             std::span<const int> steps,
                             const std::vector<std::size_t>& members,
                             std::vector<RunResult>& out) {
  env::EvalService& svc = envs[members.front()]->eval_service();
  int max_steps = 0;
  for (const std::size_t i : members) max_steps = std::max(max_steps, steps[i]);
  std::vector<la::Mat> actions(members.size());
  std::vector<SimLedger> ledgers(members.size());
  std::vector<env::EvalJob> jobs;
  std::vector<std::size_t> active;  // slots into `members`, pair order
  for (int step = 0; step < max_steps; ++step) {
    // Collect phase, pair order: each still-active agent draws from its
    // own RNG stream exactly as its serial run_ddpg iteration would; a
    // pair whose budget is exhausted drops out of the batch entirely
    // rather than padding it with wasted simulations.
    jobs.clear();
    active.clear();
    for (std::size_t k = 0; k < members.size(); ++k) {
      const std::size_t i = members[k];
      if (steps[i] <= step) continue;
      actions[k] = agents[i]->act_explore();
      jobs.push_back(env::EvalJob{&envs[i]->bench(), &actions[k],
                                  envs[i]->eval_attr()});
      active.push_back(k);
    }
    // One multi-circuit batch: one independent simulation per active pair.
    const std::vector<env::EvalResult> results = svc.eval_batch_multi(jobs);
    // Observe phase, pair order: replay pushes and network updates are
    // strictly per-agent, so sequencing them preserves serial semantics.
    for (std::size_t j = 0; j < active.size(); ++j) {
      const std::size_t k = active[j];
      const std::size_t i = members[k];
      agents[i]->observe(actions[k], results[j].fom);
      out[i].sims +=
          ledgers[k].charge(envs[i]->bench().space, results[j].params);
      out[i].commit(actions[k], results[j]);
    }
  }
}

}  // namespace

void RunResult::record(double fom) {
  best_fom = std::max(best_fom, fom);
  best_trace.push_back(best_fom);
}

void RunResult::commit(const la::Mat& actions, const env::EvalResult& r) {
  ++evals;
  if (r.cached) ++cache_hits;
  if (r.fom > best_fom) {
    best_actions = actions;
    best_metrics = r.metrics;
  }
  record(r.fom);
}

void RunResult::commit_flat(const circuit::DesignSpace& space,
                            std::span<const double> x,
                            const env::EvalResult& r) {
  ++evals;
  if (r.cached) ++cache_hits;
  if (r.fom > best_fom) {
    best_actions = space.unflatten(x);
    best_metrics = r.metrics;
  }
  record(r.fom);
}

RunResult run_ddpg(env::SizingEnv& env, DdpgAgent& agent, int steps) {
  // DDPG is inherently sequential (each action depends on the previous
  // observation), so it steps one evaluation at a time; the EvalService
  // cache still short-circuits revisited designs. For parallelism across
  // independent runs, see run_ddpg_lockstep below.
  RunResult out;
  SimLedger ledger;
  for (int step = 0; step < steps; ++step) {
    const la::Mat actions = agent.act_explore();
    const env::EvalResult r = env.step(actions);
    agent.observe(actions, r.fom);
    out.sims += ledger.charge(env.bench().space, r.params);
    out.commit(actions, r);
  }
  return out;
}

std::vector<RunResult> run_ddpg_lockstep(std::span<env::SizingEnv* const> envs,
                                         std::span<DdpgAgent* const> agents,
                                         std::span<const int> steps) {
  if (envs.size() != agents.size() || envs.size() != steps.size()) {
    throw std::invalid_argument(
        "run_ddpg_lockstep: envs, agents and steps must pair up");
  }
  std::vector<RunResult> out(envs.size());
  if (envs.empty()) return out;
  for (const auto& members : group_by_service(envs)) {
    run_ddpg_lockstep_group(envs, agents, steps, members, out);
  }
  return out;
}

std::vector<RunResult> run_ddpg_lockstep(std::span<env::SizingEnv* const> envs,
                                         std::span<DdpgAgent* const> agents,
                                         int steps) {
  const std::vector<int> uniform(envs.size(), std::max(steps, 0));
  return run_ddpg_lockstep(envs, agents, uniform);
}

RunResult run_optimizer(env::SizingEnv& env, opt::Optimizer& optimizer,
                        int steps, long max_sims) {
  RunResult out;
  SimLedger ledger;
  const circuit::DesignSpace& space = env.bench().space;
  while (out.evals < steps && (max_sims < 0 || out.sims < max_sims)) {
    auto xs = optimizer.ask();
    // An exhausted (or buggy) optimizer proposing nothing can never
    // advance the budget; end the run instead of spinning forever.
    if (xs.empty()) break;
    // Truncate to the remaining budget: an evaluation costs at most one
    // simulation, so a population bounded by both remaining budgets can
    // overshoot neither (repeats cost 0, which only ends the batch under
    // budget and lets the loop continue).
    std::size_t room = static_cast<std::size_t>(steps - out.evals);
    if (max_sims >= 0) {
      room = std::min(room, static_cast<std::size_t>(max_sims - out.sims));
    }
    if (xs.size() > room) xs.resize(room);
    const auto results = env.step_flat_batch(xs);
    std::vector<double> ys;
    ys.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ys.push_back(results[i].fom);
      out.sims += ledger.charge(space, results[i].params);
      out.commit_flat(space, xs[i], results[i]);
    }
    optimizer.tell(xs, ys);
  }
  return out;
}

namespace {

void run_optimizer_lockstep_group(std::span<const OptimizerPair> pairs,
                                  const std::vector<std::size_t>& members,
                                  std::vector<RunResult>& out) {
  env::EvalService& svc = pairs[members.front()].env->eval_service();
  struct PairState {
    SimLedger ledger;
    std::vector<std::vector<double>> xs;  // this round's (truncated) ask()
    std::vector<la::Mat> mats;            // unflattened, alive for the batch
    bool done = false;
  };
  std::vector<PairState> state(members.size());
  std::vector<env::EvalJob> jobs;
  std::vector<std::size_t> asked;  // slots into `members`, pair order
  for (;;) {
    // Ask phase, pair order: every still-active optimizer proposes its
    // population, truncated exactly as serial run_optimizer would; an
    // exhausted pair drops out of the round instead of padding the batch.
    jobs.clear();
    asked.clear();
    for (std::size_t k = 0; k < members.size(); ++k) {
      PairState& st = state[k];
      if (st.done) continue;
      const OptimizerPair& p = pairs[members[k]];
      RunResult& res = out[members[k]];
      if (res.evals >= p.steps ||
          (p.max_sims >= 0 && res.sims >= p.max_sims)) {
        st.done = true;
        continue;
      }
      st.xs = p.opt->ask();
      if (st.xs.empty()) {
        st.done = true;
        continue;
      }
      std::size_t room = static_cast<std::size_t>(p.steps - res.evals);
      if (p.max_sims >= 0) {
        room = std::min(room, static_cast<std::size_t>(p.max_sims - res.sims));
      }
      if (st.xs.size() > room) st.xs.resize(room);
      st.mats.clear();
      st.mats.reserve(st.xs.size());
      for (const auto& x : st.xs) {
        st.mats.push_back(p.env->bench().space.unflatten(x));
      }
      for (const la::Mat& m : st.mats) {
        jobs.push_back(env::EvalJob{&p.env->bench(), &m,
                                    p.env->eval_attr()});
      }
      asked.push_back(k);
    }
    if (jobs.empty()) break;
    // One merged multi-circuit batch: all populations of the round for the
    // thread pool at once.
    const std::vector<env::EvalResult> results = svc.eval_batch_multi(jobs);
    // Tell phase, pair order: commits and tell() are strictly per-pair, so
    // sequencing them preserves serial run_optimizer semantics.
    std::size_t offset = 0;
    for (const std::size_t k : asked) {
      PairState& st = state[k];
      const OptimizerPair& p = pairs[members[k]];
      RunResult& res = out[members[k]];
      const circuit::DesignSpace& space = p.env->bench().space;
      std::vector<double> ys;
      ys.reserve(st.xs.size());
      for (std::size_t i = 0; i < st.xs.size(); ++i) {
        const env::EvalResult& r = results[offset + i];
        ys.push_back(r.fom);
        res.sims += st.ledger.charge(space, r.params);
        res.commit_flat(space, st.xs[i], r);
      }
      p.opt->tell(st.xs, ys);
      offset += st.xs.size();
    }
  }
}

}  // namespace

std::vector<RunResult> run_optimizer_lockstep(
    std::span<const OptimizerPair> pairs) {
  std::vector<RunResult> out(pairs.size());
  if (pairs.empty()) return out;
  std::vector<env::SizingEnv*> envs;
  envs.reserve(pairs.size());
  for (const OptimizerPair& p : pairs) {
    if (p.env == nullptr || p.opt == nullptr) {
      throw std::invalid_argument(
          "run_optimizer_lockstep: every pair needs an env and an optimizer");
    }
    envs.push_back(p.env);
  }
  for (const auto& members : group_by_service(envs)) {
    run_optimizer_lockstep_group(pairs, members, out);
  }
  return out;
}

RunResult run_random(env::SizingEnv& env, int steps, Rng rng) {
  RunResult out;
  SimLedger ledger;
  // Fixed chunk size, deliberately independent of the backend thread
  // count: cache-state evolution (and hence the trace) depends only on
  // the chunking, so any GCNRL_EVAL_THREADS yields the identical result.
  constexpr int kChunk = 64;
  int done = 0;
  while (done < steps) {
    const int m = std::min(kChunk, steps - done);
    std::vector<la::Mat> actions;
    actions.reserve(m);
    for (int i = 0; i < m; ++i) actions.push_back(env.random_actions(rng));
    const auto results = env.step_batch(actions);
    for (int i = 0; i < m; ++i) {
      out.sims += ledger.charge(env.bench().space, results[i].params);
      out.commit(actions[i], results[i]);
    }
    done += m;
  }
  return out;
}

}  // namespace gcnrl::rl
