#include "rl/run_loop.hpp"

namespace gcnrl::rl {

void RunResult::record(double fom) {
  best_fom = std::max(best_fom, fom);
  best_trace.push_back(best_fom);
}

RunResult run_ddpg(env::SizingEnv& env, DdpgAgent& agent, int steps) {
  RunResult out;
  for (int step = 0; step < steps; ++step) {
    const la::Mat actions = agent.act_explore();
    const env::EvalResult r = env.step(actions);
    agent.observe(actions, r.fom);
    if (r.fom > out.best_fom) {
      out.best_actions = actions;
      out.best_metrics = r.metrics;
    }
    out.record(r.fom);
  }
  return out;
}

RunResult run_optimizer(env::SizingEnv& env, opt::Optimizer& optimizer,
                        int steps) {
  RunResult out;
  int done = 0;
  while (done < steps) {
    const auto xs = optimizer.ask();
    std::vector<double> ys;
    ys.reserve(xs.size());
    for (const auto& x : xs) {
      const env::EvalResult r = env.step_flat(x);
      ys.push_back(r.fom);
      if (r.fom > out.best_fom) {
        out.best_actions = env.bench().space.unflatten(x);
        out.best_metrics = r.metrics;
      }
      out.record(r.fom);
      if (++done >= steps) break;
    }
    // Feed back only the evaluated prefix.
    std::vector<std::vector<double>> xs_done(xs.begin(),
                                             xs.begin() + ys.size());
    optimizer.tell(xs_done, ys);
  }
  return out;
}

RunResult run_random(env::SizingEnv& env, int steps, Rng rng) {
  RunResult out;
  for (int step = 0; step < steps; ++step) {
    const la::Mat actions = env.random_actions(rng);
    const env::EvalResult r = env.step(actions);
    if (r.fom > out.best_fom) {
      out.best_actions = actions;
      out.best_metrics = r.metrics;
    }
    out.record(r.fom);
  }
  return out;
}

}  // namespace gcnrl::rl
