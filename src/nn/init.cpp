#include "nn/init.hpp"

#include <cmath>

namespace gcnrl::nn {

la::Mat xavier_uniform(int fan_in, int fan_out, Rng& rng) {
  const double a = std::sqrt(6.0 / (fan_in + fan_out));
  la::Mat m(fan_in, fan_out);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) m(r, c) = rng.uniform(-a, a);
  }
  return m;
}

la::Mat uniform_init(int rows, int cols, double scale, Rng& rng) {
  la::Mat m(rows, cols);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) m(r, c) = rng.uniform(-scale, scale);
  }
  return m;
}

}  // namespace gcnrl::nn
