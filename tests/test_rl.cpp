// Tests for the RL stack: replay buffer, exploration noise, actor/critic
// networks, the DDPG agent on a synthetic bandit, and weight transfer.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/ddpg.hpp"
#include "rl/networks.hpp"
#include "rl/noise.hpp"
#include "rl/replay_buffer.hpp"

namespace rl = gcnrl::rl;
namespace la = gcnrl::la;
using gcnrl::Rng;
using gcnrl::circuit::Kind;

namespace {

struct Toy {
  int n = 6;
  la::Mat state;
  la::Mat adjacency;
  std::vector<Kind> kinds;
  la::Mat target;

  Toy() {
    Rng rng(17);
    state = la::Mat(n, 9);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < 9; ++j) state(i, j) = rng.uniform(-1.0, 1.0);
    }
    adjacency = la::Mat(n, n);
    for (int i = 0; i + 1 < n; ++i) {
      adjacency(i, i + 1) = 1.0;
      adjacency(i + 1, i) = 1.0;
    }
    kinds = {Kind::Nmos, Kind::Pmos, Kind::Nmos,
             Kind::Resistor, Kind::Capacitor, Kind::Nmos};
    target = la::Mat(n, gcnrl::circuit::kMaxActionDim);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < target.cols(); ++j) {
        target(i, j) = 0.7 * std::sin(i + 2 * j);
      }
    }
  }

  [[nodiscard]] double reward(const la::Mat& a) const {
    double r = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < target.cols(); ++j) {
        const double d = a(i, j) - target(i, j);
        r -= d * d;
      }
    }
    return r;
  }
};

}  // namespace

TEST(ReplayBuffer, PushSampleRing) {
  rl::ReplayBuffer buf(3);
  Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    buf.push(la::Mat(1, 1, static_cast<double>(i)), i);
  }
  EXPECT_EQ(buf.size(), 3u);  // ring capacity
  // Oldest entries evicted: rewards present are {2,3,4} in some slots.
  double min_r = 1e9, max_r = -1e9;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    min_r = std::min(min_r, buf[i].reward);
    max_r = std::max(max_r, buf[i].reward);
  }
  EXPECT_GE(min_r, 2.0);
  EXPECT_LE(max_r, 4.0);
  const auto batch = buf.sample(10, rng);
  EXPECT_EQ(batch.size(), 10u);  // with replacement
}

TEST(Noise, SigmaDecaysToFloor) {
  rl::TruncatedNormalNoise noise(0.5, 0.9, 0.05);
  EXPECT_DOUBLE_EQ(noise.sigma(0), 0.5);
  EXPECT_NEAR(noise.sigma(10), 0.5 * std::pow(0.9, 10), 1e-12);
  EXPECT_DOUBLE_EQ(noise.sigma(1000), 0.05);
}

TEST(Noise, OutputStaysInActionBox) {
  rl::TruncatedNormalNoise noise(0.8, 1.0, 0.8);
  Rng rng(2);
  la::Mat a(4, 3, 0.9);
  for (int it = 0; it < 50; ++it) {
    const la::Mat out = noise.apply(a, 0, rng);
    for (int i = 0; i < out.rows(); ++i) {
      for (int j = 0; j < out.cols(); ++j) {
        EXPECT_GE(out(i, j), -1.0);
        EXPECT_LE(out(i, j), 1.0);
      }
    }
  }
}

TEST(TypeMasks, PartitionRows) {
  Toy toy;
  const auto masks = rl::make_type_masks(toy.kinds, 8);
  // Every row appears in exactly one kind's mask.
  for (int i = 0; i < toy.n; ++i) {
    double total = 0.0;
    for (int k = 0; k < gcnrl::circuit::kNumKinds; ++k) {
      total += masks.action[k](i, 0);
      EXPECT_EQ(masks.action[k](i, 0), masks.hidden[k](i, 0));
    }
    EXPECT_DOUBLE_EQ(total, 1.0);
  }
}

TEST(Networks, ActorOutputsBoundedActions) {
  Toy toy;
  rl::NetworkConfig cfg;
  cfg.state_dim = toy.state.cols();
  Rng rng(3);
  rl::GcnActor actor(cfg, rng);
  const auto masks = rl::make_type_masks(toy.kinds, cfg.hidden);
  const la::Mat ahat = gcnrl::nn::normalized_adjacency(toy.adjacency);
  const la::Mat a = actor.act(toy.state, ahat, masks);
  ASSERT_EQ(a.rows(), toy.n);
  ASSERT_EQ(a.cols(), gcnrl::circuit::kMaxActionDim);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      EXPECT_GE(a(i, j), -1.0);
      EXPECT_LE(a(i, j), 1.0);
    }
  }
}

TEST(Networks, CriticProducesScalarSensitiveToActions) {
  Toy toy;
  rl::NetworkConfig cfg;
  cfg.state_dim = toy.state.cols();
  Rng rng(4);
  rl::GcnCritic critic(cfg, rng);
  const auto masks = rl::make_type_masks(toy.kinds, cfg.hidden);
  const la::Mat ahat = gcnrl::nn::normalized_adjacency(toy.adjacency);
  la::Mat a1(toy.n, 3, 0.2);
  la::Mat a2(toy.n, 3, -0.7);
  const double q1 = critic.value(toy.state, a1, ahat, masks);
  const double q2 = critic.value(toy.state, a2, ahat, masks);
  EXPECT_TRUE(std::isfinite(q1));
  EXPECT_NE(q1, q2);
}

TEST(Ddpg, WarmupActionsAreRandomAndBounded) {
  Toy toy;
  rl::DdpgConfig cfg;
  cfg.warmup = 10;
  rl::DdpgAgent agent(toy.state, toy.adjacency, toy.kinds, cfg, Rng(5));
  const la::Mat a1 = agent.act_explore();
  agent.observe(a1, 0.0);
  const la::Mat a2 = agent.act_explore();
  // Two warm-up actions should differ (random), and stay in the box.
  double diff = 0.0;
  for (int i = 0; i < a1.rows(); ++i) {
    for (int j = 0; j < a1.cols(); ++j) {
      diff += std::fabs(a1(i, j) - a2(i, j));
      EXPECT_LE(std::fabs(a1(i, j)), 1.0);
    }
  }
  EXPECT_GT(diff, 0.1);
}

TEST(Ddpg, LearnsSyntheticBandit) {
  Toy toy;
  rl::DdpgConfig cfg;
  cfg.warmup = 40;
  rl::DdpgAgent agent(toy.state, toy.adjacency, toy.kinds, cfg, Rng(6));
  for (int ep = 0; ep < 300; ++ep) {
    const la::Mat a = agent.act_explore();
    agent.observe(a, toy.reward(a));
  }
  // Deterministic policy should be much better than random (~ -0.9/dim
  // expected for uniform: |target|<=0.7, E[(u-t)^2] ~ 1/3 + t^2).
  const double r = toy.reward(agent.act());
  EXPECT_GT(r, -2.5) << "random-level reward would be about -8";
}

TEST(Ddpg, BaselineTracksRewards) {
  Toy toy;
  rl::DdpgConfig cfg;
  cfg.warmup = 100;
  rl::DdpgAgent agent(toy.state, toy.adjacency, toy.kinds, cfg, Rng(7));
  agent.observe(agent.act_explore(), 4.0);
  EXPECT_DOUBLE_EQ(agent.baseline(), 4.0);
  agent.observe(agent.act_explore(), 0.0);
  EXPECT_NEAR(agent.baseline(), 4.0 * (1.0 - cfg.baseline_tau), 1e-12);
}

TEST(Ddpg, SaveLoadRoundTripPreservesPolicy) {
  Toy toy;
  rl::DdpgConfig cfg;
  cfg.warmup = 5;
  rl::DdpgAgent agent(toy.state, toy.adjacency, toy.kinds, cfg, Rng(8));
  for (int ep = 0; ep < 30; ++ep) {
    const la::Mat a = agent.act_explore();
    agent.observe(a, toy.reward(a));
  }
  const la::Mat before = agent.act();
  const std::string path = "/tmp/gcnrl_agent_test.bin";
  agent.save(path);
  rl::DdpgAgent fresh(toy.state, toy.adjacency, toy.kinds, cfg, Rng(999));
  fresh.load(path);
  const la::Mat after = fresh.act();
  for (int i = 0; i < before.rows(); ++i) {
    for (int j = 0; j < before.cols(); ++j) {
      EXPECT_NEAR(before(i, j), after(i, j), 1e-12);
    }
  }
  std::remove(path.c_str());
}

TEST(Ddpg, CrossTopologyWeightCopyWithScalarStates) {
  // Same state_dim but different node counts: all parameters must match
  // by name/shape (this is what topology transfer relies on).
  Toy small;
  Toy big;
  big.n = 9;
  big.state = la::Mat(9, small.state.cols());
  big.adjacency = la::Mat(9, 9);
  for (int i = 0; i + 1 < 9; ++i) {
    big.adjacency(i, i + 1) = 1.0;
    big.adjacency(i + 1, i) = 1.0;
  }
  big.kinds.assign(9, Kind::Nmos);
  rl::DdpgConfig cfg;
  rl::DdpgAgent src(small.state, small.adjacency, small.kinds, cfg, Rng(9));
  rl::DdpgAgent dst(big.state, big.adjacency, big.kinds, cfg, Rng(10));
  const int copied = dst.copy_weights_from(src);
  EXPECT_EQ(copied, static_cast<int>(src.parameters().size()));
}

TEST(Ddpg, NgVariantIgnoresTopology) {
  // With use_gcn=false, permuting the adjacency must not change actions.
  Toy toy;
  rl::DdpgConfig cfg;
  cfg.use_gcn = false;
  rl::DdpgAgent a1(toy.state, toy.adjacency, toy.kinds, cfg, Rng(11));
  la::Mat other(toy.n, toy.n);  // empty graph
  rl::DdpgAgent a2(toy.state, other, toy.kinds, cfg, Rng(11));
  const la::Mat x1 = a1.act();
  const la::Mat x2 = a2.act();
  for (int i = 0; i < x1.rows(); ++i) {
    for (int j = 0; j < x1.cols(); ++j) {
      EXPECT_DOUBLE_EQ(x1(i, j), x2(i, j));
    }
  }
}

TEST(Ddpg, GcnVariantUsesTopology) {
  Toy toy;
  rl::DdpgConfig cfg;
  rl::DdpgAgent a1(toy.state, toy.adjacency, toy.kinds, cfg, Rng(12));
  la::Mat other(toy.n, toy.n);
  rl::DdpgAgent a2(toy.state, other, toy.kinds, cfg, Rng(12));
  const la::Mat x1 = a1.act();
  const la::Mat x2 = a2.act();
  double diff = 0.0;
  for (int i = 0; i < x1.rows(); ++i) {
    for (int j = 0; j < x1.cols(); ++j) diff += std::fabs(x1(i, j) - x2(i, j));
  }
  EXPECT_GT(diff, 1e-9);
}
