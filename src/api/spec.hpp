// Declarative task-spec files for gcnrl_cli and programmatic batch runs.
//
// ---------------------------------------------------------------------------
// SPEC FILE SCHEMA (minimal strict JSON — no comments, no trailing commas)
// ---------------------------------------------------------------------------
// {
//   "options": {                  // optional; cross-task RunOptions
//     "calib":      300,          // FoM calibration samples per circuit
//     "calib_seed": 2024,         // shared calibration RNG seed
//     "mode":       "one_hot"     // component indexing: "one_hot"|"scalar"
//   },
//   "tasks": [                    // required; one object per task
//     {
//       "circuit":  "Two-TIA",    // a CircuitRegistry name; required
//                                 // unless circuit_file is given
//       "circuit_file": "x.gcir", // path to a .gcir circuit description:
//                                 // registered at run time (its declared
//                                 // name becomes the task's circuit; a
//                                 // also-given "circuit" must match it).
//                                 // Relative paths resolve against the
//                                 // spec file's directory.
//       "method":   "GCN-RL",     // required; a MethodRegistry name
//       "node":     "180nm",      // technology node (default "180nm")
//       "steps":    300,          // search steps per seed (default 300)
//       "warmup":   100,          // RL warm-up steps (default 100)
//       "seeds":    1,            // independent seeds (default 1)
//       "sim_budget": 0,          // simulated-cost cap per seed:
//                                 //   0 = auto (budget_from chain),
//                                 //  >0 = explicit cap (ask/tell methods
//                                 //       only; rejected elsewhere),
//                                 //  <0 = force uncapped
//       "label":    "my-run",     // display label (default method/circuit)
//
//       // --- transfer protocol (DDPG-kind methods only) ---------------
//       "pretrain_from":   "pre", // warm-start from the in-list task with
//                                 // this label (planner orders it first)
//       "load_checkpoint": "zoo", // warm-start from a CheckpointStore
//                                 // artifact ("zoo#<seed>" preferred over
//                                 // "zoo" per seed); exclusive with
//                                 // pretrain_from
//       "save_checkpoint": "zoo", // store trained weights under this name
//                                 // (per-seed "zoo#<seed>" when seeds > 1)
//       "mode": "scalar",         // per-task index-mode override
//                                 // ("one_hot"|"scalar"; default:
//                                 // options.mode)
//       "calib_group": "dir2",    // calibration-sharing tag: a distinct
//                                 // tag forces a fresh FoM calibration
//       "seed_base":   900,       // per-seed RNG override: seed s uses
//       "seed_stride": 31         // seed_base + seed_stride * s
//     }
//   ]
// }
// ---------------------------------------------------------------------------
// Unknown keys anywhere are an error (fail loudly rather than silently
// ignore a typo); so are wrong value types. Budget chains (BO/MACE
// stopping at the matching ES seed's simulated cost) need no annotation:
// api::run_tasks matches source tasks by (method, circuit, node, steps,
// seeds) wherever they appear in the list. Pretrain chains DO need one:
// "pretrain_from" names the source task's label. The checkpoint store's
// disk tier (GCNRL_CHECKPOINT_DIR) makes "load_checkpoint" work across
// processes — see api/checkpoints.hpp.
#pragma once

#include <string>
#include <vector>

#include "api/task.hpp"

namespace gcnrl::api {

// A parsed spec file: cross-task options (RunOptions::service is always
// null — the runner supplies it) plus the task list.
struct TaskFile {
  RunOptions options;
  std::vector<TaskSpec> tasks;
};

// Parses spec-file text. Throws std::runtime_error with a line:column
// position on malformed JSON and with the offending key on schema errors.
TaskFile parse_task_spec(const std::string& text);

// Reads and parses a spec file from disk; throws std::runtime_error when
// the file cannot be read.
TaskFile load_task_spec(const std::string& path);

}  // namespace gcnrl::api
