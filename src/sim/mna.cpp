#include "sim/mna.hpp"

#include <cmath>

#include "la/sparse.hpp"
#include "sim/structure.hpp"

namespace gcnrl::sim {

MnaMap::MnaMap(const circuit::Netlist& nl)
    : num_nodes_(nl.num_nodes()),
      dim_(nl.num_nodes() - 1 + static_cast<int>(nl.vsources().size())) {}

SimContext::SimContext(const circuit::Netlist& netlist,
                       const circuit::Technology& technology)
    : nl(netlist), tech(technology), map(netlist) {
  models.reserve(nl.mosfets().size());
  for (const auto& mos : nl.mosfets()) {
    models.push_back(mos_model(tech, mos.is_pmos));
  }
  structure = std::make_unique<MnaStructure>(nl, map);
}

SimContext::~SimContext() = default;

void stamp_conductance(la::Mat& j, const MnaMap& m, int a, int b, double g) {
  const int ia = m.v(a);
  const int ib = m.v(b);
  if (ia >= 0) j(ia, ia) += g;
  if (ib >= 0) j(ib, ib) += g;
  if (ia >= 0 && ib >= 0) {
    j(ia, ib) -= g;
    j(ib, ia) -= g;
  }
}

void stamp_conductance(la::CMat& j, const MnaMap& m, int a, int b,
                       std::complex<double> g) {
  const int ia = m.v(a);
  const int ib = m.v(b);
  if (ia >= 0) j(ia, ia) += g;
  if (ib >= 0) j(ib, ib) += g;
  if (ia >= 0 && ib >= 0) {
    j(ia, ib) -= g;
    j(ib, ia) -= g;
  }
}

namespace {

template <typename T>
void stamp_vccs_impl(la::Matrix<T>& j, const MnaMap& m, int out_p, int out_n,
                     int c_p, int c_n, T g) {
  const int ip = m.v(out_p);
  const int in = m.v(out_n);
  const int icp = m.v(c_p);
  const int icn = m.v(c_n);
  if (ip >= 0 && icp >= 0) j(ip, icp) += g;
  if (ip >= 0 && icn >= 0) j(ip, icn) -= g;
  if (in >= 0 && icp >= 0) j(in, icp) -= g;
  if (in >= 0 && icn >= 0) j(in, icn) += g;
}

}  // namespace

void stamp_vccs(la::Mat& j, const MnaMap& m, int out_p, int out_n, int c_p,
                int c_n, double g) {
  stamp_vccs_impl(j, m, out_p, out_n, c_p, c_n, g);
}

void stamp_vccs(la::CMat& j, const MnaMap& m, int out_p, int out_n, int c_p,
                int c_n, std::complex<double> g) {
  stamp_vccs_impl(j, m, out_p, out_n, c_p, c_n, g);
}

std::vector<double> logspace(double f_lo, double f_hi, int n) {
  std::vector<double> f(n);
  if (n == 1) {
    f[0] = f_lo;
    return f;
  }
  const double ratio = std::log(f_hi / f_lo) / (n - 1);
  for (int i = 0; i < n; ++i) f[i] = f_lo * std::exp(ratio * i);
  return f;
}

}  // namespace gcnrl::sim
