// Small-signal noise analysis via the adjoint method.
//
// At each frequency the AC matrix Y is factored once and the transposed
// system Y^T y = e_out is solved, where e_out selects the (differential)
// output. The transfer from a unit noise current injected between nodes
// (a, b) to the output is then just y_a - y_b, so every device's
// contribution costs O(1) after one adjoint solve. Output PSD is the sum
// of |transfer|^2 * source PSD over all thermal and flicker sources.
#pragma once

#include "sim/mna.hpp"

namespace gcnrl::sim {

struct NoiseResult {
  std::vector<double> freq;     // [Hz]
  std::vector<double> out_psd;  // output voltage PSD [V^2/Hz]
};

// outp/outn: output nodes (outn may be ground). Noise sources: every
// resistor (thermal) and every MOSFET (thermal + flicker).
NoiseResult solve_noise(const SimContext& ctx, const OpPoint& op,
                        const std::vector<double>& freqs, int outp, int outn);

}  // namespace gcnrl::sim
