// Unit tests for the common substrate: environment-variable configuration
// (envcfg) and the deterministic xoshiro256++ RNG.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/envcfg.hpp"
#include "common/rng.hpp"
#include "test_helpers.hpp"

using gcnrl::BenchConfig;
using gcnrl::Rng;
using gcnrl::testing::ScopedEnv;

namespace {

// ---------------------------------------------------------------------------
// envcfg: env_int
// ---------------------------------------------------------------------------

TEST(EnvInt, ReturnsFallbackWhenUnset) {
  ScopedEnv e("GCNRL_TEST_UNSET_VAR", nullptr);
  EXPECT_EQ(gcnrl::env_int("GCNRL_TEST_UNSET_VAR", 42), 42);
}

TEST(EnvInt, ParsesDecimalValue) {
  ScopedEnv e("GCNRL_TEST_INT", "123");
  EXPECT_EQ(gcnrl::env_int("GCNRL_TEST_INT", 0), 123);
}

TEST(EnvInt, ParsesNegativeValue) {
  ScopedEnv e("GCNRL_TEST_INT", "-7");
  EXPECT_EQ(gcnrl::env_int("GCNRL_TEST_INT", 0), -7);
}

TEST(EnvInt, EmptyStringFallsBackSilently) {
  ScopedEnv e("GCNRL_TEST_INT", "");
  testing::internal::CaptureStderr();
  EXPECT_EQ(gcnrl::env_int("GCNRL_TEST_INT", 9), 9);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(EnvInt, ValidValueParsesSilently) {
  ScopedEnv e("GCNRL_TEST_INT", "  42  ");
  testing::internal::CaptureStderr();
  EXPECT_EQ(gcnrl::env_int("GCNRL_TEST_INT", 0), 42);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

// Malformed values must fail LOUDLY (warn + fallback), never silently
// parse to 0 or to a truncated prefix.
TEST(EnvInt, MalformedValueWarnsAndFallsBack) {
  ScopedEnv e("GCNRL_TEST_INT", "not-a-number");
  testing::internal::CaptureStderr();
  EXPECT_EQ(gcnrl::env_int("GCNRL_TEST_INT", 17), 17);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("GCNRL_TEST_INT"), std::string::npos) << err;
  EXPECT_NE(err.find("not-a-number"), std::string::npos) << err;
  EXPECT_NE(err.find("17"), std::string::npos) << err;
}

TEST(EnvInt, TrailingJunkWarnsAndFallsBack) {
  ScopedEnv e("GCNRL_TEST_INT", "12abc");
  testing::internal::CaptureStderr();
  EXPECT_EQ(gcnrl::env_int("GCNRL_TEST_INT", 17), 17);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("12abc"),
            std::string::npos);
}

TEST(EnvInt, WhitespaceOnlyWarnsAndFallsBack) {
  // Regression: strtol converts nothing on "   ", and a naive trailing-
  // whitespace skip turned that into a silent 0.
  ScopedEnv e("GCNRL_TEST_INT", "   ");
  testing::internal::CaptureStderr();
  EXPECT_EQ(gcnrl::env_int("GCNRL_TEST_INT", 23), 23);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("GCNRL_TEST_INT"),
            std::string::npos);
}

TEST(EnvInt, FractionalValueWarnsAndFallsBack) {
  ScopedEnv e("GCNRL_TEST_INT", "1.5");
  testing::internal::CaptureStderr();
  EXPECT_EQ(gcnrl::env_int("GCNRL_TEST_INT", 3), 3);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("1.5"),
            std::string::npos);
}

TEST(EnvInt, OverflowWarnsAndFallsBack) {
  ScopedEnv e("GCNRL_TEST_INT", "99999999999999999999");
  testing::internal::CaptureStderr();
  EXPECT_EQ(gcnrl::env_int("GCNRL_TEST_INT", 5), 5);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("GCNRL_TEST_INT"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// envcfg: env_flag
// ---------------------------------------------------------------------------

TEST(EnvFlag, UnsetIsFalse) {
  ScopedEnv e("GCNRL_TEST_FLAG", nullptr);
  EXPECT_FALSE(gcnrl::env_flag("GCNRL_TEST_FLAG"));
}

TEST(EnvFlag, ZeroIsFalse) {
  ScopedEnv e("GCNRL_TEST_FLAG", "0");
  EXPECT_FALSE(gcnrl::env_flag("GCNRL_TEST_FLAG"));
}

TEST(EnvFlag, EmptyIsFalse) {
  ScopedEnv e("GCNRL_TEST_FLAG", "");
  EXPECT_FALSE(gcnrl::env_flag("GCNRL_TEST_FLAG"));
}

TEST(EnvFlag, RecognizedTokensParseSilentlyCaseInsensitive) {
  testing::internal::CaptureStderr();
  for (const char* t : {"1", "true", "yes", "on", "TRUE", "Yes", "ON"}) {
    ScopedEnv e("GCNRL_TEST_FLAG", t);
    EXPECT_TRUE(gcnrl::env_flag("GCNRL_TEST_FLAG")) << t;
  }
  for (const char* f : {"0", "false", "no", "off", "FALSE", "No", "OFF"}) {
    ScopedEnv e("GCNRL_TEST_FLAG", f);
    EXPECT_FALSE(gcnrl::env_flag("GCNRL_TEST_FLAG")) << f;
  }
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

// Unrecognized text keeps the historical non-empty-is-true reading but
// must warn: "GCNRL_FULL=o" is a typo, not a truthy value.
TEST(EnvFlag, ArbitraryTextWarnsButIsTrue) {
  ScopedEnv e("GCNRL_TEST_FLAG", "maybe");
  testing::internal::CaptureStderr();
  EXPECT_TRUE(gcnrl::env_flag("GCNRL_TEST_FLAG"));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("GCNRL_TEST_FLAG"), std::string::npos) << err;
  EXPECT_NE(err.find("maybe"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// envcfg: bench_config
// ---------------------------------------------------------------------------

TEST(BenchConfigTest, DefaultsWhenNothingSet) {
  ScopedEnv a("GCNRL_FULL", nullptr);
  ScopedEnv b("GCNRL_STEPS", nullptr);
  ScopedEnv c("GCNRL_SEEDS", nullptr);
  ScopedEnv d("GCNRL_CALIB", nullptr);
  ScopedEnv e("GCNRL_WARMUP", nullptr);
  ScopedEnv f("GCNRL_TRANSFER_STEPS", nullptr);
  ScopedEnv g("GCNRL_TRANSFER_WARMUP", nullptr);

  const BenchConfig cfg = gcnrl::bench_config();
  EXPECT_FALSE(cfg.full);
  EXPECT_EQ(cfg.steps, 300);
  EXPECT_EQ(cfg.warmup, 100);
  EXPECT_EQ(cfg.seeds, 2);
  EXPECT_EQ(cfg.calib_samples, 300);
  EXPECT_LT(cfg.warmup, cfg.steps);
  EXPECT_LT(cfg.transfer_warmup, cfg.transfer_steps);
}

TEST(BenchConfigTest, FullProtocolSelectsPaperScale) {
  ScopedEnv a("GCNRL_FULL", "1");
  ScopedEnv b("GCNRL_STEPS", nullptr);
  ScopedEnv c("GCNRL_SEEDS", nullptr);
  ScopedEnv d("GCNRL_CALIB", nullptr);
  ScopedEnv e("GCNRL_WARMUP", nullptr);
  ScopedEnv f("GCNRL_TRANSFER_STEPS", nullptr);
  ScopedEnv g("GCNRL_TRANSFER_WARMUP", nullptr);

  const BenchConfig cfg = gcnrl::bench_config();
  EXPECT_TRUE(cfg.full);
  EXPECT_EQ(cfg.steps, 10000);
  EXPECT_EQ(cfg.seeds, 3);
  EXPECT_EQ(cfg.calib_samples, 5000);
}

TEST(BenchConfigTest, ExplicitOverridesWinOverFull) {
  ScopedEnv a("GCNRL_FULL", "1");
  ScopedEnv b("GCNRL_STEPS", "77");
  ScopedEnv c("GCNRL_SEEDS", "1");
  ScopedEnv d("GCNRL_CALIB", "10");
  ScopedEnv e("GCNRL_WARMUP", nullptr);
  ScopedEnv f("GCNRL_TRANSFER_STEPS", nullptr);
  ScopedEnv g("GCNRL_TRANSFER_WARMUP", nullptr);

  const BenchConfig cfg = gcnrl::bench_config();
  EXPECT_EQ(cfg.steps, 77);
  EXPECT_EQ(cfg.seeds, 1);
  EXPECT_EQ(cfg.calib_samples, 10);
  // warmup (500 from the full protocol) exceeds 77 steps, so it must be
  // clamped below the step budget.
  EXPECT_LT(cfg.warmup, cfg.steps);
}

TEST(BenchConfigTest, WarmupClampedBelowSteps) {
  ScopedEnv a("GCNRL_FULL", nullptr);
  ScopedEnv b("GCNRL_STEPS", "30");
  ScopedEnv e("GCNRL_WARMUP", "100");
  ScopedEnv f("GCNRL_TRANSFER_STEPS", "9");
  ScopedEnv g("GCNRL_TRANSFER_WARMUP", "50");

  const BenchConfig cfg = gcnrl::bench_config();
  EXPECT_EQ(cfg.steps, 30);
  EXPECT_EQ(cfg.warmup, 10);
  EXPECT_EQ(cfg.transfer_warmup, 3);
}

// ---------------------------------------------------------------------------
// Rng: determinism
// ---------------------------------------------------------------------------

TEST(RngTest, SameSeedSameStream) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  // Chance of even one 64-bit collision is negligible.
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SameSeedSameDoubles) {
  Rng a(777), b(777);
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
    ASSERT_DOUBLE_EQ(a.normal(), b.normal());
  }
}

// ---------------------------------------------------------------------------
// Rng: distribution ranges
// ---------------------------------------------------------------------------

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 3.5);
  }
}

TEST(RngTest, UniformIndexCoversRangeWithoutEscape) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t k = rng.uniform_index(7);
    ASSERT_LT(k, 7u);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit in 2000 draws
}

TEST(RngTest, TruncatedNormalStaysInBounds) {
  Rng rng(12);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.truncated_normal(0.0, 1.0, -0.5, 0.5);
    ASSERT_GE(x, -0.5);
    ASSERT_LE(x, 0.5);
  }
}

TEST(RngTest, NormalMeanAndSpreadRoughlyCorrect) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

// ---------------------------------------------------------------------------
// Rng: stream independence via split()
// ---------------------------------------------------------------------------

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng p1(42), p2(42);
  Rng c1 = p1.split(), c2 = p2.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(c1.next(), c2.next());
  }
}

TEST(RngTest, SuccessiveSplitsDiffer) {
  Rng parent(7);
  Rng a = parent.split();
  Rng b = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

}  // namespace
