// EvalService: the batch-evaluation engine behind SizingEnv.
//
// The paper's cost model is "number of simulations" (Figs. 5/7/8), yet the
// black-box baselines already propose whole populations per iteration
// (CMA-ES lambda, MACE's candidate pool) and random search knows its entire
// schedule upfront. The service exploits both structures:
//
//   * pluggable backends — Serial (in-order on the calling thread) and
//     ThreadPool (N persistent workers, each evaluating an independent
//     sized-netlist copy through its own Simulator instances);
//   * a deterministic LRU result cache keyed on the *quantized* flattened
//     design vector: two raw action vectors that refine onto the same legal
//     grid point share one simulation. Late CMA-ES/MACE populations and
//     snapped-grid random search revisit legal designs constantly.
//
// Determinism contract: results are committed in submission order, jobs are
// pure functions of the refined parameters, and all cache bookkeeping
// (lookup, in-batch dedupe, insertion, LRU touches) happens sequentially on
// the calling thread. Hence eval_batch returns bit-identical results — and
// leaves bit-identical cache state — for every backend and thread count;
// only wall-clock changes.
//
// A service instance is shareable: hold it in a std::shared_ptr and inject
// it into every SizingEnv that should draw on the same thread pool and
// result cache (the lockstep multi-seed sweeps do exactly this). Cache keys
// are refined parameter vectors prefixed with an interned circuit tag
// derived from (BenchmarkCircuit::name, Technology::name), so the seed-envs
// of a sweep — same circuit, same node — share entries while distinct
// circuits or nodes never alias. Corollary of that identity scheme: two
// circuits handed to one service with the same (name, tech) pair MUST have
// identical netlist/space/evaluate. The FoM spec, by contrast, is free to
// differ per circuit and may be recalibrated at any time — the cache stores
// raw metrics and the FoM is recomputed from each job's own spec on every
// hit.
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "env/sizing_env.hpp"
#include "sim/warm.hpp"

namespace gcnrl::env {

// What a simulation produces, independent of the (recalibratable) FoM spec.
struct CachedEval {
  bool sim_ok = false;
  MetricMap metrics;
};

// Deterministic LRU cache: quantized design vector -> CachedEval.
// Not thread-safe by design — EvalService only touches it from the
// submitting thread, which is what keeps eviction order reproducible.
class EvalCache {
 public:
  using Key = std::vector<double>;

  // Hash and equality both work on the bit representation, keeping the
  // unordered_map invariant (equal keys hash equal) even for NaN keys — a
  // diverged agent can emit NaN actions, and NaN != NaN under operator==
  // would otherwise grow the map unboundedly and dangle on eviction.
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct KeyEqual {
    bool operator()(const Key& a, const Key& b) const;
  };

  explicit EvalCache(std::size_t capacity) : capacity_(capacity) {}

  // Returns the cached entry (touching it most-recently-used) or nullptr.
  const CachedEval* find(const Key& key);
  // Inserts (or refreshes) an entry, evicting the least-recently-used one
  // when over capacity. No-op when capacity is 0.
  void insert(const Key& key, CachedEval value);
  void clear();

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<Key, CachedEval>;

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash, KeyEqual>
      map_;
};

// Backend strategy: execute a batch of independent evaluation jobs. Jobs
// are self-contained (they catch their own simulation errors) and may run
// in any order on any thread; completion of run() implies completion of
// every job.
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;
  virtual void run(std::span<const std::function<void()>> jobs) = 0;
  [[nodiscard]] virtual int threads() const = 0;
};

// Canonical flat key of a refined design (no circuit tag): matched
// components and unused action dims are folded away via the space's
// per-component parameter counts, so two raw action matrices landing on
// the same legal design produce bit-identical keys. This is the design
// part of the service's cache key, exported so the run loops can reuse the
// key machinery for run-local simulated-cost accounting.
EvalCache::Key design_key(const circuit::DesignSpace& space,
                          const circuit::DesignParams& p);

// One evaluation request of a multi-circuit batch. Both pointers are
// non-owning and must outlive the eval_batch_multi call; distinct jobs may
// reference the same circuit (the single-circuit eval_batch is exactly
// that) or different ones (the lockstep sweep engine). `attr` is an
// optional attribution slot from EvalService::new_attribution(): the job
// is counted against that slot's requested/sims/cache_hits counters in
// addition to the service-wide ones (-1: service-wide only).
struct EvalJob {
  const BenchmarkCircuit* bc = nullptr;
  const la::Mat* actions = nullptr;
  int attr = -1;
};

// Counter triple kept service-wide and per attribution slot. requested =
// every evaluation asked for; sims = simulator runs actually executed;
// cache_hits = requested - sims for cache-served results (including
// in-batch dedupe).
struct EvalCounters {
  long requested = 0;
  long sims = 0;
  long cache_hits = 0;
};

class EvalService {
 public:
  explicit EvalService(EvalServiceConfig cfg = eval_config_from_env());
  ~EvalService();
  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  // Evaluate a batch of jobs, each against its own circuit, through the
  // refine -> simulate -> FoM pipeline. Raw metrics are cached under
  // (circuit tag, refined params); the FoM is applied per job from that
  // job's own FomSpec. Results come back in submission order.
  std::vector<EvalResult> eval_batch_multi(std::span<const EvalJob> jobs);
  // Single-circuit convenience wrappers over eval_batch_multi.
  std::vector<EvalResult> eval_batch(const BenchmarkCircuit& bc,
                                     std::span<const la::Mat> actions,
                                     int attr = -1);
  EvalResult eval_one(const BenchmarkCircuit& bc, const la::Mat& actions,
                      int attr = -1);

  [[nodiscard]] int threads() const;
  EvalCache& cache() { return cache_; }

  // --- counters ---------------------------------------------------------
  // Service-wide totals (see EvalCounters for the semantics).
  [[nodiscard]] long requested() const { return total_.requested; }
  [[nodiscard]] long sims() const { return total_.sims; }
  [[nodiscard]] long cache_hits() const { return total_.cache_hits; }

  // Per-job attribution: each SizingEnv (or any other submitter) claims a
  // slot and stamps it on its jobs, so multi-env harnesses on one shared
  // service can report per-env counters instead of service-wide totals.
  // A result served from the cache — even one warmed by another env — is a
  // cache hit for the requesting slot; only the first requester of a
  // design is charged the sim.
  [[nodiscard]] int new_attribution();
  // By value: new_attribution() may reallocate the slot storage, so a
  // returned reference could dangle across env constructions.
  [[nodiscard]] EvalCounters counters(int attr) const {
    return attr_counters_.at(static_cast<std::size_t>(attr));
  }

 private:
  // Interned circuit identity (see the header comment): stable small id per
  // (circuit name, technology name) pair, stored as the leading element of
  // every cache key.
  double circuit_tag(const BenchmarkCircuit& bc);

  // Address-keyed fast path for circuit_tag. The names are kept alongside
  // the tag and re-checked on every hit, so a reused address (a destroyed
  // circuit's slot recycled for a different one) can never serve a stale
  // tag — it just falls through to the string-keyed intern table.
  struct TagEntry {
    std::string name;
    std::string tech;
    double tag = 0.0;
  };

  EvalServiceConfig cfg_;
  std::unique_ptr<EvalBackend> backend_;
  EvalCache cache_;
  std::unordered_map<std::string, double> tags_;
  std::unordered_map<const BenchmarkCircuit*, TagEntry> ptr_tags_;
  EvalCounters total_;
  std::vector<EvalCounters> attr_counters_;
  // Cross-design DC warm-start banks, one per attribution slot (only used
  // when cfg_.dc_warm_start is set; see EvalServiceConfig). Snapshotted
  // per fresh job at submission and committed back in submission order,
  // which keeps results bit-identical across backends and thread counts.
  std::vector<sim::WarmStartBank> warm_banks_;
};

}  // namespace gcnrl::env
