#include "env/circuit_compile.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "meas/plan.hpp"
#include "sim/mna.hpp"

namespace gcnrl::env {

namespace {

using circuit::CircuitDescription;
using circuit::Expr;
using circuit::Technology;

circuit::Pwl make_pwl(const std::vector<std::pair<Expr, Expr>>& points,
                      const Technology& tech) {
  circuit::Pwl p;
  p.points.reserve(points.size());
  for (const auto& [t, v] : points) {
    p.points.emplace_back(t.eval(tech), v.eval(tech));
  }
  return p;
}

int bench_index(const CircuitDescription& d, const std::string& name) {
  for (std::size_t i = 0; i < d.benches.size(); ++i) {
    if (d.benches[i].name == name) return static_cast<int>(i);
  }
  throw std::runtime_error("compile_circuit: unknown bench \"" + name +
                           "\"");
}

const circuit::SourceDesc& source_desc(const CircuitDescription& d,
                                       const std::string& name) {
  for (const circuit::SourceDesc& s : d.sources) {
    if (s.name == name) return s;
  }
  throw std::runtime_error("compile_circuit: unknown source \"" + name +
                           "\"");
}

int node_id(const circuit::Netlist& nl, const std::string& name) {
  const std::optional<int> id = nl.find_node(name);
  if (!id) {
    throw std::runtime_error("compile_circuit: unknown net \"" + name +
                             "\"");
  }
  return *id;
}

}  // namespace

BenchmarkCircuit compile_circuit(const CircuitDescription& d,
                                 const Technology& tech) {
  BenchmarkCircuit bc;
  bc.name = d.name;
  bc.tech = tech;

  // --- netlist: nets in declaration order, elements in file order --------
  circuit::Netlist& nl = bc.netlist;
  for (const circuit::NetDesc& n : d.nets) {
    nl.node(n.name);
    if (n.supply) nl.mark_supply(n.name);
  }
  for (const circuit::ElementRef& ref : d.element_order) {
    if (ref.is_source) {
      const circuit::SourceDesc& s =
          d.sources[static_cast<std::size_t>(ref.index)];
      const int p = nl.node(s.p);
      const int n = nl.node(s.n);
      const double dc = s.dc.eval(tech);
      const double ac = s.ac.empty() ? 0.0 : s.ac.eval(tech);
      circuit::Pwl pwl;
      if (!s.pwl.empty()) pwl = make_pwl(s.pwl, tech);
      if (s.is_vsource) nl.add_vsource(s.name, p, n, dc, ac, pwl);
      else nl.add_isource(s.name, p, n, dc, ac, pwl);
    } else {
      const circuit::DeviceDesc& dev =
          d.devices[static_cast<std::size_t>(ref.index)];
      switch (dev.kind) {
        case circuit::Kind::Nmos:
        case circuit::Kind::Pmos: {
          const int dn = nl.node(dev.nodes[0]);
          const int gn = nl.node(dev.nodes[1]);
          const int sn = nl.node(dev.nodes[2]);
          const int bn = nl.node(dev.nodes[3]);
          const double w = dev.params[0].eval(tech);
          const double l = dev.params[1].eval(tech);
          const int m =
              static_cast<int>(std::lround(dev.params[2].eval(tech)));
          if (dev.kind == circuit::Kind::Nmos) {
            nl.add_nmos(dev.name, dn, gn, sn, bn, w, l, m, dev.designable);
          } else {
            nl.add_pmos(dev.name, dn, gn, sn, bn, w, l, m, dev.designable);
          }
          break;
        }
        case circuit::Kind::Resistor:
          nl.add_resistor(dev.name, nl.node(dev.nodes[0]),
                          nl.node(dev.nodes[1]), dev.params[0].eval(tech),
                          dev.designable);
          break;
        case circuit::Kind::Capacitor:
          nl.add_capacitor(dev.name, nl.node(dev.nodes[0]),
                           nl.node(dev.nodes[1]), dev.params[0].eval(tech),
                           dev.designable);
          break;
      }
    }
  }

  // --- design space: defaults, then bound overrides, then match groups ---
  bc.space = circuit::DesignSpace::from_netlist(nl, tech);
  for (const circuit::BoundDesc& b : d.bounds) {
    const int i = bc.space.find(b.comp);
    if (i < 0) {
      throw std::runtime_error("compile_circuit: unknown component \"" +
                               b.comp + "\"");
    }
    circuit::ParamRange& r =
        bc.space.comp(i).p[static_cast<std::size_t>(b.param)];
    (b.hi ? r.hi : r.lo) = b.value.eval(tech);
  }
  for (const circuit::MatchDesc& m : d.matches) {
    bc.space.add_match_group(nl, m.comps, m.l_only);
  }

  // --- FoM table ---------------------------------------------------------
  for (const circuit::MetricDesc& md : d.metrics) {
    MetricDef def;
    def.name = md.name;
    def.unit = md.unit;
    def.weight = md.weight;
    if (md.bound) def.bound = md.bound->eval(tech);
    if (md.spec_min) def.spec_min = md.spec_min->eval(tech);
    if (md.spec_max) def.spec_max = md.spec_max->eval(tech);
    def.log_norm = md.log_norm;
    bc.fom.metrics.push_back(std::move(def));
  }

  // --- measurement plan ---------------------------------------------------
  auto plan = std::make_shared<meas::Plan>();
  for (const circuit::BenchDesc& b : d.benches) {
    meas::BenchPlan pb;
    pb.name = b.name;
    for (const circuit::SourceSetDesc& set : b.sets) {
      meas::SourceOverride o;
      o.is_vsource = source_desc(d, set.source).is_vsource;
      o.name = set.source;
      if (set.dc) o.dc = set.dc->eval(tech);
      if (set.ac) o.ac = set.ac->eval(tech);
      if (set.pwl) o.pwl = make_pwl(*set.pwl, tech);
      pb.sets.push_back(std::move(o));
    }
    if (b.ac) {
      pb.ac_freqs = sim::logspace(b.ac->fmin.eval(tech),
                                  b.ac->fmax.eval(tech), b.ac->npoints);
    }
    if (b.noise) {
      std::vector<double> freqs;
      freqs.reserve(b.noise->freqs.size());
      for (const Expr& f : b.noise->freqs) freqs.push_back(f.eval(tech));
      pb.noise_freqs = std::move(freqs);
      pb.noise_p = node_id(nl, b.noise->out_p);
      pb.noise_n = b.noise->out_n.empty() ? 0 : node_id(nl, b.noise->out_n);
    }
    if (b.tran) {
      sim::TranOptions topt;
      topt.tstop = b.tran->tstop.eval(tech);
      topt.dt = b.tran->dt.eval(tech);
      pb.tran = topt;
    }
    if (!b.warm_from.empty()) pb.warm_from = bench_index(d, b.warm_from);
    plan->benches.push_back(std::move(pb));
  }
  for (const circuit::ExtractDesc& e : d.extracts) {
    meas::ExtractPlan pe;
    pe.metric = e.metric;
    pe.fn = e.fn;
    pe.bench = bench_index(d, e.bench);
    if (!e.probe_p.empty()) pe.probe_p = node_id(nl, e.probe_p);
    if (!e.probe_n.empty()) pe.probe_n = node_id(nl, e.probe_n);
    if (e.at_freq) pe.at_freq = e.at_freq->eval(tech);
    if (e.win_t0) pe.win_t0 = e.win_t0->eval(tech);
    if (e.win_t1) pe.win_t1 = e.win_t1->eval(tech);
    if (e.edge) pe.edge = e.edge->eval(tech);
    if (e.tol) pe.tol = e.tol->eval(tech);
    plan->extracts.push_back(std::move(pe));
  }

  // Concurrency audit (EvalService contract on BenchmarkCircuit::evaluate):
  // the Plan is immutable after compile and shared read-only; the
  // Technology is a by-value copy; run_plan constructs its Simulators
  // locally. See meas/plan.hpp.
  const Technology tech_copy = tech;
  bc.evaluate = [plan, tech_copy](const circuit::Netlist& sized) {
    return meas::run_plan(*plan, sized, tech_copy);
  };

  // --- human-expert sizing, in design-component order ---------------------
  if (!d.expert.empty()) {
    circuit::DesignParams p;
    for (int i = 0; i < nl.num_design_components(); ++i) {
      const std::string& name = nl.design_name(i);
      const circuit::ExpertDesc* found = nullptr;
      for (const circuit::ExpertDesc& e : d.expert) {
        if (e.comp == name) found = &e;
      }
      if (found == nullptr) {
        throw std::runtime_error(
            "compile_circuit: expert sizing is missing \"" + name + "\"");
      }
      std::array<double, circuit::kMaxActionDim> v{};
      for (std::size_t j = 0; j < found->values.size(); ++j) {
        v[j] = found->values[j].eval(tech);
      }
      p.v.push_back(v);
    }
    bc.human_expert = std::move(p);
  }
  return bc;
}

}  // namespace gcnrl::env
