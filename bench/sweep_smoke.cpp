// Tiny end-to-end run of the parallel bench::sweep path: one RL method
// through the lockstep multi-seed engine and one black-box method through
// the shared-service per-seed path, on a real circuit with a small budget.
// Exits non-zero if the sweep shape is wrong (trace count/length), so it
// doubles as the CTest/CI smoke job (run with GCNRL_EVAL_THREADS=4).
//
// Usage: sweep_smoke [steps] [seeds]
#include <cstdio>
#include <cstdlib>

#include "common.hpp"

using namespace gcnrl;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 12;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 2;
  const int warmup = steps / 2;
  const int calib = 32;
  const auto tech = circuit::make_technology("180nm");
  Rng rng(2024);
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());

  std::printf("sweep smoke: Two-TIA, steps=%d, seeds=%d\n%s\n", steps, seeds,
              bench::eval_banner().c_str());

  bench::EnvFactory factory("Two-TIA", tech, env::IndexMode::OneHot, calib,
                            rng, svc);
  int failures = 0;
  for (const std::string method : {"GCN-RL", "ES"}) {
    const auto sw = bench::sweep(method, factory, steps, warmup, seeds, 0.0);
    const bool shape_ok =
        static_cast<int>(sw.traces.size()) == seeds &&
        static_cast<int>(sw.best.size()) == seeds &&
        [&] {
          for (const auto& t : sw.traces) {
            if (static_cast<int>(t.size()) != steps) return false;
          }
          return true;
        }();
    if (!shape_ok) ++failures;
    std::printf("  %-7s mean %.3f +/- %.3f  (%zu traces)%s\n", method.c_str(),
                sw.mean, sw.stddev, sw.traces.size(),
                shape_ok ? "" : "  SHAPE MISMATCH");
  }
  std::printf("service: %ld evals, %ld sims, %ld cache hits, %d threads\n",
              svc->requested(), svc->sims(), svc->cache_hits(),
              svc->threads());
  return failures == 0 ? 0 : 1;
}
