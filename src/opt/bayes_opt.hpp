// Bayesian optimization — the paper's "BO" baseline [9] (Snoek et al.,
// "Practical Bayesian Optimization").
//
// GP surrogate (opt/gp.hpp) + Expected Improvement acquisition, maximized
// by random multi-start plus local coordinate refinement. The O(N^3) fit
// per iteration is intrinsic (the paper runtime-matches BO against the
// cheaper methods for exactly this reason).
#pragma once

#include "opt/gp.hpp"
#include "opt/optimizer.hpp"

namespace gcnrl::opt {

struct BayesOptOptions {
  int initial_random = 10;     // warm-up points before the GP kicks in
  int acq_samples = 512;       // random acquisition candidates
  int refine_top = 4;          // candidates refined locally
  int refine_iters = 20;       // coordinate-perturbation steps each
  double xi = 0.01;            // EI exploration offset
  int max_gp_points = 400;     // cap the GP training set (best-N retained)
};

class BayesOpt : public Optimizer {
 public:
  BayesOpt(int dim, Rng rng, BayesOptOptions opt = {});

  std::vector<std::vector<double>> ask() override;
  void tell(const std::vector<std::vector<double>>& xs,
            const std::vector<double>& ys) override;
  [[nodiscard]] int dim() const override { return dim_; }

  [[nodiscard]] double expected_improvement(
      const std::vector<double>& x) const;

 private:
  int dim_;
  Rng rng_;
  BayesOptOptions opt_;
  GaussianProcess gp_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  double best_y_ = -1e300;
};

// Standard-normal pdf/cdf used by EI/PI acquisitions.
double norm_pdf(double z);
double norm_cdf(double z);

// Indices of the points to fit the capped GP training set on: all of them
// when n <= max_points, otherwise the best (max_points - 1) by objective
// plus the newest point. The newest point always enters the surrogate —
// dropping it (as a pure best-N rule would whenever the latest sample
// scores badly) blinds the GP to exactly the region it just probed and
// makes the acquisition re-propose it.
std::vector<int> gp_training_subset(const std::vector<double>& ys,
                                    int max_points);

}  // namespace gcnrl::opt
