// Figure 7 reproduction: learning curves of knowledge transfer from
// 180 nm to each target node on Three-TIA, transfer vs no-transfer, with
// identical warm-up seeds (the curves coincide during warm-up and split
// afterwards, exactly as in the paper's figure). Emits fig7_<node>.csv.
//
// One api::run_tasks list: a 1-seed 180 nm pretrain (historical Rng(500))
// and, per node, a from-scratch and a pretrain_from fine-tune on the
// historical Rng(901) seed — byte-identical CSVs to the previous
// hand-wired harness at any GCNRL_EVAL_THREADS.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

int main() {
  const BenchConfig cfg = bench_config();
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());
  const std::vector<std::string> nodes = {"45nm", "65nm", "130nm", "250nm"};

  std::printf("Fig 7: Three-TIA transfer curves (pretrain=%d, budget=%d)\n%s\n\n",
              cfg.steps, cfg.transfer_steps, bench::eval_banner().c_str());

  std::vector<api::TaskSpec> tasks;
  api::TaskSpec pre;
  pre.circuit = "Three-TIA";
  pre.method = "GCN-RL";
  pre.node = "180nm";
  pre.steps = cfg.steps;
  pre.warmup = cfg.warmup;
  pre.label = "pre180";
  pre.seed_base = 500;
  tasks.push_back(pre);
  for (const auto& node : nodes) {
    for (const bool transfer : {false, true}) {
      api::TaskSpec t;
      t.circuit = "Three-TIA";
      t.method = "GCN-RL";
      t.node = node;
      t.steps = cfg.transfer_steps;
      t.warmup = cfg.transfer_warmup;
      t.seed_base = 901;
      t.label = node + (transfer ? " transfer" : " no transfer");
      if (transfer) t.pretrain_from = "pre180";
      tasks.push_back(t);
    }
  }

  api::RunOptions opts;
  opts.service = svc;
  opts.calib_samples = cfg.calib_samples;
  const auto results = api::run_tasks(tasks, opts);
  std::printf("  pretrained at 180nm\n");

  std::size_t i = 1;  // results[0] is the pretrain task
  for (const auto& node : nodes) {
    const rl::RunResult& none = results[i++].runs[0];
    const rl::RunResult& xfer = results[i++].runs[0];
    const std::string path = "fig7_" + node + ".csv";
    CsvWriter csv(path);
    csv.row({"step", "no_transfer", "transfer"});
    for (std::size_t k = 0; k < none.best_trace.size(); ++k) {
      csv.row({std::to_string(k + 1),
               TextTable::num(none.best_trace[k], 6),
               TextTable::num(xfer.best_trace[k], 6)});
    }
    std::printf("  %s: no-transfer %.3f vs transfer %.3f -> %s\n",
                node.c_str(), none.best_fom, xfer.best_fom, path.c_str());
    std::fflush(stdout);
  }
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper shape: identical warm-up, then the transfer curve climbs\n"
      "faster and converges higher on every node.\n");
  return 0;
}
