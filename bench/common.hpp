// Shared machinery for the table/figure benchmark harnesses.
//
// Provides the method registry of Table I (Random / ES / BO / MACE /
// NG-RL / GCN-RL + the human anchor), seed sweeps with mean +/- std
// aggregation, and the paper's runtime-matching rule for the O(N^3) BO
// methods ("for BO and MACE it is impossible to run 10000 steps ... we
// ran them for the same runtime"): BO/MACE runs stop at the wall-clock
// budget of the corresponding RL run if they have not exhausted their
// step budget first.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuits/benchmark_circuits.hpp"
#include "common/envcfg.hpp"
#include "common/table.hpp"
#include "la/stats.hpp"
#include "opt/bayes_opt.hpp"
#include "opt/cma_es.hpp"
#include "opt/mace.hpp"
#include "opt/random_search.hpp"
#include "rl/run_loop.hpp"

namespace gcnrl::bench {

inline const std::vector<std::string> kMethods = {
    "Random", "ES", "BO", "MACE", "NG-RL", "GCN-RL"};

// A calibrated environment factory: builds fresh envs for a circuit while
// sharing one FoM calibration (normalizers must be identical across
// methods for the comparison to be meaningful).
class EnvFactory {
 public:
  EnvFactory(std::string circuit_name, const circuit::Technology& tech,
             env::IndexMode mode, int calib_samples, Rng& rng)
      : name_(std::move(circuit_name)), tech_(tech), mode_(mode) {
    env::SizingEnv probe(circuits::make_benchmark(name_, tech_), mode_);
    probe.calibrate(calib_samples, rng);
    fom_ = probe.bench().fom;
  }

  [[nodiscard]] std::unique_ptr<env::SizingEnv> make() const {
    auto bc = circuits::make_benchmark(name_, tech_);
    bc.fom = fom_;
    return std::make_unique<env::SizingEnv>(std::move(bc), mode_);
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const env::FomSpec& fom() const { return fom_; }

 private:
  std::string name_;
  circuit::Technology tech_;
  env::IndexMode mode_;
  env::FomSpec fom_;
};

// Thin forwarder to rl::run_optimizer's deadline overload: stops early
// once `seconds` elapse (checked between batches). Kept as a named entry
// point because "the timed BO/MACE budget" is a concept of the paper's
// protocol, not of the RL layer.
rl::RunResult run_optimizer_timed(env::SizingEnv& env, opt::Optimizer& opt,
                                  int steps, double seconds);

// One-line description of the evaluation engine configuration (thread
// count + cache capacity from GCNRL_EVAL_THREADS / GCNRL_EVAL_CACHE),
// printed by every harness so logged tables are self-describing.
std::string eval_banner();

struct MethodRun {
  rl::RunResult result;
  double seconds = 0.0;
};

// One (method, seed) run. `rl_seconds` is the wall-clock of the matching
// RL run used as the BO/MACE runtime budget (<=0: no cap).
MethodRun run_method(const std::string& method, const EnvFactory& factory,
                     int steps, int warmup, std::uint64_t seed,
                     double rl_seconds, const rl::DdpgConfig& base_cfg = {});

// Seed sweep: returns best-FoM per seed plus the traces.
struct SweepResult {
  std::vector<double> best;             // per seed
  std::vector<std::vector<double>> traces;
  double mean = 0.0;
  double stddev = 0.0;
  double rl_seconds = 0.0;  // mean runtime (only filled for RL methods)
};
SweepResult sweep(const std::string& method, const EnvFactory& factory,
                  int steps, int warmup, int seeds, double rl_seconds,
                  const rl::DdpgConfig& base_cfg = {});

// "mean +/- std" cell formatting used by all tables.
std::string pm(double mean, double stddev, int precision = 3);

}  // namespace gcnrl::bench
