// Tests for the black-box optimizer baselines: CMA-ES, GP regression,
// Bayesian optimization and MACE on closed-form objectives.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "opt/bayes_opt.hpp"
#include "opt/cma_es.hpp"
#include "opt/mace.hpp"
#include "opt/random_search.hpp"

namespace opt = gcnrl::opt;
using gcnrl::Rng;

namespace {

// Sphere: maximum 0 at x*.
double neg_sphere(const std::vector<double>& x,
                  const std::vector<double>& target) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - target[i];
    acc -= d * d;
  }
  return acc;
}

double run_loop(opt::Optimizer& o, int evals,
                const std::function<double(const std::vector<double>&)>& f) {
  double best = -1e300;
  int done = 0;
  while (done < evals) {
    const auto xs = o.ask();
    std::vector<double> ys;
    for (const auto& x : xs) {
      ys.push_back(f(x));
      best = std::max(best, ys.back());
      if (++done >= evals) break;
    }
    o.tell({xs.begin(), xs.begin() + ys.size()}, ys);
  }
  return best;
}

}  // namespace

TEST(RandomSearch, StaysInBounds) {
  opt::RandomSearch rs(6, Rng(1), 4);
  for (int it = 0; it < 20; ++it) {
    for (const auto& x : rs.ask()) {
      ASSERT_EQ(static_cast<int>(x.size()), 6);
      for (double v : x) {
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
}

TEST(CmaEs, ConvergesOnSphere) {
  const int dim = 8;
  std::vector<double> target(dim);
  Rng trng(3);
  for (auto& t : target) t = trng.uniform(-0.5, 0.5);
  opt::CmaEs es(dim, Rng(4));
  const double best = run_loop(
      es, 600, [&](const std::vector<double>& x) {
        return neg_sphere(x, target);
      });
  EXPECT_GT(best, -1e-3);
  // The distribution mean should be near the optimum too, not just a
  // lucky sample.
  EXPECT_LT(std::fabs(es.mean()[0] - target[0]), 0.1);
}

TEST(CmaEs, HandlesBoundaryOptimum) {
  // Optimum at the corner of the box: clipping must not break updates.
  const int dim = 4;
  std::vector<double> target(dim, 1.0);
  opt::CmaEs es(dim, Rng(5));
  const double best = run_loop(
      es, 500, [&](const std::vector<double>& x) {
        return neg_sphere(x, target);
      });
  EXPECT_GT(best, -0.05);
}

TEST(CmaEs, ImprovesOnRosenbrockStyleCoupling) {
  // Maximize -[(1 - x0)^2 + 5 (x1 - x0^2)^2] — curved valley.
  opt::CmaEs es(2, Rng(6));
  const double best = run_loop(es, 800, [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return -(a * a + 5.0 * b * b);
  });
  EXPECT_GT(best, -0.05);
}

TEST(CmaEs, PartialBatchTellAccepted) {
  opt::CmaEs es(3, Rng(7));
  auto xs = es.ask();
  ASSERT_GE(xs.size(), 2u);
  std::vector<std::vector<double>> partial(xs.begin(), xs.begin() + 2);
  EXPECT_NO_THROW(es.tell(partial, {0.1, 0.2}));
  EXPECT_THROW(es.tell({}, {}), std::invalid_argument);
}

TEST(Gp, InterpolatesTrainingData) {
  opt::GaussianProcess gp;
  std::vector<std::vector<double>> x = {{0.0}, {0.5}, {1.0}, {-0.7}};
  std::vector<double> y = {1.0, 2.0, -1.0, 0.3};
  gp.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto p = gp.predict(x[i]);
    EXPECT_NEAR(p.mean, y[i], 0.15);
  }
}

TEST(Gp, UncertaintyGrowsAwayFromData) {
  opt::GaussianProcess gp;
  std::vector<std::vector<double>> x = {{0.0}, {0.1}, {0.2}};
  std::vector<double> y = {0.0, 0.1, 0.2};
  gp.fit(x, y);
  const auto near = gp.predict({0.1});
  const auto far = gp.predict({3.0});
  EXPECT_LT(near.variance, far.variance);
}

TEST(Gp, PredictionTracksSmoothFunction) {
  opt::GaussianProcess gp;
  Rng rng(8);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    const double xi = rng.uniform(-1.0, 1.0);
    x.push_back({xi});
    y.push_back(std::sin(3.0 * xi));
  }
  gp.fit(x, y);
  double max_err = 0.0;
  for (double xi = -0.9; xi <= 0.9; xi += 0.1) {
    max_err = std::max(max_err,
                       std::fabs(gp.predict({xi}).mean - std::sin(3.0 * xi)));
  }
  EXPECT_LT(max_err, 0.15);
}

TEST(BayesOpt, BeatsRandomOnMultimodal1d) {
  // f(x) = sin(5x) * (1 - x^2): several local optima in [-1, 1].
  auto f = [](const std::vector<double>& x) {
    return std::sin(5.0 * x[0]) * (1.0 - x[0] * x[0]);
  };
  opt::BayesOptOptions bopt;
  bopt.initial_random = 6;
  opt::BayesOpt bo(1, Rng(9), bopt);
  const double best_bo = run_loop(bo, 40, f);
  opt::RandomSearch rs(1, Rng(9));
  const double best_rs = run_loop(rs, 40, f);
  EXPECT_GE(best_bo, best_rs - 0.02);
  EXPECT_GT(best_bo, 0.75);  // global max ~ 0.78 near x ~ 0.28
}

TEST(BayesOpt, GpSubsetWithinCapKeepsEveryPoint) {
  const auto keep = opt::gp_training_subset({3.0, 1.0, 2.0}, 5);
  EXPECT_EQ(keep, (std::vector<int>{0, 1, 2}));
}

TEST(BayesOpt, GpSubsetAlwaysAdmitsTheNewestPoint) {
  // Regression: the capped GP training set used to keep only the top-N by
  // objective, so a badly scoring newest point never entered the surrogate
  // and the GP stayed blind to the region it just probed. The subset must
  // be the best (max - 1) points plus the newest, even when the newest is
  // the worst sample seen so far.
  const std::vector<double> ys = {5.0, 4.0, 3.0, 2.0, -10.0};
  const auto keep = opt::gp_training_subset(ys, 3);
  ASSERT_EQ(keep.size(), 3u);
  // Best two by objective...
  EXPECT_NE(std::find(keep.begin(), keep.end(), 0), keep.end());
  EXPECT_NE(std::find(keep.begin(), keep.end(), 1), keep.end());
  // ...plus the newest (worst) point, which the old best-N rule dropped.
  EXPECT_EQ(keep.back(), 4);
}

TEST(BayesOpt, GpSubsetDoesNotDuplicateANewestBestPoint) {
  // Newest point is also the best: it must appear exactly once and the
  // remaining slots go to the next-best points.
  const std::vector<double> ys = {1.0, 2.0, 9.0};
  const auto keep = opt::gp_training_subset(ys, 2);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(std::count(keep.begin(), keep.end(), 2), 1);
  EXPECT_NE(std::find(keep.begin(), keep.end(), 1), keep.end());
}

TEST(BayesOpt, ExpectedImprovementNonNegative) {
  opt::BayesOptOptions bopt;
  bopt.initial_random = 3;
  opt::BayesOpt bo(2, Rng(10), bopt);
  std::vector<std::vector<double>> xs = {{0.0, 0.0}, {0.5, 0.5}, {-0.5, 0.2}};
  bo.tell(xs, {0.1, 0.3, -0.2});
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_GE(bo.expected_improvement(
                  {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)}),
              0.0);
  }
}

TEST(Mace, ProposesRequestedBatch) {
  opt::MaceOptions mopt;
  mopt.initial_random = 4;
  mopt.batch = 3;
  opt::Mace mace(3, Rng(12), mopt);
  // Warm-up asks.
  auto xs = mace.ask();
  std::vector<double> ys(xs.size(), 0.0);
  mace.tell(xs, ys);
  xs = mace.ask();
  std::vector<double> ys2;
  for (const auto& x : xs) ys2.push_back(-x[0] * x[0]);
  mace.tell(xs, ys2);
  const auto batch = mace.ask();
  EXPECT_EQ(static_cast<int>(batch.size()), 3);
  for (const auto& x : batch) {
    for (double v : x) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Mace, OptimizesQuadratic) {
  std::vector<double> target = {0.3, -0.4};
  opt::MaceOptions mopt;
  mopt.initial_random = 8;
  opt::Mace mace(2, Rng(13), mopt);
  const double best = run_loop(mace, 60, [&](const std::vector<double>& x) {
    return neg_sphere(x, target);
  });
  EXPECT_GT(best, -0.05);
}

namespace {

// Drive two instances of one optimizer through the identical ask/tell
// transcript (a deterministic synthetic objective) and require identical
// proposals throughout. This is the property the lockstep sweep driver
// rests on: an optimizer's stream is a pure function of its seed and its
// observations, so stepping S seeds side by side cannot perturb any of
// them.
void expect_replay_determinism(opt::Optimizer& a, opt::Optimizer& b,
                               int rounds) {
  auto f = [](const std::vector<double>& x) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      acc -= (x[i] - 0.1 * static_cast<double>(i + 1)) *
             (x[i] - 0.1 * static_cast<double>(i + 1));
    }
    return acc;
  };
  for (int r = 0; r < rounds; ++r) {
    const auto xa = a.ask();
    const auto xb = b.ask();
    ASSERT_EQ(xa.size(), xb.size()) << "round " << r;
    std::vector<double> ys;
    for (std::size_t i = 0; i < xa.size(); ++i) {
      ASSERT_EQ(xa[i], xb[i]) << "round " << r << " point " << i;
      ys.push_back(f(xa[i]));
    }
    a.tell(xa, ys);
    b.tell(xb, ys);
  }
}

}  // namespace

TEST(BayesOpt, IdenticallySeededInstancesReplayIdentically) {
  opt::BayesOptOptions bopt;
  bopt.initial_random = 4;
  opt::BayesOpt a(3, Rng(21), bopt);
  opt::BayesOpt b(3, Rng(21), bopt);
  expect_replay_determinism(a, b, 12);
}

TEST(Mace, IdenticallySeededInstancesReplayIdentically) {
  opt::MaceOptions mopt;
  mopt.initial_random = 4;
  mopt.batch = 3;
  opt::Mace a(3, Rng(22), mopt);
  opt::Mace b(3, Rng(22), mopt);
  expect_replay_determinism(a, b, 10);
}

TEST(CmaEs, IdenticallySeededInstancesReplayIdentically) {
  opt::CmaEs a(4, Rng(23));
  opt::CmaEs b(4, Rng(23));
  expect_replay_determinism(a, b, 15);
}

TEST(NormalHelpers, PdfCdfSanity) {
  EXPECT_NEAR(opt::norm_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(opt::norm_cdf(10.0), 1.0, 1e-9);
  EXPECT_NEAR(opt::norm_cdf(-10.0), 0.0, 1e-9);
  EXPECT_NEAR(opt::norm_pdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
}
