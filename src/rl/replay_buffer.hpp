// Replay buffer P of Algorithm 1.
//
// The sizing MDP is single-step (state fixed per circuit, action = all
// parameters, reward = FoM), so transitions store (A, R); the state matrix
// lives once in the agent. Sampling is uniform with replacement.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace gcnrl::rl {

struct Transition {
  la::Mat actions;  // n x kMaxActionDim in [-1, 1]
  double reward = 0.0;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity = 100000)
      : capacity_(capacity) {}

  void push(la::Mat actions, double reward);
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); next_ = 0; }

  // Uniform sample with replacement; batch can exceed size().
  [[nodiscard]] std::vector<const Transition*> sample(std::size_t batch,
                                                      Rng& rng) const;
  [[nodiscard]] const Transition& operator[](std::size_t i) const {
    return data_[i];
  }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring cursor once full
  std::vector<Transition> data_;
};

}  // namespace gcnrl::rl
