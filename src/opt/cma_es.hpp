// CMA-ES (Hansen) — the paper's "ES" baseline [8].
//
// Full covariance-matrix-adaptation evolution strategy: weighted recomb-
// ination of the top-mu samples, rank-1 + rank-mu covariance updates, and
// cumulative step-size adaptation (CSA). Sampling uses an eigendecompo-
// sition of C (Jacobi rotations — dimensions here are <= ~60). Bounds are
// enforced by resampling-then-clipping into [-1, 1].
#pragma once

#include "la/matrix.hpp"
#include "opt/optimizer.hpp"

namespace gcnrl::opt {

struct CmaEsOptions {
  double sigma0 = 0.4;    // initial step size (in [-1,1] units)
  int lambda = 0;         // population size; 0 = 4 + floor(3 ln dim)
};

class CmaEs : public Optimizer {
 public:
  CmaEs(int dim, Rng rng, CmaEsOptions opt = {});

  std::vector<std::vector<double>> ask() override;
  void tell(const std::vector<std::vector<double>>& xs,
            const std::vector<double>& ys) override;
  [[nodiscard]] int dim() const override { return n_; }

  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }

 private:
  void eigen_update();

  int n_;
  Rng rng_;
  int lambda_;
  int mu_;
  std::vector<double> weights_;
  double mueff_;
  double cc_, cs_, c1_, cmu_, damps_;
  double chi_n_;

  std::vector<double> mean_;
  double sigma_;
  la::Mat c_;       // covariance
  la::Mat b_;       // eigenvectors
  std::vector<double> d_;  // sqrt(eigenvalues)
  std::vector<double> pc_, ps_;
  long gen_ = 0;
  // Stashed z-samples of the last ask() (needed for the update).
  std::vector<std::vector<double>> last_y_;  // y = B D z
};

}  // namespace gcnrl::opt
