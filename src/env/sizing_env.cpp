#include "env/sizing_env.hpp"

#include <cmath>

#include "env/eval_service.hpp"
#include "la/stats.hpp"

namespace gcnrl::env {

SizingEnv::SizingEnv(BenchmarkCircuit bc, IndexMode mode,
                     EvalServiceConfig ecfg)
    : SizingEnv(std::move(bc), mode, std::make_shared<EvalService>(ecfg)) {}

SizingEnv::SizingEnv(BenchmarkCircuit bc, IndexMode mode,
                     std::shared_ptr<EvalService> svc)
    : bc_(std::move(bc)), mode_(mode), svc_(std::move(svc)) {
  if (!svc_) svc_ = std::make_shared<EvalService>(eval_config_from_env());
  attr_ = svc_->new_attribution();
  n_ = bc_.netlist.num_design_components();
  adjacency_ = circuit::build_adjacency(bc_.netlist);
  kinds_.reserve(n_);
  for (int i = 0; i < n_; ++i) kinds_.push_back(bc_.netlist.design_kind(i));
  build_state();
}

SizingEnv::~SizingEnv() = default;
SizingEnv::SizingEnv(SizingEnv&&) noexcept = default;
SizingEnv& SizingEnv::operator=(SizingEnv&&) noexcept = default;

void SizingEnv::build_state() {
  const int idx_dim = mode_ == IndexMode::OneHot ? n_ : 1;
  const int dim = idx_dim + circuit::kNumKinds + 5;
  state_ = la::Mat(n_, dim);
  for (int i = 0; i < n_; ++i) {
    if (mode_ == IndexMode::OneHot) {
      state_(i, i) = 1.0;
    } else {
      state_(i, 0) = static_cast<double>(i);
    }
    state_(i, idx_dim + static_cast<int>(kinds_[i])) = 1.0;
    const auto feats = bc_.tech.model_features(kinds_[i]);
    for (int f = 0; f < 5; ++f) {
      state_(i, idx_dim + circuit::kNumKinds + f) = feats[f];
    }
  }
  // Paper: "we normalize [each dimension] by the mean and standard
  // deviation across different components".
  la::normalize_columns(state_);
}

EvalResult SizingEnv::step(const la::Mat& actions) {
  return svc_->eval_one(bc_, actions, attr_);
}

std::vector<EvalResult> SizingEnv::step_batch(
    std::span<const la::Mat> actions) {
  return svc_->eval_batch(bc_, actions, attr_);
}

EvalResult SizingEnv::step_flat(std::span<const double> x) {
  return step(bc_.space.unflatten(x));
}

std::vector<EvalResult> SizingEnv::step_flat_batch(
    std::span<const std::vector<double>> xs) {
  std::vector<la::Mat> actions;
  actions.reserve(xs.size());
  for (const auto& x : xs) actions.push_back(bc_.space.unflatten(x));
  return step_batch(actions);
}

EvalResult SizingEnv::evaluate_params(const circuit::DesignParams& p) {
  return step(bc_.space.actions_from_params(p));
}

int SizingEnv::calibrate(int samples, Rng& rng) {
  // Draw the whole sample schedule first (the RNG stream is identical to
  // the historical one-at-a-time loop), then evaluate as one batch so the
  // thread-pool backend parallelizes calibration too.
  std::vector<la::Mat> actions;
  actions.reserve(samples);
  for (int s = 0; s < samples; ++s) {
    actions.push_back(bc_.space.random_actions(rng));
  }
  std::vector<EvalResult> results = step_batch(actions);
  std::vector<MetricMap> ok;
  ok.reserve(results.size());
  for (EvalResult& r : results) {
    if (!r.sim_ok) continue;
    bool finite = true;
    for (const auto& [k, v] : r.metrics) {
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
    }
    if (finite) ok.push_back(std::move(r.metrics));
  }
  if (!ok.empty()) bc_.fom.calibrate(ok);
  return static_cast<int>(ok.size());
}

long SizingEnv::num_evals() const { return svc_->counters(attr_).requested; }
long SizingEnv::num_sims() const { return svc_->counters(attr_).sims; }
long SizingEnv::cache_hits() const { return svc_->counters(attr_).cache_hits; }
int SizingEnv::eval_threads() const { return svc_->threads(); }

}  // namespace gcnrl::env
