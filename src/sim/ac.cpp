#include "sim/ac.hpp"

#include <chrono>
#include <cstdio>

#include "sim/perf.hpp"
#include "sim/structure.hpp"

namespace gcnrl::sim {
namespace {

using clock_type = std::chrono::steady_clock;

double seconds_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Frequencies span mHz to tens of GHz; fixed-notation std::to_string
// renders both "0.000001" and huge digit strings. Scientific notation
// keeps diagnostics readable at either extreme.
std::string format_freq(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6e", f);
  return buf;
}

// Frequency-independent AC excitation vector (shared by every sweep
// point and by both engines).
std::vector<std::complex<double>> build_ac_rhs(const SimContext& ctx) {
  using cd = std::complex<double>;
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  std::vector<cd> rhs(m.dim(), cd(0.0));
  for (const auto& src : nl.isources()) {
    if (src.ac == 0.0) continue;
    // Current p -> n through the source injects into n.
    if (m.v(src.p) >= 0) rhs[m.v(src.p)] -= src.ac;
    if (m.v(src.n) >= 0) rhs[m.v(src.n)] += src.ac;
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    if (src.ac != 0.0) rhs[m.branch(static_cast<int>(k))] += src.ac;
  }
  return rhs;
}

// Legacy dense sweep: one complex factorization per frequency point.
// Also the fallback target when the sparse engine rejects a block, so
// its arithmetic must stay bitwise what PR 6 shipped.
AcResult solve_ac_dense(const SimContext& ctx, const OpPoint& op,
                        const std::vector<double>& freqs) {
  using cd = std::complex<double>;
  const auto t0 = clock_type::now();
  const MnaMap& m = ctx.map;
  PhaseSeconds phase;

  const std::vector<cd> rhs = build_ac_rhs(ctx);

  const auto s0 = clock_type::now();
  const AcStamps stamps = build_ac_stamps(ctx, op);
  phase.assembly += seconds_between(s0, clock_type::now());

  AcResult out;
  out.freq = freqs;
  out.v = la::CMat(static_cast<int>(freqs.size()), m.num_nodes());
  la::Lu<cd> lu;
  std::vector<cd> x;
  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const double omega = 2.0 * M_PI * freqs[fi];
    const auto a0 = clock_type::now();
    la::CMat y = assemble_ac_matrix(stamps, omega);
    const auto a1 = clock_type::now();
    try {
      lu.factor_swap(y);
    } catch (const la::SingularMatrixError&) {
      phase.factor += seconds_between(a1, clock_type::now());
      phase.assembly += seconds_between(a0, a1);
      sim_perf_record(Analysis::Ac, static_cast<long>(fi),
                      seconds_between(t0, clock_type::now()), 0, 0, &phase);
      throw SimError("AC matrix singular at f=" + format_freq(freqs[fi]) +
                     " Hz");
    }
    const auto a2 = clock_type::now();
    lu.solve_into(rhs, x);
    const auto a3 = clock_type::now();
    phase.assembly += seconds_between(a0, a1);
    phase.factor += seconds_between(a1, a2);
    phase.solve += seconds_between(a2, a3);
    for (int node = 1; node < m.num_nodes(); ++node) {
      out.v(static_cast<int>(fi), node) = x[m.v(node)];
    }
  }
  sim_perf_record(Analysis::Ac, static_cast<long>(freqs.size()),
                  seconds_between(t0, clock_type::now()), 0, 0, &phase);
  return out;
}

// Sparse SoA sweep: G and C assembled once into pattern-aligned arrays,
// then blocks of up to kMaxLanes frequency points factored and solved
// over one symbolic factorization per block. Any rejected block aborts
// the whole sweep to the dense path above.
AcResult solve_ac_sparse(const SimContext& ctx, const OpPoint& op,
                         const std::vector<double>& freqs) {
  using cd = std::complex<double>;
  constexpr int kLanes = la::SparseSweepLu::kMaxLanes;
  const auto t0 = clock_type::now();
  const MnaMap& m = ctx.map;
  const MnaStructure& st = *ctx.structure;
  PhaseSeconds phase;

  const std::vector<cd> rhs = build_ac_rhs(ctx);

  const auto s0 = clock_type::now();
  std::vector<double> g, c;
  assemble_ac_gc(ctx, st, op, g, c);
  phase.assembly += seconds_between(s0, clock_type::now());

  AcResult out;
  out.freq = freqs;
  out.v = la::CMat(static_cast<int>(freqs.size()), m.num_nodes());

  if (!ctx.sweep_cache) {
    ctx.sweep_cache = std::make_unique<la::SparseSweepLu>(st.pattern);
  }
  la::SparseSweepLu& sweep = *ctx.sweep_cache;
  std::vector<cd> xs(static_cast<std::size_t>(kLanes) * m.dim());
  double omega[kLanes];
  const int nf = static_cast<int>(freqs.size());
  for (int fi = 0; fi < nf; fi += kLanes) {
    const int count = std::min(kLanes, nf - fi);
    for (int f = 0; f < count; ++f) {
      omega[f] = 2.0 * M_PI * freqs[fi + f];
    }
    // Per-frequency scatter inside factor_block is attributed to the
    // factor phase (see PhaseSeconds).
    const auto a1 = clock_type::now();
    if (!sweep.factor_block(g.data(), c.data(), omega, count)) {
      throw SparseEngineFallback{};
    }
    const auto a2 = clock_type::now();
    sweep.solve_block(rhs.data(), xs.data(), m.dim());
    const auto a3 = clock_type::now();
    phase.factor += seconds_between(a1, a2);
    phase.solve += seconds_between(a2, a3);
    for (int f = 0; f < count; ++f) {
      const cd* xf = xs.data() + static_cast<std::size_t>(f) * m.dim();
      for (int node = 1; node < m.num_nodes(); ++node) {
        out.v(fi + f, node) = xf[m.v(node)];
      }
    }
  }
  sim_perf_record(Analysis::Ac, static_cast<long>(freqs.size()),
                  seconds_between(t0, clock_type::now()), 0, 0, &phase);
  return out;
}

}  // namespace

AcStamps build_ac_stamps(const SimContext& ctx, const OpPoint& op) {
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  AcStamps s{la::Mat(m.dim(), m.dim()), la::Mat(m.dim(), m.dim())};

  for (const auto& res : nl.resistors()) {
    stamp_conductance(s.g, m, res.a, res.b, 1.0 / std::max(res.r,
                                                           kMinResistance));
  }
  for (const auto& cap : nl.capacitors()) {
    stamp_conductance(s.c, m, cap.a, cap.b, cap.c);
  }
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& mos = nl.mosfets()[k];
    const MosOp& mop = op.mos[k];
    const MosCaps& c = op.caps[k];
    stamp_vccs(s.g, m, mos.d, mos.s, mos.g, mos.s, mop.gm);
    stamp_conductance(s.g, m, mos.d, mos.s, mop.gds);
    stamp_conductance(s.c, m, mos.g, mos.s, c.cgs);
    stamp_conductance(s.c, m, mos.g, mos.d, c.cgd);
    stamp_conductance(s.c, m, mos.d, mos.b, c.cdb);
    stamp_conductance(s.c, m, mos.s, mos.b, c.csb);
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    if (m.v(src.p) >= 0) {
      s.g(m.v(src.p), b) += 1.0;
      s.g(b, m.v(src.p)) += 1.0;
    }
    if (m.v(src.n) >= 0) {
      s.g(m.v(src.n), b) -= 1.0;
      s.g(b, m.v(src.n)) -= 1.0;
    }
  }
  // Regularization shunt mirroring the DC gmin keeps floating AC nodes
  // (e.g. gates only driven through capacitors) solvable.
  for (int node = 1; node < m.num_nodes(); ++node) {
    s.g(m.v(node), m.v(node)) += 1e-12;
  }
  return s;
}

la::CMat assemble_ac_matrix(const AcStamps& stamps, double omega) {
  using cd = std::complex<double>;
  const int n = stamps.g.rows();
  la::CMat y(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      y(i, j) = cd(stamps.g(i, j), omega * stamps.c(i, j));
    }
  }
  return y;
}

la::CMat build_ac_matrix(const SimContext& ctx, const OpPoint& op,
                         double omega) {
  using cd = std::complex<double>;
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  la::CMat y(m.dim(), m.dim());

  for (const auto& res : nl.resistors()) {
    stamp_conductance(y, m, res.a, res.b,
                      cd(1.0 / std::max(res.r, kMinResistance)));
  }
  for (const auto& cap : nl.capacitors()) {
    stamp_conductance(y, m, cap.a, cap.b, cd(0.0, omega * cap.c));
  }
  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& mos = nl.mosfets()[k];
    const MosOp& mop = op.mos[k];
    const MosCaps& c = op.caps[k];
    stamp_vccs(y, m, mos.d, mos.s, mos.g, mos.s, cd(mop.gm));
    stamp_conductance(y, m, mos.d, mos.s, cd(mop.gds));
    stamp_conductance(y, m, mos.g, mos.s, cd(0.0, omega * c.cgs));
    stamp_conductance(y, m, mos.g, mos.d, cd(0.0, omega * c.cgd));
    stamp_conductance(y, m, mos.d, mos.b, cd(0.0, omega * c.cdb));
    stamp_conductance(y, m, mos.s, mos.b, cd(0.0, omega * c.csb));
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    if (m.v(src.p) >= 0) {
      y(m.v(src.p), b) += 1.0;
      y(b, m.v(src.p)) += 1.0;
    }
    if (m.v(src.n) >= 0) {
      y(m.v(src.n), b) -= 1.0;
      y(b, m.v(src.n)) -= 1.0;
    }
  }
  for (int node = 1; node < m.num_nodes(); ++node) {
    y(m.v(node), m.v(node)) += cd(1e-12);
  }
  return y;
}

AcResult solve_ac(const SimContext& ctx, const OpPoint& op,
                  const std::vector<double>& freqs) {
  if (sparse_engine_enabled() && ctx.structure) {
    try {
      return solve_ac_sparse(ctx, op, freqs);
    } catch (const SparseEngineFallback&) {
      sim_perf_sparse_fallback(Analysis::Ac);
    }
  }
  return solve_ac_dense(ctx, op, freqs);
}

}  // namespace gcnrl::sim
