#include "env/sizing_env.hpp"

#include "la/stats.hpp"
#include "sim/mna.hpp"

namespace gcnrl::env {

SizingEnv::SizingEnv(BenchmarkCircuit bc, IndexMode mode)
    : bc_(std::move(bc)), mode_(mode) {
  n_ = bc_.netlist.num_design_components();
  adjacency_ = circuit::build_adjacency(bc_.netlist);
  kinds_.reserve(n_);
  for (int i = 0; i < n_; ++i) kinds_.push_back(bc_.netlist.design_kind(i));
  build_state();
}

void SizingEnv::build_state() {
  const int idx_dim = mode_ == IndexMode::OneHot ? n_ : 1;
  const int dim = idx_dim + circuit::kNumKinds + 5;
  state_ = la::Mat(n_, dim);
  for (int i = 0; i < n_; ++i) {
    if (mode_ == IndexMode::OneHot) {
      state_(i, i) = 1.0;
    } else {
      state_(i, 0) = static_cast<double>(i);
    }
    state_(i, idx_dim + static_cast<int>(kinds_[i])) = 1.0;
    const auto feats = bc_.tech.model_features(kinds_[i]);
    for (int f = 0; f < 5; ++f) {
      state_(i, idx_dim + circuit::kNumKinds + f) = feats[f];
    }
  }
  // Paper: "we normalize [each dimension] by the mean and standard
  // deviation across different components".
  la::normalize_columns(state_);
}

EvalResult SizingEnv::step(const la::Mat& actions) {
  ++num_evals_;
  EvalResult out;
  out.params = bc_.space.refine(actions);
  circuit::Netlist sized = bc_.netlist;
  bc_.space.apply(sized, out.params);
  try {
    out.metrics = bc_.evaluate(sized);
    out.sim_ok = true;
  } catch (const sim::SimError&) {
    out.sim_ok = false;
    out.fom = bc_.fom.sim_fail_fom;
    return out;
  }
  out.spec_ok = bc_.fom.spec_ok(out.metrics);
  out.fom = bc_.fom.fom(out.metrics);
  return out;
}

EvalResult SizingEnv::step_flat(std::span<const double> x) {
  return step(bc_.space.unflatten(x));
}

EvalResult SizingEnv::evaluate_params(const circuit::DesignParams& p) {
  return step(bc_.space.actions_from_params(p));
}

int SizingEnv::calibrate(int samples, Rng& rng) {
  std::vector<MetricMap> ok;
  ok.reserve(samples);
  for (int s = 0; s < samples; ++s) {
    const la::Mat a = bc_.space.random_actions(rng);
    const auto params = bc_.space.refine(a);
    circuit::Netlist sized = bc_.netlist;
    bc_.space.apply(sized, params);
    try {
      MetricMap m = bc_.evaluate(sized);
      bool finite = true;
      for (const auto& [k, v] : m) {
        if (!std::isfinite(v)) {
          finite = false;
          break;
        }
      }
      if (finite) ok.push_back(std::move(m));
    } catch (const sim::SimError&) {
      // Failed random designs simply don't contribute to the normalizers.
    }
  }
  if (!ok.empty()) bc_.fom.calibrate(ok);
  return static_cast<int>(ok.size());
}

}  // namespace gcnrl::env
