// Nonlinear DC operating-point solver.
//
// Newton-Raphson on the MNA residual with three robustness layers that the
// random-sizing workload genuinely needs (the optimizers routinely ask for
// pathological geometries):
//   * gmin stepping — solve with a large shunt conductance on every node
//     and relax it geometrically to the target;
//   * per-iteration voltage-step damping;
//   * source stepping fallback — ramp all independent sources from 0.
// Throws SimError if every strategy fails; the environment maps that to a
// large negative FoM (a failed design), mirroring how a real flow treats
// non-convergent corners.
#pragma once

#include "sim/mna.hpp"

namespace gcnrl::sim {

struct DcOptions {
  int max_iter = 120;
  double gmin = 1e-12;     // final shunt conductance to ground
  double tol_residual = 1e-9;   // max KCL residual [A]
  // Voltage-step tolerance. Kept well above the finite-difference
  // granularity of the device-model Jacobian: an exactly-satisfied KCL
  // residual can coexist with a uV-scale dx limit cycle, and 20 uV is
  // orders of magnitude below anything the measurements resolve.
  double tol_step = 2e-5;  // max voltage update [V]
  double step_limit = 0.5; // Newton damping: max |dv| per iteration [V]
  // Evaluate transient sources at this time instead of their DC value
  // (used to get the t=0 initial condition of a transient run).
  double source_time = -1.0;  // < 0: use dc fields
  // Iteration budget for the direct-from-warm-start Newton attempt. Kept
  // below max_iter: a good guess converges in a handful of iterations,
  // and a bad one should hand over to the robust ladder quickly instead
  // of burning the full budget on a doomed descent.
  int warm_max_iter = 40;
};

// Per-solve diagnostics, filled when a non-null pointer is passed.
struct DcStats {
  int newton_iters = 0;   // Newton iterations summed over all attempts
  bool warm_attempted = false;  // a warm-start guess was supplied and tried
  bool warm_converged = false;  // ...and Newton converged directly from it
  int strategy = 0;       // 0 = warm start, 1..3 = ladder strategy that won
};

// Solves for the DC operating point. `warm_start`, when non-null, is a
// full MNA unknown vector (node voltages + branch currents, e.g. from
// sim::project_op) used as the initial guess for a direct Newton attempt
// at the target gmin; on non-convergence the solver falls back to the
// unchanged three-strategy ladder from scratch, so robustness is
// identical to a cold solve. Throws SimError if every strategy fails.
OpPoint solve_dc(const SimContext& ctx, const DcOptions& opt = {},
                 const std::vector<double>* warm_start = nullptr,
                 DcStats* stats = nullptr);

}  // namespace gcnrl::sim
