// google-benchmark for the EvalService: evaluations/sec on the two_tia
// benchmark circuit at 1/2/4/8 worker threads, plus the cache-hit fast
// path. This is the scaling number behind GCNRL_EVAL_THREADS — on an
// N-core machine the thread-pool rows should approach N x the serial row
// (the sims are independent and share no mutable state).
//
// Counters: items_per_second is evaluations/sec; use
// --benchmark_counters_tabular=true for a compact table.
#include <benchmark/benchmark.h>

#include <vector>

#include "circuits/benchmark_circuits.hpp"
#include "common/rng.hpp"
#include "env/eval_service.hpp"
#include "env/sizing_env.hpp"

using namespace gcnrl;

namespace {

const auto kTech = circuit::make_technology("180nm");

// Distinct random designs through the full refine -> simulate -> FoM
// pipeline, cache disabled: pure simulation throughput vs thread count.
void BM_EvalBatch_TwoTia(benchmark::State& state) {
  env::EvalServiceConfig cfg;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.cache_capacity = 0;
  env::SizingEnv env(circuits::make_two_tia(kTech), env::IndexMode::OneHot,
                     cfg);
  constexpr int kBatch = 32;
  Rng rng(7);
  std::vector<la::Mat> batch;
  batch.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) batch.push_back(env.random_actions(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step_batch(batch).front().fom);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EvalBatch_TwoTia)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The same batch revisited: after the first iteration every design is a
// cache hit, so this bounds the per-evaluation engine overhead (refine +
// key + LRU + FoM recompute, no simulation).
void BM_EvalBatch_TwoTia_CacheHit(benchmark::State& state) {
  env::EvalServiceConfig cfg;
  cfg.threads = 1;
  cfg.cache_capacity = 1024;
  env::SizingEnv env(circuits::make_two_tia(kTech), env::IndexMode::OneHot,
                     cfg);
  constexpr int kBatch = 32;
  Rng rng(7);
  std::vector<la::Mat> batch;
  batch.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) batch.push_back(env.random_actions(rng));
  benchmark::DoNotOptimize(env.step_batch(batch).front().fom);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step_batch(batch).front().fom);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EvalBatch_TwoTia_CacheHit)->Unit(benchmark::kMillisecond);

}  // namespace
