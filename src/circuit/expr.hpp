// Sizing expressions for textual circuit descriptions (.gcir files).
//
// An Expr is a compiled arithmetic expression over numeric literals and
// the technology symbols a circuit builder would read off its Technology
// argument (vdd, lmin, wmax, ...). Device parameters, source values,
// bounds, metric specs and expert sizings in a .gcir file are all Exprs,
// so one description file ports across nodes exactly like the C++
// builders do ("w=2*lmin" resizes with the node).
//
// Bit-parity ground rules (the .gcir ports are parity-tested against the
// hand-written builders):
//   * SI suffixes are expanded *textually* before strtod ("50u" ->
//     "50e-6"), so a literal produces the identical correctly-rounded
//     double a C++ source literal would — never a runtime multiply by a
//     power of ten.
//   * Evaluation replays the parsed operation tree with C++'s operator
//     precedence and left-associativity, so "50u*(vdd/1.8)" performs
//     exactly the multiplies and divides of `50e-6 * (tech.vdd / 1.8)`.
#pragma once

#include <string>
#include <vector>

#include "circuit/tech.hpp"

namespace gcnrl::circuit {

// Compiled expression: a postfix program evaluated with a small stack.
class Expr {
 public:
  // An empty (default-constructed) Expr evaluates to 0 and is used by
  // description structs as "field not given".
  Expr() = default;

  [[nodiscard]] bool empty() const { return ops_.empty(); }
  // Evaluates against a technology node's symbol values.
  [[nodiscard]] double eval(const Technology& tech) const;
  // The source text the expression was parsed from (diagnostics).
  [[nodiscard]] const std::string& text() const { return text_; }

  // Parses `text` (no whitespace allowed — .gcir tokenizes on spaces).
  // Grammar: expr := term (('+'|'-') term)*, term := factor (('*'|'/')
  // factor)*, factor := '-' factor | '(' expr ')' | number | symbol.
  // Numbers accept an optional SI suffix (T G M k m u n p f, plus 'K');
  // symbols are the Technology fields listed in expr_symbols(). Throws
  // std::invalid_argument on malformed input, with the offset of the
  // offending character in the message.
  static Expr parse(const std::string& text);

 private:
  enum class Op { Num, Sym, Add, Sub, Mul, Div, Neg };
  struct Step {
    Op op;
    double num = 0.0;  // Op::Num
    int sym = 0;       // Op::Sym: index into the symbol table
  };
  std::vector<Step> ops_;
  std::string text_;
  friend class ExprParser;
};

// The symbol vocabulary, in table order (for diagnostics and docs).
const std::vector<std::string>& expr_symbols();

}  // namespace gcnrl::circuit
