// Deterministic, fast pseudo-random number generation for the whole library.
//
// All stochastic components (optimizers, RL exploration, calibration
// sampling) take an explicit Rng& so experiments are reproducible from a
// single seed. The generator is xoshiro256++ (public-domain algorithm by
// Blackman & Vigna), which is far faster than std::mt19937_64 and has
// excellent statistical quality for simulation workloads.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace gcnrl {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // UniformRandomBitGenerator interface (usable with <random> if desired).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (cached spare value).
  double normal();
  double normal(double mean, double stddev);
  // Normal truncated to [lo, hi] by rejection (falls back to clamping after
  // a bounded number of rejections so pathological bounds cannot hang).
  double truncated_normal(double mean, double stddev, double lo, double hi);

  // Split off an independently-seeded child generator; used to give each
  // parallel run / component its own stream.
  Rng split();

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace gcnrl
