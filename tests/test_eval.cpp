// Tests for the batched evaluation engine: the LRU result cache, in-batch
// deduplication, serial-vs-thread-pool equivalence (the determinism
// guarantee behind GCNRL_EVAL_THREADS), FoM recomputation on cache hits,
// the shared-service / multi-circuit batch API behind the lockstep
// multi-seed sweeps, and an 8-thread run over a real benchmark circuit
// (the TSan target).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuits/benchmark_circuits.hpp"
#include "env/eval_service.hpp"
#include "env/sizing_env.hpp"
#include "opt/cma_es.hpp"
#include "rl/ddpg.hpp"
#include "rl/run_loop.hpp"
#include "sim/mna.hpp"
#include "test_helpers.hpp"

namespace env = gcnrl::env;
namespace circuit = gcnrl::circuit;
namespace la = gcnrl::la;
using gcnrl::Rng;

namespace {

// Simulator-free benchmark (mirror of test_env's synthetic): metrics are
// closed forms of the parameters, and designs with W below a threshold
// "fail to converge" so the sim-failure path is exercised too.
env::BenchmarkCircuit make_synthetic() {
  env::BenchmarkCircuit bc;
  bc.name = "Synthetic";
  bc.tech = circuit::make_technology("180nm");
  auto& nl = bc.netlist;
  const int a = nl.node("a");
  const int b = nl.node("b");
  nl.add_nmos("M1", a, b, 0, 0, 1e-6, 1e-6);
  nl.add_resistor("R1", a, b, 1e3);
  nl.add_capacitor("C1", b, 0, 1e-12);
  bc.space = circuit::DesignSpace::from_netlist(nl, bc.tech);
  env::FomSpec fom;
  fom.metrics = {
      {"speed", "Hz", +1.0, {}, {}, {}, true},
      {"cost", "W", -1.0, {}, {}, {}, true},
  };
  bc.fom = fom;
  bc.evaluate = [](const circuit::Netlist& sized) {
    const auto& mos = sized.mosfets()[0];
    const auto& res = sized.resistors()[0];
    if (mos.w < 0.4e-6) throw gcnrl::sim::SimError("did not converge");
    env::MetricMap m;
    m["speed"] = mos.w / mos.l;
    m["cost"] = mos.w * mos.m / res.r * 1e9;
    return m;
  };
  bc.human_expert.v = {{10e-6, 0.5e-6, 2}, {10e3, 0, 0}, {1e-12, 0, 0}};
  return bc;
}

env::EvalServiceConfig config(int threads, std::size_t cache) {
  env::EvalServiceConfig cfg;
  cfg.threads = threads;
  cfg.cache_capacity = cache;
  return cfg;
}

env::CachedEval cached(double v) {
  env::CachedEval c;
  c.sim_ok = true;
  c.metrics["m"] = v;
  return c;
}

}  // namespace

// --- EvalCache unit tests ------------------------------------------------

TEST(EvalCache, CapacityEvictionIsLeastRecentlyUsed) {
  env::EvalCache cache(2);
  cache.insert({1.0}, cached(1.0));
  cache.insert({2.0}, cached(2.0));
  ASSERT_NE(cache.find({1.0}), nullptr);  // touches {1.0}: {2.0} is now LRU
  cache.insert({3.0}, cached(3.0));       // evicts {2.0}
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find({1.0}), nullptr);
  EXPECT_EQ(cache.find({2.0}), nullptr);
  ASSERT_NE(cache.find({3.0}), nullptr);
  EXPECT_DOUBLE_EQ(cache.find({3.0})->metrics.at("m"), 3.0);
}

TEST(EvalCache, ZeroCapacityDisablesCaching) {
  env::EvalCache cache(0);
  cache.insert({1.0}, cached(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find({1.0}), nullptr);
}

TEST(EvalCache, ReinsertRefreshesValueWithoutGrowth) {
  env::EvalCache cache(4);
  cache.insert({1.0, 2.0}, cached(1.0));
  cache.insert({1.0, 2.0}, cached(9.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.find({1.0, 2.0})->metrics.at("m"), 9.0);
}

TEST(EvalCache, NanKeysAreWellBehaved) {
  // Key hashing AND equality are bitwise, so a NaN key (diverged agent)
  // behaves like any other: refreshes in place, evicts cleanly, and never
  // grows the map past capacity.
  env::EvalCache cache(2);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  cache.insert({nan}, cached(1.0));
  ASSERT_NE(cache.find({nan}), nullptr);  // bitwise: NaN key finds itself
  cache.insert({nan}, cached(2.0));
  EXPECT_EQ(cache.size(), 1u);  // refresh, not a duplicate entry
  EXPECT_DOUBLE_EQ(cache.find({nan})->metrics.at("m"), 2.0);
  cache.insert({1.0}, cached(3.0));
  cache.insert({2.0}, cached(4.0));  // evicts the NaN entry cleanly
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find({nan}), nullptr);
}

TEST(EvalCache, DistinctKeysWithEqualHashInputsStayDistinct) {
  // Keys of different lengths and near-identical contents must not alias.
  env::EvalCache cache(8);
  cache.insert({1.0, 2.0}, cached(1.0));
  cache.insert({1.0, 2.0, 0.0}, cached(2.0));
  cache.insert({1.0}, cached(3.0));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_DOUBLE_EQ(cache.find({1.0, 2.0})->metrics.at("m"), 1.0);
  EXPECT_DOUBLE_EQ(cache.find({1.0, 2.0, 0.0})->metrics.at("m"), 2.0);
  EXPECT_DOUBLE_EQ(cache.find({1.0})->metrics.at("m"), 3.0);
}

// --- quantization-collision behaviour ------------------------------------

TEST(EvalService, QuantizationCollisionsShareOneSimulation) {
  // Two raw action matrices that differ by less than the refinement grid
  // land on the same legal design, hence the same cache key: one sim.
  env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot, config(1, 64));
  Rng rng(11);
  const la::Mat a1 = e.random_actions(rng);
  la::Mat a2 = a1;
  a2(0, 0) += 1e-9;  // sub-grid nudge: refines onto the identical W
  const auto r1 = e.step(a1);
  const auto r2 = e.step(a2);
  ASSERT_EQ(e.bench().space.refine(a1).v[0][0],
            e.bench().space.refine(a2).v[0][0]);
  EXPECT_FALSE(r1.cached);
  EXPECT_TRUE(r2.cached);
  EXPECT_EQ(e.num_evals(), 2);
  EXPECT_EQ(e.num_sims(), 1);
  EXPECT_EQ(e.cache_hits(), 1);
  EXPECT_DOUBLE_EQ(r1.fom, r2.fom);
  EXPECT_EQ(r1.metrics, r2.metrics);
}

TEST(EvalService, InBatchDuplicatesAreDeduplicated) {
  env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot, config(4, 64));
  Rng rng(12);
  const la::Mat a = e.random_actions(rng);
  const std::vector<la::Mat> batch = {a, a, a};
  const auto rs = e.step_batch(batch);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(e.num_sims(), 1);
  EXPECT_EQ(e.cache_hits(), 2);
  EXPECT_FALSE(rs[0].cached);
  EXPECT_TRUE(rs[1].cached);
  EXPECT_TRUE(rs[2].cached);
  for (const auto& r : rs) {
    EXPECT_DOUBLE_EQ(r.fom, rs[0].fom);
    EXPECT_EQ(r.metrics, rs[0].metrics);
  }
}

TEST(EvalService, ZeroCacheCapacityForcesEverySimulation) {
  // "Cache=0 disables caching" means exactly that: even duplicate designs
  // inside one batch must each pay a simulation, so simulation-count cost
  // accounting stays exact.
  env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot, config(4, 0));
  Rng rng(12);
  const la::Mat a = e.random_actions(rng);
  const std::vector<la::Mat> batch = {a, a, a};
  const auto rs = e.step_batch(batch);
  EXPECT_EQ(e.num_sims(), 3);
  EXPECT_EQ(e.cache_hits(), 0);
  for (const auto& r : rs) {
    EXPECT_FALSE(r.cached);
    EXPECT_DOUBLE_EQ(r.fom, rs[0].fom);
  }
}

TEST(EvalService, SimFailuresAreCachedToo) {
  auto bc = make_synthetic();
  env::SizingEnv e(std::move(bc), env::IndexMode::OneHot, config(1, 64));
  // Force W to its minimum: below the synthetic convergence threshold.
  la::Mat a(3, circuit::kMaxActionDim, -1.0);
  const auto r1 = e.step(a);
  const auto r2 = e.step(a);
  EXPECT_FALSE(r1.sim_ok);
  EXPECT_DOUBLE_EQ(r1.fom, e.bench().fom.sim_fail_fom);
  EXPECT_TRUE(r2.cached);
  EXPECT_FALSE(r2.sim_ok);
  EXPECT_DOUBLE_EQ(r2.fom, r1.fom);
  EXPECT_EQ(e.num_sims(), 1);
}

TEST(EvalService, CacheHitsRecomputeFomFromCurrentSpec) {
  // The cache stores raw metrics, not FoMs: recalibrating the normalizers
  // must change the FoM served for a cached design.
  env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot, config(1, 64));
  const la::Mat a =
      e.bench().space.actions_from_params(e.bench().human_expert);
  const auto r1 = e.step(a);
  ASSERT_TRUE(r1.sim_ok);
  for (auto& md : e.bench().fom.metrics) {
    md.mmin = 1e-3;
    md.mmax = 1e12;
  }
  const auto r2 = e.step(a);
  EXPECT_TRUE(r2.cached);
  EXPECT_EQ(r2.metrics, r1.metrics);
  EXPECT_NE(r2.fom, r1.fom);
}

TEST(EvalService, StepMatchesStepBatch) {
  env::SizingEnv serial(make_synthetic(), env::IndexMode::OneHot,
                        config(1, 0));
  env::SizingEnv batched(make_synthetic(), env::IndexMode::OneHot,
                         config(4, 0));
  Rng rng(14);
  std::vector<la::Mat> batch;
  for (int i = 0; i < 16; ++i) batch.push_back(serial.random_actions(rng));
  const auto rs = batched.step_batch(batch);
  for (int i = 0; i < 16; ++i) {
    const auto r = serial.step(batch[static_cast<std::size_t>(i)]);
    EXPECT_DOUBLE_EQ(r.fom, rs[static_cast<std::size_t>(i)].fom);
    EXPECT_EQ(r.metrics, rs[static_cast<std::size_t>(i)].metrics);
  }
}

// --- serial vs parallel equivalence (the determinism guarantee) ----------

TEST(EvalService, RunRandomTraceIsThreadCountInvariant) {
  env::SizingEnv e1(make_synthetic(), env::IndexMode::OneHot, config(1, 256));
  env::SizingEnv e4(make_synthetic(), env::IndexMode::OneHot, config(4, 256));
  const auto r1 = gcnrl::rl::run_random(e1, 200, Rng(77));
  const auto r4 = gcnrl::rl::run_random(e4, 200, Rng(77));
  ASSERT_EQ(r1.best_trace.size(), r4.best_trace.size());
  for (std::size_t i = 0; i < r1.best_trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.best_trace[i], r4.best_trace[i]) << i;
  }
  EXPECT_DOUBLE_EQ(r1.best_fom, r4.best_fom);
  EXPECT_EQ(r1.evals, r4.evals);
  EXPECT_EQ(r1.sims, r4.sims);
  EXPECT_EQ(r1.cache_hits, r4.cache_hits);
  EXPECT_EQ(e1.num_sims(), e4.num_sims());
  EXPECT_EQ(r1.best_metrics, r4.best_metrics);
}

TEST(EvalService, RunOptimizerTraceIsThreadCountInvariant) {
  env::SizingEnv e1(make_synthetic(), env::IndexMode::OneHot, config(1, 256));
  env::SizingEnv e4(make_synthetic(), env::IndexMode::OneHot, config(4, 256));
  gcnrl::opt::CmaEs es1(e1.flat_dim(), Rng(99));
  gcnrl::opt::CmaEs es4(e4.flat_dim(), Rng(99));
  const auto r1 = gcnrl::rl::run_optimizer(e1, es1, 150);
  const auto r4 = gcnrl::rl::run_optimizer(e4, es4, 150);
  ASSERT_EQ(r1.best_trace.size(), r4.best_trace.size());
  for (std::size_t i = 0; i < r1.best_trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.best_trace[i], r4.best_trace[i]) << i;
  }
  EXPECT_DOUBLE_EQ(r1.best_fom, r4.best_fom);
  EXPECT_EQ(r1.evals, r4.evals);
  EXPECT_EQ(r1.sims, r4.sims);
  EXPECT_EQ(r1.cache_hits, r4.cache_hits);
  EXPECT_EQ(e1.num_sims(), e4.num_sims());
}

// Satellite check: best-so-far bookkeeping must not distinguish cached
// from fresh results — a best design found via a cache hit still records
// its actions and metrics.
TEST(EvalService, BestBookkeepingIncludesCacheHits) {
  env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot, config(1, 64));
  Rng rng(21);
  const la::Mat good = e.bench().space.actions_from_params(
      e.bench().human_expert);
  // Prime the cache with the good design, then replay it via run-loop
  // commit: the second occurrence is a cache hit yet must become best.
  const auto fresh = e.step(good);
  ASSERT_TRUE(fresh.sim_ok);
  gcnrl::rl::RunResult out;
  const auto hit = e.step(good);
  ASSERT_TRUE(hit.cached);
  out.commit(good, hit);
  EXPECT_EQ(out.evals, 1);
  EXPECT_EQ(out.cache_hits, 1);
  EXPECT_DOUBLE_EQ(out.best_fom, hit.fom);
  EXPECT_EQ(out.best_metrics, hit.metrics);
  ASSERT_EQ(out.best_actions.rows(), good.rows());
  for (int i = 0; i < good.rows(); ++i) {
    for (int j = 0; j < good.cols(); ++j) {
      EXPECT_DOUBLE_EQ(out.best_actions(i, j), good(i, j));
    }
  }
}

TEST(EvalService, CalibrateIsBatchedAndDeterministic) {
  env::SizingEnv e1(make_synthetic(), env::IndexMode::OneHot, config(1, 0));
  env::SizingEnv e4(make_synthetic(), env::IndexMode::OneHot, config(4, 0));
  Rng r1(5), r4(5);
  EXPECT_EQ(e1.calibrate(50, r1), e4.calibrate(50, r4));
  for (std::size_t i = 0; i < e1.bench().fom.metrics.size(); ++i) {
    EXPECT_DOUBLE_EQ(e1.bench().fom.metrics[i].mmin,
                     e4.bench().fom.metrics[i].mmin);
    EXPECT_DOUBLE_EQ(e1.bench().fom.metrics[i].mmax,
                     e4.bench().fom.metrics[i].mmax);
  }
}

// --- config plumbing ------------------------------------------------------

using gcnrl::testing::ScopedEnv;

TEST(EvalConfig, ReadsEnvironmentKnobs) {
  {
    ScopedEnv t("GCNRL_EVAL_THREADS", "4");
    ScopedEnv c("GCNRL_EVAL_CACHE", "128");
    ScopedEnv w("GCNRL_DC_WARM_START", "1");
    const auto cfg = env::eval_config_from_env();
    EXPECT_EQ(cfg.threads, 4);
    EXPECT_EQ(cfg.cache_capacity, 128u);
    EXPECT_TRUE(cfg.dc_warm_start);
  }
  {
    ScopedEnv t("GCNRL_EVAL_THREADS", nullptr);
    ScopedEnv c("GCNRL_EVAL_CACHE", nullptr);
    ScopedEnv w("GCNRL_DC_WARM_START", nullptr);
    const auto dflt = env::eval_config_from_env();
    EXPECT_EQ(dflt.threads, 1);  // default: serial
    EXPECT_EQ(dflt.cache_capacity, 4096u);
    EXPECT_FALSE(dflt.dc_warm_start);  // history-dependent: opt-in only
  }
}

// Cross-design DC warm start (EvalServiceConfig::dc_warm_start) on a real
// circuit: results must stay within solver tolerance of the cold path —
// Newton converges to the same operating point from either start — and,
// because banks are snapshotted at submission and committed in submission
// order, the warm mode itself must be bit-identical across thread counts.
TEST(EvalService, DcWarmStartMatchesColdAndIsThreadCountInvariant) {
  const auto tech = circuit::make_technology("180nm");
  // Optimizer-like trajectory: perturbations around one base design, fed
  // first one-by-one (bank handover across batches) and then as a single
  // batch (every fresh job shares the pre-batch snapshot).
  const auto run = [&](int threads, bool warm) {
    env::EvalServiceConfig cfg;
    cfg.threads = threads;
    cfg.cache_capacity = 0;  // every design simulates
    cfg.dc_warm_start = warm;
    env::SizingEnv e(gcnrl::circuits::make_two_tia(tech),
                     env::IndexMode::OneHot, cfg);
    Rng rng(31);
    const la::Mat base = e.random_actions(rng);
    std::vector<la::Mat> traj(6, base);
    for (auto& a : traj) {
      for (int i = 0; i < a.rows(); ++i) {
        for (int j = 0; j < a.cols(); ++j) a(i, j) += 0.05 * rng.normal();
      }
    }
    std::vector<env::EvalResult> out;
    for (int k = 0; k < 3; ++k) out.push_back(e.step(traj[k]));
    const std::vector<la::Mat> rest(traj.begin() + 3, traj.end());
    for (auto& r : e.step_batch(rest)) out.push_back(std::move(r));
    return out;
  };

  const auto cold = run(1, false);
  const auto warm1 = run(1, true);
  const auto warm4 = run(4, true);
  ASSERT_EQ(cold.size(), warm1.size());
  ASSERT_EQ(warm1.size(), warm4.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].sim_ok, warm1[i].sim_ok) << i;
    for (const auto& [name, v] : cold[i].metrics) {
      const auto it = warm1[i].metrics.find(name);
      ASSERT_NE(it, warm1[i].metrics.end()) << name;
      EXPECT_NEAR(v, it->second, 1e-2 * std::max(1.0, std::fabs(v)))
          << name << " design " << i;
    }
    // Warm mode vs itself across thread counts: bitwise.
    EXPECT_EQ(warm1[i].fom, warm4[i].fom) << i;
    EXPECT_EQ(warm1[i].metrics, warm4[i].metrics) << i;
  }
}

// A SizingEnv constructed with default arguments must follow the knob —
// this is the test the test_eval_threads4 CTest job (GCNRL_EVAL_THREADS=4)
// exists for: it runs once on the serial default and once against the
// thread-pool backend through the public env-var path.
TEST(EvalConfig, DefaultConstructedEnvFollowsEnvKnob) {
  const char* raw = std::getenv("GCNRL_EVAL_THREADS");
  const int expected = raw != nullptr ? std::atoi(raw) : 1;
  env::SizingEnv e(make_synthetic());
  EXPECT_EQ(e.eval_threads(), expected);
  Rng rng(41);
  std::vector<la::Mat> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(e.random_actions(rng));
  const auto rs = e.step_batch(batch);  // drive the configured backend
  EXPECT_EQ(rs.size(), batch.size());
  EXPECT_EQ(e.num_evals(), 8);
}

// --- shared service / multi-circuit batches / lockstep -------------------

TEST(EvalService, SharedCacheHitAccountingAcrossSeedEnvs) {
  // Two seed-envs of the same circuit on one service: a design simulated
  // through one env is a cache hit through the other. Service-wide totals
  // aggregate both, while each env's own counters attribute exactly its
  // requests — the sim to the env whose request ran it, the hit to the
  // env that was served from the cache.
  const auto svc = std::make_shared<env::EvalService>(config(1, 64));
  env::SizingEnv a(make_synthetic(), env::IndexMode::OneHot, svc);
  env::SizingEnv b(make_synthetic(), env::IndexMode::OneHot, svc);
  Rng rng(51);
  const la::Mat x = a.random_actions(rng);
  const auto ra = a.step(x);
  const auto rb = b.step(x);
  EXPECT_FALSE(ra.cached);
  EXPECT_TRUE(rb.cached);
  EXPECT_DOUBLE_EQ(ra.fom, rb.fom);
  EXPECT_EQ(ra.metrics, rb.metrics);
  EXPECT_EQ(svc->requested(), 2);
  EXPECT_EQ(svc->sims(), 1);
  EXPECT_EQ(svc->cache_hits(), 1);
  // Per-env attribution: num_evals - num_sims = cache_hits holds per env.
  EXPECT_EQ(a.num_evals(), 1);
  EXPECT_EQ(a.num_sims(), 1);
  EXPECT_EQ(a.cache_hits(), 0);
  EXPECT_EQ(b.num_evals(), 1);
  EXPECT_EQ(b.num_sims(), 0);
  EXPECT_EQ(b.cache_hits(), 1);
}

TEST(EvalService, MultiBatchAppliesEachJobsOwnFomSpec) {
  // Same circuit identity, different FoM specs: one simulation, two FoMs.
  auto bc_plain = make_synthetic();
  auto bc_heavy = make_synthetic();
  bc_heavy.fom.set_weight("speed", 10.0);
  env::EvalService svc(config(2, 64));
  // Human-expert design: guaranteed to simulate (W above the synthetic
  // convergence threshold), so the two FoMs must genuinely differ.
  const la::Mat x = bc_plain.space.actions_from_params(bc_plain.human_expert);
  const std::vector<env::EvalJob> jobs = {{&bc_plain, &x}, {&bc_heavy, &x}};
  const auto rs = svc.eval_batch_multi(jobs);
  ASSERT_EQ(rs.size(), 2u);
  ASSERT_TRUE(rs[0].sim_ok);
  EXPECT_EQ(rs[0].metrics, rs[1].metrics);  // raw metrics shared
  EXPECT_NE(rs[0].fom, rs[1].fom);          // FoM applied per job
  EXPECT_EQ(svc.sims(), 1);                 // in-batch dedupe across jobs
  EXPECT_EQ(svc.cache_hits(), 1);
}

TEST(EvalService, DistinctCircuitsNeverAliasInTheSharedCache) {
  // Two circuits with different identities but identical action vectors:
  // the circuit tag keeps their cache entries apart.
  auto bc_a = make_synthetic();
  auto bc_b = make_synthetic();
  bc_b.name = "Synthetic-B";
  bc_b.evaluate = [](const gcnrl::circuit::Netlist& sized) {
    const auto& mos = sized.mosfets()[0];
    env::MetricMap m;
    m["speed"] = 2.0 * mos.w / mos.l;  // deliberately different metrics
    m["cost"] = 1.0;
    return m;
  };
  env::EvalService svc(config(1, 64));
  const la::Mat x = bc_a.space.actions_from_params(bc_a.human_expert);
  const std::vector<env::EvalJob> jobs = {{&bc_a, &x}, {&bc_b, &x}};
  const auto rs = svc.eval_batch_multi(jobs);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(svc.sims(), 2);  // no dedupe across distinct circuit tags
  EXPECT_EQ(svc.cache_hits(), 0);
  ASSERT_TRUE(rs[0].sim_ok);
  ASSERT_TRUE(rs[1].sim_ok);
  EXPECT_NE(rs[0].metrics, rs[1].metrics);
}

namespace {

// One serial run_ddpg per seed, each on its own private env — the
// reference the lockstep engine must reproduce bit-for-bit.
std::vector<gcnrl::rl::RunResult> serial_ddpg_runs(
    const gcnrl::rl::DdpgConfig& cfg, const std::vector<std::uint64_t>& seeds,
    int steps) {
  std::vector<gcnrl::rl::RunResult> out;
  for (const std::uint64_t seed : seeds) {
    env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot,
                     config(1, 256));
    gcnrl::rl::DdpgAgent agent(e.state(), e.adjacency(), e.kinds(), cfg,
                               Rng(seed));
    out.push_back(gcnrl::rl::run_ddpg(e, agent, steps));
  }
  return out;
}

// A DDPG config small enough for the fast label (the default 7-layer GCN
// with hidden 32 is overkill for the 3-component synthetic circuit).
gcnrl::rl::DdpgConfig tiny_ddpg_config() {
  gcnrl::rl::DdpgConfig cfg;
  cfg.hidden = 8;
  cfg.gcn_layers = 2;
  cfg.batch = 8;
  cfg.warmup = 10;
  cfg.updates_per_step = 2;
  return cfg;
}

void expect_lockstep_matches_serial(int threads) {
  const std::vector<std::uint64_t> seeds = {1000, 8919, 16838};
  const int steps = 30;
  const gcnrl::rl::DdpgConfig cfg = tiny_ddpg_config();
  const auto serial = serial_ddpg_runs(cfg, seeds, steps);

  const auto svc =
      std::make_shared<env::EvalService>(config(threads, 256));
  std::vector<std::unique_ptr<env::SizingEnv>> envs;
  std::vector<std::unique_ptr<gcnrl::rl::DdpgAgent>> agents;
  std::vector<env::SizingEnv*> env_ptrs;
  std::vector<gcnrl::rl::DdpgAgent*> agent_ptrs;
  for (const std::uint64_t seed : seeds) {
    envs.push_back(std::make_unique<env::SizingEnv>(
        make_synthetic(), env::IndexMode::OneHot, svc));
    agents.push_back(std::make_unique<gcnrl::rl::DdpgAgent>(
        envs.back()->state(), envs.back()->adjacency(), envs.back()->kinds(),
        cfg, Rng(seed)));
    env_ptrs.push_back(envs.back().get());
    agent_ptrs.push_back(agents.back().get());
  }
  const auto lockstep =
      gcnrl::rl::run_ddpg_lockstep(env_ptrs, agent_ptrs, steps);

  ASSERT_EQ(lockstep.size(), serial.size());
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    ASSERT_EQ(lockstep[s].best_trace.size(), serial[s].best_trace.size());
    for (std::size_t i = 0; i < serial[s].best_trace.size(); ++i) {
      // Bit-identical, not just close: exact double equality.
      EXPECT_EQ(lockstep[s].best_trace[i], serial[s].best_trace[i])
          << "seed " << seeds[s] << " step " << i;
    }
    EXPECT_EQ(lockstep[s].best_fom, serial[s].best_fom);
    EXPECT_EQ(lockstep[s].best_metrics, serial[s].best_metrics);
    EXPECT_EQ(lockstep[s].evals, serial[s].evals);
  }
}

}  // namespace

// The acceptance criterion of the lockstep engine: per-seed best_trace
// vectors bit-identical to serial run_ddpg, at 1 and at 4 eval threads.
TEST(Lockstep, DdpgTracesMatchSerialAtOneThread) {
  expect_lockstep_matches_serial(1);
}

TEST(Lockstep, DdpgTracesMatchSerialAtFourThreads) {
  expect_lockstep_matches_serial(4);
}

// Regression: pairs on different services used to throw; now they are
// transparently grouped by service and the groups run back-to-back, with
// per-pair traces still bit-identical to serial runs.
TEST(Lockstep, GroupsPairsByServiceInsteadOfThrowing) {
  const std::vector<std::uint64_t> seeds = {1000, 8919, 16838};
  const int steps = 20;
  const gcnrl::rl::DdpgConfig cfg = tiny_ddpg_config();
  const auto serial = serial_ddpg_runs(cfg, seeds, steps);

  // Three pairs interleaved across TWO services (0 and 2 share, 1 is
  // alone), so the grouping is exercised in non-contiguous pair order.
  const auto svc_a = std::make_shared<env::EvalService>(config(1, 256));
  const auto svc_b = std::make_shared<env::EvalService>(config(1, 256));
  std::vector<std::unique_ptr<env::SizingEnv>> envs;
  std::vector<std::unique_ptr<gcnrl::rl::DdpgAgent>> agents;
  std::vector<env::SizingEnv*> env_ptrs;
  std::vector<gcnrl::rl::DdpgAgent*> agent_ptrs;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    envs.push_back(std::make_unique<env::SizingEnv>(
        make_synthetic(), env::IndexMode::OneHot, s == 1 ? svc_b : svc_a));
    agents.push_back(std::make_unique<gcnrl::rl::DdpgAgent>(
        envs.back()->state(), envs.back()->adjacency(), envs.back()->kinds(),
        cfg, Rng(seeds[s])));
    env_ptrs.push_back(envs.back().get());
    agent_ptrs.push_back(agents.back().get());
  }
  const auto lockstep =
      gcnrl::rl::run_ddpg_lockstep(env_ptrs, agent_ptrs, steps);
  ASSERT_EQ(lockstep.size(), serial.size());
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    ASSERT_EQ(lockstep[s].best_trace.size(), serial[s].best_trace.size());
    for (std::size_t i = 0; i < serial[s].best_trace.size(); ++i) {
      EXPECT_EQ(lockstep[s].best_trace[i], serial[s].best_trace[i])
          << "seed " << seeds[s] << " step " << i;
    }
    EXPECT_EQ(lockstep[s].best_fom, serial[s].best_fom);
    EXPECT_EQ(lockstep[s].sims, serial[s].sims);
  }
}

TEST(Lockstep, RejectsMismatchedSpans) {
  env::SizingEnv a(make_synthetic(), env::IndexMode::OneHot, config(1, 16));
  const gcnrl::rl::DdpgConfig cfg = tiny_ddpg_config();
  gcnrl::rl::DdpgAgent aa(a.state(), a.adjacency(), a.kinds(), cfg, Rng(1));
  gcnrl::rl::DdpgAgent ab(a.state(), a.adjacency(), a.kinds(), cfg, Rng(2));
  std::vector<env::SizingEnv*> envs = {&a};
  std::vector<gcnrl::rl::DdpgAgent*> two = {&aa, &ab};
  EXPECT_THROW(gcnrl::rl::run_ddpg_lockstep(envs, two, 1),
               std::invalid_argument);
  std::vector<gcnrl::rl::DdpgAgent*> one = {&aa};
  const std::vector<int> bad_steps = {1, 2};
  EXPECT_THROW(gcnrl::rl::run_ddpg_lockstep(envs, one, bad_steps),
               std::invalid_argument);
}

// Heterogeneous step budgets: a finished pair must drop out of later
// batches instead of padding them, so the service runs exactly the sum of
// the per-pair budgets (cache disabled makes sims == evaluations).
TEST(Lockstep, ExhaustedPairsDropOutOfBatches) {
  const std::vector<std::uint64_t> seeds = {1000, 8919, 16838};
  const std::vector<int> steps = {12, 4, 8};
  const gcnrl::rl::DdpgConfig cfg = tiny_ddpg_config();

  const auto svc = std::make_shared<env::EvalService>(config(2, 0));
  std::vector<std::unique_ptr<env::SizingEnv>> envs;
  std::vector<std::unique_ptr<gcnrl::rl::DdpgAgent>> agents;
  std::vector<env::SizingEnv*> env_ptrs;
  std::vector<gcnrl::rl::DdpgAgent*> agent_ptrs;
  for (const std::uint64_t seed : seeds) {
    envs.push_back(std::make_unique<env::SizingEnv>(
        make_synthetic(), env::IndexMode::OneHot, svc));
    agents.push_back(std::make_unique<gcnrl::rl::DdpgAgent>(
        envs.back()->state(), envs.back()->adjacency(), envs.back()->kinds(),
        cfg, Rng(seed)));
    env_ptrs.push_back(envs.back().get());
    agent_ptrs.push_back(agents.back().get());
  }
  const auto runs = gcnrl::rl::run_ddpg_lockstep(env_ptrs, agent_ptrs, steps);
  ASSERT_EQ(runs.size(), steps.size());
  for (std::size_t s = 0; s < steps.size(); ++s) {
    EXPECT_EQ(runs[s].evals, steps[s]);
    EXPECT_EQ(runs[s].best_trace.size(),
              static_cast<std::size_t>(steps[s]));
  }
  // 12 + 4 + 8 simulations, NOT 3 * 12: no padding by finished pairs
  // (cache disabled, so requested == sims == committed evaluations).
  EXPECT_EQ(svc->sims(), 24);
  EXPECT_EQ(svc->requested(), 24);
  // Per-pair traces equal serial runs of the same per-pair budget.
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    const auto serial = serial_ddpg_runs(cfg, {seeds[s]}, steps[s]);
    ASSERT_EQ(runs[s].best_trace.size(), serial[0].best_trace.size());
    for (std::size_t i = 0; i < serial[0].best_trace.size(); ++i) {
      EXPECT_EQ(runs[s].best_trace[i], serial[0].best_trace[i])
          << "seed " << seeds[s] << " step " << i;
    }
  }
}

namespace {

// Optimizer stub whose population dries up after two ask() calls — the
// regression shape for the run_optimizer infinite-loop fix.
class DryingOptimizer final : public gcnrl::opt::Optimizer {
 public:
  explicit DryingOptimizer(int dim) : dim_(dim) {}
  std::vector<std::vector<double>> ask() override {
    if (asks_ >= 2) return {};
    ++asks_;
    return {std::vector<double>(static_cast<std::size_t>(dim_),
                                0.1 * asks_)};
  }
  void tell(const std::vector<std::vector<double>>&,
            const std::vector<double>&) override {}
  [[nodiscard]] int dim() const override { return dim_; }

 private:
  int dim_;
  int asks_ = 0;
};

}  // namespace

TEST(RunOptimizer, TerminatesWhenAskReturnsEmptyPopulation) {
  // Before the fix this looped forever: an empty population never advances
  // the step budget.
  env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot, config(1, 16));
  DryingOptimizer stub(e.flat_dim());
  const auto r = gcnrl::rl::run_optimizer(e, stub, 100);
  EXPECT_EQ(r.evals, 2);
  EXPECT_EQ(r.best_trace.size(), 2u);
}

namespace {

// Optimizer stub replaying a scripted sequence of points, one ask() per
// point — lets the sim-budget tests control exactly which designs repeat.
class ScriptedOptimizer final : public gcnrl::opt::Optimizer {
 public:
  ScriptedOptimizer(int dim, std::vector<std::vector<double>> script)
      : dim_(dim), script_(std::move(script)) {}
  std::vector<std::vector<double>> ask() override {
    if (next_ >= script_.size()) return {};
    return {script_[next_++]};
  }
  void tell(const std::vector<std::vector<double>>&,
            const std::vector<double>&) override {}
  [[nodiscard]] int dim() const override { return dim_; }

 private:
  int dim_;
  std::vector<std::vector<double>> script_;
  std::size_t next_ = 0;
};

}  // namespace

// The simulated-cost budget counts first-in-run distinct designs;
// revisits of a design the run already evaluated are free.
TEST(RunOptimizer, SimBudgetChargesDistinctDesignsOnly) {
  env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot, config(1, 64));
  const std::size_t d = static_cast<std::size_t>(e.flat_dim());
  const std::vector<double> a(d, 0.2), b(d, 0.5), c(d, 0.8);
  {
    // a, b, a(free repeat), c: the repeat must not consume budget, so a
    // budget of 3 sims admits all four evaluations.
    ScriptedOptimizer stub(e.flat_dim(), {a, b, a, c});
    const auto r = gcnrl::rl::run_optimizer(e, stub, 100, 3);
    EXPECT_EQ(r.evals, 4);
    EXPECT_EQ(r.sims, 3);
  }
  {
    // Same script, budget 2: the run stops as soon as a and b are charged
    // — the budget check runs before each ask(), so the free repeat of a
    // is never requested once the budget is exhausted.
    env::SizingEnv e2(make_synthetic(), env::IndexMode::OneHot,
                      config(1, 64));
    ScriptedOptimizer stub(e2.flat_dim(), {a, b, a, c});
    const auto r = gcnrl::rl::run_optimizer(e2, stub, 100, 2);
    EXPECT_EQ(r.sims, 2);
    EXPECT_EQ(r.evals, 2);
  }
}

// The charge is a pure function of the run's own proposals: a run whose
// every result is served by a cache another run warmed is charged the
// same simulated cost as the run that paid for the simulations.
TEST(RunOptimizer, SimChargeIsIndependentOfSharedCacheWarmth) {
  const auto svc = std::make_shared<env::EvalService>(config(1, 4096));
  env::SizingEnv cold(make_synthetic(), env::IndexMode::OneHot, svc);
  env::SizingEnv warm(make_synthetic(), env::IndexMode::OneHot, svc);
  gcnrl::opt::CmaEs es1(cold.flat_dim(), Rng(99));
  gcnrl::opt::CmaEs es2(warm.flat_dim(), Rng(99));
  const auto r1 = gcnrl::rl::run_optimizer(cold, es1, 60);
  const auto r2 = gcnrl::rl::run_optimizer(warm, es2, 60);
  // Identical seed, identical FoMs -> identical proposals: the second run
  // is served entirely from the first run's cache entries...
  EXPECT_EQ(warm.num_sims(), 0);
  EXPECT_EQ(r2.cache_hits, r2.evals);
  // ...yet its charged simulated cost (and trace) match the cold run.
  EXPECT_EQ(r1.sims, r2.sims);
  EXPECT_GT(r2.sims, 0);
  ASSERT_EQ(r1.best_trace.size(), r2.best_trace.size());
  for (std::size_t i = 0; i < r1.best_trace.size(); ++i) {
    EXPECT_EQ(r1.best_trace[i], r2.best_trace[i]) << i;
  }
}

namespace {

// Serial reference for the lockstep black-box driver: one run_optimizer
// per seed, each on its own private env/service.
std::vector<gcnrl::rl::RunResult> serial_cmaes_runs(
    const std::vector<std::uint64_t>& seeds, int steps, long max_sims) {
  std::vector<gcnrl::rl::RunResult> out;
  for (const std::uint64_t seed : seeds) {
    env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot,
                     config(1, 256));
    gcnrl::opt::CmaEs es(e.flat_dim(), Rng(seed));
    out.push_back(gcnrl::rl::run_optimizer(e, es, steps, max_sims));
  }
  return out;
}

void expect_optimizer_lockstep_matches_serial(int threads) {
  const std::vector<std::uint64_t> seeds = {1000, 8919, 16838};
  const int steps = 100;
  const auto serial = serial_cmaes_runs(seeds, steps, -1);

  const auto svc = std::make_shared<env::EvalService>(config(threads, 256));
  std::vector<std::unique_ptr<env::SizingEnv>> envs;
  std::vector<std::unique_ptr<gcnrl::opt::CmaEs>> opts;
  std::vector<gcnrl::rl::OptimizerPair> pairs;
  for (const std::uint64_t seed : seeds) {
    envs.push_back(std::make_unique<env::SizingEnv>(
        make_synthetic(), env::IndexMode::OneHot, svc));
    opts.push_back(std::make_unique<gcnrl::opt::CmaEs>(
        envs.back()->flat_dim(), Rng(seed)));
    pairs.push_back(gcnrl::rl::OptimizerPair{envs.back().get(),
                                             opts.back().get(), steps, -1});
  }
  const auto lockstep = gcnrl::rl::run_optimizer_lockstep(pairs);

  ASSERT_EQ(lockstep.size(), serial.size());
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    ASSERT_EQ(lockstep[s].best_trace.size(), serial[s].best_trace.size());
    for (std::size_t i = 0; i < serial[s].best_trace.size(); ++i) {
      // Bit-identical, not just close: exact double equality.
      EXPECT_EQ(lockstep[s].best_trace[i], serial[s].best_trace[i])
          << "seed " << seeds[s] << " eval " << i;
    }
    EXPECT_EQ(lockstep[s].best_fom, serial[s].best_fom);
    EXPECT_EQ(lockstep[s].best_metrics, serial[s].best_metrics);
    EXPECT_EQ(lockstep[s].evals, serial[s].evals);
    EXPECT_EQ(lockstep[s].sims, serial[s].sims);
  }
}

}  // namespace

// The acceptance criterion of the lockstep black-box driver: per-seed
// traces and charged simulated costs bit-identical to serial
// run_optimizer, at 1 and at 4 eval threads.
TEST(OptimizerLockstep, CmaEsTracesMatchSerialAtOneThread) {
  expect_optimizer_lockstep_matches_serial(1);
}

TEST(OptimizerLockstep, CmaEsTracesMatchSerialAtFourThreads) {
  expect_optimizer_lockstep_matches_serial(4);
}

// Heterogeneous simulated-cost budgets: an exhausted pair drops out of
// later rounds (no padding), and every pair still matches its own serial
// run under the identical budget.
TEST(OptimizerLockstep, ExhaustedPairsDropOutAndSimsShrink) {
  const std::vector<std::uint64_t> seeds = {1000, 8919, 16838};
  const std::vector<long> budgets = {40, 12, 24};
  const int steps = 1000;

  const auto svc = std::make_shared<env::EvalService>(config(1, 0));
  std::vector<std::unique_ptr<env::SizingEnv>> envs;
  std::vector<std::unique_ptr<gcnrl::opt::CmaEs>> opts;
  std::vector<gcnrl::rl::OptimizerPair> pairs;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    envs.push_back(std::make_unique<env::SizingEnv>(
        make_synthetic(), env::IndexMode::OneHot, svc));
    opts.push_back(std::make_unique<gcnrl::opt::CmaEs>(
        envs.back()->flat_dim(), Rng(seeds[s])));
    pairs.push_back(gcnrl::rl::OptimizerPair{
        envs.back().get(), opts.back().get(), steps, budgets[s]});
  }
  const auto runs = gcnrl::rl::run_optimizer_lockstep(pairs);
  ASSERT_EQ(runs.size(), seeds.size());
  long sum_evals = 0;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    EXPECT_EQ(runs[s].sims, budgets[s]);
    sum_evals += runs[s].evals;
    const auto serial = serial_cmaes_runs({seeds[s]}, steps, budgets[s]);
    ASSERT_EQ(runs[s].best_trace.size(), serial[0].best_trace.size());
    for (std::size_t i = 0; i < serial[0].best_trace.size(); ++i) {
      EXPECT_EQ(runs[s].best_trace[i], serial[0].best_trace[i])
          << "seed " << seeds[s] << " eval " << i;
    }
    EXPECT_EQ(runs[s].evals, serial[0].evals);
  }
  // Cache disabled: every submitted job simulates, so the service ran
  // exactly the evaluations the pairs committed — exhausted pairs padded
  // no batches with extra simulations.
  EXPECT_EQ(svc->sims(), sum_evals);
  EXPECT_EQ(svc->requested(), sum_evals);
}

// --- real circuit through the thread pool (TSan coverage) ----------------

TEST(EvalService, TwoTiaEightThreadsMatchesSerial) {
  const auto tech = circuit::make_technology("180nm");
  env::SizingEnv serial(gcnrl::circuits::make_two_tia(tech),
                        env::IndexMode::OneHot, config(1, 0));
  env::SizingEnv pool(gcnrl::circuits::make_two_tia(tech),
                      env::IndexMode::OneHot, config(8, 0));
  Rng rng(31);
  std::vector<la::Mat> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(serial.random_actions(rng));
  const auto rs = serial.step_batch(batch);
  const auto rp = pool.step_batch(batch);
  ASSERT_EQ(rs.size(), rp.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].sim_ok, rp[i].sim_ok);
    EXPECT_DOUBLE_EQ(rs[i].fom, rp[i].fom);
    EXPECT_EQ(rs[i].metrics, rp[i].metrics);
  }
}
