// The four benchmark circuits of the paper (Fig. 6), rebuilt as
// self-contained BenchmarkCircuit bundles: netlist + design space +
// matching groups + FoM definition + measurement plan + a hand-crafted
// "human expert" reference sizing.
//
// Exact contest netlists (Stanford EE214B, [6][7][25]) are not public;
// these are architecture-faithful equivalents with the same metric sets —
// see DESIGN.md "Substitutions". All builders are parameterized by
// technology node, which is what enables the Table IV porting experiments.
//
// Metric units are SI throughout (Hz, ohm, W, V/sqrt(Hz) or A/sqrt(Hz),
// seconds, dB for the ratio metrics); the bench printers convert to the
// paper's display units.
#pragma once

#include "env/sizing_env.hpp"

namespace gcnrl::circuits {

// Two-stage transimpedance amplifier (shunt-feedback CS stage + source
// follower; Fig. 6a analogue). FoM metrics: bw(+), gain(+), power(-),
// noise(-), peaking(-); carries the paper's hard spec.
env::BenchmarkCircuit make_two_tia(const circuit::Technology& tech);

// Two-stage fully-differential voltage amplifier with Miller compensation
// and CMFB, capacitor-ratio closed loop (Fig. 6b analogue). FoM metrics:
// bw(+), cpm(+), dpm(+), power(-), noise(-), gain(+).
env::BenchmarkCircuit make_two_volt(const circuit::Technology& tech);

// Three-stage differential transimpedance amplifier (Fig. 6c analogue).
// FoM metrics: bw(+), gain(+), power(-).
env::BenchmarkCircuit make_three_tia(const circuit::Technology& tech);

// Low-dropout regulator (Fig. 6d analogue). FoM metrics: tl_up(-),
// tl_dn(-), lr(+), tv_up(-), tv_dn(-), psrr(+), power(-).
env::BenchmarkCircuit make_ldo(const circuit::Technology& tech);

// Name-keyed construction, backed by the api::CircuitRegistry (defined in
// src/api/registry.cpp): the four paper benchmarks are pre-registered
// under the names of the paper's tables, and circuits registered through
// api::register_circuit become reachable here too. Unknown names throw
// std::invalid_argument listing every registered name. benchmark_names()
// is deterministic: the four built-ins in the order above, then user
// circuits in registration order.
env::BenchmarkCircuit make_benchmark(const std::string& name,
                                     const circuit::Technology& tech);
std::vector<std::string> benchmark_names();

}  // namespace gcnrl::circuits
