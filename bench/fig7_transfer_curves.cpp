// Figure 7 reproduction: learning curves of knowledge transfer from
// 180 nm to each target node on Three-TIA, transfer vs no-transfer, with
// identical warm-up seeds (the curves coincide during warm-up and split
// afterwards, exactly as in the paper's figure). Emits fig7_<node>.csv.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

int main() {
  const BenchConfig cfg = bench_config();
  Rng rng(2024);
  const auto tech180 = circuit::make_technology("180nm");
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());

  std::printf("Fig 7: Three-TIA transfer curves (pretrain=%d, budget=%d)\n%s\n\n",
              cfg.steps, cfg.transfer_steps, bench::eval_banner().c_str());

  bench::EnvFactory factory180("Three-TIA", tech180, env::IndexMode::OneHot,
                               cfg.calib_samples, rng, svc);
  auto env180 = factory180.make();
  rl::DdpgConfig pre_cfg;
  pre_cfg.warmup = cfg.warmup;
  rl::DdpgAgent pretrained(env180->state(), env180->adjacency(),
                           env180->kinds(), pre_cfg, Rng(500));
  rl::run_ddpg(*env180, pretrained, cfg.steps);
  std::printf("  pretrained at 180nm\n");

  for (const std::string node : {"45nm", "65nm", "130nm", "250nm"}) {
    bench::EnvFactory factory("Three-TIA", circuit::make_technology(node),
                              env::IndexMode::OneHot, cfg.calib_samples,
                              rng, svc);
    rl::DdpgConfig t_cfg;
    t_cfg.warmup = cfg.transfer_warmup;
    // Both modes advance in lockstep (identical Rng(901) warm-up streams,
    // two simulations per step on the shared service).
    std::vector<bench::LockstepSpec> specs;
    for (const bool transfer : {false, true}) {
      specs.push_back(bench::LockstepSpec{
          t_cfg, Rng(901), transfer ? &pretrained : nullptr, {}});
    }
    bench::LockstepGroup group(factory, std::move(specs));
    auto runs = group.run(cfg.transfer_steps);
    const rl::RunResult none = std::move(runs[0]);
    const rl::RunResult xfer = std::move(runs[1]);
    const std::string path = "fig7_" + node + ".csv";
    CsvWriter csv(path);
    csv.row({"step", "no_transfer", "transfer"});
    for (std::size_t i = 0; i < none.best_trace.size(); ++i) {
      csv.row({std::to_string(i + 1),
               TextTable::num(none.best_trace[i], 6),
               TextTable::num(xfer.best_trace[i], 6)});
    }
    std::printf("  %s: no-transfer %.3f vs transfer %.3f -> %s\n",
                node.c_str(), none.best_fom, xfer.best_fom, path.c_str());
    std::fflush(stdout);
  }
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper shape: identical warm-up, then the transfer curve climbs\n"
      "faster and converges higher on every node.\n");
  return 0;
}
