// Exploration noise: truncated normal with exponential decay (the paper's
// "truncated norm noise with exponential decay" N in Algorithm 1).
//
// Each action entry is resampled from a normal centered on the policy
// output, truncated to the legal [-1, 1] action interval; sigma decays by
// a fixed factor per exploration episode down to a floor.
#pragma once

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace gcnrl::rl {

class TruncatedNormalNoise {
 public:
  TruncatedNormalNoise(double sigma0, double decay, double sigma_min)
      : sigma0_(sigma0), decay_(decay), sigma_min_(sigma_min) {}

  // Sigma after `explore_episode` decay applications.
  [[nodiscard]] double sigma(int explore_episode) const;

  // Perturb a full action matrix in place-free fashion.
  [[nodiscard]] la::Mat apply(const la::Mat& actions, int explore_episode,
                              Rng& rng) const;

 private:
  double sigma0_;
  double decay_;
  double sigma_min_;
};

}  // namespace gcnrl::rl
