// Integration tests over the four benchmark circuits: construction,
// topology-graph sanity, human-expert evaluation, determinism, cross-node
// builds, and randomized robustness of the full evaluate pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "circuit/graph.hpp"
#include "circuits/benchmark_circuits.hpp"
#include "env/sizing_env.hpp"
#include "sim/simulator.hpp"

using namespace gcnrl;
namespace sim = gcnrl::sim;

namespace {

const auto kTech = circuit::make_technology("180nm");

}  // namespace

class BenchmarkCircuitTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkCircuitTest, BuildsWithConnectedGraph) {
  const auto bc = circuits::make_benchmark(GetParam(), kTech);
  EXPECT_GT(bc.netlist.num_design_components(), 5);
  const auto adj = circuit::build_adjacency(bc.netlist);
  EXPECT_EQ(circuit::connected_components(adj), 1)
      << "topology graph must be connected";
  // The paper's 7-layer GCN receptive-field claim needs diameter <= 7.
  EXPECT_LE(circuit::graph_diameter(adj), 7);
}

TEST_P(BenchmarkCircuitTest, HumanExpertSimulatesAndMeetsSpec) {
  const auto bc = circuits::make_benchmark(GetParam(), kTech);
  env::SizingEnv env(bc);
  const auto r = env.evaluate_params(bc.human_expert);
  EXPECT_TRUE(r.sim_ok);
  EXPECT_TRUE(r.spec_ok);
  for (const auto& md : bc.fom.metrics) {
    ASSERT_EQ(r.metrics.count(md.name), 1u) << md.name;
    EXPECT_TRUE(std::isfinite(r.metrics.at(md.name))) << md.name;
  }
}

TEST_P(BenchmarkCircuitTest, EvaluationIsDeterministic) {
  const auto bc = circuits::make_benchmark(GetParam(), kTech);
  env::SizingEnv e1(bc);
  env::SizingEnv e2(bc);
  Rng r1(42), r2(42);
  const auto a1 = e1.random_actions(r1);
  const auto a2 = e2.random_actions(r2);
  const auto v1 = e1.step(a1);
  const auto v2 = e2.step(a2);
  EXPECT_EQ(v1.sim_ok, v2.sim_ok);
  if (v1.sim_ok) {
    for (const auto& [k, v] : v1.metrics) {
      EXPECT_DOUBLE_EQ(v, v2.metrics.at(k)) << k;
    }
  }
}

TEST_P(BenchmarkCircuitTest, BuildsOnEveryTechnologyNode) {
  for (const auto& node : circuit::available_nodes()) {
    const auto tech = circuit::make_technology(node);
    const auto bc = circuits::make_benchmark(GetParam(), tech);
    env::SizingEnv env(bc);
    const auto r = env.evaluate_params(bc.human_expert);
    // The 180nm-tuned human sizing need not be optimal elsewhere, but the
    // netlist must build and the simulator must run on every node.
    EXPECT_TRUE(r.sim_ok || !r.sim_ok);  // no throw is the contract
    EXPECT_EQ(env.n(), env::SizingEnv(bc).n());
  }
}

TEST_P(BenchmarkCircuitTest, RandomDesignsNeverCrash) {
  const auto bc = circuits::make_benchmark(GetParam(), kTech);
  env::SizingEnv env(bc);
  Rng rng(7);
  int ok = 0;
  for (int i = 0; i < 15; ++i) {
    const auto r = env.step(env.random_actions(rng));
    if (r.sim_ok) {
      ++ok;
      for (const auto& md : bc.fom.metrics) {
        EXPECT_TRUE(std::isfinite(r.metrics.at(md.name)));
      }
    } else {
      EXPECT_DOUBLE_EQ(r.fom, bc.fom.sim_fail_fom);
    }
    EXPECT_GE(r.fom, bc.fom.sim_fail_fom);
    EXPECT_LE(r.fom, bc.fom.max_fom());
  }
  EXPECT_GT(ok, 0) << "at least some random designs must simulate";
}

TEST_P(BenchmarkCircuitTest, CalibrationPopulatesNormalizers) {
  auto bc = circuits::make_benchmark(GetParam(), kTech);
  env::SizingEnv env(std::move(bc));
  Rng rng(11);
  const int ok = env.calibrate(30, rng);
  EXPECT_GT(ok, 0);
  for (const auto& md : env.bench().fom.metrics) {
    EXPECT_LT(md.mmin, md.mmax) << md.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, BenchmarkCircuitTest,
                         ::testing::Values("Two-TIA", "Two-Volt",
                                           "Three-TIA", "LDO"));

TEST(BenchmarkRegistry, NamesAndUnknown) {
  EXPECT_EQ(circuits::benchmark_names().size(), 4u);
  EXPECT_THROW(circuits::make_benchmark("nope", kTech),
               std::invalid_argument);
}

TEST(TwoTia, SpecCreatesGainBandwidthTension) {
  // The BW floor must reject the "huge RF" corner: set RF to its maximum
  // and check the spec fails on bandwidth.
  auto bc = circuits::make_two_tia(kTech);
  env::SizingEnv env(bc);
  Rng rng(13);
  env.calibrate(40, rng);
  auto p = bc.human_expert;
  p.v[7][0] = 1e6;  // RF -> 1 MOhm
  const auto r = env.evaluate_params(p);
  ASSERT_TRUE(r.sim_ok);
  EXPECT_LT(r.metrics.at("bw"), 5e7);
  EXPECT_FALSE(r.spec_ok);
  EXPECT_DOUBLE_EQ(r.fom, env.bench().fom.spec_fail_fom);
}

TEST(ThreeTia, MatchedPairsStayMatched) {
  const auto bc = circuits::make_benchmark("Three-TIA", kTech);
  Rng rng(17);
  const auto p = bc.space.refine(bc.space.random_actions(rng));
  const int t1 = bc.netlist.find_design("T1");
  const int t2 = bc.netlist.find_design("T2");
  for (int d = 0; d < 3; ++d) EXPECT_DOUBLE_EQ(p.v[t1][d], p.v[t2][d]);
  // Mirror legs share L only.
  const int t13 = bc.netlist.find_design("T13");
  const int t15 = bc.netlist.find_design("T15");
  EXPECT_DOUBLE_EQ(p.v[t13][1], p.v[t15][1]);
}

TEST(Ldo, RegulatesAtNominalLoad) {
  const auto bc = circuits::make_benchmark("LDO", kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::Simulator s(nl, kTech);
  const double vout = s.op().node(nl.find_node("vout").value());
  // Target = vref * (1 + R1/R2) = 0.9 * 1.5 = 1.35 V.
  EXPECT_NEAR(vout, 1.35, 0.08);
}

TEST(TwoVolt, OutputCommonModeFollowsReference) {
  const auto bc = circuits::make_benchmark("Two-Volt", kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::Simulator s(nl, kTech);
  const double voa = s.op().node(nl.find_node("voa").value());
  const double vob = s.op().node(nl.find_node("vob").value());
  EXPECT_NEAR((voa + vob) / 2.0, kTech.vdd / 2.0, 0.12);
  EXPECT_NEAR(voa, vob, 1e-6);  // symmetric circuit
}

// Concurrency audit companion (see BenchmarkCircuit::evaluate's contract):
// the measurement closures must be pure functions of the sized netlist, so
// 8 threads evaluating the same circuit concurrently — each on its own
// netlist copy, sharing one closure — must agree bit-for-bit with a serial
// reference evaluation. Run under -DGCNRL_SANITIZE=address or =thread to
// turn latent data races into hard failures.
TEST_P(BenchmarkCircuitTest, EvaluateClosureIsThreadSafe) {
  const auto bc = circuits::make_benchmark(GetParam(), kTech);
  circuit::Netlist sized = bc.netlist;
  bc.space.apply(sized, bc.human_expert);
  const env::MetricMap reference = bc.evaluate(sized);

  constexpr int kThreads = 8;
  std::vector<env::MetricMap> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bc, &sized, &got, t] {
      circuit::Netlist own = sized;  // per-thread copy, as EvalService does
      got[static_cast<std::size_t>(t)] = bc.evaluate(own);
    });
  }
  for (auto& th : threads) th.join();

  for (const auto& m : got) {
    ASSERT_EQ(m.size(), reference.size());
    for (const auto& [k, v] : reference) {
      ASSERT_EQ(m.count(k), 1u) << k;
      EXPECT_DOUBLE_EQ(m.at(k), v) << k;
    }
  }
}
