// DDPG agent for transistor sizing — the paper's Algorithm 1.
//
// The sizing problem is a single-step continuous-control task: the state
// (circuit graph + per-component state vectors) is fixed, one "episode" is
// one sized design, and the reward is the FoM. Consequently there is no
// bootstrapping/target network: the critic regresses R - B directly
// (B = exponential moving average of past rewards), and the actor follows
// the deterministic policy gradient through the critic.
//
// Knowledge transfer (Sec. III-E): save()/load() (or copy_weights_from())
// moves all actor+critic parameters. Across technology nodes the state
// dimension is unchanged, so weights transfer directly. Across topologies
// the environment must use IndexMode::Scalar so state_dim is topology-
// independent; all network shapes then match and the full agent transfers.
#pragma once

#include <optional>
#include <string>

#include "nn/adam.hpp"
#include "nn/serialize.hpp"
#include "rl/networks.hpp"
#include "rl/noise.hpp"
#include "rl/replay_buffer.hpp"

namespace gcnrl::rl {

struct DdpgConfig {
  int hidden = 32;
  int gcn_layers = 7;
  bool use_gcn = true;        // false = NG-RL
  // Actor lr deliberately half the critic lr: a hot actor outruns the
  // critic's value estimate and saturates into unexplored tanh corners
  // (verified across seeds on the synthetic-bandit test).
  double lr_actor = 5e-4;
  double lr_critic = 2e-3;
  int batch = 32;
  int warmup = 100;           // W: random warm-up episodes
  int updates_per_step = 4;   // critic/actor updates per episode after W
  double sigma0 = 0.5;        // exploration noise schedule
  double sigma_decay = 0.992;
  double sigma_min = 0.03;
  double baseline_tau = 0.05;  // EMA coefficient for the reward baseline B
};

class DdpgAgent {
 public:
  // state: n x state_dim (normalized); adjacency: raw 0/1 A (the agent
  // builds A-hat itself, or the identity when use_gcn is false).
  DdpgAgent(const la::Mat& state, const la::Mat& adjacency,
            const std::vector<circuit::Kind>& kinds, DdpgConfig cfg,
            Rng rng);

  // Deterministic policy action mu(S).
  la::Mat act();
  // Behaviour policy of Algorithm 1: uniform-random during warm-up, then
  // mu(S) + truncated-normal noise with exponential decay.
  la::Mat act_explore();

  // Record the reward for `actions`; advances the episode counter and runs
  // the critic/actor updates once past warm-up.
  void observe(const la::Mat& actions, double reward);

  // Critic's current value estimate (diagnostics / tests).
  double q_value(const la::Mat& actions);

  [[nodiscard]] int episode() const { return episode_; }
  [[nodiscard]] double baseline() const { return baseline_.value_or(0.0); }
  [[nodiscard]] const DdpgConfig& config() const { return cfg_; }

  // --- knowledge transfer ---------------------------------------------
  void save(const std::string& path);
  void load(const std::string& path);
  // Copy all matching parameters from another (compatible) agent.
  int copy_weights_from(DdpgAgent& src);
  std::vector<nn::Parameter*> parameters();

 private:
  void update();

  DdpgConfig cfg_;
  Rng rng_;
  la::Mat state_;
  la::Mat a_hat_;
  std::vector<circuit::Kind> kinds_;
  TypeMasks masks_;
  GcnActor actor_;
  GcnCritic critic_;
  nn::Adam opt_actor_;
  nn::Adam opt_critic_;
  ReplayBuffer replay_;
  TruncatedNormalNoise noise_;
  std::optional<double> baseline_;
  int episode_ = 0;
};

}  // namespace gcnrl::rl
