#include "la/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gcnrl::la {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double min_of(std::span<const double> v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double max_of(std::span<const double> v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

std::vector<double> col_mean(const Mat& m) {
  std::vector<double> out(m.cols(), 0.0);
  if (m.rows() == 0) return out;
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) out[c] += m(r, c);
  }
  for (auto& v : out) v /= m.rows();
  return out;
}

std::vector<double> col_stddev(const Mat& m) {
  std::vector<double> out(m.cols(), 0.0);
  if (m.rows() < 2) return out;
  const auto mu = col_mean(m);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      const double d = m(r, c) - mu[c];
      out[c] += d * d;
    }
  }
  for (auto& v : out) v = std::sqrt(v / (m.rows() - 1));
  return out;
}

ColStats normalize_columns(Mat& m) {
  ColStats st{col_mean(m), col_stddev(m)};
  for (auto& s : st.stddev) {
    if (s < 1e-12) s = 1.0;  // constant column: center only
  }
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      m(r, c) = (m(r, c) - st.mean[c]) / st.stddev[c];
    }
  }
  return st;
}

}  // namespace gcnrl::la
