// Parameter / Module plumbing for the neural-network stack.
//
// A Parameter owns its value and gradient buffers; Modules expose their
// parameters so optimizers (nn::Adam) and the weight (de)serializer can
// iterate them generically. Forward passes are written against an
// ag::Tape: Module::leaf() lifts a Parameter onto the tape as a
// differentiable node whose gradient is accumulated back into the
// Parameter at the end of Tape::backward().
#pragma once

#include <string>
#include <vector>

#include "autograd/ops.hpp"
#include "autograd/tape.hpp"

namespace gcnrl::nn {

struct Parameter {
  std::string name;
  la::Mat value;
  la::Mat grad;

  Parameter() = default;
  Parameter(std::string n, la::Mat v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void zero_grad() { grad.fill(0.0); }
};

class Module {
 public:
  virtual ~Module() = default;
  // All trainable parameters of this module (and submodules).
  virtual std::vector<Parameter*> parameters() = 0;

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

 protected:
  // Lift a parameter onto a tape. The returned Var's pull-back adds the
  // node gradient into p.grad, so gradients survive Tape::clear().
  static ag::Var leaf(ag::Tape& tape, Parameter& p);
};

}  // namespace gcnrl::nn
