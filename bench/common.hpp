// Shared machinery for the table/figure benchmark harnesses — now a thin
// compatibility surface over the public facade (api/api.hpp), which owns
// the method/circuit dispatch, the calibrated EnvFactory, the lockstep
// seed sweeps, and the paper's budget-matching rule ("for BO and MACE it
// is impossible to run 10000 steps ... we ran them for the same runtime"
// — rendered deterministic as simulated-cost budgets chained from the
// matching ES seed, see api/task.hpp). The harnesses keep addressing
// everything as bench::X; new code should include api/api.hpp directly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "common/envcfg.hpp"
#include "common/table.hpp"
#include "la/stats.hpp"

namespace gcnrl::bench {

// The Table I sweep methods, in the paper's column order (the "Human"
// anchor row is a MethodRegistry entry too, but not a sweep).
inline const std::vector<std::string> kMethods = {
    "Random", "ES", "BO", "MACE", "NG-RL", "GCN-RL"};

// Calibrated env factory + lockstep group (see api/task.hpp).
using api::EnvFactory;
using api::LockstepGroup;
using api::LockstepSpec;

// Seed sweeps and single runs, method-dispatched via the MethodRegistry.
using api::run_method;
using api::sweep;
using api::sweep_chained;
using api::SweepResult;

// Reporting helpers.
using api::eval_banner;
using api::pm;
using api::service_usage;

// Thin forwarder to rl::run_optimizer's simulated-cost overload: stops
// once `sim_budget` simulations have been charged (<= 0: step budget
// only). Kept as a named entry point because "the budgeted BO/MACE run"
// is a concept of the paper's protocol, not of the RL layer.
rl::RunResult run_optimizer_budgeted(env::SizingEnv& env, opt::Optimizer& opt,
                                     int steps, long sim_budget);

// The black-box baseline behind a method name ("ES" / "BO" / "MACE", or
// any user-registered AskTell method).
std::unique_ptr<opt::Optimizer> make_optimizer(const std::string& method,
                                               int dim, Rng rng);

}  // namespace gcnrl::bench
