// Actor / critic networks of Fig. 3.
//
// Actor:  state --shared FC--> hidden --[GCN x L]--> per-type decoders
//         --tanh--> actions in [-1,1]^(n x 3).
// Critic: state --shared FC--> + action --per-type encoders--> hidden
//         --[GCN x L]--> shared value head --> mean over nodes --> Q.
//
// "Per-type" layers (the unique weights of Fig. 3) are realized as one
// Linear per component kind whose output rows are masked to that kind and
// summed — numerically identical to routing each row through its own
// encoder/decoder, but expressible with plain dense ops. With use_gcn =
// false the aggregation matrix is the identity and the whole stack
// degrades to shared FC layers: that is exactly the paper's NG-RL
// ablation.
#pragma once

#include <memory>

#include "circuit/netlist.hpp"
#include "nn/gcn.hpp"
#include "nn/linear.hpp"

namespace gcnrl::rl {

struct NetworkConfig {
  int state_dim = 0;
  int hidden = 32;
  int gcn_layers = 7;   // paper: seven GCN layers for a global receptive field
  bool use_gcn = true;  // false = NG-RL
};

// Per-kind row masks used to realize type-specific layers.
struct TypeMasks {
  // For each kind: n x width matrix, rows of that kind = 1.
  std::array<la::Mat, circuit::kNumKinds> action;  // width = kMaxActionDim
  std::array<la::Mat, circuit::kNumKinds> hidden;  // width = hidden
};
TypeMasks make_type_masks(const std::vector<circuit::Kind>& kinds,
                          int hidden);

class GcnActor : public nn::Module {
 public:
  GcnActor(const NetworkConfig& cfg, Rng& rng);

  // state: n x state_dim, a_hat: n x n. Output n x kMaxActionDim in [-1,1].
  ag::Var forward(ag::Tape& tape, ag::Var state, const la::Mat& a_hat,
                  const TypeMasks& masks);
  // Convenience deterministic evaluation (fresh throwaway tape).
  la::Mat act(const la::Mat& state, const la::Mat& a_hat,
              const TypeMasks& masks);

  std::vector<nn::Parameter*> parameters() override;
  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }

 private:
  NetworkConfig cfg_;
  nn::Linear fc_in_;
  std::vector<std::unique_ptr<nn::GcnLayer>> gcn_;
  std::array<std::unique_ptr<nn::Linear>, circuit::kNumKinds> decoders_;
};

class GcnCritic : public nn::Module {
 public:
  GcnCritic(const NetworkConfig& cfg, Rng& rng);

  // Q(S, A): returns a 1x1 Var.
  ag::Var forward(ag::Tape& tape, ag::Var state, ag::Var actions,
                  const la::Mat& a_hat, const TypeMasks& masks);
  double value(const la::Mat& state, const la::Mat& actions,
               const la::Mat& a_hat, const TypeMasks& masks);

  std::vector<nn::Parameter*> parameters() override;

 private:
  NetworkConfig cfg_;
  nn::Linear fc_state_;
  std::array<std::unique_ptr<nn::Linear>, circuit::kNumKinds> encoders_;
  std::vector<std::unique_ptr<nn::GcnLayer>> gcn_;
  nn::Linear head_;
};

}  // namespace gcnrl::rl
