// End-to-end smoke + determinism gate for the budgeted task-planner path.
//
// Runs a tiny table1-style budgeted task list (ES -> sim-cost budgets ->
// BO/MACE, plus GCN-RL through the DDPG lockstep engine) TWICE through
// api::run_tasks on one shared EvalService, with the task order permuted
// between the passes — pass 2 even lists BO/MACE BEFORE their ES budget
// source, exercising the planner's order-independent chain resolution.
// The second pass starts with a cache fully warmed by the first; under
// the retired wall-clock budgets exactly this warmth deflated the
// measured ES budget and changed the BO/MACE rows. With simulated-cost
// budgets both passes must render byte-identical per-(method, seed) rows,
// at any GCNRL_EVAL_THREADS (the ctest jobs run this at 1 and at 4
// threads, and CI additionally diffs two whole invocations at 4). Exits
// non-zero on any shape mismatch or pass divergence.
//
// Usage: sweep_smoke [steps] [seeds]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"

using namespace gcnrl;

namespace {

struct PassResult {
  std::vector<std::string> rows;  // one rendered row per (method, seed)
  int shape_failures = 0;

  // Execution order deliberately differs between the passes, so compare
  // the rows as a set: byte-identical per-(method, seed) content.
  [[nodiscard]] std::string canonical() const {
    std::vector<std::string> sorted = rows;
    std::sort(sorted.begin(), sorted.end());
    std::string out;
    for (const auto& r : sorted) out += r;
    return out;
  }

  [[nodiscard]] std::string table() const {
    std::string out;
    for (const auto& r : rows) out += r;
    return out;
  }
};

// One budgeted pass: the methods as one declarative task list, in the
// given order, through api::run_tasks. The planner stages the budget
// chain itself, so BO/MACE may precede ES in the list.
PassResult run_pass(const std::shared_ptr<env::EvalService>& svc,
                    const std::vector<std::string>& methods, int steps,
                    int warmup, int seeds, int calib) {
  PassResult out;
  std::vector<api::TaskSpec> tasks;
  for (const std::string& method : methods) {
    api::TaskSpec t;
    t.circuit = "Two-TIA";
    t.method = method;
    t.steps = steps;
    t.warmup = warmup;
    t.seeds = seeds;
    tasks.push_back(t);
  }
  api::RunOptions opts;
  opts.service = svc;
  opts.calib_samples = calib;
  const auto results = api::run_tasks(tasks, opts);

  for (const api::TaskResult& sw : results) {
    const std::string& method = sw.spec.method;
    const bool budgeted =
        !api::method_info(method).budget_from.empty();
    // Step-budgeted methods commit exactly `steps` evaluations; the
    // sim-budgeted ones may stop earlier but never come back empty.
    const std::size_t n = static_cast<std::size_t>(seeds);
    bool shape_ok = sw.runs.size() == n && sw.best.size() == n &&
                    sw.sims.size() == n;
    for (const auto& r : sw.runs) {
      if (budgeted ? r.best_trace.empty()
                   : r.best_trace.size() != static_cast<std::size_t>(steps)) {
        shape_ok = false;
      }
    }
    if (!shape_ok) {
      // Don't index into vectors whose sizes just failed the check — a
      // shape regression must exit 1 cleanly, not crash the gate.
      ++out.shape_failures;
      out.rows.emplace_back("  " + method + " SHAPE MISMATCH\n");
      continue;
    }
    for (int s = 0; s < seeds; ++s) {
      const auto& run = sw.runs[static_cast<std::size_t>(s)];
      char row[160];
      std::snprintf(row, sizeof(row),
                    "  %-7s seed=%d best=%.17g sims=%ld trace[%zu]=%s\n",
                    method.c_str(), s, run.best_fom, run.sims,
                    run.best_trace.size(),
                    api::trace_fingerprint(run.best_trace).c_str());
      out.rows.emplace_back(row);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 12;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 2;
  const int warmup = steps / 2;
  const int calib = 32;
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());

  std::printf("sweep smoke: Two-TIA, steps=%d, seeds=%d\n%s\n", steps, seeds,
              bench::eval_banner().c_str());

  // Pass 1 cold, ES first; pass 2 on the now-warm cache with the RL
  // method first and the budget consumers listed BEFORE their ES source.
  const PassResult pass1 =
      run_pass(svc, {"ES", "BO", "MACE", "GCN-RL"}, steps, warmup, seeds,
               calib);
  const PassResult pass2 =
      run_pass(svc, {"GCN-RL", "BO", "MACE", "ES"}, steps, warmup, seeds,
               calib);

  const bool identical = pass1.canonical() == pass2.canonical();
  const int failures = pass1.shape_failures + pass2.shape_failures +
                       (identical ? 0 : 1);
  std::printf("pass 1 (cold cache, ES first):\n%s", pass1.table().c_str());
  std::printf("pass 2 (warm cache, permuted order): %s\n",
              identical ? "byte-identical" : "DIVERGED");
  if (!identical) std::printf("%s", pass2.table().c_str());
  if (pass1.shape_failures + pass2.shape_failures > 0) {
    std::printf("SHAPE MISMATCH in %d sweep(s)\n",
                pass1.shape_failures + pass2.shape_failures);
  }
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  return failures == 0 ? 0 : 1;
}
