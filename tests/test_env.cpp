// Tests for the FoM machinery and the sizing environment using a
// synthetic (simulator-free) benchmark circuit, so env semantics are
// verified independently of the analog substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "env/fom.hpp"
#include "env/sizing_env.hpp"

namespace env = gcnrl::env;
namespace circuit = gcnrl::circuit;
namespace la = gcnrl::la;
using gcnrl::Rng;

namespace {

// A 3-component synthetic circuit: metrics are simple closed forms of the
// parameters, so every env behaviour has a predictable answer.
env::BenchmarkCircuit make_synthetic() {
  env::BenchmarkCircuit bc;
  bc.name = "Synthetic";
  bc.tech = circuit::make_technology("180nm");
  auto& nl = bc.netlist;
  const int a = nl.node("a");
  const int b = nl.node("b");
  nl.add_nmos("M1", a, b, 0, 0, 1e-6, 1e-6);
  nl.add_resistor("R1", a, b, 1e3);
  nl.add_capacitor("C1", b, 0, 1e-12);
  bc.space = circuit::DesignSpace::from_netlist(nl, bc.tech);
  env::FomSpec fom;
  fom.metrics = {
      {"speed", "Hz", +1.0, {}, {}, {}, true},
      {"cost", "W", -1.0, {}, {}, {}, true},
  };
  bc.fom = fom;
  bc.evaluate = [](const circuit::Netlist& sized) {
    env::MetricMap m;
    // speed ~ W/L, cost ~ W*M/R: both positive, decades of range.
    const auto& mos = sized.mosfets()[0];
    const auto& res = sized.resistors()[0];
    m["speed"] = mos.w / mos.l;
    m["cost"] = mos.w * mos.m / res.r * 1e9;
    return m;
  };
  bc.human_expert.v = {{10e-6, 0.5e-6, 2}, {10e3, 0, 0}, {1e-12, 0, 0}};
  return bc;
}

}  // namespace

TEST(Fom, LinearNormalizationDirections) {
  env::MetricDef larger{"m", "", +1.0, {}, {}, {}, false, 0.0, 10.0};
  EXPECT_DOUBLE_EQ(larger.normalized(0.0), 0.0);
  EXPECT_DOUBLE_EQ(larger.normalized(5.0), 0.5);
  EXPECT_DOUBLE_EQ(larger.normalized(10.0), 1.0);
  EXPECT_DOUBLE_EQ(larger.normalized(20.0), 1.0);  // saturates
  env::MetricDef smaller{"m", "", -1.0, {}, {}, {}, false, 0.0, 10.0};
  EXPECT_DOUBLE_EQ(smaller.normalized(0.0), 1.0);
  EXPECT_DOUBLE_EQ(smaller.normalized(10.0), 0.0);
  EXPECT_DOUBLE_EQ(smaller.normalized(-5.0), 1.0);  // saturates
}

TEST(Fom, LogNormalization) {
  env::MetricDef md{"m", "", +1.0, {}, {}, {}, true, 1.0, 10000.0};
  EXPECT_DOUBLE_EQ(md.normalized(1.0), 0.0);
  EXPECT_NEAR(md.normalized(100.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(md.normalized(10000.0), 1.0);
  EXPECT_DOUBLE_EQ(md.normalized(0.5), 0.0);  // below range clamps
}

TEST(Fom, BoundCapsContribution) {
  env::MetricDef md{"m", "", +1.0, 5.0, {}, {}, false, 0.0, 10.0};
  EXPECT_DOUBLE_EQ(md.normalized(8.0), 0.5);  // capped at bound=5
  env::MetricDef md2{"m", "", -1.0, 2.0, {}, {}, false, 0.0, 10.0};
  EXPECT_DOUBLE_EQ(md2.normalized(1.0), 0.8);  // floored at bound=2
}

TEST(Fom, SpecWindows) {
  env::MetricDef md{"m", "", +1.0, {}, 1.0, 5.0, false, 0.0, 10.0};
  EXPECT_TRUE(md.spec_ok(3.0));
  EXPECT_FALSE(md.spec_ok(0.5));
  EXPECT_FALSE(md.spec_ok(6.0));
}

TEST(Fom, SpecFailureYieldsFixedNegative) {
  env::FomSpec spec;
  spec.metrics = {{"a", "", +1.0, {}, 2.0, {}, false, 0.0, 10.0}};
  env::MetricMap bad{{"a", 1.0}};
  env::MetricMap good{{"a", 5.0}};
  EXPECT_DOUBLE_EQ(spec.fom(bad), spec.spec_fail_fom);
  EXPECT_DOUBLE_EQ(spec.fom(good), 0.5);
  spec.enforce_spec = false;
  EXPECT_DOUBLE_EQ(spec.fom(bad), 0.1);
}

TEST(Fom, MissingMetricIsFailure) {
  env::FomSpec spec;
  spec.enforce_spec = false;
  spec.metrics = {{"a", "", +1.0, {}, {}, {}, false, 0.0, 1.0}};
  EXPECT_DOUBLE_EQ(spec.fom({}), spec.sim_fail_fom);
}

TEST(Fom, WeightMagnitudeScales) {
  env::FomSpec spec;
  spec.enforce_spec = false;
  spec.metrics = {{"a", "", +10.0, {}, {}, {}, false, 0.0, 1.0}};
  EXPECT_DOUBLE_EQ(spec.fom({{"a", 0.5}}), 5.0);
  EXPECT_DOUBLE_EQ(spec.max_fom(), 10.0);
  spec.set_weight("a", -2.0);
  EXPECT_DOUBLE_EQ(spec.fom({{"a", 0.5}}), 1.0);
  EXPECT_THROW(spec.set_weight("nope", 1.0), std::invalid_argument);
}

TEST(Fom, CalibrateFromSamples) {
  env::FomSpec spec;
  spec.metrics = {{"a", "", +1.0, {}, {}, {}, false},
                  {"b", "", -1.0, {}, {}, {}, true}};
  spec.calibrate({{{"a", 1.0}, {"b", 10.0}},
                  {{"a", 3.0}, {"b", 1000.0}},
                  {{"a", 2.0}, {"b", 0.0}}});  // b=0 ignored for log mmin
  EXPECT_DOUBLE_EQ(spec.find("a")->mmin, 1.0);
  EXPECT_DOUBLE_EQ(spec.find("a")->mmax, 3.0);
  EXPECT_DOUBLE_EQ(spec.find("b")->mmin, 10.0);
  EXPECT_DOUBLE_EQ(spec.find("b")->mmax, 1000.0);
}

TEST(SizingEnv, StateShapesOneHot) {
  env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot);
  EXPECT_EQ(e.n(), 3);
  // one-hot index (3) + type one-hot (4) + 5 model features.
  EXPECT_EQ(e.state_dim(), 3 + 4 + 5);
  EXPECT_EQ(e.adjacency().rows(), 3);
  EXPECT_EQ(e.kinds()[0], circuit::Kind::Nmos);
  EXPECT_EQ(e.kinds()[2], circuit::Kind::Capacitor);
}

TEST(SizingEnv, StateShapesScalarModeTopologyIndependent) {
  env::SizingEnv e(make_synthetic(), env::IndexMode::Scalar);
  EXPECT_EQ(e.state_dim(), 1 + 4 + 5);
}

TEST(SizingEnv, StateIsColumnNormalized) {
  env::SizingEnv e(make_synthetic(), env::IndexMode::OneHot);
  const auto& s = e.state();
  for (int c = 0; c < s.cols(); ++c) {
    double mean = 0.0;
    for (int r = 0; r < s.rows(); ++r) mean += s(r, c);
    EXPECT_NEAR(mean / s.rows(), 0.0, 1e-9);
  }
}

TEST(SizingEnv, StepPipelineRefinesAndEvaluates) {
  env::SizingEnv e(make_synthetic());
  Rng rng(3);
  e.calibrate(50, rng);
  const auto r = e.step(e.random_actions(rng));
  EXPECT_TRUE(r.sim_ok);
  EXPECT_TRUE(std::isfinite(r.fom));
  EXPECT_EQ(r.metrics.count("speed"), 1u);
  // Refined parameters respect the design space.
  const auto& cs = e.bench().space.comp(0);
  EXPECT_GE(r.params.v[0][0], cs.p[0].lo);
  EXPECT_LE(r.params.v[0][0], cs.p[0].hi);
}

TEST(SizingEnv, FlatViewMatchesMatrixView) {
  env::SizingEnv e(make_synthetic());
  Rng rng(4);
  e.calibrate(50, rng);
  const la::Mat a = e.random_actions(rng);
  const auto flat = e.bench().space.flatten(a);
  const auto r1 = e.step(a);
  const auto r2 = e.step_flat(flat);
  EXPECT_DOUBLE_EQ(r1.fom, r2.fom);
}

TEST(SizingEnv, EvaluateParamsMatchesManualPipeline) {
  env::SizingEnv e(make_synthetic());
  Rng rng(5);
  e.calibrate(50, rng);
  const auto r = e.evaluate_params(e.bench().human_expert);
  EXPECT_TRUE(r.sim_ok);
  // speed = W/L = 10e-6 / 0.5e-6 = 20 (grid-rounded W/L).
  EXPECT_NEAR(r.metrics.at("speed"), 20.0, 0.5);
}

TEST(SizingEnv, CountsEvaluations) {
  env::SizingEnv e(make_synthetic());
  Rng rng(6);
  e.calibrate(10, rng);
  const long before = e.num_evals();
  e.step(e.random_actions(rng));
  e.step(e.random_actions(rng));
  EXPECT_EQ(e.num_evals(), before + 2);
}

TEST(SizingEnvProperty, RefinedParamsAlwaysLegal) {
  env::SizingEnv e(make_synthetic());
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const la::Mat a = e.random_actions(rng);
    const auto p = e.bench().space.refine(a);
    for (int i = 0; i < e.n(); ++i) {
      const auto& cs = e.bench().space.comp(i);
      for (int d = 0; d < cs.nparams(); ++d) {
        EXPECT_GE(p.v[i][d], cs.p[d].lo);
        EXPECT_LE(p.v[i][d], cs.p[d].hi);
      }
    }
  }
}

// Parameterized sweep: the FoM respects monotonicity in a single metric —
// for any calibrated normalizer, improving one metric while holding the
// rest cannot decrease the FoM.
class FomMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(FomMonotonicity, ImprovingMetricNeverHurts) {
  env::FomSpec spec;
  spec.enforce_spec = false;
  spec.metrics = {{"up", "", +1.0, {}, {}, {}, false, 0.0, 10.0},
                  {"down", "", -1.0, {}, {}, {}, false, 0.0, 10.0}};
  const double base = GetParam();
  const double f1 = spec.fom({{"up", base}, {"down", 5.0}});
  const double f2 = spec.fom({{"up", base + 1.0}, {"down", 5.0}});
  EXPECT_GE(f2, f1);
  const double f3 = spec.fom({{"up", 5.0}, {"down", base}});
  const double f4 = spec.fom({{"up", 5.0}, {"down", base + 1.0}});
  EXPECT_LE(f4, f3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FomMonotonicity,
                         ::testing::Values(0.0, 2.5, 5.0, 7.5, 9.0, 12.0));
