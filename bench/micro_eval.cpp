// google-benchmark for the EvalService: evaluations/sec on the two_tia
// benchmark circuit at 1/2/4/8 worker threads, plus the cache-hit fast
// path. This is the scaling number behind GCNRL_EVAL_THREADS — on an
// N-core machine the thread-pool rows should approach N x the serial row
// (the sims are independent and share no mutable state).
//
// Counters: items_per_second is evaluations/sec; use
// --benchmark_counters_tabular=true for a compact table.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "circuits/benchmark_circuits.hpp"
#include "common/rng.hpp"
#include "env/eval_service.hpp"
#include "env/sizing_env.hpp"
#include "opt/bayes_opt.hpp"
#include "rl/ddpg.hpp"
#include "rl/run_loop.hpp"

using namespace gcnrl;

namespace {

const auto kTech = circuit::make_technology("180nm");

// Distinct random designs through the full refine -> simulate -> FoM
// pipeline, cache disabled: pure simulation throughput vs thread count.
void BM_EvalBatch_TwoTia(benchmark::State& state) {
  env::EvalServiceConfig cfg;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.cache_capacity = 0;
  env::SizingEnv env(circuits::make_two_tia(kTech), env::IndexMode::OneHot,
                     cfg);
  constexpr int kBatch = 32;
  Rng rng(7);
  std::vector<la::Mat> batch;
  batch.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) batch.push_back(env.random_actions(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step_batch(batch).front().fom);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EvalBatch_TwoTia)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The same batch revisited: after the first iteration every design is a
// cache hit, so this bounds the per-evaluation engine overhead (refine +
// key + LRU + FoM recompute, no simulation).
void BM_EvalBatch_TwoTia_CacheHit(benchmark::State& state) {
  env::EvalServiceConfig cfg;
  cfg.threads = 1;
  cfg.cache_capacity = 1024;
  env::SizingEnv env(circuits::make_two_tia(kTech), env::IndexMode::OneHot,
                     cfg);
  constexpr int kBatch = 32;
  Rng rng(7);
  std::vector<la::Mat> batch;
  batch.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) batch.push_back(env.random_actions(rng));
  benchmark::DoNotOptimize(env.step_batch(batch).front().fom);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step_batch(batch).front().fom);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EvalBatch_TwoTia_CacheHit)->Unit(benchmark::kMillisecond);

// Lockstep multi-seed DDPG throughput: 4 (env, agent) pairs sharing one
// EvalService, stepped via rl::run_ddpg_lockstep. items_per_second counts
// seed-steps (one simulation each, cache disabled); agents stay in their
// warm-up phase so the number measures the sweep engine + simulator, not
// network updates. On an N-core machine the multi-thread rows should pull
// ahead of serial — this is the "seeds/sec" scaling number behind the
// parallel bench::sweep path.
void BM_DdpgLockstep_TwoTia(benchmark::State& state) {
  env::EvalServiceConfig cfg;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.cache_capacity = 0;
  const auto svc = std::make_shared<env::EvalService>(cfg);
  constexpr int kSeeds = 4;
  constexpr int kSteps = 8;
  std::vector<std::unique_ptr<env::SizingEnv>> envs;
  std::vector<std::unique_ptr<rl::DdpgAgent>> agents;
  std::vector<env::SizingEnv*> env_ptrs;
  std::vector<rl::DdpgAgent*> agent_ptrs;
  rl::DdpgConfig rl_cfg;
  rl_cfg.warmup = 1 << 30;  // never leave warm-up: no NN updates measured
  for (int s = 0; s < kSeeds; ++s) {
    envs.push_back(std::make_unique<env::SizingEnv>(
        circuits::make_two_tia(kTech), env::IndexMode::OneHot, svc));
    agents.push_back(std::make_unique<rl::DdpgAgent>(
        envs.back()->state(), envs.back()->adjacency(), envs.back()->kinds(),
        rl_cfg, Rng(100 + s)));
    env_ptrs.push_back(envs.back().get());
    agent_ptrs.push_back(agents.back().get());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rl::run_ddpg_lockstep(env_ptrs, agent_ptrs, kSteps)
            .front()
            .best_fom);
  }
  state.SetItemsProcessed(state.iterations() * kSeeds * kSteps);
}
BENCHMARK(BM_DdpgLockstep_TwoTia)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Lockstep multi-seed black-box throughput: 4 (env, BayesOpt) pairs
// sharing one EvalService, stepped via rl::run_optimizer_lockstep — the
// driver behind the budgeted BO/MACE seed sweeps. items_per_second counts
// seed-evaluations (cache disabled). Ask/tell is sequential within a
// seed, so just like the DDPG row this is the cross-seed scaling number:
// multi-thread rows should pull ahead of serial on an N-core machine.
void BM_BayesOptLockstep_TwoTia(benchmark::State& state) {
  env::EvalServiceConfig cfg;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.cache_capacity = 0;
  constexpr int kSeeds = 4;
  constexpr int kSteps = 8;
  for (auto _ : state) {
    state.PauseTiming();  // fresh optimizers/envs: identical work per iter
    const auto svc = std::make_shared<env::EvalService>(cfg);
    std::vector<std::unique_ptr<env::SizingEnv>> envs;
    std::vector<std::unique_ptr<opt::BayesOpt>> opts;
    std::vector<rl::OptimizerPair> pairs;
    for (int s = 0; s < kSeeds; ++s) {
      envs.push_back(std::make_unique<env::SizingEnv>(
          circuits::make_two_tia(kTech), env::IndexMode::OneHot, svc));
      opts.push_back(std::make_unique<opt::BayesOpt>(envs.back()->flat_dim(),
                                                     Rng(200 + s)));
      pairs.push_back(rl::OptimizerPair{envs.back().get(), opts.back().get(),
                                        kSteps, -1});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        rl::run_optimizer_lockstep(pairs).front().best_fom);
  }
  state.SetItemsProcessed(state.iterations() * kSeeds * kSteps);
}
BENCHMARK(BM_BayesOptLockstep_TwoTia)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
