// Weight initialization schemes.
#pragma once

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace gcnrl::nn {

// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
la::Mat xavier_uniform(int fan_in, int fan_out, Rng& rng);
// Small uniform init for output layers, U(-scale, scale); the DDPG paper
// initializes final layers near zero so initial actions are unbiased.
la::Mat uniform_init(int rows, int cols, double scale, Rng& rng);

}  // namespace gcnrl::nn
