// Quickstart: size the two-stage transimpedance amplifier with GCN-RL,
// entirely through the public task facade (api/api.hpp):
//
//   1. Describe the experiment as a TaskSpec (circuit, method, budget).
//   2. api::run_tasks calibrates the FoM, trains a GCN-RL (DDPG) agent,
//      and returns the per-seed RunResults — one shared evaluation
//      service, deterministic at any GCNRL_EVAL_THREADS.
//   3. Print the best design found and its measured performance.
//
// Usage: quickstart [steps] [node]   (default: 300 steps @ 180nm)
#include <cstdio>

#include "api/api.hpp"
#include "circuit/tech.hpp"

using namespace gcnrl;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 300;
  const std::string node = argc > 2 ? argv[2] : "180nm";

  // 1. The experiment as data: the human-expert anchor plus one GCN-RL
  // training run on the same circuit/node (sharing one calibration).
  api::TaskSpec human;
  human.circuit = "Two-TIA";
  human.method = "Human";
  human.node = node;
  api::TaskSpec train = human;
  train.method = "GCN-RL";
  train.steps = steps;
  train.warmup = std::min(100, steps / 3);

  api::RunOptions opts;
  opts.calib_samples = 200;

  // 2. Run. The service is created from GCNRL_EVAL_THREADS (default:
  // serial); calibration and training batches share its thread pool.
  std::printf("Sizing %s at %s with %s (%d steps)...\n%s\n",
              train.circuit.c_str(), node.c_str(), train.method.c_str(),
              steps, api::eval_banner().c_str());
  const auto results = api::run_tasks({human, train}, opts);
  const auto& anchor = results[0].runs[0];
  const auto& run = results[1].runs[0];

  // 3. Report.
  const auto bench = api::build_circuit(train.circuit,
                                        circuit::make_technology(node));
  std::printf("Human-expert FoM: %.3f (max attainable %.1f)\n",
              anchor.best_fom, bench.fom.max_fom());
  std::printf("\nBest FoM after %d episodes: %.3f\n", steps, run.best_fom);
  std::printf("Evaluations: %ld requested, %ld simulated, %ld cache hits\n",
              run.evals, run.sims, run.cache_hits);
  std::printf("Best design metrics:\n");
  for (const auto& [k, v] : run.best_metrics) {
    std::printf("  %-8s = %.6g\n", k.c_str(), v);
  }
  std::printf("\nBest sizing:\n");
  const auto params = bench.space.refine(run.best_actions);
  for (int i = 0; i < bench.space.num_components(); ++i) {
    const auto& cs = bench.space.comp(i);
    if (cs.nparams() == 3) {
      std::printf("  %-6s W=%6.2f um  L=%5.3f um  M=%2d\n", cs.name.c_str(),
                  params.v[i][0] * 1e6, params.v[i][1] * 1e6,
                  static_cast<int>(params.v[i][2]));
    } else {
      std::printf("  %-6s value=%.4g\n", cs.name.c_str(), params.v[i][0]);
    }
  }
  return 0;
}
