// Modified nodal analysis (MNA) infrastructure shared by the DC, AC,
// transient and noise engines.
//
// Unknown ordering: node voltages for nodes 1..N-1 (ground eliminated),
// followed by one branch current per voltage source. Sign conventions:
//  * KCL residual f[n] = sum of currents LEAVING node n through elements;
//    independent current sources therefore appear with their sign folded
//    into the residual (DC/tran) or on the RHS (AC).
//  * VSource branch current i is the current flowing from p through the
//    source to n (so a supply sourcing current into the circuit has a
//    negative branch current at its + node).
//  * ISource current flows p -> n through the source (SPICE convention:
//    it extracts from p and injects into n).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/tech.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "sim/mosfet.hpp"

namespace gcnrl::la {
class SparseSweepLu;  // la/sparse.hpp
}  // namespace gcnrl::la

namespace gcnrl::sim {

struct SimError : std::runtime_error {
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

// Resistance floor shared by every engine that stamps resistor branches
// (DC, AC G/C assembly, transient): conductances are computed as
// g = 1 / max(r, kMinResistance). A single definition keeps the DC and
// AC linearizations from drifting apart — a resistor clamped in one
// analysis but not another would make the AC system inconsistent with
// the operating point it is linearized around.
inline constexpr double kMinResistance = 1e-3;  // [ohm]

// Unknown-index mapping for a netlist.
class MnaMap {
 public:
  explicit MnaMap(const circuit::Netlist& nl);

  [[nodiscard]] int dim() const { return dim_; }
  // Row/column of a node voltage; -1 for ground.
  [[nodiscard]] int v(int node) const { return node == 0 ? -1 : node - 1; }
  // Row/column of a voltage-source branch current.
  [[nodiscard]] int branch(int vsrc_index) const {
    return num_nodes_ - 1 + vsrc_index;
  }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }

 private:
  int num_nodes_ = 0;
  int dim_ = 0;
};

struct MnaStructure;  // sim/structure.hpp

// Immutable per-simulation context: netlist + per-MOSFET models.
struct SimContext {
  const circuit::Netlist& nl;
  circuit::Technology tech;
  std::vector<MosModel> models;  // aligned with nl.mosfets()
  MnaMap map;
  // Sparse-engine structure (CSR pattern + stamp slots), computed once
  // per context from the topology alone — see sim/structure.hpp. Always
  // built (construction is one netlist walk); the engines consult
  // sparse_engine_enabled() to decide whether to use it.
  std::unique_ptr<const MnaStructure> structure;
  // Lazily-created blocked sweep engine shared by the AC and noise
  // sweeps: caching it here keeps the symbolic factorization (and its
  // workspace allocations) alive across sweeps of the same context.
  // mutable because the sweep entry points take a const context; safe
  // because a Simulator (and thus its context) is never shared across
  // threads.
  mutable std::unique_ptr<la::SparseSweepLu> sweep_cache;

  SimContext(const circuit::Netlist& netlist,
             const circuit::Technology& technology);
  ~SimContext();  // out of line: MnaStructure is incomplete here
};

// DC / large-signal operating point.
struct OpPoint {
  std::vector<double> v;        // node voltages, indexed by node id
  std::vector<double> branch_i; // vsource branch currents
  std::vector<MosOp> mos;       // per-MOSFET operating data
  std::vector<MosCaps> caps;    // per-MOSFET capacitances

  [[nodiscard]] double node(int id) const { return v.at(id); }
  // Current delivered by voltage source k out of its + terminal.
  [[nodiscard]] double source_current(int k) const { return -branch_i.at(k); }
};

// Dense-stamp helpers (ground rows/cols skipped).
void stamp_conductance(la::Mat& j, const MnaMap& m, int a, int b, double g);
void stamp_conductance(la::CMat& j, const MnaMap& m, int a, int b,
                       std::complex<double> g);
// VCCS: current g*(vc_p - vc_n) flowing from out_p to out_n inside the
// element (i.e. leaving node out_p).
void stamp_vccs(la::Mat& j, const MnaMap& m, int out_p, int out_n, int c_p,
                int c_n, double g);
void stamp_vccs(la::CMat& j, const MnaMap& m, int out_p, int out_n, int c_p,
                int c_n, std::complex<double> g);

// Log-spaced frequency grid, inclusive of both endpoints.
std::vector<double> logspace(double f_lo, double f_hi, int n);

}  // namespace gcnrl::sim
