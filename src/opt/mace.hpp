// MACE — batch Bayesian optimization via Multi-objective ACquisition
// Ensemble (Lyu et al., ICML 2018), the paper's strongest BO baseline [2].
//
// Idea: EI, PI and LCB disagree about where to sample; MACE treats the
// three acquisitions as objectives of a multi-objective problem and picks
// a BATCH of query points from the Pareto front of acquisition space, so
// one GP fit yields several diverse, well-motivated simulations. Our
// implementation samples a candidate pool (global uniform + local
// perturbations of the incumbent), computes the three acquisitions, takes
// the non-dominated subset, and draws the batch from it.
#pragma once

#include "opt/bayes_opt.hpp"
#include "opt/gp.hpp"
#include "opt/optimizer.hpp"

namespace gcnrl::opt {

struct MaceOptions {
  int initial_random = 10;
  int batch = 4;             // queries per GP fit (parallel BO)
  int pool = 512;            // candidate pool size
  double lcb_kappa = 2.0;    // LCB exploration weight
  double xi = 0.01;          // EI/PI offset
  int max_gp_points = 400;
};

class Mace : public Optimizer {
 public:
  Mace(int dim, Rng rng, MaceOptions opt = {});

  std::vector<std::vector<double>> ask() override;
  void tell(const std::vector<std::vector<double>>& xs,
            const std::vector<double>& ys) override;
  [[nodiscard]] int dim() const override { return dim_; }

 private:
  int dim_;
  Rng rng_;
  MaceOptions opt_;
  GaussianProcess gp_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  double best_y_ = -1e300;
};

}  // namespace gcnrl::opt
