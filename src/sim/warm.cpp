#include "sim/warm.hpp"

namespace gcnrl::sim {
namespace {

thread_local WarmStartScope* t_scope = nullptr;

}  // namespace

std::vector<double> project_op(const OpPoint& op, const MnaMap& map) {
  std::vector<double> x(static_cast<std::size_t>(map.dim()), 0.0);
  const int shared_nodes =
      std::min(map.num_nodes(), static_cast<int>(op.v.size()));
  for (int node = 1; node < shared_nodes; ++node) {
    x[static_cast<std::size_t>(map.v(node))] = op.v[node];
  }
  const int shared_branches =
      std::min(map.dim() - (map.num_nodes() - 1),
               static_cast<int>(op.branch_i.size()));
  for (int k = 0; k < shared_branches; ++k) {
    x[static_cast<std::size_t>(map.branch(k))] = op.branch_i[k];
  }
  return x;
}

const OpPoint* WarmStartBank::slot_op(int slot, const MnaMap& map) const {
  if (slot < 0 || static_cast<std::size_t>(slot) >= slots_.size()) {
    return nullptr;
  }
  const Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (!s.valid || s.num_nodes != map.num_nodes() ||
      s.num_branches != map.dim() - (map.num_nodes() - 1)) {
    return nullptr;
  }
  return &s.op;
}

void WarmStartBank::store(int slot, const MnaMap& map, const OpPoint& op) {
  if (slot < 0) return;
  if (static_cast<std::size_t>(slot) >= slots_.size()) {
    slots_.resize(static_cast<std::size_t>(slot) + 1);
  }
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.valid = true;
  s.num_nodes = map.num_nodes();
  s.num_branches = map.dim() - (map.num_nodes() - 1);
  s.op = op;
  last_ = op;
  has_last_ = true;
}

WarmStartScope::WarmStartScope(WarmStartBank* bank)
    : bank_(bank), prev_(t_scope) {
  t_scope = this;
}

WarmStartScope::~WarmStartScope() { t_scope = prev_; }

WarmStartScope* WarmStartScope::current() { return t_scope; }

}  // namespace gcnrl::sim
