// Shared optimization-loop drivers used by the examples and the benchmark
// harnesses: run a DDPG agent or a black-box optimizer against a
// SizingEnv for a step budget and record the best-so-far FoM trace (the
// quantity plotted in the paper's Figs. 5/7/8).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "env/sizing_env.hpp"
#include "opt/optimizer.hpp"
#include "rl/ddpg.hpp"

namespace gcnrl::rl {

struct RunResult {
  std::vector<double> best_trace;  // best FoM after each evaluation
  double best_fom = -1e300;
  la::Mat best_actions;            // n x kMaxActionDim
  env::MetricMap best_metrics;

  void record(double fom);
};

// Run `agent` for `steps` episodes of Algorithm 1 against `env`.
RunResult run_ddpg(env::SizingEnv& env, DdpgAgent& agent, int steps);

// Run a black-box optimizer (ask/tell on the flattened space).
RunResult run_optimizer(env::SizingEnv& env, opt::Optimizer& optimizer,
                        int steps);

// Evaluate `steps` uniform random designs (the paper's Random baseline).
RunResult run_random(env::SizingEnv& env, int steps, Rng rng);

}  // namespace gcnrl::rl
