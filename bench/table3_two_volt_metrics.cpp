// Table III reproduction: Two-Volt per-metric breakdown for every method.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

namespace {

std::vector<std::string> metric_row(const std::string& label,
                                    const env::MetricMap& m, double fom) {
  auto get = [&](const char* k) {
    auto it = m.find(k);
    return it == m.end() ? 0.0 : it->second;
  };
  return {label,
          TextTable::num(get("bw") / 1e6, 3),       // MHz
          TextTable::num(get("cpm"), 3),            // deg
          TextTable::num(get("dpm"), 3),            // deg
          TextTable::num(get("power") * 1e4, 3),    // x1e-4 W
          TextTable::num(get("noise") * 1e9, 3),    // nV/sqrt(Hz)
          TextTable::num(get("gain") / 1e3, 3),     // x1000
          TextTable::num(get("gbw") / 1e12, 3),     // THz
          TextTable::num(fom, 3)};
}

}  // namespace

int main() {
  const BenchConfig cfg = bench_config();
  const auto tech = circuit::make_technology("180nm");
  Rng rng(2024);

  std::printf(
      "Table III: Two-Volt metric breakdown (steps=%d)\n"
      "Units: BW MHz | CPM deg | DPM deg | Power x1e-4 W | Noise nV/rtHz | "
      "Gain x1000 | GBW THz\n%s\n\n",
      cfg.steps, bench::eval_banner().c_str());

  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());
  bench::EnvFactory factory("Two-Volt", tech, env::IndexMode::OneHot,
                            cfg.calib_samples, rng, svc);
  TextTable table({"Design", "BW", "CPM", "DPM", "Power", "Noise", "Gain",
                   "GBW", "FoM"});
  {
    auto env = factory.make();
    const auto h = env->evaluate_params(env->bench().human_expert);
    table.add_row(metric_row("Human", h.metrics, h.fom));
  }
  long es_sims = 0;  // BO/MACE stop at the ES run's simulated cost
  for (const auto& method : bench::kMethods) {
    const auto run = bench::run_method(method, factory, cfg.steps,
                                       cfg.warmup, 1000, es_sims);
    if (method == "ES") es_sims = run.sims;
    table.add_row(metric_row(method, run.best_metrics, run.best_fom));
    std::printf("  %s done (best FoM %.3f, %ld sims)\n", method.c_str(),
                run.best_fom, run.sims);
    std::fflush(stdout);
  }
  std::printf("\n");
  table.print();
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper reference (GCN-RL row): BW 84.7 MHz, CPM 180, DPM 96.3, "
      "Power 2.56e-4 W,\nNoise 58.7, Gain 29.4 x1000, GBW 2.57 THz, FoM "
      "2.33. Expected shape: GCN-RL\nbalances PM/gain/noise rather than "
      "maxing a single metric.\n");
  return 0;
}
