// Small-signal AC analysis.
//
// Linearizes every MOSFET at the DC operating point (gm VCCS, gds, and the
// four capacitances) and solves the complex MNA system Y(w) x = rhs at
// each frequency, where rhs carries the `ac` magnitudes of the independent
// sources. Results are node-voltage phasors per frequency.
#pragma once

#include <complex>

#include "sim/mna.hpp"

namespace gcnrl::sim {

struct AcResult {
  std::vector<double> freq;  // [Hz]
  la::CMat v;                // freq.size() x num_nodes node phasors

  [[nodiscard]] std::complex<double> phasor(int f_index, int node) const {
    return v(f_index, node);
  }
  // Differential phasor between two nodes.
  [[nodiscard]] std::complex<double> diff(int f_index, int p, int n) const {
    return v(f_index, p) - v(f_index, n);
  }
};

// Frequency-independent split of the small-signal MNA system:
//   Y(omega) = G + j*omega*C
// G carries everything resistive (resistor conductances, gm/gds stamps,
// voltage-source branch rows, the regularization shunt); C carries every
// capacitance (explicit capacitors plus the four MOS caps). Both are
// built once per operating point by a single netlist walk, and each
// sweep/noise frequency assembles Y by scaled addition instead of
// re-walking the netlist.
struct AcStamps {
  la::Mat g;  // conductance matrix, frequency-independent
  la::Mat c;  // capacitance matrix; contributes j*omega*c per entry
};

AcStamps build_ac_stamps(const SimContext& ctx, const OpPoint& op);

// Y(omega) = G + j*omega*C from a prebuilt split.
la::CMat assemble_ac_matrix(const AcStamps& stamps, double omega);

// Legacy single-pass assembly (netlist walk per frequency). Kept as the
// reference implementation for the G/C equivalence tests and benchmarks;
// the solvers use build_ac_stamps + assemble_ac_matrix.
la::CMat build_ac_matrix(const SimContext& ctx, const OpPoint& op,
                         double omega);

AcResult solve_ac(const SimContext& ctx, const OpPoint& op,
                  const std::vector<double>& freqs);

}  // namespace gcnrl::sim
