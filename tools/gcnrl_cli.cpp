// gcnrl_cli: declarative front end for the task API. Reads a JSON task
// spec (schema: src/api/spec.hpp), executes it through api::run_tasks —
// one shared EvalService, lockstep seeds, automatic ES -> BO/MACE budget
// chaining — and renders per-seed reports plus a summary table. Every
// budget is a simulated-cost count, so the report is bit-reproducible
// run-to-run at any GCNRL_EVAL_THREADS.
//
//   gcnrl_cli spec.json               run the spec, print the report
//   gcnrl_cli --list                  print registered circuits/methods/nodes
//   gcnrl_cli --repeat 2 spec.json    run the whole task list twice on one
//                                     warm shared service and byte-compare
//                                     the per-task reports (determinism
//                                     gate; non-zero exit on divergence)
//   gcnrl_cli --csv out_ spec.json    also write per-task best-FoM traces
//                                     to out_<label>.csv plus a per-seed
//                                     summary (best/evals/sims and the
//                                     warm-start source of each task) to
//                                     out_tasks.csv
//
// The binary also demonstrates the registry extension point: it registers
// one extra circuit, "Demo-OTA" (a five-transistor OTA; a trimmed twin of
// examples/custom_circuit.cpp), purely through the public
// api::register_circuit surface — spec files can target it like any
// built-in (see specs/custom.json).
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "circuit/tech.hpp"
#include "circuits/helpers.hpp"
#include "common/table.hpp"
#include "meas/ac_metrics.hpp"
#include "sim/simulator.hpp"

using namespace gcnrl;

namespace {

// --- Demo-OTA: user-circuit registration demo -----------------------------

env::BenchmarkCircuit make_demo_ota(const circuit::Technology& tech) {
  env::BenchmarkCircuit bc;
  bc.name = "Demo-OTA";
  bc.tech = tech;

  auto& nl = bc.netlist;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int inp = nl.node("inp");
  const int inn = nl.node("inn");
  const int d1 = nl.node("d1");
  const int out = nl.node("out");
  const int tail = nl.node("tail");
  const int vbn = nl.node("vbn");

  nl.add_vsource("VDD", vdd, 0, tech.vdd);
  nl.add_vsource("VIP", inp, 0, tech.vdd * 0.55, +0.5);
  nl.add_vsource("VIN", inn, 0, tech.vdd * 0.55, -0.5);
  nl.add_isource("IB", vdd, vbn, 25e-6);

  const double l = tech.lmin;
  nl.add_nmos("M1", d1, inp, tail, 0, 20e-6, 2 * l, 1);   // pair
  nl.add_nmos("M2", out, inn, tail, 0, 20e-6, 2 * l, 1);  // pair
  nl.add_pmos("M3", d1, d1, vdd, vdd, 10e-6, 2 * l, 1);   // mirror diode
  nl.add_pmos("M4", out, d1, vdd, vdd, 10e-6, 2 * l, 1);  // mirror out
  nl.add_nmos("M5", tail, vbn, 0, 0, 10e-6, 2 * l, 2);    // tail
  nl.add_nmos("MB", vbn, vbn, 0, 0, 10e-6, 2 * l, 1,
              /*designable=*/false);  // bias diode kept fixed
  nl.add_capacitor("CL", out, 0, 1e-12, /*designable=*/false);

  bc.space = circuit::DesignSpace::from_netlist(nl, tech);
  bc.space.add_match_group(nl, {"M1", "M2"});
  bc.space.add_match_group(nl, {"M3", "M4"});

  env::FomSpec fom;
  fom.metrics = {
      {"gain", "V/V", +1.0, {}, 10.0, {}, true},
      {"gbw", "Hz", +1.0, {}, {}, {}, true},
      {"power", "W", -1.0, {}, {}, {}, true},
  };
  bc.fom = fom;

  // Concurrency contract of BenchmarkCircuit::evaluate: by-value captures
  // only, Simulators local to the call.
  const auto tech_copy = tech;
  const int out_node = out;
  bc.evaluate = [out_node, tech_copy](const circuit::Netlist& sized) {
    sim::Simulator s(sized, tech_copy);
    env::MetricMap m;
    m["power"] = s.supply_power();
    const auto ac = s.ac(sim::logspace(1e2, 1e10, 81));
    const auto h = circuits::detail::curve_at(ac, out_node);
    m["gain"] = meas::dc_gain(h);
    m["gbw"] = meas::gbw(h);
    return m;
  };

  bc.human_expert.v = {{20e-6, 2 * l, 1}, {20e-6, 2 * l, 1},
                       {10e-6, 2 * l, 1}, {10e-6, 2 * l, 1},
                       {10e-6, 2 * l, 2}};
  return bc;
}

// Registered before main() — the spec file addresses "Demo-OTA" exactly
// like a built-in.
const api::CircuitRegistrar demo_ota_registrar{"Demo-OTA", make_demo_ota};

// --- reporting ------------------------------------------------------------

// The comparable per-task report: everything in it is warmth-independent
// (best FoM / evals / sims / trace fingerprint), so --repeat passes on one
// shared warm service must reproduce it byte-for-byte.
std::string task_report(std::size_t index, const api::TaskResult& r) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "task[%zu] %s: circuit=%s method=%s node=%s steps=%d "
                "warmup=%d seeds=%d\n",
                index, r.spec.label.c_str(), r.spec.circuit.c_str(),
                r.spec.method.c_str(), r.spec.node.c_str(), r.spec.steps,
                r.spec.warmup, r.spec.seeds);
  std::string out = head;
  for (std::size_t s = 0; s < r.runs.size(); ++s) {
    const rl::RunResult& run = r.runs[s];
    char row[160];
    std::snprintf(row, sizeof(row),
                  "  seed=%zu best=%.17g evals=%ld sims=%ld trace[%zu]=%s\n",
                  s, run.best_fom, run.evals, run.sims,
                  run.best_trace.size(),
                  api::trace_fingerprint(run.best_trace).c_str());
    out += row;
  }
  return out;
}

std::string sanitize_label(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!keep) c = '_';
  }
  return out;
}

// Sanitized labels can collide (two tasks with the same default label, or
// distinct labels collapsing under sanitization); disambiguate with the
// task index rather than silently overwriting the earlier task's file.
std::string trace_path(const std::string& prefix, const api::TaskResult& r,
                       std::size_t index, std::set<std::string>& used) {
  std::string path = prefix + sanitize_label(r.spec.label) + ".csv";
  if (!used.insert(path).second) {
    path = prefix + sanitize_label(r.spec.label) + "_task" +
           std::to_string(index) + ".csv";
    used.insert(path);
  }
  return path;
}

void write_traces(const std::string& path, const api::TaskResult& r) {
  CsvWriter csv(path);
  std::vector<std::string> header = {"step"};
  for (std::size_t s = 0; s < r.runs.size(); ++s) {
    header.push_back("seed" + std::to_string(s));
  }
  csv.row(header);
  std::size_t max_len = 0;
  for (const auto& run : r.runs) {
    max_len = std::max(max_len, run.best_trace.size());
  }
  for (std::size_t i = 0; i < max_len; ++i) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (const auto& run : r.runs) {
      row.push_back(i < run.best_trace.size()
                        ? TextTable::num(run.best_trace[i], 6)
                        : "");
    }
    csv.row(row);
  }
  std::printf("wrote %s\n", path.c_str());
}

// Per-seed summary across all tasks: one row per (task, seed) with the
// warmth-independent numbers (best FoM, evals, sims — the sims column is
// what budget-chain and transfer-cost audits read) and the task's
// warm-start source, so pretrain and transfer rows are distinguishable
// even under hand-set colliding labels.
void write_task_summary(const std::string& path,
                        const std::vector<api::TaskResult>& results) {
  CsvWriter csv(path);
  csv.row({"task", "label", "circuit", "method", "node", "warm_start",
           "seed", "best", "evals", "sims"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const api::TaskResult& r = results[i];
    std::string warm;
    if (!r.spec.pretrain_from.empty()) {
      warm = "pretrain:" + r.spec.pretrain_from;
    } else if (!r.spec.load_checkpoint.empty()) {
      warm = "checkpoint:" + r.spec.load_checkpoint;
    }
    for (std::size_t s = 0; s < r.runs.size(); ++s) {
      const rl::RunResult& run = r.runs[s];
      char best[40];
      std::snprintf(best, sizeof(best), "%.17g", run.best_fom);
      csv.row({std::to_string(i), r.spec.label, r.spec.circuit,
               r.spec.method, r.spec.node, warm, std::to_string(s), best,
               std::to_string(run.evals), std::to_string(run.sims)});
    }
  }
  std::printf("wrote %s\n", path.c_str());
}

void print_list() {
  std::printf("circuits:\n");
  for (const auto& n : api::circuit_names()) {
    std::printf("  %s\n", n.c_str());
  }
  std::printf("methods:\n");
  for (const auto& n : api::method_names()) {
    const api::MethodInfo& mi = api::method_info(n);
    const char* kind = "";
    switch (mi.kind) {
      case api::MethodKind::Anchor: kind = "anchor"; break;
      case api::MethodKind::Random: kind = "random"; break;
      case api::MethodKind::AskTell: kind = "ask/tell"; break;
      case api::MethodKind::Ddpg: kind = "ddpg"; break;
    }
    if (mi.budget_from.empty()) {
      std::printf("  %-7s (%s)\n", n.c_str(), kind);
    } else {
      std::printf("  %-7s (%s, budget from %s)\n", n.c_str(), kind,
                  mi.budget_from.c_str());
    }
  }
  std::printf("nodes:\n");
  for (const auto& n : circuit::available_nodes()) {
    std::printf("  %s\n", n.c_str());
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--repeat N] [--csv PREFIX] [--circuit FILE]... "
               "<spec.json>\n"
               "       %s --list\n"
               "--circuit registers a .gcir circuit description before the "
               "spec runs\n(repeatable; spec files can also register their "
               "own via \"circuit_file\").\n"
               "Spec schema: src/api/spec.hpp (see also specs/*.json and "
               "README \"Public API\").\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string csv_prefix;
  std::vector<std::string> circuit_files;
  int repeat = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      print_list();
      return 0;
    }
    if (arg == "--repeat") {
      if (i + 1 >= argc) return usage(argv[0]);
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) return usage(argv[0]);
    } else if (arg == "--csv") {
      if (i + 1 >= argc) return usage(argv[0]);
      csv_prefix = argv[++i];
    } else if (arg == "--circuit") {
      if (i + 1 >= argc) return usage(argv[0]);
      circuit_files.emplace_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) return usage(argv[0]);

  try {
    // File circuits first, so the spec's validation pass can address them
    // by their declared names just like built-ins.
    for (const std::string& file : circuit_files) {
      std::printf("registered circuit \"%s\" from %s\n",
                  api::register_circuit_file(file).c_str(), file.c_str());
    }
    const api::TaskFile spec = api::load_task_spec(spec_path);
    api::RunOptions opts = spec.options;
    // One service for every pass: pass 2+ run on a fully warmed cache,
    // which must not change a single reported byte.
    opts.service =
        std::make_shared<env::EvalService>(env::eval_config_from_env());

    std::printf("%s: %zu task(s)\n%s\n", spec_path.c_str(),
                spec.tasks.size(), api::eval_banner().c_str());

    std::vector<std::string> first_pass;
    std::set<std::string> csv_paths;
    bool diverged = false;
    for (int pass = 0; pass < repeat; ++pass) {
      const auto results = api::run_tasks(spec.tasks, opts);
      if (pass == 0) {
        TextTable table(
            {"Task", "Circuit", "Method", "Node", "Best FoM", "Sims"});
        long total_sims = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
          const std::string report = task_report(i, results[i]);
          first_pass.push_back(report);
          std::fputs(report.c_str(), stdout);
          const api::TaskResult& r = results[i];
          long sims = 0;
          for (const long s : r.sims) sims += s;
          total_sims += sims;
          table.add_row({r.spec.label, r.spec.circuit, r.spec.method,
                         r.spec.node,
                         r.spec.seeds > 1
                             ? api::pm(r.mean, r.stddev)
                             : TextTable::num(r.mean, 3),
                         std::to_string(sims)});
          if (!csv_prefix.empty()) {
            write_traces(trace_path(csv_prefix, results[i], i, csv_paths),
                         results[i]);
          }
        }
        if (!csv_prefix.empty()) {
          write_task_summary(csv_prefix + "tasks.csv", results);
        }
        std::printf("\n");
        table.print();
        std::printf("total simulated cost: %ld\n", total_sims);
      } else {
        bool pass_ok = results.size() == first_pass.size();
        for (std::size_t i = 0; pass_ok && i < results.size(); ++i) {
          pass_ok = task_report(i, results[i]) == first_pass[i];
        }
        std::printf("pass %d (warm cache): %s\n", pass + 1,
                    pass_ok ? "byte-identical" : "DIVERGED");
        if (!pass_ok) diverged = true;
      }
    }
    return diverged ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gcnrl_cli: %s\n", e.what());
    return 2;
  }
}
