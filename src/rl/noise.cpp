#include "rl/noise.hpp"

#include <algorithm>
#include <cmath>

namespace gcnrl::rl {

double TruncatedNormalNoise::sigma(int explore_episode) const {
  return std::max(sigma_min_,
                  sigma0_ * std::pow(decay_, std::max(explore_episode, 0)));
}

la::Mat TruncatedNormalNoise::apply(const la::Mat& actions,
                                    int explore_episode, Rng& rng) const {
  const double s = sigma(explore_episode);
  la::Mat out = actions;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      out(r, c) = rng.truncated_normal(out(r, c), s, -1.0, 1.0);
    }
  }
  return out;
}

}  // namespace gcnrl::rl
