// Per-analysis attribution counters for the simulator hot path.
//
// Every FoM evaluation decomposes into DC solves, AC sweeps, noise sweeps
// and transient runs; this registry attributes work (calls, iterations /
// frequency points, wall time) to each analysis so benches like
// bench/micro_eval can report *where* an evaluation spends its time and
// later PRs can track a per-analysis perf trajectory instead of a single
// evals/sec number.
//
// The counters are process-global atomics: recording happens once per
// analysis call (never per Newton iteration), so the hot-path overhead is
// two clock reads and a handful of relaxed atomic adds per solve. Wall
// time feeds reporting only — it is never part of a result, a budget, or
// a cache key, so the determinism contracts of the evaluation engine are
// untouched. Snapshots are exact even while worker threads are recording.
#pragma once

namespace gcnrl::sim {

// Wall time split by solver phase within one analysis call. `assembly` is
// stamp evaluation + value-array/matrix fill, `factor` the LU
// factorization (for the sparse AC/noise sweep this includes the blocked
// per-frequency scatter, which is part of the blocked refactorization),
// `solve` the triangular solves. The phases never sum exactly to the
// analysis' total seconds — device-model evaluation, convergence checks
// and bookkeeping live between them.
struct PhaseSeconds {
  double assembly = 0.0;
  double factor = 0.0;
  double solve = 0.0;
};

// One analysis kind's totals since the last reset.
struct AnalysisPerf {
  long calls = 0;      // solve_dc / solve_ac / solve_noise / solve_tran calls
  long items = 0;      // Newton iterations (DC, tran) or frequency points
                       // (AC, noise)
  long warm_hits = 0;  // DC only: solves converged directly from a warm start
  long warm_fallbacks = 0;  // DC only: warm attempts that fell back to the
                            // cold gmin/source-stepping ladder
  long sparse_fallbacks = 0;  // analyses rerun densely after the sparse
                              // engine rejected a factorization
  double seconds = 0.0;       // wall time inside the analysis
  PhaseSeconds phase;         // assembly / factor / solve attribution
};

struct SimPerf {
  AnalysisPerf dc;
  AnalysisPerf ac;
  AnalysisPerf noise;
  AnalysisPerf tran;
};

enum class Analysis { Dc, Ac, Noise, Tran };

// Accumulate one analysis call. `items`/`warm_*` as per AnalysisPerf;
// `phases`, when non-null, adds per-phase attribution.
void sim_perf_record(Analysis which, long items, double seconds,
                     long warm_hits = 0, long warm_fallbacks = 0,
                     const PhaseSeconds* phases = nullptr);

// Count one sparse-engine rejection (the analysis rerun happens on the
// dense path and records itself through sim_perf_record as usual).
void sim_perf_sparse_fallback(Analysis which);

// Totals since process start or the last sim_perf_reset().
SimPerf sim_perf_snapshot();
void sim_perf_reset();

}  // namespace gcnrl::sim
