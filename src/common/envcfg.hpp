// Benchmark scaling knobs (see DESIGN.md "Scaling knobs").
//
// The paper's full protocol (10 000 search steps x 3 seeds x 7 methods x 4
// circuits) takes hours; the default configuration reproduces the *shape*
// of every table/figure in minutes on a single core. Environment variables:
//
//   GCNRL_STEPS   override search steps per run
//   GCNRL_SEEDS   override number of seeds per configuration
//   GCNRL_CALIB   override FoM-calibration random-sample count
//   GCNRL_FULL=1  select the paper-scale protocol wholesale
#pragma once

#include <string>

namespace gcnrl {

struct BenchConfig {
  int steps = 300;        // search steps per optimization run
  int warmup = 100;       // RL warm-up (random) steps
  int transfer_steps = 150;  // steps for the transfer experiments
  int transfer_warmup = 50;
  int seeds = 2;          // paper: 3
  int calib_samples = 300;  // paper: 5000
  bool full = false;
};

// Reads the environment and produces the effective configuration.
BenchConfig bench_config();

// Integer environment variable with default. Malformed values ("abc",
// "12abc", "1.5", out-of-int-range) never parse silently: they emit a
// one-line warning on stderr and fall back to `fallback`. Unset or empty
// values fall back silently.
int env_int(const char* name, int fallback);
// Boolean flag (tokens case-insensitive). False: unset, "", "0", "false",
// "no", "off"; true: "1", "true", "yes", "on". Any other value warns on
// stderr and counts as true (the historical any-non-empty-is-true
// behaviour, made loud).
bool env_flag(const char* name);

}  // namespace gcnrl
