#include "opt/random_search.hpp"

namespace gcnrl::opt {

std::vector<std::vector<double>> RandomSearch::ask() {
  std::vector<std::vector<double>> out(batch_, std::vector<double>(dim_));
  for (auto& x : out) {
    for (auto& v : x) v = rng_.uniform(-1.0, 1.0);
  }
  return out;
}

}  // namespace gcnrl::opt
