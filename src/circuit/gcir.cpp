// Strict line-oriented parser for the .gcir circuit-description format
// (format reference: gcir.hpp). Mirrors the loud-failure philosophy of
// api/spec.cpp: every diagnostic carries an <origin>:line:column position,
// unknown directives/keys list the known set, and all cross-references
// (nets, sources, components, benches, metrics) are resolved at parse
// time so a parsed description cannot fail name lookup later.
#include "circuit/gcir.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gcnrl::circuit {

namespace {

struct Token {
  std::string text;
  int col = 1;  // 1-based column of the first character
};

// Key=value view of a token ("fixed" -> flag without '=').
struct KeyValue {
  std::string key;
  std::string value;
  bool has_value = false;
  int col = 1;
};

bool is_ground_alias(const std::string& n) {
  return n == "0" || n == "gnd" || n == "vss";
}

class GcirParser {
 public:
  GcirParser(const std::string& text, std::string origin)
      : text_(text), origin_(std::move(origin)) {}

  CircuitDescription run() {
    d_.origin = origin_;
    std::size_t pos = 0;
    int line_no = 0;
    while (pos <= text_.size()) {
      std::size_t eol = text_.find('\n', pos);
      if (eol == std::string::npos) eol = text_.size();
      ++line_no;
      parse_line(text_.substr(pos, eol - pos), line_no);
      if (eol == text_.size()) break;
      pos = eol + 1;
    }
    finish(line_no);
    return std::move(d_);
  }

 private:
  [[noreturn]] void fail(int line, int col, const std::string& what) const {
    throw std::runtime_error("gcir parse error at " + origin_ + ":" +
                             std::to_string(line) + ":" +
                             std::to_string(col) + ": " + what);
  }

  std::vector<Token> tokenize(const std::string& line) const {
    std::vector<Token> out;
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (c == '#') break;  // comment to end of line
      if (c == ' ' || c == '\t' || c == '\r') {
        ++i;
        continue;
      }
      const std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
             line[i] != '\r' && line[i] != '#') {
        ++i;
      }
      out.push_back({line.substr(start, i - start),
                     static_cast<int>(start) + 1});
    }
    return out;
  }

  KeyValue split_kv(const Token& tok) const {
    const std::size_t eq = tok.text.find('=');
    if (eq == std::string::npos) return {tok.text, "", false, tok.col};
    return {tok.text.substr(0, eq), tok.text.substr(eq + 1), true, tok.col};
  }

  Expr parse_expr(int line, const KeyValue& kv) const {
    if (kv.value.empty()) {
      fail(line, kv.col, "\"" + kv.key + "\" needs a value");
    }
    // Column of the value itself, past "key=".
    return parse_expr_text(
        line, kv.col + static_cast<int>(kv.key.size()) + 1, kv.value);
  }

  Expr parse_expr_text(int line, int col, const std::string& text) const {
    try {
      return Expr::parse(text);
    } catch (const std::invalid_argument& e) {
      // Expr::parse reports "... at offset N: ..."; shift the column to
      // the offending character inside the token.
      const std::string what = e.what();
      const std::string tag = " at offset ";
      const std::size_t p = what.find(tag);
      const int off =
          p == std::string::npos ? 0 : std::atoi(what.c_str() + p + tag.size());
      fail(line, col + off, what);
    }
  }

  // "(t,v)(t,v)..." with full expression nesting inside the pairs.
  std::vector<std::pair<Expr, Expr>> parse_pwl(int line,
                                               const KeyValue& kv) const {
    std::vector<std::pair<Expr, Expr>> out;
    const std::string& s = kv.value;
    std::size_t i = 0;
    while (i < s.size()) {
      if (s[i] != '(') fail(line, kv.col, "pwl: expected '(' in pairs");
      int depth = 1;
      const std::size_t start = ++i;
      std::size_t comma = std::string::npos;
      while (i < s.size() && depth > 0) {
        if (s[i] == '(') ++depth;
        else if (s[i] == ')') --depth;
        else if (s[i] == ',' && depth == 1 && comma == std::string::npos) {
          comma = i;
        }
        ++i;
      }
      if (depth != 0) fail(line, kv.col, "pwl: unbalanced parentheses");
      if (comma == std::string::npos) {
        fail(line, kv.col, "pwl: each pair needs \"(time,value)\"");
      }
      out.emplace_back(
          parse_expr_text(line, kv.col, s.substr(start, comma - start)),
          parse_expr_text(line, kv.col, s.substr(comma + 1, i - 1 - comma - 1)));
    }
    if (out.empty()) fail(line, kv.col, "pwl: needs at least one pair");
    return out;
  }

  // --- name resolution ---------------------------------------------------

  bool net_declared(const std::string& name) const {
    if (is_ground_alias(name)) return true;
    for (const NetDesc& n : d_.nets) {
      if (n.name == name) return true;
    }
    return false;
  }

  void require_net(int line, const Token& tok) const {
    if (!net_declared(tok.text)) {
      fail(line, tok.col,
           "undeclared net \"" + tok.text +
               "\" (declare it with \"net\" or \"supply\" first)");
    }
  }

  const DeviceDesc* find_device(const std::string& name) const {
    for (const DeviceDesc& dev : d_.devices) {
      if (dev.name == name) return &dev;
    }
    return nullptr;
  }

  const SourceDesc* find_source(const std::string& name) const {
    for (const SourceDesc& s : d_.sources) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  const DeviceDesc& require_designable(int line, const Token& tok) const {
    const DeviceDesc* dev = find_device(tok.text);
    if (dev == nullptr) {
      fail(line, tok.col, "unknown component \"" + tok.text + "\"");
    }
    if (!dev->designable) {
      fail(line, tok.col,
           "component \"" + tok.text + "\" is fixed, not designable");
    }
    return *dev;
  }

  int find_bench(const std::string& name) const {
    for (std::size_t i = 0; i < d_.benches.size(); ++i) {
      if (d_.benches[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  BenchDesc& require_bench(int line, const Token& tok) {
    const int i = find_bench(tok.text);
    if (i < 0) {
      fail(line, tok.col,
           "unknown bench \"" + tok.text +
               "\" (declare it with \"bench\" first)");
    }
    return d_.benches[static_cast<std::size_t>(i)];
  }

  void require_unique_element(int line, const Token& tok) const {
    if (find_device(tok.text) != nullptr || find_source(tok.text) != nullptr) {
      fail(line, tok.col, "duplicate element name \"" + tok.text + "\"");
    }
  }

  void need_args(int line, const std::vector<Token>& toks,
                 std::size_t n, const char* usage) const {
    if (toks.size() < n) {
      fail(line, toks[0].col,
           "\"" + toks[0].text + "\" needs: " + usage);
    }
  }

  [[noreturn]] void unknown_key(int line, const KeyValue& kv,
                                const char* directive,
                                const char* known) const {
    fail(line, kv.col,
         std::string(directive) + ": unknown key \"" + kv.key +
             "\" (known: " + known + ")");
  }

  // --- directives --------------------------------------------------------

  // "#lint: allow CHECK-ID" pragmas ride inside comments (so the file
  // stays valid for comment-stripping tools); intercept them before
  // tokenize() drops everything after '#'.
  bool parse_lint_pragma(const std::string& line, int line_no) {
    const std::size_t at = line.find_first_not_of(" \t");
    if (at == std::string::npos || line.compare(at, 6, "#lint:") != 0) {
      return false;
    }
    std::vector<Token> toks;
    std::size_t i = at + 6;
    while (i < line.size()) {
      if (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
        ++i;
        continue;
      }
      const std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
             line[i] != '\r') {
        ++i;
      }
      toks.push_back({line.substr(start, i - start),
                      static_cast<int>(start) + 1});
    }
    if (toks.size() != 2 || toks[0].text != "allow") {
      fail(line_no, static_cast<int>(at) + 1,
           "lint pragma: expected \"#lint: allow CHECK-ID\"");
    }
    d_.lint_allows.push_back({toks[1].text, line_no, toks[1].col});
    return true;
  }

  void parse_line(const std::string& line, int line_no) {
    if (parse_lint_pragma(line, line_no)) return;
    const std::vector<Token> toks = tokenize(line);
    if (toks.empty()) return;
    const std::string& dir = toks[0].text;
    if (dir != "circuit" && d_.name.empty()) {
      fail(line_no, toks[0].col,
           "the first directive must be \"circuit NAME\"");
    }
    if (dir == "circuit") parse_circuit(line_no, toks);
    else if (dir == "supply" || dir == "net") parse_nets(line_no, toks);
    else if (dir == "vsource" || dir == "isource") parse_source(line_no, toks);
    else if (dir == "nmos" || dir == "pmos") parse_mos(line_no, toks);
    else if (dir == "resistor" || dir == "capacitor") parse_rc(line_no, toks);
    else if (dir == "bound") parse_bound(line_no, toks);
    else if (dir == "match") parse_match(line_no, toks);
    else if (dir == "metric") parse_metric(line_no, toks);
    else if (dir == "expert") parse_expert(line_no, toks);
    else if (dir == "bench") parse_bench(line_no, toks);
    else if (dir == "set") parse_set(line_no, toks);
    else if (dir == "ac") parse_ac(line_no, toks);
    else if (dir == "noise") parse_noise(line_no, toks);
    else if (dir == "tran") parse_tran(line_no, toks);
    else if (dir == "warm") parse_warm(line_no, toks);
    else if (dir == "extract") parse_extract(line_no, toks);
    else {
      fail(line_no, toks[0].col,
           "unknown directive \"" + dir +
               "\" (known: circuit, supply, net, vsource, isource, nmos, "
               "pmos, resistor, capacitor, bound, match, metric, expert, "
               "bench, set, ac, noise, tran, warm, extract)");
    }
  }

  void parse_circuit(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 2, "circuit NAME");
    if (!d_.name.empty()) {
      fail(line, toks[0].col, "duplicate \"circuit\" directive");
    }
    if (toks.size() > 2) {
      fail(line, toks[2].col, "\"circuit\" takes exactly one name");
    }
    d_.name = toks[1].text;
    d_.name_line = line;
    d_.name_col = toks[0].col;
  }

  void parse_nets(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 2, "net|supply NET...");
    const bool supply = toks[0].text == "supply";
    for (std::size_t i = 1; i < toks.size(); ++i) {
      if (is_ground_alias(toks[i].text)) {
        fail(line, toks[i].col,
             "\"" + toks[i].text + "\" is a predeclared ground alias");
      }
      if (net_declared(toks[i].text)) {
        fail(line, toks[i].col, "duplicate net \"" + toks[i].text + "\"");
      }
      d_.nets.push_back({toks[i].text, supply, line, toks[i].col});
    }
  }

  void parse_source(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 5,
              "vsource|isource NAME P N dc=EXPR [ac=EXPR] [pwl=...]");
    SourceDesc s;
    s.is_vsource = toks[0].text == "vsource";
    s.name = toks[1].text;
    s.line = line;
    s.col = toks[0].col;
    require_unique_element(line, toks[1]);
    require_net(line, toks[2]);
    require_net(line, toks[3]);
    s.p = toks[2].text;
    s.n = toks[3].text;
    bool have_dc = false;
    for (std::size_t i = 4; i < toks.size(); ++i) {
      const KeyValue kv = split_kv(toks[i]);
      if (kv.key == "dc") {
        s.dc = parse_expr(line, kv);
        have_dc = true;
      } else if (kv.key == "ac") {
        s.ac = parse_expr(line, kv);
      } else if (kv.key == "pwl") {
        s.pwl = parse_pwl(line, kv);
      } else {
        unknown_key(line, kv, toks[0].text.c_str(), "dc, ac, pwl");
      }
    }
    if (!have_dc) {
      fail(line, toks[0].col,
           "source \"" + s.name + "\" needs \"dc=EXPR\"");
    }
    d_.element_order.push_back({true, static_cast<int>(d_.sources.size())});
    d_.sources.push_back(std::move(s));
  }

  void parse_mos(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 9,
              "nmos|pmos NAME D G S B w=EXPR l=EXPR m=EXPR [fixed]");
    DeviceDesc dev;
    dev.kind = toks[0].text == "nmos" ? Kind::Nmos : Kind::Pmos;
    dev.name = toks[1].text;
    dev.line = line;
    dev.col = toks[0].col;
    require_unique_element(line, toks[1]);
    for (std::size_t i = 2; i < 6; ++i) {
      require_net(line, toks[i]);
      dev.nodes.push_back(toks[i].text);
    }
    bool have[3] = {false, false, false};
    for (std::size_t i = 6; i < toks.size(); ++i) {
      const KeyValue kv = split_kv(toks[i]);
      if (kv.key == "w") {
        dev.params[0] = parse_expr(line, kv);
        have[0] = true;
      } else if (kv.key == "l") {
        dev.params[1] = parse_expr(line, kv);
        have[1] = true;
      } else if (kv.key == "m") {
        dev.params[2] = parse_expr(line, kv);
        have[2] = true;
      } else if (kv.key == "fixed" && !kv.has_value) {
        dev.designable = false;
      } else {
        unknown_key(line, kv, toks[0].text.c_str(), "w, l, m, fixed");
      }
    }
    if (!have[0] || !have[1] || !have[2]) {
      fail(line, toks[0].col,
           "MOSFET \"" + dev.name + "\" needs w=, l= and m=");
    }
    d_.element_order.push_back({false, static_cast<int>(d_.devices.size())});
    d_.devices.push_back(std::move(dev));
  }

  void parse_rc(int line, const std::vector<Token>& toks) {
    const bool is_r = toks[0].text == "resistor";
    need_args(line, toks, 5,
              is_r ? "resistor NAME A B r=EXPR [fixed]"
                   : "capacitor NAME A B c=EXPR [fixed]");
    DeviceDesc dev;
    dev.kind = is_r ? Kind::Resistor : Kind::Capacitor;
    dev.name = toks[1].text;
    dev.line = line;
    dev.col = toks[0].col;
    require_unique_element(line, toks[1]);
    require_net(line, toks[2]);
    require_net(line, toks[3]);
    dev.nodes = {toks[2].text, toks[3].text};
    bool have_value = false;
    const char* value_key = is_r ? "r" : "c";
    for (std::size_t i = 4; i < toks.size(); ++i) {
      const KeyValue kv = split_kv(toks[i]);
      if (kv.key == value_key) {
        dev.params[0] = parse_expr(line, kv);
        have_value = true;
      } else if (kv.key == "fixed" && !kv.has_value) {
        dev.designable = false;
      } else {
        unknown_key(line, kv, toks[0].text.c_str(),
                    is_r ? "r, fixed" : "c, fixed");
      }
    }
    if (!have_value) {
      fail(line, toks[0].col,
           "\"" + dev.name + "\" needs " + value_key + "=EXPR");
    }
    d_.element_order.push_back({false, static_cast<int>(d_.devices.size())});
    d_.devices.push_back(std::move(dev));
  }

  void parse_bound(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 3, "bound COMP PARAM.SIDE=EXPR (e.g. w.hi=wmax)");
    const DeviceDesc& dev = require_designable(line, toks[1]);
    const KeyValue kv = split_kv(toks[2]);
    const std::size_t dot = kv.key.find('.');
    if (!kv.has_value || dot == std::string::npos) {
      fail(line, kv.col, "bound: expected PARAM.SIDE=EXPR (e.g. w.hi=wmax)");
    }
    const std::string param = kv.key.substr(0, dot);
    const std::string side = kv.key.substr(dot + 1);
    BoundDesc b;
    b.comp = dev.name;
    b.line = line;
    b.col = toks[2].col;
    const bool mos = dev.kind == Kind::Nmos || dev.kind == Kind::Pmos;
    if (mos && param == "w") b.param = 0;
    else if (mos && param == "l") b.param = 1;
    else if (mos && param == "m") b.param = 2;
    else if (dev.kind == Kind::Resistor && param == "r") b.param = 0;
    else if (dev.kind == Kind::Capacitor && param == "c") b.param = 0;
    else {
      fail(line, kv.col,
           "bound: \"" + param + "\" is not a parameter of " +
               kind_name(dev.kind) + " \"" + dev.name + "\"");
    }
    if (side == "lo") b.hi = false;
    else if (side == "hi") b.hi = true;
    else fail(line, kv.col, "bound: SIDE must be \"lo\" or \"hi\"");
    b.value = parse_expr(line, kv);
    d_.bounds.push_back(std::move(b));
  }

  void parse_match(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 3, "match COMP COMP... [l_only]");
    MatchDesc m;
    m.line = line;
    m.col = toks[0].col;
    std::size_t last = toks.size();
    if (toks.back().text == "l_only") {
      m.l_only = true;
      --last;
    }
    for (std::size_t i = 1; i < last; ++i) {
      m.comps.push_back(require_designable(line, toks[i]).name);
    }
    if (m.comps.size() < 2) {
      fail(line, toks[0].col, "match: needs at least two components");
    }
    d_.matches.push_back(std::move(m));
  }

  double parse_number(int line, const KeyValue& kv) const {
    char* end = nullptr;
    const double v = std::strtod(kv.value.c_str(), &end);
    if (kv.value.empty() || end == nullptr || *end != '\0') {
      fail(line, kv.col,
           "\"" + kv.key + "\" needs a plain number, got \"" + kv.value +
               "\"");
    }
    return v;
  }

  std::string parse_string(int line, const KeyValue& kv) const {
    std::string v = kv.value;
    if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
      v = v.substr(1, v.size() - 2);
    }
    if (v.empty()) fail(line, kv.col, "\"" + kv.key + "\" needs a value");
    return v;
  }

  void parse_metric(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 3,
              "metric NAME unit=STR weight=NUM [bound=] [spec_min=] "
              "[spec_max=] [log]");
    MetricDesc m;
    m.name = toks[1].text;
    m.line = line;
    m.col = toks[0].col;
    for (const MetricDesc& prev : d_.metrics) {
      if (prev.name == m.name) {
        fail(line, toks[1].col, "duplicate metric \"" + m.name + "\"");
      }
    }
    bool have_unit = false, have_weight = false;
    for (std::size_t i = 2; i < toks.size(); ++i) {
      const KeyValue kv = split_kv(toks[i]);
      if (kv.key == "unit") {
        m.unit = parse_string(line, kv);
        have_unit = true;
      } else if (kv.key == "weight") {
        m.weight = parse_number(line, kv);
        have_weight = true;
      } else if (kv.key == "bound") {
        m.bound = parse_expr(line, kv);
      } else if (kv.key == "spec_min") {
        m.spec_min = parse_expr(line, kv);
      } else if (kv.key == "spec_max") {
        m.spec_max = parse_expr(line, kv);
      } else if (kv.key == "log" && !kv.has_value) {
        m.log_norm = true;
      } else {
        unknown_key(line, kv, "metric",
                    "unit, weight, bound, spec_min, spec_max, log");
      }
    }
    if (!have_unit || !have_weight) {
      fail(line, toks[0].col,
           "metric \"" + m.name + "\" needs unit= and weight=");
    }
    d_.metrics.push_back(std::move(m));
  }

  void parse_expert(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 3, "expert COMP VAL [VAL VAL]");
    const DeviceDesc& dev = require_designable(line, toks[1]);
    for (const ExpertDesc& prev : d_.expert) {
      if (prev.comp == dev.name) {
        fail(line, toks[1].col,
             "duplicate expert sizing for \"" + dev.name + "\"");
      }
    }
    ExpertDesc e;
    e.comp = dev.name;
    e.line = line;
    e.col = toks[0].col;
    const int want = action_dim(dev.kind);
    if (static_cast<int>(toks.size()) - 2 != want) {
      fail(line, toks[0].col,
           "expert \"" + dev.name + "\": " + kind_name(dev.kind) +
               " takes " + std::to_string(want) + " value(s)");
    }
    for (std::size_t i = 2; i < toks.size(); ++i) {
      e.values.push_back(parse_expr_text(line, toks[i].col, toks[i].text));
    }
    d_.expert.push_back(std::move(e));
  }

  void parse_bench(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 2, "bench NAME");
    if (toks.size() > 2) {
      fail(line, toks[2].col, "\"bench\" takes exactly one name");
    }
    if (find_bench(toks[1].text) >= 0) {
      fail(line, toks[1].col, "duplicate bench \"" + toks[1].text + "\"");
    }
    BenchDesc b;
    b.name = toks[1].text;
    b.line = line;
    b.col = toks[0].col;
    d_.benches.push_back(std::move(b));
  }

  void parse_set(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 4,
              "set BENCH SOURCE [dc=EXPR] [ac=EXPR] [pwl=...]");
    BenchDesc& bench = require_bench(line, toks[1]);
    if (find_source(toks[2].text) == nullptr) {
      fail(line, toks[2].col, "unknown source \"" + toks[2].text + "\"");
    }
    SourceSetDesc set;
    set.source = toks[2].text;
    set.line = line;
    set.col = toks[0].col;
    for (std::size_t i = 3; i < toks.size(); ++i) {
      const KeyValue kv = split_kv(toks[i]);
      if (kv.key == "dc") set.dc = parse_expr(line, kv);
      else if (kv.key == "ac") set.ac = parse_expr(line, kv);
      else if (kv.key == "pwl") set.pwl = parse_pwl(line, kv);
      else unknown_key(line, kv, "set", "dc, ac, pwl");
    }
    bench.sets.push_back(std::move(set));
  }

  void parse_ac(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 5, "ac BENCH FMIN FMAX NPOINTS");
    BenchDesc& bench = require_bench(line, toks[1]);
    if (bench.ac) {
      fail(line, toks[0].col,
           "bench \"" + bench.name + "\" already has an ac sweep");
    }
    AcSweepDesc sweep;
    sweep.line = line;
    sweep.col = toks[0].col;
    sweep.fmin = parse_expr_text(line, toks[2].col, toks[2].text);
    sweep.fmax = parse_expr_text(line, toks[3].col, toks[3].text);
    char* end = nullptr;
    const long n = std::strtol(toks[4].text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || n < 2 || n > 100000) {
      fail(line, toks[4].col,
           "ac: NPOINTS must be an integer in [2, 100000]");
    }
    sweep.npoints = static_cast<int>(n);
    bench.ac = std::move(sweep);
  }

  void parse_noise(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 4, "noise BENCH out=NODE[,NODE] FREQ...");
    BenchDesc& bench = require_bench(line, toks[1]);
    if (bench.noise) {
      fail(line, toks[0].col,
           "bench \"" + bench.name + "\" already has a noise analysis");
    }
    NoiseDesc noise;
    noise.line = line;
    noise.col = toks[0].col;
    bool have_out = false;
    for (std::size_t i = 2; i < toks.size(); ++i) {
      const KeyValue kv = split_kv(toks[i]);
      if (kv.key == "out" && kv.has_value) {
        const std::size_t comma = kv.value.find(',');
        noise.out_p = kv.value.substr(0, comma);
        if (comma != std::string::npos) {
          noise.out_n = kv.value.substr(comma + 1);
        }
        if (!net_declared(noise.out_p) ||
            (!noise.out_n.empty() && !net_declared(noise.out_n))) {
          fail(line, kv.col, "noise: out= names an undeclared net");
        }
        have_out = true;
      } else if (!kv.has_value) {
        noise.freqs.push_back(
            parse_expr_text(line, toks[i].col, toks[i].text));
      } else {
        unknown_key(line, kv, "noise", "out");
      }
    }
    if (!have_out || noise.freqs.empty()) {
      fail(line, toks[0].col,
           "noise: needs out=NODE[,NODE] and at least one frequency");
    }
    bench.noise = std::move(noise);
  }

  void parse_tran(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 4, "tran BENCH tstop=EXPR dt=EXPR");
    BenchDesc& bench = require_bench(line, toks[1]);
    if (bench.tran) {
      fail(line, toks[0].col,
           "bench \"" + bench.name + "\" already has a tran analysis");
    }
    TranDesc tran;
    tran.line = line;
    tran.col = toks[0].col;
    bool have_tstop = false, have_dt = false;
    for (std::size_t i = 2; i < toks.size(); ++i) {
      const KeyValue kv = split_kv(toks[i]);
      if (kv.key == "tstop") {
        tran.tstop = parse_expr(line, kv);
        have_tstop = true;
      } else if (kv.key == "dt") {
        tran.dt = parse_expr(line, kv);
        have_dt = true;
      } else {
        unknown_key(line, kv, "tran", "tstop, dt");
      }
    }
    if (!have_tstop || !have_dt) {
      fail(line, toks[0].col, "tran: needs tstop= and dt=");
    }
    bench.tran = std::move(tran);
  }

  void parse_warm(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 3, "warm BENCH from=BENCH");
    BenchDesc& bench = require_bench(line, toks[1]);
    const KeyValue kv = split_kv(toks[2]);
    if (kv.key != "from" || !kv.has_value) {
      unknown_key(line, kv, "warm", "from");
    }
    const int src = find_bench(kv.value);
    const int self = find_bench(bench.name);
    if (src < 0 || src >= self) {
      fail(line, kv.col,
           "warm: from= must name an earlier bench (benches run in "
           "declaration order)");
    }
    if (!bench.warm_from.empty()) {
      fail(line, toks[0].col,
           "bench \"" + bench.name + "\" already has a warm source");
    }
    bench.warm_from = kv.value;
  }

  void parse_extract(int line, const std::vector<Token>& toks) {
    need_args(line, toks, 4,
              "extract METRIC FN bench=BENCH [probe=NODE[,NODE]] [at=EXPR] "
              "[window=EXPR,EXPR] [edge=EXPR] [tol=EXPR]");
    ExtractDesc e;
    e.metric = toks[1].text;
    e.line = line;
    e.col = toks[0].col;
    for (const ExtractDesc& prev : d_.extracts) {
      if (prev.metric == e.metric) {
        fail(line, toks[1].col,
             "duplicate extraction for metric \"" + e.metric + "\"");
      }
    }
    const std::string& fn = toks[2].text;
    if (fn == "supply_power") e.fn = ExtractFn::SupplyPower;
    else if (fn == "dc_gain") e.fn = ExtractFn::DcGain;
    else if (fn == "bandwidth_3db") e.fn = ExtractFn::Bandwidth3db;
    else if (fn == "peaking_db") e.fn = ExtractFn::PeakingDb;
    else if (fn == "gbw") e.fn = ExtractFn::Gbw;
    else if (fn == "input_noise") e.fn = ExtractFn::InputNoise;
    else if (fn == "settling_time") e.fn = ExtractFn::SettlingTime;
    else {
      fail(line, toks[2].col,
           "unknown extraction \"" + fn +
               "\" (known: supply_power, dc_gain, bandwidth_3db, "
               "peaking_db, gbw, input_noise, settling_time)");
    }
    int bench_idx = -1;
    for (std::size_t i = 3; i < toks.size(); ++i) {
      const KeyValue kv = split_kv(toks[i]);
      if (kv.key == "bench" && kv.has_value) {
        bench_idx = find_bench(kv.value);
        if (bench_idx < 0) {
          fail(line, kv.col, "unknown bench \"" + kv.value + "\"");
        }
        e.bench = kv.value;
      } else if (kv.key == "probe" && kv.has_value) {
        const std::size_t comma = kv.value.find(',');
        e.probe_p = kv.value.substr(0, comma);
        if (comma != std::string::npos) {
          e.probe_n = kv.value.substr(comma + 1);
        }
        if (!net_declared(e.probe_p) ||
            (!e.probe_n.empty() && !net_declared(e.probe_n))) {
          fail(line, kv.col, "probe= names an undeclared net");
        }
      } else if (kv.key == "at") {
        e.at_freq = parse_expr(line, kv);
      } else if (kv.key == "window" && kv.has_value) {
        const std::size_t comma = kv.value.find(',');
        if (comma == std::string::npos) {
          fail(line, kv.col, "window= needs \"T0,T1\"");
        }
        e.win_t0 = parse_expr_text(line, kv.col, kv.value.substr(0, comma));
        e.win_t1 = parse_expr_text(line, kv.col, kv.value.substr(comma + 1));
      } else if (kv.key == "edge") {
        e.edge = parse_expr(line, kv);
      } else if (kv.key == "tol") {
        e.tol = parse_expr(line, kv);
      } else {
        unknown_key(line, kv, "extract",
                    "bench, probe, at, window, edge, tol");
      }
    }
    if (bench_idx < 0) {
      fail(line, toks[0].col, "extract: needs bench=BENCH");
    }
    const BenchDesc& bench = d_.benches[static_cast<std::size_t>(bench_idx)];
    const bool needs_ac = e.fn == ExtractFn::DcGain ||
                          e.fn == ExtractFn::Bandwidth3db ||
                          e.fn == ExtractFn::PeakingDb ||
                          e.fn == ExtractFn::Gbw ||
                          e.fn == ExtractFn::InputNoise;
    if (needs_ac) {
      if (e.probe_p.empty()) {
        fail(line, toks[0].col,
             "extract " + fn + ": needs probe=NODE[,NODE]");
      }
      if (!bench.ac) {
        fail(line, toks[0].col,
             "extract " + fn + ": bench \"" + bench.name +
                 "\" has no ac sweep");
      }
    }
    if (e.fn == ExtractFn::InputNoise) {
      if (!e.at_freq || !bench.noise) {
        fail(line, toks[0].col,
             "extract input_noise: needs at=FREQ and a noise analysis on "
             "bench \"" + bench.name + "\"");
      }
    }
    if (e.fn == ExtractFn::SettlingTime) {
      if (e.probe_p.empty() || !e.win_t0 || !e.edge || !e.tol ||
          !bench.tran) {
        fail(line, toks[0].col,
             "extract settling_time: needs probe=, window=, edge=, tol= "
             "and a tran analysis on bench \"" + bench.name + "\"");
      }
    }
    d_.extracts.push_back(std::move(e));
  }

  // --- whole-file invariants ---------------------------------------------

  // Only the structural minimum lives here; the semantic whole-file
  // invariants (designable components exist, FoM metrics are declared and
  // produced, expert sizing is complete) moved to circuit::analyze_circuit
  // so they report as structured diagnostics alongside the graph checks.
  void finish(int last_line) const {
    if (d_.name.empty()) {
      fail(last_line, 1, "missing \"circuit NAME\" directive");
    }
  }

  const std::string& text_;
  std::string origin_;
  CircuitDescription d_;
};

}  // namespace

CircuitDescription parse_gcir(const std::string& text,
                              const std::string& origin) {
  return GcirParser(text, origin).run();
}

CircuitDescription load_gcir(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("load_gcir: cannot read \"" + path + "\"");
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_gcir(text, path);
}

}  // namespace gcnrl::circuit
