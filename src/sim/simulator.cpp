#include "sim/simulator.hpp"

#include <cmath>

namespace gcnrl::sim {

const OpPoint& Simulator::op() {
  if (!op_.has_value()) op_ = solve_dc(ctx_);
  return *op_;
}

OpPoint Simulator::op_at_time_zero() {
  DcOptions opt;
  opt.source_time = 0.0;
  return solve_dc(ctx_, opt);
}

AcResult Simulator::ac(const std::vector<double>& freqs) {
  return solve_ac(ctx_, op(), freqs);
}

NoiseResult Simulator::noise(const std::vector<double>& freqs, int outp,
                             int outn) {
  return solve_noise(ctx_, op(), freqs, outp, outn);
}

TranResult Simulator::tran(const TranOptions& opt) {
  const OpPoint ic = op_at_time_zero();
  return solve_tran(ctx_, ic, opt);
}

double Simulator::supply_power() {
  const OpPoint& o = op();
  double p = 0.0;
  for (std::size_t k = 0; k < ctx_.nl.vsources().size(); ++k) {
    const auto& src = ctx_.nl.vsources()[k];
    const double delivered = src.dc * o.source_current(static_cast<int>(k));
    if (delivered > 0.0) p += delivered;
  }
  return p;
}

double Simulator::source_current(const std::string& vsrc_name) {
  const OpPoint& o = op();
  for (std::size_t k = 0; k < ctx_.nl.vsources().size(); ++k) {
    if (ctx_.nl.vsources()[k].name == vsrc_name) {
      return o.source_current(static_cast<int>(k));
    }
  }
  throw SimError("unknown voltage source: " + vsrc_name);
}

}  // namespace gcnrl::sim
