#include "opt/cma_es.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gcnrl::opt {
namespace {

// Jacobi eigendecomposition of a symmetric matrix: A = B diag(e) B^T.
// Dimensions in this codebase are <= ~60, where Jacobi is plenty fast and
// has excellent accuracy.
void jacobi_eigen(la::Mat a, la::Mat& b, std::vector<double>& e) {
  const int n = a.rows();
  b = la::Mat::identity(n);
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-20) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (std::fabs(a(p, q)) < 1e-18) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double bkp = b(k, p), bkq = b(k, q);
          b(k, p) = c * bkp - s * bkq;
          b(k, q) = s * bkp + c * bkq;
        }
      }
    }
  }
  e.resize(n);
  for (int i = 0; i < n; ++i) e[i] = a(i, i);
}

}  // namespace

CmaEs::CmaEs(int dim, Rng rng, CmaEsOptions opt) : n_(dim), rng_(rng) {
  if (dim < 1) throw std::invalid_argument("CmaEs: dim must be >= 1");
  lambda_ = opt.lambda > 0
                ? opt.lambda
                : 4 + static_cast<int>(std::floor(3.0 * std::log(dim)));
  mu_ = lambda_ / 2;
  weights_.resize(mu_);
  double wsum = 0.0;
  for (int i = 0; i < mu_; ++i) {
    weights_[i] = std::log(mu_ + 0.5) - std::log(i + 1.0);
    wsum += weights_[i];
  }
  double w2 = 0.0;
  for (auto& w : weights_) {
    w /= wsum;
    w2 += w * w;
  }
  mueff_ = 1.0 / w2;

  cc_ = (4.0 + mueff_ / n_) / (n_ + 4.0 + 2.0 * mueff_ / n_);
  cs_ = (mueff_ + 2.0) / (n_ + mueff_ + 5.0);
  c1_ = 2.0 / ((n_ + 1.3) * (n_ + 1.3) + mueff_);
  cmu_ = std::min(1.0 - c1_, 2.0 * (mueff_ - 2.0 + 1.0 / mueff_) /
                                 ((n_ + 2.0) * (n_ + 2.0) + mueff_));
  damps_ = 1.0 +
           2.0 * std::max(0.0,
                          std::sqrt((mueff_ - 1.0) / (n_ + 1.0)) - 1.0) +
           cs_;
  chi_n_ = std::sqrt(static_cast<double>(n_)) *
           (1.0 - 1.0 / (4.0 * n_) + 1.0 / (21.0 * n_ * n_));

  mean_.assign(n_, 0.0);
  sigma_ = opt.sigma0;
  c_ = la::Mat::identity(n_);
  b_ = la::Mat::identity(n_);
  d_.assign(n_, 1.0);
  pc_.assign(n_, 0.0);
  ps_.assign(n_, 0.0);
}

void CmaEs::eigen_update() {
  std::vector<double> evals;
  jacobi_eigen(c_, b_, evals);
  d_.resize(n_);
  for (int i = 0; i < n_; ++i) {
    d_[i] = std::sqrt(std::max(evals[i], 1e-20));
  }
}

std::vector<std::vector<double>> CmaEs::ask() {
  std::vector<std::vector<double>> xs(lambda_, std::vector<double>(n_));
  last_y_.assign(lambda_, std::vector<double>(n_));
  for (int k = 0; k < lambda_; ++k) {
    // y = B D z,  x = m + sigma y, clipped into [-1, 1].
    std::vector<double> z(n_);
    for (auto& v : z) v = rng_.normal();
    for (int i = 0; i < n_; ++i) {
      double acc = 0.0;
      for (int j = 0; j < n_; ++j) acc += b_(i, j) * d_[j] * z[j];
      last_y_[k][i] = acc;
      xs[k][i] = std::clamp(mean_[i] + sigma_ * acc, -1.0, 1.0);
    }
  }
  return xs;
}

void CmaEs::tell(const std::vector<std::vector<double>>& xs,
                 const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("CmaEs::tell: inconsistent batch");
  }
  ++gen_;
  // Rank by objective DESCENDING (we maximize).
  std::vector<int> order(ys.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return ys[a] > ys[b]; });

  // Tolerate partial batches (an evaluation budget can truncate the last
  // generation): use the top min(mu, batch) with renormalized weights.
  const int mu_eff_count = std::min<int>(mu_, static_cast<int>(ys.size()));
  std::vector<double> w(weights_.begin(), weights_.begin() + mu_eff_count);
  double wsum = 0.0;
  for (double v : w) wsum += v;
  for (double& v : w) v /= wsum;

  // Recombination in y-space. We re-derive y from the evaluated x so the
  // update is consistent with the [-1,1] clipping applied in ask().
  std::vector<double> m_old = mean_;
  std::vector<double> y_w(n_, 0.0);
  for (int r = 0; r < mu_eff_count; ++r) {
    const auto& x = xs[order[r]];
    for (int i = 0; i < n_; ++i) {
      y_w[i] += w[r] * (x[i] - m_old[i]) / sigma_;
    }
  }
  for (int i = 0; i < n_; ++i) mean_[i] = m_old[i] + sigma_ * y_w[i];

  // CSA path: ps = (1-cs) ps + sqrt(cs(2-cs) mueff) C^{-1/2} y_w, with
  // C^{-1/2} = B D^{-1} B^T.
  std::vector<double> tmp(n_, 0.0);
  for (int j = 0; j < n_; ++j) {
    double acc = 0.0;
    for (int i = 0; i < n_; ++i) acc += b_(i, j) * y_w[i];
    tmp[j] = acc / d_[j];
  }
  std::vector<double> cinv_y(n_, 0.0);
  for (int i = 0; i < n_; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n_; ++j) acc += b_(i, j) * tmp[j];
    cinv_y[i] = acc;
  }
  const double cs_fac = std::sqrt(cs_ * (2.0 - cs_) * mueff_);
  double ps_norm2 = 0.0;
  for (int i = 0; i < n_; ++i) {
    ps_[i] = (1.0 - cs_) * ps_[i] + cs_fac * cinv_y[i];
    ps_norm2 += ps_[i] * ps_[i];
  }
  const double ps_norm = std::sqrt(ps_norm2);

  // Step-size update.
  sigma_ *= std::exp((cs_ / damps_) * (ps_norm / chi_n_ - 1.0));
  sigma_ = std::clamp(sigma_, 1e-8, 2.0);

  // Covariance rank-1 + rank-mu update.
  const bool hsig =
      ps_norm / std::sqrt(1.0 - std::pow(1.0 - cs_, 2.0 * gen_)) <
      (1.4 + 2.0 / (n_ + 1.0)) * chi_n_;
  const double cc_fac = std::sqrt(cc_ * (2.0 - cc_) * mueff_);
  for (int i = 0; i < n_; ++i) {
    pc_[i] = (1.0 - cc_) * pc_[i] + (hsig ? cc_fac * y_w[i] : 0.0);
  }
  const double c1a = c1_ * (1.0 - (hsig ? 0.0 : cc_ * (2.0 - cc_)));
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      double rank_mu = 0.0;
      for (int r = 0; r < mu_eff_count; ++r) {
        const auto& x = xs[order[r]];
        const double yi = (x[i] - m_old[i]) / sigma_;
        const double yj = (x[j] - m_old[j]) / sigma_;
        rank_mu += w[r] * yi * yj;
      }
      c_(i, j) = (1.0 - c1a - cmu_) * c_(i, j) + c1_ * pc_[i] * pc_[j] +
                 cmu_ * rank_mu;
    }
  }
  eigen_update();
}

}  // namespace gcnrl::opt
