#include "circuit/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace gcnrl::circuit {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Nmos: return "nmos";
    case Kind::Pmos: return "pmos";
    case Kind::Resistor: return "res";
    case Kind::Capacitor: return "cap";
  }
  return "?";
}

double Pwl::at(double t) const {
  if (points.empty()) return 0.0;
  if (t <= points.front().first) return points.front().second;
  if (t >= points.back().first) return points.back().second;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (t <= points[i].first) {
      const auto& [t0, v0] = points[i - 1];
      const auto& [t1, v1] = points[i];
      if (t1 <= t0) return v1;
      return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
    }
  }
  return points.back().second;
}

Netlist::Netlist() {
  node_names_.push_back("0");
  node_ids_["0"] = 0;
  node_ids_["gnd"] = 0;
  node_ids_["vss"] = 0;
  supply_.push_back(true);
}

int Netlist::node(const std::string& name) {
  auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const int id = static_cast<int>(node_names_.size());
  node_names_.push_back(name);
  supply_.push_back(false);
  node_ids_.emplace(name, id);
  return id;
}

void Netlist::mark_supply(const std::string& name) {
  supply_[node(name)] = true;
}

bool Netlist::is_supply(int node_id) const {
  return node_id >= 0 && node_id < static_cast<int>(supply_.size()) &&
         supply_[node_id];
}

std::optional<int> Netlist::find_node(const std::string& name) const {
  auto it = node_ids_.find(name);
  if (it == node_ids_.end()) return std::nullopt;
  return it->second;
}

int Netlist::add_mos(const std::string& name, bool pmos, int d, int g, int s,
                     int b, double w, double l, int m, bool designable) {
  Mosfet mos;
  mos.name = name;
  mos.is_pmos = pmos;
  mos.d = d;
  mos.g = g;
  mos.s = s;
  mos.b = b;
  mos.w = w;
  mos.l = l;
  mos.m = m;
  const int idx = static_cast<int>(mos_.size());
  mos_.push_back(mos);
  if (designable) {
    design_.push_back({pmos ? Kind::Pmos : Kind::Nmos, idx, name});
  }
  return idx;
}

int Netlist::add_nmos(const std::string& name, int d, int g, int s, int b,
                      double w, double l, int m, bool designable) {
  return add_mos(name, false, d, g, s, b, w, l, m, designable);
}

int Netlist::add_pmos(const std::string& name, int d, int g, int s, int b,
                      double w, double l, int m, bool designable) {
  return add_mos(name, true, d, g, s, b, w, l, m, designable);
}

int Netlist::add_resistor(const std::string& name, int a, int b, double r,
                          bool designable) {
  const int idx = static_cast<int>(res_.size());
  res_.push_back({name, a, b, r});
  if (designable) design_.push_back({Kind::Resistor, idx, name});
  return idx;
}

int Netlist::add_capacitor(const std::string& name, int a, int b, double c,
                           bool designable) {
  const int idx = static_cast<int>(cap_.size());
  cap_.push_back({name, a, b, c});
  if (designable) design_.push_back({Kind::Capacitor, idx, name});
  return idx;
}

int Netlist::add_vsource(const std::string& name, int p, int n, double dc,
                         double ac, Pwl pwl) {
  const int idx = static_cast<int>(vsrc_.size());
  vsrc_.push_back({name, p, n, dc, ac, std::move(pwl)});
  return idx;
}

int Netlist::add_isource(const std::string& name, int p, int n, double dc,
                         double ac, Pwl pwl) {
  const int idx = static_cast<int>(isrc_.size());
  isrc_.push_back({name, p, n, dc, ac, std::move(pwl)});
  return idx;
}

VSource* Netlist::find_vsource(const std::string& name) {
  auto it = std::find_if(vsrc_.begin(), vsrc_.end(),
                         [&](const VSource& v) { return v.name == name; });
  return it == vsrc_.end() ? nullptr : &*it;
}

ISource* Netlist::find_isource(const std::string& name) {
  auto it = std::find_if(isrc_.begin(), isrc_.end(),
                         [&](const ISource& v) { return v.name == name; });
  return it == isrc_.end() ? nullptr : &*it;
}

void Netlist::set_mos_gate(const std::string& name, int node) {
  auto it = std::find_if(mos_.begin(), mos_.end(),
                         [&](const Mosfet& m) { return m.name == name; });
  if (it == mos_.end()) {
    throw std::invalid_argument("set_mos_gate: unknown MOSFET " + name);
  }
  it->g = node;
}

std::vector<int> Netlist::design_terminals(int i) const {
  const DesignRef& ref = design_.at(i);
  switch (ref.kind) {
    case Kind::Nmos:
    case Kind::Pmos: {
      const Mosfet& m = mos_[ref.elem_index];
      return {m.d, m.g, m.s};
    }
    case Kind::Resistor: {
      const Resistor& r = res_[ref.elem_index];
      return {r.a, r.b};
    }
    case Kind::Capacitor: {
      const Capacitor& c = cap_[ref.elem_index];
      return {c.a, c.b};
    }
  }
  return {};
}

int Netlist::find_design(const std::string& name) const {
  for (std::size_t i = 0; i < design_.size(); ++i) {
    if (design_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Netlist::set_design_params(int i,
                                const std::array<double, kMaxActionDim>& v) {
  const DesignRef& ref = design_.at(i);
  switch (ref.kind) {
    case Kind::Nmos:
    case Kind::Pmos: {
      Mosfet& m = mos_[ref.elem_index];
      m.w = v[0];
      m.l = v[1];
      m.m = std::max(1, static_cast<int>(v[2] + 0.5));
      break;
    }
    case Kind::Resistor:
      res_[ref.elem_index].r = v[0];
      break;
    case Kind::Capacitor:
      cap_[ref.elem_index].c = v[0];
      break;
  }
}

std::array<double, kMaxActionDim> Netlist::design_params(int i) const {
  const DesignRef& ref = design_.at(i);
  switch (ref.kind) {
    case Kind::Nmos:
    case Kind::Pmos: {
      const Mosfet& m = mos_[ref.elem_index];
      return {m.w, m.l, static_cast<double>(m.m)};
    }
    case Kind::Resistor:
      return {res_[ref.elem_index].r, 0.0, 0.0};
    case Kind::Capacitor:
      return {cap_[ref.elem_index].c, 0.0, 0.0};
  }
  return {};
}

}  // namespace gcnrl::circuit
