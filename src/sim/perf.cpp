#include "sim/perf.hpp"

#include <atomic>

namespace gcnrl::sim {
namespace {

// Wall time is stored as integer nanoseconds so plain fetch_add works on
// every toolchain (atomic<double>::fetch_add is C++20 but patchily lowered
// to CAS loops); the public snapshot converts back to seconds.
struct AtomicPerf {
  std::atomic<long> calls{0};
  std::atomic<long> items{0};
  std::atomic<long> warm_hits{0};
  std::atomic<long> warm_fallbacks{0};
  std::atomic<long> sparse_fallbacks{0};
  std::atomic<long> nanos{0};
  std::atomic<long> assembly_nanos{0};
  std::atomic<long> factor_nanos{0};
  std::atomic<long> solve_nanos{0};

  void load_into(AnalysisPerf& out) {
    out.calls = calls.load(std::memory_order_relaxed);
    out.items = items.load(std::memory_order_relaxed);
    out.warm_hits = warm_hits.load(std::memory_order_relaxed);
    out.warm_fallbacks = warm_fallbacks.load(std::memory_order_relaxed);
    out.sparse_fallbacks = sparse_fallbacks.load(std::memory_order_relaxed);
    out.seconds = static_cast<double>(nanos.load(std::memory_order_relaxed)) *
                  1e-9;
    out.phase.assembly =
        static_cast<double>(assembly_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    out.phase.factor =
        static_cast<double>(factor_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    out.phase.solve =
        static_cast<double>(solve_nanos.load(std::memory_order_relaxed)) *
        1e-9;
  }
  void reset() {
    calls.store(0, std::memory_order_relaxed);
    items.store(0, std::memory_order_relaxed);
    warm_hits.store(0, std::memory_order_relaxed);
    warm_fallbacks.store(0, std::memory_order_relaxed);
    sparse_fallbacks.store(0, std::memory_order_relaxed);
    nanos.store(0, std::memory_order_relaxed);
    assembly_nanos.store(0, std::memory_order_relaxed);
    factor_nanos.store(0, std::memory_order_relaxed);
    solve_nanos.store(0, std::memory_order_relaxed);
  }
};

AtomicPerf g_perf[4];

AtomicPerf& slot(Analysis which) {
  return g_perf[static_cast<int>(which)];
}

}  // namespace

void sim_perf_record(Analysis which, long items, double seconds,
                     long warm_hits, long warm_fallbacks,
                     const PhaseSeconds* phases) {
  AtomicPerf& p = slot(which);
  p.calls.fetch_add(1, std::memory_order_relaxed);
  p.items.fetch_add(items, std::memory_order_relaxed);
  if (warm_hits) p.warm_hits.fetch_add(warm_hits, std::memory_order_relaxed);
  if (warm_fallbacks) {
    p.warm_fallbacks.fetch_add(warm_fallbacks, std::memory_order_relaxed);
  }
  p.nanos.fetch_add(static_cast<long>(seconds * 1e9),
                    std::memory_order_relaxed);
  if (phases) {
    p.assembly_nanos.fetch_add(static_cast<long>(phases->assembly * 1e9),
                               std::memory_order_relaxed);
    p.factor_nanos.fetch_add(static_cast<long>(phases->factor * 1e9),
                             std::memory_order_relaxed);
    p.solve_nanos.fetch_add(static_cast<long>(phases->solve * 1e9),
                            std::memory_order_relaxed);
  }
}

void sim_perf_sparse_fallback(Analysis which) {
  slot(which).sparse_fallbacks.fetch_add(1, std::memory_order_relaxed);
}

SimPerf sim_perf_snapshot() {
  SimPerf s;
  slot(Analysis::Dc).load_into(s.dc);
  slot(Analysis::Ac).load_into(s.ac);
  slot(Analysis::Noise).load_into(s.noise);
  slot(Analysis::Tran).load_into(s.tran);
  return s;
}

void sim_perf_reset() {
  for (auto& p : g_perf) p.reset();
}

}  // namespace gcnrl::sim
