#include "sim/tran.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>

#include "sim/perf.hpp"
#include "sim/structure.hpp"

namespace gcnrl::sim {
namespace {

using clock_type = std::chrono::steady_clock;

double seconds_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double src_at(double dc, const circuit::Pwl& pwl, double t) {
  return pwl.empty() ? dc : pwl.at(t);
}

// Time steps are ns-to-us scale; fixed-notation std::to_string collapses
// them to "0.000000". Scientific notation keeps the diagnostic useful.
std::string format_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6e", t);
  return buf;
}

// Per-run workspace reused across every timestep and Newton iteration —
// the sparse LU keeps its symbolic factorization alive for the whole
// transient run (the pattern never changes), so after the first timestep
// each iteration is a numeric refactor only.
struct TranWork {
  la::Mat j;
  la::Lu<double> lu;
  const MnaStructure* st = nullptr;
  la::SparseLuD* slu = nullptr;
  std::vector<double> vals;
  std::vector<double> f, rhs, dx;
  PhaseSeconds phase;
};

// Dense residual + Jacobian for one Newton iteration at time t_now. The
// stamps and their order are the legacy inline assembly verbatim; only
// the storage is reused between calls.
void build_tran_dense(const SimContext& ctx, const OpPoint& ic,
                      const std::vector<double>& x,
                      const std::vector<double>& x_prev, double t_now,
                      double gh, double gmin, la::Mat& j,
                      std::vector<double>& f) {
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  if (j.rows() != m.dim() || j.cols() != m.dim()) {
    j = la::Mat(m.dim(), m.dim());
  } else {
    j.fill(0.0);
  }
  f.assign(m.dim(), 0.0);

  auto volt = [&](const std::vector<double>& xx, int node) {
    return node == 0 ? 0.0 : xx[m.v(node)];
  };

  for (const auto& res : nl.resistors()) {
    const double g = 1.0 / std::max(res.r, kMinResistance);
    stamp_conductance(j, m, res.a, res.b, g);
    const double i = g * (volt(x, res.a) - volt(x, res.b));
    if (m.v(res.a) >= 0) f[m.v(res.a)] += i;
    if (m.v(res.b) >= 0) f[m.v(res.b)] -= i;
  }

  // Linear capacitors: backward-Euler companion model.
  auto stamp_cap = [&](int a, int b, double c) {
    const double g = c * gh;
    stamp_conductance(j, m, a, b, g);
    const double dv_now = volt(x, a) - volt(x, b);
    const double dv_prev = volt(x_prev, a) - volt(x_prev, b);
    const double i = g * (dv_now - dv_prev);
    if (m.v(a) >= 0) f[m.v(a)] += i;
    if (m.v(b) >= 0) f[m.v(b)] -= i;
  };
  for (const auto& cap : nl.capacitors()) stamp_cap(cap.a, cap.b, cap.c);

  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& mos = nl.mosfets()[k];
    const MosOp op = eval_mos(ctx.models[k], mos, volt(x, mos.g),
                              volt(x, mos.d), volt(x, mos.s));
    const int id_row = m.v(mos.d);
    const int is_row = m.v(mos.s);
    if (id_row >= 0) f[id_row] += op.id;
    if (is_row >= 0) f[is_row] -= op.id;
    const int cg = m.v(mos.g);
    const int cd = m.v(mos.d);
    const int cs = m.v(mos.s);
    auto add = [&](int row, double sign) {
      if (row < 0) return;
      if (cg >= 0) j(row, cg) += sign * op.gm;
      if (cd >= 0) j(row, cd) += sign * op.gds;
      if (cs >= 0) j(row, cs) -= sign * (op.gm + op.gds);
    };
    add(id_row, 1.0);
    add(is_row, -1.0);
    // Device capacitances, same companion treatment.
    const MosCaps& c = ic.caps[k];
    stamp_cap(mos.g, mos.s, c.cgs);
    stamp_cap(mos.g, mos.d, c.cgd);
    stamp_cap(mos.d, mos.b, c.cdb);
    stamp_cap(mos.s, mos.b, c.csb);
  }

  for (const auto& src : nl.isources()) {
    const double i = src_at(src.dc, src.pwl, t_now);
    if (m.v(src.p) >= 0) f[m.v(src.p)] += i;
    if (m.v(src.n) >= 0) f[m.v(src.n)] -= i;
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    const double i = x[b];
    if (m.v(src.p) >= 0) {
      f[m.v(src.p)] += i;
      j(m.v(src.p), b) += 1.0;
      j(b, m.v(src.p)) += 1.0;
    }
    if (m.v(src.n) >= 0) {
      f[m.v(src.n)] -= i;
      j(m.v(src.n), b) -= 1.0;
      j(b, m.v(src.n)) -= 1.0;
    }
    f[b] = volt(x, src.p) - volt(x, src.n) - src_at(src.dc, src.pwl, t_now);
  }

  for (int node = 1; node < m.num_nodes(); ++node) {
    const int row = m.v(node);
    j(row, row) += gmin;
    f[row] += gmin * x[row];
  }
}

// Sparse variant: identical residual, Jacobian written through the
// precomputed stamp slots.
void build_tran_sparse(const SimContext& ctx, const MnaStructure& st,
                       const OpPoint& ic, const std::vector<double>& x,
                       const std::vector<double>& x_prev, double t_now,
                       double gh, double gmin, std::vector<double>& vals,
                       std::vector<double>& f) {
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  vals.assign(st.pattern.nnz(), 0.0);
  f.assign(m.dim(), 0.0);

  auto volt = [&](const std::vector<double>& xx, int node) {
    return node == 0 ? 0.0 : xx[m.v(node)];
  };
  // Residual contribution of a backward-Euler companion capacitor whose
  // conductance quad is already slot-resolved.
  auto cap_residual = [&](int a, int b, double g) {
    const double dv_now = volt(x, a) - volt(x, b);
    const double dv_prev = volt(x_prev, a) - volt(x_prev, b);
    const double i = g * (dv_now - dv_prev);
    if (m.v(a) >= 0) f[m.v(a)] += i;
    if (m.v(b) >= 0) f[m.v(b)] -= i;
  };

  for (std::size_t k = 0; k < nl.resistors().size(); ++k) {
    const auto& res = nl.resistors()[k];
    const double g = 1.0 / std::max(res.r, kMinResistance);
    add_quad(vals.data(), st.resistors[k], g);
    const double i = g * (volt(x, res.a) - volt(x, res.b));
    if (m.v(res.a) >= 0) f[m.v(res.a)] += i;
    if (m.v(res.b) >= 0) f[m.v(res.b)] -= i;
  }

  for (std::size_t k = 0; k < nl.capacitors().size(); ++k) {
    const auto& cap = nl.capacitors()[k];
    const double g = cap.c * gh;
    add_quad(vals.data(), st.capacitors[k], g);
    cap_residual(cap.a, cap.b, g);
  }

  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& mos = nl.mosfets()[k];
    const MosOp op = eval_mos(ctx.models[k], mos, volt(x, mos.g),
                              volt(x, mos.d), volt(x, mos.s));
    const int id_row = m.v(mos.d);
    const int is_row = m.v(mos.s);
    if (id_row >= 0) f[id_row] += op.id;
    if (is_row >= 0) f[is_row] -= op.id;
    const MosSlots& ms = st.mosfets[k];
    add_mos_g(vals.data(), ms, op.gm, op.gds);
    const MosCaps& c = ic.caps[k];
    add_quad(vals.data(), ms.cgs, c.cgs * gh);
    cap_residual(mos.g, mos.s, c.cgs * gh);
    add_quad(vals.data(), ms.cgd, c.cgd * gh);
    cap_residual(mos.g, mos.d, c.cgd * gh);
    add_quad(vals.data(), ms.cdb, c.cdb * gh);
    cap_residual(mos.d, mos.b, c.cdb * gh);
    add_quad(vals.data(), ms.csb, c.csb * gh);
    cap_residual(mos.s, mos.b, c.csb * gh);
  }

  for (const auto& src : nl.isources()) {
    const double i = src_at(src.dc, src.pwl, t_now);
    if (m.v(src.p) >= 0) f[m.v(src.p)] += i;
    if (m.v(src.n) >= 0) f[m.v(src.n)] -= i;
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    const double i = x[b];
    const VsrcSlots& vs = st.vsources[k];
    if (m.v(src.p) >= 0) {
      f[m.v(src.p)] += i;
      vals[vs.pb] += 1.0;
      vals[vs.bp] += 1.0;
    }
    if (m.v(src.n) >= 0) {
      f[m.v(src.n)] -= i;
      vals[vs.nb] -= 1.0;
      vals[vs.bn] -= 1.0;
    }
    f[b] = volt(x, src.p) - volt(x, src.n) - src_at(src.dc, src.pwl, t_now);
  }

  for (int node = 1; node < m.num_nodes(); ++node) {
    const int row = m.v(node);
    vals[st.node_diag[node - 1]] += gmin;
    f[row] += gmin * x[row];
  }
}

TranResult solve_tran_impl(const SimContext& ctx, const OpPoint& ic,
                           const TranOptions& opt, bool use_sparse) {
  const auto t0 = clock_type::now();
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  const int steps = static_cast<int>(std::ceil(opt.tstop / opt.dt));

  TranResult out;
  out.t.reserve(steps + 1);
  out.v = la::Mat(steps + 1, m.num_nodes());

  TranWork w;
  std::optional<la::SparseLuD> slu_store;
  if (use_sparse) {
    w.st = ctx.structure.get();
    slu_store.emplace(ctx.structure->pattern);
    w.slu = &*slu_store;
  }

  // Unknown vector from the initial condition.
  std::vector<double> x(m.dim(), 0.0);
  for (int node = 1; node < m.num_nodes(); ++node) x[m.v(node)] = ic.v[node];
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    x[m.branch(static_cast<int>(k))] = ic.branch_i[k];
  }
  out.t.push_back(0.0);
  for (int node = 0; node < m.num_nodes(); ++node) out.v(0, node) = ic.v[node];

  std::vector<double> x_prev = x;

  const double gh = 1.0 / opt.dt;
  for (int step = 1; step <= steps; ++step) {
    const double t_now = step * opt.dt;
    bool converged = false;
    for (int iter = 0; iter < opt.max_newton; ++iter) {
      if (use_sparse) {
        const auto a0 = clock_type::now();
        build_tran_sparse(ctx, *w.st, ic, x, x_prev, t_now, gh, opt.gmin,
                          w.vals, w.f);
        const auto a1 = clock_type::now();
        if (!w.slu->factor_values(w.vals.data())) throw SparseEngineFallback{};
        const auto a2 = clock_type::now();
        w.rhs.resize(w.f.size());
        for (std::size_t i = 0; i < w.f.size(); ++i) w.rhs[i] = -w.f[i];
        w.dx.resize(w.f.size());
        w.slu->solve_into(w.rhs.data(), w.dx.data());
        const auto a3 = clock_type::now();
        w.phase.assembly += seconds_between(a0, a1);
        w.phase.factor += seconds_between(a1, a2);
        w.phase.solve += seconds_between(a2, a3);
      } else {
        const auto a0 = clock_type::now();
        build_tran_dense(ctx, ic, x, x_prev, t_now, gh, opt.gmin, w.j, w.f);
        const auto a1 = clock_type::now();
        w.rhs.resize(w.f.size());
        for (std::size_t i = 0; i < w.f.size(); ++i) w.rhs[i] = -w.f[i];
        try {
          w.lu.factor_swap(w.j);
        } catch (const la::SingularMatrixError&) {
          throw SimError("transient: singular Jacobian at t=" +
                         format_time(t_now) + " s (Newton iteration " +
                         std::to_string(iter + 1) + ")");
        }
        const auto a2 = clock_type::now();
        w.lu.solve_into(w.rhs, w.dx);
        const auto a3 = clock_type::now();
        w.phase.assembly += seconds_between(a0, a1);
        w.phase.factor += seconds_between(a1, a2);
        w.phase.solve += seconds_between(a2, a3);
      }
      double max_dv = 0.0;
      const int nv = m.num_nodes() - 1;
      for (int i = 0; i < nv; ++i) {
        max_dv = std::max(max_dv, std::fabs(w.dx[i]));
      }
      const double scale =
          max_dv > opt.step_limit ? opt.step_limit / max_dv : 1.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] += scale * w.dx[i];
        if (!std::isfinite(x[i])) {
          throw SimError("transient: divergence at t=" + format_time(t_now) +
                         " s");
        }
      }
      double max_res = 0.0;
      for (int i = 0; i < nv; ++i) {
        max_res = std::max(max_res, std::fabs(w.f[i]));
      }
      if (scale == 1.0 && max_dv < opt.tol_step &&
          max_res < opt.tol_residual) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      throw SimError("transient: Newton failed at t=" + format_time(t_now) +
                     " s");
    }
    out.t.push_back(t_now);
    for (int node = 1; node < m.num_nodes(); ++node) {
      out.v(step, node) = x[m.v(node)];
    }
    x_prev = x;
  }
  sim_perf_record(Analysis::Tran, steps, seconds_between(t0, clock_type::now()),
                  0, 0, &w.phase);
  return out;
}

}  // namespace

TranResult solve_tran(const SimContext& ctx, const OpPoint& ic,
                      const TranOptions& opt) {
  if (sparse_engine_enabled() && ctx.structure) {
    try {
      return solve_tran_impl(ctx, ic, opt, /*use_sparse=*/true);
    } catch (const SparseEngineFallback&) {
      sim_perf_sparse_fallback(Analysis::Tran);
    }
  }
  return solve_tran_impl(ctx, ic, opt, /*use_sparse=*/false);
}

}  // namespace gcnrl::sim
