// Topology-graph extraction (paper Sec. III-B step 1: "Circuit environment
// embeds the topology into a graph whose vertices are components and edges
// are wires").
//
// Vertices are the designable components; an edge connects two components
// that share at least one non-supply net. Supply rails (VDD/ground/bias
// voltage rails marked by the circuit builder) are excluded because they
// would make the graph near-complete and wash out locality — the GCN's
// receptive-field argument relies on signal-path adjacency.
#pragma once

#include "circuit/netlist.hpp"
#include "la/matrix.hpp"

namespace gcnrl::circuit {

// Symmetric 0/1 adjacency over design components (no self loops; the GCN
// adds the identity itself).
la::Mat build_adjacency(const Netlist& nl, bool exclude_supply_nets = true);

// Number of connected components of the design graph (diagnostic; a good
// circuit graph is connected).
int connected_components(const la::Mat& adjacency);

// Longest shortest-path (graph diameter) over the largest connected
// component; used to check that the 7-layer GCN has a global receptive
// field as the paper claims.
int graph_diameter(const la::Mat& adjacency);

}  // namespace gcnrl::circuit
