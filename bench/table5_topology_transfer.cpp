// Table V reproduction: knowledge transfer between topologies
// (Two-TIA <-> Three-TIA) with scalar-index states (paper Sec. III-E).
// Three modes per direction: no transfer / NG-RL transfer / GCN-RL
// transfer. The paper's headline: without the GCN, transferred knowledge
// is no better than starting fresh.
#include <cstdio>

#include "common.hpp"

using namespace gcnrl;

namespace {

struct Direction {
  std::string src, dst;
};

}  // namespace

int main() {
  const BenchConfig cfg = bench_config();
  Rng rng(2024);
  const auto tech = circuit::make_technology("180nm");
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());

  std::printf(
      "Table V: topology transfer (pretrain=%d, budget=%d steps, seeds=%d)\n"
      "%s\n\n",
      cfg.steps, cfg.transfer_steps, cfg.seeds, bench::eval_banner().c_str());

  TextTable table({"Mode", "Two-TIA -> Three-TIA", "Three-TIA -> Two-TIA"});
  std::map<std::string, std::vector<std::string>> rows = {
      {"No Transfer", {"No Transfer"}},
      {"NG-RL Transfer", {"NG-RL Transfer"}},
      {"GCN-RL Transfer", {"GCN-RL Transfer"}},
  };

  for (const Direction& dir : {Direction{"Two-TIA", "Three-TIA"},
                               Direction{"Three-TIA", "Two-TIA"}}) {
    bench::EnvFactory src_factory(dir.src, tech, env::IndexMode::Scalar,
                                  cfg.calib_samples, rng, svc);
    bench::EnvFactory dst_factory(dir.dst, tech, env::IndexMode::Scalar,
                                  cfg.calib_samples, rng, svc);

    // Pretrain GCN and NG agents on the source topology, in lockstep (two
    // simulations per step on the shared service). The group owns the
    // pretrained agents, so it outlives the transfer runs below.
    std::vector<bench::LockstepSpec> pre_specs;
    for (bool use_gcn : {true, false}) {
      rl::DdpgConfig pre_cfg;
      pre_cfg.warmup = cfg.warmup;
      pre_cfg.use_gcn = use_gcn;
      pre_specs.push_back(bench::LockstepSpec{pre_cfg, Rng(600), nullptr, {}});
    }
    bench::LockstepGroup pre(src_factory, std::move(pre_specs));
    pre.run(cfg.steps);
    const std::map<bool, rl::DdpgAgent*> pretrained = {{true, &pre.agent(0)},
                                                       {false, &pre.agent(1)}};
    std::printf("  %s agents pretrained\n", dir.src.c_str());
    std::fflush(stdout);

    // Fine-tune all 3 modes x seeds in one lockstep group.
    std::vector<bench::LockstepSpec> specs;
    for (int s = 0; s < cfg.seeds; ++s) {
      const std::uint64_t seed = 700 + 17 * s;
      rl::DdpgConfig t_cfg;
      t_cfg.warmup = cfg.transfer_warmup;
      // Mode order per seed: none, NG transfer, GCN transfer.
      for (int mode = 0; mode < 3; ++mode) {
        rl::DdpgConfig m_cfg = t_cfg;
        const bool use_gcn = mode == 2;
        if (mode > 0) m_cfg.use_gcn = use_gcn;
        specs.push_back(bench::LockstepSpec{
            m_cfg, Rng(seed), mode > 0 ? pretrained.at(use_gcn) : nullptr,
            {}});
      }
    }
    bench::LockstepGroup group(dst_factory, std::move(specs));
    const auto runs = group.run(cfg.transfer_steps);
    std::vector<double> none, ng, gcn;
    for (int s = 0; s < cfg.seeds; ++s) {
      none.push_back(runs[static_cast<std::size_t>(3 * s)].best_fom);
      ng.push_back(runs[static_cast<std::size_t>(3 * s + 1)].best_fom);
      gcn.push_back(runs[static_cast<std::size_t>(3 * s + 2)].best_fom);
    }
    rows["No Transfer"].push_back(bench::pm(la::mean(none), la::stddev(none)));
    rows["NG-RL Transfer"].push_back(bench::pm(la::mean(ng), la::stddev(ng)));
    rows["GCN-RL Transfer"].push_back(
        bench::pm(la::mean(gcn), la::stddev(gcn)));
    std::printf("  %s -> %s done\n", dir.src.c_str(), dir.dst.c_str());
    std::fflush(stdout);
  }

  table.add_row(rows["No Transfer"]);
  table.add_row(rows["NG-RL Transfer"]);
  table.add_row(rows["GCN-RL Transfer"]);
  std::printf("\n");
  table.print();
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper reference: GCN-RL transfer 0.78 / 2.45 beats NG-RL transfer\n"
      "0.62 / 2.40 which is on par with no transfer 0.63 / 2.37.\n");
  return 0;
}
