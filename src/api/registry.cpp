// Registry TU: the single home of cross-circuit and cross-method dispatch.
// The legacy string-switch circuits::make_benchmark lives on as a shim over
// the CircuitRegistry at the bottom of this file.
#include "api/registry.hpp"

#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "circuit/analyze.hpp"
#include "circuit/gcir.hpp"
#include "env/circuit_compile.hpp"
#include "opt/bayes_opt.hpp"
#include "opt/cma_es.hpp"
#include "opt/mace.hpp"

namespace gcnrl::api {

namespace {

// Both registries keep insertion order in a deque (stable references, no
// hash-order leakage into circuit_names()/method_names()) plus a mutex so
// static CircuitRegistrars in parallel-initialized shared objects and
// registration from test fixtures stay safe.
struct CircuitEntry {
  std::string name;
  CircuitBuilder builder;
  // "gcir:<fnv1a64 of file text>" for file-registered circuits, "" for
  // C++ builders. Doubles as the idempotency key for
  // register_circuit_file and as the checkpoint-stamp source field.
  std::string source_tag;
};

struct CircuitReg {
  std::mutex mu;
  std::deque<CircuitEntry> entries;
};

template <typename Entries>
std::string name_list(const Entries& entries) {
  std::string out;
  for (const auto& e : entries) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

CircuitReg& circuit_reg() {
  // Built-ins seed the registry on first touch, so they are present no
  // matter which registration or lookup happens first (static-init-order
  // safe, and a static library cannot rely on self-registering TUs that
  // nothing references).
  static CircuitReg reg;
  static const bool seeded = [] {
    reg.entries.push_back({"Two-TIA", circuits::make_two_tia, ""});
    reg.entries.push_back({"Two-Volt", circuits::make_two_volt, ""});
    reg.entries.push_back({"Three-TIA", circuits::make_three_tia, ""});
    reg.entries.push_back({"LDO", circuits::make_ldo, ""});
    return true;
  }();
  (void)seeded;
  return reg;
}

struct MethodReg {
  std::mutex mu;
  std::deque<MethodInfo> entries;
};

MethodReg& method_reg() {
  static MethodReg reg;
  static const bool seeded = [] {
    reg.entries.push_back({"Human", MethodKind::Anchor, nullptr, nullptr, ""});
    reg.entries.push_back(
        {"Random", MethodKind::Random, nullptr, nullptr, ""});
    reg.entries.push_back(
        {"ES", MethodKind::AskTell,
         [](int dim, Rng rng) -> std::unique_ptr<opt::Optimizer> {
           return std::make_unique<opt::CmaEs>(dim, std::move(rng));
         },
         nullptr, ""});
    reg.entries.push_back(
        {"BO", MethodKind::AskTell,
         [](int dim, Rng rng) -> std::unique_ptr<opt::Optimizer> {
           return std::make_unique<opt::BayesOpt>(dim, std::move(rng));
         },
         nullptr, "ES"});
    reg.entries.push_back(
        {"MACE", MethodKind::AskTell,
         [](int dim, Rng rng) -> std::unique_ptr<opt::Optimizer> {
           return std::make_unique<opt::Mace>(dim, std::move(rng));
         },
         nullptr, "ES"});
    reg.entries.push_back({"NG-RL", MethodKind::Ddpg, nullptr,
                           [](rl::DdpgConfig& cfg) { cfg.use_gcn = false; },
                           ""});
    reg.entries.push_back({"GCN-RL", MethodKind::Ddpg, nullptr,
                           [](rl::DdpgConfig& cfg) { cfg.use_gcn = true; },
                           ""});
    return true;
  }();
  (void)seeded;
  return reg;
}

}  // namespace

void register_circuit(const std::string& name, CircuitBuilder builder) {
  if (name.empty()) {
    throw std::invalid_argument("register_circuit: empty circuit name");
  }
  if (!builder) {
    throw std::invalid_argument("register_circuit: null builder for " + name);
  }
  CircuitReg& reg = circuit_reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const CircuitEntry& e : reg.entries) {
    if (e.name == name) {
      throw std::invalid_argument(
          "register_circuit: duplicate circuit name \"" + name + "\"");
    }
  }
  reg.entries.push_back({name, std::move(builder), ""});
}

bool circuit_registered(const std::string& name) {
  CircuitReg& reg = circuit_reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const CircuitEntry& e : reg.entries) {
    if (e.name == name) return true;
  }
  return false;
}

namespace {

// Shared lookup behind build_circuit/require_circuit, so the
// unknown-circuit diagnostic has exactly one wording.
CircuitBuilder find_circuit_builder(const std::string& name) {
  CircuitReg& reg = circuit_reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const CircuitEntry& e : reg.entries) {
    if (e.name == name) return e.builder;
  }
  throw std::invalid_argument("unknown circuit \"" + name +
                              "\" (registered: " + name_list(reg.entries) +
                              ")");
}

}  // namespace

env::BenchmarkCircuit build_circuit(const std::string& name,
                                    const circuit::Technology& tech) {
  // Build outside the registry lock: builders are arbitrarily expensive
  // and may themselves consult the registry.
  return find_circuit_builder(name)(tech);
}

namespace {

std::string fnv1a_source_tag(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "gcir:%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

std::string register_circuit_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::invalid_argument("register_circuit_file: cannot read \"" +
                                path + "\"");
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  const std::string tag = fnv1a_source_tag(text);
  auto desc = std::make_shared<const circuit::CircuitDescription>(
      circuit::parse_gcir(text, path));
  // Admission control: run the semantic analyzer before spending anything
  // on the circuit. Errors reject the registration with the full
  // diagnostic list; warnings are surfaced on stderr and let it through.
  const std::vector<circuit::Diagnostic> diags =
      circuit::analyze_circuit(*desc, circuit::make_technology("180nm"));
  if (circuit::has_errors(diags)) {
    throw std::runtime_error("register_circuit_file: circuit \"" +
                             desc->name + "\" failed lint:\n" +
                             circuit::format_diagnostics(diags));
  }
  for (const circuit::Diagnostic& diag : diags) {
    std::fprintf(stderr, "%s\n", diag.format().c_str());
  }
  // Compile probe: surface the residual description-level problems (and
  // most numeric ones) at registration time, with the file as context,
  // instead of at the first task that builds the circuit.
  (void)env::compile_circuit(*desc, circuit::make_technology("180nm"));

  CircuitReg& reg = circuit_reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const CircuitEntry& e : reg.entries) {
    if (e.name != desc->name) continue;
    if (e.source_tag == tag) return desc->name;  // same content: no-op
    throw std::invalid_argument(
        "register_circuit_file: circuit \"" + desc->name +
        "\" is already registered " +
        (e.source_tag.empty() ? "by a C++ builder"
                              : "from different file content") +
        " (from \"" + path + "\")");
  }
  reg.entries.push_back(
      {desc->name,
       [desc](const circuit::Technology& tech) {
         return env::compile_circuit(*desc, tech);
       },
       tag});
  return desc->name;
}

std::string circuit_source_tag(const std::string& name) {
  CircuitReg& reg = circuit_reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const CircuitEntry& e : reg.entries) {
    if (e.name == name) return e.source_tag;
  }
  throw std::invalid_argument("unknown circuit \"" + name +
                              "\" (registered: " + name_list(reg.entries) +
                              ")");
}

void require_circuit(const std::string& name) {
  (void)find_circuit_builder(name);
}

std::vector<std::string> circuit_names() {
  CircuitReg& reg = circuit_reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.entries.size());
  for (const CircuitEntry& e : reg.entries) names.push_back(e.name);
  return names;
}

CircuitRegistrar::CircuitRegistrar(const std::string& name,
                                   CircuitBuilder builder) {
  register_circuit(name, std::move(builder));
}

void register_method(MethodInfo info) {
  if (info.name.empty()) {
    throw std::invalid_argument("register_method: empty method name");
  }
  if (info.kind == MethodKind::AskTell && !info.make_optimizer) {
    throw std::invalid_argument("register_method: AskTell method \"" +
                                info.name + "\" needs make_optimizer");
  }
  MethodReg& reg = method_reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const MethodInfo& e : reg.entries) {
    if (e.name == info.name) {
      throw std::invalid_argument(
          "register_method: duplicate method name \"" + info.name + "\"");
    }
  }
  reg.entries.push_back(std::move(info));
}

bool method_registered(const std::string& name) {
  MethodReg& reg = method_reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const MethodInfo& e : reg.entries) {
    if (e.name == name) return true;
  }
  return false;
}

const MethodInfo& method_info(const std::string& name) {
  MethodReg& reg = method_reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const MethodInfo& e : reg.entries) {
    // Deque entries are never erased, so the reference is process-stable.
    if (e.name == name) return e;
  }
  throw std::invalid_argument("method_info: unknown method \"" + name +
                              "\" (registered: " + name_list(reg.entries) +
                              ")");
}

std::vector<std::string> method_names() {
  MethodReg& reg = method_reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.entries.size());
  for (const MethodInfo& e : reg.entries) names.push_back(e.name);
  return names;
}

std::unique_ptr<opt::Optimizer> make_ask_tell(const std::string& method,
                                              int dim, Rng rng) {
  const MethodInfo& mi = method_info(method);
  if (mi.kind != MethodKind::AskTell) {
    throw std::invalid_argument("make_ask_tell: method \"" + method +
                                "\" is not an ask/tell optimizer");
  }
  return mi.make_optimizer(dim, std::move(rng));
}

}  // namespace gcnrl::api

namespace gcnrl::circuits {

// Legacy entry points, relocated here from two_volt.cpp: thin shims over
// the CircuitRegistry so old call sites keep working while user-registered
// circuits become reachable through them too.
env::BenchmarkCircuit make_benchmark(const std::string& name,
                                     const circuit::Technology& tech) {
  return api::build_circuit(name, tech);
}

std::vector<std::string> benchmark_names() { return api::circuit_names(); }

}  // namespace gcnrl::circuits
