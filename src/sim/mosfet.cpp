#include "sim/mosfet.hpp"

#include <algorithm>
#include <cmath>

namespace gcnrl::sim {
namespace {

constexpr double kBoltzmannT = 1.380649e-23 * 300.0;  // kT at 300 K
constexpr double kVtSub = 0.045;  // subthreshold smoothing voltage [V]

// Numerically-stable softplus: kVtSub * ln(1 + exp(x / kVtSub)).
double softplus(double x) {
  const double z = x / kVtSub;
  if (z > 30.0) return x;
  if (z < -30.0) return kVtSub * std::exp(z);
  return kVtSub * std::log1p(std::exp(z));
}

// Core NMOS-convention current for vds >= 0.
double id_core(const MosModel& m, double w_eff, double l, double vgs,
               double vds) {
  const double vov = softplus(vgs - m.vth0);
  if (vov <= 0.0) return 0.0;
  const double mu_eff = m.mu0 / (1.0 + m.uc * vov);
  const double beta = mu_eff * m.cox * (w_eff / l);
  const double ec_l = 2.0 * m.vsat * l / mu_eff;  // velocity-sat voltage
  const double vdsat = vov * ec_l / (vov + ec_l);
  // Smooth triode->saturation clamp of the drain voltage.
  const double x = vds / vdsat;
  const double vde = vds / std::cbrt(1.0 + x * x * x);
  const double lambda = m.lambda_um / (l * 1e6);
  return beta * (vov - 0.5 * vde) * vde * (1.0 + lambda * vds) /
         (1.0 + vde / ec_l);
}

// Symmetric wrapper: handles vds < 0 by swapping drain/source.
double id_sym(const MosModel& m, double w_eff, double l, double vg, double vd,
              double vs) {
  if (vd >= vs) return id_core(m, w_eff, l, vg - vs, vd - vs);
  return -id_core(m, w_eff, l, vg - vd, vs - vd);
}

}  // namespace

MosModel mos_model(const circuit::Technology& tech, bool pmos) {
  MosModel m;
  m.pmos = pmos;
  m.vth0 = pmos ? tech.vth0_p : tech.vth0_n;
  m.mu0 = pmos ? tech.mu0_p : tech.mu0_n;
  m.vsat = tech.vsat;
  m.uc = tech.uc;
  m.cox = tech.cox;
  m.lambda_um = tech.lambda_um;
  m.cov = tech.cov;
  m.cj = tech.cj;
  m.kf = tech.kf;
  return m;
}

MosOp eval_mos(const MosModel& m, const circuit::Mosfet& geom, double vg,
               double vd, double vs) {
  const double w_eff = geom.w * geom.m;
  const double l = geom.l;
  // PMOS: mirror all voltages; the resulting current is mirrored back.
  const double sign = m.pmos ? -1.0 : 1.0;
  const double vg_i = sign * vg;
  const double vd_i = sign * vd;
  const double vs_i = sign * vs;

  const double id = id_sym(m, w_eff, l, vg_i, vd_i, vs_i);
  const double h = 1e-6;
  const double id_gp = id_sym(m, w_eff, l, vg_i + h, vd_i, vs_i);
  const double id_gm = id_sym(m, w_eff, l, vg_i - h, vd_i, vs_i);
  const double id_dp = id_sym(m, w_eff, l, vg_i, vd_i + h, vs_i);
  const double id_dm = id_sym(m, w_eff, l, vg_i, vd_i - h, vs_i);

  MosOp op;
  // Mirroring cancels: d(sign*id_i)/d(sign*v) = d id_i / d v.
  op.id = sign * id;
  op.gm = (id_gp - id_gm) / (2.0 * h);
  op.gds = (id_dp - id_dm) / (2.0 * h);
  op.vov = softplus((vg_i - vs_i) - m.vth0);
  // Note: gm is negative w.r.t. the labeled gate terminal when the device
  // operates drain/source-reversed (vds < 0 internally). Do NOT clamp —
  // Newton needs the Jacobian consistent with the residual precisely in
  // those transitional states.
  return op;
}

MosCaps mos_caps(const MosModel& m, const circuit::Mosfet& geom) {
  const double w_eff = geom.w * geom.m;
  MosCaps c;
  c.cgs = (2.0 / 3.0) * m.cox * w_eff * geom.l + m.cov * w_eff;
  c.cgd = m.cov * w_eff;
  c.cdb = m.cj * w_eff;
  c.csb = m.cj * w_eff;
  return c;
}

double mos_thermal_psd(double gm) {
  return 4.0 * kBoltzmannT * (2.0 / 3.0) * std::max(gm, 0.0);
}

double mos_flicker_psd(const MosModel& m, const circuit::Mosfet& geom,
                       double gm, double freq) {
  if (m.kf <= 0.0 || freq <= 0.0) return 0.0;
  const double area = geom.w * geom.m * geom.l;
  return m.kf * gm * gm / (m.cox * area * freq);
}

double resistor_thermal_psd(double r) {
  return r > 0.0 ? 4.0 * kBoltzmannT / r : 0.0;
}

}  // namespace gcnrl::sim
