#include "circuit/tech.hpp"

#include <stdexcept>

namespace gcnrl::circuit {

std::array<double, 5> Technology::model_features(Kind kind) const {
  switch (kind) {
    case Kind::Nmos:
      return {vsat * 1e-5, vth0_n, vfb, mu0_n * 10.0, uc};
    case Kind::Pmos:
      // PMOS features carry sign-flipped threshold / flat band so the two
      // device types are distinguishable beyond the type one-hot.
      return {vsat * 1e-5, -vth0_p, -vfb, mu0_p * 10.0, uc};
    case Kind::Resistor:
    case Kind::Capacitor:
      return {0.0, 0.0, 0.0, 0.0, 0.0};
  }
  return {};
}

Technology make_technology(const std::string& node) {
  Technology t;
  t.name = node;
  // Common settings.
  t.grid = 5e-9;
  t.mmax = 64;
  t.rmin = 100.0;
  t.rmax = 1e6;
  t.cmin = 10e-15;
  t.cmax = 50e-12;
  t.vsat = 8e4;

  const double eps_ox = 3.9 * 8.854e-12;  // SiO2 permittivity [F/m]

  auto common = [&](double lnode_nm, double vdd, double tox_nm, double vth_n,
                    double vth_p, double mu_n, double mu_p, double uc,
                    double vfb, double lambda_um, double kf_scale) {
    t.lnode = lnode_nm * 1e-9;
    t.vdd = vdd;
    t.lmin = t.lnode;
    t.lmax = 20.0 * t.lnode;
    t.wmin = 2.0 * t.lnode;
    t.wmax = 100e-6;
    t.cox = eps_ox / (tox_nm * 1e-9);
    t.vth0_n = vth_n;
    t.vth0_p = vth_p;
    t.mu0_n = mu_n;
    t.mu0_p = mu_p;
    t.uc = uc;
    t.vfb = vfb;
    t.lambda_um = lambda_um;
    t.cov = 0.35 * t.cox * t.lnode;  // overlap ~ 0.35 Lnode of gate cap
    t.cj = 1.1 * t.cox * t.lnode;    // junction ~ drain extension area
    t.kf = 2.5e-26 * kf_scale;       // flicker coefficient
  };

  if (node == "250nm") {
    common(250, 2.5, 5.6, 0.55, 0.60, 0.0430, 0.0160, 0.25, -0.90, 0.045, 1.6);
  } else if (node == "180nm") {
    common(180, 1.8, 4.1, 0.50, 0.52, 0.0400, 0.0150, 0.30, -0.88, 0.050, 1.3);
  } else if (node == "130nm") {
    common(130, 1.3, 3.1, 0.42, 0.45, 0.0360, 0.0135, 0.35, -0.85, 0.058, 1.0);
  } else if (node == "65nm") {
    common(65, 1.2, 2.4, 0.38, 0.40, 0.0300, 0.0115, 0.45, -0.82, 0.070, 0.7);
  } else if (node == "45nm") {
    common(45, 1.1, 1.9, 0.35, 0.37, 0.0260, 0.0100, 0.55, -0.80, 0.080, 0.5);
  } else {
    throw std::invalid_argument("make_technology: unknown node " + node);
  }
  return t;
}

std::vector<std::string> available_nodes() {
  return {"250nm", "180nm", "130nm", "65nm", "45nm"};
}

}  // namespace gcnrl::circuit
