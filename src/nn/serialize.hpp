// Named-parameter (de)serialization.
//
// This is the knowledge-transfer mechanism of the paper: an agent trained
// on one technology node (or, in scalar-index state mode, one topology) is
// saved and its actor/critic weights are loaded into a fresh agent for the
// target node/topology. Format is a simple self-describing binary blob
// (magic, count, then name/shape/data records).
#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"

namespace gcnrl::nn {

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params);

// Loads by name. Every stored parameter whose name matches a destination
// parameter AND has the same shape is copied; returns the number copied.
// `strict` additionally requires that every destination parameter is
// matched (throws otherwise).
int load_parameters(const std::string& path,
                    const std::vector<Parameter*>& params,
                    bool strict = true);

// In-memory copy by name (used for transfer without touching disk).
int copy_parameters(const std::vector<Parameter*>& src,
                    const std::vector<Parameter*>& dst);

}  // namespace gcnrl::nn
