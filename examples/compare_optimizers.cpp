// Compare all optimization methods on one circuit with a small budget —
// a minimal version of the Table I experiment for interactive use, and
// the smallest end-to-end demo of the task facade: every registered
// method becomes one TaskSpec, api::run_tasks shares one calibration and
// one evaluation service across all of them, and BO/MACE automatically
// stop at the matching ES run's simulated cost (the paper's budget rule).
//
// Usage: compare_optimizers [circuit] [steps]
//        circuit: any registered name (default Two-TIA; see
//        api::circuit_names() / the inspect_benchmarks example).
#include <cstdio>

#include "api/api.hpp"
#include "common/table.hpp"

using namespace gcnrl;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "Two-TIA";
  const int steps = argc > 2 ? std::atoi(argv[2]) : 300;

  // One task per registered method — Human, Random, ES, BO, MACE, NG-RL,
  // GCN-RL out of the box, plus anything user code registered.
  std::vector<api::TaskSpec> tasks;
  for (const std::string& method : api::method_names()) {
    api::TaskSpec t;
    t.circuit = name;
    t.method = method;
    t.steps = steps;
    t.warmup = steps / 3;
    tasks.push_back(t);
  }
  api::RunOptions opts;
  opts.calib_samples = 200;
  const auto results = api::run_tasks(tasks, opts);

  // Evals counts requested evaluations; Sims the run's simulated cost —
  // the difference was served by the EvalService result cache.
  TextTable table({"Method", "Best FoM", "Evals", "Sims"});
  for (const auto& r : results) {
    const auto& run = r.runs.front();
    const bool anchor = r.spec.method == "Human";
    table.add_row({r.spec.method, TextTable::num(run.best_fom, 3),
                   anchor ? "-" : std::to_string(run.evals),
                   anchor ? "-" : std::to_string(run.sims)});
  }

  std::printf("%s @ 180nm, %d evaluations per method\n%s\n\n", name.c_str(),
              steps, api::eval_banner().c_str());
  table.print();
  return 0;
}
