#include "sim/mosfet.hpp"

#include <algorithm>
#include <cmath>

namespace gcnrl::sim {
namespace {

constexpr double kBoltzmannT = 1.380649e-23 * 300.0;  // kT at 300 K
constexpr double kVtSub = 0.045;  // subthreshold smoothing voltage [V]

// Numerically-stable softplus: kVtSub * ln(1 + exp(x / kVtSub)).
double softplus(double x) {
  const double z = x / kVtSub;
  if (z > 30.0) return x;
  if (z < -30.0) return kVtSub * std::exp(z);
  return kVtSub * std::log1p(std::exp(z));
}

// Current and its two partial derivatives from one model evaluation.
struct IdGrad {
  double id = 0.0;
  double dvgs = 0.0;  // d id / d vgs
  double dvds = 0.0;  // d id / d vds
};

// Core NMOS-convention current for vds >= 0, with analytic derivatives
// propagated through every intermediate (softplus overdrive, mobility
// degradation, velocity-saturation voltage, the smooth triode->saturation
// clamp, and channel-length modulation). One transcendental set per call
// — this is the Newton-loop hot path, evaluated once per device per
// iteration where the previous finite-difference Jacobian needed five
// model evaluations.
IdGrad id_core(const MosModel& m, double w_eff, double l, double vgs,
               double vds) {
  IdGrad r;
  // Softplus overdrive and its slope (the logistic function).
  const double z = (vgs - m.vth0) / kVtSub;
  double vov, dvov;  // dvov = d vov / d vgs
  if (z > 30.0) {
    vov = vgs - m.vth0;
    dvov = 1.0;
  } else if (z < -30.0) {
    const double ez = std::exp(z);
    vov = kVtSub * ez;
    dvov = ez;
  } else {
    const double ez = std::exp(z);
    vov = kVtSub * std::log1p(ez);
    dvov = ez / (1.0 + ez);
  }
  if (vov <= 0.0) return r;
  const double mu_den = 1.0 + m.uc * vov;
  const double mu_eff = m.mu0 / mu_den;
  const double beta = mu_eff * m.cox * (w_eff / l);
  const double dbeta = -beta * m.uc / mu_den;             // d beta / d vov
  const double ec_l = 2.0 * m.vsat * l / mu_eff;          // = 2 vsat l mu_den / mu0
  const double dec_l = 2.0 * m.vsat * l * m.uc / m.mu0;   // d ec_l / d vov
  const double vse = vov + ec_l;
  const double vdsat = vov * ec_l / vse;
  const double dvdsat =                                   // d vdsat / d vov
      (ec_l * ec_l + vov * vov * dec_l) / (vse * vse);
  // Smooth triode->saturation clamp of the drain voltage.
  const double x = vds / vdsat;
  const double u = 1.0 + x * x * x;
  const double cr = std::cbrt(u);
  const double vde = vds / cr;
  // d vde / d vds at fixed vdsat collapses to u^(-4/3); the vdsat path
  // carries the gate dependence.
  const double dvde_dvds = 1.0 / (u * cr);
  const double dvde_dvdsat = vds * dvde_dvds * x * x * x / vdsat;
  const double dvde_g = dvde_dvdsat * dvdsat * dvov;      // d vde / d vgs
  const double lambda = m.lambda_um / (l * 1e6);
  const double a = vov - 0.5 * vde;
  const double cl = 1.0 + lambda * vds;
  const double den = 1.0 + vde / ec_l;
  r.id = beta * a * vde * cl / den;
  // Gate partial: beta, a, vde, and den all move with vov.
  const double dden_g = dvde_g / ec_l - vde * dec_l * dvov / (ec_l * ec_l);
  r.dvgs = dbeta * dvov * a * vde * cl / den +
           beta * cl *
               ((dvov - 0.5 * dvde_g) * vde + a * dvde_g -
                a * vde * dden_g / den) /
               den;
  // Drain partial: vde and the lambda term move with vds.
  const double dden_d = dvde_dvds / ec_l;
  r.dvds = beta *
           ((-0.5 * dvde_dvds) * vde * cl + a * dvde_dvds * cl +
            a * vde * lambda - a * vde * cl * dden_d / den) /
           den;
  return r;
}

// Symmetric wrapper: handles vds < 0 by swapping drain/source. The
// derivative mapping under reflection (id -> -id, vgs' = vg - vd,
// vds' = vs - vd) gives gm = -d/dvgs' and gds = d/dvgs' + d/dvds',
// matching the sign structure the finite differences used to produce.
IdGrad id_sym(const MosModel& m, double w_eff, double l, double vg, double vd,
              double vs) {
  if (vd >= vs) return id_core(m, w_eff, l, vg - vs, vd - vs);
  IdGrad c = id_core(m, w_eff, l, vg - vd, vs - vd);
  IdGrad r;
  r.id = -c.id;
  r.dvgs = -c.dvgs;
  r.dvds = c.dvgs + c.dvds;
  return r;
}

}  // namespace

MosModel mos_model(const circuit::Technology& tech, bool pmos) {
  MosModel m;
  m.pmos = pmos;
  m.vth0 = pmos ? tech.vth0_p : tech.vth0_n;
  m.mu0 = pmos ? tech.mu0_p : tech.mu0_n;
  m.vsat = tech.vsat;
  m.uc = tech.uc;
  m.cox = tech.cox;
  m.lambda_um = tech.lambda_um;
  m.cov = tech.cov;
  m.cj = tech.cj;
  m.kf = tech.kf;
  return m;
}

MosOp eval_mos(const MosModel& m, const circuit::Mosfet& geom, double vg,
               double vd, double vs) {
  const double w_eff = geom.w * geom.m;
  const double l = geom.l;
  // PMOS: mirror all voltages; the resulting current is mirrored back.
  const double sign = m.pmos ? -1.0 : 1.0;
  const double vg_i = sign * vg;
  const double vd_i = sign * vd;
  const double vs_i = sign * vs;

  const IdGrad g = id_sym(m, w_eff, l, vg_i, vd_i, vs_i);

  MosOp op;
  // Mirroring cancels: d(sign*id_i)/d(sign*v) = d id_i / d v.
  op.id = sign * g.id;
  op.gm = g.dvgs;
  op.gds = g.dvds;
  op.vov = softplus((vg_i - vs_i) - m.vth0);
  // Note: gm is negative w.r.t. the labeled gate terminal when the device
  // operates drain/source-reversed (vds < 0 internally). Do NOT clamp —
  // Newton needs the Jacobian consistent with the residual precisely in
  // those transitional states.
  return op;
}

MosCaps mos_caps(const MosModel& m, const circuit::Mosfet& geom) {
  const double w_eff = geom.w * geom.m;
  MosCaps c;
  c.cgs = (2.0 / 3.0) * m.cox * w_eff * geom.l + m.cov * w_eff;
  c.cgd = m.cov * w_eff;
  c.cdb = m.cj * w_eff;
  c.csb = m.cj * w_eff;
  return c;
}

double mos_thermal_psd(double gm) {
  return 4.0 * kBoltzmannT * (2.0 / 3.0) * std::max(gm, 0.0);
}

double mos_flicker_psd(const MosModel& m, const circuit::Mosfet& geom,
                       double gm, double freq) {
  if (m.kf <= 0.0 || freq <= 0.0) return 0.0;
  const double area = geom.w * geom.m * geom.l;
  return m.kf * gm * gm / (m.cox * area * freq);
}

double resistor_thermal_psd(double r) {
  return r > 0.0 ? 4.0 * kBoltzmannT / r : 0.0;
}

}  // namespace gcnrl::sim
