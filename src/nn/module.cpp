#include "nn/module.hpp"

namespace gcnrl::nn {

ag::Var Module::leaf(ag::Tape& tape, Parameter& p) {
  Parameter* pp = &p;
  ag::Var v = tape.make(p.value, true, nullptr);
  ag::Node* node = v.node();
  node->pullback = [pp, node] { pp->grad += node->grad; };
  return v;
}

}  // namespace gcnrl::nn
