#include "common.hpp"

#include <stdexcept>

namespace gcnrl::bench {

LockstepGroup::LockstepGroup(const EnvFactory& factory,
                             std::vector<LockstepSpec> specs) {
  // All pairs share one service so run_ddpg_lockstep batches them as one
  // group (it would transparently split them otherwise).
  std::shared_ptr<env::EvalService> svc = factory.service();
  if (!svc) {
    svc = std::make_shared<env::EvalService>(env::eval_config_from_env());
  }
  for (LockstepSpec& spec : specs) {
    envs_.push_back(factory.make(svc));
    if (spec.setup) spec.setup(*envs_.back());
    agents_.push_back(std::make_unique<rl::DdpgAgent>(
        envs_.back()->state(), envs_.back()->adjacency(),
        envs_.back()->kinds(), spec.cfg, spec.rng));
    if (spec.copy_from != nullptr) {
      agents_.back()->copy_weights_from(*spec.copy_from);
    }
  }
}

std::vector<rl::RunResult> LockstepGroup::run(int steps) {
  std::vector<env::SizingEnv*> env_ptrs;
  std::vector<rl::DdpgAgent*> agent_ptrs;
  env_ptrs.reserve(envs_.size());
  agent_ptrs.reserve(agents_.size());
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    env_ptrs.push_back(envs_[i].get());
    agent_ptrs.push_back(agents_[i].get());
  }
  return rl::run_ddpg_lockstep(env_ptrs, agent_ptrs, steps);
}

rl::RunResult run_optimizer_budgeted(env::SizingEnv& env, opt::Optimizer& opt,
                                     int steps, long sim_budget) {
  return rl::run_optimizer(env, opt, steps, sim_budget > 0 ? sim_budget : -1);
}

std::unique_ptr<opt::Optimizer> make_optimizer(const std::string& method,
                                               int dim, Rng rng) {
  if (method == "ES") return std::make_unique<opt::CmaEs>(dim, rng);
  if (method == "BO") return std::make_unique<opt::BayesOpt>(dim, rng);
  if (method == "MACE") return std::make_unique<opt::Mace>(dim, rng);
  throw std::invalid_argument("make_optimizer: unknown method " + method);
}

std::string eval_banner() {
  const env::EvalServiceConfig cfg = env::eval_config_from_env();
  return "eval engine: threads=" + std::to_string(cfg.threads) +
         (cfg.threads > 1 ? " (thread pool)" : " (serial)") +
         ", cache=" + std::to_string(cfg.cache_capacity);
}

std::string service_usage(const env::EvalService& svc) {
  return "service totals: " + std::to_string(svc.requested()) + " evals, " +
         std::to_string(svc.sims()) + " sims, " +
         std::to_string(svc.cache_hits()) + " cache hits, " +
         std::to_string(svc.threads()) + " threads";
}

rl::RunResult run_method(const std::string& method, const EnvFactory& factory,
                         int steps, int warmup, std::uint64_t seed,
                         long sim_budget, const rl::DdpgConfig& base_cfg,
                         std::shared_ptr<env::EvalService> svc) {
  auto env = svc ? factory.make(std::move(svc)) : factory.make();
  Rng rng(seed);

  if (method == "Random") {
    return rl::run_random(*env, steps, rng);
  }
  if (method == "ES" || method == "BO" || method == "MACE") {
    const auto opt = make_optimizer(method, env->flat_dim(), rng);
    // ES is the budget source: it runs on its step budget alone.
    return run_optimizer_budgeted(*env, *opt, steps,
                                  method == "ES" ? 0 : sim_budget);
  }
  if (method == "NG-RL" || method == "GCN-RL") {
    rl::DdpgConfig cfg = base_cfg;
    cfg.use_gcn = method == "GCN-RL";
    cfg.warmup = warmup;
    rl::DdpgAgent agent(env->state(), env->adjacency(), env->kinds(), cfg,
                        rng);
    return rl::run_ddpg(*env, agent, steps);
  }
  throw std::invalid_argument("run_method: unknown method " + method);
}

SweepResult sweep(const std::string& method, const EnvFactory& factory,
                  int steps, int warmup, int seeds,
                  std::span<const long> sim_budgets,
                  const rl::DdpgConfig& base_cfg) {
  SweepResult out;
  if (!sim_budgets.empty() &&
      sim_budgets.size() != static_cast<std::size_t>(seeds)) {
    throw std::invalid_argument("sweep: need one sim budget per seed");
  }
  // Either way, all S seeds share one service — its thread pool and its
  // result cache. FoM values never depend on cache state (raw metrics are
  // cached, the FoM is recomputed per env) and budgets count run-local
  // simulated cost (RunResult::sims, warmth-independent by construction),
  // so every per-seed trace is bit-identical to a fully isolated run of
  // the same seed, whatever ran on the service before.
  const auto seed_of = [](int s) {
    return 1000 + 7919 * static_cast<std::uint64_t>(s);
  };
  std::vector<rl::RunResult> results;
  const bool is_rl = method == "NG-RL" || method == "GCN-RL";
  if (is_rl) {
    // Lockstep mode: S (env, agent) pairs advance together, one S-wide
    // simulation batch per step.
    std::vector<LockstepSpec> specs;
    specs.reserve(static_cast<std::size_t>(seeds));
    for (int s = 0; s < seeds; ++s) {
      rl::DdpgConfig cfg = base_cfg;
      cfg.use_gcn = method == "GCN-RL";
      cfg.warmup = warmup;
      specs.push_back(LockstepSpec{cfg, Rng(seed_of(s)), nullptr, {}});
    }
    LockstepGroup group(factory, std::move(specs));
    results = group.run(steps);
  } else {
    std::shared_ptr<env::EvalService> svc = factory.service();
    if (!svc) {
      svc = std::make_shared<env::EvalService>(env::eval_config_from_env());
    }
    if (method == "Random") {
      for (int s = 0; s < seeds; ++s) {
        results.push_back(run_method(method, factory, steps, warmup,
                                     seed_of(s), 0, base_cfg, svc));
      }
    } else {
      // Lockstep mode for the ask/tell baselines: S optimizers propose
      // into one merged batch per round; a seed whose budget runs out
      // drops out of later rounds.
      std::vector<std::unique_ptr<env::SizingEnv>> envs;
      std::vector<std::unique_ptr<opt::Optimizer>> opts;
      std::vector<rl::OptimizerPair> pairs;
      for (int s = 0; s < seeds; ++s) {
        envs.push_back(factory.make(svc));
        opts.push_back(
            make_optimizer(method, envs.back()->flat_dim(), Rng(seed_of(s))));
        const long max_sims = sim_budgets.empty()
                                  ? -1
                                  : sim_budgets[static_cast<std::size_t>(s)];
        pairs.push_back(rl::OptimizerPair{envs.back().get(),
                                          opts.back().get(), steps,
                                          max_sims > 0 ? max_sims : -1});
      }
      results = rl::run_optimizer_lockstep(pairs);
    }
  }
  for (rl::RunResult& r : results) {
    out.best.push_back(r.best_fom);
    out.sims.push_back(r.sims);
    out.traces.push_back(std::move(r.best_trace));
  }
  out.mean = la::mean(out.best);
  out.stddev = la::stddev(out.best);
  return out;
}

SweepResult sweep_chained(const std::string& method, const EnvFactory& factory,
                          int steps, int warmup, int seeds,
                          std::vector<long>& es_sims,
                          const rl::DdpgConfig& base_cfg) {
  const bool budgeted = method == "BO" || method == "MACE";
  SweepResult sw = sweep(
      method, factory, steps, warmup, seeds,
      budgeted ? std::span<const long>(es_sims) : std::span<const long>{},
      base_cfg);
  if (method == "ES") es_sims = sw.sims;
  return sw;
}

std::string pm(double mean, double stddev, int precision) {
  return TextTable::num(mean, precision) + " +/- " +
         TextTable::num(stddev, 2);
}

}  // namespace gcnrl::bench
