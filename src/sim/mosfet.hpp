// First-order MOSFET model ("GL1"): square law with velocity saturation,
// mobility degradation, channel-length modulation and a smooth
// subthreshold tail.
//
// Design goals, in order: (1) C1-continuous everywhere so Newton converges
// from cold starts across the whole random-sizing space; (2) physically
// sensible trends (gm/ID, ro ~ 1/(lambda Id), fT ~ mu Vov / L^2) so sizing
// trade-offs look like real analog design; (3) cheap. Accuracy against any
// particular foundry model is a non-goal (see DESIGN.md substitutions).
//
// Conventions: NMOS current flows drain->source and is positive for
// vds > 0. PMOS is handled by mirroring voltages and current. The model is
// symmetric in drain/source (internal swap for vds < 0).
#pragma once

#include "circuit/netlist.hpp"
#include "circuit/tech.hpp"

namespace gcnrl::sim {

struct MosModel {
  bool pmos = false;
  double vth0 = 0.5;    // [V]
  double mu0 = 0.04;    // [m^2/Vs]
  double vsat = 8e4;    // [m/s]
  double uc = 0.3;      // [1/V]
  double cox = 8e-3;    // [F/m^2]
  double lambda_um = 0.05;
  double cov = 0.0;     // overlap cap per width [F/m]
  double cj = 0.0;      // junction cap per width [F/m]
  double kf = 0.0;      // flicker coefficient
};

MosModel mos_model(const circuit::Technology& tech, bool pmos);

struct MosOp {
  double id = 0.0;   // drain current (terminal convention above) [A]
  double gm = 0.0;   // d id / d vgs [S]
  double gds = 0.0;  // d id / d vds [S]
  double vov = 0.0;  // effective overdrive [V] (diagnostic)
};

// Terminal-voltage evaluation with derivatives (derivatives are exact
// central differences of the same smooth core, so the Newton Jacobian is
// consistent with the residual to O(h^2)).
MosOp eval_mos(const MosModel& m, const circuit::Mosfet& geom, double vg,
               double vd, double vs);

struct MosCaps {
  double cgs = 0.0;
  double cgd = 0.0;
  double cdb = 0.0;
  double csb = 0.0;
};

// Bias-independent small-signal capacitances (saturation-mode split).
MosCaps mos_caps(const MosModel& m, const circuit::Mosfet& geom);

// Noise PSDs at an operating point.
// Thermal drain-current PSD: 4 k T gamma gm  [A^2/Hz], gamma = 2/3.
double mos_thermal_psd(double gm);
// Flicker drain-current PSD at frequency f: kf * gm^2 / (Cox W L M f).
double mos_flicker_psd(const MosModel& m, const circuit::Mosfet& geom,
                       double gm, double freq);
// Resistor thermal PSD: 4 k T / R  [A^2/Hz].
double resistor_thermal_psd(double r);

}  // namespace gcnrl::sim
