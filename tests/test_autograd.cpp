// Gradient-correctness tests: every autograd op is checked against central
// finite differences through non-trivial composite expressions.
#include <gtest/gtest.h>

#include <functional>

#include "autograd/ops.hpp"
#include "autograd/tape.hpp"
#include "common/rng.hpp"

namespace ag = gcnrl::ag;
namespace la = gcnrl::la;
using gcnrl::Rng;

namespace {

la::Mat random_mat(int r, int c, Rng& rng, double scale = 1.0) {
  la::Mat m(r, c);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) m(i, j) = rng.uniform(-scale, scale);
  }
  return m;
}

// Checks d(loss)/d(input) against central differences. `f` maps tape+input
// Var to a scalar Var.
void check_gradient(const la::Mat& x0,
                    const std::function<ag::Var(ag::Tape&, ag::Var)>& f,
                    double tol = 1e-6) {
  ag::Tape tape;
  ag::Var x = tape.input(x0);
  ag::Var loss = f(tape, x);
  ASSERT_EQ(loss.rows(), 1);
  ASSERT_EQ(loss.cols(), 1);
  tape.backward(loss);
  la::Mat analytic = x.grad();

  const double h = 1e-6;
  for (int r = 0; r < x0.rows(); ++r) {
    for (int c = 0; c < x0.cols(); ++c) {
      la::Mat xp = x0, xm = x0;
      xp(r, c) += h;
      xm(r, c) -= h;
      ag::Tape tp;
      const double lp = f(tp, tp.input(xp)).value()(0, 0);
      ag::Tape tm;
      const double lm = f(tm, tm.input(xm)).value()(0, 0);
      const double numeric = (lp - lm) / (2.0 * h);
      EXPECT_NEAR(analytic(r, c), numeric, tol)
          << "at (" << r << "," << c << ")";
    }
  }
}

}  // namespace

TEST(Autograd, ScalarChain) {
  // loss = mean( 3 * x + 1 )  =>  dloss/dx = 3/n each.
  la::Mat x0{{1.0, -2.0}, {0.5, 4.0}};
  check_gradient(x0, [](ag::Tape&, ag::Var x) {
    return ag::mean_all(ag::add_scalar(ag::scale(x, 3.0), 1.0));
  });
}

TEST(Autograd, MatmulBothSides) {
  Rng rng(1);
  la::Mat a0 = random_mat(3, 4, rng);
  la::Mat b0 = random_mat(4, 2, rng);
  // Gradient w.r.t. A with B constant-but-differentiable as input too.
  check_gradient(a0, [&](ag::Tape& t, ag::Var a) {
    ag::Var b = t.input(b0);
    return ag::sum_all(ag::matmul(a, b));
  });
  check_gradient(b0, [&](ag::Tape& t, ag::Var b) {
    ag::Var a = t.input(a0);
    return ag::sum_all(ag::matmul(a, b));
  });
}

TEST(Autograd, MatmulConstLeft) {
  Rng rng(2);
  la::Mat k = random_mat(3, 3, rng);
  la::Mat h0 = random_mat(3, 5, rng);
  check_gradient(h0, [&](ag::Tape&, ag::Var h) {
    return ag::sum_all(ag::relu(ag::matmul_const_left(k, h)));
  });
}

TEST(Autograd, AddSubHadamard) {
  Rng rng(3);
  la::Mat a0 = random_mat(4, 3, rng);
  la::Mat b0 = random_mat(4, 3, rng);
  check_gradient(a0, [&](ag::Tape& t, ag::Var a) {
    ag::Var b = t.input(b0);
    return ag::mean_all(ag::hadamard(ag::add(a, b), ag::sub(a, b)));
  });
}

TEST(Autograd, HadamardConstMask) {
  Rng rng(4);
  la::Mat a0 = random_mat(3, 3, rng);
  la::Mat mask(3, 3);
  mask(0, 0) = 1.0;
  mask(1, 1) = 1.0;
  check_gradient(a0, [&](ag::Tape&, ag::Var a) {
    return ag::sum_all(ag::hadamard_const(a, mask));
  });
}

TEST(Autograd, RowBroadcast) {
  Rng rng(5);
  la::Mat m0 = random_mat(4, 3, rng);
  la::Mat r0 = random_mat(1, 3, rng);
  check_gradient(r0, [&](ag::Tape& t, ag::Var row) {
    ag::Var m = t.input(m0);
    return ag::mean_all(ag::tanh_(ag::add_row_broadcast(m, row)));
  });
  check_gradient(m0, [&](ag::Tape& t, ag::Var m) {
    ag::Var row = t.input(r0);
    return ag::mean_all(ag::tanh_(ag::add_row_broadcast(m, row)));
  });
}

TEST(Autograd, Activations) {
  Rng rng(6);
  la::Mat x0 = random_mat(3, 4, rng, 2.0);
  // Nudge values away from the ReLU kink where finite differences lie.
  for (int r = 0; r < x0.rows(); ++r) {
    for (int c = 0; c < x0.cols(); ++c) {
      if (std::fabs(x0(r, c)) < 1e-3) x0(r, c) = 0.1;
    }
  }
  check_gradient(x0, [](ag::Tape&, ag::Var x) {
    return ag::sum_all(ag::relu(x));
  });
  check_gradient(x0, [](ag::Tape&, ag::Var x) {
    return ag::sum_all(ag::tanh_(x));
  });
  check_gradient(x0, [](ag::Tape&, ag::Var x) {
    return ag::sum_all(ag::sigmoid(x));
  });
}

TEST(Autograd, MseConst) {
  Rng rng(7);
  la::Mat x0 = random_mat(4, 2, rng);
  la::Mat target = random_mat(4, 2, rng);
  check_gradient(x0, [&](ag::Tape&, ag::Var x) {
    return ag::mse_const(x, target);
  });
}

TEST(Autograd, ConcatCols) {
  Rng rng(8);
  la::Mat a0 = random_mat(3, 2, rng);
  la::Mat b0 = random_mat(3, 4, rng);
  check_gradient(a0, [&](ag::Tape& t, ag::Var a) {
    ag::Var b = t.input(b0);
    return ag::mean_all(ag::tanh_(ag::concat_cols(a, b)));
  });
  check_gradient(b0, [&](ag::Tape& t, ag::Var b) {
    ag::Var a = t.input(a0);
    return ag::mean_all(ag::tanh_(ag::concat_cols(a, b)));
  });
}

TEST(Autograd, DeepCompositeChain) {
  // A little MLP-shaped composite: mean(tanh(relu(X W1 + b) W2)).
  Rng rng(9);
  la::Mat x0 = random_mat(5, 4, rng);
  la::Mat w1 = random_mat(4, 6, rng);
  la::Mat b1 = random_mat(1, 6, rng);
  la::Mat w2 = random_mat(6, 2, rng);
  check_gradient(
      x0,
      [&](ag::Tape& t, ag::Var x) {
        ag::Var h = ag::relu(
            ag::add_row_broadcast(ag::matmul(x, t.input(w1)), t.input(b1)));
        return ag::mean_all(ag::tanh_(ag::matmul(h, t.input(w2))));
      },
      1e-5);
}

TEST(Autograd, ConstantsBlockGradients) {
  ag::Tape tape;
  ag::Var c = tape.constant(la::Mat{{1.0, 2.0}});
  ag::Var x = tape.input(la::Mat{{3.0, 4.0}});
  ag::Var loss = ag::sum_all(ag::hadamard(c, x));
  tape.backward(loss);
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x.grad()(0, 1), 2.0);
  // Constant's grad stays zero (no pullback ran into it... it's just
  // untouched storage).
  EXPECT_DOUBLE_EQ(c.grad()(0, 0), 0.0);
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  ag::Tape tape;
  ag::Var x = tape.input(la::Mat{{1.0, 2.0}});
  EXPECT_THROW(tape.backward(x), std::invalid_argument);
}

TEST(Autograd, MixedTapeRejected) {
  ag::Tape t1, t2;
  ag::Var a = t1.input(la::Mat{{1.0}});
  ag::Var b = t2.input(la::Mat{{1.0}});
  EXPECT_THROW(ag::add(a, b), std::invalid_argument);
}

TEST(Autograd, GradientAccumulatesOverReuse) {
  // loss = sum(x + x) => dloss/dx = 2.
  ag::Tape tape;
  ag::Var x = tape.input(la::Mat{{1.5}});
  ag::Var loss = ag::sum_all(ag::add(x, x));
  tape.backward(loss);
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 2.0);
}
