// Time-domain measurements for the LDO benchmarks: settling time after a
// step disturbance, over/undershoot, and DC regulation helpers.
#pragma once

#include <vector>

namespace gcnrl::meas {

struct TranCurve {
  std::vector<double> t;
  std::vector<double> v;
};

// Settling time after the disturbance at t_edge: the earliest time T such
// that |v(t) - v_final| <= tol_abs for ALL t >= T (v_final = last sample).
// Returns (T - t_edge); returns the full remaining window if it never
// settles.
double settling_time(const TranCurve& c, double t_edge, double tol_abs);

// Largest |v - v_final| excursion after t_edge.
double peak_deviation(const TranCurve& c, double t_edge);

// Value at (interpolated) time t.
double value_at(const TranCurve& c, double t);

}  // namespace gcnrl::meas
