// Two-stage transimpedance amplifier (Fig. 6a analogue).
//
// Topology: shunt-feedback TIA. The photo-current enters node `in`; a
// common-source NMOS (T1) with PMOS current-source load (T3) provides the
// inverting voltage gain; an NMOS source follower (T5 over sink T6)
// buffers the output; RF closes the shunt-shunt feedback loop (one
// inversion in the loop = stable negative feedback), R6 provides the
// output DC path. On-chip bias: IBIAS through NMOS diode T2 generates the
// NMOS rail (mirrored by T7 and follower sink T6); T7 pulls the PMOS
// diode T4 to generate the PMOS rail for T3.
//
// Searched: T1..T7 (W, L, M) + RF, R6 -> 23 parameters.
// Metrics (paper Table II): BW, Gain (transimpedance), Power, input-
// referred current noise, Peaking; GBW = Gain*BW reported alongside.
#include "circuits/benchmark_circuits.hpp"

#include "circuits/helpers.hpp"

namespace gcnrl::circuits {

using circuit::Netlist;
using circuit::Technology;

env::BenchmarkCircuit make_two_tia(const Technology& tech) {
  env::BenchmarkCircuit bc;
  bc.name = "Two-TIA";
  bc.tech = tech;

  Netlist& nl = bc.netlist;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int in = nl.node("in");
  const int n1 = nl.node("n1");
  const int nbn = nl.node("nbn");
  const int nbp = nl.node("nbp");
  const int vout = nl.node("vout");

  const double ib = 50e-6 * (tech.vdd / 1.8);  // bias scales with supply
  nl.add_vsource("VDD", vdd, 0, tech.vdd);
  nl.add_isource("IBIAS", vdd, nbn, ib);
  // Input photo-current: DC-free, unit AC for the transimpedance sweep.
  nl.add_isource("IIN", 0, in, 0.0, /*ac=*/1.0);

  // Design components (insertion order defines the graph vertex order).
  nl.add_nmos("T1", n1, in, 0, 0, 40e-6, tech.lmin, 2);     // input CS
  nl.add_nmos("T2", nbn, nbn, 0, 0, 10e-6, tech.lmin, 1);   // bias diode
  nl.add_pmos("T3", n1, nbp, vdd, vdd, 40e-6, tech.lmin, 2);  // stage1 load
  nl.add_pmos("T4", nbp, nbp, vdd, vdd, 20e-6, tech.lmin, 1);  // PMOS diode
  nl.add_nmos("T5", vdd, n1, vout, 0, 40e-6, tech.lmin, 2);  // follower
  nl.add_nmos("T6", vout, nbn, 0, 0, 10e-6, tech.lmin, 4);   // follower sink
  nl.add_nmos("T7", nbp, nbn, 0, 0, 10e-6, tech.lmin, 1);    // bias mirror
  nl.add_resistor("RF", vout, in, 20e3);                     // feedback
  nl.add_resistor("R6", vout, 0, 10e3);                      // output load
  nl.add_capacitor("CL", vout, 0, 100e-15, /*designable=*/false);

  bc.space = circuit::DesignSpace::from_netlist(nl, tech);
  // Current-mirror legs share gate length.
  bc.space.add_match_group(nl, {"T2", "T7", "T6"}, /*l_only=*/true);
  bc.space.add_match_group(nl, {"T3", "T4"}, /*l_only=*/true);

  // --- FoM definition (paper Table II metric set + spec) ----------------
  // The spec mirrors the paper's contest constraints in our metric scale:
  // the BW floor is the load-bearing one — it forbids the trivial
  // "maximize RF" strategy (huge transimpedance at collapsed bandwidth),
  // recreating the gain-vs-bandwidth tension that makes this benchmark
  // discriminate between optimizers.
  env::FomSpec fom;
  fom.metrics = {
      // name, unit, weight, bound, spec_min, spec_max, log_norm
      {"bw", "Hz", +1.0, {}, 5e7, {}, true},
      {"gain", "ohm", +1.0, 2e5, 500.0, {}, true},
      {"power", "W", -1.0, {}, {}, 18e-3, true},
      {"noise", "A/sqrt(Hz)", -1.0, {}, {}, 200e-12, true},
      {"peaking", "dB", -1.0, 0.0, {}, 3.0, false},
  };
  bc.fom = fom;

  // --- measurement plan --------------------------------------------------
  // Concurrency audit (EvalService contract on BenchmarkCircuit::evaluate):
  // every capture is an immutable value — node indices and a Technology
  // copy, never a reference into the builder — and the Simulator is
  // function-local, so concurrent invocations share no mutable state.
  const Technology tech_copy = tech;
  bc.evaluate = [vout, tech_copy](const Netlist& sized) {
    sim::Simulator s(sized, tech_copy);
    env::MetricMap m;
    m["power"] = s.supply_power();
    const auto freqs = sim::logspace(1e3, 1e11, 97);
    const auto ac = s.ac(freqs);
    const auto h = detail::curve_at(ac, vout);
    m["gain"] = meas::dc_gain(h);
    m["bw"] = meas::bandwidth_3db(h);
    m["peaking"] = meas::peaking_db(h);
    m["gbw"] = m["gain"] * m["bw"];
    // Input-referred current-noise spot density at 100 kHz.
    const auto nr = s.noise({1e5}, vout, 0);
    m["noise"] = detail::input_referred_noise(nr, h, 1e5);
    return m;
  };

  // --- human-expert reference sizing ------------------------------------
  // First-order hand design at the 180 nm node: ~200 uA in the gain stage
  // (T3 = 4x mirror of 50 uA), gm1 ~ 2.5 mS, RF = 20 kOhm for ~20 kOhm
  // transimpedance with BW ~ gm1 / (2 pi Cin RF Cgs-ish loading).
  {
    circuit::DesignParams p;
    const double l = tech.lmin;
    p.v = {
        {60e-6, l, 2},   // T1
        {10e-6, l, 1},   // T2
        {30e-6, l, 4},   // T3
        {30e-6, l, 1},   // T4
        {40e-6, l, 2},   // T5
        {10e-6, l, 4},   // T6
        {10e-6, l, 1},   // T7
        {20e3, 0, 0},    // RF
        {10e3, 0, 0},    // R6
    };
    bc.human_expert = p;
  }
  return bc;
}

}  // namespace gcnrl::circuits
