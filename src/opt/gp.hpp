// Gaussian-process regression surrogate for the BO/MACE baselines.
//
// Matern-5/2 kernel with a single isotropic lengthscale, signal variance
// and noise variance; hyperparameters fitted by maximizing the log
// marginal likelihood over a small grid around median-distance heuristics
// (robust and deterministic — no fragile inner gradient loop). Targets are
// standardized internally.
#pragma once

#include <memory>
#include <vector>

#include "la/cholesky.hpp"
#include "la/matrix.hpp"

namespace gcnrl::opt {

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
};

class GaussianProcess {
 public:
  GaussianProcess() = default;

  // Fit to data (rows of x are points). Refits hyperparameters.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  [[nodiscard]] GpPrediction predict(const std::vector<double>& x) const;
  [[nodiscard]] bool fitted() const { return fitted_; }
  [[nodiscard]] double lengthscale() const { return lengthscale_; }
  [[nodiscard]] double noise() const { return noise_; }
  [[nodiscard]] int num_points() const { return static_cast<int>(x_.size()); }

 private:
  [[nodiscard]] double kernel(const std::vector<double>& a,
                              const std::vector<double>& b) const;
  double log_marginal(double ls, double noise) const;
  void build(double ls, double noise);

  std::vector<std::vector<double>> x_;
  std::vector<double> y_;           // standardized targets
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double lengthscale_ = 1.0;
  double signal_var_ = 1.0;
  double noise_ = 1e-4;
  std::vector<double> alpha_;       // K^-1 y
  std::unique_ptr<la::Cholesky> chol_;
  bool fitted_ = false;
};

}  // namespace gcnrl::opt
