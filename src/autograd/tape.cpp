#include "autograd/tape.hpp"

#include <stdexcept>

namespace gcnrl::ag {

Var Tape::input(la::Mat value) {
  auto node = std::make_unique<Node>();
  node->grad = la::Mat(value.rows(), value.cols());
  node->val = std::move(value);
  node->requires_grad = true;
  Node* raw = node.get();
  nodes_.push_back(std::move(node));
  return Var(this, raw);
}

Var Tape::constant(la::Mat value) {
  auto node = std::make_unique<Node>();
  node->grad = la::Mat(value.rows(), value.cols());
  node->val = std::move(value);
  node->requires_grad = false;
  Node* raw = node.get();
  nodes_.push_back(std::move(node));
  return Var(this, raw);
}

Var Tape::make(la::Mat value, bool requires_grad,
               std::function<void()> pullback) {
  auto node = std::make_unique<Node>();
  node->grad = la::Mat(value.rows(), value.cols());
  node->val = std::move(value);
  node->requires_grad = requires_grad;
  if (requires_grad) node->pullback = std::move(pullback);
  Node* raw = node.get();
  nodes_.push_back(std::move(node));
  return Var(this, raw);
}

void Tape::backward(const Var& root) {
  if (root.tape() != this) {
    throw std::invalid_argument("Tape::backward: var from another tape");
  }
  if (root.rows() != 1 || root.cols() != 1) {
    throw std::invalid_argument("Tape::backward: root must be a 1x1 scalar");
  }
  root.node()->grad(0, 0) = 1.0;
  // Creation order is a valid topological order: every node's parents were
  // created before it, so a reverse sweep sees each child before parents.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    Node* n = it->get();
    if (n->requires_grad && n->pullback) n->pullback();
  }
}

void Tape::clear() { nodes_.clear(); }

}  // namespace gcnrl::ag
