#include "sim/dc.hpp"

#include <chrono>
#include <cmath>
#include <optional>

#include "sim/perf.hpp"
#include "sim/structure.hpp"

namespace gcnrl::sim {
namespace {

using clock_type = std::chrono::steady_clock;

double seconds_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double source_value(double dc, const circuit::Pwl& pwl, double time) {
  if (time >= 0.0 && !pwl.empty()) return pwl.at(time);
  return dc;
}

// Per-solve workspace: every buffer the Newton loop touches, reused
// across iterations and ladder strategies so the loop performs no heap
// allocation after its first iteration. Exactly one engine is active per
// solve: sparse when `st` is non-null, dense otherwise.
struct DcWork {
  // Dense engine: assembly matrix + factorization, ping-ponged through
  // Lu::factor_swap (see la/lu.hpp).
  la::Mat j;
  la::Lu<double> lu;
  // Sparse engine: pattern-aligned value array + structure-reuse LU.
  const MnaStructure* st = nullptr;
  la::SparseLuD* slu = nullptr;
  std::vector<double> vals;
  // Shared.
  std::vector<double> f, rhs, dx;
  PhaseSeconds phase;
};

// Build residual + dense Jacobian at unknown vector x. `alpha` scales all
// independent sources (source stepping); `gmin` shunts every node. The
// stamps and their order are the legacy dense assembly verbatim; only the
// storage is reused between calls.
void build_dense(const SimContext& ctx, const std::vector<double>& x,
                 double alpha, double gmin, double source_time, la::Mat& j,
                 std::vector<double>& f) {
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  if (j.rows() != m.dim() || j.cols() != m.dim()) {
    j = la::Mat(m.dim(), m.dim());
  } else {
    j.fill(0.0);
  }
  f.assign(m.dim(), 0.0);

  auto volt = [&](int node) { return node == 0 ? 0.0 : x[m.v(node)]; };

  for (const auto& res : nl.resistors()) {
    const double g = 1.0 / std::max(res.r, kMinResistance);
    stamp_conductance(j, m, res.a, res.b, g);
    const double i = g * (volt(res.a) - volt(res.b));
    if (m.v(res.a) >= 0) f[m.v(res.a)] += i;
    if (m.v(res.b) >= 0) f[m.v(res.b)] -= i;
  }

  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& mos = nl.mosfets()[k];
    const MosOp op = eval_mos(ctx.models[k], mos, volt(mos.g), volt(mos.d),
                              volt(mos.s));
    const int id_row = m.v(mos.d);
    const int is_row = m.v(mos.s);
    if (id_row >= 0) f[id_row] += op.id;
    if (is_row >= 0) f[is_row] -= op.id;
    // d(id)/dvg = gm, d(id)/dvd = gds, d(id)/dvs = -(gm + gds).
    const int cg = m.v(mos.g);
    const int cd = m.v(mos.d);
    const int cs = m.v(mos.s);
    auto add = [&](int row, double sign) {
      if (row < 0) return;
      if (cg >= 0) j(row, cg) += sign * op.gm;
      if (cd >= 0) j(row, cd) += sign * op.gds;
      if (cs >= 0) j(row, cs) -= sign * (op.gm + op.gds);
    };
    add(id_row, 1.0);
    add(is_row, -1.0);
  }

  for (const auto& src : nl.isources()) {
    const double i = alpha * source_value(src.dc, src.pwl, source_time);
    // Current flows p -> n through the source: leaves p, enters n.
    if (m.v(src.p) >= 0) f[m.v(src.p)] += i;
    if (m.v(src.n) >= 0) f[m.v(src.n)] -= i;
  }

  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    const double i = x[b];
    if (m.v(src.p) >= 0) {
      f[m.v(src.p)] += i;
      j(m.v(src.p), b) += 1.0;
      j(b, m.v(src.p)) += 1.0;
    }
    if (m.v(src.n) >= 0) {
      f[m.v(src.n)] -= i;
      j(m.v(src.n), b) -= 1.0;
      j(b, m.v(src.n)) -= 1.0;
    }
    f[b] = volt(src.p) - volt(src.n) -
           alpha * source_value(src.dc, src.pwl, source_time);
  }

  // gmin shunts on every non-ground node.
  for (int node = 1; node < m.num_nodes(); ++node) {
    const int row = m.v(node);
    j(row, row) += gmin;
    f[row] += gmin * x[row];
  }
}

// Sparse assembly: the same residual, with the Jacobian written directly
// into the pattern-aligned value array through the precomputed slots — no
// dense zero-fill, no coordinate lookups.
void build_sparse(const SimContext& ctx, const MnaStructure& st,
                  const std::vector<double>& x, double alpha, double gmin,
                  double source_time, std::vector<double>& vals,
                  std::vector<double>& f) {
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  vals.assign(st.pattern.nnz(), 0.0);
  f.assign(m.dim(), 0.0);

  auto volt = [&](int node) { return node == 0 ? 0.0 : x[m.v(node)]; };

  for (std::size_t k = 0; k < nl.resistors().size(); ++k) {
    const auto& res = nl.resistors()[k];
    const double g = 1.0 / std::max(res.r, kMinResistance);
    add_quad(vals.data(), st.resistors[k], g);
    const double i = g * (volt(res.a) - volt(res.b));
    if (m.v(res.a) >= 0) f[m.v(res.a)] += i;
    if (m.v(res.b) >= 0) f[m.v(res.b)] -= i;
  }

  for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
    const auto& mos = nl.mosfets()[k];
    const MosOp op = eval_mos(ctx.models[k], mos, volt(mos.g), volt(mos.d),
                              volt(mos.s));
    const int id_row = m.v(mos.d);
    const int is_row = m.v(mos.s);
    if (id_row >= 0) f[id_row] += op.id;
    if (is_row >= 0) f[is_row] -= op.id;
    add_mos_g(vals.data(), st.mosfets[k], op.gm, op.gds);
  }

  for (const auto& src : nl.isources()) {
    const double i = alpha * source_value(src.dc, src.pwl, source_time);
    if (m.v(src.p) >= 0) f[m.v(src.p)] += i;
    if (m.v(src.n) >= 0) f[m.v(src.n)] -= i;
  }

  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& src = nl.vsources()[k];
    const int b = m.branch(static_cast<int>(k));
    const double i = x[b];
    const VsrcSlots& vs = st.vsources[k];
    if (m.v(src.p) >= 0) {
      f[m.v(src.p)] += i;
      vals[vs.pb] += 1.0;
      vals[vs.bp] += 1.0;
    }
    if (m.v(src.n) >= 0) {
      f[m.v(src.n)] -= i;
      vals[vs.nb] -= 1.0;
      vals[vs.bn] -= 1.0;
    }
    f[b] = volt(src.p) - volt(src.n) -
           alpha * source_value(src.dc, src.pwl, source_time);
  }

  for (int node = 1; node < m.num_nodes(); ++node) {
    const int row = m.v(node);
    vals[st.node_diag[node - 1]] += gmin;
    f[row] += gmin * x[row];
  }
}

struct NewtonResult {
  bool converged = false;
  std::vector<double> x;
  int iters = 0;  // iterations actually spent
};

NewtonResult newton(const SimContext& ctx, DcWork& w, std::vector<double> x,
                    double alpha, double gmin, const DcOptions& opt,
                    int max_iter_override = -1) {
  const int nv = ctx.map.num_nodes() - 1;
  const int max_iter = max_iter_override > 0 ? max_iter_override
                                             : opt.max_iter;
  const bool sparse = w.st != nullptr;
  int iters = 0;
  for (int iter = 0; iter < max_iter; ++iter) {
    ++iters;
    if (sparse) {
      const auto a0 = clock_type::now();
      build_sparse(ctx, *w.st, x, alpha, gmin, opt.source_time, w.vals, w.f);
      const auto a1 = clock_type::now();
      // Any rejected sparse factorization (structural singularity, pivot
      // failure, growth) reruns the whole DC solve on the dense path.
      if (!w.slu->factor_values(w.vals.data())) throw SparseEngineFallback{};
      const auto a2 = clock_type::now();
      w.rhs.resize(w.f.size());
      for (std::size_t i = 0; i < w.f.size(); ++i) w.rhs[i] = -w.f[i];
      w.dx.resize(w.f.size());
      w.slu->solve_into(w.rhs.data(), w.dx.data());
      const auto a3 = clock_type::now();
      w.phase.assembly += seconds_between(a0, a1);
      w.phase.factor += seconds_between(a1, a2);
      w.phase.solve += seconds_between(a2, a3);
    } else {
      const auto a0 = clock_type::now();
      build_dense(ctx, x, alpha, gmin, opt.source_time, w.j, w.f);
      const auto a1 = clock_type::now();
      w.rhs.resize(w.f.size());
      for (std::size_t i = 0; i < w.f.size(); ++i) w.rhs[i] = -w.f[i];
      try {
        w.lu.factor_swap(w.j);
      } catch (const la::SingularMatrixError&) {
        return {false, std::move(x), iters};
      }
      const auto a2 = clock_type::now();
      w.lu.solve_into(w.rhs, w.dx);
      const auto a3 = clock_type::now();
      w.phase.assembly += seconds_between(a0, a1);
      w.phase.factor += seconds_between(a1, a2);
      w.phase.solve += seconds_between(a2, a3);
    }
    // Damping: limit the largest voltage step.
    double max_dv = 0.0;
    for (int i = 0; i < nv; ++i) max_dv = std::max(max_dv, std::fabs(w.dx[i]));
    const double scale = max_dv > opt.step_limit ? opt.step_limit / max_dv
                                                 : 1.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += scale * w.dx[i];
      if (!std::isfinite(x[i])) return {false, std::move(x), iters};
    }
    double max_res = 0.0;
    for (int i = 0; i < nv; ++i) {
      max_res = std::max(max_res, std::fabs(w.f[i]));
    }
    // Converged when undamped and both criteria hold — or when the
    // residual alone is at numerical noise level (dx can limit-cycle on
    // Jacobian granularity while KCL is already exactly satisfied).
    if (scale == 1.0 &&
        ((max_dv < opt.tol_step && max_res < opt.tol_residual) ||
         max_res < 1e-3 * opt.tol_residual)) {
      return {true, std::move(x), iters};
    }
  }
  return {false, std::move(x), iters};
}

OpPoint finalize(const SimContext& ctx, const std::vector<double>& x) {
  const MnaMap& m = ctx.map;
  OpPoint op;
  op.v.resize(m.num_nodes(), 0.0);
  for (int node = 1; node < m.num_nodes(); ++node) op.v[node] = x[m.v(node)];
  op.branch_i.resize(ctx.nl.vsources().size());
  for (std::size_t k = 0; k < op.branch_i.size(); ++k) {
    op.branch_i[k] = x[m.branch(static_cast<int>(k))];
  }
  op.mos.reserve(ctx.nl.mosfets().size());
  op.caps.reserve(ctx.nl.mosfets().size());
  for (std::size_t k = 0; k < ctx.nl.mosfets().size(); ++k) {
    const auto& mos = ctx.nl.mosfets()[k];
    op.mos.push_back(eval_mos(ctx.models[k], mos, op.v[mos.g], op.v[mos.d],
                              op.v[mos.s]));
    op.caps.push_back(mos_caps(ctx.models[k], mos));
  }
  return op;
}

OpPoint solve_dc_impl(const SimContext& ctx, const DcOptions& opt,
                      const std::vector<double>* warm_start, DcStats* stats,
                      bool use_sparse) {
  const auto t0 = clock_type::now();
  DcStats local;
  DcStats& st = stats ? *stats : local;
  st = DcStats{};

  DcWork w;
  std::optional<la::SparseLuD> slu_store;
  if (use_sparse) {
    w.st = ctx.structure.get();
    slu_store.emplace(ctx.structure->pattern);
    w.slu = &*slu_store;
  }

  // Record once per solve no matter which return/throw path is taken.
  auto record = [&](bool ok) {
    const double secs = seconds_between(t0, clock_type::now());
    const long warm_hit = (ok && st.warm_converged) ? 1 : 0;
    const long warm_fallback =
        (st.warm_attempted && !st.warm_converged) ? 1 : 0;
    sim_perf_record(Analysis::Dc, st.newton_iters, secs, warm_hit,
                    warm_fallback, &w.phase);
  };

  // Strategy 0: direct Newton from the supplied warm-start guess at the
  // target gmin. A good guess (previous operating point of the same or a
  // structurally identical netlist) converges in a handful of iterations;
  // a bad one is cut off at warm_max_iter and we fall through to the
  // untouched ladder below, which starts from zeros exactly as a cold
  // solve would — fallback results are bitwise-identical to cold.
  if (warm_start && static_cast<int>(warm_start->size()) == ctx.map.dim()) {
    st.warm_attempted = true;
    NewtonResult nr =
        newton(ctx, w, *warm_start, 1.0, opt.gmin, opt, opt.warm_max_iter);
    st.newton_iters += nr.iters;
    if (nr.converged) {
      st.warm_converged = true;
      st.strategy = 0;
      record(true);
      return finalize(ctx, nr.x);
    }
  }
  // Cold-ladder determinism: drop any pivot order recorded during the
  // warm attempt, so the ladder's sparse factorizations are identical to
  // a cold solve's (which enters here with a virgin SparseLu).
  if (w.slu) w.slu->invalidate();

  // Best converged unknown vector seen so far across strategies; later
  // strategies start from it instead of discarding the progress.
  std::vector<double> best(ctx.map.dim(), 0.0);

  // Strategy 1: gmin stepping from a strong shunt down to the target.
  // Three geometric rungs (strong shunt, geometric midpoint, target)
  // instead of the previous decade-by-decade descent: the heavy first
  // rung pins every node near ground and establishes the operating
  // branch, the midpoint keeps Newton inside its basin across the ten
  // decades, and the cold solve drops from ~11 rungs to 3 — roughly
  // halving cold Newton iterations. Verified against the decade ladder
  // on all registered circuits (same operating branch to ~1e-13; the
  // two-rung version of this schedule loses the Two-Volt bias branch,
  // which is why the midpoint rung exists).
  // A partial failure mid-ladder keeps the best solution found so far as
  // the starting point for the next strategy instead of discarding it:
  // circuits with bistable subloops often converge on retry.
  {
    const double g_hi = 1e-2;
    double rungs[3];
    int num_rungs = 0;
    if (opt.gmin >= g_hi * 0.99) {
      rungs[num_rungs++] = opt.gmin;
    } else {
      rungs[num_rungs++] = g_hi;
      rungs[num_rungs++] = std::sqrt(g_hi * opt.gmin);
      rungs[num_rungs++] = opt.gmin;
    }
    std::vector<double> xg = best;
    bool ok = true;
    for (int ri = 0; ri < num_rungs; ++ri) {
      NewtonResult nr = newton(ctx, w, xg, 1.0, rungs[ri], opt);
      st.newton_iters += nr.iters;
      if (!nr.converged) {
        ok = false;
        break;
      }
      xg = std::move(nr.x);
      best = xg;  // last converged rung — carried into Strategy 2
    }
    // The rung schedule ends exactly at opt.gmin, so the converged xg is
    // already the target-gmin solution — no final tightening solve.
    if (ok) {
      st.strategy = 1;
      record(true);
      return finalize(ctx, xg);
    }
  }

  // Strategy 2: source stepping at a relaxed gmin, then final tightening.
  // Starts from the best solution Strategy 1 converged to (zeros if its
  // very first rung already failed), as documented above.
  {
    std::vector<double> xs = best;
    bool ok = true;
    for (int step = 1; step <= 20; ++step) {
      const double alpha = step / 20.0;
      NewtonResult nr =
          newton(ctx, w, xs, alpha, std::max(opt.gmin, 1e-9), opt);
      st.newton_iters += nr.iters;
      if (!nr.converged) {
        ok = false;
        break;
      }
      xs = std::move(nr.x);
    }
    if (ok) {
      for (double gmin = 1e-9; gmin >= opt.gmin * 0.99; gmin *= 1e-1) {
        NewtonResult nr = newton(ctx, w, xs, 1.0, gmin, opt);
        st.newton_iters += nr.iters;
        if (!nr.converged) {
          ok = false;
          break;
        }
        xs = std::move(nr.x);
      }
      if (ok) {
        st.strategy = 2;
        record(true);
        return finalize(ctx, xs);
      }
    }
  }

  // Strategy 3: heavily damped Newton from a mid-rail start — a last
  // resort that trades iterations for basin robustness. Deliberately
  // *not* seeded from `best`: when both ladders fail, the accumulated
  // iterate usually sits in the wrong basin, and mid-rail is an
  // independent restart.
  {
    std::vector<double> xm(ctx.map.dim(), 0.0);
    for (int node = 1; node < ctx.map.num_nodes(); ++node) {
      xm[ctx.map.v(node)] = 0.5;
    }
    DcOptions heavy = opt;
    heavy.step_limit = 0.1;
    heavy.max_iter = 400;
    NewtonResult nr =
        newton(ctx, w, xm, 1.0, std::max(opt.gmin, 1e-10), heavy);
    st.newton_iters += nr.iters;
    if (nr.converged) {
      nr = newton(ctx, w, nr.x, 1.0, opt.gmin, opt);
      st.newton_iters += nr.iters;
      if (nr.converged) {
        st.strategy = 3;
        record(true);
        return finalize(ctx, nr.x);
      }
    }
  }

  record(false);
  throw SimError("DC operating point did not converge");
}

}  // namespace

OpPoint solve_dc(const SimContext& ctx, const DcOptions& opt,
                 const std::vector<double>* warm_start, DcStats* stats) {
  if (sparse_engine_enabled() && ctx.structure) {
    try {
      return solve_dc_impl(ctx, opt, warm_start, stats, /*use_sparse=*/true);
    } catch (const SparseEngineFallback&) {
      sim_perf_sparse_fallback(Analysis::Dc);
    }
  }
  return solve_dc_impl(ctx, opt, warm_start, stats, /*use_sparse=*/false);
}

}  // namespace gcnrl::sim
